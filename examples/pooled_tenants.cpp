// Multi-tenant pooled execution through the facade: many concurrent
// instances of a filtering split/join share one fixed worker pool via
// exec::Session::submit, and a shared core::CompileCache amortizes the
// compile pass (CS4 decomposition + dummy intervals) across tenants running
// the same topology -- only the first submission compiles.
//
//   $ ./pooled_tenants
#include <cstdio>

#include "src/core/compile_cache.h"
#include "src/exec/session.h"
#include "src/runtime/pool_executor.h"
#include "src/workloads/filters.h"
#include "src/workloads/topologies.h"

using namespace sdaf;

int main() {
  const StreamGraph g = workloads::fig2_triangle(2, 2, 2);
  core::CompileCache cache(16);
  runtime::PoolExecutor pool(4);

  constexpr int kTenants = 8;
  std::vector<exec::Session::Pending> pending;
  for (int t = 0; t < kTenants; ++t) {
    // Every tenant resubmits the same topology: one miss, then hits.
    exec::Session session(
        g, workloads::relay_kernels(g, /*pass_probability=*/0.5, 1000 + t));
    exec::RunSpec spec;
    spec.backend = exec::Backend::Pooled;
    spec.pool = &pool;
    spec.mode = runtime::DummyMode::Propagation;
    spec.num_inputs = 500;
    spec.apply(*cache.get_or_compile(g));
    pending.push_back(session.submit(spec));
  }

  for (int t = 0; t < kTenants; ++t) {
    const auto r = pending[t].get();
    std::printf("tenant %d: %s, sink received %llu data messages, "
                "%llu dummies on the wire\n",
                t, r.completed ? "completed" : "DEADLOCKED",
                static_cast<unsigned long long>(r.sink_data.back()),
                static_cast<unsigned long long>(r.total_dummies()));
  }
  const auto s = cache.stats();
  std::printf("compile cache: %llu miss, %llu hits (topology compiled once "
              "for %d tenants)\n",
              static_cast<unsigned long long>(s.misses),
              static_cast<unsigned long long>(s.hits), kTenants);
  std::printf("pool: %zu workers for %d concurrent instances\n",
              pool.worker_count(), kTenants);
  return 0;
}
