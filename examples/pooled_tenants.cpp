// Multi-tenant pooled execution: many concurrent instances of a filtering
// split/join share one fixed worker pool, and core::CompileCache amortizes
// the compile pass (CS4 decomposition + dummy intervals) across tenants
// running the same topology -- only the first submission compiles.
//
//   $ ./pooled_tenants
#include <cstdio>

#include "src/core/compile_cache.h"
#include "src/runtime/pool_executor.h"
#include "src/workloads/filters.h"
#include "src/workloads/topologies.h"

using namespace sdaf;

int main() {
  const StreamGraph g = workloads::fig2_triangle(2, 2, 2);
  core::CompileCache cache(16);
  runtime::PoolExecutor pool(4);

  constexpr int kTenants = 8;
  std::vector<runtime::PoolExecutor::TicketId> tickets;
  for (int t = 0; t < kTenants; ++t) {
    // Every tenant resubmits the same topology: one miss, then hits.
    const auto compiled = cache.get_or_compile(g);
    runtime::ExecutorOptions opt;
    opt.mode = runtime::DummyMode::Propagation;
    opt.intervals = compiled->integer_intervals(core::Rounding::Floor);
    opt.forward_on_filter = compiled->forward_on_filter();
    opt.num_inputs = 500;
    tickets.push_back(pool.submit(
        g, workloads::relay_kernels(g, /*pass_probability=*/0.5, 1000 + t),
        opt));
  }

  for (int t = 0; t < kTenants; ++t) {
    const auto r = pool.wait(tickets[t]);
    std::printf("tenant %d: %s, sink received %llu data messages, "
                "%llu dummies on the wire\n",
                t, r.completed ? "completed" : "DEADLOCKED",
                static_cast<unsigned long long>(r.sink_data.back()),
                static_cast<unsigned long long>(r.total_dummies()));
  }
  const auto s = cache.stats();
  std::printf("compile cache: %llu miss, %llu hits (topology compiled once "
              "for %d tenants)\n",
              static_cast<unsigned long long>(s.misses),
              static_cast<unsigned long long>(s.hits), kTenants);
  std::printf("pool: %zu workers for %d concurrent instances\n",
              pool.worker_count(), kTenants);
  return 0;
}
