// Fig. 2 live: the same triangle topology and the same adversarial
// filtering pattern, run twice through exec::Session -- once bare
// (deadlocks, detected by the watchdog, with a post-mortem state dump) and
// once compiled with dummy intervals (completes).
//
//   $ ./deadlock_demo
#include <cstdio>

#include "src/core/report.h"
#include "src/exec/session.h"
#include "src/workloads/filters.h"
#include "src/workloads/topologies.h"

using namespace sdaf;

namespace {

std::vector<std::shared_ptr<runtime::Kernel>> make_kernels() {
  // A passes everything to B but filters the direct A->C channel for a long
  // stretch -- the pattern of Fig. 2: A->B and B->C fill while A->C stays
  // empty and C starves.
  std::vector<std::shared_ptr<runtime::Kernel>> kernels;
  kernels.push_back(std::make_shared<runtime::RelayKernel>(
      workloads::adversarial_prefix_filter(/*blocked_slot=*/1,
                                           /*filtered_prefix=*/400)));
  kernels.push_back(runtime::pass_through_kernel());
  kernels.push_back(runtime::pass_through_kernel());
  return kernels;
}

}  // namespace

int main() {
  const StreamGraph g = workloads::fig2_triangle(2, 2, 2);
  exec::Session session(g, make_kernels());
  exec::RunSpec spec;
  spec.backend = exec::Backend::Threaded;
  spec.num_inputs = 500;

  {
    std::printf("--- run 1: no deadlock avoidance ---\n");
    spec.mode = runtime::DummyMode::None;
    const auto run = session.run(spec);
    std::printf("completed=%d deadlocked=%d (C consumed %llu messages)\n",
                run.completed, run.deadlocked,
                static_cast<unsigned long long>(run.sink_data[2]));
    std::printf("wedged state:\n%s\n", run.state_dump.c_str());
  }
  {
    std::printf("--- run 2: Propagation Algorithm wrappers ---\n");
    spec.mode = runtime::DummyMode::Propagation;
    const auto [compiled, run] = session.compile_and_run(spec);
    std::printf("%s\n", core::describe(g, *compiled).c_str());
    std::printf("completed=%d deadlocked=%d (C consumed %llu messages, "
                "%llu dummies on A->C)\n",
                run.completed, run.deadlocked,
                static_cast<unsigned long long>(run.sink_data[2]),
                static_cast<unsigned long long>(run.edges[2].dummies));
    return run.completed ? 0 : 1;
  }
}
