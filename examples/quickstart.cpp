// Quickstart: build a filtering split/join, compile dummy intervals, and
// run it through the exec::Session facade -- the one execution API over the
// simulator, the thread-per-node executor, and the pooled scheduler.
//
//   $ ./quickstart
//
// Walks through the whole public API surface in ~50 lines of user code.
#include <cstdio>

#include "src/core/report.h"
#include "src/exec/session.h"
#include "src/workloads/filters.h"

using namespace sdaf;

int main() {
  // 1. Describe the topology: Fig. 1's split/join with finite channels.
  StreamGraph g;
  const NodeId split = g.add_node("split");
  const NodeId upper = g.add_node("upper");
  const NodeId lower = g.add_node("lower");
  const NodeId join = g.add_node("join");
  g.add_edge(split, upper, /*buffer=*/4);
  g.add_edge(split, lower, /*buffer=*/4);
  g.add_edge(upper, join, /*buffer=*/4);
  g.add_edge(lower, join, /*buffer=*/4);

  // 2. Provide kernels. The split forwards each item to a data-dependent
  //    subset of branches (here: pseudo-random, the essence of filtering);
  //    the branches and join pass everything through.
  auto kernels = workloads::passthrough_kernels(g);
  kernels[split] = std::make_shared<runtime::RelayKernel>(
      workloads::bernoulli_filter(/*p=*/0.5, /*seed=*/2011));

  // 3. Compile + run in one call: exec::Session memoizes the compile pass
  //    (classification + dummy intervals) and dispatches to the backend
  //    named in the RunSpec -- here the thread-per-node executor, with the
  //    Propagation Algorithm wrappers.
  exec::Session session(g, kernels);
  exec::RunSpec spec;
  spec.backend = exec::Backend::Threaded;
  spec.mode = runtime::DummyMode::Propagation;
  spec.num_inputs = 10'000;
  const auto [compiled, run] = session.compile_and_run(spec);

  std::printf("%s\n", core::describe(g, *compiled).c_str());
  if (!compiled->ok) return 1;
  std::printf("completed=%d deadlocked=%d\n", run.completed, run.deadlocked);
  std::printf("join consumed %llu data messages; %llu dummies were sent\n",
              static_cast<unsigned long long>(run.sink_data[join]),
              static_cast<unsigned long long>(run.total_dummies()));
  return run.completed ? 0 : 1;
}
