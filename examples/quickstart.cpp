// Quickstart: build a filtering split/join, compile dummy intervals, run it
// on the threaded executor, and confirm it finishes with filtering enabled.
//
//   $ ./quickstart
//
// Walks through the whole public API surface in ~60 lines of user code.
#include <cstdio>

#include "src/core/compile.h"
#include "src/core/report.h"
#include "src/runtime/executor.h"
#include "src/workloads/filters.h"

using namespace sdaf;

int main() {
  // 1. Describe the topology: Fig. 1's split/join with finite channels.
  StreamGraph g;
  const NodeId split = g.add_node("split");
  const NodeId upper = g.add_node("upper");
  const NodeId lower = g.add_node("lower");
  const NodeId join = g.add_node("join");
  g.add_edge(split, upper, /*buffer=*/4);
  g.add_edge(split, lower, /*buffer=*/4);
  g.add_edge(upper, join, /*buffer=*/4);
  g.add_edge(lower, join, /*buffer=*/4);

  // 2. Compile: classify the topology and compute dummy intervals.
  const core::CompileResult compiled = core::compile(g);
  std::printf("%s\n", core::describe(g, compiled).c_str());
  if (!compiled.ok) return 1;

  // 3. Provide kernels. The split forwards each item to a data-dependent
  //    subset of branches (here: pseudo-random, the essence of filtering);
  //    the branches and join pass everything through.
  auto kernels = workloads::passthrough_kernels(g);
  kernels[split] = std::make_shared<runtime::RelayKernel>(
      workloads::bernoulli_filter(/*p=*/0.5, /*seed=*/2011));

  // 4. Run with the Propagation Algorithm wrapper.
  runtime::Executor executor(g, kernels);
  runtime::ExecutorOptions options;
  options.mode = runtime::DummyMode::Propagation;
  options.intervals = compiled.integer_intervals(core::Rounding::Floor);
  options.forward_on_filter = compiled.forward_on_filter();
  options.num_inputs = 10'000;
  const runtime::RunResult run = executor.run(options);

  std::printf("completed=%d deadlocked=%d\n", run.completed, run.deadlocked);
  std::printf("join consumed %llu data messages; %llu dummies were sent\n",
              static_cast<unsigned long long>(run.sink_data[join]),
              static_cast<unsigned long long>(run.total_dummies()));
  return run.completed ? 0 : 1;
}
