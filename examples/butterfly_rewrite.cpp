// Section VII's restructuring recipe in action. The butterfly (Fig. 4
// right) is rejected by the CS4 analysis -- its a-A-b-B cycle has two
// sources and two sinks, so no efficient interval computation is known.
// Routing the b->c traffic through d (one extra hop) turns it into an
// SP-ladder with cross-links a->d and d->c, which compiles and runs.
//
//   $ ./butterfly_rewrite
#include <cstdio>

#include "src/core/compile.h"
#include "src/core/report.h"
#include "src/cs4/k4_witness.h"
#include "src/exec/session.h"
#include "src/workloads/filters.h"
#include "src/workloads/topologies.h"

using namespace sdaf;

int main() {
  {
    const StreamGraph butterfly = workloads::fig4_butterfly(4);
    core::CompileOptions strict;
    strict.general_policy = core::GeneralPolicy::Reject;
    const auto rejected = core::compile(butterfly, strict);
    std::printf("--- butterfly ---\n%s\n",
                core::describe(butterfly, rejected).c_str());
    if (const auto k4 = find_k4_subdivision(butterfly)) {
      std::printf("K4 subdivision witness (Lemma V.1) over nodes:");
      for (const NodeId n : k4->remainder_nodes)
        std::printf(" %s", butterfly.node_name(n).c_str());
      std::printf("\n\n");
    }
  }

  const StreamGraph rewrite = workloads::butterfly_rewrite(4);
  exec::Session session(rewrite,
                        workloads::relay_kernels(rewrite, 0.6, /*seed=*/3));
  exec::RunSpec spec;
  spec.backend = exec::Backend::Sim;
  spec.mode = runtime::DummyMode::Propagation;
  spec.num_inputs = 25'000;
  const auto [compiled, run] = session.compile_and_run(spec);
  std::printf("--- rewrite (b->c routed via d) ---\n%s\n",
              core::describe(rewrite, *compiled).c_str());
  if (!compiled->ok) return 1;
  std::printf("rewrite run: completed=%d deadlocked=%d dummies=%llu\n",
              run.completed, run.deadlocked,
              static_cast<unsigned long long>(run.total_dummies()));
  return run.completed ? 0 : 1;
}
