// The serving shape: a long-lived exec::Stream on the pooled backend, fed
// request by request through an InputPort with backpressure and drained
// through an OutputPort as results arrive -- no preconfigured item count,
// the paper's dummy-interval avoidance armed and running underneath. The
// stream ends when traffic does: close() is the dynamic EOS, and finish()
// still returns the exact verdict every batch run gets.
//
//   $ ./streaming_service
#include <cstdio>
#include <string>

#include "src/core/compile.h"
#include "src/exec/session.h"
#include "src/exec/stream.h"
#include "src/workloads/filters.h"
#include "src/workloads/topologies.h"

using namespace sdaf;

int main() {
  // A filtering split/join: requests fan out over parallel branches that
  // may drop them, and rejoin at the sink -- the topology class whose
  // deadlocks the compiled dummy intervals prevent.
  const StreamGraph g = workloads::splitjoin(/*width=*/3, /*depth=*/2,
                                             /*buffer=*/4);
  const auto compiled = core::compile(g);
  if (!compiled.ok) {
    std::printf("compile rejected: %s\n", compiled.diagnostics.c_str());
    return 1;
  }

  exec::Session session(
      g, workloads::relay_kernels(g, /*pass_probability=*/0.6, /*seed=*/7));
  exec::StreamSpec spec;
  spec.run.backend = exec::Backend::Pooled;
  spec.run.mode = runtime::DummyMode::Propagation;
  spec.run.apply(compiled);
  spec.run.pool_workers = 2;
  spec.feed_capacity = 64;  // ingest backpressure: ~64 requests in flight

  exec::Stream stream = session.open(spec);
  exec::InputPort& requests = stream.input(0);
  exec::OutputPort& responses = stream.output(0);

  // Serve "traffic": push requests as they arrive, answer whatever is
  // ready. push() blocks only when all 64 in-flight slots are full.
  constexpr std::uint64_t kRequests = 10'000;
  std::uint64_t answered = 0;
  for (std::uint64_t r = 0; r < kRequests; ++r) {
    requests.push(runtime::Value(static_cast<std::int64_t>(r)));
    while (auto response = responses.poll()) ++answered;
  }

  // End of traffic: dynamic EOS, then drain the tail.
  requests.close();
  while (auto response = responses.next()) ++answered;

  const exec::RunReport report = stream.finish();
  std::printf("streamed %llu requests -> %llu responses (%s), "
              "%llu dummies kept %s deadlock-free\n",
              static_cast<unsigned long long>(requests.pushed()),
              static_cast<unsigned long long>(answered),
              report.completed ? "completed" : "wedged",
              static_cast<unsigned long long>(report.total_dummies()),
              exec::to_string(report.backend));
  return report.completed ? 0 : 1;
}
