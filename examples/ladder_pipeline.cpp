// A CS4-but-not-SP application: two parallel analysis pipelines with a
// one-way hint channel between them (Fig. 4 left / Fig. 5 shape). The left
// pipeline occasionally sends calibration hints to the right one; both
// filter. SP tools reject this topology; the CS4 analysis compiles it.
//
//   $ ./ladder_pipeline [items]
#include <cstdio>
#include <cstdlib>

#include "src/core/report.h"
#include "src/exec/session.h"
#include "src/spdag/recognizer.h"
#include "src/workloads/filters.h"

using namespace sdaf;

int main(int argc, char** argv) {
  const std::uint64_t items =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 50'000;

  StreamGraph g;
  const NodeId ingest = g.add_node("ingest");
  const NodeId coarse = g.add_node("coarse");   // left pipeline
  const NodeId fine = g.add_node("fine");
  const NodeId track = g.add_node("track");     // right pipeline
  const NodeId fuse = g.add_node("fuse");
  g.add_edge(ingest, coarse, 8);
  g.add_edge(coarse, fine, 8);
  g.add_edge(fine, fuse, 8);
  g.add_edge(ingest, track, 8);
  g.add_edge(track, fuse, 8);
  g.add_edge(coarse, track, 4);  // the cross-link: calibration hints

  // SP tooling cannot handle the hint channel...
  const auto sp = recognize_sp(g);
  std::printf("SP recognizer: %s\n",
              sp.is_sp ? "accepted (unexpected!)" : sp.reason.c_str());

  // ...but the CS4 compiler can. Compile + run on the deterministic
  // simulator backend through the facade.
  exec::Session session(g, workloads::relay_kernels(
                               g, /*pass_probability=*/0.7, /*seed=*/77));
  exec::RunSpec spec;
  spec.backend = exec::Backend::Sim;
  spec.mode = runtime::DummyMode::Propagation;
  spec.num_inputs = items;
  const auto [compiled, run] = session.compile_and_run(spec);
  std::printf("\n%s\n", core::describe(g, *compiled).c_str());
  if (!compiled->ok) return 1;

  std::printf("items=%llu completed=%d deadlocked=%d sweeps=%llu\n",
              static_cast<unsigned long long>(items), run.completed,
              run.deadlocked, static_cast<unsigned long long>(run.sweeps));
  std::printf("fuse consumed %llu data messages; dummy overhead %llu\n",
              static_cast<unsigned long long>(run.sink_data[fuse]),
              static_cast<unsigned long long>(run.total_dummies()));
  return run.completed ? 0 : 1;
}
