// The paper's Section I motivating application: an object-recognition
// system. A segmentation node receives video frames and forwards each frame
// to the subset of dedicated recognizers whose coarse features match; each
// recognizer reports to a collector only on success. Both hops filter, so
// with finite channels the pipeline can deadlock -- unless compiled with
// dummy intervals.
//
//   $ ./object_recognition [frames]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/core/report.h"
#include "src/exec/session.h"
#include "src/support/prng.h"
#include "src/workloads/filters.h"

using namespace sdaf;

namespace {

struct Frame {
  std::uint64_t id;
  std::uint32_t features;  // bitmask of coarse feature detectors that fired
};

constexpr std::size_t kRecognizers = 4;
const char* kLabels[kRecognizers] = {"faces", "vehicles", "text", "animals"};

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t frames =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 20'000;

  StreamGraph g;
  const NodeId camera = g.add_node("camera");
  const NodeId segment = g.add_node("segment");
  std::vector<NodeId> recognizers;
  for (const char* label : kLabels) recognizers.push_back(g.add_node(label));
  const NodeId collect = g.add_node("collect");
  const NodeId archive = g.add_node("archive");

  g.add_edge(camera, segment, 8);
  for (const NodeId r : recognizers) {
    g.add_edge(segment, r, 4);   // frames routed per coarse features
    g.add_edge(r, collect, 4);   // success reports only
  }
  g.add_edge(collect, archive, 8);

  // Kernels. The camera synthesizes frames with pseudo-random features;
  // segment routes on feature bits; recognizers succeed data-dependently.
  std::vector<std::shared_ptr<runtime::Kernel>> kernels(g.node_count());
  kernels[camera] = std::make_shared<runtime::LambdaKernel>(
      [](std::uint64_t seq, const auto&, runtime::Emitter& out) {
        std::uint64_t state = seq ^ 0x5eedULL;
        const auto features = static_cast<std::uint32_t>(
            splitmix64(state) & ((1u << kRecognizers) - 1));
        out.emit(0, runtime::Value(Frame{seq, features}));
      });
  kernels[segment] = std::make_shared<runtime::LambdaKernel>(
      [](std::uint64_t, const auto& inputs, runtime::Emitter& out) {
        const auto& frame = inputs[0]->template as<Frame>();
        for (std::size_t r = 0; r < kRecognizers; ++r)
          if ((frame.features >> r) & 1u)
            out.emit(r, runtime::Value(frame));  // route; otherwise filter
      });
  for (std::size_t r = 0; r < kRecognizers; ++r) {
    kernels[recognizers[r]] = std::make_shared<runtime::LambdaKernel>(
        [r](std::uint64_t, const auto& inputs, runtime::Emitter& out) {
          const auto& frame = inputs[0]->template as<Frame>();
          // "Recognition" succeeds when a second pseudo-random draw agrees:
          // a data-dependent filter, opaque to the compiler.
          std::uint64_t state = frame.id * 31 + r;
          if ((splitmix64(state) & 7u) != 0) return;  // filtered
          out.emit(0, runtime::Value(frame.id));
        });
  }
  kernels[collect] = std::make_shared<runtime::LambdaKernel>(
      [](std::uint64_t, const auto& inputs, runtime::Emitter& out) {
        // Merge whatever successes arrived for this frame downstream.
        for (const auto& in : inputs)
          if (in.has_value()) {
            out.emit(0, *in);
            return;
          }
      });
  kernels[archive] = runtime::pass_through_kernel();

  exec::Session session(g, kernels);
  exec::RunSpec spec;
  spec.backend = exec::Backend::Threaded;
  spec.mode = runtime::DummyMode::Propagation;
  spec.num_inputs = frames;
  const auto [compiled, run] = session.compile_and_run(spec);
  std::printf("%s\n", core::describe(g, *compiled).c_str());
  if (!compiled->ok) return 1;

  std::printf("frames=%llu completed=%d deadlocked=%d wall=%.3fs\n",
              static_cast<unsigned long long>(frames), run.completed,
              run.deadlocked, run.wall_seconds);
  std::printf("archived detections: %llu; dummy messages: %llu (%.2f%% of "
              "data traffic)\n",
              static_cast<unsigned long long>(run.sink_data[archive]),
              static_cast<unsigned long long>(run.total_dummies()),
              100.0 * static_cast<double>(run.total_dummies()) /
                  static_cast<double>(run.total_data()));
  return run.completed ? 0 : 1;
}
