// E1 -- Fig. 1's split/join under filtering: dummy-message overhead as a
// function of the filter pass-rate and of buffer size, under both
// avoidance algorithms. The series show the paper's qualitative trade:
// larger buffers -> larger intervals -> fewer dummies; Propagation
// concentrates dummy traffic on the split's channels, Non-Propagation
// spreads a (lazier) schedule over every cycle edge.
#include <benchmark/benchmark.h>

#include "src/core/compile.h"
#include "src/exec/session.h"
#include "src/support/contracts.h"
#include "src/workloads/filters.h"
#include "src/workloads/topologies.h"

namespace {

using namespace sdaf;

void run_case(benchmark::State& state, core::Algorithm algorithm,
              runtime::DummyMode mode, double pass_rate,
              std::int64_t buffer) {
  const StreamGraph g = workloads::fig1_splitjoin(buffer);
  core::CompileOptions copt;
  copt.algorithm = algorithm;
  const auto compiled = core::compile(g, copt);
  SDAF_ASSERT(compiled.ok);

  std::uint64_t dummies = 0;
  std::uint64_t data = 0;
  std::uint64_t seed = 42;
  for (auto _ : state) {
    auto kernels = workloads::passthrough_kernels(g);
    kernels[0] = std::make_shared<runtime::RelayKernel>(
        workloads::bernoulli_filter(pass_rate, seed++));
    exec::Session session(g, kernels);
    exec::RunSpec spec;
    spec.backend = exec::Backend::Sim;
    spec.mode = mode;
    spec.apply(compiled);
    spec.num_inputs = 5000;
    const auto r = session.run(spec);
    SDAF_ASSERT(r.completed);
    dummies = r.total_dummies();
    data = r.total_data();
  }
  state.counters["dummies"] = static_cast<double>(dummies);
  state.counters["data"] = static_cast<double>(data);
  state.counters["overhead_pct"] =
      100.0 * static_cast<double>(dummies) /
      static_cast<double>(data == 0 ? 1 : data);
}

void BM_SplitJoin_Propagation_ByPassRate(benchmark::State& state) {
  run_case(state, core::Algorithm::Propagation,
           runtime::DummyMode::Propagation,
           static_cast<double>(state.range(0)) / 100.0, /*buffer=*/4);
}
BENCHMARK(BM_SplitJoin_Propagation_ByPassRate)
    ->Arg(10)->Arg(30)->Arg(50)->Arg(70)->Arg(90)->Iterations(3);

void BM_SplitJoin_NonPropagation_ByPassRate(benchmark::State& state) {
  run_case(state, core::Algorithm::NonPropagation,
           runtime::DummyMode::NonPropagation,
           static_cast<double>(state.range(0)) / 100.0, /*buffer=*/4);
}
BENCHMARK(BM_SplitJoin_NonPropagation_ByPassRate)
    ->Arg(10)->Arg(30)->Arg(50)->Arg(70)->Arg(90)->Iterations(3);

void BM_SplitJoin_Propagation_ByBuffer(benchmark::State& state) {
  run_case(state, core::Algorithm::Propagation,
           runtime::DummyMode::Propagation, /*pass_rate=*/0.5,
           state.range(0));
}
BENCHMARK(BM_SplitJoin_Propagation_ByBuffer)
    ->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Iterations(3);

void BM_SplitJoin_NonPropagation_ByBuffer(benchmark::State& state) {
  run_case(state, core::Algorithm::NonPropagation,
           runtime::DummyMode::NonPropagation, /*pass_rate=*/0.5,
           state.range(0));
}
BENCHMARK(BM_SplitJoin_NonPropagation_ByBuffer)
    ->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Iterations(3);

}  // namespace
