// E9 -- Propagation vs Non-Propagation dummy traffic across topology
// shapes (Section II.B's design trade). For each graph family the two
// algorithms run identical workloads; counters report absolute dummy
// counts and the winner flips with shape: interior-heavy cycles favour
// Non-Propagation's lazy per-edge schedules, split-heavy shapes favour
// Propagation's concentrated origination.
#include <benchmark/benchmark.h>

#include "src/core/compile.h"
#include "src/exec/session.h"
#include "src/support/contracts.h"
#include "src/support/prng.h"
#include "src/workloads/filters.h"
#include "src/workloads/random_ladder.h"
#include "src/workloads/topologies.h"

namespace {

using namespace sdaf;

void run_traffic(benchmark::State& state, const StreamGraph& g,
                 core::Algorithm algorithm, runtime::DummyMode mode) {
  core::CompileOptions copt;
  copt.algorithm = algorithm;
  const auto compiled = core::compile(g, copt);
  SDAF_ASSERT(compiled.ok);
  std::uint64_t dummies = 0;
  std::uint64_t data = 0;
  std::uint64_t seed = 9;
  for (auto _ : state) {
    exec::Session session(g, workloads::relay_kernels(g, 0.6, seed++));
    exec::RunSpec spec;
    spec.backend = exec::Backend::Sim;
    spec.mode = mode;
    spec.apply(compiled);
    spec.num_inputs = 4000;
    const auto r = session.run(spec);
    SDAF_ASSERT(r.completed);
    dummies = r.total_dummies();
    data = r.total_data();
  }
  state.counters["dummies"] = static_cast<double>(dummies);
  state.counters["data"] = static_cast<double>(data);
}

StreamGraph ladder_workload() {
  Prng rng(5150);
  workloads::RandomLadderOptions opt;
  opt.rungs = 4;
  opt.left_interior = 4;
  opt.right_interior = 4;
  opt.component_edges = 2;
  opt.max_buffer = 8;
  return workloads::random_ladder(rng, opt);
}

void BM_Traffic_Fig3_Prop(benchmark::State& state) {
  run_traffic(state, workloads::fig3_cycle(), core::Algorithm::Propagation,
              runtime::DummyMode::Propagation);
}
BENCHMARK(BM_Traffic_Fig3_Prop)->Iterations(3);

void BM_Traffic_Fig3_NonProp(benchmark::State& state) {
  run_traffic(state, workloads::fig3_cycle(),
              core::Algorithm::NonPropagation,
              runtime::DummyMode::NonPropagation);
}
BENCHMARK(BM_Traffic_Fig3_NonProp)->Iterations(3);

void BM_Traffic_Fig4Left_Prop(benchmark::State& state) {
  run_traffic(state, workloads::fig4_left(4), core::Algorithm::Propagation,
              runtime::DummyMode::Propagation);
}
BENCHMARK(BM_Traffic_Fig4Left_Prop)->Iterations(3);

void BM_Traffic_Fig4Left_NonProp(benchmark::State& state) {
  run_traffic(state, workloads::fig4_left(4),
              core::Algorithm::NonPropagation,
              runtime::DummyMode::NonPropagation);
}
BENCHMARK(BM_Traffic_Fig4Left_NonProp)->Iterations(3);

void BM_Traffic_Ladder_Prop(benchmark::State& state) {
  run_traffic(state, ladder_workload(), core::Algorithm::Propagation,
              runtime::DummyMode::Propagation);
}
BENCHMARK(BM_Traffic_Ladder_Prop)->Iterations(3);

void BM_Traffic_Ladder_NonProp(benchmark::State& state) {
  run_traffic(state, ladder_workload(), core::Algorithm::NonPropagation,
              runtime::DummyMode::NonPropagation);
}
BENCHMARK(BM_Traffic_Ladder_NonProp)->Iterations(3);

void BM_Traffic_WideSplitJoin_Prop(benchmark::State& state) {
  run_traffic(state, workloads::splitjoin(6, 1, 8),
              core::Algorithm::Propagation, runtime::DummyMode::Propagation);
}
BENCHMARK(BM_Traffic_WideSplitJoin_Prop)->Iterations(3);

void BM_Traffic_WideSplitJoin_NonProp(benchmark::State& state) {
  run_traffic(state, workloads::splitjoin(6, 1, 8),
              core::Algorithm::NonPropagation,
              runtime::DummyMode::NonPropagation);
}
BENCHMARK(BM_Traffic_WideSplitJoin_NonProp)->Iterations(3);

}  // namespace
