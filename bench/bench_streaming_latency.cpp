// Streaming-port data plane: what live traffic costs through the
// exec::Stream API on the continuation ladder (the dummy-dense regime the
// coalescing data plane is built for).
//
// Two figures of merit, both recorded in BENCH_streaming.json by
// tools/bench.sh:
//   - BM_StreamLatency_*: push -> poll round-trip of a single in-flight
//     item through the whole ladder (p50_ns / p99_ns percentile counters
//     over every round trip in the run; pass rate 1.0 so each push
//     produces exactly one egress item).
//   - BM_StreamIngest_*: sustained ingest throughput with a concurrent
//     drainer thread (items_per_second against wall time), the
//     backpressured serving shape the ports exist for.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "src/core/compile.h"
#include "src/exec/session.h"
#include "src/exec/stream.h"
#include "src/support/contracts.h"
#include "src/support/timer.h"
#include "src/workloads/filters.h"
#include "src/workloads/topologies.h"

namespace {

using namespace sdaf;

constexpr std::uint64_t kLatencyItems = 2000;
constexpr std::uint64_t kIngestItems = 20000;

exec::StreamSpec ladder_stream_spec(const core::CompileResult& compiled,
                                    exec::Backend backend,
                                    std::uint32_t batch) {
  exec::StreamSpec spec;
  spec.run.backend = backend;
  spec.run.mode = runtime::DummyMode::Propagation;
  spec.run.apply(compiled);
  spec.run.batch = batch;
  spec.run.pool_workers = 2;
  return spec;
}

void report_percentiles(benchmark::State& state,
                        std::vector<double>& samples_ns) {
  SDAF_ASSERT(!samples_ns.empty());
  std::sort(samples_ns.begin(), samples_ns.end());
  const auto at = [&](double q) {
    const auto idx = static_cast<std::size_t>(
        q * static_cast<double>(samples_ns.size() - 1));
    return samples_ns[idx];
  };
  state.counters["p50_ns"] = at(0.50);
  state.counters["p99_ns"] = at(0.99);
}

// One item in flight at a time: push, then poll until the ladder delivers
// it at the sink tap. Every stage passes, so the round trip covers the full
// relay chain (and, in propagation mode, its wrapper bookkeeping).
void run_latency(benchmark::State& state, exec::Backend backend) {
  const StreamGraph g = workloads::continuation_ladder(4, 64, 1);
  const auto compiled = core::compile(g);
  SDAF_ASSERT(compiled.ok);
  std::vector<double> samples_ns;
  samples_ns.reserve(kLatencyItems);
  std::uint64_t processed = 0;
  double wall = 0.0;
  for (auto _ : state) {
    exec::Session session(g, workloads::passthrough_kernels(g));
    exec::Stream stream =
        session.open(ladder_stream_spec(compiled, backend, /*batch=*/1));
    exec::InputPort& in = stream.input(0);
    exec::OutputPort& out = stream.output(0);
    Stopwatch run_clock;
    for (std::uint64_t i = 0; i < kLatencyItems; ++i) {
      Stopwatch rtt;
      const bool pushed = in.push();
      SDAF_ASSERT(pushed);
      // next() parks in the tap's condition variable on the concurrent
      // backends (so the measurement includes the real wake-up path) and
      // pumps sweeps on Sim.
      auto item = out.next();
      SDAF_ASSERT(item.has_value());
      samples_ns.push_back(rtt.elapsed_seconds() * 1e9);
      benchmark::DoNotOptimize(item->seq);
    }
    wall += run_clock.elapsed_seconds();
    processed += kLatencyItems;
    in.close();
    const auto report = stream.finish();
    SDAF_ASSERT(report.completed);
  }
  report_percentiles(state, samples_ns);
  state.counters["round_trips_per_second"] =
      wall > 0 ? static_cast<double>(processed) / wall : 0.0;
}

void BM_StreamLatency_Sim(benchmark::State& state) {
  run_latency(state, exec::Backend::Sim);
}
BENCHMARK(BM_StreamLatency_Sim)->Iterations(3)->Unit(benchmark::kMillisecond);

void BM_StreamLatency_Threaded(benchmark::State& state) {
  run_latency(state, exec::Backend::Threaded);
}
BENCHMARK(BM_StreamLatency_Threaded)
    ->Iterations(3)->Unit(benchmark::kMillisecond);

void BM_StreamLatency_Pooled(benchmark::State& state) {
  run_latency(state, exec::Backend::Pooled);
}
BENCHMARK(BM_StreamLatency_Pooled)
    ->Iterations(3)->Unit(benchmark::kMillisecond);

// Saturated ingest: the caller pushes as fast as backpressure allows while
// a drainer thread consumes the tap; heavy filtering keeps the wire
// dummy-dense. Sim has no concurrent drainer (single-threaded by design)
// -- its ports interleave pump and drain on the caller's thread.
void run_ingest(benchmark::State& state, exec::Backend backend,
                double pass_rate) {
  const StreamGraph g = workloads::continuation_ladder(4, 64, 1);
  const auto compiled = core::compile(g);
  SDAF_ASSERT(compiled.ok);
  std::uint64_t processed = 0;
  std::uint64_t dummies = 0;
  double wall = 0.0;
  for (auto _ : state) {
    exec::Session session(g, workloads::relay_kernels(g, pass_rate, 17));
    exec::Stream stream =
        session.open(ladder_stream_spec(compiled, backend, /*batch=*/64));
    exec::InputPort& in = stream.input(0);
    exec::OutputPort& out = stream.output(0);
    Stopwatch run_clock;
    if (backend == exec::Backend::Sim) {
      // Single-threaded serving loop: ingest until backpressure, then
      // drain the tap (poll pumps sweeps when it runs dry).
      std::uint64_t pushed = 0;
      while (pushed < kIngestItems) {
        if (in.try_push()) {
          ++pushed;
          continue;
        }
        while (out.poll().has_value()) {
        }
      }
      in.close();
      while (out.next().has_value()) {
      }
    } else {
      std::thread drainer([&] {
        while (out.next().has_value()) {
        }
      });
      for (std::uint64_t i = 0; i < kIngestItems; ++i) {
        const bool pushed = in.push();
        SDAF_ASSERT(pushed);
      }
      in.close();
      drainer.join();
    }
    const auto report = stream.finish();
    SDAF_ASSERT(report.completed);
    wall += run_clock.elapsed_seconds();
    processed += kIngestItems;
    dummies += report.total_dummies();
  }
  state.counters["items_per_second"] =
      wall > 0 ? static_cast<double>(processed) / wall : 0.0;
  state.counters["dummies_per_run"] = static_cast<double>(
      dummies / std::max<std::uint64_t>(1, state.iterations()));
}

void BM_StreamIngest_Sim(benchmark::State& state) {
  run_ingest(state, exec::Backend::Sim, /*pass_rate=*/0.1);
}
BENCHMARK(BM_StreamIngest_Sim)->Iterations(3)->Unit(benchmark::kMillisecond);

void BM_StreamIngest_Threaded(benchmark::State& state) {
  run_ingest(state, exec::Backend::Threaded, /*pass_rate=*/0.1);
}
BENCHMARK(BM_StreamIngest_Threaded)
    ->Iterations(3)->Unit(benchmark::kMillisecond);

void BM_StreamIngest_Pooled(benchmark::State& state) {
  run_ingest(state, exec::Backend::Pooled, /*pass_rate=*/0.1);
}
BENCHMARK(BM_StreamIngest_Pooled)
    ->Iterations(3)->Unit(benchmark::kMillisecond);

}  // namespace
