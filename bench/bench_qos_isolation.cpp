// Multi-tenant QoS isolation: what a latency-sensitive tenant's push ->
// poll round trip costs while a batch tenant saturates the same shared
// pool, and how much of that interference the qos machinery (weighted
// deficit-round-robin injector lanes + per-tenant credit windows) removes.
//
// Recorded in BENCH_qos.json by tools/bench.sh (fixed benchmark names =
// the schema). Three interactive configurations, same counters each
// (p50_ns / p99_ns over every round trip, batch_items pushed by the
// co-tenant while they were taken):
//   - BM_QosInteractive_Solo: the interactive tenant alone on the shared
//     pool. The baseline every other number is compared against.
//   - BM_QosInteractive_SharedDRR: a batch tenant saturates the pool;
//     DRR on (interactive weight 4 vs batch 1) and the batch tenant runs
//     under a 64-item credit window. The figure of merit: p99 here should
//     stay within a small multiple of solo p99 (tools/bench.sh prints the
//     ratio; the acceptance budget is <= 5x on a multi-core host).
//   - BM_QosInteractive_SharedUnfair: same co-tenant, fair_injector off
//     and no credit window -- the legacy single-lane injector. This is
//     the interference the subsystem exists to remove; expect p99 to
//     degrade with the batch tenant's queue depth.
// Plus the bandwidth-share check:
//   - BM_QosWeightedShare: two identical batch tenants, weights 4 and 1,
//     pushing concurrently through the DRR injector; counters heavy_items
//     / light_items and share_ratio (heavy / light items accepted --
//     biased toward the heavy tenant when injector bandwidth is the
//     bottleneck, and an exact fairness audit lives in
//     PoolExecutor::tenant_metrics() rather than this wall-clock number).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/core/compile.h"
#include "src/exec/session.h"
#include "src/exec/stream.h"
#include "src/qos/credit.h"
#include "src/runtime/pool_executor.h"
#include "src/support/contracts.h"
#include "src/support/timer.h"
#include "src/workloads/filters.h"
#include "src/workloads/topologies.h"

namespace {

using namespace sdaf;

constexpr std::uint64_t kRoundTrips = 1500;

exec::StreamSpec tenant_spec(const core::CompileResult& compiled,
                             runtime::PoolExecutor& pool,
                             const std::string& tenant, double weight) {
  exec::StreamSpec spec;
  spec.run.backend = exec::Backend::Pooled;
  spec.run.mode = runtime::DummyMode::Propagation;
  spec.run.apply(compiled);
  spec.run.pool = &pool;
  spec.run.tenant = tenant;
  spec.run.tenant_weight = weight;
  spec.metrics = false;
  return spec;
}

// A batch tenant that pushes as fast as backpressure (channel space and,
// when its spec carries a credit gauge, the tenant window) allows, with a
// drainer thread on the tap, until asked to stop.
struct BatchTenant {
  exec::Session session;
  exec::Stream stream;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> pushed{0};
  std::thread pusher;
  std::thread drainer;

  BatchTenant(const StreamGraph& g, exec::StreamSpec spec)
      : session(g, workloads::passthrough_kernels(g)),
        stream(session.open(std::move(spec))) {}

  void start() {
    pusher = std::thread([this] {
      using namespace std::chrono_literals;
      exec::InputPort& in = stream.input(0);
      while (!stop.load(std::memory_order_relaxed)) {
        // Deadline-bounded so a raised stop flag is honored promptly even
        // when the credit window or the feed is full.
        if (in.try_push_for(runtime::Value{}, 5ms) ==
            exec::PortPushOutcome::Ok)
          pushed.fetch_add(1, std::memory_order_relaxed);
      }
      in.close();
    });
    drainer = std::thread([this] {
      exec::OutputPort& out = stream.output(0);
      while (out.next().has_value()) {
      }
    });
  }

  std::uint64_t finish() {
    stop.store(true, std::memory_order_relaxed);
    pusher.join();
    drainer.join();
    const auto report = stream.finish();
    SDAF_ASSERT(report.completed);
    return pushed.load(std::memory_order_relaxed);
  }
};

void report_percentiles(benchmark::State& state,
                        std::vector<double>& samples_ns) {
  SDAF_ASSERT(!samples_ns.empty());
  std::sort(samples_ns.begin(), samples_ns.end());
  const auto at = [&](double q) {
    const auto idx = static_cast<std::size_t>(
        q * static_cast<double>(samples_ns.size() - 1));
    return samples_ns[idx];
  };
  state.counters["p50_ns"] = at(0.50);
  state.counters["p99_ns"] = at(0.99);
}

// One interactive round trip at a time against an optionally saturated
// pool. `with_batch` runs the co-tenant; `fair` + `credit_limit` pick the
// qos configuration under test.
void run_interactive(benchmark::State& state, bool with_batch, bool fair,
                     std::uint64_t credit_limit) {
  const StreamGraph g = workloads::continuation_ladder(4, 64, 1);
  const auto compiled = core::compile(g);
  SDAF_ASSERT(compiled.ok);
  std::vector<double> samples_ns;
  samples_ns.reserve(kRoundTrips);
  std::uint64_t batch_items = 0;
  for (auto _ : state) {
    runtime::PoolExecutor::Options popt;
    popt.workers = 2;
    popt.fair_injector = fair;
    runtime::PoolExecutor pool(popt);
    qos::CreditGauge batch_credits(credit_limit);  // limit 0 = unlimited

    std::unique_ptr<BatchTenant> batch;
    if (with_batch) {
      exec::StreamSpec bs = tenant_spec(compiled, pool, "batch", 1.0);
      if (credit_limit > 0) bs.run.credits = &batch_credits;
      batch = std::make_unique<BatchTenant>(g, std::move(bs));
      batch->start();
    }

    exec::Session session(g, workloads::passthrough_kernels(g));
    exec::Stream stream =
        session.open(tenant_spec(compiled, pool, "interactive", 4.0));
    exec::InputPort& in = stream.input(0);
    exec::OutputPort& out = stream.output(0);
    for (std::uint64_t i = 0; i < kRoundTrips; ++i) {
      Stopwatch rtt;
      const bool ok = in.push();
      SDAF_ASSERT(ok);
      auto item = out.next();
      SDAF_ASSERT(item.has_value());
      samples_ns.push_back(rtt.elapsed_seconds() * 1e9);
      benchmark::DoNotOptimize(item->seq);
    }
    in.close();
    const auto report = stream.finish();
    SDAF_ASSERT(report.completed);
    if (batch != nullptr) batch_items += batch->finish();
  }
  report_percentiles(state, samples_ns);
  state.counters["batch_items"] = static_cast<double>(batch_items);
}

void BM_QosInteractive_Solo(benchmark::State& state) {
  run_interactive(state, /*with_batch=*/false, /*fair=*/true,
                  /*credit_limit=*/0);
}
BENCHMARK(BM_QosInteractive_Solo)->Iterations(3)->Unit(benchmark::kMillisecond);

void BM_QosInteractive_SharedDRR(benchmark::State& state) {
  run_interactive(state, /*with_batch=*/true, /*fair=*/true,
                  /*credit_limit=*/64);
}
BENCHMARK(BM_QosInteractive_SharedDRR)
    ->Iterations(3)->Unit(benchmark::kMillisecond);

void BM_QosInteractive_SharedUnfair(benchmark::State& state) {
  run_interactive(state, /*with_batch=*/true, /*fair=*/false,
                  /*credit_limit=*/0);
}
BENCHMARK(BM_QosInteractive_SharedUnfair)
    ->Iterations(3)->Unit(benchmark::kMillisecond);

// Two identical saturating tenants at weights 4:1 on the DRR injector for
// a fixed wall-time window; the accepted-item split is the coarse share
// check (the exact per-lane grant accounting is tenant_metrics()).
void BM_QosWeightedShare(benchmark::State& state) {
  const StreamGraph g = workloads::continuation_ladder(4, 64, 1);
  const auto compiled = core::compile(g);
  SDAF_ASSERT(compiled.ok);
  std::uint64_t heavy_items = 0;
  std::uint64_t light_items = 0;
  for (auto _ : state) {
    runtime::PoolExecutor::Options popt;
    popt.workers = 2;
    popt.fair_injector = true;
    runtime::PoolExecutor pool(popt);

    BatchTenant heavy(g, tenant_spec(compiled, pool, "heavy", 4.0));
    BatchTenant light(g, tenant_spec(compiled, pool, "light", 1.0));
    heavy.start();
    light.start();
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    heavy_items += heavy.finish();
    light_items += light.finish();
  }
  state.counters["heavy_items"] = static_cast<double>(heavy_items);
  state.counters["light_items"] = static_cast<double>(light_items);
  state.counters["share_ratio"] =
      light_items > 0
          ? static_cast<double>(heavy_items) / static_cast<double>(light_items)
          : 0.0;
}
BENCHMARK(BM_QosWeightedShare)->Iterations(2)->Unit(benchmark::kMillisecond);

}  // namespace
