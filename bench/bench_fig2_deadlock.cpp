// E2 -- the Fig. 2 deadlock, quantified. Series 1 measures how quickly the
// unprotected triangle wedges as buffers shrink (sweeps-to-deadlock);
// series 2 measures deadlock *frequency* under Bernoulli filtering without
// avoidance; series 3 verifies zero deadlocks with compiled intervals over
// the same sweep (counter deadlock_rate must be 0).
#include <benchmark/benchmark.h>

#include "src/core/compile.h"
#include "src/exec/session.h"
#include "src/support/contracts.h"
#include "src/workloads/filters.h"
#include "src/workloads/topologies.h"

namespace {

using namespace sdaf;

std::vector<std::shared_ptr<runtime::Kernel>> adversarial_kernels() {
  std::vector<std::shared_ptr<runtime::Kernel>> kernels;
  kernels.push_back(std::make_shared<runtime::RelayKernel>(
      workloads::adversarial_prefix_filter(1, 1u << 20)));
  kernels.push_back(runtime::pass_through_kernel());
  kernels.push_back(runtime::pass_through_kernel());
  return kernels;
}

void BM_TimeToDeadlock_Unprotected(benchmark::State& state) {
  const auto buffer = state.range(0);
  const StreamGraph g = workloads::fig2_triangle(buffer, buffer, buffer);
  std::uint64_t sweeps = 0;
  for (auto _ : state) {
    exec::Session session(g, adversarial_kernels());
    exec::RunSpec spec;
    spec.backend = exec::Backend::Sim;
    spec.mode = runtime::DummyMode::None;
    spec.num_inputs = 1u << 20;
    const auto r = session.run(spec);
    SDAF_ASSERT(r.deadlocked);
    sweeps = r.sweeps;
    benchmark::DoNotOptimize(r);
  }
  state.counters["sweeps_to_deadlock"] = static_cast<double>(sweeps);
}
BENCHMARK(BM_TimeToDeadlock_Unprotected)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Arg(16)->Arg(32);

void BM_BernoulliDeadlockRate_Unprotected(benchmark::State& state) {
  const auto buffer = state.range(0);
  const StreamGraph g = workloads::fig2_triangle(buffer, buffer, buffer);
  std::size_t deadlocks = 0;
  std::size_t runs = 0;
  std::uint64_t seed = 0;
  for (auto _ : state) {
    exec::Session session(g, workloads::relay_kernels(g, 0.5, seed++));
    exec::RunSpec spec;
    spec.backend = exec::Backend::Sim;
    spec.mode = runtime::DummyMode::None;
    spec.num_inputs = 2000;
    deadlocks += session.run(spec).deadlocked ? 1 : 0;
    ++runs;
  }
  state.counters["deadlock_rate"] =
      runs == 0 ? 0.0
                : static_cast<double>(deadlocks) / static_cast<double>(runs);
}
BENCHMARK(BM_BernoulliDeadlockRate_Unprotected)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Iterations(50);

void BM_BernoulliDeadlockRate_Protected(benchmark::State& state) {
  const auto buffer = state.range(0);
  const StreamGraph g = workloads::fig2_triangle(buffer, buffer, buffer);
  const auto compiled = core::compile(g);
  SDAF_ASSERT(compiled.ok);
  std::size_t deadlocks = 0;
  std::uint64_t seed = 0;
  for (auto _ : state) {
    exec::Session session(g, workloads::relay_kernels(g, 0.5, seed++));
    exec::RunSpec spec;
    spec.backend = exec::Backend::Sim;
    spec.mode = runtime::DummyMode::Propagation;
    spec.apply(compiled);
    spec.num_inputs = 2000;
    const auto r = session.run(spec);
    deadlocks += r.deadlocked ? 1 : 0;
    SDAF_ASSERT(r.completed);
  }
  state.counters["deadlock_rate"] = static_cast<double>(deadlocks);
}
BENCHMARK(BM_BernoulliDeadlockRate_Protected)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Iterations(50);

}  // namespace
