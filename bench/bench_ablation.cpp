// Ablations for the design decisions DESIGN.md section 6/6b calls out.
//
// 1. Paper-literal Propagation protocol (no continuation forwarding) vs
//    the augmented protocol: deadlock rate over random CS4 chains with
//    interior filtering. This quantifies reproduction finding 2.
// 2. Section VI.A recurrence with vs without the shared-endpoint fixup:
//    how many component bounds the paper-literal recurrence leaves looser
//    than exact (unsafe) on shared-endpoint ladders.
// 3. Forwarding traffic cost: dummies with the augmented Propagation
//    protocol vs Non-Propagation on the same interior-filtering workload.
#include <benchmark/benchmark.h>

#include "src/core/compile.h"
#include "src/cs4/propagation_ladder.h"
#include "src/exec/session.h"
#include "src/support/contracts.h"
#include "src/support/prng.h"
#include "src/workloads/filters.h"
#include "src/workloads/random_ladder.h"

namespace {

using namespace sdaf;

void BM_Ablation_PaperLiteralPropagation_DeadlockRate(
    benchmark::State& state) {
  const bool forward = state.range(0) != 0;
  std::size_t deadlocks = 0;
  std::size_t runs = 0;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    Prng rng(seed * 7211 + 3);
    workloads::RandomCs4Options gopt;
    gopt.components = 1 + seed % 3;
    gopt.ladder.rungs = 1 + seed % 3;
    gopt.sp.target_edges = 5;
    gopt.sp.max_buffer = 4;
    gopt.ladder.max_buffer = 4;
    const auto g = workloads::random_cs4_chain(rng, gopt);
    const auto compiled = core::compile(g);
    SDAF_ASSERT(compiled.ok);
    exec::Session session(g,
                          workloads::relay_kernels(g, 0.5, seed * 31 + 1));
    exec::RunSpec spec;
    spec.backend = exec::Backend::Sim;
    spec.mode = runtime::DummyMode::Propagation;
    spec.intervals = compiled.integer_intervals(core::Rounding::Floor);
    if (forward) spec.forward_on_filter = compiled.forward_on_filter();
    spec.num_inputs = 400;
    deadlocks += session.run(spec).deadlocked ? 1 : 0;
    ++runs;
    ++seed;
  }
  state.counters["deadlock_rate"] =
      runs == 0 ? 0.0
                : static_cast<double>(deadlocks) / static_cast<double>(runs);
}
BENCHMARK(BM_Ablation_PaperLiteralPropagation_DeadlockRate)
    ->Arg(0)   // paper-literal: schedules + dummy forwarding only
    ->Arg(1)   // augmented: + continuation forwarding
    ->Iterations(60);

void BM_Ablation_RecurrenceFixup_LooseBounds(benchmark::State& state) {
  const bool fixup = state.range(0) != 0;
  std::size_t loose = 0;
  std::size_t bounds_total = 0;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    Prng rng(seed * 103 + 29);
    workloads::RandomLadderOptions opt;
    opt.rungs = 2 + seed % 4;
    opt.left_interior = 1 + seed % 2;   // force shared endpoints
    opt.right_interior = 1 + seed % 2;
    const auto g = workloads::random_ladder(rng, opt);
    const auto analysis = analyze_cs4(g);
    SDAF_ASSERT(analysis.is_cs4);
    for (const Ladder& ladder : analysis.ladders) {
      const auto exact =
          ladder_component_bounds_enum(analysis.skeleton, ladder);
      RecurrenceOptions ropt;
      ropt.shared_endpoint_fixup = fixup;
      const auto rec = ladder_component_bounds_recurrence(
          analysis.skeleton, ladder, ropt);
      for (std::size_t i = 0; i < exact.size(); ++i) {
        ++bounds_total;
        if (rec[i] > exact[i]) ++loose;  // looser than exact = unsafe
      }
    }
    ++seed;
  }
  state.counters["loose_bounds"] = static_cast<double>(loose);
  state.counters["bounds_total"] = static_cast<double>(bounds_total);
}
BENCHMARK(BM_Ablation_RecurrenceFixup_LooseBounds)
    ->Arg(0)   // paper-literal recurrence
    ->Arg(1)   // with shared-endpoint fixup
    ->Iterations(200);

void BM_Ablation_ForwardingTrafficCost(benchmark::State& state) {
  // Interior-filtering pipeline inside a cycle: every hop filters, so the
  // Propagation Algorithm pays per-filter forwarding on continuation
  // edges; Non-Propagation amortizes via L/h schedules.
  Prng rng(4242);
  workloads::RandomLadderOptions gopt;
  gopt.rungs = 3;
  gopt.component_edges = 3;
  gopt.max_buffer = 8;
  const auto g = workloads::random_ladder(rng, gopt);
  const bool nonprop = state.range(0) != 0;
  core::CompileOptions copt;
  copt.algorithm = nonprop ? core::Algorithm::NonPropagation
                           : core::Algorithm::Propagation;
  const auto compiled = core::compile(g, copt);
  SDAF_ASSERT(compiled.ok);
  std::uint64_t dummies = 0;
  std::uint64_t seed = 7;
  for (auto _ : state) {
    exec::Session session(g, workloads::relay_kernels(g, 0.6, seed++));
    exec::RunSpec spec;
    spec.backend = exec::Backend::Sim;
    spec.mode = nonprop ? runtime::DummyMode::NonPropagation
                        : runtime::DummyMode::Propagation;
    spec.apply(compiled);
    spec.num_inputs = 3000;
    const auto r = session.run(spec);
    SDAF_ASSERT(r.completed);
    dummies = r.total_dummies();
  }
  state.counters["dummies"] = static_cast<double>(dummies);
}
BENCHMARK(BM_Ablation_ForwardingTrafficCost)->Arg(0)->Arg(1)->Iterations(3);

}  // namespace
