// Pooled scheduler vs thread-per-node executor on large SP-ladders:
// the pool runs N-node graphs on a fixed worker count (1-16), while the
// thread-per-node executor needs N OS threads (so its range stops at 1k --
// 10k threads is exactly the regime the pool exists to avoid).
// items_per_second follows bench_throughput's convention: rate against the
// run's own wall time.
#include <benchmark/benchmark.h>

#include <ctime>
#include <map>
#include <thread>

#include "src/core/compile_cache.h"
#include "src/exec/session.h"
#include "src/runtime/pool_executor.h"
#include "src/support/contracts.h"
#include "src/support/prng.h"
#include "src/workloads/filters.h"
#include "src/workloads/random_ladder.h"

namespace {

using namespace sdaf;

constexpr std::uint64_t kItems = 32;

// Ladder with ~`nodes` nodes: source + sink + two interior sides.
const StreamGraph& ladder_of(std::size_t nodes) {
  static std::map<std::size_t, StreamGraph> cache;
  auto it = cache.find(nodes);
  if (it == cache.end()) {
    Prng rng(0xBEEF ^ nodes);
    workloads::RandomLadderOptions opt;
    opt.rungs = nodes / 4;
    opt.left_interior = nodes / 2;
    opt.right_interior = nodes / 2;
    opt.component_edges = 1;
    opt.max_buffer = 4;
    it = cache.emplace(nodes, workloads::random_ladder(rng, opt)).first;
  }
  return it->second;
}

void BM_PoolExecutor_Ladder(benchmark::State& state) {
  const auto nodes = static_cast<std::size_t>(state.range(0));
  const auto workers = static_cast<std::size_t>(state.range(1));
  const StreamGraph& g = ladder_of(nodes);
  runtime::PoolExecutor pool(workers);
  exec::Session session(g, workloads::passthrough_kernels(g));
  exec::RunSpec spec;
  spec.backend = exec::Backend::Pooled;
  spec.pool = &pool;
  spec.mode = runtime::DummyMode::None;
  spec.num_inputs = kItems;
  std::uint64_t processed = 0;
  double wall = 0.0;
  for (auto _ : state) {
    const auto r = session.run(spec);
    SDAF_ASSERT(r.completed);
    processed += kItems;
    wall += r.wall_seconds;
  }
  state.counters["nodes"] = static_cast<double>(g.node_count());
  state.counters["workers"] = static_cast<double>(workers);
  state.counters["items_per_second"] =
      wall > 0 ? static_cast<double>(processed) / wall : 0.0;
}
BENCHMARK(BM_PoolExecutor_Ladder)
    ->ArgsProduct({{100, 1000, 10000}, {1, 2, 4, 8, 16}})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(2);

// The CI scaling ladder: batch=1 pooled runs at 8 and 16 workers whose
// counters let tools/ci.sh assert real work-stealing scaling instead of
// silently passing on a 1-cpu runner. effective_parallelism is process CPU
// time over wall time across the measured runs: ~1.0 means the workers
// serialized (or the runner has one core), ~W means W workers were
// genuinely busy -- futex-parked idle workers burn no CPU, so oversized
// pools don't inflate it. hardware_concurrency rides along so a reader
// (and tools/bench.sh) can tell "scheduler regressed" from "machine
// cannot scale".
void BM_PoolExecutor_LadderScaling(benchmark::State& state) {
  const auto nodes = static_cast<std::size_t>(state.range(0));
  const auto workers = static_cast<std::size_t>(state.range(1));
  const StreamGraph& g = ladder_of(nodes);
  runtime::PoolExecutor pool(workers);
  exec::Session session(g, workloads::passthrough_kernels(g));
  exec::RunSpec spec;
  spec.backend = exec::Backend::Pooled;
  spec.pool = &pool;
  spec.mode = runtime::DummyMode::None;
  spec.num_inputs = kItems;
  spec.batch = 1;
  std::uint64_t processed = 0;
  double wall = 0.0;
  const std::clock_t cpu_start = std::clock();
  for (auto _ : state) {
    const auto r = session.run(spec);
    SDAF_ASSERT(r.completed);
    processed += kItems;
    wall += r.wall_seconds;
  }
  const double cpu_seconds =
      static_cast<double>(std::clock() - cpu_start) / CLOCKS_PER_SEC;
  state.counters["nodes"] = static_cast<double>(g.node_count());
  state.counters["workers"] = static_cast<double>(workers);
  state.counters["items_per_second"] =
      wall > 0 ? static_cast<double>(processed) / wall : 0.0;
  state.counters["effective_parallelism"] = wall > 0 ? cpu_seconds / wall : 0.0;
  state.counters["hardware_concurrency"] =
      static_cast<double>(std::thread::hardware_concurrency());
}
BENCHMARK(BM_PoolExecutor_LadderScaling)
    ->ArgsProduct({{100, 1000}, {8, 16}})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(2);

void BM_ThreadPerNode_Ladder(benchmark::State& state) {
  const auto nodes = static_cast<std::size_t>(state.range(0));
  const StreamGraph& g = ladder_of(nodes);
  exec::Session session(g, workloads::passthrough_kernels(g));
  exec::RunSpec spec;
  spec.backend = exec::Backend::Threaded;
  spec.mode = runtime::DummyMode::None;
  spec.num_inputs = kItems;
  std::uint64_t processed = 0;
  double wall = 0.0;
  for (auto _ : state) {
    const auto r = session.run(spec);
    SDAF_ASSERT(r.completed);
    processed += kItems;
    wall += r.wall_seconds;
  }
  state.counters["nodes"] = static_cast<double>(g.node_count());
  state.counters["workers"] = static_cast<double>(g.node_count());
  state.counters["items_per_second"] =
      wall > 0 ? static_cast<double>(processed) / wall : 0.0;
}
// 10k OS threads is the pathology the pool removes; cap the contrast at 1k.
BENCHMARK(BM_ThreadPerNode_Ladder)
    ->Arg(100)
    ->Arg(1000)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(2);

// Pooled data plane under filtering: the same ladder with Bernoulli
// filtering and Propagation avoidance armed, at pass rates 1.0 / 0.5 / 0.1.
// Low pass rates make the wire traffic dummy-dominated, which is the regime
// dummy run-length coalescing and batched channel ops are built for.
void BM_PoolExecutor_Filtering(benchmark::State& state) {
  constexpr std::uint32_t kFilterBatch = 32;
  const auto pass_pct = static_cast<double>(state.range(0)) / 100.0;
  const StreamGraph& g = ladder_of(100);
  const auto compiled = core::compile(g);
  SDAF_ASSERT(compiled.ok);
  runtime::PoolExecutor pool(2);
  exec::Session session(g, workloads::relay_kernels(g, pass_pct, 1234));
  exec::RunSpec spec;
  spec.backend = exec::Backend::Pooled;
  spec.pool = &pool;
  spec.mode = runtime::DummyMode::Propagation;
  spec.apply(compiled);
  spec.num_inputs = 512;
  spec.batch = kFilterBatch;
  std::uint64_t processed = 0;
  std::uint64_t dummies = 0;
  double wall = 0.0;
  for (auto _ : state) {
    const auto r = session.run(spec);
    SDAF_ASSERT(r.completed);
    processed += spec.num_inputs;
    dummies += r.total_dummies();
    wall += r.wall_seconds;
  }
  state.counters["pass_rate"] = pass_pct;
  state.counters["items_per_second"] =
      wall > 0 ? static_cast<double>(processed) / wall : 0.0;
  state.counters["dummies_per_run"] = static_cast<double>(
      dummies / std::max<std::uint64_t>(1, state.iterations()));
}
BENCHMARK(BM_PoolExecutor_Filtering)
    ->Arg(100)
    ->Arg(50)
    ->Arg(10)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

// Compile-pass amortization for multi-tenant submission: first submission
// pays CS4 decomposition + intervals; the next 63 hit core::CompileCache.
void BM_CompileCache_Resubmission(benchmark::State& state) {
  const StreamGraph& g = ladder_of(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    core::CompileCache cache(16);
    for (int i = 0; i < 64; ++i) {
      auto r = cache.get_or_compile(g);
      benchmark::DoNotOptimize(r);
    }
    const auto s = cache.stats();
    SDAF_ASSERT(s.misses == 1 && s.hits == 63);
  }
  state.counters["nodes"] =
      static_cast<double>(g.node_count());
}
BENCHMARK(BM_CompileCache_Resubmission)->Arg(100)->Arg(1000);

void BM_Compile_NoCache(benchmark::State& state) {
  const StreamGraph& g = ladder_of(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) {
      auto r = core::compile(g);
      benchmark::DoNotOptimize(r);
    }
  }
  state.counters["nodes"] = static_cast<double>(g.node_count());
}
BENCHMARK(BM_Compile_NoCache)->Arg(100)->Arg(1000);

}  // namespace
