// E3 -- Fig. 3 reproduction: the worked dummy-interval example. Verifies
// the exact values the paper prints and times every engine on the figure's
// graph. Counters report the computed intervals so the "figure" is
// regenerated in the benchmark output itself:
//   Propagation:      [ab]=6, [ac]=8, others inf
//   Non-Propagation:  [ab]=[be]=[ef]=6/3=2, [ac]=[cd]=[df]=8/3 (roundup 3)
#include <benchmark/benchmark.h>

#include "src/intervals/baseline.h"
#include "src/intervals/nonprop_sp.h"
#include "src/intervals/propagation_sp.h"
#include "src/spdag/recognizer.h"
#include "src/support/contracts.h"
#include "src/workloads/topologies.h"

namespace {

using namespace sdaf;

void check_fig3_prop(const IntervalMap& iv) {
  SDAF_ASSERT(iv[0] == Rational(6));
  SDAF_ASSERT(iv[1] == Rational(8));
  for (EdgeId e = 2; e < 6; ++e) SDAF_ASSERT(iv[e].is_infinite());
}

void check_fig3_nonprop(const IntervalMap& iv) {
  SDAF_ASSERT(iv[0] == Rational(2));
  SDAF_ASSERT(iv[1] == Rational(8, 3));
  SDAF_ASSERT(iv[1].ceil() == 3);  // the paper's roundup
}

void BM_Fig3_Propagation_Setivals(benchmark::State& state) {
  const StreamGraph g = workloads::fig3_cycle();
  const auto rec = recognize_sp(g);
  SDAF_ASSERT(rec.is_sp);
  for (auto _ : state) {
    auto iv = propagation_intervals_sp(g, rec.tree);
    benchmark::DoNotOptimize(iv);
  }
  check_fig3_prop(propagation_intervals_sp(g, rec.tree));
  state.counters["ab"] = 6;
  state.counters["ac"] = 8;
}
BENCHMARK(BM_Fig3_Propagation_Setivals);

void BM_Fig3_Propagation_Naive(benchmark::State& state) {
  const StreamGraph g = workloads::fig3_cycle();
  const auto rec = recognize_sp(g);
  for (auto _ : state) {
    auto iv = propagation_intervals_sp_naive(g, rec.tree);
    benchmark::DoNotOptimize(iv);
  }
  check_fig3_prop(propagation_intervals_sp_naive(g, rec.tree));
}
BENCHMARK(BM_Fig3_Propagation_Naive);

void BM_Fig3_Propagation_Exact(benchmark::State& state) {
  const StreamGraph g = workloads::fig3_cycle();
  for (auto _ : state) {
    auto iv = propagation_intervals_exact(g);
    benchmark::DoNotOptimize(iv);
  }
  check_fig3_prop(propagation_intervals_exact(g));
}
BENCHMARK(BM_Fig3_Propagation_Exact);

void BM_Fig3_NonPropagation(benchmark::State& state) {
  const StreamGraph g = workloads::fig3_cycle();
  const auto rec = recognize_sp(g);
  for (auto _ : state) {
    auto iv = nonprop_intervals_sp(g, rec.tree);
    benchmark::DoNotOptimize(iv);
  }
  check_fig3_nonprop(nonprop_intervals_sp(g, rec.tree));
  state.counters["ab_x3"] = 6;   // 6/3 = 2 -> reported *3 to stay integral
  state.counters["ac_x3"] = 8;   // 8/3 -> roundup 3
}
BENCHMARK(BM_Fig3_NonPropagation);

void BM_Fig3_NonPropagation_Exact(benchmark::State& state) {
  const StreamGraph g = workloads::fig3_cycle();
  for (auto _ : state) {
    auto iv = nonprop_intervals_exact(g);
    benchmark::DoNotOptimize(iv);
  }
  check_fig3_nonprop(nonprop_intervals_exact(g));
}
BENCHMARK(BM_Fig3_NonPropagation_Exact);

// Recognition itself (decomposition tree construction) on the figure.
void BM_Fig3_Recognition(benchmark::State& state) {
  const StreamGraph g = workloads::fig3_cycle();
  for (auto _ : state) {
    auto rec = recognize_sp(g);
    benchmark::DoNotOptimize(rec);
  }
}
BENCHMARK(BM_Fig3_Recognition);

}  // namespace
