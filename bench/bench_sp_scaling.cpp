// E4/E5 -- compilation-overhead scaling on SP-DAGs (the paper's central
// efficiency claim, Section IV):
//   * Propagation SETIVALS: O(|G|)      (series 1)
//   * Propagation naive:    O(|G|^2)    (series 2, the ablation)
//   * Non-Propagation:      O(|G|^2)    (series 3)
//   * Exponential baseline: exponential (series 4, small sizes only)
// Run with --benchmark_counters_tabular=true for the table; the growth
// exponents are visible from the ns-vs-edges columns.
#include <benchmark/benchmark.h>

#include <map>

#include "src/intervals/baseline.h"
#include "src/intervals/nonprop_sp.h"
#include "src/intervals/propagation_sp.h"
#include "src/spdag/recognizer.h"
#include "src/support/prng.h"
#include "src/workloads/random_sp.h"

namespace {

using namespace sdaf;

const BuiltSp& graph_of_size(std::size_t edges) {
  static std::map<std::size_t, BuiltSp> cache;
  auto it = cache.find(edges);
  if (it == cache.end()) {
    Prng rng(0xC0FFEE + edges);
    workloads::RandomSpOptions opt;
    opt.target_edges = edges;
    opt.max_buffer = 16;
    it = cache.emplace(edges, workloads::random_sp(rng, opt)).first;
  }
  return it->second;
}

void BM_SpPropagation_Setivals(benchmark::State& state) {
  const auto& built = graph_of_size(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto iv = propagation_intervals_sp(built.graph, built.tree);
    benchmark::DoNotOptimize(iv);
  }
  state.counters["edges"] = static_cast<double>(built.graph.edge_count());
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SpPropagation_Setivals)
    ->RangeMultiplier(4)
    ->Range(16, 16 << 10)
    ->Complexity(benchmark::oN);

void BM_SpPropagation_Naive(benchmark::State& state) {
  const auto& built = graph_of_size(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto iv = propagation_intervals_sp_naive(built.graph, built.tree);
    benchmark::DoNotOptimize(iv);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SpPropagation_Naive)
    ->RangeMultiplier(4)
    ->Range(16, 16 << 10)
    ->Complexity(benchmark::oNSquared);

void BM_SpNonPropagation(benchmark::State& state) {
  const auto& built = graph_of_size(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto iv = nonprop_intervals_sp(built.graph, built.tree);
    benchmark::DoNotOptimize(iv);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SpNonPropagation)
    ->RangeMultiplier(4)
    ->Range(16, 16 << 10)
    ->Complexity(benchmark::oNSquared);

// Exponential baseline: only feasible on small graphs; the point of the
// series is the blow-up relative to the polynomial algorithms above.
void BM_SpPropagation_ExponentialBaseline(benchmark::State& state) {
  const auto& built = graph_of_size(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto iv = propagation_intervals_exact(built.graph);
    benchmark::DoNotOptimize(iv);
  }
}
BENCHMARK(BM_SpPropagation_ExponentialBaseline)
    ->RangeMultiplier(2)
    ->Range(16, 64);

// Worst-case shape for the naive variant: a deep series chain of parallel
// pairs. Every pair is a Pc component whose source-out scan in the naive
// algorithm touches O(1) edges, but SETIVALS' advantage shows on the
// *skewed* variant below: parallel(edge, series(pair, pair, ...)) nests
// every pair under a long spine, so the naive Pc re-scans walk O(N) leaves
// O(N) times while SETIVALS stays linear.
const BuiltSp& skewed_graph(std::size_t pairs) {
  static std::map<std::size_t, BuiltSp> cache;
  auto it = cache.find(pairs);
  if (it == cache.end()) {
    // series(pair_1, ..., pair_k) nested under parallel with a bypass edge,
    // repeated: parallel(bypass, series(parallel(bypass, series(...)), pair)).
    SpSpec spec = SpSpec::parallel({SpSpec::edge(3), SpSpec::edge(5)});
    for (std::size_t i = 1; i < pairs; ++i) {
      spec = SpSpec::parallel(
          {SpSpec::edge(static_cast<std::int64_t>(3 + i % 7)),
           SpSpec::series(
               {std::move(spec),
                SpSpec::parallel({SpSpec::edge(2), SpSpec::edge(4)})})});
    }
    it = cache.emplace(pairs, build_sp(spec)).first;
  }
  return it->second;
}

void BM_SpPropagation_Setivals_Skewed(benchmark::State& state) {
  const auto& built = skewed_graph(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto iv = propagation_intervals_sp(built.graph, built.tree);
    benchmark::DoNotOptimize(iv);
  }
  state.counters["edges"] = static_cast<double>(built.graph.edge_count());
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SpPropagation_Setivals_Skewed)
    ->RangeMultiplier(4)
    ->Range(16, 4096)
    ->Complexity(benchmark::oN);

void BM_SpPropagation_Naive_Skewed(benchmark::State& state) {
  const auto& built = skewed_graph(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto iv = propagation_intervals_sp_naive(built.graph, built.tree);
    benchmark::DoNotOptimize(iv);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SpPropagation_Naive_Skewed)
    ->RangeMultiplier(4)
    ->Range(16, 4096)
    ->Complexity(benchmark::oNSquared);

// Recognition (decomposition-tree construction) scaling: the step the
// interval algorithms presuppose.
void BM_SpRecognition(benchmark::State& state) {
  const auto& built = graph_of_size(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto rec = recognize_sp(built.graph);
    benchmark::DoNotOptimize(rec);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SpRecognition)
    ->RangeMultiplier(4)
    ->Range(16, 16 << 10)
    ->Complexity(benchmark::oNLogN);

}  // namespace
