// E7/E8 -- SP-ladder interval computation scaling (Section VI):
//   * Propagation, paper recurrence:  O(|G|)   (Section VI.A)
//   * Propagation, cycle enumeration: O(k^2)   (our exact reference)
//   * Non-Propagation:                O(|G|^3) (Section VI.B)
// plus full-graph exponential baseline on small ladders for the blow-up
// contrast. Sizes are rung counts; component_edges scales |G| per rung.
#include <benchmark/benchmark.h>

#include <map>

#include "src/cs4/decompose.h"
#include "src/intervals/baseline.h"
#include "src/support/contracts.h"
#include "src/support/prng.h"
#include "src/workloads/random_ladder.h"

namespace {

using namespace sdaf;

struct LadderCase {
  StreamGraph graph;
  Cs4Analysis analysis;
};

const LadderCase& ladder_of(std::size_t rungs) {
  static std::map<std::size_t, LadderCase> cache;
  auto it = cache.find(rungs);
  if (it == cache.end()) {
    Prng rng(0xABCD + rungs);
    workloads::RandomLadderOptions opt;
    opt.rungs = rungs;
    opt.left_interior = rungs;
    opt.right_interior = rungs;
    opt.component_edges = 3;
    opt.max_buffer = 16;
    LadderCase c{workloads::random_ladder(rng, opt), {}};
    c.analysis = analyze_cs4(c.graph);
    SDAF_ASSERT(c.analysis.is_cs4);
    it = cache.emplace(rungs, std::move(c)).first;
  }
  return it->second;
}

void BM_LadderProp_PaperRecurrence(benchmark::State& state) {
  const auto& c = ladder_of(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto iv = cs4_propagation_intervals(c.graph, c.analysis,
                                        LadderMethod::PaperRecurrence);
    benchmark::DoNotOptimize(iv);
  }
  state.counters["edges"] = static_cast<double>(c.graph.edge_count());
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_LadderProp_PaperRecurrence)
    ->RangeMultiplier(4)
    ->Range(2, 512)
    ->Complexity(benchmark::oN);

void BM_LadderProp_Enumeration(benchmark::State& state) {
  const auto& c = ladder_of(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto iv = cs4_propagation_intervals(c.graph, c.analysis,
                                        LadderMethod::Enumeration);
    benchmark::DoNotOptimize(iv);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_LadderProp_Enumeration)
    ->RangeMultiplier(4)
    ->Range(2, 512)
    ->Complexity(benchmark::oNSquared);

void BM_LadderNonProp(benchmark::State& state) {
  const auto& c = ladder_of(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto iv = cs4_nonprop_intervals(c.graph, c.analysis);
    benchmark::DoNotOptimize(iv);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_LadderNonProp)
    ->RangeMultiplier(4)
    ->Range(2, 128)
    ->Complexity(benchmark::oNCubed);

// Ladder recognition + decomposition (skeleton extraction, outer cycle,
// rung layout): the compile step before the interval engines.
void BM_LadderRecognition(benchmark::State& state) {
  const auto& c = ladder_of(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto a = analyze_cs4(c.graph);
    benchmark::DoNotOptimize(a);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_LadderRecognition)
    ->RangeMultiplier(4)
    ->Range(2, 128)
    ->Complexity(benchmark::oNSquared);

void BM_LadderProp_ExponentialBaseline(benchmark::State& state) {
  const auto& c = ladder_of(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto iv = propagation_intervals_exact(c.graph);
    benchmark::DoNotOptimize(iv);
  }
}
BENCHMARK(BM_LadderProp_ExponentialBaseline)->RangeMultiplier(2)->Range(2, 8);

}  // namespace
