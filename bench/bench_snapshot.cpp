// What checkpointing costs a live stream. Two figures of merit, both
// recorded in BENCH_snapshot.json by tools/bench.sh:
//
//   - BM_SnapshotOverhead_*: sustained ingest through the continuation
//     ladder with periodic asynchronous barrier snapshots (begin + poll,
//     the stream never stops) against the identical run with no barriers,
//     inside one benchmark so the pair shares a machine state.
//     snapshot_overhead_pct is the recorded figure; the budget is <= 5%.
//     The snapshots-off side still executes every compiled-in checkpoint
//     branch (one pending-barrier flag test at the hot sites), so the pair
//     also bounds the cost of the idle snapshot path at zero barriers.
//   - BM_SnapshotLatency_*: wall time from snapshot_begin to the assembled
//     ckpt::StreamSnapshot while a pusher and a drainer keep the stream
//     saturated (p50_ns / p99_ns over every barrier in the run), plus the
//     serialized size of the last cut (snapshot_bytes).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "src/ckpt/snapshot.h"
#include "src/core/compile.h"
#include "src/exec/session.h"
#include "src/exec/stream.h"
#include "src/support/contracts.h"
#include "src/support/timer.h"
#include "src/workloads/filters.h"
#include "src/workloads/topologies.h"

namespace {

using namespace sdaf;

constexpr std::uint64_t kIngestItems = 20000;
// Barrier cadence for the overhead run; a multiple of the poll cadence
// (64, the batch quantum) so every begin point is also a poll point.
constexpr std::uint64_t kSnapshotEvery = 2048;

exec::StreamSpec ladder_stream_spec(const core::CompileResult& compiled,
                                    exec::Backend backend) {
  exec::StreamSpec spec;
  spec.run.backend = backend;
  spec.run.mode = runtime::DummyMode::Propagation;
  spec.run.apply(compiled);
  spec.run.batch = 64;
  spec.run.pool_workers = 2;
  return spec;
}

// One iteration = the same saturated ingest twice, snapshots off then on.
// The on pass cuts a barrier every kSnapshotEvery pushes and polls it from
// the ingest loop -- the asynchronous serving shape, never a blocking wait
// -- so the delta is the true cost of flowing markers through a loaded
// graph, not the latency of parking on one.
void run_snapshot_overhead(benchmark::State& state, exec::Backend backend) {
  const StreamGraph g = workloads::continuation_ladder(4, 64, 1);
  const auto compiled = core::compile(g);
  SDAF_ASSERT(compiled.ok);
  std::uint64_t processed = 0;
  std::uint64_t snapshots = 0;
  double wall_off = 0.0;
  double wall_on = 0.0;
  for (auto _ : state) {
    for (int snaps_on = 0; snaps_on < 2; ++snaps_on) {
      exec::Session session(g, workloads::relay_kernels(g, 0.5, 17));
      exec::Stream stream =
          session.open(ladder_stream_spec(compiled, backend));
      exec::InputPort& in = stream.input(0);
      exec::OutputPort& out = stream.output(0);
      Stopwatch run_clock;
      std::thread drainer([&] {
        while (out.next().has_value()) {
        }
      });
      bool pending = false;
      for (std::uint64_t i = 0; i < kIngestItems; ++i) {
        const bool pushed = in.push();
        SDAF_ASSERT(pushed);
        if (snaps_on != 0 && (i + 1) % 64 == 0) {  // poll at batch cadence
          if (pending && stream.snapshot_poll().has_value()) {
            pending = false;
            ++snapshots;
          }
          if (!pending && (i + 1) % kSnapshotEvery == 0) {
            pending = stream.snapshot_begin();
          }
        }
      }
      in.close();
      drainer.join();
      if (pending && stream.snapshot_poll().has_value()) {
        ++snapshots;  // terminal cut: the EOS flood completed the barrier
      }
      const auto report = stream.finish();
      SDAF_ASSERT(report.completed);
      (snaps_on != 0 ? wall_on : wall_off) += run_clock.elapsed_seconds();
    }
    processed += kIngestItems;
    SDAF_ASSERT(snapshots > 0);
  }
  const double off_rate =
      wall_off > 0 ? static_cast<double>(processed) / wall_off : 0.0;
  const double on_rate =
      wall_on > 0 ? static_cast<double>(processed) / wall_on : 0.0;
  state.counters["items_per_second_snapshots_off"] = off_rate;
  state.counters["items_per_second_snapshots_on"] = on_rate;
  state.counters["snapshot_overhead_pct"] =
      off_rate > 0 ? 100.0 * (off_rate - on_rate) / off_rate : 0.0;
  state.counters["snapshots_per_run"] = static_cast<double>(
      snapshots / std::max<std::uint64_t>(1, state.iterations()));
}

void BM_SnapshotOverhead_Threaded(benchmark::State& state) {
  run_snapshot_overhead(state, exec::Backend::Threaded);
}
BENCHMARK(BM_SnapshotOverhead_Threaded)
    ->Iterations(3)->Unit(benchmark::kMillisecond);

void BM_SnapshotOverhead_Pooled(benchmark::State& state) {
  run_snapshot_overhead(state, exec::Backend::Pooled);
}
BENCHMARK(BM_SnapshotOverhead_Pooled)
    ->Iterations(3)->Unit(benchmark::kMillisecond);

// Barrier completion time under load: a pusher saturates the stream while
// a drainer empties the tap, and the measuring thread cuts back-to-back
// snapshots (each snapshot() is begin + poll-until-assembled, bounded).
// The final barrier is cut after the pusher stops so every run has at
// least one sample even on a machine that drains the ingest instantly.
void run_snapshot_latency(benchmark::State& state, exec::Backend backend) {
  const StreamGraph g = workloads::continuation_ladder(4, 64, 1);
  const auto compiled = core::compile(g);
  SDAF_ASSERT(compiled.ok);
  std::vector<double> samples_ns;
  std::size_t last_bytes = 0;
  for (auto _ : state) {
    exec::Session session(g, workloads::relay_kernels(g, 0.5, 17));
    exec::Stream stream = session.open(ladder_stream_spec(compiled, backend));
    exec::InputPort& in = stream.input(0);
    exec::OutputPort& out = stream.output(0);
    std::atomic<bool> feeding{true};
    std::thread drainer([&] {
      while (out.next().has_value()) {
      }
    });
    std::thread pusher([&] {
      for (std::uint64_t i = 0; i < kIngestItems; ++i) {
        const bool pushed = in.push();
        SDAF_ASSERT(pushed);
      }
      feeding.store(false, std::memory_order_release);
    });
    while (feeding.load(std::memory_order_acquire)) {
      Stopwatch barrier;
      const auto s = stream.snapshot(std::chrono::milliseconds(500));
      if (s.has_value()) {
        samples_ns.push_back(barrier.elapsed_seconds() * 1e9);
        last_bytes = ckpt::serialize(*s).size();
      }
    }
    pusher.join();
    {
      Stopwatch barrier;
      const auto s = stream.snapshot(std::chrono::seconds(5));
      SDAF_ASSERT(s.has_value());
      samples_ns.push_back(barrier.elapsed_seconds() * 1e9);
      last_bytes = ckpt::serialize(*s).size();
    }
    in.close();
    drainer.join();
    const auto report = stream.finish();
    SDAF_ASSERT(report.completed);
  }
  SDAF_ASSERT(!samples_ns.empty());
  std::sort(samples_ns.begin(), samples_ns.end());
  const auto at = [&](double q) {
    const auto idx = static_cast<std::size_t>(
        q * static_cast<double>(samples_ns.size() - 1));
    return samples_ns[idx];
  };
  state.counters["p50_ns"] = at(0.50);
  state.counters["p99_ns"] = at(0.99);
  state.counters["snapshots_per_run"] = static_cast<double>(
      samples_ns.size() / std::max<std::uint64_t>(1, state.iterations()));
  state.counters["snapshot_bytes"] = static_cast<double>(last_bytes);
}

void BM_SnapshotLatency_Threaded(benchmark::State& state) {
  run_snapshot_latency(state, exec::Backend::Threaded);
}
BENCHMARK(BM_SnapshotLatency_Threaded)
    ->Iterations(3)->Unit(benchmark::kMillisecond);

void BM_SnapshotLatency_Pooled(benchmark::State& state) {
  run_snapshot_latency(state, exec::Backend::Pooled);
}
BENCHMARK(BM_SnapshotLatency_Pooled)
    ->Iterations(3)->Unit(benchmark::kMillisecond);

}  // namespace
