// E10 -- end-to-end threaded throughput: what the avoidance wrappers cost
// when the application actually computes. Split/join with per-item work,
// measured bare (no filtering, no dummies), filtering without avoidance
// would deadlock, so the comparison is: filtering+Propagation vs
// filtering+NonPropagation vs no-filtering baseline. items_per_second is
// the figure of merit.
#include <benchmark/benchmark.h>

#include "src/core/compile.h"
#include "src/exec/session.h"
#include "src/support/contracts.h"
#include "src/workloads/filters.h"
#include "src/workloads/topologies.h"

namespace {

using namespace sdaf;

constexpr std::uint64_t kItems = 3000;
constexpr std::uint64_t kSpin = 200;  // per-item work per stage

std::vector<std::shared_ptr<runtime::Kernel>> work_kernels(
    const StreamGraph& g, double pass_rate, std::uint64_t seed) {
  std::vector<std::shared_ptr<runtime::Kernel>> kernels;
  for (NodeId n = 0; n < g.node_count(); ++n) {
    const std::uint64_t node_seed = seed ^ (0x9e37ULL * (n + 1));
    kernels.push_back(std::make_shared<runtime::WorkKernel>(
        kSpin, workloads::bernoulli_filter(pass_rate, node_seed)));
  }
  return kernels;
}

void run_throughput(benchmark::State& state, core::Algorithm algorithm,
                    runtime::DummyMode mode, double pass_rate) {
  const StreamGraph g = workloads::splitjoin(3, 2, 8);
  core::CompileOptions copt;
  copt.algorithm = algorithm;
  const auto compiled = core::compile(g, copt);
  SDAF_ASSERT(compiled.ok);
  std::uint64_t processed = 0;
  double wall = 0.0;
  for (auto _ : state) {
    exec::Session session(g, work_kernels(g, pass_rate, 17));
    exec::RunSpec spec;
    spec.backend = exec::Backend::Threaded;
    spec.mode = mode;
    if (mode != runtime::DummyMode::None) spec.apply(compiled);
    spec.num_inputs = kItems;
    const auto r = session.run(spec);
    SDAF_ASSERT(r.completed);
    processed += kItems;
    wall += r.wall_seconds;
  }
  // Rate against the executor's own wall time: the run is multi-threaded,
  // so the benchmark thread's CPU time is not meaningful.
  state.counters["items_per_second"] =
      wall > 0 ? static_cast<double>(processed) / wall : 0.0;
}

void BM_Throughput_NoFiltering_NoDummies(benchmark::State& state) {
  run_throughput(state, core::Algorithm::Propagation,
                 runtime::DummyMode::None, /*pass_rate=*/1.0);
}
BENCHMARK(BM_Throughput_NoFiltering_NoDummies)
    ->Iterations(3)->Unit(benchmark::kMillisecond);

void BM_Throughput_Filtering_Propagation(benchmark::State& state) {
  run_throughput(state, core::Algorithm::Propagation,
                 runtime::DummyMode::Propagation, /*pass_rate=*/0.6);
}
BENCHMARK(BM_Throughput_Filtering_Propagation)
    ->Iterations(3)->Unit(benchmark::kMillisecond);

void BM_Throughput_Filtering_NonPropagation(benchmark::State& state) {
  run_throughput(state, core::Algorithm::NonPropagation,
                 runtime::DummyMode::NonPropagation, /*pass_rate=*/0.6);
}
BENCHMARK(BM_Throughput_Filtering_NonPropagation)
    ->Iterations(3)->Unit(benchmark::kMillisecond);

// Wrapper overhead in the no-filtering regime: dummies never fire, so the
// delta against the bare baseline is the bookkeeping cost alone.
void BM_Throughput_NoFiltering_WrappersArmed(benchmark::State& state) {
  run_throughput(state, core::Algorithm::Propagation,
                 runtime::DummyMode::Propagation, /*pass_rate=*/1.0);
}
BENCHMARK(BM_Throughput_NoFiltering_WrappersArmed)
    ->Iterations(3)->Unit(benchmark::kMillisecond);

}  // namespace
