// E10 -- end-to-end threaded throughput: what the avoidance wrappers cost
// when the application actually computes. The workload is the
// continuation-edge ladder (workloads::continuation_ladder): a filter stage
// whose dropped items must continue down a relay chain as dummies, so at
// pass rate 0.1 roughly 90% of the wire traffic is avoidance dummies in
// dense consecutive-sequence runs -- the regime the coalescing + batched
// data plane is built for. Pass rate 1.0 isolates wrapper bookkeeping (no
// dummies fire). Each workload runs message-at-a-time (batch=1, the
// paper-faithful pacing and the pre-PR behaviour) and with the batch
// quantum the data plane exists for (batch=64); per-edge traffic is
// bit-identical across the two, only the cost changes.
//
// items_per_second is the figure of merit; tools/bench.sh records it in
// BENCH_throughput.json.
#include <benchmark/benchmark.h>

#include "src/core/compile.h"
#include "src/exec/session.h"
#include "src/obs/metrics.h"
#include "src/support/contracts.h"
#include "src/workloads/filters.h"
#include "src/workloads/topologies.h"

namespace {

using namespace sdaf;

constexpr std::uint64_t kItems = 6000;
constexpr std::uint64_t kSpin = 200;  // per-item work per stage
constexpr std::uint32_t kBatch = 64;  // the batched-data-plane quantum

std::vector<std::shared_ptr<runtime::Kernel>> ladder_kernels(
    const StreamGraph& g, double pass_rate, std::uint64_t seed) {
  // Node 1 is the filter stage `a`; every other stage computes but passes.
  std::vector<std::shared_ptr<runtime::Kernel>> kernels;
  for (NodeId n = 0; n < g.node_count(); ++n) {
    const double pass = n == 1 ? pass_rate : 1.0;
    const std::uint64_t node_seed = seed ^ (0x9e37ULL * (n + 1));
    kernels.push_back(std::make_shared<runtime::WorkKernel>(
        kSpin, workloads::bernoulli_filter(pass, node_seed)));
  }
  return kernels;
}

void run_throughput(benchmark::State& state, double pass_rate,
                    std::uint32_t batch) {
  const StreamGraph g = workloads::continuation_ladder(4, 64, 1);
  const auto compiled = core::compile(g);
  SDAF_ASSERT(compiled.ok);
  std::uint64_t processed = 0;
  std::uint64_t dummies = 0;
  double wall = 0.0;
  for (auto _ : state) {
    exec::Session session(g, ladder_kernels(g, pass_rate, 17));
    exec::RunSpec spec;
    spec.backend = exec::Backend::Threaded;
    spec.mode = runtime::DummyMode::Propagation;
    spec.apply(compiled);
    spec.num_inputs = kItems;
    spec.batch = batch;
    const auto r = session.run(spec);
    SDAF_ASSERT(r.completed);
    processed += kItems;
    dummies += r.total_dummies();
    wall += r.wall_seconds;
  }
  // Rate against the executor's own wall time: the run is multi-threaded,
  // so the benchmark thread's CPU time is not meaningful.
  state.counters["items_per_second"] =
      wall > 0 ? static_cast<double>(processed) / wall : 0.0;
  state.counters["dummies_per_run"] = static_cast<double>(
      dummies / std::max<std::uint64_t>(1, state.iterations()));
  state.counters["batch"] = static_cast<double>(batch);
}

void BM_Throughput_Pass100(benchmark::State& state) {
  run_throughput(state, /*pass_rate=*/1.0, kBatch);
}
BENCHMARK(BM_Throughput_Pass100)->Iterations(3)->Unit(benchmark::kMillisecond);

void BM_Throughput_Pass50(benchmark::State& state) {
  run_throughput(state, /*pass_rate=*/0.5, kBatch);
}
BENCHMARK(BM_Throughput_Pass50)->Iterations(3)->Unit(benchmark::kMillisecond);

void BM_Throughput_Pass10(benchmark::State& state) {
  run_throughput(state, /*pass_rate=*/0.1, kBatch);
}
BENCHMARK(BM_Throughput_Pass10)->Iterations(3)->Unit(benchmark::kMillisecond);

// Message-at-a-time pacing (the pre-PR data plane's only mode): same
// traffic, one channel op and one wake per message.
void BM_Throughput_Pass100_MsgAtATime(benchmark::State& state) {
  run_throughput(state, /*pass_rate=*/1.0, 1);
}
BENCHMARK(BM_Throughput_Pass100_MsgAtATime)
    ->Iterations(3)->Unit(benchmark::kMillisecond);

void BM_Throughput_Pass50_MsgAtATime(benchmark::State& state) {
  run_throughput(state, /*pass_rate=*/0.5, 1);
}
BENCHMARK(BM_Throughput_Pass50_MsgAtATime)
    ->Iterations(3)->Unit(benchmark::kMillisecond);

void BM_Throughput_Pass10_MsgAtATime(benchmark::State& state) {
  run_throughput(state, /*pass_rate=*/0.1, 1);
}
BENCHMARK(BM_Throughput_Pass10_MsgAtATime)
    ->Iterations(3)->Unit(benchmark::kMillisecond);

// The observability budget: the Pass10/batch=64 workload run back-to-back
// with the obs registry detached and attached, inside one benchmark so the
// pair shares a machine state. The delta is the entire cost of metrics --
// single-writer relaxed counters bumped at the shared firing-core sites.
// metrics_overhead_pct is the recorded figure; the budget is <= 2%
// (indistinguishable from run-to-run noise on this workload).
void BM_Throughput_Pass10_MetricsOverhead(benchmark::State& state) {
  const StreamGraph g = workloads::continuation_ladder(4, 64, 1);
  const auto compiled = core::compile(g);
  SDAF_ASSERT(compiled.ok);
  obs::MetricsRegistry registry(g.node_count(), g.edge_count());
  std::uint64_t processed = 0;
  double wall_off = 0.0;
  double wall_on = 0.0;
  for (auto _ : state) {
    for (int metrics_on = 0; metrics_on < 2; ++metrics_on) {
      exec::Session session(g, ladder_kernels(g, /*pass_rate=*/0.1, 17));
      exec::RunSpec spec;
      spec.backend = exec::Backend::Threaded;
      spec.mode = runtime::DummyMode::Propagation;
      spec.apply(compiled);
      spec.num_inputs = kItems;
      spec.batch = kBatch;
      if (metrics_on != 0) {
        registry.reset();
        spec.metrics = &registry;
      }
      const auto r = session.run(spec);
      SDAF_ASSERT(r.completed);
      (metrics_on != 0 ? wall_on : wall_off) += r.wall_seconds;
    }
    processed += kItems;
  }
  const double off_rate =
      wall_off > 0 ? static_cast<double>(processed) / wall_off : 0.0;
  const double on_rate =
      wall_on > 0 ? static_cast<double>(processed) / wall_on : 0.0;
  state.counters["items_per_second_metrics_off"] = off_rate;
  state.counters["items_per_second_metrics_on"] = on_rate;
  state.counters["metrics_overhead_pct"] =
      off_rate > 0 ? 100.0 * (off_rate - on_rate) / off_rate : 0.0;
}
BENCHMARK(BM_Throughput_Pass10_MetricsOverhead)
    ->Iterations(5)->Unit(benchmark::kMillisecond);

}  // namespace
