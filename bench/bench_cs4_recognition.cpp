// E6 -- recognition / rejection behaviour on the paper's Fig. 4 pair and
// the rewrite of Section VII, plus classification throughput on random
// topology families. Counters record accept rates, reproducing the
// qualitative "who is CS4" table of Section V.
#include <benchmark/benchmark.h>

#include "src/core/compile.h"
#include "src/cs4/decompose.h"
#include "src/cs4/k4_witness.h"
#include "src/support/contracts.h"
#include "src/support/prng.h"
#include "src/workloads/random_ladder.h"
#include "src/workloads/random_sp.h"
#include "src/workloads/topologies.h"

namespace {

using namespace sdaf;

void BM_Fig4Left_Accepted(benchmark::State& state) {
  const StreamGraph g = workloads::fig4_left();
  for (auto _ : state) {
    auto a = analyze_cs4(g);
    SDAF_ASSERT(a.is_cs4 && !a.pure_sp);
    benchmark::DoNotOptimize(a);
  }
  state.counters["is_cs4"] = 1;
}
BENCHMARK(BM_Fig4Left_Accepted);

void BM_Fig4Butterfly_Rejected(benchmark::State& state) {
  const StreamGraph g = workloads::fig4_butterfly();
  for (auto _ : state) {
    auto a = analyze_cs4(g);
    SDAF_ASSERT(!a.is_cs4);
    benchmark::DoNotOptimize(a);
  }
  state.counters["is_cs4"] = 0;
  state.counters["has_k4"] = find_k4_subdivision(g).has_value() ? 1 : 0;
}
BENCHMARK(BM_Fig4Butterfly_Rejected);

void BM_ButterflyRewrite_Accepted(benchmark::State& state) {
  const StreamGraph g = workloads::butterfly_rewrite();
  for (auto _ : state) {
    auto a = analyze_cs4(g);
    SDAF_ASSERT(a.is_cs4);
    benchmark::DoNotOptimize(a);
  }
  state.counters["is_cs4"] = 1;
}
BENCHMARK(BM_ButterflyRewrite_Accepted);

// Acceptance rate of random two-terminal DAGs by interior-node count: CS4
// membership gets rarer as density grows -- the expressivity price the
// paper's Section V discusses.
void BM_RandomDag_Cs4Rate(benchmark::State& state) {
  Prng rng(1234);
  workloads::RandomDagOptions opt;
  opt.interior_nodes = static_cast<std::size_t>(state.range(0));
  opt.edge_density = 0.35;
  std::size_t accepted = 0;
  std::size_t total = 0;
  for (auto _ : state) {
    const auto g = workloads::random_two_terminal_dag(rng, opt);
    const auto a = analyze_cs4(g);
    accepted += a.is_cs4 ? 1 : 0;
    ++total;
    benchmark::DoNotOptimize(a);
  }
  state.counters["cs4_rate"] = total == 0
                                   ? 0.0
                                   : static_cast<double>(accepted) /
                                         static_cast<double>(total);
}
BENCHMARK(BM_RandomDag_Cs4Rate)->Arg(3)->Arg(5)->Arg(8)->Arg(12);

// Full compile (classification + intervals) on the three families a user
// would feed the compiler.
void BM_Compile_RandomSp(benchmark::State& state) {
  Prng rng(7);
  workloads::RandomSpOptions opt;
  opt.target_edges = static_cast<std::size_t>(state.range(0));
  const auto built = workloads::random_sp(rng, opt);
  for (auto _ : state) {
    auto r = core::compile(built.graph);
    SDAF_ASSERT(r.ok);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_Compile_RandomSp)->Arg(64)->Arg(512)->Arg(4096);

void BM_Compile_RandomCs4Chain(benchmark::State& state) {
  Prng rng(11);
  workloads::RandomCs4Options opt;
  opt.components = static_cast<std::size_t>(state.range(0));
  opt.ladder.rungs = 3;
  opt.ladder.component_edges = 2;
  const auto g = workloads::random_cs4_chain(rng, opt);
  for (auto _ : state) {
    auto r = core::compile(g);
    SDAF_ASSERT(r.ok);
    benchmark::DoNotOptimize(r);
  }
  state.counters["edges"] = static_cast<double>(g.edge_count());
}
BENCHMARK(BM_Compile_RandomCs4Chain)->Arg(2)->Arg(8)->Arg(32);

}  // namespace
