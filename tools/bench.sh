#!/usr/bin/env bash
# Benchmark runner with a machine-readable, schema-stable output contract:
# runs bench_throughput and bench_pool_scaling in a fixed configuration and
# writes google-benchmark JSON to BENCH_throughput.json /
# BENCH_pool_scaling.json at the repo root, so successive PRs have a
# comparable trajectory to track (items_per_second is the figure of merit;
# per-run dummy counts ride along as cross-checks).
#
#   tools/bench.sh            # full run (all registered benchmarks)
#   tools/bench.sh --smoke    # CI mode: the fixed smoke subset, ~seconds,
#                             # proves the bench binaries still run
#
# Options:
#   --build-dir DIR   build tree holding the bench binaries
#                     (default: build/release, configured+built if missing)
set -euo pipefail
cd "$(dirname "$0")/.."

smoke=0
build_dir=build/release
while [[ $# -gt 0 ]]; do
  case "$1" in
    --smoke) smoke=1 ;;
    --build-dir) build_dir=$2; shift ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
  shift
done

jobs=$(nproc 2>/dev/null || echo 2)
if [[ ! -x "$build_dir/bench_throughput" ]]; then
  if [[ "$build_dir" != build/release ]]; then
    echo "error: $build_dir/bench_throughput not found; build it first" >&2
    exit 1
  fi
  cmake --preset release
  cmake --build --preset release -j "$jobs" \
      --target bench_throughput bench_pool_scaling
fi

# The smoke subset is fixed so the JSON schema (benchmark names + counters)
# stays stable across PRs: the three throughput pass rates at the batched
# quantum, the pooled filtering sweep, and (since the SPSC channel fast
# path) two batch=1 pooled ladder configs whose per-op channel cost is the
# figure the lock-free path exists to cut.
throughput_filter='.'
pool_filter='Filtering|CompileCache'
if [[ $smoke -eq 1 ]]; then
  throughput_filter='BM_Throughput_Pass(100|50|10)/'
  pool_filter='BM_PoolExecutor_Filtering|BM_PoolExecutor_Ladder/(100|1000)/2'
fi

echo "==> bench_throughput -> BENCH_throughput.json"
"$build_dir/bench_throughput" \
    --benchmark_filter="$throughput_filter" \
    --benchmark_out=BENCH_throughput.json \
    --benchmark_out_format=json

echo "==> bench_pool_scaling -> BENCH_pool_scaling.json"
"$build_dir/bench_pool_scaling" \
    --benchmark_filter="$pool_filter" \
    --benchmark_out=BENCH_pool_scaling.json \
    --benchmark_out_format=json

echo "==> bench OK"
