#!/usr/bin/env bash
# Benchmark runner with a machine-readable, schema-stable output contract:
# runs bench_throughput, bench_pool_scaling and bench_streaming_latency in
# a fixed configuration and writes google-benchmark JSON to
# BENCH_throughput.json / BENCH_pool_scaling.json / BENCH_streaming.json at
# the repo root, so successive PRs have a comparable trajectory to track
# (items_per_second is the figure of merit for the batch benches; the
# streaming bench adds push->poll p50_ns/p99_ns latency percentiles and
# sustained-ingest items_per_second; per-run dummy counts ride along as
# cross-checks). Since the socket front door it also boots sdafd on a Unix
# socket and drives it with sdaf_loadgen at 1/8/64 concurrent connections,
# writing push->deliver round-trip p50_ns/p99_ns and wire items_per_second
# per connection count to BENCH_service.json (schema sdaf.service.bench.v1;
# the connection ladder is fixed so the file stays diffable across PRs).
# Since checkpoint/restore it also runs bench_snapshot into
# BENCH_snapshot.json: the periodic-asynchronous-barriers-vs-off ingest
# pair (snapshot_overhead_pct, budget <= 5%) and barrier completion
# latency under load (p50_ns/p99_ns + serialized snapshot_bytes).
# Since sdaf::qos it also runs bench_qos_isolation into BENCH_qos.json:
# interactive push->poll p50/p99 solo vs under batch-tenant saturation
# (DRR + credit window vs the legacy unfair injector) plus the weighted
# bandwidth-share pair; the interference ratio (shared-DRR p99 / solo p99,
# budget <= 5x) is printed and, like the scaling ladder, flagged as
# non-evidence on a host with < 4 hardware threads.
#
#   tools/bench.sh            # full run (all registered benchmarks)
#   tools/bench.sh --smoke    # CI mode: the fixed smoke subset, ~seconds,
#                             # proves the bench binaries still run
#
# Options:
#   --build-dir DIR   build tree holding the bench binaries
#                     (default: build/release, configured+built if missing)
set -euo pipefail
cd "$(dirname "$0")/.."

smoke=0
build_dir=build/release
while [[ $# -gt 0 ]]; do
  case "$1" in
    --smoke) smoke=1 ;;
    --build-dir) build_dir=$2; shift ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
  shift
done

jobs=$(nproc 2>/dev/null || echo 2)
if [[ ! -x "$build_dir/bench_throughput" ||
      ! -x "$build_dir/bench_pool_scaling" ||
      ! -x "$build_dir/bench_streaming_latency" ||
      ! -x "$build_dir/bench_snapshot" ||
      ! -x "$build_dir/bench_qos_isolation" ||
      ! -x "$build_dir/sdafd" || ! -x "$build_dir/sdaf_loadgen" ]]; then
  if [[ "$build_dir" != build/release ]]; then
    echo "error: bench binaries missing from $build_dir; build them first" >&2
    exit 1
  fi
  cmake --preset release
  cmake --build --preset release -j "$jobs" \
      --target bench_throughput bench_pool_scaling bench_streaming_latency \
      bench_snapshot bench_qos_isolation sdafd sdaf_loadgen
fi

# The smoke subset is fixed so the JSON schema (benchmark names + counters)
# stays stable across PRs: the three throughput pass rates at the batched
# quantum, the metrics-on/off overhead pair (records the observability cost
# -- counters items_per_second_metrics_{on,off} and metrics_overhead_pct,
# budget <= 2% -- into BENCH_throughput.json), the pooled filtering sweep,
# (since the SPSC channel fast path) two batch=1 pooled ladder configs whose
# per-op channel cost is the figure the lock-free path exists to cut, and
# (since the streaming ports) one latency and one ingest config per
# concurrent backend, and (since checkpoint/restore) the threaded
# snapshot overhead pair + barrier latency (budget: snapshot_overhead_pct
# <= 5%).
throughput_filter='.'
pool_filter='Filtering|CompileCache'
streaming_filter='.'
snapshot_filter='.'
qos_filter='.'
if [[ $smoke -eq 1 ]]; then
  throughput_filter='BM_Throughput_Pass(100|50|10)/|BM_Throughput_Pass10_MetricsOverhead'
  pool_filter='BM_PoolExecutor_Filtering|BM_PoolExecutor_Ladder/(100|1000)/2|BM_PoolExecutor_LadderScaling'
  streaming_filter='BM_Stream(Latency|Ingest)_(Pooled|Threaded)'
  snapshot_filter='BM_Snapshot(Overhead|Latency)_Threaded'
  qos_filter='BM_QosInteractive_(Solo|SharedDRR)'
fi

echo "==> bench_throughput -> BENCH_throughput.json"
"$build_dir/bench_throughput" \
    --benchmark_filter="$throughput_filter" \
    --benchmark_out=BENCH_throughput.json \
    --benchmark_out_format=json

echo "==> bench_pool_scaling -> BENCH_pool_scaling.json"
"$build_dir/bench_pool_scaling" \
    --benchmark_filter="$pool_filter" \
    --benchmark_out=BENCH_pool_scaling.json \
    --benchmark_out_format=json

# Annotate the scaling ladder: effective_parallelism (process CPU time /
# wall time) next to the runner's core count, so a BENCH_pool_scaling.json
# produced on a 1-cpu runner is visibly non-evidence of scaling rather than
# a silent flat line (tools/ci.sh --smoke asserts on these same counters
# when the runner has >= 4 cores).
python3 - <<'PY'
import json
with open("BENCH_pool_scaling.json") as f:
    doc = json.load(f)
rows = [b for b in doc.get("benchmarks", [])
        if b.get("name", "").startswith("BM_PoolExecutor_LadderScaling")]
if rows:
    hw = int(rows[0].get("hardware_concurrency", 0))
    print(f"==> pool scaling ladder (runner has {hw} hardware thread(s)):")
    for b in rows:
        print(f"    {b['name']}: {b.get('items_per_second', 0):,.0f} items/s, "
              f"effective_parallelism={b.get('effective_parallelism', 0):.2f} "
              f"of {int(b.get('workers', 0))} workers")
    if hw < 4:
        print(f"    WARNING: {hw} hardware thread(s) < 4 -- these numbers "
              "cannot demonstrate scaling; run on a multi-core host")
PY

echo "==> bench_streaming_latency -> BENCH_streaming.json"
"$build_dir/bench_streaming_latency" \
    --benchmark_filter="$streaming_filter" \
    --benchmark_out=BENCH_streaming.json \
    --benchmark_out_format=json

echo "==> bench_snapshot -> BENCH_snapshot.json"
"$build_dir/bench_snapshot" \
    --benchmark_filter="$snapshot_filter" \
    --benchmark_out=BENCH_snapshot.json \
    --benchmark_out_format=json

echo "==> bench_qos_isolation -> BENCH_qos.json"
"$build_dir/bench_qos_isolation" \
    --benchmark_filter="$qos_filter" \
    --benchmark_out=BENCH_qos.json \
    --benchmark_out_format=json

# The isolation headline: shared-under-DRR p99 as a multiple of solo p99
# (budget <= 5x). Like the scaling ladder above, a 1-cpu runner cannot
# demonstrate isolation -- every thread interferes with every other by
# construction -- so the ratio is printed but flagged as non-evidence
# below 4 hardware threads.
python3 - <<'PY'
import json
with open("BENCH_qos.json") as f:
    doc = json.load(f)
rows = {b["name"].split("/")[0]: b for b in doc.get("benchmarks", [])}
solo = rows.get("BM_QosInteractive_Solo")
shared = rows.get("BM_QosInteractive_SharedDRR")
if solo and shared and solo.get("p99_ns", 0) > 0:
    ratio = shared["p99_ns"] / solo["p99_ns"]
    hw = int(solo.get("hardware_concurrency", 0))
    print(f"==> qos isolation: solo p99 {solo['p99_ns']:,.0f} ns, "
          f"shared-DRR p99 {shared['p99_ns']:,.0f} ns "
          f"(ratio {ratio:.2f}x, budget <= 5x)")
    if hw < 4:
        print(f"    WARNING: {hw} hardware thread(s) < 4 -- this ratio "
              "cannot demonstrate isolation; run on a multi-core host")
PY

# The service bench goes over a real socket: every sample pays the framing,
# the poll loop and the session table, so it bounds what an in-process port
# push/poll pair costs once it is served. The connection ladder is the
# schema; only the per-connection item count shrinks in smoke mode.
service_items=20000
if [[ $smoke -eq 1 ]]; then service_items=2000; fi
service_sock="/tmp/sdaf_bench_$$.sock"
echo "==> sdafd + sdaf_loadgen -> BENCH_service.json"
"$build_dir/sdafd" --unix="$service_sock" &
service_pid=$!
trap 'kill -KILL $service_pid 2>/dev/null || true; rm -f "$service_sock"' EXIT
for _ in $(seq 1 50); do
  [[ -S "$service_sock" ]] && break
  sleep 0.1
done
[[ -S "$service_sock" ]] || { echo "error: sdafd never bound" >&2; exit 1; }
# --mix appends the two-tenant run (interactive RTT tenant vs batch
# saturator tenant, per-tenant p50/p99) as the "mix" object in the report.
"$build_dir/sdaf_loadgen" --unix="$service_sock" --connections=1,8,64 \
    --items="$service_items" --mix=2:2 --out=BENCH_service.json
kill -TERM "$service_pid"
wait "$service_pid"
trap - EXIT
rm -f "$service_sock"

echo "==> bench OK"
