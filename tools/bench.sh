#!/usr/bin/env bash
# Benchmark runner with a machine-readable, schema-stable output contract:
# runs bench_throughput, bench_pool_scaling and bench_streaming_latency in
# a fixed configuration and writes google-benchmark JSON to
# BENCH_throughput.json / BENCH_pool_scaling.json / BENCH_streaming.json at
# the repo root, so successive PRs have a comparable trajectory to track
# (items_per_second is the figure of merit for the batch benches; the
# streaming bench adds push->poll p50_ns/p99_ns latency percentiles and
# sustained-ingest items_per_second; per-run dummy counts ride along as
# cross-checks).
#
#   tools/bench.sh            # full run (all registered benchmarks)
#   tools/bench.sh --smoke    # CI mode: the fixed smoke subset, ~seconds,
#                             # proves the bench binaries still run
#
# Options:
#   --build-dir DIR   build tree holding the bench binaries
#                     (default: build/release, configured+built if missing)
set -euo pipefail
cd "$(dirname "$0")/.."

smoke=0
build_dir=build/release
while [[ $# -gt 0 ]]; do
  case "$1" in
    --smoke) smoke=1 ;;
    --build-dir) build_dir=$2; shift ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
  shift
done

jobs=$(nproc 2>/dev/null || echo 2)
if [[ ! -x "$build_dir/bench_throughput" ||
      ! -x "$build_dir/bench_pool_scaling" ||
      ! -x "$build_dir/bench_streaming_latency" ]]; then
  if [[ "$build_dir" != build/release ]]; then
    echo "error: bench binaries missing from $build_dir; build them first" >&2
    exit 1
  fi
  cmake --preset release
  cmake --build --preset release -j "$jobs" \
      --target bench_throughput bench_pool_scaling bench_streaming_latency
fi

# The smoke subset is fixed so the JSON schema (benchmark names + counters)
# stays stable across PRs: the three throughput pass rates at the batched
# quantum, the metrics-on/off overhead pair (records the observability cost
# -- counters items_per_second_metrics_{on,off} and metrics_overhead_pct,
# budget <= 2% -- into BENCH_throughput.json), the pooled filtering sweep,
# (since the SPSC channel fast path) two batch=1 pooled ladder configs whose
# per-op channel cost is the figure the lock-free path exists to cut, and
# (since the streaming ports) one latency and one ingest config per
# concurrent backend.
throughput_filter='.'
pool_filter='Filtering|CompileCache'
streaming_filter='.'
if [[ $smoke -eq 1 ]]; then
  throughput_filter='BM_Throughput_Pass(100|50|10)/|BM_Throughput_Pass10_MetricsOverhead'
  pool_filter='BM_PoolExecutor_Filtering|BM_PoolExecutor_Ladder/(100|1000)/2'
  streaming_filter='BM_Stream(Latency|Ingest)_(Pooled|Threaded)'
fi

echo "==> bench_throughput -> BENCH_throughput.json"
"$build_dir/bench_throughput" \
    --benchmark_filter="$throughput_filter" \
    --benchmark_out=BENCH_throughput.json \
    --benchmark_out_format=json

echo "==> bench_pool_scaling -> BENCH_pool_scaling.json"
"$build_dir/bench_pool_scaling" \
    --benchmark_filter="$pool_filter" \
    --benchmark_out=BENCH_pool_scaling.json \
    --benchmark_out_format=json

echo "==> bench_streaming_latency -> BENCH_streaming.json"
"$build_dir/bench_streaming_latency" \
    --benchmark_filter="$streaming_filter" \
    --benchmark_out=BENCH_streaming.json \
    --benchmark_out_format=json

echo "==> bench OK"
