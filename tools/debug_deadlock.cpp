// Ad-hoc reproduction harness for safety-sweep failures: rebuilds a failing
// configuration, runs the simulator, and prints the wedged state.
#include <cstdlib>
#include <iostream>

#include "src/core/compile.h"
#include "src/core/report.h"
#include "src/exec/session.h"
#include "src/graph/io.h"
#include "src/support/prng.h"
#include "src/workloads/filters.h"
#include "src/workloads/random_ladder.h"
#include "src/workloads/topologies.h"

using namespace sdaf;

int main(int argc, char** argv) {
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2;
  const char* which = argc > 2 ? argv[2] : "rounding";

  StreamGraph g;
  runtime::DummyMode mode = runtime::DummyMode::NonPropagation;
  core::CompileOptions copt;
  core::Rounding rounding = core::Rounding::PaperCeil;
  double p = 0.3;
  std::uint64_t kernel_seed = seed;

  if (std::string(which) == "rounding") {
    Prng rng(seed * 5099 + 7);
    workloads::RandomLadderOptions gopt;
    gopt.rungs = 1 + seed % 3;
    gopt.max_buffer = 5;
    g = workloads::random_ladder(rng, gopt);
    copt.algorithm = core::Algorithm::NonPropagation;
  } else if (std::string(which) == "nonprop") {
    Prng rng(seed * 911 + 5);
    workloads::RandomCs4Options gopt;
    gopt.components = 1 + seed % 2;
    gopt.ladder.rungs = 1 + seed % 3;
    g = workloads::random_cs4_chain(rng, gopt);
    copt.algorithm = core::Algorithm::NonPropagation;
    rounding = core::Rounding::Floor;
    p = 0.2;
    kernel_seed = seed * 17 + 9;
  } else {
    Prng rng(seed * 7211 + 3);
    workloads::RandomCs4Options gopt;
    gopt.components = 1 + seed % 3;
    gopt.ladder.rungs = 1 + seed % 3;
    gopt.sp.target_edges = 5;
    gopt.sp.max_buffer = 4;
    gopt.ladder.max_buffer = 4;
    g = workloads::random_cs4_chain(rng, gopt);
    mode = runtime::DummyMode::Propagation;
    rounding = core::Rounding::Floor;
    p = 0.15;
    kernel_seed = seed * 31 + 1;
  }

  std::cout << to_text(g) << "\n";
  const auto compiled = core::compile(g, copt);
  std::cout << core::describe(g, compiled);

  for (const double prob : {p, 0.5, 0.85}) {
    exec::Session session(g, workloads::relay_kernels(g, prob, kernel_seed));
    exec::RunSpec spec;
    spec.backend = exec::Backend::Sim;
    spec.mode = mode;
    spec.apply(compiled, rounding);
    spec.num_inputs = 400;
    const auto r = session.run(spec);
    std::cout << "p=" << prob << " completed=" << r.completed
              << " deadlocked=" << r.deadlocked << " sweeps=" << r.sweeps
              << " dummies=" << r.total_dummies() << "\n";
    if (r.deadlocked) {
      std::cout << r.state_dump << "\n";
      break;
    }
  }
  return 0;
}
