#!/usr/bin/env bash
# CI entry point: release build + full test suite, then an AddressSanitizer
# (+UBSan) pass over the whole suite, then a ThreadSanitizer pass so the
# lock-free SPSC channels, the pooled scheduler's ready queue and the
# park/wake protocols are race-checked on every PR.
#
#   tools/ci.sh            # release + asan + tsan
#   tools/ci.sh --fast     # release only
#   tools/ci.sh --smoke    # release build, then the observability smoke:
#                          # run sdafc --metrics=prom on a known topology,
#                          # validate the exposition page with
#                          # tools/check_prom.sh and require the scheduler
#                          # counter families (steals/futex parks), then the
#                          # service smoke: boot sdafd on a Unix socket,
#                          # drive it with sdaf_loadgen, validate the
#                          # daemon's STATS dump with check_prom.sh, run the
#                          # wire-vs-in-process loopback differential, and
#                          # check the daemon drains cleanly on SIGTERM;
#                          # then the qos admission smoke: a tight-budget
#                          # sdafd must refuse an over-budget Open softly
#                          # and account it in
#                          # sdaf_admission_rejected_total on STATS;
#                          # finally the pooled scaling ladder -- asserted
#                          # on >= 4-core runners, skipped with a visible
#                          # warning on smaller ones (no ctest, ~seconds)
#   tools/ci.sh --crash    # release + asan + tsan builds, then the
#                          # crash-recovery certification tier: the
#                          # kill-at-a-random-barrier/restore differential
#                          # sweep under ASan (memory safety across the
#                          # serialize/discard/rehydrate path) and the
#                          # marker/EOS interleaving suite under TSan
#                          # (barrier alignment racing real threads). Tune
#                          # with SDAF_STRESS_SECONDS (default 20); a
#                          # mismatch prints a one-line SDAF_CRASH_REPRO.
#   tools/ci.sh --stress   # everything above, then a time-boxed randomized
#                          # stress tier under both sanitizers: the
#                          # cross-backend differential harness sweep (batch
#                          # and port feed modes), the port-mode harness
#                          # sweep (every case through the live Stream API),
#                          # the multi-tenant sweep (2-3 concurrent tenant
#                          # copies on one shared DRR pool with weights and
#                          # credit windows, each bit-identical to solo),
#                          # the schedule-perturbation sweep (sched=fifo /
#                          # steal-heavy / park-storm adversarial pools must
#                          # stay bit-identical), the SPSC two-thread hammer
#                          # and the work-stealing deque hammer. Tune with
#                          # SDAF_STRESS_SECONDS (default 30, per binary)
#                          # and SDAF_STRESS_SEED. On a mismatch the
#                          # harness prints a one-line SDAF_HARNESS_REPRO
#                          # command that replays the exact failing case.
set -euo pipefail
cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 2)
mode=${1:-}

echo "==> release build"
cmake --preset release
cmake --build --preset release -j "$jobs"

# The exporter contract check: a real run's Prometheus page must satisfy the
# exposition grammar end to end (sdafc emits metrics on stderr), and a
# pooled run's page must carry the scheduler counter families -- steals,
# steal failures, futex parks -- so a scheduler change that silently drops
# worker attribution fails here, not in a dashboard.
check_prom() {
  echo "==> prometheus exposition check (tools/check_prom.sh)"
  local topo page
  topo=$(mktemp)
  page=$(mktemp)
  printf 'node A\nnode B\nnode C\nedge A B 2\nedge A C 2\nedge B C 2\n' \
      > "$topo"
  build/release/sdafc --run --backend=pooled --items=200 --pass-rate=0.4 \
      --metrics=prom "$topo" 2>"$page" >/dev/null
  tools/check_prom.sh "$page"
  local family
  for family in sdaf_worker_steals_total sdaf_worker_steal_fails_total \
      sdaf_worker_futex_parks_total sdaf_worker_queue_depth_max; do
    if ! grep -q "^$family{" "$page"; then
      echo "ci: pooled prom page lacks the $family family" >&2
      exit 1
    fi
  done
  rm -f "$topo" "$page"
}

# The pooled scaling guard (fixing the 1-cpu blind spot): run the batch=1
# BM_PoolExecutor_LadderScaling ladder and assert the work-stealing pool
# actually scales -- on runners that can show it. On < 4 hardware threads
# the assertions are SKIPPED WITH A VISIBLE WARNING instead of vacuously
# passing: a flat ladder on one core is absence of evidence, not a pass.
check_pool_scaling() {
  echo "==> pooled ladder scaling check (BM_PoolExecutor_LadderScaling)"
  local cores out
  cores=$(nproc 2>/dev/null || echo 1)
  out=$(mktemp)
  build/release/bench_pool_scaling \
      --benchmark_filter='BM_PoolExecutor_LadderScaling' \
      --benchmark_out="$out" --benchmark_out_format=json \
      >/dev/null
  if [[ "$cores" -lt 4 ]]; then
    echo "ci: WARNING: skipping pool scaling assertions -- this runner has" \
         "$cores hardware thread(s) (< 4); the ladder ran (counters above" \
         "are recorded) but cannot demonstrate scaling here" >&2
    rm -f "$out"
    return 0
  fi
  python3 - "$out" <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
rows = {b["name"]: b for b in doc.get("benchmarks", [])
        if b.get("name", "").startswith("BM_PoolExecutor_LadderScaling")}
def ips(nodes, workers):
    for name, b in rows.items():
        if f"/{nodes}/{workers}/" in name:
            return b["items_per_second"]
    sys.exit(f"ci: missing LadderScaling row for {nodes} nodes / "
             f"{workers} workers")
small, large = ips(100, 8), ips(1000, 8)
# A 10x bigger graph exposes 10x more node parallelism: at 8 workers the
# pool must hold at least half the small-graph throughput, else stealing
# is serializing on the scheduler instead of distributing.
if large < 0.5 * small:
    sys.exit(f"ci: pooled ladder does not scale: 1000-node @ 8 workers ran "
             f"{large:,.0f} items/s vs 100-node {small:,.0f} "
             f"(need >= 50%)")
par = [(n, b.get("effective_parallelism", 0)) for n, b in rows.items()]
print(f"ci: pool scaling OK: 1000-node @ 8 workers at "
      f"{100 * large / small:.0f}% of 100-node throughput; "
      "effective_parallelism " +
      ", ".join(f"{p:.2f}" for _, p in sorted(par)))
# Regression gate against the committed baseline, only when it was produced
# on comparable hardware (same cpu count): the 100-node @ 8 workers config
# may not lose more than 5% throughput.
try:
    with open("BENCH_pool_scaling.json") as f:
        base_doc = json.load(f)
except FileNotFoundError:
    base_doc = {}
base = [b for b in base_doc.get("benchmarks", [])
        if "LadderScaling/100/8/" in b.get("name", "")]
same_hw = base and int(base[0].get("hardware_concurrency", -1)) == \
    int(rows[[n for n in rows if "/100/8/" in n][0]]["hardware_concurrency"])
if base and same_hw:
    if small < 0.95 * base[0]["items_per_second"]:
        sys.exit(f"ci: pooled 100-node @ 8 workers regressed >5%: "
                 f"{small:,.0f} items/s vs committed "
                 f"{base[0]['items_per_second']:,.0f}")
    print("ci: 100-node @ 8 workers within 5% of the committed baseline")
else:
    print("ci: no comparable committed baseline (different hardware or "
          "missing rows); regression gate skipped")
PY
  rm -f "$out"
}

# The service contract check: boot the daemon on a Unix socket, push real
# traffic through the wire with the load generator, validate the daemon's
# Prometheus STATS page against the same exposition checker, prove wire runs
# bit-identical to in-process runs (the loopback differential), and verify
# SIGTERM drains to a clean exit with the socket unlinked.
check_service() {
  echo "==> service smoke (sdafd + sdaf_loadgen + loopback differential)"
  local sock stats
  sock="/tmp/sdaf_ci_$$.sock"
  stats=$(mktemp)
  build/release/sdafd --unix="$sock" &
  local daemon_pid=$!
  for _ in $(seq 1 50); do
    [[ -S "$sock" ]] && break
    sleep 0.1
  done
  [[ -S "$sock" ]] || { echo "ci: sdafd never bound $sock" >&2; exit 1; }
  build/release/sdaf_loadgen --unix="$sock" --connections=1,4 --items=2000 \
      --stats-out="$stats" >/dev/null
  tools/check_prom.sh "$stats"
  rm -f "$stats"
  kill -TERM "$daemon_pid"
  local rc=0
  wait "$daemon_pid" || rc=$?
  if [[ "$rc" != 0 ]]; then
    echo "ci: sdafd exited $rc after SIGTERM (want clean drain)" >&2
    exit 1
  fi
  if [[ -S "$sock" ]]; then
    echo "ci: sdafd left $sock behind after drain" >&2
    exit 1
  fi
  build/release/test_net_loopback \
      --gtest_filter='LoopbackTest.WireRunBitIdenticalToInProcess:LoopbackTest.DeadlockVerdictCertifiedOverWire'
}

# The admission contract check (qos): a daemon with a deliberately tiny
# node budget must refuse the loadgen probe's 3-node Open with the soft
# AdmissionRejected error -- the connection survives to fetch STATS -- and
# the refusal must be accounted in the sdaf_admission_rejected_total
# counter on a grammar-valid Prometheus page.
check_admission() {
  echo "==> admission smoke (tight-budget sdafd + over-budget Open)"
  local sock stats
  sock="/tmp/sdaf_ci_adm_$$.sock"
  stats=$(mktemp)
  build/release/sdafd --unix="$sock" --max-nodes=1 --tenant-credits=8 &
  local daemon_pid=$!
  for _ in $(seq 1 50); do
    [[ -S "$sock" ]] && break
    sleep 0.1
  done
  [[ -S "$sock" ]] || { echo "ci: sdafd never bound $sock" >&2; exit 1; }
  build/release/sdaf_loadgen --unix="$sock" --expect-rejected \
      --stats-out="$stats"
  tools/check_prom.sh "$stats"
  local rejected
  rejected=$(grep '^sdaf_admission_rejected_total ' "$stats" \
      | awk '{print $2}')
  if [[ -z "$rejected" || "$rejected" == 0 ]]; then
    echo "ci: STATS page does not account the rejected open" \
         "(sdaf_admission_rejected_total=$rejected)" >&2
    exit 1
  fi
  rm -f "$stats"
  kill -TERM "$daemon_pid"
  local rc=0
  wait "$daemon_pid" || rc=$?
  if [[ "$rc" != 0 ]]; then
    echo "ci: sdafd exited $rc after SIGTERM (want clean drain)" >&2
    exit 1
  fi
}

if [[ "$mode" == "--smoke" ]]; then
  check_prom
  check_service
  check_admission
  check_pool_scaling
  echo "==> ci OK (smoke)"
  exit 0
fi

if [[ "$mode" == "--crash" ]]; then
  crash_seconds=${SDAF_STRESS_SECONDS:-20}
  export ASAN_OPTIONS="detect_leaks=1:halt_on_error=1"
  export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1"
  export TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1"
  export SDAF_STRESS_SECONDS="$crash_seconds"

  # ASan over the full crash path: snapshot assembly, serialize, tear the
  # stream down, deserialize, rehydrate -- any dangling reference into the
  # dead stream or codec over-read dies here.
  echo "==> asan build + crash differential (${crash_seconds}s sweep)"
  cmake --preset asan
  cmake --build --preset asan -j "$jobs"
  build/asan/test_crash_recovery
  build/asan/test_net_snapshot

  # TSan over the barrier itself: markers racing live pushes, EOS floods,
  # deadlock verdicts and concurrent pollers on the threaded/pooled
  # backends.
  echo "==> tsan build + marker interleavings"
  cmake --preset tsan
  cmake --build --preset tsan -j "$jobs"
  build/tsan/test_ckpt
  build/tsan/test_crash_recovery

  echo "==> ci OK (crash)"
  exit 0
fi

echo "==> release ctest"
ctest --preset release -j "$jobs"

check_prom
check_service

echo "==> bench smoke (BENCH_*.json)"
tools/bench.sh --smoke

if [[ "$mode" != "--fast" ]]; then
  # Both sanitizer suites include tests/test_net_loopback.cpp (ctest picks up
  # every tests/*.cpp), so the poll loop, the session table and the framed
  # protocol run under ASan/UBSan and TSan on every PR, not just in release.
  echo "==> asan build + ctest"
  cmake --preset asan
  cmake --build --preset asan -j "$jobs"
  ctest --preset asan -j "$jobs"

  echo "==> tsan build + ctest"
  cmake --preset tsan
  cmake --build --preset tsan -j "$jobs"
  ctest --preset tsan -j "$jobs"
fi

if [[ "$mode" == "--stress" ]]; then
  stress_seconds=${SDAF_STRESS_SECONDS:-30}
  export ASAN_OPTIONS="detect_leaks=1:halt_on_error=1"
  export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1"
  export TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1"
  export SDAF_STRESS_SECONDS="$stress_seconds"
  for preset in asan tsan; do
    echo "==> $preset stress sweep (${stress_seconds}s per binary)"
    "build/$preset/test_harness_stress" \
        --gtest_filter='HarnessStress.TimeBoxedRandomSweep'
    "build/$preset/test_harness_stress" \
        --gtest_filter='HarnessStress.PortModeSweep'
    "build/$preset/test_harness_stress" \
        --gtest_filter='HarnessStress.SchedPerturbationSweep'
    "build/$preset/test_harness_stress" \
        --gtest_filter='HarnessStress.MultiTenantSweep'
    "build/$preset/test_spsc_ring" --gtest_filter='SpscRingHammer.*'
    "build/$preset/test_steal_deque" --gtest_filter='StealDequeHammer.*'
    "build/$preset/test_deadlock_verdicts"
  done
fi

echo "==> ci OK"
