#!/usr/bin/env bash
# CI entry point: release build + full test suite, then an AddressSanitizer
# (+UBSan) pass over the whole suite, then a ThreadSanitizer pass so the
# pooled scheduler's lock-free ready queue and park/wake protocol are
# race-checked on every PR.
#
#   tools/ci.sh            # release + asan + tsan
#   tools/ci.sh --fast     # release only
set -euo pipefail
cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 2)

echo "==> release build + ctest"
cmake --preset release
cmake --build --preset release -j "$jobs"
ctest --preset release -j "$jobs"

echo "==> bench smoke (BENCH_*.json)"
tools/bench.sh --smoke

if [[ "${1:-}" != "--fast" ]]; then
  echo "==> asan build + ctest"
  cmake --preset asan
  cmake --build --preset asan -j "$jobs"
  ctest --preset asan -j "$jobs"

  echo "==> tsan build + ctest"
  cmake --preset tsan
  cmake --build --preset tsan -j "$jobs"
  ctest --preset tsan -j "$jobs"
fi

echo "==> ci OK"
