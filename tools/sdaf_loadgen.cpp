// sdaf_loadgen -- closed-loop load generator for a running sdafd. Opens N
// concurrent connections (one thread each), drives one stream per
// connection through push/poll cycles against a fixed pipeline topology,
// and reports per-request RTT percentiles and sustained throughput as
// schema-stable JSON ("sdaf.service.bench.v1") for BENCH_service.json.
//
//   sdaf_loadgen --unix=/tmp/sdafd.sock --connections=1,8,64 \
//                --items=20000 --batch=64 --out=BENCH_service.json
//   sdaf_loadgen --host=127.0.0.1 --port=7411 ...
//   sdaf_loadgen --unix=PATH --stats-out=stats.prom   # dump the STATS page
//
// One RTT sample = one PushBatch -> PushAck round trip (the poll that
// drains the same batch keeps the egress taps from filling but is not
// timed). The figure of merit is items_per_second across the whole sweep
// wall clock, so server-side backpressure (short acks) shows up as lower
// throughput, not as an error.
//
// Multi-tenant modes (sdaf::qos):
//   --mix=I:B        after the connection ladder, run I interactive
//                    connections (tenant "interactive", DRR weight 4,
//                    1-item push -> poll round trips, the latency tenant)
//                    against B batch connections (tenant "batch", weight
//                    1, full-batch closed loop) concurrently, and emit
//                    per-tenant p50/p99 + throughput as the "mix" object
//                    in the JSON report.
//   --expect-rejected  probe mode for admission smoke tests: open one
//                    stream and require the daemon to refuse it with
//                    AdmissionRejected (the predicted cost is printed);
//                    exits 0 iff rejected, 1 if the open was admitted.
//                    Skips the load runs; combine with --stats-out.
//
// Exit status: 0 ok, 1 connect/protocol failure, 2 usage.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "src/net/client.h"
#include "src/net/frame.h"
#include "src/runtime/message.h"

using namespace sdaf;
using Clock = std::chrono::steady_clock;

namespace {

constexpr const char* kTopology =
    "node src\n"
    "node mid\n"
    "node dst\n"
    "edge src mid 16\n"
    "edge mid dst 16\n";

struct Config {
  std::string unix_path;
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::vector<std::size_t> connections = {1, 8, 64};
  std::size_t items = 20000;  // per connection
  std::uint32_t batch = 64;
  std::string out;        // JSON report path ("" = stdout only)
  std::string stats_out;  // dump the server STATS page here
  std::size_t mix_interactive = 0;  // --mix=I:B; 0,0 = no mix run
  std::size_t mix_batch = 0;
  bool expect_rejected = false;
};

// One tenant's aggregate in the --mix run.
struct TenantResult {
  std::size_t connections = 0;
  std::uint64_t items_total = 0;
  std::uint64_t rtt_p50_ns = 0;
  std::uint64_t rtt_p99_ns = 0;
  double items_per_second = 0.0;
};

struct RunResult {
  std::size_t connections = 0;
  std::uint64_t items_total = 0;
  std::uint64_t rtt_p50_ns = 0;
  std::uint64_t rtt_p99_ns = 0;
  double items_per_second = 0.0;
};

int usage() {
  std::fprintf(
      stderr,
      "usage: sdaf_loadgen (--unix=PATH | --host=H --port=P)\n"
      "                    [--connections=N,N,...] [--items=N] [--batch=N]\n"
      "                    [--out=FILE] [--stats-out=FILE]\n"
      "                    [--mix=I:B] [--expect-rejected]\n");
  return 2;
}

bool parse_u64(const char* s, std::uint64_t* out) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (end == s || *end != '\0') return false;
  *out = v;
  return true;
}

bool parse_list(const std::string& s, std::vector<std::size_t>* out) {
  out->clear();
  std::size_t pos = 0;
  while (pos <= s.size()) {
    const std::size_t comma = std::min(s.find(',', pos), s.size());
    std::uint64_t v = 0;
    if (!parse_u64(s.substr(pos, comma - pos).c_str(), &v) || v == 0)
      return false;
    out->push_back(static_cast<std::size_t>(v));
    pos = comma + 1;
  }
  return !out->empty();
}

std::optional<net::Client> connect(const Config& cfg) {
  if (!cfg.unix_path.empty()) return net::Client::connect_unix(cfg.unix_path);
  return net::Client::connect_tcp(cfg.host, cfg.port);
}

// One connection's worth of closed-loop work. Appends RTT samples (ns per
// PushBatch round trip) and returns items accepted, or 0 on failure.
std::uint64_t drive(const Config& cfg, std::vector<std::uint64_t>* rtts,
                    std::atomic<bool>* failed) {
  auto client = connect(cfg);
  if (!client.has_value()) {
    failed->store(true);
    return 0;
  }
  try {
    net::OpenFrame spec;
    spec.backend = 2;  // Pooled: the shared-pool path sdafd exists for
    spec.mode = 1;     // Propagation avoidance on
    spec.kernel = net::KernelKind::Relay;
    spec.pass_rate = 1.0;
    spec.topology = kTopology;
    spec.tenant = "loadgen";
    net::ClientStream s = client->open(1, spec);

    std::uint64_t accepted_total = 0;
    std::vector<runtime::Value> batch;
    while (accepted_total < cfg.items) {
      const std::size_t want = std::min<std::size_t>(
          cfg.batch, cfg.items - accepted_total);
      batch.clear();
      for (std::size_t i = 0; i < want; ++i)
        batch.emplace_back(static_cast<std::int64_t>(accepted_total + i));

      const auto t0 = Clock::now();
      const net::PushAckFrame ack = s.push_some(0, batch);
      rtts->push_back(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                               t0)
              .count()));
      accepted_total += ack.accepted;
      if (ack.ended != 0) break;
      // Drain what we just fed so the egress tap never fills up.
      std::uint64_t polled = 0;
      while (polled < ack.accepted) {
        const net::DeliverFrame d = s.poll(0, cfg.batch);
        polled += d.items.size();
        if (d.ended != 0 || d.items.empty()) break;
      }
    }
    s.close(0);
    for (;;) {
      const net::DeliverFrame d = s.poll(0, cfg.batch);
      if (d.ended != 0) break;
      if (d.items.empty()) std::this_thread::yield();
    }
    (void)s.finish();
    return accepted_total;
  } catch (const net::ProtocolError& e) {
    std::fprintf(stderr, "sdaf_loadgen: %s\n", e.what());
    failed->store(true);
    return 0;
  }
}

// One interactive-tenant connection in the --mix run: 1-item push ->
// poll-until-delivered round trips under tenant "interactive" at DRR
// weight 4. Unlike drive(), the RTT covers the delivery poll too -- the
// number a latency SLO would be written against.
std::uint64_t drive_interactive(const Config& cfg, std::size_t items,
                                std::vector<std::uint64_t>* rtts,
                                std::atomic<bool>* failed) {
  auto client = connect(cfg);
  if (!client.has_value()) {
    failed->store(true);
    return 0;
  }
  try {
    net::OpenFrame spec;
    spec.backend = 2;  // Pooled
    spec.mode = 1;
    spec.kernel = net::KernelKind::Relay;
    spec.pass_rate = 1.0;
    spec.topology = kTopology;
    spec.tenant = "interactive";
    spec.weight = 4.0;
    net::ClientStream s = client->open(1, spec);
    std::uint64_t done = 0;
    for (std::size_t i = 0; i < items; ++i) {
      const auto t0 = Clock::now();
      const net::PushAckFrame ack =
          s.push_some(0, {runtime::Value(static_cast<std::int64_t>(i))});
      if (ack.ended != 0) break;
      if (ack.accepted == 0) continue;  // backpressured; retry the loop
      std::uint64_t polled = 0;
      while (polled < 1) {
        const net::DeliverFrame d = s.poll(0, 1);
        polled += d.items.size();
        if (d.ended != 0) break;
      }
      rtts->push_back(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                               t0)
              .count()));
      ++done;
    }
    s.close(0);
    for (;;) {
      const net::DeliverFrame d = s.poll(0, cfg.batch);
      if (d.ended != 0) break;
      if (d.items.empty()) std::this_thread::yield();
    }
    (void)s.finish();
    return done;
  } catch (const net::ProtocolError& e) {
    std::fprintf(stderr, "sdaf_loadgen: %s\n", e.what());
    failed->store(true);
    return 0;
  }
}

// One batch-tenant connection in the --mix run: full-batch closed loop
// under tenant "batch" at weight 1 until `stop` is raised (the interactive
// tenant finishing ends the measurement window).
std::uint64_t drive_batch_saturator(const Config& cfg,
                                    const std::atomic<bool>* stop,
                                    std::atomic<bool>* failed) {
  auto client = connect(cfg);
  if (!client.has_value()) {
    failed->store(true);
    return 0;
  }
  try {
    net::OpenFrame spec;
    spec.backend = 2;  // Pooled
    spec.mode = 1;
    spec.kernel = net::KernelKind::Relay;
    spec.pass_rate = 1.0;
    spec.topology = kTopology;
    spec.tenant = "batch";
    spec.weight = 1.0;
    net::ClientStream s = client->open(1, spec);
    std::uint64_t accepted_total = 0;
    std::vector<runtime::Value> batch;
    while (!stop->load(std::memory_order_relaxed)) {
      batch.clear();
      for (std::size_t i = 0; i < cfg.batch; ++i)
        batch.emplace_back(static_cast<std::int64_t>(accepted_total + i));
      const net::PushAckFrame ack = s.push_some(0, batch);
      accepted_total += ack.accepted;
      if (ack.ended != 0) break;
      std::uint64_t polled = 0;
      while (polled < ack.accepted) {
        const net::DeliverFrame d = s.poll(0, cfg.batch);
        polled += d.items.size();
        if (d.ended != 0 || d.items.empty()) break;
      }
    }
    s.close(0);
    for (;;) {
      const net::DeliverFrame d = s.poll(0, cfg.batch);
      if (d.ended != 0) break;
      if (d.items.empty()) std::this_thread::yield();
    }
    (void)s.finish();
    return accepted_total;
  } catch (const net::ProtocolError& e) {
    std::fprintf(stderr, "sdaf_loadgen: %s\n", e.what());
    failed->store(true);
    return 0;
  }
}

std::uint64_t percentile(std::vector<std::uint64_t>& sorted, double p) {
  if (sorted.empty()) return 0;
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

bool run_one(const Config& cfg, std::size_t conns, RunResult* out) {
  std::vector<std::vector<std::uint64_t>> rtts(conns);
  std::vector<std::uint64_t> accepted(conns, 0);
  std::atomic<bool> failed{false};
  const auto t0 = Clock::now();
  {
    std::vector<std::thread> threads;
    threads.reserve(conns);
    for (std::size_t i = 0; i < conns; ++i)
      threads.emplace_back([&, i] { accepted[i] = drive(cfg, &rtts[i], &failed); });
    for (auto& t : threads) t.join();
  }
  const double secs =
      std::chrono::duration<double>(Clock::now() - t0).count();
  if (failed.load()) return false;

  std::vector<std::uint64_t> all;
  for (auto& r : rtts) all.insert(all.end(), r.begin(), r.end());
  std::sort(all.begin(), all.end());
  out->connections = conns;
  for (const std::uint64_t a : accepted) out->items_total += a;
  out->rtt_p50_ns = percentile(all, 0.50);
  out->rtt_p99_ns = percentile(all, 0.99);
  out->items_per_second =
      secs > 0.0 ? static_cast<double>(out->items_total) / secs : 0.0;
  return true;
}

// The --mix run: I interactive + B batch connections concurrently, the
// batch tenants saturating for exactly the interactive tenants' window.
bool run_mix(const Config& cfg, TenantResult* interactive,
             TenantResult* batch_out) {
  const std::size_t inter = cfg.mix_interactive;
  const std::size_t batch = cfg.mix_batch;
  std::vector<std::vector<std::uint64_t>> rtts(inter);
  std::vector<std::uint64_t> inter_items(inter, 0);
  std::vector<std::uint64_t> batch_items(batch, 0);
  std::atomic<bool> failed{false};
  std::atomic<bool> stop{false};
  const auto t0 = Clock::now();
  {
    std::vector<std::thread> threads;
    threads.reserve(inter + batch);
    for (std::size_t i = 0; i < batch; ++i)
      threads.emplace_back(
          [&, i] { batch_items[i] = drive_batch_saturator(cfg, &stop, &failed); });
    {
      std::vector<std::thread> inter_threads;
      inter_threads.reserve(inter);
      for (std::size_t i = 0; i < inter; ++i)
        inter_threads.emplace_back([&, i] {
          inter_items[i] = drive_interactive(cfg, cfg.items, &rtts[i], &failed);
        });
      for (auto& t : inter_threads) t.join();
    }
    stop.store(true, std::memory_order_relaxed);
    for (auto& t : threads) t.join();
  }
  const double secs = std::chrono::duration<double>(Clock::now() - t0).count();
  if (failed.load()) return false;

  std::vector<std::uint64_t> all;
  for (auto& r : rtts) all.insert(all.end(), r.begin(), r.end());
  std::sort(all.begin(), all.end());
  interactive->connections = inter;
  for (const std::uint64_t v : inter_items) interactive->items_total += v;
  interactive->rtt_p50_ns = percentile(all, 0.50);
  interactive->rtt_p99_ns = percentile(all, 0.99);
  interactive->items_per_second =
      secs > 0.0 ? static_cast<double>(interactive->items_total) / secs : 0.0;
  batch_out->connections = batch;
  for (const std::uint64_t v : batch_items) batch_out->items_total += v;
  batch_out->items_per_second =
      secs > 0.0 ? static_cast<double>(batch_out->items_total) / secs : 0.0;
  return true;
}

// --expect-rejected: one Open that the daemon's admission budget must
// refuse. The soft AdmissionRejected error (connection survives) is the
// pass condition; an admitted stream is the failure.
int run_expect_rejected(const Config& cfg) {
  auto client = connect(cfg);
  if (!client.has_value()) {
    std::fprintf(stderr, "sdaf_loadgen: connect failed\n");
    return 1;
  }
  try {
    net::OpenFrame spec;
    spec.backend = 2;
    spec.mode = 1;
    spec.kernel = net::KernelKind::Relay;
    spec.pass_rate = 1.0;
    spec.topology = kTopology;
    spec.tenant = "probe";
    net::ClientStream s = client->open(1, spec);
    (void)s;
    std::fprintf(stderr,
                 "sdaf_loadgen: open was ADMITTED (expected rejection)\n");
    return 1;
  } catch (const net::OpenRejectedError& e) {
    const auto& c = e.predicted();
    std::printf("rejected: %s (predicted slots=%llu bytes=%llu nodes=%llu "
                "dummy_ratio=%.3f)\n",
                e.what(), static_cast<unsigned long long>(c.channel_slots),
                static_cast<unsigned long long>(c.channel_bytes),
                static_cast<unsigned long long>(c.nodes),
                c.dummy_overhead_ratio);
    return 0;
  } catch (const net::ProtocolError& e) {
    std::fprintf(stderr, "sdaf_loadgen: wrong error: %s\n", e.what());
    return 1;
  }
}

int dump_stats(const Config& cfg) {
  auto client = connect(cfg);
  if (!client.has_value()) {
    std::fprintf(stderr, "sdaf_loadgen: stats connection failed\n");
    return 1;
  }
  try {
    std::ofstream f(cfg.stats_out);
    f << client->stats();
    if (!f) {
      std::fprintf(stderr, "sdaf_loadgen: cannot write %s\n",
                   cfg.stats_out.c_str());
      return 1;
    }
  } catch (const net::ProtocolError& e) {
    std::fprintf(stderr, "sdaf_loadgen: %s\n", e.what());
    return 1;
  }
  return 0;
}

std::string to_json(const Config& cfg, const std::vector<RunResult>& runs,
                    const TenantResult* mix_interactive,
                    const TenantResult* mix_batch) {
  std::string j;
  j += "{\n  \"schema\": \"sdaf.service.bench.v1\",\n";
  j += "  \"transport\": \"";
  j += cfg.unix_path.empty() ? "tcp" : "unix";
  j += "\",\n";
  j += "  \"batch\": " + std::to_string(cfg.batch) + ",\n";
  j += "  \"items_per_connection\": " + std::to_string(cfg.items) + ",\n";
  j += "  \"runs\": [\n";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const RunResult& r = runs[i];
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "    {\"connections\": %zu, \"items_total\": %llu, "
                  "\"rtt_p50_ns\": %llu, \"rtt_p99_ns\": %llu, "
                  "\"items_per_second\": %.1f}%s\n",
                  r.connections,
                  static_cast<unsigned long long>(r.items_total),
                  static_cast<unsigned long long>(r.rtt_p50_ns),
                  static_cast<unsigned long long>(r.rtt_p99_ns),
                  r.items_per_second, i + 1 < runs.size() ? "," : "");
    j += buf;
  }
  j += "  ]";
  if (mix_interactive != nullptr && mix_batch != nullptr) {
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        ",\n  \"mix\": {\n"
        "    \"interactive\": {\"connections\": %zu, \"items_total\": %llu, "
        "\"rtt_p50_ns\": %llu, \"rtt_p99_ns\": %llu, "
        "\"items_per_second\": %.1f},\n"
        "    \"batch\": {\"connections\": %zu, \"items_total\": %llu, "
        "\"items_per_second\": %.1f}\n  }",
        mix_interactive->connections,
        static_cast<unsigned long long>(mix_interactive->items_total),
        static_cast<unsigned long long>(mix_interactive->rtt_p50_ns),
        static_cast<unsigned long long>(mix_interactive->rtt_p99_ns),
        mix_interactive->items_per_second, mix_batch->connections,
        static_cast<unsigned long long>(mix_batch->items_total),
        mix_batch->items_per_second);
    j += buf;
  }
  j += "\n}\n";
  return j;
}

}  // namespace

int main(int argc, char** argv) {
  Config cfg;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::uint64_t n = 0;
    if (arg.rfind("--unix=", 0) == 0) {
      cfg.unix_path = arg.substr(7);
    } else if (arg.rfind("--host=", 0) == 0) {
      cfg.host = arg.substr(7);
    } else if (arg.rfind("--port=", 0) == 0) {
      if (!parse_u64(arg.c_str() + 7, &n) || n == 0 || n > 65535)
        return usage();
      cfg.port = static_cast<std::uint16_t>(n);
    } else if (arg.rfind("--connections=", 0) == 0) {
      if (!parse_list(arg.substr(14), &cfg.connections)) return usage();
    } else if (arg.rfind("--items=", 0) == 0) {
      if (!parse_u64(arg.c_str() + 8, &n) || n == 0) return usage();
      cfg.items = static_cast<std::size_t>(n);
    } else if (arg.rfind("--batch=", 0) == 0) {
      if (!parse_u64(arg.c_str() + 8, &n) || n == 0 || n > 4096)
        return usage();
      cfg.batch = static_cast<std::uint32_t>(n);
    } else if (arg.rfind("--out=", 0) == 0) {
      cfg.out = arg.substr(6);
    } else if (arg.rfind("--stats-out=", 0) == 0) {
      cfg.stats_out = arg.substr(12);
    } else if (arg.rfind("--mix=", 0) == 0) {
      const std::string v = arg.substr(6);
      const std::size_t colon = v.find(':');
      std::uint64_t a = 0;
      std::uint64_t b = 0;
      if (colon == std::string::npos ||
          !parse_u64(v.substr(0, colon).c_str(), &a) ||
          !parse_u64(v.substr(colon + 1).c_str(), &b) || a == 0 || b == 0)
        return usage();
      cfg.mix_interactive = static_cast<std::size_t>(a);
      cfg.mix_batch = static_cast<std::size_t>(b);
    } else if (arg == "--expect-rejected") {
      cfg.expect_rejected = true;
    } else {
      std::fprintf(stderr, "sdaf_loadgen: unknown flag %s\n", arg.c_str());
      return usage();
    }
  }
  if (cfg.unix_path.empty() && cfg.port == 0) return usage();

  if (cfg.expect_rejected) {
    const int rc = run_expect_rejected(cfg);
    if (!cfg.stats_out.empty() && dump_stats(cfg) != 0) return 1;
    return rc;
  }

  std::vector<RunResult> runs;
  for (const std::size_t conns : cfg.connections) {
    RunResult r;
    if (!run_one(cfg, conns, &r)) {
      std::fprintf(stderr, "sdaf_loadgen: run with %zu connections failed\n",
                   conns);
      return 1;
    }
    std::fprintf(stderr,
                 "connections=%zu items=%llu p50=%lluns p99=%lluns "
                 "items/s=%.0f\n",
                 r.connections, static_cast<unsigned long long>(r.items_total),
                 static_cast<unsigned long long>(r.rtt_p50_ns),
                 static_cast<unsigned long long>(r.rtt_p99_ns),
                 r.items_per_second);
    runs.push_back(r);
  }

  TenantResult mix_interactive;
  TenantResult mix_batch;
  const bool have_mix = cfg.mix_interactive > 0 && cfg.mix_batch > 0;
  if (have_mix) {
    if (!run_mix(cfg, &mix_interactive, &mix_batch)) {
      std::fprintf(stderr, "sdaf_loadgen: --mix run failed\n");
      return 1;
    }
    std::fprintf(stderr,
                 "mix interactive=%zu items=%llu p50=%lluns p99=%lluns | "
                 "batch=%zu items=%llu items/s=%.0f\n",
                 mix_interactive.connections,
                 static_cast<unsigned long long>(mix_interactive.items_total),
                 static_cast<unsigned long long>(mix_interactive.rtt_p50_ns),
                 static_cast<unsigned long long>(mix_interactive.rtt_p99_ns),
                 mix_batch.connections,
                 static_cast<unsigned long long>(mix_batch.items_total),
                 mix_batch.items_per_second);
  }

  const std::string json =
      to_json(cfg, runs, have_mix ? &mix_interactive : nullptr,
              have_mix ? &mix_batch : nullptr);
  std::fputs(json.c_str(), stdout);
  if (!cfg.out.empty()) {
    std::ofstream f(cfg.out);
    f << json;
    if (!f) {
      std::fprintf(stderr, "sdaf_loadgen: cannot write %s\n", cfg.out.c_str());
      return 1;
    }
  }

  if (!cfg.stats_out.empty() && dump_stats(cfg) != 0) return 1;
  return 0;
}
