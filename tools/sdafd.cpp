// sdafd -- the sdaf service daemon. Binds a Unix-domain and/or TCP
// listener, speaks the framed wire protocol (docs/PROTOCOL.md), and
// multiplexes client streams onto pooled exec::Streams through one
// poll()-driven event loop (src/net/server.h).
//
//   sdafd --unix=/tmp/sdafd.sock
//   sdafd --tcp --port=7411 --host=0.0.0.0 --workers=8
//   sdafd --unix=PATH --tcp --port=0          # both; port 0 = ephemeral
//
// On startup the daemon prints one line per bound listener to stdout
// ("listening unix PATH" / "listening tcp HOST:PORT") and flushes, so
// harnesses can wait for readiness and discover an ephemeral port.
//
// SIGTERM/SIGINT begin a graceful drain: listeners close immediately,
// live connections get --drain-grace-ms to Finish their streams, then the
// loop exits and teardown aborts whatever remains. A second signal forces
// an immediate stop.
//
// Exit status: 0 clean shutdown, 1 bind failure, 2 usage.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/net/server.h"

using namespace sdaf;

namespace {

net::Server* g_server = nullptr;
volatile std::sig_atomic_t g_signals = 0;

// Async-signal-safe: request_drain/request_stop are plain atomic stores.
void on_signal(int) {
  if (g_server == nullptr) return;
  if (g_signals++ == 0)
    g_server->request_drain();
  else
    g_server->request_stop();
}

int usage() {
  std::fprintf(
      stderr,
      "usage: sdafd [--unix=PATH] [--tcp] [--host=H] [--port=P]\n"
      "             [--workers=N] [--push-wait-ms=MS] [--drain-grace-ms=MS]\n"
      "             [qos budget flags, see below]\n"
      "  --unix=PATH        listen on a Unix-domain socket at PATH\n"
      "  --tcp              listen on TCP (default host 127.0.0.1)\n"
      "  --host=H           TCP bind address\n"
      "  --port=P           TCP port (0 = ephemeral, printed on stdout)\n"
      "  --workers=N        shared pool workers (0 = hardware concurrency)\n"
      "  --push-wait-ms=MS  per-push ingress deadline (default 50)\n"
      "  --drain-grace-ms=MS  grace after SIGTERM/SIGINT (default 2000)\n"
      "qos admission budgets (0 = unlimited, the default; docs/QOS.md):\n"
      "  --max-channel-bytes=N   certified channel memory across streams\n"
      "  --max-channel-slots=N   certified channel slots across streams\n"
      "  --max-nodes=N           total graph nodes on the shared pool\n"
      "  --max-tenants=N         distinct tenants with live streams\n"
      "  --max-streams-per-tenant=N\n"
      "  --max-dummy-ratio=R     per-stream predicted overhead cap (float)\n"
      "  --tenant-credits=N      per-tenant in-flight item window\n"
      "At least one of --unix / --tcp is required.\n");
  return 2;
}

bool parse_u64(const char* s, std::uint64_t* out) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (end == s || *end != '\0') return false;
  *out = v;
  return true;
}

bool parse_f64(const char* s, double* out) {
  char* end = nullptr;
  const double v = std::strtod(s, &end);
  if (end == s || *end != '\0' || !(v >= 0.0)) return false;  // NaN fails
  *out = v;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  net::ServerOptions opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::uint64_t n = 0;
    if (arg.rfind("--unix=", 0) == 0) {
      opt.unix_path = arg.substr(7);
    } else if (arg == "--tcp") {
      opt.tcp = true;
    } else if (arg.rfind("--host=", 0) == 0) {
      opt.tcp = true;
      opt.host = arg.substr(7);
    } else if (arg.rfind("--port=", 0) == 0) {
      if (!parse_u64(arg.c_str() + 7, &n) || n > 65535) return usage();
      opt.tcp = true;
      opt.tcp_port = static_cast<std::uint16_t>(n);
    } else if (arg.rfind("--workers=", 0) == 0) {
      if (!parse_u64(arg.c_str() + 10, &n)) return usage();
      opt.pool_workers = static_cast<std::size_t>(n);
    } else if (arg.rfind("--push-wait-ms=", 0) == 0) {
      if (!parse_u64(arg.c_str() + 15, &n)) return usage();
      opt.push_wait = std::chrono::milliseconds(n);
    } else if (arg.rfind("--drain-grace-ms=", 0) == 0) {
      if (!parse_u64(arg.c_str() + 17, &n)) return usage();
      opt.drain_grace = std::chrono::milliseconds(n);
    } else if (arg.rfind("--max-channel-bytes=", 0) == 0) {
      if (!parse_u64(arg.c_str() + 20, &n)) return usage();
      opt.budgets.max_channel_bytes = n;
    } else if (arg.rfind("--max-channel-slots=", 0) == 0) {
      if (!parse_u64(arg.c_str() + 20, &n)) return usage();
      opt.budgets.max_channel_slots = n;
    } else if (arg.rfind("--max-nodes=", 0) == 0) {
      if (!parse_u64(arg.c_str() + 12, &n)) return usage();
      opt.budgets.max_nodes = n;
    } else if (arg.rfind("--max-tenants=", 0) == 0) {
      if (!parse_u64(arg.c_str() + 14, &n)) return usage();
      opt.budgets.max_tenants = n;
    } else if (arg.rfind("--max-streams-per-tenant=", 0) == 0) {
      if (!parse_u64(arg.c_str() + 25, &n)) return usage();
      opt.budgets.max_streams_per_tenant = n;
    } else if (arg.rfind("--max-dummy-ratio=", 0) == 0) {
      double r = 0.0;
      if (!parse_f64(arg.c_str() + 18, &r)) return usage();
      opt.budgets.max_dummy_ratio = r;
    } else if (arg.rfind("--tenant-credits=", 0) == 0) {
      if (!parse_u64(arg.c_str() + 17, &n)) return usage();
      opt.tenant_credits = n;
    } else {
      std::fprintf(stderr, "sdafd: unknown flag %s\n", arg.c_str());
      return usage();
    }
  }
  if (opt.unix_path.empty() && !opt.tcp) return usage();

  net::Server server(std::move(opt));
  if (!server.start()) return 1;
  g_server = &server;
  std::signal(SIGTERM, on_signal);
  std::signal(SIGINT, on_signal);
  std::signal(SIGPIPE, SIG_IGN);

  if (!server.unix_path().empty())
    std::printf("listening unix %s\n", server.unix_path().c_str());
  if (server.tcp_port() != 0)
    std::printf("listening tcp %u\n", static_cast<unsigned>(server.tcp_port()));
  std::fflush(stdout);

  server.run();

  const net::ServiceStats s = server.stats();
  std::fprintf(stderr,
               "sdafd: done (connections=%llu streams=%llu frames=%llu "
               "errors=%llu in=%llu out=%llu)\n",
               static_cast<unsigned long long>(s.connections_total),
               static_cast<unsigned long long>(s.streams_total),
               static_cast<unsigned long long>(s.frames_total),
               static_cast<unsigned long long>(s.errors_total),
               static_cast<unsigned long long>(s.items_in_total),
               static_cast<unsigned long long>(s.items_out_total));
  return 0;
}
