// sdafc -- the deadlock-avoidance "compiler driver": reads a topology in
// the text format of src/graph/io.h, classifies it, computes dummy
// intervals, and prints the report (optionally DOT with annotations).
// With --run it executes the topology end-to-end through the exec::Session
// facade on any backend, using seeded Bernoulli relay kernels as the
// filtering workload.
//
//   sdafc [--nonprop] [--reject-general] [--dot] [--ceil] FILE
//   sdafc --run [--backend=sim|threaded|pooled] [--items=N]
//         [--pass-rate=P] [--seed=S] [--no-avoidance] [--metrics[=json|prom]]
//         [--tenant=NAME] [--tenant-weight=W]
//         FILE
//   sdafc --run --stdin [--backend=...] FILE   # one item per input line
//   sdafc --help
//
// --stdin drives the topology live through the streaming port API: each
// stdin line is pushed as one item into the (single) source's InputPort,
// results are printed from the sink OutputPorts as they arrive
// ("sink[seq]\ttext"), and EOF is the dynamic close() that ends the
// stream with the usual verdict.
//
// --metrics attaches an obs::MetricsRegistry to the run and prints the
// end-of-run snapshot to *stderr* (JSON by default, Prometheus text with
// --metrics=prom), keeping stdout parseable and exit codes unchanged. With
// --stdin the final summary is printed once the stream closes.
//
// --tenant / --tenant-weight (qos) label the run for the pooled backend's
// deficit-round-robin injector: the tenant's lane drains proportionally to
// its weight when the pool is shared. A pooled --metrics run also appends
// the per-tenant scheduler ledger (weight, lane enqueues/dequeues, queue
// depth high-water) to the metrics summary.
//
// --snapshot-every=N (with --run --stdin) cuts an asynchronous barrier
// snapshot after every N accepted lines and writes the serialized bytes to
// --snapshot-out=FILE (overwritten each cut, so the file always holds the
// latest checkpoint). --restore=FILE starts the stream from such a file
// instead of a fresh open: the stream resumes at the cut (epoch + 1) and
// stdin lines continue from the snapshot's replay point.
//
// Exit status: 0 ok, 1 rejected/invalid/incomplete, 2 usage,
// 3 run deadlocked.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/ckpt/snapshot.h"
#include "src/core/compile.h"
#include "src/core/report.h"
#include "src/exec/session.h"
#include "src/exec/stream.h"
#include "src/graph/io.h"
#include "src/obs/export.h"
#include "src/obs/metrics.h"
#include "src/runtime/pool_executor.h"
#include "src/workloads/filters.h"

using namespace sdaf;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: sdafc [--nonprop] [--reject-general] [--dot] [--ceil]\n"
      "             [--run] [--backend=sim|threaded|pooled] [--items=N]\n"
      "             [--pass-rate=P] [--seed=S] [--no-avoidance] [--stdin]\n"
      "             FILE\n"
      "  FILE format:  node <name> | edge <from> <to> <buffer>\n"
      "  --nonprop         use the Non-Propagation Algorithm\n"
      "  --reject-general  refuse non-CS4 topologies\n"
      "  --dot             emit annotated Graphviz instead of the report\n"
      "  --ceil            integer intervals with the paper's roundup\n"
      "  --run             execute the topology through exec::Session\n"
      "  --backend=B       execution backend (default sim)\n"
      "  --items=N         sequence numbers per source (default 1000)\n"
      "  --pass-rate=P     Bernoulli pass probability per (seq,slot),\n"
      "                    default 0.7\n"
      "  --seed=S          kernel seed (default 1)\n"
      "  --no-avoidance    run without dummy wrappers (demonstrates the\n"
      "                    deadlock the intervals prevent)\n"
      "  --metrics[=FMT]   print the end-of-run metrics snapshot to stderr;\n"
      "                    FMT is json (default) or prom (Prometheus text)\n"
      "  --tenant=NAME     tenant label for the run (default \"default\")\n"
      "  --tenant-weight=W DRR weight of this tenant's injector lane on the\n"
      "                    pooled backend, W >= 1 (default 1); a pooled\n"
      "                    --metrics run appends the per-tenant ledger\n"
      "  --stdin           with --run: stream one item per stdin line\n"
      "                    through the live InputPort (single-source\n"
      "                    topologies), printing sink results as they\n"
      "                    arrive; EOF closes the stream\n"
      "  --snapshot-every=N  with --stdin: cut a barrier snapshot every N\n"
      "                    accepted lines, writing the latest checkpoint\n"
      "                    to --snapshot-out=FILE\n"
      "  --snapshot-out=FILE destination for --snapshot-every checkpoints\n"
      "  --restore=FILE    with --stdin: resume the stream from a\n"
      "                    checkpoint file instead of a fresh open\n"
      "  exit: 0 ok, 1 rejected/invalid/incomplete, 2 usage,\n"
      "        3 run deadlocked\n");
  return 2;
}

bool parse_u64(const char* text, std::uint64_t* out) {
  char* end = nullptr;
  const auto value = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0') return false;
  *out = value;
  return true;
}

bool parse_probability(const char* text, double* out) {
  char* end = nullptr;
  const double value = std::strtod(text, &end);
  if (end == text || *end != '\0' || value < 0.0 || value > 1.0) return false;
  *out = value;
  return true;
}

std::string value_text(const runtime::Value& v) {
  if (!v.has_value()) return "<token>";
  try {
    return v.as<std::string>();
  } catch (const std::bad_cast&) {
  }
  try {
    return std::to_string(v.as<std::int64_t>());
  } catch (const std::bad_cast&) {
  }
  try {
    return std::to_string(v.as<double>());
  } catch (const std::bad_cast&) {
  }
  return "<opaque>";
}

// Metrics land on stderr so stdout stays the report/stream channel; a
// pipeline can do `sdafc --run --metrics=prom f 2>metrics.prom` and still
// parse the run output.
void print_metrics(const obs::MetricsSnapshot& snapshot,
                   const std::string& format) {
  const std::string text = format == "prom" ? obs::to_prometheus(snapshot)
                                            : obs::to_json(snapshot);
  std::fputs(text.c_str(), stderr);
  if (text.empty() || text.back() != '\n') std::fputc('\n', stderr);
}

// The per-tenant DRR ledger off a pooled run's explicit executor, on stderr
// like the snapshot it follows. prom reuses the canonical exporter; json
// emits a separate schema-tagged document so sdaf.metrics.v1 stays intact.
void print_tenant_ledger(const runtime::PoolExecutor& pool,
                         const std::string& format) {
  const std::vector<obs::TenantSchedMetrics> tenants = pool.tenant_metrics();
  if (format == "prom") {
    const std::string text = obs::tenant_sched_to_prometheus(tenants);
    std::fputs(text.c_str(), stderr);
    if (text.empty() || text.back() != '\n') std::fputc('\n', stderr);
    return;
  }
  std::ostringstream out;
  out << "{\"schema\":\"sdaf.tenant_sched.v1\",\"tenants\":[";
  for (std::size_t i = 0; i < tenants.size(); ++i) {
    const auto& t = tenants[i];
    if (i != 0) out << ",";
    out << "{\"tenant\":\"" << t.tenant << "\",\"weight\":" << t.weight
        << ",\"enqueued\":" << t.enqueued << ",\"dequeued\":" << t.dequeued
        << ",\"queue_depth\":" << t.queue_depth
        << ",\"queue_depth_max\":" << t.queue_depth_max << "}";
  }
  out << "]}\n";
  std::fputs(out.str().c_str(), stderr);
}

// Shared trailer for --run and --stdin: verdict line, traffic totals, and
// the wedged-state dump on deadlock. Returns the process exit status.
int print_run_report(const StreamGraph& g, const exec::RunReport& report,
                     const char* mode_name, std::uint64_t items,
                     double pass_rate) {
  const char* verdict = report.completed    ? "COMPLETED"
                        : report.deadlocked ? "DEADLOCKED"
                                            : "INCOMPLETE (sweep limit)";
  std::cout << "run backend=" << exec::to_string(report.backend)
            << " mode=" << mode_name << " items=" << items
            << " pass_rate=" << pass_rate << "\n"
            << "  " << verdict << " wall=" << report.wall_seconds << "s";
  if (report.backend == exec::Backend::Sim)
    std::cout << " sweeps=" << report.sweeps;
  std::cout << "\n  data=" << report.total_data()
            << " dummies=" << report.total_dummies() << " sink_data=";
  for (NodeId n = 0; n < g.node_count(); ++n)
    if (g.out_degree(n) == 0) std::cout << report.sink_data[n] << " ";
  std::cout << "\n";
  if (report.deadlocked && !report.state_dump.empty())
    std::cout << "--- wedged state ---\n" << report.state_dump;
  if (report.completed) return 0;
  return report.deadlocked ? 3 : 1;
}

// Serializes the stream's current barrier snapshot to `path`. The write is
// not atomic; a crash mid-write loses at most this one checkpoint file,
// never the stream (the snapshot is a copy).
bool write_snapshot_file(const ckpt::StreamSnapshot& snap,
                         const std::string& path) {
  const std::vector<std::uint8_t> bytes = ckpt::serialize(snap);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  return static_cast<bool>(out);
}

std::optional<ckpt::StreamSnapshot> read_snapshot_file(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  return ckpt::deserialize(
      reinterpret_cast<const std::uint8_t*>(text.data()), text.size());
}

struct CkptFlags {
  std::uint64_t snapshot_every = 0;  // 0 = off
  std::string snapshot_out;
  std::string restore_from;
};

// The live path: one stdin line = one item through the InputPort, results
// streamed from the OutputPorts as they arrive. Backpressure is handled by
// draining taps between push attempts (and pumping on the Sim backend); a
// topology that stops absorbing input for ~5s is reported and closed, so
// the verdict still comes from the exact machinery.
int run_stdin_stream(const StreamGraph& g, exec::StreamSpec spec,
                     const char* mode_name, double pass_rate,
                     std::uint64_t seed, const std::string& metrics_format,
                     const CkptFlags& ckpt_flags) {
  if (g.sources().size() != 1) {
    std::fprintf(stderr,
                 "sdafc: --stdin needs exactly one source node (got %zu)\n",
                 g.sources().size());
    return 1;
  }
  exec::Session session(g, workloads::relay_kernels(g, pass_rate, seed));
  // Stream is move-constructible but not move-assignable, so open/restore
  // both flow through one initializing expression.
  std::optional<exec::Stream> opened = [&]() -> std::optional<exec::Stream> {
    if (ckpt_flags.restore_from.empty()) return session.open(std::move(spec));
    const auto snap = read_snapshot_file(ckpt_flags.restore_from);
    if (!snap.has_value()) {
      std::fprintf(stderr, "sdafc: cannot read snapshot %s\n",
                   ckpt_flags.restore_from.c_str());
      return std::nullopt;
    }
    auto restored = session.restore(std::move(spec), *snap);
    if (!restored.has_value()) {
      std::fprintf(stderr,
                   "sdafc: snapshot %s does not match this topology/mode\n",
                   ckpt_flags.restore_from.c_str());
      return std::nullopt;
    }
    std::fprintf(stderr,
                 "sdafc: restored from %s (epoch %llu, resuming at seq %llu)\n",
                 ckpt_flags.restore_from.c_str(),
                 static_cast<unsigned long long>(restored->epoch()),
                 static_cast<unsigned long long>(snap->ports[0].next_seq));
    return restored;
  }();
  if (!opened.has_value()) return 1;
  exec::Stream& stream = *opened;
  exec::InputPort& in = stream.input(0);

  const auto drain = [&] {
    for (std::size_t i = 0; i < stream.output_count(); ++i) {
      exec::OutputPort& out = stream.output(i);
      while (auto item = out.poll())
        std::cout << g.node_name(out.node()) << "[" << item->seq << "]\t"
                  << value_text(item->value) << "\n";
    }
  };

  bool wedged = false;
  std::uint64_t items = 0;
  std::string line;
  while (!wedged && std::getline(std::cin, line)) {
    int stalls = 0;
    while (!in.try_push(runtime::Value(line))) {
      stream.pump();  // Sim: run sweeps; concurrent backends: no-op
      drain();
      if (++stalls > 5000) {
        std::fprintf(stderr,
                     "sdafc: stream stopped absorbing input; closing\n");
        wedged = true;
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    if (!wedged) ++items;
    drain();
    if (!wedged && ckpt_flags.snapshot_every != 0 &&
        items % ckpt_flags.snapshot_every == 0) {
      const auto snap = stream.snapshot(std::chrono::milliseconds(30000));
      if (!snap.has_value()) {
        std::fprintf(stderr,
                     "sdafc: barrier snapshot did not complete (stream "
                     "wedged?); continuing without a checkpoint\n");
      } else if (!write_snapshot_file(*snap, ckpt_flags.snapshot_out)) {
        std::fprintf(stderr, "sdafc: cannot write snapshot to %s\n",
                     ckpt_flags.snapshot_out.c_str());
      } else {
        std::fprintf(stderr,
                     "sdafc: checkpoint at seq %llu -> %s\n",
                     static_cast<unsigned long long>(snap->barrier_seq),
                     ckpt_flags.snapshot_out.c_str());
      }
      drain();
    }
  }
  in.close();
  // Stream the tail until every tap reports end-of-stream.
  for (std::size_t i = 0; i < stream.output_count(); ++i) {
    exec::OutputPort& out = stream.output(i);
    while (auto item = out.next())
      std::cout << g.node_name(out.node()) << "[" << item->seq << "]\t"
                << value_text(item->value) << "\n";
  }
  const auto report = stream.finish();
  // The stream Core owns its registry (StreamSpec::metrics defaults on), so
  // the final summary -- ports included -- comes straight off the handle.
  if (!metrics_format.empty()) print_metrics(stream.metrics(), metrics_format);
  return print_run_report(g, report, mode_name, items, pass_rate);
}

}  // namespace

int main(int argc, char** argv) {
  core::CompileOptions options;
  bool dot = false;
  bool run = false;
  bool use_stdin = false;
  bool avoidance = true;
  core::Rounding rounding = core::Rounding::Floor;
  exec::Backend backend = exec::Backend::Sim;
  std::uint64_t items = 1000;
  double pass_rate = 0.7;
  std::uint64_t seed = 1;
  std::string metrics_format;  // empty = off
  std::string tenant = "default";
  double tenant_weight = 1.0;
  CkptFlags ckpt_flags;
  std::string file;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--nonprop") {
      options.algorithm = core::Algorithm::NonPropagation;
    } else if (arg == "--reject-general") {
      options.general_policy = core::GeneralPolicy::Reject;
    } else if (arg == "--dot") {
      dot = true;
    } else if (arg == "--ceil") {
      rounding = core::Rounding::PaperCeil;
    } else if (arg == "--run") {
      run = true;
    } else if (arg.rfind("--backend=", 0) == 0) {
      const auto parsed = exec::backend_from_string(arg.substr(10));
      if (!parsed.has_value()) {
        std::fprintf(stderr, "sdafc: unknown backend %s\n",
                     arg.substr(10).c_str());
        return usage();
      }
      backend = *parsed;
    } else if (arg.rfind("--items=", 0) == 0) {
      if (!parse_u64(arg.c_str() + 8, &items)) {
        std::fprintf(stderr, "sdafc: bad --items value %s\n",
                     arg.c_str() + 8);
        return usage();
      }
    } else if (arg.rfind("--pass-rate=", 0) == 0) {
      if (!parse_probability(arg.c_str() + 12, &pass_rate)) {
        std::fprintf(stderr, "sdafc: bad --pass-rate value %s (want [0,1])\n",
                     arg.c_str() + 12);
        return usage();
      }
    } else if (arg.rfind("--seed=", 0) == 0) {
      if (!parse_u64(arg.c_str() + 7, &seed)) {
        std::fprintf(stderr, "sdafc: bad --seed value %s\n", arg.c_str() + 7);
        return usage();
      }
    } else if (arg.rfind("--tenant=", 0) == 0) {
      tenant = arg.substr(9);
      if (tenant.empty()) {
        std::fprintf(stderr, "sdafc: --tenant needs a name\n");
        return usage();
      }
    } else if (arg.rfind("--tenant-weight=", 0) == 0) {
      char* end = nullptr;
      tenant_weight = std::strtod(arg.c_str() + 16, &end);
      if (end == arg.c_str() + 16 || *end != '\0' || !(tenant_weight >= 1.0)) {
        std::fprintf(stderr, "sdafc: bad --tenant-weight value %s (want >= 1)\n",
                     arg.c_str() + 16);
        return usage();
      }
    } else if (arg == "--metrics" || arg.rfind("--metrics=", 0) == 0) {
      metrics_format = arg == "--metrics" ? "json" : arg.substr(10);
      if (metrics_format != "json" && metrics_format != "prom") {
        std::fprintf(stderr, "sdafc: bad --metrics format %s (want json|prom)\n",
                     metrics_format.c_str());
        return usage();
      }
    } else if (arg == "--no-avoidance") {
      avoidance = false;
    } else if (arg == "--stdin") {
      use_stdin = true;
    } else if (arg.rfind("--snapshot-every=", 0) == 0) {
      if (!parse_u64(arg.c_str() + 17, &ckpt_flags.snapshot_every) ||
          ckpt_flags.snapshot_every == 0) {
        std::fprintf(stderr, "sdafc: bad --snapshot-every value %s\n",
                     arg.c_str() + 17);
        return usage();
      }
    } else if (arg.rfind("--snapshot-out=", 0) == 0) {
      ckpt_flags.snapshot_out = arg.substr(15);
    } else if (arg.rfind("--restore=", 0) == 0) {
      ckpt_flags.restore_from = arg.substr(10);
    } else if (arg == "--help" || arg == "-h") {
      return usage();
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "sdafc: unknown flag %s\n", arg.c_str());
      return usage();
    } else {
      file = arg;
    }
  }
  if (file.empty()) return usage();

  std::ifstream in(file);
  if (!in) {
    std::fprintf(stderr, "sdafc: cannot open %s\n", file.c_str());
    return 1;
  }
  std::ostringstream text;
  text << in.rdbuf();

  const StreamGraph g = from_text(text.str());
  const auto result = core::compile(g, options);

  if (dot) {
    std::cout << to_dot(g, result.ok ? &result.intervals : nullptr);
  } else {
    std::cout << core::describe(g, result);
    if (result.ok) {
      const auto ints = result.integer_intervals(rounding);
      std::cout << "  integer thresholds ("
                << (rounding == core::Rounding::PaperCeil ? "paper roundup"
                                                          : "floor")
                << "):";
      for (EdgeId e = 0; e < g.edge_count(); ++e) {
        if (ints[e] == core::kNoDummyInterval)
          std::cout << " -";
        else
          std::cout << " " << ints[e];
      }
      std::cout << "\n";
    }
  }
  if (!result.ok) return 1;
  if (!run) {
    if (use_stdin)
      std::fprintf(stderr, "sdafc: --stdin requires --run\n");
    return use_stdin ? usage() : 0;
  }

  exec::RunSpec spec;
  spec.backend = backend;
  spec.num_inputs = items;
  spec.tenant = tenant;
  spec.tenant_weight = tenant_weight;
  if (avoidance) {
    spec.mode = options.algorithm == core::Algorithm::NonPropagation
                    ? runtime::DummyMode::NonPropagation
                    : runtime::DummyMode::Propagation;
    spec.apply(result, rounding);
  } else {
    spec.mode = runtime::DummyMode::None;
  }
  const char* mode_name =
      avoidance ? (spec.mode == runtime::DummyMode::Propagation
                       ? "propagation"
                       : "nonpropagation")
                : "none";

  if (ckpt_flags.snapshot_every != 0 && ckpt_flags.snapshot_out.empty()) {
    std::fprintf(stderr, "sdafc: --snapshot-every needs --snapshot-out\n");
    return usage();
  }
  if ((ckpt_flags.snapshot_every != 0 || !ckpt_flags.restore_from.empty()) &&
      !use_stdin) {
    std::fprintf(stderr,
                 "sdafc: --snapshot-every/--restore need --run --stdin\n");
    return usage();
  }

  if (use_stdin) {
    exec::StreamSpec stream_spec;
    stream_spec.run = spec;
    return run_stdin_stream(g, std::move(stream_spec), mode_name, pass_rate,
                            seed, metrics_format, ckpt_flags);
  }

  std::optional<obs::MetricsRegistry> registry;
  // With metrics on, a pooled run gets an explicit pool so the per-worker
  // scheduler counters (steals, futex parks, deque depth) can be folded
  // into the snapshot -- a session-private pool is gone before printing.
  std::optional<runtime::PoolExecutor> pool;
  if (!metrics_format.empty()) {
    registry.emplace(g.node_count(), g.edge_count());
    spec.metrics = &*registry;
    if (spec.backend == exec::Backend::Pooled && spec.pool == nullptr) {
      pool.emplace(spec.pool_workers);
      spec.pool = &*pool;
    }
  }
  exec::Session session(g, workloads::relay_kernels(g, pass_rate, seed));
  const auto report = session.run(spec);
  if (registry.has_value()) {
    obs::SnapshotOptions sopt;
    sopt.backend = exec::to_string(report.backend);
    sopt.tenant = spec.tenant;
    sopt.wall_seconds = report.wall_seconds;
    sopt.bytes_per_slot = sizeof(runtime::Message);
    obs::MetricsSnapshot snap = obs::snapshot(g, *registry, sopt);
    if (pool.has_value()) snap.workers = pool->worker_metrics();
    print_metrics(snap, metrics_format);
    // The per-tenant scheduler ledger (qos): what the DRR injector owes and
    // has paid each tenant lane on this pool. Appended after the snapshot
    // so the sdaf.metrics.v1 schema is untouched.
    if (pool.has_value()) print_tenant_ledger(*pool, metrics_format);
  }
  // Three distinct outcomes: completed, certified deadlock, or a sim run
  // truncated by the sweep ceiling (neither flag set).
  return print_run_report(g, report, mode_name, items, pass_rate);
}
