// sdafc -- the deadlock-avoidance "compiler driver": reads a topology in
// the text format of src/graph/io.h, classifies it, computes dummy
// intervals, and prints the report (optionally DOT with annotations).
//
//   sdafc [--nonprop] [--reject-general] [--dot] [--ceil] FILE
//   sdafc --help
//
// Exit status: 0 ok, 1 rejected/invalid, 2 usage.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "src/core/compile.h"
#include "src/core/report.h"
#include "src/graph/io.h"

using namespace sdaf;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: sdafc [--nonprop] [--reject-general] [--dot] [--ceil] "
               "FILE\n"
               "  FILE format:  node <name> | edge <from> <to> <buffer>\n"
               "  --nonprop         use the Non-Propagation Algorithm\n"
               "  --reject-general  refuse non-CS4 topologies\n"
               "  --dot             emit annotated Graphviz instead of the "
               "report\n"
               "  --ceil            print integer intervals with the paper's "
               "roundup\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  core::CompileOptions options;
  bool dot = false;
  core::Rounding rounding = core::Rounding::Floor;
  std::string file;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--nonprop") {
      options.algorithm = core::Algorithm::NonPropagation;
    } else if (arg == "--reject-general") {
      options.general_policy = core::GeneralPolicy::Reject;
    } else if (arg == "--dot") {
      dot = true;
    } else if (arg == "--ceil") {
      rounding = core::Rounding::PaperCeil;
    } else if (arg == "--help" || arg == "-h") {
      return usage();
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "sdafc: unknown flag %s\n", arg.c_str());
      return usage();
    } else {
      file = arg;
    }
  }
  if (file.empty()) return usage();

  std::ifstream in(file);
  if (!in) {
    std::fprintf(stderr, "sdafc: cannot open %s\n", file.c_str());
    return 1;
  }
  std::ostringstream text;
  text << in.rdbuf();

  const StreamGraph g = from_text(text.str());
  const auto result = core::compile(g, options);

  if (dot) {
    std::cout << to_dot(g, result.ok ? &result.intervals : nullptr);
  } else {
    std::cout << core::describe(g, result);
    if (result.ok) {
      const auto ints = result.integer_intervals(rounding);
      std::cout << "  integer thresholds ("
                << (rounding == core::Rounding::PaperCeil ? "paper roundup"
                                                          : "floor")
                << "):";
      for (EdgeId e = 0; e < g.edge_count(); ++e) {
        if (ints[e] == core::kNoDummyInterval)
          std::cout << " -";
        else
          std::cout << " " << ints[e];
      }
      std::cout << "\n";
    }
  }
  return result.ok ? 0 : 1;
}
