#!/usr/bin/env bash
# check_prom.sh -- Prometheus text exposition (version 0.0.4) line checker.
#
#   tools/check_prom.sh [FILE]     # or reads stdin
#
# Validates the grammar obs::to_prometheus promises:
#   * every line is `# HELP <name> <doc>`, `# TYPE <name> <type>`, a free
#     comment, or a sample `name[{label="value",...}] value [timestamp]`
#   * metric and label names match the Prometheus charset
#   * label values use only the \\ \" \n escapes and are terminated
#   * each family has exactly one TYPE, emitted before its samples
#   * counter families end in _total; sample values are valid floats
#
# Exits 0 on a clean page, 1 with per-line diagnostics otherwise. CI runs
# sdafc --metrics=prom output through this so the exporter cannot silently
# drift from the exposition format.
set -euo pipefail

exec awk '
function fail(msg) {
  printf "check_prom: line %d: %s\n    %s\n", NR, msg, $0 > "/dev/stderr"
  bad = 1
}
BEGIN { name_re = "^[a-zA-Z_:][a-zA-Z0-9_:]*$" }
/^$/ { next }
/^# HELP / {
  if (split($0, a, " ") < 4) { fail("HELP wants <name> <doc>"); next }
  if (a[3] !~ name_re) fail("bad metric name in HELP: " a[3])
  if (a[3] in helped) fail("duplicate HELP for " a[3])
  helped[a[3]] = 1
  next
}
/^# TYPE / {
  if (split($0, a, " ") != 4) { fail("TYPE wants exactly <name> <type>"); next }
  if (a[3] !~ name_re) fail("bad metric name in TYPE: " a[3])
  if (a[4] !~ /^(counter|gauge|histogram|summary|untyped)$/)
    fail("unknown type: " a[4])
  if (a[3] in typed) fail("duplicate TYPE for " a[3])
  if (a[3] in sampled) fail("TYPE after samples of " a[3])
  if (a[4] == "counter" && a[3] !~ /_total$/)
    fail("counter family must end in _total: " a[3])
  typed[a[3]] = a[4]
  next
}
/^#/ { next }  # free-form comment
{
  if (!match($0, /^[a-zA-Z_:][a-zA-Z0-9_:]*/)) { fail("bad metric name"); next }
  fam = substr($0, 1, RLENGTH)
  rest = substr($0, RLENGTH + 1)
  if (!(fam in typed)) fail("sample before # TYPE for " fam)
  sampled[fam] = 1
  if (substr(rest, 1, 1) == "{") {
    i = 2
    n = length(rest)
    for (;;) {
      if (!match(substr(rest, i), /^[a-zA-Z_][a-zA-Z0-9_]*=/)) {
        fail("bad label name"); next
      }
      i += RLENGTH
      if (substr(rest, i, 1) != "\"") { fail("label value must be quoted"); next }
      ++i
      closed = 0
      while (i <= n) {
        c = substr(rest, i, 1)
        if (c == "\\") {
          e = substr(rest, i + 1, 1)
          if (e != "\\" && e != "\"" && e != "n") fail("bad escape: \\" e)
          i += 2
          continue
        }
        ++i
        if (c == "\"") { closed = 1; break }
      }
      if (!closed) { fail("unterminated label value"); next }
      c = substr(rest, i, 1)
      ++i
      if (c == ",") continue
      if (c == "}") break
      fail("expected , or } after label value"); next
    }
    rest = substr(rest, i)
  }
  if (rest !~ /^ (-?([0-9]+\.?[0-9]*|\.[0-9]+)([eE][+-]?[0-9]+)?|[+-]?Inf|NaN)( -?[0-9]+)?$/)
    fail("bad sample value:" rest)
  ++samples
}
END {
  if (!samples && !bad) {
    print "check_prom: no sample lines found" > "/dev/stderr"
    bad = 1
  }
  exit bad
}
' "${1:-/dev/stdin}"
