#include "src/runtime/steal_deque.h"

#include "src/support/contracts.h"

namespace sdaf::runtime {

// Power-of-two circular array of atomic slots. `prev` chains retired rings
// (freed only by ~StealDeque) so stale thief reads stay in-bounds.
struct StealDeque::Ring {
  explicit Ring(std::size_t capacity_pow2, Ring* retired)
      : mask(capacity_pow2 - 1),
        slots(new std::atomic<void*>[capacity_pow2]),
        prev(retired) {}

  [[nodiscard]] void* load(std::int64_t i) const {
    return slots[static_cast<std::size_t>(i) & mask].load(
        std::memory_order_relaxed);
  }
  void store(std::int64_t i, void* item) {
    slots[static_cast<std::size_t>(i) & mask].store(
        item, std::memory_order_relaxed);
  }

  std::size_t mask;
  std::unique_ptr<std::atomic<void*>[]> slots;
  Ring* prev;
};

namespace {

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 2;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

StealDeque::StealDeque(std::size_t capacity)
    : ring_(new Ring(round_up_pow2(capacity < 2 ? 2 : capacity), nullptr)) {}

StealDeque::~StealDeque() {
  Ring* r = ring_.load(std::memory_order_relaxed);
  while (r != nullptr) {
    Ring* prev = r->prev;
    delete r;
    r = prev;
  }
}

void StealDeque::grow(Ring* old_ring, std::int64_t bottom, std::int64_t top) {
  auto* bigger = new Ring(2 * (old_ring->mask + 1), old_ring);
  for (std::int64_t i = top; i < bottom; ++i)
    bigger->store(i, old_ring->load(i));
  // Release so a thief that reads the new pointer sees the copied slots;
  // thieves still holding old_ring read the identical values there (grow
  // never moves `top`, and the owner never writes a retired ring again).
  ring_.store(bigger, std::memory_order_release);
}

void StealDeque::push_bottom(void* item) {
  SDAF_EXPECTS(item != nullptr);
  const std::int64_t b = bottom_.load(std::memory_order_relaxed);
  const std::int64_t t = top_.load(std::memory_order_acquire);
  Ring* ring = ring_.load(std::memory_order_relaxed);
  if (b - t > static_cast<std::int64_t>(ring->mask)) {
    grow(ring, b, t);
    ring = ring_.load(std::memory_order_relaxed);
  }
  ring->store(b, item);
  // Release pairs with the thief's acquire of bottom_: a thief that
  // observes index b as in-range also observes the slot write above. A
  // release store (not a release fence + relaxed store) so the edge is
  // also visible to TSan, which does not model fence-based ordering.
  bottom_.store(b + 1, std::memory_order_release);
}

void* StealDeque::pop_bottom() {
  const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
  Ring* ring = ring_.load(std::memory_order_relaxed);
  bottom_.store(b, std::memory_order_relaxed);
  // The Dekker point: publish the decremented bottom before reading top,
  // so this pop and a concurrent steal cannot both claim the last item
  // without one of them seeing the other.
  std::atomic_thread_fence(std::memory_order_seq_cst);
  std::int64_t t = top_.load(std::memory_order_relaxed);
  if (t > b) {
    // Already empty; restore the canonical empty shape.
    bottom_.store(b + 1, std::memory_order_relaxed);
    return nullptr;
  }
  void* item = ring->load(b);
  if (t == b) {
    // Last item: race thieves for it with the same CAS they use.
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed))
      item = nullptr;  // a thief won; it owns the item
    bottom_.store(b + 1, std::memory_order_relaxed);
  }
  return item;
}

StealDeque::StealResult StealDeque::steal(void** out) {
  std::int64_t t = top_.load(std::memory_order_acquire);
  // Order the top read before the bottom read (seq_cst, pairing with the
  // owner's fence in pop_bottom): observing b <= t proves emptiness at the
  // probe instant rather than a torn in-between.
  std::atomic_thread_fence(std::memory_order_seq_cst);
  const std::int64_t b = bottom_.load(std::memory_order_acquire);
  if (t >= b) return StealResult::Empty;
  Ring* ring = ring_.load(std::memory_order_acquire);
  void* item = ring->load(t);
  // The CAS claims index t; on success the read above is the value that
  // index held when the claim landed (the owner cannot recycle index t
  // until top has moved past it).
  if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                    std::memory_order_relaxed))
    return StealResult::Contended;
  *out = item;
  return StealResult::Ok;
}

std::size_t StealDeque::approx_size() const {
  const std::int64_t b = bottom_.load(std::memory_order_relaxed);
  const std::int64_t t = top_.load(std::memory_order_relaxed);
  return b > t ? static_cast<std::size_t>(b - t) : 0;
}

std::size_t StealDeque::capacity() const {
  return ring_.load(std::memory_order_acquire)->mask + 1;
}

}  // namespace sdaf::runtime
