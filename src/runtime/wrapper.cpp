#include "src/runtime/wrapper.h"

#include "src/support/contracts.h"

namespace sdaf::runtime {

NodeWrapper::NodeWrapper(DummyMode mode,
                         std::vector<std::int64_t> out_intervals,
                         std::vector<std::uint8_t> forward_on_filter)
    : mode_(mode),
      intervals_(std::move(out_intervals)),
      forward_on_filter_(std::move(forward_on_filter)),
      last_sent_(intervals_.size(), -1) {
  for (const auto iv : intervals_) SDAF_EXPECTS(iv >= 1);
  if (forward_on_filter_.empty())
    forward_on_filter_.assign(intervals_.size(), 0);
  SDAF_EXPECTS(forward_on_filter_.size() == intervals_.size());
}

void NodeWrapper::restore_last_sent(const std::vector<std::int64_t>& v) {
  SDAF_EXPECTS(v.size() == last_sent_.size());
  last_sent_ = v;
}

bool NodeWrapper::should_send_dummy(std::size_t slot, std::uint64_t seq,
                                    bool sent_data, bool any_input_dummy) {
  SDAF_EXPECTS(slot < last_sent_.size());
  const auto iseq = static_cast<std::int64_t>(seq);
  if (sent_data) {
    last_sent_[slot] = iseq;
    return false;
  }
  if (mode_ == DummyMode::None) return false;
  if (mode_ == DummyMode::Propagation &&
      (any_input_dummy || forward_on_filter_[slot] != 0)) {
    // Forced propagation: received dummies may not be filtered, and on
    // interior cycle edges neither may the *absence* created by filtering
    // data -- the sequence number must travel on at zero added gap.
    last_sent_[slot] = iseq;
    return true;
  }
  if (intervals_[slot] != kInfiniteInterval &&
      iseq - last_sent_[slot] >= intervals_[slot]) {
    last_sent_[slot] = iseq;
    return true;
  }
  return false;
}

}  // namespace sdaf::runtime
