#include "src/runtime/spsc_ring.h"

#include <algorithm>

#include "src/support/contracts.h"

namespace sdaf::runtime {

SpscRing::SpscRing(std::size_t capacity)
    : capacity_(capacity), segs_(capacity + 1) {
  // capacity + 1 segments: the extra one is the marker's physical headroom
  // (markers are excluded from the logical capacity; see slot()).
  SDAF_EXPECTS(capacity >= 1);
}

std::uint64_t SpscRing::logical_space(std::uint64_t want) {
  // Marker-excluded occupancy estimate for data/dummy admission. The
  // refresh order is load-bearing: popped_ (acquire) FIRST, then
  // markers_in_ring_. The consumer decrements markers_in_ring_ before its
  // popped_ publish, so a popped_ value that includes a marker's pop
  // implies the markers read also sees its decrement -- the estimate can
  // over-count logical occupancy (spurious full, retried) but never
  // under-count it (which would over-admit past the certified bound).
  std::uint64_t used = p_.pushed - p_.popped_cache - p_.markers_cache;
  if (capacity_ - std::min<std::uint64_t>(used, capacity_) < want) {
    p_.popped_cache = popped_.load(std::memory_order_acquire);
    p_.markers_cache = markers_in_ring_.load(std::memory_order_acquire);
    used = p_.pushed - p_.popped_cache - p_.markers_cache;
  }
  return used >= capacity_ ? 0 : capacity_ - used;
}

void SpscRing::publish(std::size_t count, PushEffect* effect) {
  const std::uint64_t before = p_.pushed;
  // Sampled just before the publish so the occupancy high-water is exact
  // when un-raced and can only over-report (never miss) a concurrent peak
  // -- a pop landing inside the publish window must not hide saturation.
  const std::uint64_t popped_pre = popped_.load(std::memory_order_acquire);
  p_.pushed += count;
  pushed_.store(p_.pushed, std::memory_order_release);
  // Dekker pairing with the consumer's park protocol: after publishing,
  // re-read popped_ across a seq_cst fence. Either this read observes the
  // consumer's final pops (so was_empty correctly reports the transition
  // and the caller wakes it), or the consumer's post-park probe -- which
  // reads pushed_ after its own seq_cst park RMW -- observes this push.
  std::atomic_thread_fence(std::memory_order_seq_cst);
  // acquire, not relaxed: this value becomes popped_cache, which later
  // justifies reusing a slot without re-reading popped_ -- so it must carry
  // the happens-before edge to the consumer's last writes to that slot.
  const std::uint64_t popped_now = popped_.load(std::memory_order_acquire);
  p_.popped_cache = popped_now;
  if (effect != nullptr) {
    // popped_now > before means the consumer already consumed part of this
    // very push: it is certainly awake, so the wake-up may be elided.
    effect->was_empty = popped_now >= before;
    effect->occupancy = static_cast<std::size_t>(p_.pushed - popped_pre);
  }
}

bool SpscRing::try_push(Message&& m, PushEffect* effect) {
  if (logical_space(1) == 0) return false;
  if (m.kind == MessageKind::Dummy && p_.segs > 0 && p_.tail_is_dummy &&
      p_.tail_base_seq + p_.tail_run == m.seq && p_.tail_run < kRunLimit) {
    Segment& t = slot(p_.segs - 1);
    std::uint32_t expected = p_.tail_run;
    if (t.run.compare_exchange_strong(expected, p_.tail_run + 1,
                                      std::memory_order_acq_rel,
                                      std::memory_order_acquire)) {
      ++p_.tail_run;
      publish(1, effect);
      return true;
    }
    // The consumer sealed the (fully consumed) tail; fresh segment below.
  }
  Segment& s = slot(p_.segs);
  p_.tail_is_dummy = m.kind == MessageKind::Dummy;
  p_.tail_base_seq = m.seq;
  p_.tail_run = 1;
  s.msg = std::move(m);
  s.run.store(1, std::memory_order_relaxed);  // ordered by publish()'s release
  ++p_.segs;
  publish(1, effect);
  return true;
}

std::size_t SpscRing::try_push_batch(Message* msgs, std::size_t count,
                                     PushEffect* effect) {
  if (count == 0) return 0;
  const std::uint64_t space = logical_space(count);
  const std::size_t accepted = std::min<std::uint64_t>(count, space);
  if (accepted == 0) return 0;
  for (std::size_t k = 0; k < accepted; ++k) {
    // Data only: dummy runs ride try_push_dummies (they coalesce, which
    // needs the tail CAS this staging loop deliberately avoids), and EOS is
    // a single terminal message.
    SDAF_EXPECTS(msgs[k].kind == MessageKind::Data);
    Segment& s = slot(p_.segs);
    p_.tail_is_dummy = false;
    p_.tail_base_seq = msgs[k].seq;
    p_.tail_run = 1;
    s.msg = std::move(msgs[k]);
    s.run.store(1, std::memory_order_relaxed);  // ordered by publish()
    ++p_.segs;
  }
  publish(accepted, effect);
  return accepted;
}

std::size_t SpscRing::try_push_dummies(std::uint64_t first_seq,
                                       std::size_t count, PushEffect* effect) {
  if (count == 0) return 0;
  const std::uint64_t space = logical_space(count);
  const std::size_t accepted =
      std::min<std::uint64_t>(count, space);
  if (accepted == 0) return 0;
  if (p_.segs > 0 && p_.tail_is_dummy &&
      p_.tail_base_seq + p_.tail_run == first_seq &&
      p_.tail_run + accepted < kRunLimit) {
    Segment& t = slot(p_.segs - 1);
    std::uint32_t expected = p_.tail_run;
    if (t.run.compare_exchange_strong(
            expected, p_.tail_run + static_cast<std::uint32_t>(accepted),
            std::memory_order_acq_rel, std::memory_order_acquire)) {
      p_.tail_run += static_cast<std::uint32_t>(accepted);
      publish(accepted, effect);
      return accepted;
    }
  }
  Segment& s = slot(p_.segs);
  p_.tail_is_dummy = true;
  p_.tail_base_seq = first_seq;
  p_.tail_run = static_cast<std::uint32_t>(accepted);
  s.msg = Message::dummy(first_seq);
  s.run.store(static_cast<std::uint32_t>(accepted), std::memory_order_relaxed);
  ++p_.segs;
  publish(accepted, effect);
  return accepted;
}

bool SpscRing::try_push_marker(std::uint64_t seq, PushEffect* effect) {
  // Physical space check against capacity + 1: the marker rides the extra
  // segment, so a channel at its certified logical bound still admits it.
  // Slot safety: admission implies physical occupancy <= capacity before
  // the push, so live segments <= capacity = (#slots - 1) and the new slot
  // is retired (see the slot-reuse argument in the header comment).
  if (p_.pushed - p_.popped_cache >= capacity_ + 1) {
    p_.popped_cache = popped_.load(std::memory_order_acquire);
    p_.markers_cache = markers_in_ring_.load(std::memory_order_acquire);
    if (p_.pushed - p_.popped_cache >= capacity_ + 1) return false;
  }
  // Markers never coalesce and terminate any dummy tail run: the fresh
  // segment below resets the producer's tail mirror.
  Segment& s = slot(p_.segs);
  p_.tail_is_dummy = false;
  p_.tail_base_seq = seq;
  p_.tail_run = 1;
  s.msg = Message::marker(seq);
  s.run.store(1, std::memory_order_relaxed);  // ordered by publish()
  ++p_.segs;
  ++p_.markers_cache;
  // Increment BEFORE the pushed_ publish: any reader that observes this
  // push in pushed_ also observes the marker in markers_in_ring_, so a
  // marker-excluded occupancy can never over-report logical occupancy by
  // counting the marker as data.
  markers_in_ring_.fetch_add(1, std::memory_order_release);
  publish(1, effect);
  return true;
}

std::optional<HeadView> SpscRing::peek_head() {
  if (c_.pushed_cache == c_.popped) {
    c_.pushed_cache = pushed_.load(std::memory_order_acquire);
    if (c_.pushed_cache == c_.popped) return std::nullopt;
  }
  // Unconsumed messages exist, so the loop terminates: each round either
  // returns a head, retires an exhausted segment (the next one is already
  // published -- it holds the unconsumed messages), or observes the
  // producer's concurrent run extension.
  for (;;) {
    Segment& s = slot(c_.segs);
    const std::uint32_t raw = s.run.load(std::memory_order_acquire);
    // The producer's run-extension CAS (and a fresh segment's run store)
    // becomes visible *before* the matching pushed_ publish, so the raw
    // value may briefly exceed the published message count. The consumer
    // must never observe -- let alone pop -- messages beyond pushed_:
    // over-popping drives popped_ past pushed_, which breaks the
    // producer's full-check (slot reuse under a live head), the occupancy
    // snapshots, and the retire walk. Messages preceding this segment
    // number c_.popped - c_.consumed, so exactly `avail` of the run is
    // published; clamp to it (after refreshing the cache, so an
    // already-published extension is never under-reported).
    std::uint32_t run = raw;
    if ((raw & kSealed) == 0) {
      std::uint64_t avail = c_.pushed_cache - (c_.popped - c_.consumed);
      if (raw > avail) {
        c_.pushed_cache = pushed_.load(std::memory_order_acquire);
        avail = c_.pushed_cache - (c_.popped - c_.consumed);
        if (raw > avail) run = static_cast<std::uint32_t>(avail);
      }
    }
    if (c_.consumed < run) {
      if (s.msg.kind == MessageKind::Dummy)
        return HeadView{s.msg.seq + c_.consumed, MessageKind::Dummy,
                        run - c_.consumed};
      return HeadView{s.msg.seq, s.msg.kind, 1};
    }
    if ((raw & kSealed) == 0 && c_.consumed < raw) continue;
    // ^ the clamp hid an extension whose count publish is still in flight;
    // the refresh above makes this retry loop terminate with the producer.
    // Exhausted head: seal it so the producer can never extend it, then
    // retire. A failed seal means the producer just extended the run.
    std::uint32_t expected = raw;
    if (s.run.compare_exchange_strong(expected, raw | kSealed,
                                      std::memory_order_acq_rel,
                                      std::memory_order_acquire)) {
      ++c_.segs;
      c_.consumed = 0;
    }
  }
}

std::optional<Message> SpscRing::peek_message() {
  const auto head = peek_head();
  if (!head.has_value()) return std::nullopt;
  if (head->kind == MessageKind::Dummy) return Message::dummy(head->seq);
  return slot(c_.segs).msg;  // deep copy, dumps/tests only
}

Message SpscRing::pop_head(PopEffect* effect) {
  Segment& s = slot(c_.segs);
  SDAF_EXPECTS(c_.consumed < s.run.load(std::memory_order_acquire));
  Message m;
  if (s.msg.kind == MessageKind::Dummy) {
    m = Message::dummy(s.msg.seq + c_.consumed);
  } else {
    m = std::move(s.msg);
  }
  // Decrement BEFORE the popped_ publish (inside finish_pop): a producer
  // whose popped_ read includes this pop must also see the marker gone, or
  // its marker-excluded space estimate would subtract the marker twice and
  // over-admit (see logical_space).
  if (m.kind == MessageKind::Marker)
    markers_in_ring_.fetch_sub(1, std::memory_order_release);
  ++c_.consumed;
  finish_pop(s, 1, effect);
  return m;
}

void SpscRing::pop(PopEffect* effect) {
  Segment& s = slot(c_.segs);
  SDAF_EXPECTS(c_.consumed < s.run.load(std::memory_order_acquire));
  if (s.msg.kind != MessageKind::Dummy) s.msg.payload = Value{};
  if (s.msg.kind == MessageKind::Marker)
    markers_in_ring_.fetch_sub(1, std::memory_order_release);
  ++c_.consumed;
  finish_pop(s, 1, effect);
}

std::size_t SpscRing::pop_dummies(std::size_t count, PopEffect* effect) {
  if (count == 0) return 0;
  const auto head = peek_head();
  if (!head.has_value() || head->kind != MessageKind::Dummy) return 0;
  const std::size_t popped = std::min<std::size_t>(count, head->run);
  Segment& s = slot(c_.segs);
  c_.consumed += static_cast<std::uint32_t>(popped);
  finish_pop(s, popped, effect);
  return popped;
}

void SpscRing::finish_pop(Segment& s, std::size_t count, PopEffect* effect) {
  // Retire the head if this pop exhausted it, *before* publishing the pop:
  // the producer's slot-reuse argument needs "every unretired segment still
  // holds an unconsumed message" to hold whenever it acquires popped_.
  std::uint32_t run = s.run.load(std::memory_order_acquire);
  if (c_.consumed == run) {
    if (s.run.compare_exchange_strong(run, run | kSealed,
                                      std::memory_order_acq_rel,
                                      std::memory_order_acquire)) {
      ++c_.segs;
      c_.consumed = 0;
    }
    // Seal failure: the producer extended the run; the segment stays head.
  }
  const std::uint64_t before = c_.popped;
  c_.popped += count;
  popped_.store(c_.popped, std::memory_order_release);
  // Dekker pairing with the producer's waiter registration / park probe
  // (mirror image of publish()).
  std::atomic_thread_fence(std::memory_order_seq_cst);
  // acquire, not relaxed: this value becomes pushed_cache, which later lets
  // peek_head skip its own acquire reload -- so it must carry the
  // happens-before edge to the producer's segment writes.
  const std::uint64_t pushed_now = pushed_.load(std::memory_order_acquire);
  if (pushed_now > c_.pushed_cache) c_.pushed_cache = pushed_now;
  if (effect != nullptr) {
    // Reads >= capacity for every genuinely-full-before pop; concurrent
    // pushes can make it spuriously true (a harmless extra wake), never
    // falsely false for a parked producer.
    effect->was_full = pushed_now - before >= capacity_;
  }
}

std::size_t SpscRing::size() const {
  // Coherent snapshot: retry until popped_ is stable around the pushed_
  // read. pushed - popped is then a physical size that actually existed and
  // is bounded by capacity + 1 (the producer's admission checks allow at
  // most capacity logical messages plus one marker). The reported value is
  // logical -- markers excluded -- clamped into [0, capacity]; a marker
  // push or pop racing the reads can skew the estimate by one in either
  // direction, which only ever produces a spurious full/non-full for
  // observers, never an admission decision (producers use logical_space).
  std::uint64_t p0 = popped_.load(std::memory_order_acquire);
  for (;;) {
    const std::uint64_t pushed = pushed_.load(std::memory_order_acquire);
    const std::uint64_t markers =
        markers_in_ring_.load(std::memory_order_acquire);
    const std::uint64_t p1 = popped_.load(std::memory_order_acquire);
    if (p0 == p1) {
      SDAF_ASSERT(pushed >= p0 && pushed - p0 <= capacity_ + 1);
      const std::uint64_t physical = pushed - p0;
      const std::uint64_t m = std::min<std::uint64_t>(markers, physical);
      return static_cast<std::size_t>(
          std::min<std::uint64_t>(physical - m, capacity_));
    }
    p0 = p1;
  }
}

}  // namespace sdaf::runtime
