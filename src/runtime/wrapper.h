// The dummy-message wrappers of Section II.B, as pure decision logic shared
// verbatim by the threaded executor and the deterministic simulator.
//
// The silence gap is measured in *sequence numbers*, not firings: a node
// only fires when messages arrive, and arrivals are sparse exactly when
// upstream filters, so counting firings would let the effective gap
// multiply hop over hop (and messages die out along a path). Measured in
// sequence numbers the gap grows only *additively*: each hop adds at most
// its own interval, which is precisely why the Non-Propagation intervals
// divide the cycle budget L by the hop count h (Section II.B), and why the
// Propagation Algorithm needs no division -- forwarding happens at the
// same sequence number, adding zero gap per hop.
//
// Propagation Algorithm: only edges with finite intervals *originate*
// dummies (after [e] silent sequence numbers), but any node that consumed a
// dummy -- or filtered data on an interior cycle edge -- must forward one
// on every output channel it did not send data on.
//
// Non-Propagation Algorithm: every edge with a finite interval originates
// dummies on its own schedule; received dummies only serve alignment and
// are never forwarded.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

namespace sdaf::runtime {

enum class DummyMode : std::uint8_t { None, Propagation, NonPropagation };

// Matches core::kNoDummyInterval numerically; edges with this threshold
// never originate dummies.
inline constexpr std::int64_t kInfiniteInterval =
    std::numeric_limits<std::int64_t>::max();

class NodeWrapper {
 public:
  // `forward_on_filter[slot]`: Propagation mode only -- the slot's edge
  // lies on a cycle but has no scheduled interval (an interior cycle edge),
  // so sequence-number knowledge must be forwarded whenever the node
  // filters data on it; otherwise interior filtering re-creates the
  // deadlock the branch-node schedules cannot see.
  NodeWrapper(DummyMode mode, std::vector<std::int64_t> out_intervals,
              std::vector<std::uint8_t> forward_on_filter = {});

  // Called once per accepted sequence number per output slot, after the
  // kernel fired (or the node aligned a pure-dummy firing). Returns true
  // iff a dummy must be emitted on this slot for sequence number `seq`.
  [[nodiscard]] bool should_send_dummy(std::size_t slot, std::uint64_t seq,
                                       bool sent_data, bool any_input_dummy);

  [[nodiscard]] DummyMode mode() const { return mode_; }

  // Checkpoint hooks (ckpt): the wrapper's only mutable state is the last
  // sequence number emitted per output slot, which a snapshot captures and
  // a restore rehydrates so dummy-origination schedules resume exactly
  // where the cut left them.
  [[nodiscard]] const std::vector<std::int64_t>& last_sent() const {
    return last_sent_;
  }
  void restore_last_sent(const std::vector<std::int64_t>& v);

 private:
  DummyMode mode_;
  std::vector<std::int64_t> intervals_;
  std::vector<std::uint8_t> forward_on_filter_;
  std::vector<std::int64_t> last_sent_;  // last seq emitted per slot; -1 none
};

}  // namespace sdaf::runtime
