// Chase-Lev work-stealing deque ("Dynamic Circular Work-Stealing Deque",
// with the weak-memory orderings of Lê/Pop/Cohen/Nardelli): the per-worker
// ready queue of the pooled scheduler. The owning worker pushes and pops at
// the *bottom* (LIFO -- freshly woken tasks have hot caches); thieves take
// from the *top* (FIFO -- the oldest task, the one least likely to share
// cache lines with the owner), racing each other and the owner's last-item
// pop with a single CAS on `top`.
//
// The circular array grows geometrically when a burst outruns it; retired
// arrays are kept on a chain until the deque is destroyed, so a thief
// holding a stale array pointer still reads valid memory (grow copies the
// live range and the owner never writes a retired array again -- the
// standard dynamic Chase-Lev argument; top-CAS winners always read the
// value their index held when they won).
//
// Items are opaque `void*` (the scheduler stores NodeTask*); nullptr is
// reserved as the empty sentinel and must not be pushed. Exactly one owner
// thread may call push_bottom/pop_bottom; any thread may call steal.
//
// Quiescence note (the scheduler's exact deadlock certification): a task
// sitting in any deque -- or held by a thief between its winning CAS and
// the task's execution -- stays accounted in its instance's `active`
// counter the whole way (scheduled -> queued/stolen/running -> parked), so
// distributing the ready queue does not move the quiescence point; see
// docs/SCHEDULER.md.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

namespace sdaf::runtime {

class StealDeque {
 public:
  // `capacity` (rounded up to a power of two, minimum 2) sizes the initial
  // ring; tests shrink it to hammer the growth path.
  explicit StealDeque(std::size_t capacity = 256);
  ~StealDeque();

  StealDeque(const StealDeque&) = delete;
  StealDeque& operator=(const StealDeque&) = delete;

  // Owner only. `item` must be non-null.
  void push_bottom(void* item);

  // Owner only; LIFO. nullptr iff the deque was empty (a lost race against
  // a thief for the last item also reports empty -- the thief has it).
  [[nodiscard]] void* pop_bottom();

  enum class StealResult : std::uint8_t {
    Ok,         // *out holds the stolen item
    Empty,      // nothing to steal at the probe instant
    Contended,  // lost the top CAS to another thief or the owner; retry-able
  };
  [[nodiscard]] StealResult steal(void** out);

  // Racy instantaneous size; sampling/diagnostics only.
  [[nodiscard]] std::size_t approx_size() const;

  // Current ring capacity (tests observe growth through this).
  [[nodiscard]] std::size_t capacity() const;

 private:
  struct Ring;

  void grow(Ring* old_ring, std::int64_t bottom, std::int64_t top);

  // top_ <= bottom_; both only ever increase except the owner's transient
  // bottom_ decrement inside pop_bottom. 64-bit indices never wrap.
  alignas(64) std::atomic<std::int64_t> top_{0};
  alignas(64) std::atomic<std::int64_t> bottom_{0};
  alignas(64) std::atomic<Ring*> ring_;
};

}  // namespace sdaf::runtime
