#include "src/runtime/executor.h"

#include <algorithm>
#include <atomic>
#include <thread>

#include "src/exec/firing_core.h"
#include "src/support/contracts.h"
#include "src/support/timer.h"

namespace sdaf::runtime {

namespace {

// Per-node driver running on its own thread: an exec::FiringCore whose
// delivery sink blocks. Input peeks wait inside the channel (reporting to
// the watchdog); output pushes are non-blocking and the runner waits on its
// ProducerSignal when every remaining pending message targets a full
// channel. A firing's outputs are still delivered per-channel
// asynchronously: everything that fits is pushed immediately and the
// remainder retried whenever any output channel frees space. Without this,
// a message for a starved channel could queue behind a blocked push to a
// full one, creating a wait the paper's model does not have (and that its
// intervals do not guard against).
class NodeRunner final : private exec::DeliverySink {
 public:
  NodeRunner(NodeId node, Kernel& kernel, std::vector<BoundedChannel*> ins,
             std::vector<BoundedChannel*> outs, NodeWrapper wrapper,
             std::uint64_t num_inputs, std::uint32_t batch,
             RuntimeMonitor* monitor, Tracer* tracer)
      : ins_(std::move(ins)),
        outs_(std::move(outs)),
        monitor_(monitor),
        core_(node, kernel, ins_.size(), outs_.size(), std::move(wrapper),
              num_inputs, *this, batch, tracer) {}

  [[nodiscard]] std::uint64_t fires() const { return core_.fires; }
  [[nodiscard]] std::uint64_t sink_data() const { return core_.sink_data; }
  [[nodiscard]] std::string describe() const { return core_.describe(); }

  ProducerSignal& signal() { return signal_; }

  void operator()() {
    for (;;) {
      if (core_.step()) continue;
      if (core_.done() || aborted_ || core_.aborted()) return;
      // step() made no progress and the run is live, so pending messages
      // remain for full channels (an empty input would have blocked inside
      // peek_head_wait instead). Wait for any output channel to free space.
      // Wake-elision protocol (see ProducerSignal::bump): capture the
      // version, register as a waiter, then re-check -- a pop that lands
      // after the capture either moves the version (so the wait predicate
      // is already true) or sees our registration and notifies.
      const std::uint64_t version =
          signal_.version.load(std::memory_order_acquire);
      signal_.waiters.fetch_add(1, std::memory_order_seq_cst);
      // Pairs with the fence in ProducerSignal::bump: the registration RMW
      // alone does not order the re-check's acquire loads.
      std::atomic_thread_fence(std::memory_order_seq_cst);
      const bool progressed = core_.step();
      if (!progressed && !core_.done() && !aborted_ && !core_.aborted() &&
          !signal_.aborted.load(std::memory_order_acquire)) {
        std::unique_lock lock(signal_.mu);
        BlockedScope blocked(monitor_);
        signal_.cv.wait(lock, [&] {
          return signal_.version.load(std::memory_order_acquire) != version ||
                 signal_.aborted.load(std::memory_order_acquire);
        });
      }
      signal_.waiters.fetch_sub(1, std::memory_order_relaxed);
      if (progressed) continue;
      if (core_.done() || aborted_ || core_.aborted() ||
          signal_.aborted.load(std::memory_order_acquire))
        return;
    }
  }

 private:
  std::optional<HeadView> peek_head(std::size_t slot,
                                    bool may_wait) override {
    if (!may_wait) return ins_[slot]->try_peek_head();
    auto head = ins_[slot]->peek_head_wait();  // blocks; empty iff aborted
    if (!head.has_value()) aborted_ = true;
    return head;
  }

  Message pop_head(std::size_t slot) override {
    return ins_[slot]->pop_head();
  }

  void pop(std::size_t slot) override { (void)ins_[slot]->pop(); }

  void pop_dummies(std::size_t slot, std::size_t count) override {
    const auto run = ins_[slot]->pop_dummies(count);
    SDAF_ASSERT(run.popped == count);
  }

  exec::PushOutcome try_push(std::size_t slot, Message&& m) override {
    switch (outs_[slot]->try_push(std::move(m))) {
      case PushResult::Ok:
        return exec::PushOutcome::Delivered;
      case PushResult::Aborted:
        aborted_ = true;
        return exec::PushOutcome::Aborted;
      case PushResult::Full:
      default:
        return exec::PushOutcome::Blocked;
    }
  }

  std::size_t try_push_dummies(std::size_t slot, std::uint64_t first_seq,
                               std::size_t count,
                               exec::PushOutcome* outcome) override {
    bool chan_aborted = false;
    const std::size_t accepted = outs_[slot]->try_push_dummies(
        first_seq, count, /*was_empty=*/nullptr, &chan_aborted);
    if (chan_aborted) {
      aborted_ = true;
      *outcome = exec::PushOutcome::Aborted;
    } else {
      *outcome = accepted == count ? exec::PushOutcome::Delivered
                                   : exec::PushOutcome::Blocked;
    }
    return accepted;
  }

  std::vector<BoundedChannel*> ins_;
  std::vector<BoundedChannel*> outs_;
  RuntimeMonitor* monitor_;
  ProducerSignal signal_;
  bool aborted_ = false;
  exec::FiringCore core_;  // last: its sink is *this
};

}  // namespace

Executor::Executor(const StreamGraph& g,
                   std::vector<std::shared_ptr<Kernel>> kernels)
    : graph_(g), kernels_(std::move(kernels)) {
  SDAF_EXPECTS(kernels_.size() == g.node_count());
  for (const auto& k : kernels_) SDAF_EXPECTS(k != nullptr);
}

exec::RunReport Executor::run(const exec::RunSpec& options) {
  const std::size_t edges = graph_.edge_count();
  const std::size_t nodes = graph_.node_count();
  std::vector<std::int64_t> intervals = options.intervals;
  if (intervals.empty()) intervals.assign(edges, kInfiniteInterval);
  SDAF_EXPECTS(intervals.size() == edges);

  std::vector<std::uint8_t> forward = options.forward_on_filter;
  if (forward.empty()) forward.assign(edges, 0);
  SDAF_EXPECTS(forward.size() == edges);

  RuntimeMonitor monitor;
  std::vector<std::unique_ptr<BoundedChannel>> channels;
  channels.reserve(edges);
  for (EdgeId e = 0; e < edges; ++e)
    channels.push_back(std::make_unique<BoundedChannel>(
        static_cast<std::size_t>(graph_.edge(e).buffer), &monitor));

  std::vector<std::unique_ptr<NodeRunner>> runners;
  runners.reserve(nodes);
  for (NodeId n = 0; n < nodes; ++n) {
    std::vector<BoundedChannel*> ins;
    for (const EdgeId e : graph_.in_edges(n)) ins.push_back(channels[e].get());
    std::vector<BoundedChannel*> outs;
    std::vector<std::int64_t> out_intervals;
    std::vector<std::uint8_t> out_forward;
    for (const EdgeId e : graph_.out_edges(n)) {
      outs.push_back(channels[e].get());
      out_intervals.push_back(intervals[e]);
      out_forward.push_back(forward[e]);
    }
    runners.push_back(std::make_unique<NodeRunner>(
        n, *kernels_[n], std::move(ins), std::move(outs),
        NodeWrapper(options.mode, std::move(out_intervals),
                    std::move(out_forward)),
        options.num_inputs, options.batch, &monitor, options.tracer));
    for (const EdgeId e : graph_.out_edges(n))
      channels[e]->set_producer_signal(&runners.back()->signal());
  }

  Stopwatch clock;
  std::atomic<bool> stop_watchdog{false};
  std::vector<std::thread> threads;
  threads.reserve(nodes);
  for (NodeId n = 0; n < nodes; ++n) {
    monitor.thread_started();
    threads.emplace_back([&, n] {
      (*runners[n])();
      monitor.thread_finished();
      // A finishing thread is progress: without this, the watchdog could
      // see a stale all-blocked snapshot while a peer exits.
      monitor.note_progress();
    });
  }

  bool deadlocked = false;
  std::thread watchdog([&] {
    deadlocked = run_watchdog(
        monitor, stop_watchdog,
        WatchdogOptions{options.watchdog_tick, options.deadlock_confirm_ticks},
        [&] {
          for (auto& ch : channels) ch->abort();
        });
  });

  for (auto& t : threads) t.join();
  stop_watchdog.store(true);
  watchdog.join();

  exec::RunReport result;
  result.backend = exec::Backend::Threaded;
  result.deadlocked = deadlocked;
  result.completed = !deadlocked;
  result.wall_seconds = clock.elapsed_seconds();
  result.edges.resize(edges);
  for (EdgeId e = 0; e < edges; ++e) {
    const auto s = channels[e]->stats();
    result.edges[e] = EdgeTraffic{s.data_pushed, s.dummies_pushed,
                                  s.max_occupancy};
  }
  result.fires.resize(nodes);
  result.sink_data.resize(nodes);
  for (NodeId n = 0; n < nodes; ++n) {
    result.fires[n] = runners[n]->fires();
    result.sink_data[n] = runners[n]->sink_data();
  }
  if (deadlocked) {
    // All threads have unwound, so channel and runner state is stable; the
    // channels keep their wedged contents after abort().
    result.state_dump = exec::dump_wedged_state(
        graph_,
        [&](EdgeId e) {
          const auto s = channels[e]->stats();
          return exec::EdgeDumpInfo{channels[e]->size(),
                                    channels[e]->capacity(), s.data_pushed,
                                    s.dummies_pushed, channels[e]->try_peek(),
                                    std::nullopt};
        },
        [&](NodeId n) { return runners[n]->describe(); });
  }
  return result;
}

}  // namespace sdaf::runtime
