#include "src/runtime/executor.h"

#include <algorithm>
#include <atomic>
#include <thread>

#include "src/exec/firing_core.h"
#include "src/support/contracts.h"
#include "src/support/timer.h"

namespace sdaf::runtime {

namespace {

// Per-node driver running on its own thread: an exec::FiringCore whose
// delivery sink blocks. Input peeks wait inside the channel (reporting to
// the watchdog); output pushes are non-blocking and the runner waits on its
// ProducerSignal when every remaining pending message targets a full
// channel. A firing's outputs are still delivered per-channel
// asynchronously: everything that fits is pushed immediately and the
// remainder retried whenever any output channel frees space. Without this,
// a message for a starved channel could queue behind a blocked push to a
// full one, creating a wait the paper's model does not have (and that its
// intervals do not guard against).
//
// A port-fed source blocks inside the injected feed channel instead (built
// with a null monitor, so the watchdog never counts an input-starved source
// as wedged); a tapped sink's egress channel rides in outs_ as one extra
// slot, so a full egress parks the sink on its ProducerSignal exactly like
// a full graph channel (caller pops bump the signal via the channel).
// `tapped_sink` marks that configuration: a tapped node is an out-degree-0
// sink, so its blocked-on-outputs park can only mean "tap full, awaiting
// the caller" -- that wait is hidden from the watchdog (like feed waits),
// keeping the "taps never affect deadlock verdicts" contract exact even
// when the caller drains slower than the certification window.
class NodeRunner final : private exec::DeliverySink {
 public:
  NodeRunner(NodeId node, Kernel& kernel, std::vector<BoundedChannel*> ins,
             std::vector<BoundedChannel*> outs, BoundedChannel* feed,
             bool tapped_sink, NodeWrapper wrapper, std::uint64_t num_inputs,
             std::uint32_t batch, RuntimeMonitor* monitor, Tracer* tracer,
             obs::NodeCounters* metrics)
      : ins_(std::move(ins)),
        outs_(std::move(outs)),
        feed_(feed),
        monitor_(monitor),
        output_wait_monitor_(tapped_sink ? nullptr : monitor),
        core_(node, kernel, ins_.size(), outs_.size(), std::move(wrapper),
              num_inputs, *this, batch, tracer, /*tick=*/nullptr,
              /*port_fed=*/feed != nullptr, metrics) {}

  [[nodiscard]] std::uint64_t fires() const { return core_.fires; }
  [[nodiscard]] std::uint64_t sink_data() const { return core_.sink_data; }
  [[nodiscard]] std::string describe() const { return core_.describe(); }
  [[nodiscard]] std::uint64_t park_summary() const {
    return core_.park_summary();
  }

  // Snapshot/restore plumbing (ckpt): see exec::FiringCore. Pre-start only.
  void set_snapshot_plane(ckpt::SnapshotPlane* plane) {
    core_.set_snapshot_plane(plane);
  }
  void restore_cut(const ckpt::NodeCut& cut) { core_.restore_cut(cut); }
  void mark_done() { core_.mark_done(); }

  ProducerSignal& signal() { return signal_; }

  void operator()() {
    for (;;) {
      if (core_.step()) continue;
      if (core_.done() || aborted_ || core_.aborted()) return;
      // step() made no progress and the run is live, so pending messages
      // remain for full channels (an empty input would have blocked inside
      // peek_head_wait instead). Wait for any output channel to free space.
      // Wake-elision protocol (see ProducerSignal::bump): capture the
      // event word, register as a waiter, then re-check -- a pop that lands
      // after the capture either moves the version (so the park falls
      // through) or sees our registration and wakes. Spurious returns just
      // re-enter the outer loop.
      const std::uint32_t version = signal_.event.capture();
      signal_.event.register_waiter();
      // Pairs with the fence in ProducerSignal::bump: the registration RMW
      // alone does not order the re-check's acquire loads.
      std::atomic_thread_fence(std::memory_order_seq_cst);
      const bool progressed = core_.step();
      if (!progressed && !core_.done() && !aborted_ && !core_.aborted() &&
          !signal_.aborted.load(std::memory_order_acquire)) {
        BlockedScope blocked(output_wait_monitor_);
        ParkingLot::park(signal_.event.version, version);
      }
      signal_.event.unregister_waiter();
      if (progressed) continue;
      if (core_.done() || aborted_ || core_.aborted() ||
          signal_.aborted.load(std::memory_order_acquire))
        return;
    }
  }

 private:
  std::optional<HeadView> peek_head(std::size_t slot,
                                    bool may_wait) override {
    if (!may_wait) return ins_[slot]->try_peek_head();
    auto head = ins_[slot]->peek_head_wait();  // blocks; empty iff aborted
    if (!head.has_value()) aborted_ = true;
    return head;
  }

  Message pop_head(std::size_t slot) override {
    return ins_[slot]->pop_head();
  }

  void pop(std::size_t slot) override { (void)ins_[slot]->pop(); }

  void pop_dummies(std::size_t slot, std::size_t count) override {
    const auto run = ins_[slot]->pop_dummies(count);
    SDAF_ASSERT(run.popped == count);
  }

  exec::PushOutcome try_push(std::size_t slot, Message&& m) override {
    // Markers ride their own channel entry point: occupancy-neutral
    // admission plus the producer-side edge-cut latch (see BoundedChannel).
    const PushResult result =
        m.kind == MessageKind::Marker
            ? outs_[slot]->try_push_marker(m.seq)
            : outs_[slot]->try_push(std::move(m));
    switch (result) {
      case PushResult::Ok:
        return exec::PushOutcome::Delivered;
      case PushResult::Aborted:
        aborted_ = true;
        return exec::PushOutcome::Aborted;
      case PushResult::Full:
      default:
        return exec::PushOutcome::Blocked;
    }
  }

  std::size_t try_push_dummies(std::size_t slot, std::uint64_t first_seq,
                               std::size_t count,
                               exec::PushOutcome* outcome) override {
    bool chan_aborted = false;
    const std::size_t accepted = outs_[slot]->try_push_dummies(
        first_seq, count, /*was_empty=*/nullptr, &chan_aborted);
    if (chan_aborted) {
      aborted_ = true;
      *outcome = exec::PushOutcome::Aborted;
    } else {
      *outcome = accepted == count ? exec::PushOutcome::Delivered
                                   : exec::PushOutcome::Blocked;
    }
    return accepted;
  }

  std::optional<HeadView> peek_feed(bool may_wait) override {
    if (!may_wait) return feed_->try_peek_head();
    auto head = feed_->peek_head_wait();  // blocks; empty iff aborted
    if (!head.has_value()) aborted_ = true;
    return head;
  }

  Message pop_feed() override { return feed_->pop_head(); }

  std::vector<BoundedChannel*> ins_;
  std::vector<BoundedChannel*> outs_;
  BoundedChannel* feed_;
  RuntimeMonitor* monitor_;
  // Null for tapped sinks: their only output is the tap, so an output wait
  // is "awaiting the caller", never part of a certifiable wedge.
  RuntimeMonitor* output_wait_monitor_;
  ProducerSignal signal_;
  bool aborted_ = false;
  exec::FiringCore core_;  // last: its sink is *this
};

}  // namespace

struct ThreadEngine::Impl {
  const StreamGraph& graph;
  RuntimeMonitor monitor;
  WatchdogOptions watchdog_options;
  const exec::PortBinding* ports;
  Tracer* tracer = nullptr;  // for the wedged-state dump tail
  std::vector<std::unique_ptr<BoundedChannel>> channels;
  std::vector<std::unique_ptr<NodeRunner>> runners;
  Stopwatch clock;
  std::vector<std::thread> threads;
  std::thread watchdog;
  std::atomic<bool> stop_watchdog{false};
  std::atomic<bool> watchdog_armed{false};
  bool started = false;
  bool joined = false;
  bool deadlocked = false;

  explicit Impl(const StreamGraph& g) : graph(g), ports(nullptr) {}

  void abort_all_channels() {
    for (auto& ch : channels) ch->abort();
    if (ports != nullptr) {
      for (BoundedChannel* feed : ports->feeds) feed->abort();
      for (BoundedChannel* egress : ports->egress)
        if (egress != nullptr) egress->abort();
    }
  }
};

ThreadEngine::ThreadEngine(
    const StreamGraph& g, const std::vector<std::shared_ptr<Kernel>>& kernels,
    const exec::RunSpec& options)
    : impl_(std::make_unique<Impl>(g)) {
  const std::size_t edges = g.edge_count();
  const std::size_t nodes = g.node_count();
  SDAF_EXPECTS(kernels.size() == nodes);
  for (const auto& k : kernels) SDAF_EXPECTS(k != nullptr);

  std::vector<std::int64_t> intervals = options.intervals;
  if (intervals.empty()) intervals.assign(edges, kInfiniteInterval);
  SDAF_EXPECTS(intervals.size() == edges);

  std::vector<std::uint8_t> forward = options.forward_on_filter;
  if (forward.empty()) forward.assign(edges, 0);
  SDAF_EXPECTS(forward.size() == edges);

  Impl& s = *impl_;
  s.watchdog_options =
      WatchdogOptions{options.watchdog_tick, options.deadlock_confirm_ticks};
  s.ports = options.ports;
  s.tracer = options.tracer;

  s.channels.reserve(edges);
  for (EdgeId e = 0; e < edges; ++e) {
    s.channels.push_back(std::make_unique<BoundedChannel>(
        static_cast<std::size_t>(g.edge(e).buffer), &s.monitor));
    if (options.metrics != nullptr)
      s.channels.back()->set_metrics(&options.metrics->channel(e));
  }

  s.runners.reserve(nodes);
  for (NodeId n = 0; n < nodes; ++n) {
    std::vector<BoundedChannel*> ins;
    for (const EdgeId e : g.in_edges(n)) ins.push_back(s.channels[e].get());
    std::vector<BoundedChannel*> outs;
    std::vector<std::int64_t> out_intervals;
    std::vector<std::uint8_t> out_forward;
    for (const EdgeId e : g.out_edges(n)) {
      outs.push_back(s.channels[e].get());
      out_intervals.push_back(intervals[e]);
      out_forward.push_back(forward[e]);
    }
    BoundedChannel* feed = nullptr;
    BoundedChannel* egress = nullptr;
    if (s.ports != nullptr) {
      feed = s.ports->feed_for(n);
      egress = s.ports->egress_for(n);
      if (egress != nullptr) {
        // The egress tap is one extra out-slot: infinite dummy interval,
        // never continuation-forwarding.
        outs.push_back(egress);
        out_intervals.push_back(kInfiniteInterval);
        out_forward.push_back(0);
      }
    }
    s.runners.push_back(std::make_unique<NodeRunner>(
        n, *kernels[n], std::move(ins), std::move(outs), feed,
        /*tapped_sink=*/egress != nullptr,
        NodeWrapper(options.mode, std::move(out_intervals),
                    std::move(out_forward)),
        options.num_inputs, options.batch, &s.monitor, options.tracer,
        options.metrics != nullptr ? &options.metrics->node(n) : nullptr));
    for (const EdgeId e : g.out_edges(n))
      s.channels[e]->set_producer_signal(&s.runners.back()->signal());
    if (egress != nullptr)
      egress->set_producer_signal(&s.runners.back()->signal());
  }

  if (options.ckpt_plane != nullptr)
    for (auto& r : s.runners) r->set_snapshot_plane(options.ckpt_plane);
  if (options.restore != nullptr) {
    const ckpt::StreamSnapshot& snap = *options.restore;
    SDAF_EXPECTS(snap.nodes.size() == nodes && snap.edges.size() == edges);
    for (NodeId n = 0; n < nodes; ++n) {
      s.runners[n]->restore_cut(snap.nodes[n]);
      if (snap.nodes[n].done != 0) s.runners[n]->mark_done();
    }
    for (EdgeId e = 0; e < edges; ++e) {
      s.channels[e]->restore_stats(snap.edges[e].data_pushed,
                                   snap.edges[e].dummies_pushed);
      // The cut's interior channels are logically empty except for the EOS
      // a pre-barrier-finished producer had flooded; re-create that head so
      // a live consumer still terminates.
      if (snap.nodes[g.edge(e).from].done != 0 &&
          snap.nodes[g.edge(e).to].done == 0) {
        const PushResult pushed = s.channels[e]->try_push(Message::eos());
        SDAF_ASSERT(pushed == PushResult::Ok);
      }
    }
  }
}

ThreadEngine::~ThreadEngine() {
  Impl& s = *impl_;
  if (s.started && !s.joined) {
    // Abandoned mid-stream: tear the run down rather than leaking threads.
    s.abort_all_channels();
    for (auto& t : s.threads) t.join();
    s.stop_watchdog.store(true);
    s.watchdog.join();
  }
}

void ThreadEngine::start(bool arm_watchdog) {
  Impl& s = *impl_;
  SDAF_EXPECTS(!s.started);
  s.started = true;
  s.watchdog_armed.store(arm_watchdog, std::memory_order_release);
  s.clock.reset();
  s.threads.reserve(s.runners.size());
  for (std::size_t n = 0; n < s.runners.size(); ++n) {
    s.monitor.thread_started();
    s.threads.emplace_back([&s, n] {
      (*s.runners[n])();
      s.monitor.thread_finished();
      // A finishing thread is progress: without this, the watchdog could
      // see a stale all-blocked snapshot while a peer exits.
      s.monitor.note_progress();
    });
  }
  s.watchdog = std::thread([&s] {
    // Certification may be armed late (live streams arm at last port
    // close); until then just idle on the tick.
    while (!s.watchdog_armed.load(std::memory_order_acquire)) {
      if (s.stop_watchdog.load(std::memory_order_acquire)) return;
      std::this_thread::sleep_for(s.watchdog_options.tick);
    }
    s.deadlocked = run_watchdog(s.monitor, s.stop_watchdog,
                                s.watchdog_options,
                                [&s] { s.abort_all_channels(); });
  });
}

void ThreadEngine::arm_watchdog() {
  impl_->watchdog_armed.store(true, std::memory_order_release);
}

ckpt::EdgeCut ThreadEngine::edge_cut(EdgeId e,
                                     bool producer_checkpointed) const {
  const auto st = producer_checkpointed
                      ? impl_->channels[e]->marker_cut_stats()
                      : impl_->channels[e]->stats();
  return ckpt::EdgeCut{st.data_pushed, st.dummies_pushed};
}

exec::RunReport ThreadEngine::join() {
  Impl& s = *impl_;
  SDAF_EXPECTS(s.started && !s.joined);
  s.joined = true;
  for (auto& t : s.threads) t.join();
  s.stop_watchdog.store(true);
  s.watchdog.join();

  const std::size_t edges = s.graph.edge_count();
  const std::size_t nodes = s.graph.node_count();
  exec::RunReport result;
  result.backend = exec::Backend::Threaded;
  result.deadlocked = s.deadlocked;
  result.completed = !s.deadlocked;
  result.wall_seconds = s.clock.elapsed_seconds();
  result.edges.resize(edges);
  for (EdgeId e = 0; e < edges; ++e) {
    const auto st = s.channels[e]->stats();
    result.edges[e] = EdgeTraffic{st.data_pushed, st.dummies_pushed,
                                  st.max_occupancy};
  }
  result.fires.resize(nodes);
  result.sink_data.resize(nodes);
  for (NodeId n = 0; n < nodes; ++n) {
    result.fires[n] = s.runners[n]->fires();
    result.sink_data[n] = s.runners[n]->sink_data();
  }
  if (s.deadlocked) {
    // All threads have unwound, so channel and runner state is stable; the
    // channels keep their wedged contents after abort().
    result.state_dump = exec::dump_wedged_state(
        s.graph,
        [&](EdgeId e) {
          const auto st = s.channels[e]->stats();
          return exec::EdgeDumpInfo{s.channels[e]->size(),
                                    s.channels[e]->capacity(), st.data_pushed,
                                    st.dummies_pushed, s.channels[e]->try_peek(),
                                    std::nullopt};
        },
        [&](NodeId n) {
          return exec::NodeDumpInfo{s.runners[n]->describe(),
                                    s.runners[n]->park_summary()};
        },
        s.tracer);
  }
  return result;
}

Executor::Executor(const StreamGraph& g,
                   std::vector<std::shared_ptr<Kernel>> kernels)
    : graph_(g), kernels_(std::move(kernels)) {
  SDAF_EXPECTS(kernels_.size() == g.node_count());
  for (const auto& k : kernels_) SDAF_EXPECTS(k != nullptr);
}

exec::RunReport Executor::run(const exec::RunSpec& options) {
  // Live ports would defeat timing-based certification (an input-starved
  // graph is idle, not wedged); this blocking entry point only accepts
  // pre-closed feeds, for which arming from the start is exact.
  SDAF_EXPECTS(options.ports == nullptr || !options.ports->live);
  ThreadEngine engine(graph_, kernels_, options);
  engine.start(/*arm_watchdog=*/true);
  return engine.join();
}

}  // namespace sdaf::runtime
