#include "src/runtime/executor.h"

#include <algorithm>
#include <atomic>
#include <thread>

#include "src/support/contracts.h"
#include "src/support/timer.h"

namespace sdaf::runtime {

std::uint64_t RunResult::total_dummies() const {
  std::uint64_t total = 0;
  for (const auto& e : edges) total += e.dummies;
  return total;
}

std::uint64_t RunResult::total_data() const {
  std::uint64_t total = 0;
  for (const auto& e : edges) total += e.data;
  return total;
}

Executor::Executor(const StreamGraph& g,
                   std::vector<std::shared_ptr<Kernel>> kernels)
    : graph_(g), kernels_(std::move(kernels)) {
  SDAF_EXPECTS(kernels_.size() == g.node_count());
  for (const auto& k : kernels_) SDAF_EXPECTS(k != nullptr);
}

namespace {

// Per-node driver running on its own thread. A firing's outputs are
// delivered per-channel asynchronously: everything that fits is pushed
// immediately and the remainder retried whenever any output channel frees
// space. Without this, a message for a starved channel could queue behind a
// blocked push to a full one, creating a wait the paper's model does not
// have (and that its intervals do not guard against).
class NodeRunner {
 public:
  NodeRunner(const StreamGraph& g, NodeId node, Kernel& kernel,
             std::vector<BoundedChannel*> ins,
             std::vector<BoundedChannel*> outs, NodeWrapper wrapper,
             std::uint64_t num_inputs, RuntimeMonitor* monitor)
      : kernel_(kernel),
        ins_(std::move(ins)),
        outs_(std::move(outs)),
        wrapper_(std::move(wrapper)),
        num_inputs_(num_inputs),
        monitor_(monitor),
        emitter_(outs_.size()) {
    (void)g;
    (void)node;
  }

  std::uint64_t fires = 0;
  std::uint64_t sink_data = 0;

  ProducerSignal& signal() { return signal_; }

  void operator()() {
    if (ins_.empty())
      run_source();
    else
      run_interior();
  }

 private:
  struct Pending {
    BoundedChannel* channel;
    Message message;
  };

  // Queues this firing's outputs: kernel data plus wrapper-mandated
  // dummies. The wrapper is consulted exactly once per slot per seq.
  void queue_outputs(std::uint64_t seq, bool any_input_dummy) {
    for (std::size_t slot = 0; slot < outs_.size(); ++slot) {
      const auto& v = emitter_.value(slot);
      if (v.has_value()) {
        (void)wrapper_.should_send_dummy(slot, seq, /*sent_data=*/true, false);
        pending_.push_back({outs_[slot], Message::data(seq, *v)});
      } else if (wrapper_.should_send_dummy(slot, seq, /*sent_data=*/false,
                                            any_input_dummy)) {
        pending_.push_back({outs_[slot], Message::dummy(seq)});
      }
    }
  }

  void queue_eos() {
    for (auto* out : outs_) pending_.push_back({out, Message::eos()});
  }

  // Delivers all pending messages; false iff aborted.
  bool deliver_pending() {
    while (!pending_.empty()) {
      std::uint64_t version;
      {
        std::lock_guard lock(signal_.mu);
        if (signal_.aborted) return false;
        version = signal_.version;
      }
      bool progress = false;
      for (auto it = pending_.begin(); it != pending_.end();) {
        switch (it->channel->try_push(it->message)) {
          case PushResult::Ok:
            it = pending_.erase(it);
            progress = true;
            break;
          case PushResult::Aborted:
            return false;
          case PushResult::Full:
            ++it;
            break;
        }
      }
      if (pending_.empty()) break;
      if (!progress) {
        std::unique_lock lock(signal_.mu);
        if (signal_.aborted) return false;
        if (signal_.version == version) {
          BlockedScope blocked(monitor_);
          signal_.cv.wait(lock, [&] {
            return signal_.version != version || signal_.aborted;
          });
        }
        if (signal_.aborted) return false;
      }
    }
    return true;
  }

  void run_source() {
    const std::vector<std::optional<Value>> no_inputs;
    for (std::uint64_t seq = 0; seq < num_inputs_; ++seq) {
      emitter_.reset();
      kernel_.fire(seq, no_inputs, emitter_);
      ++fires;
      queue_outputs(seq, /*any_input_dummy=*/false);
      if (!deliver_pending()) return;
    }
    queue_eos();
    (void)deliver_pending();
  }

  void run_interior() {
    std::vector<std::optional<Value>> inputs(ins_.size());
    for (;;) {
      // Alignment: wait for a message at the head of every input channel;
      // the next accepted sequence number is the minimum head.
      std::uint64_t min_seq = kEosSeq;
      heads_.resize(ins_.size());
      for (std::size_t j = 0; j < ins_.size(); ++j) {
        auto head = ins_[j]->peek_wait();
        if (!head.has_value()) return;  // aborted
        heads_[j] = *head;
        min_seq = std::min(min_seq, heads_[j].seq);
      }
      if (min_seq == kEosSeq) {
        queue_eos();
        (void)deliver_pending();
        return;
      }
      bool any_dummy = false;
      bool any_data = false;
      for (std::size_t j = 0; j < ins_.size(); ++j) {
        inputs[j].reset();
        if (heads_[j].seq != min_seq) continue;  // upstream filtered min_seq
        if (heads_[j].kind == MessageKind::Data) {
          inputs[j] = heads_[j].payload;
          any_data = true;
          ++sink_data;
        } else {
          any_dummy = true;
        }
        ins_[j]->pop();
      }
      emitter_.reset();
      if (any_data) {
        kernel_.fire(min_seq, inputs, emitter_);
        ++fires;
      }
      queue_outputs(min_seq, any_dummy);
      if (!deliver_pending()) return;
    }
  }

  Kernel& kernel_;
  std::vector<BoundedChannel*> ins_;
  std::vector<BoundedChannel*> outs_;
  NodeWrapper wrapper_;
  std::uint64_t num_inputs_;
  RuntimeMonitor* monitor_;
  Emitter emitter_;
  std::vector<Message> heads_;
  std::vector<Pending> pending_;
  ProducerSignal signal_;
};

}  // namespace

RunResult Executor::run(const ExecutorOptions& options) {
  const std::size_t edges = graph_.edge_count();
  const std::size_t nodes = graph_.node_count();
  std::vector<std::int64_t> intervals = options.intervals;
  if (intervals.empty()) intervals.assign(edges, kInfiniteInterval);
  SDAF_EXPECTS(intervals.size() == edges);

  std::vector<std::uint8_t> forward = options.forward_on_filter;
  if (forward.empty()) forward.assign(edges, 0);
  SDAF_EXPECTS(forward.size() == edges);

  RuntimeMonitor monitor;
  std::vector<std::unique_ptr<BoundedChannel>> channels;
  channels.reserve(edges);
  for (EdgeId e = 0; e < edges; ++e)
    channels.push_back(std::make_unique<BoundedChannel>(
        static_cast<std::size_t>(graph_.edge(e).buffer), &monitor));

  std::vector<std::unique_ptr<NodeRunner>> runners;
  runners.reserve(nodes);
  for (NodeId n = 0; n < nodes; ++n) {
    std::vector<BoundedChannel*> ins;
    for (const EdgeId e : graph_.in_edges(n)) ins.push_back(channels[e].get());
    std::vector<BoundedChannel*> outs;
    std::vector<std::int64_t> out_intervals;
    std::vector<std::uint8_t> out_forward;
    for (const EdgeId e : graph_.out_edges(n)) {
      outs.push_back(channels[e].get());
      out_intervals.push_back(intervals[e]);
      out_forward.push_back(forward[e]);
    }
    runners.push_back(std::make_unique<NodeRunner>(
        graph_, n, *kernels_[n], std::move(ins), std::move(outs),
        NodeWrapper(options.mode, std::move(out_intervals),
                    std::move(out_forward)),
        options.num_inputs, &monitor));
    for (const EdgeId e : graph_.out_edges(n))
      channels[e]->set_producer_signal(&runners.back()->signal());
  }

  Stopwatch clock;
  std::atomic<bool> stop_watchdog{false};
  std::vector<std::thread> threads;
  threads.reserve(nodes);
  for (NodeId n = 0; n < nodes; ++n) {
    monitor.thread_started();
    threads.emplace_back([&, n] {
      (*runners[n])();
      monitor.thread_finished();
      // A finishing thread is progress: without this, the watchdog could
      // see a stale all-blocked snapshot while a peer exits.
      monitor.note_progress();
    });
  }

  bool deadlocked = false;
  std::thread watchdog([&] {
    deadlocked = run_watchdog(
        monitor, stop_watchdog,
        WatchdogOptions{options.watchdog_tick, options.deadlock_confirm_ticks},
        [&] {
          for (auto& ch : channels) ch->abort();
        });
  });

  for (auto& t : threads) t.join();
  stop_watchdog.store(true);
  watchdog.join();

  RunResult result;
  result.deadlocked = deadlocked;
  result.completed = !deadlocked;
  result.wall_seconds = clock.elapsed_seconds();
  result.edges.resize(edges);
  for (EdgeId e = 0; e < edges; ++e) {
    const auto s = channels[e]->stats();
    result.edges[e] = EdgeTraffic{s.data_pushed, s.dummies_pushed,
                                  s.max_occupancy};
  }
  result.fires.resize(nodes);
  result.sink_data.resize(nodes);
  for (NodeId n = 0; n < nodes; ++n) {
    result.fires[n] = runners[n]->fires;
    result.sink_data[n] = runners[n]->sink_data;
  }
  return result;
}

}  // namespace sdaf::runtime
