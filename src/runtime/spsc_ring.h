// Lock-free single-producer/single-consumer segment ring with dummy
// run-length coalescing: the fast path under BoundedChannel. Every compiled
// edge has exactly one producer and one consumer, so the channel never needs
// a mutex on the data path -- an atomic pushed/popped counter pair (with the
// classic cached-index optimization: each side re-reads the other's counter
// only when its cached copy says full/empty) carries all ordering.
//
// Storage follows runtime::MessageRing: `capacity` segments, allocated once,
// where a run of k consecutive-sequence dummies occupies one {base_seq, run}
// segment. *Logical* occupancy still counts k messages, so the paper's
// buffer-size semantics (and exact deadlock certification) are unchanged.
// MessageRing itself deliberately survives as the executable specification
// of the coalescing semantics: it still backs the (single-threaded)
// simulator, and tests/test_spsc_ring.cpp model-checks this class against
// it op for op -- keep the two in lockstep when touching either.
//
// The one place both sides touch the same memory is the tail segment of a
// dummy run: the producer extends `run` while the consumer may be draining
// the same segment. A single-word CAS protocol arbitrates:
//
//   producer  extend run r -> r+k     (CAS; fails iff the consumer sealed)
//   consumer  seal run r -> r|kSealed (CAS; fails iff the producer extended)
//
// The consumer seals a segment only when it has consumed all r messages, and
// retires it immediately after a successful seal; a sealed segment can never
// be extended, so the producer starts a fresh segment on CAS failure. Both
// CASes target the same word with the same expected value, so exactly one
// side wins and each failure tells the loser precisely what happened.
//
// The extension CAS lands *before* the producer's pushed_ publish, so a raw
// `run` read can briefly exceed the published message count. The consumer
// therefore clamps every head view to pushed_ (see peek_head): without the
// clamp, a consumer draining the tail run in a tight loop can pop messages
// ahead of the count, driving popped_ past pushed_ -- which breaks the
// producer's full-check (slot reuse under a live head) and every
// counter-derived invariant after it.
//
// Slot-reuse safety (why the producer may overwrite seg[segs % capacity]
// without reading a consumer-side segment counter): the consumer retires a
// segment *before* publishing the pop that exhausted it, so whenever the
// producer acquires popped_ == P, every segment except the newest
// (pushed - P) <= capacity-1 ones is retired and will never be touched by
// the consumer again. The full-check therefore doubles as the slot-check.
//
// Transition reporting for schedulers (was_empty / was_full) uses a seq_cst
// fence after the counter publish and a fresh read of the opposite counter:
// paired with the consumer's park protocol (a seq_cst RMW before probing)
// and the producer's waiter registration, either the popping/pushing side
// observes the transition and issues a wake, or the parking side's probe
// observes the new counter -- a wake-up can be spurious but never lost.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <vector>

#include "src/runtime/message.h"

namespace sdaf::runtime {

class SpscRing {
 public:
  explicit SpscRing(std::size_t capacity);

  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  struct PushEffect {
    // Whether the consumer may have observed the ring empty immediately
    // before this push (the empty -> non-empty edge a scheduler must turn
    // into a consumer wake-up). May be spuriously true, never falsely
    // false for a parked consumer.
    bool was_empty = false;
    // Logical occupancy just after the push (for high-water stats): exact
    // when un-raced; under concurrency it may over-report (a pop landing
    // inside the publish window is not subtracted) but never misses a
    // genuine peak, and it stays within [0, capacity].
    std::size_t occupancy = 0;
  };

  // Producer only. Consumes `m` and returns true unless logically full.
  [[nodiscard]] bool try_push(Message&& m, PushEffect* effect = nullptr);

  // Producer only. Bulk-ingest fast path: stages up to `count` *data*
  // messages (one segment each) and makes them visible with ONE counter
  // publish + one seq_cst fence, so a whole batch costs what a single push
  // used to. Returns how many fit (a prefix of msgs is consumed). The
  // staged slots are safe to write before the publish for the same reason
  // sequential pushes may reuse slots: the full-check bounds live segments
  // to `capacity`, and unpublished segments are invisible to the consumer
  // (peek clamps every head view to pushed_).
  [[nodiscard]] std::size_t try_push_batch(Message* msgs, std::size_t count,
                                           PushEffect* effect = nullptr);

  // Producer only. Appends up to `count` dummies first_seq, first_seq+1,
  // ... as (part of) one coalesced segment; returns how many fit.
  [[nodiscard]] std::size_t try_push_dummies(std::uint64_t first_seq,
                                             std::size_t count,
                                             PushEffect* effect = nullptr);

  struct PopEffect {
    // Whether the producer may have observed the ring full immediately
    // before this pop (the full -> non-full edge a scheduler must turn into
    // a producer wake-up). May be spuriously true, never falsely false for
    // a parked producer.
    bool was_full = false;
  };

  // Consumer only. Payload-free view of the head (seq, kind, remaining run
  // length), or empty when no message is available.
  [[nodiscard]] std::optional<HeadView> peek_head();

  // Consumer only. Full copy of the head, for state dumps and tests.
  [[nodiscard]] std::optional<Message> peek_message();

  // Consumer only. Removes the head and returns it, materializing one dummy
  // of a run. Precondition: a preceding peek_head observed a head.
  [[nodiscard]] Message pop_head(PopEffect* effect = nullptr);

  // Consumer only. Removes the head, discarding any payload. Precondition:
  // as for pop_head.
  void pop(PopEffect* effect = nullptr);

  // Consumer only. Removes up to `count` dummies from the head run (never
  // crossing into a following segment); returns how many were removed
  // (0 when empty or the head is not a dummy).
  [[nodiscard]] std::size_t pop_dummies(std::size_t count,
                                        PopEffect* effect = nullptr);

  // Producer only. Appends a snapshot barrier marker (ckpt). Markers are
  // occupancy-neutral: they do not count against the certified logical
  // capacity (size/full exclude them), riding in the one extra physical
  // segment the ring over-allocates. With the snapshot plane's at-most-one-
  // marker-per-channel invariant this never fails on a channel within its
  // certified bound; returns false only if even the physical headroom is
  // exhausted. Never coalesces with a dummy tail run.
  [[nodiscard]] bool try_push_marker(std::uint64_t seq,
                                     PushEffect* effect = nullptr);

  // Any thread: coherent *logical* occupancy snapshot -- data + dummy
  // messages, markers excluded -- always within [0, capacity]. This is the
  // value the paper's buffer-size semantics and the deadlock certification
  // reason about.
  [[nodiscard]] std::size_t size() const;
  // Any thread: *physical* emptiness (markers included): schedulers and the
  // quiescence rules must treat an in-flight marker as pending work, so a
  // ring holding only a marker is NOT empty.
  [[nodiscard]] bool empty() const {
    return pushed_.load(std::memory_order_acquire) ==
           popped_.load(std::memory_order_acquire);
  }
  [[nodiscard]] bool full() const { return size() >= capacity_; }

 private:
  struct Segment {
    Message msg;  // written by the producer before publish; a data payload
                  // is moved out (or destroyed) by the consumer's pop
    std::atomic<std::uint32_t> run{0};  // logical length; kSealed = retired
  };
  // Seal bit: set by the consumer when it retires a fully-consumed segment;
  // forever blocks producer run-extension of that segment.
  static constexpr std::uint32_t kSealed = 1u << 31;
  // A tail dummy run stops coalescing here and starts a new segment, so
  // `run` (which counts consumed messages too) can never near kSealed.
  static constexpr std::uint32_t kRunLimit = 1u << 30;

  // Physical storage is capacity + 1 segments: markers are occupancy-neutral
  // for the logical (certified) capacity, so with one marker in flight the
  // ring can hold capacity logical messages plus the marker. Live segments
  // are bounded by physical messages in flight <= capacity + 1, so the
  // slot-reuse argument carries over unchanged with the wider modulus.
  [[nodiscard]] Segment& slot(std::uint64_t seg_number) {
    return segs_[seg_number % (capacity_ + 1)];
  }
  void publish(std::size_t count, PushEffect* effect);
  void finish_pop(Segment& s, std::size_t count, PopEffect* effect);
  [[nodiscard]] std::uint64_t logical_space(std::uint64_t want);

  std::size_t capacity_;
  std::vector<Segment> segs_;

  // Producer-owned (no other thread reads or writes these).
  struct alignas(64) ProducerSide {
    std::uint64_t pushed = 0;        // mirror of pushed_
    std::uint64_t segs = 0;          // segments ever started
    std::uint64_t popped_cache = 0;  // last observed popped_
    std::uint64_t markers_cache = 0;  // last observed markers_in_ring_
    // Mirror of the newest segment, so coalescing checks never read memory
    // the consumer might be touching; the CAS is the only shared access.
    bool tail_is_dummy = false;
    std::uint64_t tail_base_seq = 0;
    std::uint32_t tail_run = 0;
  };

  // Consumer-owned.
  struct alignas(64) ConsumerSide {
    std::uint64_t popped = 0;        // mirror of popped_
    std::uint64_t segs = 0;          // segments ever retired
    std::uint64_t pushed_cache = 0;  // last observed pushed_
    std::uint32_t consumed = 0;      // messages popped from the head segment
  };

  ProducerSide p_;
  ConsumerSide c_;

  alignas(64) std::atomic<std::uint64_t> pushed_{0};
  alignas(64) std::atomic<std::uint64_t> popped_{0};
  // Markers currently in the ring (0 or 1 under the snapshot plane's
  // invariant). The producer increments BEFORE its pushed_ publish and the
  // consumer decrements BEFORE its popped_ publish, so observing either
  // counter's publish implies observing the matching marker transition --
  // which is what keeps every marker-excluded occupancy estimate
  // conservative (never under-counts logical occupancy; see logical_space).
  alignas(64) std::atomic<std::uint64_t> markers_in_ring_{0};
};

}  // namespace sdaf::runtime
