// Messages of the streaming model (Section II.A): every message carries a
// monotonically increasing sequence number; dummy messages are content-free
// and exist only to advance sequence-number knowledge downstream; EOS is an
// implementation-level flood that lets executions terminate cleanly (it
// behaves like a message with infinite sequence number and so never blocks
// alignment).
#pragma once

#include <any>
#include <cstdint>
#include <limits>
#include <string>
#include <utility>

namespace sdaf::runtime {

// Cheap type-erased payload.
class Value {
 public:
  Value() = default;
  template <typename T>
  explicit Value(T v) : v_(std::move(v)) {}

  [[nodiscard]] bool has_value() const { return v_.has_value(); }

  template <typename T>
  [[nodiscard]] const T& as() const {
    return std::any_cast<const T&>(v_);
  }

 private:
  std::any v_;
};

inline constexpr std::uint64_t kEosSeq =
    std::numeric_limits<std::uint64_t>::max();

enum class MessageKind : std::uint8_t { Data, Dummy, Eos };

struct Message {
  std::uint64_t seq = 0;
  MessageKind kind = MessageKind::Data;
  Value payload;

  static Message data(std::uint64_t seq, Value v) {
    return Message{seq, MessageKind::Data, std::move(v)};
  }
  static Message dummy(std::uint64_t seq) {
    return Message{seq, MessageKind::Dummy, {}};
  }
  static Message eos() { return Message{kEosSeq, MessageKind::Eos, {}}; }
};

[[nodiscard]] std::string to_string(const Message& m);

}  // namespace sdaf::runtime
