// Messages of the streaming model (Section II.A): every message carries a
// monotonically increasing sequence number; dummy messages are content-free
// and exist only to advance sequence-number knowledge downstream; EOS is an
// implementation-level flood that lets executions terminate cleanly (it
// behaves like a message with infinite sequence number and so never blocks
// alignment).
//
// The data plane moves millions of these, so Value stores payloads of up to
// two machine words inline (no heap for the ints/floats/small structs every
// bench and workload kernel uses) and Message is cheaply movable: a move is
// a couple of word copies plus nulling the source, never an allocation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <limits>
#include <new>
#include <string>
#include <type_traits>
#include <typeinfo>
#include <utility>

namespace sdaf::runtime {

namespace detail {

// Per-type vtable for Value's storage. Inline types are restricted to
// trivially-copyable so relocation is a memcpy; everything else lives on
// the heap behind one pointer.
struct ValueOps {
  const std::type_info& (*type)();
  // Heap types only (inline types are trivially destructible/copyable).
  void (*destroy)(void* heap);
  void* (*clone)(const void* heap);
  bool heap;
};

template <typename T>
inline constexpr bool kValueInline =
    sizeof(T) <= 2 * sizeof(void*) &&
    alignof(T) <= alignof(std::max_align_t) &&
    std::is_trivially_copyable_v<T>;

template <typename T>
const ValueOps* value_ops() {
  static const ValueOps ops = [] {
    ValueOps o;
    o.type = []() -> const std::type_info& { return typeid(T); };
    if constexpr (kValueInline<T>) {
      o.destroy = nullptr;
      o.clone = nullptr;
      o.heap = false;
    } else {
      o.destroy = [](void* p) { delete static_cast<T*>(p); };
      o.clone = [](const void* p) -> void* {
        return new T(*static_cast<const T*>(p));
      };
      o.heap = true;
    }
    return o;
  }();
  return &ops;
}

}  // namespace detail

// Type-erased payload with small-object storage: values of at most two
// machine words (and trivially copyable) are stored inline -- no heap
// traffic on the hot path. Larger or non-trivial types fall back to a
// single heap allocation. Moves never allocate.
class Value {
 public:
  Value() = default;

  template <typename T, typename = std::enable_if_t<
                            !std::is_same_v<std::decay_t<T>, Value>>>
  explicit Value(T v) : ops_(detail::value_ops<T>()) {
    if constexpr (detail::kValueInline<T>) {
      ::new (static_cast<void*>(storage_.buf)) T(std::move(v));
    } else {
      storage_.ptr = new T(std::move(v));
    }
  }

  Value(const Value& other) : ops_(other.ops_) {
    if (ops_ == nullptr) return;
    if (ops_->heap) {
      storage_.ptr = ops_->clone(other.storage_.ptr);
    } else {
      std::memcpy(storage_.buf, other.storage_.buf, sizeof(storage_.buf));
    }
  }

  Value(Value&& other) noexcept : ops_(other.ops_), storage_(other.storage_) {
    other.ops_ = nullptr;
  }

  Value& operator=(const Value& other) {
    if (this != &other) *this = Value(other);
    return *this;
  }

  Value& operator=(Value&& other) noexcept {
    if (this != &other) {
      reset();
      ops_ = other.ops_;
      storage_ = other.storage_;
      other.ops_ = nullptr;
    }
    return *this;
  }

  ~Value() { reset(); }

  [[nodiscard]] bool has_value() const { return ops_ != nullptr; }

  template <typename T>
  [[nodiscard]] const T& as() const {
    if (ops_ == nullptr || ops_->type() != typeid(T)) throw std::bad_cast();
    if constexpr (detail::kValueInline<T>) {
      return *std::launder(
          reinterpret_cast<const T*>(static_cast<const void*>(storage_.buf)));
    } else {
      return *static_cast<const T*>(storage_.ptr);
    }
  }

 private:
  void reset() {
    if (ops_ != nullptr && ops_->heap) ops_->destroy(storage_.ptr);
    ops_ = nullptr;
  }

  union Storage {
    void* ptr;
    alignas(std::max_align_t) unsigned char buf[2 * sizeof(void*)];
  };

  const detail::ValueOps* ops_ = nullptr;
  Storage storage_{};
};

inline constexpr std::uint64_t kEosSeq =
    std::numeric_limits<std::uint64_t>::max();

enum class MessageKind : std::uint8_t { Data, Dummy, Eos, Marker };

struct Message {
  std::uint64_t seq = 0;
  MessageKind kind = MessageKind::Data;
  Value payload;

  static Message data(std::uint64_t seq, Value v) {
    return Message{seq, MessageKind::Data, std::move(v)};
  }
  static Message dummy(std::uint64_t seq) {
    return Message{seq, MessageKind::Dummy, {}};
  }
  static Message eos() { return Message{kEosSeq, MessageKind::Eos, {}}; }
  // Snapshot barrier marker (ckpt): carries the barrier sequence S with the
  // invariant that it precedes every message of seq >= S on its channel.
  // Markers are occupancy-neutral -- they never count against a channel's
  // certified logical capacity (see SpscRing/MessageRing).
  static Message marker(std::uint64_t seq) {
    return Message{seq, MessageKind::Marker, {}};
  }
};

// Payload-free view of a channel head, all alignment ever needs: the
// sequence number and kind, plus the length of the consecutive-sequence
// dummy run starting at the head (1 for data/EOS). Peeking a view never
// touches a payload.
struct HeadView {
  std::uint64_t seq = 0;
  MessageKind kind = MessageKind::Data;
  std::uint32_t run = 1;
};

[[nodiscard]] std::string to_string(const Message& m);

}  // namespace sdaf::runtime
