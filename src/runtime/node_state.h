// Per-node task for pooled execution: an exec::FiringCore whose delivery
// sink *parks* instead of blocking. A worker calls step() until it returns
// false; any later channel transition that could unblock the node (an input
// becoming non-empty, a full output draining) is reported through the Waker
// so a scheduler can re-enqueue it.
//
// The task never holds a lock across a kernel firing and never waits inside
// a channel, which is what lets a fixed worker pool run graphs with orders
// of magnitude more nodes than threads. The firing semantics themselves
// (alignment, dummy wrappers, EOS flood) live in src/exec/firing_core.cpp,
// shared with the simulator and the thread-per-node executor.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/exec/firing_core.h"
#include "src/graph/stream_graph.h"
#include "src/runtime/channel.h"
#include "src/runtime/kernel.h"
#include "src/runtime/trace.h"
#include "src/runtime/wrapper.h"

namespace sdaf::runtime {

// Scheduler hook: wake(node) must make the named node runnable again. The
// callee may be invoked from any worker thread and must be cheap; spurious
// wakes are allowed (the woken node simply makes no progress and re-parks).
class Waker {
 public:
  virtual ~Waker() = default;
  virtual void wake(NodeId node) = 0;
};

class NodeState final : private exec::DeliverySink {
 public:
  // `in_producers[j]` / `out_consumers[slot]` name the node at the far end
  // of the corresponding channel; they are the wake targets for the
  // pop-freed-a-full-channel / push-filled-an-empty-channel transitions.
  // `feed` (optional) makes the node a port-fed source consuming the
  // injected channel; an egress tap rides in `outs` as one extra slot whose
  // out_consumers entry is kNoNode (its consumer is the external caller,
  // woken through the channel itself, never through the Waker).
  NodeState(NodeId node, Kernel& kernel, std::vector<BoundedChannel*> ins,
            std::vector<BoundedChannel*> outs, BoundedChannel* feed,
            NodeWrapper wrapper, std::uint64_t num_inputs,
            std::vector<NodeId> in_producers,
            std::vector<NodeId> out_consumers, Waker* waker,
            std::uint32_t batch = 1, Tracer* tracer = nullptr,
            obs::NodeCounters* metrics = nullptr);

  // One scheduling quantum; returns true iff any progress was made
  // (a message delivered, consumed, or produced). After false the node is
  // quiescent until one of its channels changes.
  bool step() { return core_.step(); }

  // Park protocol support. After step() returns false the owning worker
  // calls park_summary() (still owner, so reading core state is safe)
  // to capture *why* the node is stuck, publishes it, parks, and then calls
  // probe(summary) to close the race with a wake that slipped between the
  // last unproductive step and the park. probe() reads only immutable
  // members and coherent channel-occupancy snapshots, so it is safe to
  // call after ownership has been lost; a stale verdict is handled by the
  // caller (it re-acquires the node or defers to whoever queued it).
  // The probe must run after the park transition's seq_cst RMW: that RMW
  // pairs with the seq_cst fence a channel peer issues between publishing
  // its counter and deciding whether to wake us, which is what makes the
  // lock-free channel's elided wake-ups lost-wakeup-free.
  [[nodiscard]] std::uint64_t park_summary() const {
    return core_.park_summary();
  }
  [[nodiscard]] bool probe(std::uint64_t summary) const;

  [[nodiscard]] bool done() const { return core_.done(); }
  [[nodiscard]] NodeId node() const { return core_.node(); }
  [[nodiscard]] std::uint64_t fires() const { return core_.fires; }
  [[nodiscard]] std::uint64_t sink_data() const { return core_.sink_data; }

  // Human-readable state for deadlock dumps; only valid at quiescence (or
  // from the owning worker).
  [[nodiscard]] std::string describe() const { return core_.describe(); }

  // Snapshot/restore plumbing (ckpt): see exec::FiringCore.
  void set_snapshot_plane(ckpt::SnapshotPlane* plane) {
    core_.set_snapshot_plane(plane);
  }
  void restore_cut(const ckpt::NodeCut& cut) { core_.restore_cut(cut); }
  void mark_done() { core_.mark_done(); }

 private:
  // DeliverySink: non-blocking channel ops plus peer wake-ups on the
  // empty->non-empty and full->non-full transitions. The batched ops issue
  // one wake-up per run, not per message.
  std::optional<HeadView> peek_head(std::size_t slot, bool may_wait) override;
  Message pop_head(std::size_t slot) override;
  void pop(std::size_t slot) override;
  void pop_dummies(std::size_t slot, std::size_t count) override;
  exec::PushOutcome try_push(std::size_t slot, Message&& m) override;
  std::size_t try_push_dummies(std::size_t slot, std::uint64_t first_seq,
                               std::size_t count,
                               exec::PushOutcome* outcome) override;
  std::optional<HeadView> peek_feed(bool may_wait) override;
  Message pop_feed() override;

  std::vector<BoundedChannel*> ins_;
  std::vector<BoundedChannel*> outs_;
  BoundedChannel* feed_;
  std::vector<NodeId> in_producers_;
  std::vector<NodeId> out_consumers_;
  Waker* waker_;
  exec::FiringCore core_;  // last: its sink is *this
};

}  // namespace sdaf::runtime
