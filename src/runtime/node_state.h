// Per-node non-blocking state machine for pooled execution: the same
// streaming semantics as the thread-per-node NodeRunner and the simulator's
// SimNode (alignment at the minimum head sequence number, wrapper-driven
// dummy emission, per-channel-asynchronous output delivery, EOS flood), but
// expressed as a resumable task that *parks* instead of blocking. A worker
// calls step() until it returns false; any later channel transition that
// could unblock the node (an input becoming non-empty, a full output
// draining) is reported through the Waker so a scheduler can re-enqueue it.
//
// The state machine never holds a lock across a kernel firing and never
// waits inside a channel, which is what lets a fixed worker pool run graphs
// with orders of magnitude more nodes than threads.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "src/graph/stream_graph.h"
#include "src/runtime/channel.h"
#include "src/runtime/kernel.h"
#include "src/runtime/wrapper.h"

namespace sdaf::runtime {

// Scheduler hook: wake(node) must make the named node runnable again. The
// callee may be invoked from any worker thread and must be cheap; spurious
// wakes are allowed (the woken node simply makes no progress and re-parks).
class Waker {
 public:
  virtual ~Waker() = default;
  virtual void wake(NodeId node) = 0;
};

class NodeState {
 public:
  // `in_producers[j]` / `out_consumers[slot]` name the node at the far end
  // of the corresponding channel; they are the wake targets for the
  // pop-freed-a-full-channel / push-filled-an-empty-channel transitions.
  NodeState(NodeId node, Kernel& kernel, std::vector<BoundedChannel*> ins,
            std::vector<BoundedChannel*> outs, NodeWrapper wrapper,
            std::uint64_t num_inputs, std::vector<NodeId> in_producers,
            std::vector<NodeId> out_consumers, Waker* waker);

  // One scheduling quantum; returns true iff any progress was made
  // (a message delivered, consumed, or produced). After false the node is
  // quiescent until one of its channels changes.
  bool step();

  // Park protocol support. After step() returns false the owning worker
  // calls park_summary() (still owner, so reading private state is safe)
  // to capture *why* the node is stuck, publishes it, parks, and then calls
  // probe(summary) to close the race with a wake that slipped between the
  // last unproductive step and the park. probe() reads only immutable
  // members and channel occupancy (under the channel locks), so it is safe
  // to call after ownership has been lost; a stale verdict is handled by
  // the caller (it re-acquires the node or defers to whoever queued it).
  [[nodiscard]] std::uint64_t park_summary() const;
  [[nodiscard]] bool probe(std::uint64_t summary) const;

  [[nodiscard]] bool done() const { return done_; }
  [[nodiscard]] NodeId node() const { return node_; }

  std::uint64_t fires = 0;
  std::uint64_t sink_data = 0;

 private:
  struct PendingMessage {
    std::size_t out_slot;
    Message message;
  };

  void queue_outputs(std::uint64_t seq, bool any_input_dummy);
  void queue_eos();
  // Pushes whatever fits from pending_, waking consumers on empty ->
  // non-empty transitions. Returns true iff anything was delivered.
  bool drain_pending();
  // One alignment + firing attempt; true iff anything was consumed/queued.
  bool fire_once();

  NodeId node_;
  Kernel& kernel_;
  std::vector<BoundedChannel*> ins_;
  std::vector<BoundedChannel*> outs_;
  NodeWrapper wrapper_;
  std::uint64_t num_inputs_;
  std::vector<NodeId> in_producers_;
  std::vector<NodeId> out_consumers_;
  Waker* waker_;
  Emitter emitter_;
  std::vector<std::optional<Value>> inputs_;
  std::vector<Message> heads_;
  std::vector<PendingMessage> pending_;
  std::uint64_t source_seq_ = 0;
  bool eos_flooded_ = false;
  bool done_ = false;
};

}  // namespace sdaf::runtime
