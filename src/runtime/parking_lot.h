// Futex-style parking keyed directly on 32-bit atomic words: the blocking
// half of every wait protocol in the runtime (idle pool workers, the
// threaded backend's output waits, blocking channel ops, InputPort::push
// backpressure) without a mutex or condition variable anywhere on the path.
//
// The protocol is the futex one: a waiter captures the word's value,
// registers/re-checks whatever condition it is really waiting for, and then
// calls park(word, captured) -- which sleeps only while the word still
// holds the captured value (the compare-and-sleep is atomic against
// publishers, so the classic check-then-wait race cannot lose a wake-up).
// A publisher changes the word (any store that moves it off the captured
// value) *before* calling wake(); waiters unconditionally re-check their
// real condition on return, so spurious wake-ups are harmless by
// construction.
//
// The happens-before edges all ride on the word itself (and the callers'
// own counters/fences); the kernel queue is pure blocking transport. On
// Linux park/wake compile to the futex syscall; elsewhere they fall back to
// a small hashed table of mutex+condvar buckets with identical semantics,
// so the portable build keeps working (the mutex then lives inside the
// parking lot, not in the runtime's data structures).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

namespace sdaf::runtime {

class ParkingLot {
 public:
  // Sleeps while `word == expected`. Returns immediately when the word
  // already moved; otherwise blocks until a wake (or a spurious return --
  // callers always loop on their real condition).
  static void park(const std::atomic<std::uint32_t>& word,
                   std::uint32_t expected);

  // park() with a relative timeout; returns false iff the wait timed out
  // with the word still unchanged (best effort: a racing wake may also
  // report false -- callers re-check their condition either way).
  static bool park_for(const std::atomic<std::uint32_t>& word,
                       std::uint32_t expected,
                       std::chrono::nanoseconds timeout);

  // park() bounded by an absolute steady_clock deadline.
  static bool park_until(const std::atomic<std::uint32_t>& word,
                         std::uint32_t expected,
                         std::chrono::steady_clock::time_point deadline);

  // Wakes up to `count` threads parked on `word`. The caller must have
  // already moved the word off every sleeper's captured value, or the
  // sleepers may immediately park again (correct, just wasteful).
  static void wake_one(const std::atomic<std::uint32_t>& word);
  static void wake_all(const std::atomic<std::uint32_t>& word);
};

// A parkable event word: the version counter half of the wake-elision
// protocol used throughout the runtime. Publishers bump(); waiters capture,
// re-check their condition, then park on the captured value. The waiter
// count lets publishers elide the wake syscall when nobody is parked -- a
// waiter registers with a seq_cst RMW *before* its re-check, and bump()
// publishes the new version before reading the count across a seq_cst
// fence, so one side always observes the other ("never falsely empty for a
// parked peer").
struct EventWord {
  std::atomic<std::uint32_t> version{0};
  std::atomic<int> waiters{0};

  [[nodiscard]] std::uint32_t capture() const {
    return version.load(std::memory_order_acquire);
  }

  // Registers as parked; pair with unregister() after the park returns.
  void register_waiter() { waiters.fetch_add(1, std::memory_order_seq_cst); }
  void unregister_waiter() {
    waiters.fetch_sub(1, std::memory_order_relaxed);
  }

  // Publishes one transition: version moves first (so a mid-registration
  // waiter's park falls through), then the waiter count is read across a
  // seq_cst fence. The relaxed count read is safe only *because* of that
  // fence -- see the protocol note above.
  void bump() {
    version.fetch_add(1, std::memory_order_release);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (waiters.load(std::memory_order_relaxed) > 0)
      ParkingLot::wake_all(version);
  }

  // Wake-elided bump: touches `version` only when a waiter is registered.
  // Sound ONLY when the caller's state change already published through a
  // seq_cst fence before this call (e.g. SpscRing's publish/finish_pop
  // fences): that fence against the waiter's seq_cst registration guarantees
  // either this relaxed read sees the waiter (and the version moves off its
  // captured value before/while it parks) or the waiter's post-registration
  // re-check sees the state change -- never both miss.
  void bump_if_waiters() {
    if (waiters.load(std::memory_order_relaxed) > 0) {
      version.fetch_add(1, std::memory_order_release);
      ParkingLot::wake_all(version);
    }
  }
};

}  // namespace sdaf::runtime
