// Pooled scheduler runtime: runs stream graphs as cooperatively scheduled
// node tasks on a fixed-size worker pool, instead of one OS thread per node.
//
// Motivation: the thread-per-node Executor is faithful to the paper's model
// but cannot scale -- a 10k-node ladder costs 10k threads, and concurrent
// graph instances multiply that. Here each node is a non-blocking state
// machine (runtime::NodeState) that a worker steps until it can make no
// progress, then parks; channel transitions (input filled, full output
// drained) re-enqueue it onto a shared ready queue. Threads never block
// inside a kernel or a channel, so a pool of W workers runs any number of
// graphs of any size with exactly W + 1 OS threads.
//
// Deadlock is certified *exactly*, not by watchdog timing: a per-instance
// counter tracks queued + running tasks; nodes are only woken by channel
// transitions caused by other tasks of the same instance, so when the
// counter reaches zero no future progress is possible. If nodes remain
// unfinished at quiescence the instance deadlocked -- the same verdict
// sim::simulate computes by sweeping.
//
// The pool is multi-tenant: submit() may be called concurrently for many
// independent graph instances, which interleave on the same workers. Pair
// with core::CompileCache to also amortize the compile pass (CS4
// decomposition + interval computation) across submissions of the same
// topology.
//
// Prefer the exec::Session facade (src/exec/session.h) for new code --
// point RunSpec::pool at a shared PoolExecutor; this header stays as the
// backend implementation. The firing semantics live in
// src/exec/firing_core.cpp, shared with the simulator and the
// thread-per-node executor.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/graph/stream_graph.h"
#include "src/obs/metrics.h"
#include "src/runtime/channel.h"
#include "src/runtime/executor.h"
#include "src/runtime/kernel.h"
#include "src/runtime/node_state.h"

namespace sdaf::runtime {

namespace pool_detail {

struct NodeTask;

// Bounded lock-free MPMC ring (Vyukov): the fast path of the ready queue.
class MpmcRing {
 public:
  explicit MpmcRing(std::size_t capacity_pow2);

  [[nodiscard]] bool try_push(NodeTask* task);
  [[nodiscard]] NodeTask* try_pop();
  // Racy instantaneous depth (enqueue minus dequeue cursor); sampling only.
  [[nodiscard]] std::size_t approx_depth() const;

 private:
  struct Cell {
    std::atomic<std::size_t> seq;
    NodeTask* item;
  };

  std::unique_ptr<Cell[]> cells_;
  std::size_t mask_;
  alignas(64) std::atomic<std::size_t> enqueue_pos_{0};
  alignas(64) std::atomic<std::size_t> dequeue_pos_{0};
};

// MPMC ready queue: lock-free ring fast path, mutex-protected overflow list
// (the ring never loses tasks under burst), and condvar parking for idle
// workers. Parked workers use a short wait timeout as a belt-and-braces
// recheck, so a theoretical missed signal costs latency, never liveness.
class ReadyQueue {
 public:
  explicit ReadyQueue(std::size_t ring_capacity = 2048);

  void push(NodeTask* task);
  // Blocks until a task is available or `stop` becomes true (then nullptr).
  [[nodiscard]] NodeTask* pop_wait(const std::atomic<bool>& stop);
  void notify_all();
  // Racy instantaneous depth (ring + overflow); sampling only.
  [[nodiscard]] std::size_t approx_depth() const;

 private:
  [[nodiscard]] NodeTask* try_pop();

  MpmcRing ring_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<NodeTask*> overflow_;
  std::atomic<std::size_t> overflow_size_{0};
  std::atomic<int> sleepers_{0};
};

}  // namespace pool_detail

class PoolExecutor {
 public:
  struct Options {
    // 0 = std::thread::hardware_concurrency() (at least 1).
    std::size_t workers = 0;
    // Fairness quantum: a task yields back to the ready queue after this
    // many consecutive productive steps, so one large instance cannot
    // starve co-tenants.
    std::size_t max_steps_per_quantum = 256;
    // Capacity (power of two) of the ready queue's lock-free ring; pushes
    // beyond it spill to the mutex-protected overflow list. Tests shrink
    // this to hammer the overflow path.
    std::size_t ready_queue_ring_capacity = 2048;
  };

  PoolExecutor() : PoolExecutor(Options{}) {}
  explicit PoolExecutor(std::size_t workers) : PoolExecutor(Options{workers}) {}
  explicit PoolExecutor(const Options& options);
  // Waits for every submitted instance to finish (deadlocked instances
  // finish too -- quiescence is detected exactly), then joins the pool.
  ~PoolExecutor();

  PoolExecutor(const PoolExecutor&) = delete;
  PoolExecutor& operator=(const PoolExecutor&) = delete;

  using TicketId = std::uint64_t;

  // Starts an execution of `g`. The graph and kernels must stay alive until
  // wait() returns. Options are the exec::RunSpec shared by every backend;
  // the watchdog and backend-selection fields are ignored (deadlock here is
  // certified by exact quiescence, not timing).
  //
  // With options.ports set, sources read the injected feeds and tapped
  // sinks gain an egress out-slot. Live ports (ports->live) extend the
  // quiescence rule: the instance only finalizes when it is quiescent *and*
  // no port can still supply work -- every port reported closed
  // (stream_port_closed), no input-starved source with a non-empty feed,
  // no sink parked on its egress tap -- so deadlock certification stays
  // exact while ports are open (quiescence with an open port is "idle,
  // awaiting the caller", never a verdict). The port channels must outlive
  // the instance; exec::Stream owns them.
  [[nodiscard]] TicketId submit(const StreamGraph& g,
                                std::vector<std::shared_ptr<Kernel>> kernels,
                                const ExecutorOptions& options);

  // Streaming hooks for exec::Stream. The opaque handle (fetched once per
  // stream) keeps the per-push path off the ticket table; it pins the
  // instance, so drop it before or at wait().
  using StreamHandle = std::shared_ptr<void>;
  [[nodiscard]] StreamHandle stream_handle(TicketId ticket);
  // Re-schedules a node task after a port transition (feed push filled an
  // empty feed; egress pop drained a full tap).
  static void stream_wake(const StreamHandle& handle, NodeId node);
  // Reports one port closed (its EOS already pushed). The caller must wake
  // the port's node afterwards so a quiescent instance re-checks.
  static void stream_port_closed(const StreamHandle& handle);

  // Snapshot assembly (ckpt): edge e's cumulative traffic at the barrier
  // cut -- the marker latch when the producer forwarded Marker(S), the
  // frozen totals when it finished before the barrier. Only valid once the
  // barrier's downstream consumers have checkpointed.
  [[nodiscard]] static ckpt::EdgeCut stream_edge_cut(
      const StreamHandle& handle, EdgeId e, bool producer_checkpointed);

  // Blocks until the instance finishes; each ticket may be waited once.
  [[nodiscard]] RunResult wait(TicketId ticket);

  // submit + wait.
  [[nodiscard]] RunResult run(const StreamGraph& g,
                              std::vector<std::shared_ptr<Kernel>> kernels,
                              const ExecutorOptions& options);

  [[nodiscard]] std::size_t worker_count() const { return workers_.size(); }

  // Pool-global scheduler counters: one WorkerMetrics per worker plus a
  // final "external" entry (wakes issued by non-worker threads -- submit
  // kicks and stream-port transitions). Safe to call any time; values are
  // cumulative across every instance the pool ever ran (the pool, not the
  // run, owns worker identity).
  [[nodiscard]] std::vector<obs::WorkerMetrics> worker_metrics() const;

 private:
  struct Instance;
  friend struct pool_detail::NodeTask;

  void worker_loop(std::size_t worker_index);
  void run_task(pool_detail::NodeTask* task);
  void schedule(pool_detail::NodeTask* task);
  // The calling thread's counter shard: its own when it is one of this
  // pool's workers, the shared external shard otherwise.
  [[nodiscard]] obs::WorkerCounters& current_shard();
  // Called at quiescence (active hit zero): finalize, or stay idle when an
  // open port may still supply work.
  void maybe_finalize(Instance& instance);
  void finalize(Instance& instance);

  Options options_;
  pool_detail::ReadyQueue queue_;
  std::atomic<bool> stop_{false};
  // workers + 1 shards, sized before the workers spawn and never resized;
  // the final shard absorbs increments from non-worker threads.
  std::vector<obs::WorkerCounters> worker_shards_;
  std::vector<std::thread> workers_;

  std::mutex instances_mu_;
  std::uint64_t next_ticket_ = 1;
  std::unordered_map<TicketId, std::shared_ptr<Instance>> instances_;
};

}  // namespace sdaf::runtime
