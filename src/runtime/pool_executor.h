// Pooled scheduler runtime: runs stream graphs as cooperatively scheduled
// node tasks on a fixed-size worker pool, instead of one OS thread per node.
//
// Motivation: the thread-per-node Executor is faithful to the paper's model
// but cannot scale -- a 10k-node ladder costs 10k threads, and concurrent
// graph instances multiply that. Here each node is a non-blocking state
// machine (runtime::NodeState) that a worker steps until it can make no
// progress, then parks; channel transitions (input filled, full output
// drained) re-enqueue it. Threads never block inside a kernel or a channel,
// so a pool of W workers runs any number of graphs of any size with exactly
// W + 1 OS threads.
//
// Scheduling (v2) is work-stealing: each worker owns a Chase-Lev deque
// (runtime::StealDeque) plus a one-task LIFO hot slot for the freshest
// wake-up (cache affinity); idle workers steal from randomly ordered
// victims -- the hot slot by atomic exchange, the deque from its FIFO top.
// External threads (submit kicks, stream-port hooks) enqueue through a small
// locked injector. Wake fences are amortized: a worker batches the wakes
// its quantum generates and publishes one epoch bump per drain, not one per
// channel push; idle workers park futex-style (runtime::ParkingLot) on the
// epoch word, with a pre-park re-scan of every source so the flush protocol
// is "never falsely empty for a parked peer". See docs/SCHEDULER.md.
//
// Deadlock is certified *exactly*, not by watchdog timing: a per-instance
// counter tracks queued + running tasks; nodes are only woken by channel
// transitions caused by other tasks of the same instance, so when the
// counter reaches zero no future progress is possible. Distributing the
// ready queue does not move that quiescence point: a task counts from its
// schedule() transition until its park decrement, wherever it sits -- a
// hot slot, any deque, a per-tenant injector lane, or a thief's hands
// between the winning steal CAS and run_task. If nodes remain unfinished
// at quiescence the instance deadlocked -- the same verdict sim::simulate
// computes. The DRR lanes (qos) reorder only *when* queued tasks run,
// never whether they are counted, so weighting one tenant down cannot
// turn another tenant's starvation into a false deadlock verdict.
//
// The pool is multi-tenant: submit() may be called concurrently for many
// independent graph instances, which interleave on the same workers. Pair
// with core::CompileCache to also amortize the compile pass (CS4
// decomposition + interval computation) across submissions of the same
// topology.
//
// Prefer the exec::Session facade (src/exec/session.h) for new code --
// point RunSpec::pool at a shared PoolExecutor; this header stays as the
// backend implementation. The firing semantics live in
// src/exec/firing_core.cpp, shared with the simulator and the
// thread-per-node executor.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/graph/stream_graph.h"
#include "src/obs/metrics.h"
#include "src/runtime/channel.h"
#include "src/runtime/executor.h"
#include "src/runtime/kernel.h"
#include "src/runtime/node_state.h"
#include "src/runtime/parking_lot.h"
#include "src/runtime/steal_deque.h"

namespace sdaf::runtime {

namespace pool_detail {
struct NodeTask;
}  // namespace pool_detail

class PoolExecutor {
 public:
  struct Options {
    // 0 = std::thread::hardware_concurrency() (at least 1).
    std::size_t workers = 0;
    // Fairness quantum: a task yields to the shared injector after this
    // many consecutive productive steps, so one large instance cannot
    // starve co-tenants.
    std::size_t max_steps_per_quantum = 256;
    // Initial capacity of each worker's stealing deque (grows on demand;
    // rounded up to a power of two). Tests shrink this to hammer the
    // growth path under concurrent steals.
    std::size_t deque_capacity = 256;
    // Seeds the per-worker PRNGs that randomize victim order (and drive
    // the perturbation hook below). Fixed seed = reproducible schedules
    // for a given interleaving; SDAF_HARNESS_REPRO records it.
    std::uint64_t seed = 0x9E3779B97F4A7C15ULL;
    // Schedule-perturbation hook for the differential harness: when
    // nonzero, each worker yields its timeslice with probability N/256 at
    // every injected decision point (between task steps and between steal
    // probes), forcing adversarial interleavings that a free-running pool
    // rarely explores. 0 = off (production).
    std::uint32_t perturb_yield_in_256 = 0;
    // When false, workers skip the LIFO hot slot and take their own deque
    // from the FIFO end (self-steal) -- the harness's sched=fifo mode.
    bool lifo_slot = true;
    // Weighted deficit-round-robin across per-tenant injector lanes (qos):
    // external wakes and quantum yields land in the lane of the submitting
    // tenant, and workers drain lanes proportionally to RunSpec::
    // tenant_weight. When false every instance shares lane 0 -- the legacy
    // single-FIFO injector, kept as the bench baseline (and the degenerate
    // case of the same code path, so verdicts cannot depend on the flag).
    bool fair_injector = true;
  };

  PoolExecutor() : PoolExecutor(Options{}) {}
  explicit PoolExecutor(std::size_t workers) : PoolExecutor(Options{workers}) {}
  explicit PoolExecutor(const Options& options);
  // Waits for every submitted instance to finish (deadlocked instances
  // finish too -- quiescence is detected exactly), then joins the pool.
  ~PoolExecutor();

  PoolExecutor(const PoolExecutor&) = delete;
  PoolExecutor& operator=(const PoolExecutor&) = delete;

  using TicketId = std::uint64_t;

  // Starts an execution of `g`. The graph and kernels must stay alive until
  // wait() returns. Options are the exec::RunSpec shared by every backend;
  // the watchdog and backend-selection fields are ignored (deadlock here is
  // certified by exact quiescence, not timing).
  //
  // With options.ports set, sources read the injected feeds and tapped
  // sinks gain an egress out-slot. Live ports (ports->live) extend the
  // quiescence rule: the instance only finalizes when it is quiescent *and*
  // no port can still supply work -- every port reported closed
  // (stream_port_closed), no input-starved source with a non-empty feed,
  // no sink parked on its egress tap -- so deadlock certification stays
  // exact while ports are open (quiescence with an open port is "idle,
  // awaiting the caller", never a verdict). The port channels must outlive
  // the instance; exec::Stream owns them.
  [[nodiscard]] TicketId submit(const StreamGraph& g,
                                std::vector<std::shared_ptr<Kernel>> kernels,
                                const ExecutorOptions& options);

  // Streaming hooks for exec::Stream. The opaque handle (fetched once per
  // stream) keeps the per-push path off the ticket table; it pins the
  // instance, so drop it before or at wait().
  using StreamHandle = std::shared_ptr<void>;
  [[nodiscard]] StreamHandle stream_handle(TicketId ticket);
  // Re-schedules a node task after a port transition (feed push filled an
  // empty feed; egress pop drained a full tap).
  static void stream_wake(const StreamHandle& handle, NodeId node);
  // Reports one port closed (its EOS already pushed). The caller must wake
  // the port's node afterwards so a quiescent instance re-checks.
  static void stream_port_closed(const StreamHandle& handle);

  // Snapshot assembly (ckpt): edge e's cumulative traffic at the barrier
  // cut -- the marker latch when the producer forwarded Marker(S), the
  // frozen totals when it finished before the barrier. Only valid once the
  // barrier's downstream consumers have checkpointed.
  [[nodiscard]] static ckpt::EdgeCut stream_edge_cut(
      const StreamHandle& handle, EdgeId e, bool producer_checkpointed);

  // Blocks until the instance finishes; each ticket may be waited once.
  [[nodiscard]] RunResult wait(TicketId ticket);

  // submit + wait.
  [[nodiscard]] RunResult run(const StreamGraph& g,
                              std::vector<std::shared_ptr<Kernel>> kernels,
                              const ExecutorOptions& options);

  [[nodiscard]] std::size_t worker_count() const { return threads_.size(); }

  // Pool-global scheduler counters: one WorkerMetrics per worker plus a
  // final "external" entry (wakes issued by non-worker threads -- submit
  // kicks and stream-port transitions). Safe to call any time; values are
  // cumulative across every instance the pool ever ran (the pool, not the
  // run, owns worker identity).
  [[nodiscard]] std::vector<obs::WorkerMetrics> worker_metrics() const;

  // Per-tenant injector-lane accounting (DRR scheduler): one entry per
  // tenant the pool has ever seen, snapshotted under the injector lock so
  // enqueued - dequeued == queue_depth exactly. Lanes are never removed --
  // a retired tenant's lane costs one empty deque and keeps its counters
  // visible to the exporter.
  [[nodiscard]] std::vector<obs::TenantSchedMetrics> tenant_metrics() const;

 private:
  struct Instance;
  friend struct pool_detail::NodeTask;

  // One worker's scheduling state. The deque and hot slot hold NodeTask*;
  // only the owning worker pushes/pops the deque bottom, but any thread
  // may exchange the hot slot or steal the deque top.
  struct Worker;

  void worker_loop(std::size_t worker_index);
  void run_task(pool_detail::NodeTask* task);
  void schedule(pool_detail::NodeTask* task);
  // Local enqueue on the calling worker (hot slot / deque bottom),
  // deferring the wake to the next flush; w is the caller's own Worker.
  void enqueue_local(Worker& w, pool_detail::NodeTask* task);
  // Shared FIFO enqueue (external threads, quantum yields) + immediate
  // wake flush.
  void enqueue_injector(pool_detail::NodeTask* task);
  // One amortized wake: publishes this worker's batched pushes to parked
  // peers with a single epoch bump (elided when nobody sleeps).
  void flush_wakes(Worker& w);
  // Next runnable task for worker w: own hot slot, own deque, injector,
  // then a randomized steal sweep. Sets *contended when a steal lost a
  // race (work exists; the caller must not park on this round).
  [[nodiscard]] pool_detail::NodeTask* find_task(Worker& w, bool* contended);
  [[nodiscard]] pool_detail::NodeTask* pop_injector();
  // The calling thread's counter shard: its own when it is one of this
  // pool's workers, the shared external shard otherwise.
  [[nodiscard]] obs::WorkerCounters& current_shard();
  // Called at quiescence (active hit zero): finalize, or stay idle when an
  // open port may still supply work.
  void maybe_finalize(Instance& instance);
  void finalize(Instance& instance);

  // One per-tenant injector lane, drained by deficit round-robin: a lane at
  // the head of the active ring gets a grant of `weight` task dequeues,
  // then rotates to the back; a lane that empties forfeits its remaining
  // deficit and unlinks (DRR's empty-queue rule, so a silent tenant
  // accumulates no credit). All fields are guarded by injector_mu_.
  struct TenantLane {
    std::string tenant;
    std::uint64_t weight = 1;
    std::uint64_t deficit = 0;
    bool linked = false;  // present in the active ring
    std::deque<pool_detail::NodeTask*> q;
    std::uint64_t enqueued = 0;
    std::uint64_t dequeued = 0;
    std::uint64_t depth_max = 0;
  };
  // Lane id for `tenant`, creating it on first sight (injector_mu_ held by
  // the caller is NOT required -- this takes the lock itself).
  [[nodiscard]] std::size_t intern_lane(const std::string& tenant,
                                        double weight);

  Options options_;
  std::atomic<bool> stop_{false};
  // Sleep/wake rendezvous for idle workers: version = work epoch, bumped
  // (amortized) whenever new work may exist and a worker sleeps.
  EventWord work_event_;
  // The injector (external schedulers, quantum-yielded tasks): per-tenant
  // lanes + the DRR ring of lanes with queued work. injector_size_ caches
  // the total across lanes for the lock-free empty probe.
  mutable std::mutex injector_mu_;
  std::vector<std::unique_ptr<TenantLane>> lanes_;
  std::unordered_map<std::string, std::size_t> lane_ids_;
  std::deque<std::size_t> active_lanes_;
  std::atomic<std::size_t> injector_size_{0};
  std::vector<std::unique_ptr<Worker>> workers_;
  // workers + 1 shards, sized before the workers spawn and never resized;
  // the final shard absorbs increments from non-worker threads.
  std::vector<obs::WorkerCounters> worker_shards_;
  std::vector<std::thread> threads_;

  std::mutex instances_mu_;
  std::uint64_t next_ticket_ = 1;
  std::unordered_map<TicketId, std::shared_ptr<Instance>> instances_;
};

}  // namespace sdaf::runtime
