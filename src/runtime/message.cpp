#include "src/runtime/message.h"

namespace sdaf::runtime {

std::string to_string(const Message& m) {
  switch (m.kind) {
    case MessageKind::Data:
      return "data(" + std::to_string(m.seq) + ")";
    case MessageKind::Dummy:
      return "dummy(" + std::to_string(m.seq) + ")";
    case MessageKind::Eos:
      return "eos";
    case MessageKind::Marker:
      return "marker(" + std::to_string(m.seq) + ")";
  }
  return "?";
}

}  // namespace sdaf::runtime
