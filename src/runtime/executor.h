// Threaded streaming executor: one thread per node, one bounded channel per
// edge, sequence-number alignment at joins, dummy wrappers around every
// kernel, and a watchdog that certifies deadlock. This is the "runtime
// system" of the paper's compiler/runtime pair; the firing semantics live
// in src/exec/firing_core.cpp, shared with the simulator and the pooled
// scheduler.
//
// Prefer the exec::Session facade (src/exec/session.h) for new code; this
// header stays as the backend implementation and its options/result types.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/graph/stream_graph.h"
#include "src/runtime/channel.h"
#include "src/runtime/kernel.h"
#include "src/runtime/trace.h"
#include "src/runtime/wrapper.h"

namespace sdaf::runtime {

struct ExecutorOptions {
  DummyMode mode = DummyMode::Propagation;
  // Per-edge dummy thresholds (kInfiniteInterval = none). Empty = all
  // infinite.
  std::vector<std::int64_t> intervals;
  // Propagation mode: per-edge flags marking interior cycle edges whose
  // filtered data must be forwarded as dummies (core::CompileResult::
  // forward_on_filter). Empty = none.
  std::vector<std::uint8_t> forward_on_filter;
  // Number of sequence numbers each source generates (0 .. num_inputs-1).
  std::uint64_t num_inputs = 0;
  // Optional event recorder (not owned); see runtime/trace.h. Thread-safe,
  // so concurrent backends may share it across nodes.
  Tracer* tracer = nullptr;
  std::chrono::milliseconds watchdog_tick{2};
  int deadlock_confirm_ticks = 30;
};

struct EdgeTraffic {
  std::uint64_t data = 0;
  std::uint64_t dummies = 0;
  std::int64_t max_occupancy = 0;
};

struct RunResult {
  bool completed = false;
  bool deadlocked = false;
  double wall_seconds = 0.0;
  std::vector<EdgeTraffic> edges;       // per edge id
  std::vector<std::uint64_t> fires;     // kernel invocations per node
  std::vector<std::uint64_t> sink_data; // data messages consumed per node
  // On deadlock: human-readable channel/node state for diagnosis.
  std::string state_dump;

  [[nodiscard]] std::uint64_t total_dummies() const;
  [[nodiscard]] std::uint64_t total_data() const;
};

class Executor {
 public:
  // kernels[n] drives node n. Kernels are invoked from the node's own
  // thread only; a kernel instance must not be shared between nodes unless
  // it is thread-safe.
  Executor(const StreamGraph& g,
           std::vector<std::shared_ptr<Kernel>> kernels);

  // Runs one execution to completion or deadlock. May be called repeatedly;
  // kernels should be stateless across runs (wrapper state is per-run).
  [[nodiscard]] RunResult run(const ExecutorOptions& options);

 private:
  const StreamGraph& graph_;
  std::vector<std::shared_ptr<Kernel>> kernels_;
};

}  // namespace sdaf::runtime
