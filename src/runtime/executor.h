// Threaded streaming executor: one thread per node, one bounded channel per
// edge, sequence-number alignment at joins, dummy wrappers around every
// kernel, and a watchdog that certifies deadlock. This is the "runtime
// system" of the paper's compiler/runtime pair; the firing semantics live
// in src/exec/firing_core.cpp, shared with the simulator and the pooled
// scheduler.
//
// Prefer the exec::Session facade (src/exec/session.h) for new code; this
// header stays as the backend implementation. Options and results are the
// exec types (exec::RunSpec / exec::RunReport); the old per-backend names
// remain as aliases for tests that pin this backend on purpose.
#pragma once

#include <memory>
#include <vector>

#include "src/exec/run_types.h"
#include "src/graph/stream_graph.h"
#include "src/runtime/channel.h"
#include "src/runtime/kernel.h"

namespace sdaf::runtime {

// Deprecated aliases from before the exec:: fold; the exec names are the
// one definition.
using ExecutorOptions = exec::RunSpec;
using RunResult = exec::RunReport;
using EdgeTraffic = exec::EdgeTraffic;

class Executor {
 public:
  // kernels[n] drives node n. Kernels are invoked from the node's own
  // thread only; a kernel instance must not be shared between nodes unless
  // it is thread-safe.
  Executor(const StreamGraph& g,
           std::vector<std::shared_ptr<Kernel>> kernels);

  // Runs one execution to completion or deadlock. May be called repeatedly;
  // kernels should be stateless across runs (wrapper state is per-run).
  // Consumes spec.mode/intervals/forward_on_filter/num_inputs/tracer/batch
  // and the watchdog fields; backend-selection and pool fields are ignored.
  [[nodiscard]] exec::RunReport run(const exec::RunSpec& options);

 private:
  const StreamGraph& graph_;
  std::vector<std::shared_ptr<Kernel>> kernels_;
};

}  // namespace sdaf::runtime
