// Threaded streaming executor: one thread per node, one bounded channel per
// edge, sequence-number alignment at joins, dummy wrappers around every
// kernel, and a watchdog that certifies deadlock. This is the "runtime
// system" of the paper's compiler/runtime pair; the firing semantics live
// in src/exec/firing_core.cpp, shared with the simulator and the pooled
// scheduler.
//
// Prefer the exec::Session facade (src/exec/session.h) for new code; this
// header stays as the backend implementation. Options and results are the
// exec types (exec::RunSpec / exec::RunReport); the old per-backend names
// remain as aliases for tests that pin this backend on purpose.
#pragma once

#include <memory>
#include <vector>

#include "src/ckpt/snapshot.h"
#include "src/exec/run_types.h"
#include "src/graph/stream_graph.h"
#include "src/runtime/channel.h"
#include "src/runtime/kernel.h"

namespace sdaf::runtime {

// Deprecated aliases from before the exec:: fold; the exec names are the
// one definition.
using ExecutorOptions = exec::RunSpec;
using RunResult = exec::RunReport;
using EdgeTraffic = exec::EdgeTraffic;

class Executor {
 public:
  // kernels[n] drives node n. Kernels are invoked from the node's own
  // thread only; a kernel instance must not be shared between nodes unless
  // it is thread-safe.
  Executor(const StreamGraph& g,
           std::vector<std::shared_ptr<Kernel>> kernels);

  // Runs one execution to completion or deadlock. May be called repeatedly;
  // kernels should be stateless across runs (wrapper state is per-run).
  // Consumes spec.mode/intervals/forward_on_filter/num_inputs/tracer/batch,
  // ports and the watchdog fields; backend-selection and pool fields are
  // ignored.
  [[nodiscard]] exec::RunReport run(const exec::RunSpec& options);

 private:
  const StreamGraph& graph_;
  std::vector<std::shared_ptr<Kernel>> kernels_;
};

// The long-lived form behind both Executor::run and the Threaded backend of
// exec::Stream: one thread per node plus the certifying watchdog, with the
// node threads' lifetime under caller control. Feed channels named by
// spec.ports never report their waits to the watchdog monitor -- a source
// waiting for external input is idle, not wedged -- so certification stays
// exact whenever it is armed: with pre-closed feeds (the batch adapter)
// it is armed from start() exactly as the classic executor; a live stream
// arms it when the last port closes, which is the earliest moment
// "all threads blocked, no progress" again implies deadlock.
class ThreadEngine {
 public:
  ThreadEngine(const StreamGraph& g,
               const std::vector<std::shared_ptr<Kernel>>& kernels,
               const exec::RunSpec& options);
  // Joins (aborting the run first) if the caller never collected.
  ~ThreadEngine();

  ThreadEngine(const ThreadEngine&) = delete;
  ThreadEngine& operator=(const ThreadEngine&) = delete;

  // Spawns the node threads and the watchdog. `arm_watchdog` = certify
  // deadlock from the start (requires every feed to be pre-closed).
  void start(bool arm_watchdog);

  // Live streams: start certification once no more input can arrive.
  void arm_watchdog();

  // Snapshot assembly (ckpt): edge e's cumulative traffic at the barrier
  // cut -- the marker latch when the producer forwarded Marker(S), the
  // frozen totals when it finished before the barrier (a node pushes
  // nothing after its EOS flood, so its totals are the cut). Only valid
  // once the barrier's downstream consumers have checkpointed.
  [[nodiscard]] ckpt::EdgeCut edge_cut(EdgeId e,
                                       bool producer_checkpointed) const;

  // Waits for every node thread to finish (the caller must have made that
  // possible: feeds closed, or enough egress drained, or deadlock will be
  // certified by the armed watchdog), stops the watchdog, and collects the
  // final report. At most once.
  [[nodiscard]] exec::RunReport join();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace sdaf::runtime
