#include "src/runtime/pool_executor.h"

#include <chrono>
#include <cmath>
#include <thread>

#include "src/support/contracts.h"
#include "src/support/prng.h"
#include "src/support/timer.h"

namespace sdaf::runtime {

namespace pool_detail {

// Scheduling state of one node task. A task is enqueued (hot slot, deque,
// or injector) iff its state is kQueued; notifications that arrive while it
// runs are folded into kRunningNotified so the owning worker re-runs it
// instead of racing a second worker onto the same node.
enum : std::uint32_t {
  kIdle = 0,
  kQueued = 1,
  kRunning = 2,
  kRunningNotified = 3,
};

struct NodeTask {
  PoolExecutor::Instance* instance = nullptr;
  NodeState* node = nullptr;
  std::atomic<std::uint32_t> sched{kIdle};
  // Why the last owner parked this node (NodeState::park_summary encoding);
  // written by the owner before the park transition, read by the post-park
  // probe, which may race a newer owner's write -- benign, see run_task.
  std::atomic<std::uint64_t> park_summary{0};
};

}  // namespace pool_detail

namespace {

// Per-thread shard attribution: worker_loop pins these for pool workers;
// any other thread (submit kicks, stream-port hooks) falls back to the
// pool's shared external shard. Pool identity is checked so a worker of
// pool A calling into pool B (never happens today, but cheap to guard)
// does not write through a foreign shard pointer.
thread_local const void* tls_pool = nullptr;
thread_local obs::WorkerCounters* tls_shard = nullptr;
thread_local void* tls_worker = nullptr;  // PoolExecutor::Worker*

// Schedule-perturbation hook (harness sched=steal-heavy / park-storm): an
// injected yield point that fires with probability p/256, forcing the
// adversarial interleavings a free-running pool rarely explores. The PRNG
// is the worker's own, so a fixed Options::seed reproduces the same
// decision sequence for a given interleaving.
inline void maybe_perturb(std::uint32_t p, sdaf::Prng& rng) {
  if (p != 0 && rng.next_below(256) < p) std::this_thread::yield();
}

}  // namespace

using pool_detail::kIdle;
using pool_detail::kQueued;
using pool_detail::kRunning;
using pool_detail::kRunningNotified;
using pool_detail::NodeTask;

// One worker's scheduling state. Only the owning worker touches the deque
// bottom, the PRNG, and pending_wakes; the hot slot and the deque top are
// shared with thieves.
struct PoolExecutor::Worker {
  Worker(std::size_t deque_capacity, std::uint64_t seed)
      : deque(deque_capacity), rng(seed) {}

  StealDeque deque;
  // LIFO slot for the freshest wake-up: the task most likely to have its
  // channel data still in this worker's cache. Any thread takes it with an
  // exchange, so a task here is never stranded -- thieves probe it too.
  alignas(64) std::atomic<NodeTask*> hot{nullptr};
  Prng rng;                        // owner-only
  std::size_t pending_wakes = 0;  // owner-only: pushes since the last flush
};

// One submitted graph execution: channels, node state machines, tasks, and
// the exact-quiescence bookkeeping. Lives until wait() collects the result.
struct PoolExecutor::Instance final : Waker {
  PoolExecutor* executor = nullptr;
  const StreamGraph* graph = nullptr;
  std::vector<std::shared_ptr<Kernel>> kernels;
  std::vector<std::unique_ptr<BoundedChannel>> channels;
  std::vector<std::unique_ptr<NodeState>> nodes;
  std::vector<NodeTask> tasks;
  Tracer* tracer = nullptr;
  Stopwatch clock;
  // Injector lane this instance's external wakes and quantum yields land
  // in (the submitting tenant's, or lane 0 with fair_injector off).
  std::size_t lane = 0;

  // Queued + running tasks of this instance. Wake-ups only originate from
  // tasks of the same instance (or, for live ports, from the stream hooks,
  // which always follow the channel transition they report), so 0 here
  // means quiescence: no node of this instance can progress until a port
  // supplies more work -- and with no open ports that verdict is final:
  // either all nodes finished (completed) or some cannot (deadlock),
  // exactly. Distribution does not blur this: a task counts from its
  // schedule() CAS until its park decrement wherever it sits -- a hot
  // slot, any deque, any tenant lane of the injector, or a thief's hands
  // between the winning steal CAS and run_task -- so a steal in flight is
  // still pending work. DRR only reorders *when* a queued task runs, never
  // whether it is counted: deferral in a low-weight lane keeps `active`
  // nonzero, so quiescence stays exact per instance (docs/SCHEDULER.md).
  std::atomic<std::int64_t> active{0};

  // Live-port bookkeeping. `streaming` is set for ports->live submissions;
  // `open_ports` counts input ports whose EOS has not been pushed yet.
  // finalize() is gated on open_ports == 0 *and* every feed drained: the
  // close protocol is push-EOS, then decrement, then wake, so whenever a
  // quiescent observer reads open_ports == 0, the EOS that closed the last
  // port is already visible -- it either still sits in the feed (then the
  // close's wake re-activates the instance) or was consumed (then the feed
  // is empty and the nodes took the flood as far as it goes).
  bool streaming = false;
  const exec::PortBinding* ports = nullptr;
  std::atomic<std::int64_t> open_ports{0};
  // Serializes caller-side port wakes against the final verdict: a stream
  // hook either schedules before maybe_finalize takes the lock (then
  // `active` is nonzero and the verdict attempt aborts) or after `dead` is
  // set (then the wake is dropped -- by then it is provably spurious). Only
  // port-transition edges take it, never the data fast path.
  std::mutex port_mu;
  std::atomic<bool> dead{false};
  // Workers inside the quiescence-decrement + maybe_finalize window. With
  // live ports `active` can reach zero many times, so a *stale* verdict
  // attempt may still be parked on port_mu when the real finalize lets the
  // caller collect -- wait() spins this count to zero before handing the
  // instance to its destroyer.
  std::atomic<std::int64_t> verdict_guests{0};

  std::mutex mu;
  std::condition_variable cv;
  bool finished = false;
  bool collected = false;
  RunResult result;

  void wake(NodeId node) override {
    executor->schedule(&tasks[node]);
  }
};

PoolExecutor::PoolExecutor(const Options& options) : options_(options) {
  std::size_t n = options_.workers;
  if (n == 0) {
    n = std::thread::hardware_concurrency();
    if (n == 0) n = 1;
  }
  options_.workers = n;
  if (options_.max_steps_per_quantum == 0) options_.max_steps_per_quantum = 1;
  if (options_.deque_capacity < 2) options_.deque_capacity = 2;
  // Sized before the workers spawn and never resized: one shard per worker
  // plus a trailing shard for non-worker threads.
  worker_shards_ = std::vector<obs::WorkerCounters>(n + 1);
  // Lane 0 always exists: the shared FIFO every instance uses when
  // fair_injector is off (and the fallback target before any tenant is
  // interned).
  lanes_.push_back(std::make_unique<TenantLane>());
  lanes_.back()->tenant = "shared";
  lane_ids_.emplace("shared", 0);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Odd-multiplier mix so seed 0 still decorrelates the workers.
    std::uint64_t s = options_.seed + 0x9E3779B97F4A7C15ULL * (i + 1);
    workers_.push_back(std::make_unique<Worker>(options_.deque_capacity,
                                                splitmix64(s)));
  }
  threads_.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    threads_.emplace_back([this, i] { worker_loop(i); });
}

PoolExecutor::~PoolExecutor() {
  // Drain: every instance reaches `finished` on its own (deadlocks are
  // detected exactly, so no instance can hang), then stop the pool.
  for (;;) {
    std::shared_ptr<Instance> pending;
    {
      std::lock_guard lock(instances_mu_);
      for (auto& [id, inst] : instances_) {
        std::lock_guard ilock(inst->mu);
        if (!inst->finished) {
          pending = inst;
          break;
        }
      }
    }
    if (pending == nullptr) break;
    std::unique_lock ilock(pending->mu);
    pending->cv.wait(ilock, [&] { return pending->finished; });
  }
  stop_.store(true, std::memory_order_release);
  // Unconditional bump: the epoch moves off every captured value before the
  // wake, so a worker between its re-scan and its park falls through.
  work_event_.bump();
  for (auto& t : threads_) t.join();
}

PoolExecutor::TicketId PoolExecutor::submit(
    const StreamGraph& g, std::vector<std::shared_ptr<Kernel>> kernels,
    const ExecutorOptions& options) {
  const std::size_t edges = g.edge_count();
  const std::size_t node_count = g.node_count();
  SDAF_EXPECTS(kernels.size() == node_count);
  for (const auto& k : kernels) SDAF_EXPECTS(k != nullptr);

  std::vector<std::int64_t> intervals = options.intervals;
  if (intervals.empty()) intervals.assign(edges, kInfiniteInterval);
  SDAF_EXPECTS(intervals.size() == edges);
  std::vector<std::uint8_t> forward = options.forward_on_filter;
  if (forward.empty()) forward.assign(edges, 0);
  SDAF_EXPECTS(forward.size() == edges);

  auto instance = std::make_shared<Instance>();
  instance->executor = this;
  instance->graph = &g;
  instance->kernels = std::move(kernels);
  instance->ports = options.ports;
  instance->streaming = options.ports != nullptr && options.ports->live;
  if (instance->streaming)
    instance->open_ports.store(
        static_cast<std::int64_t>(options.ports->feeds.size()));
  instance->tracer = options.tracer;
  instance->lane = options_.fair_injector
                       ? intern_lane(options.tenant, options.tenant_weight)
                       : 0;
  instance->channels.reserve(edges);
  for (EdgeId e = 0; e < edges; ++e) {
    instance->channels.push_back(std::make_unique<BoundedChannel>(
        static_cast<std::size_t>(g.edge(e).buffer), /*monitor=*/nullptr));
    if (options.metrics != nullptr)
      instance->channels.back()->set_metrics(&options.metrics->channel(e));
  }

  instance->tasks = std::vector<NodeTask>(node_count);
  instance->nodes.reserve(node_count);
  for (NodeId n = 0; n < node_count; ++n) {
    std::vector<BoundedChannel*> ins;
    std::vector<NodeId> in_producers;
    for (const EdgeId e : g.in_edges(n)) {
      ins.push_back(instance->channels[e].get());
      in_producers.push_back(g.edge(e).from);
    }
    std::vector<BoundedChannel*> outs;
    std::vector<NodeId> out_consumers;
    std::vector<std::int64_t> out_intervals;
    std::vector<std::uint8_t> out_forward;
    for (const EdgeId e : g.out_edges(n)) {
      outs.push_back(instance->channels[e].get());
      out_consumers.push_back(g.edge(e).to);
      out_intervals.push_back(intervals[e]);
      out_forward.push_back(forward[e]);
    }
    BoundedChannel* feed = nullptr;
    if (options.ports != nullptr) {
      feed = options.ports->feed_for(n);
      if (BoundedChannel* egress = options.ports->egress_for(n)) {
        // The egress tap is one extra out-slot: infinite dummy interval,
        // never continuation-forwarding, no consumer task to wake.
        outs.push_back(egress);
        out_consumers.push_back(kNoNode);
        out_intervals.push_back(kInfiniteInterval);
        out_forward.push_back(0);
      }
    }
    instance->nodes.push_back(std::make_unique<NodeState>(
        n, *instance->kernels[n], std::move(ins), std::move(outs), feed,
        NodeWrapper(options.mode, std::move(out_intervals),
                    std::move(out_forward)),
        options.num_inputs, std::move(in_producers), std::move(out_consumers),
        instance.get(), options.batch, options.tracer,
        options.metrics != nullptr ? &options.metrics->node(n) : nullptr));
    instance->tasks[n].instance = instance.get();
    instance->tasks[n].node = instance->nodes.back().get();
  }

  if (options.ckpt_plane != nullptr)
    for (auto& ns : instance->nodes)
      ns->set_snapshot_plane(options.ckpt_plane);
  if (options.restore != nullptr) {
    const ckpt::StreamSnapshot& snap = *options.restore;
    SDAF_EXPECTS(snap.nodes.size() == node_count && snap.edges.size() == edges);
    for (NodeId n = 0; n < node_count; ++n) {
      instance->nodes[n]->restore_cut(snap.nodes[n]);
      if (snap.nodes[n].done != 0) instance->nodes[n]->mark_done();
    }
    for (EdgeId e = 0; e < edges; ++e) {
      instance->channels[e]->restore_stats(snap.edges[e].data_pushed,
                                           snap.edges[e].dummies_pushed);
      // The cut's interior channels are logically empty except for the EOS
      // a pre-barrier-finished producer had flooded; re-create that head so
      // a live consumer still terminates.
      if (snap.nodes[g.edge(e).from].done != 0 &&
          snap.nodes[g.edge(e).to].done == 0) {
        const PushResult pushed = instance->channels[e]->try_push(
            Message::eos());
        SDAF_ASSERT(pushed == PushResult::Ok);
      }
    }
  }

  TicketId ticket;
  {
    std::lock_guard lock(instances_mu_);
    ticket = next_ticket_++;
    instances_.emplace(ticket, instance);
  }
  instance->clock.reset();
  // Guard against quiescence being declared mid-kick (a fast subgraph could
  // otherwise drain to zero before every node is scheduled): hold one
  // synthetic active task for the duration of submission.
  instance->active.store(1);
  // Kick every node once; interior nodes immediately park until fed.
  for (NodeTask& task : instance->tasks) schedule(&task);
  instance->verdict_guests.fetch_add(1, std::memory_order_acq_rel);
  if (instance->active.fetch_sub(1) == 1) maybe_finalize(*instance);
  instance->verdict_guests.fetch_sub(1, std::memory_order_release);
  return ticket;
}

void PoolExecutor::enqueue_local(Worker& w, NodeTask* task) {
  if (options_.lifo_slot) {
    // The fresh wake takes the hot slot; its previous occupant ages into
    // the deque where peers can steal it from the FIFO end.
    NodeTask* displaced = w.hot.exchange(task, std::memory_order_acq_rel);
    if (displaced != nullptr) w.deque.push_bottom(displaced);
  } else {
    w.deque.push_bottom(task);
  }
  // The wake is deferred: one flush per drain (after run_task) publishes
  // the whole batch with a single fence + epoch bump instead of a fence
  // per channel push. Liveness holds because a worker's own pre-park
  // re-scan covers every deque -- see worker_loop.
  ++w.pending_wakes;
}

std::size_t PoolExecutor::intern_lane(const std::string& tenant,
                                      double weight) {
  std::uint64_t w = 1;
  if (weight > 1.0)
    w = static_cast<std::uint64_t>(std::llround(weight));
  std::lock_guard lock(injector_mu_);
  const auto [it, inserted] = lane_ids_.emplace(tenant, lanes_.size());
  if (inserted) {
    lanes_.push_back(std::make_unique<TenantLane>());
    lanes_.back()->tenant = tenant;
  }
  // Last submission wins: weights are per-tenant, not per-stream, and a
  // tenant re-opening with a new weight expects the new share.
  lanes_[it->second]->weight = w;
  return it->second;
}

void PoolExecutor::enqueue_injector(NodeTask* task) {
  {
    std::lock_guard lock(injector_mu_);
    TenantLane& lane = *lanes_[task->instance->lane];
    lane.q.push_back(task);
    ++lane.enqueued;
    if (lane.q.size() > lane.depth_max) lane.depth_max = lane.q.size();
    if (!lane.linked) {
      lane.linked = true;
      lane.deficit = 0;
      active_lanes_.push_back(task->instance->lane);
    }
    injector_size_.store(
        injector_size_.load(std::memory_order_relaxed) + 1,
        std::memory_order_relaxed);
  }
  // External enqueues flush immediately: nothing amortizes a caller that
  // may go quiet (a stream pusher, a submit kick).
  std::atomic_thread_fence(std::memory_order_seq_cst);
  work_event_.bump_if_waiters();
}

void PoolExecutor::flush_wakes(Worker& w) {
  if (w.pending_wakes == 0) return;
  w.pending_wakes = 0;
  // Pairs with a parking worker's seq_cst registration: either this read
  // sees the sleeper (and the epoch bump unparks it), or the sleeper's
  // post-registration re-scan sees our deque pushes. Never both miss.
  std::atomic_thread_fence(std::memory_order_seq_cst);
  work_event_.bump_if_waiters();
}

NodeTask* PoolExecutor::pop_injector() {
  if (injector_size_.load(std::memory_order_acquire) == 0) return nullptr;
  std::lock_guard lock(injector_mu_);
  // Deficit round-robin, one dequeue per call: the head lane's visit grants
  // it `weight` dequeues (all tasks cost 1 -- a scheduling quantum is the
  // unit of service); when the grant is spent the lane rotates to the back,
  // and a lane that runs empty forfeits its remainder and unlinks, so a
  // quiet tenant banks no credit. With one lane (fair_injector off) every
  // branch below degenerates to the legacy shared FIFO.
  while (!active_lanes_.empty()) {
    const std::size_t idx = active_lanes_.front();
    TenantLane& lane = *lanes_[idx];
    if (lane.q.empty()) {
      lane.linked = false;
      lane.deficit = 0;
      active_lanes_.pop_front();
      continue;
    }
    if (lane.deficit == 0) lane.deficit = lane.weight;
    NodeTask* task = lane.q.front();
    lane.q.pop_front();
    --lane.deficit;
    ++lane.dequeued;
    injector_size_.store(
        injector_size_.load(std::memory_order_relaxed) - 1,
        std::memory_order_relaxed);
    if (lane.q.empty()) {
      lane.linked = false;
      lane.deficit = 0;
      active_lanes_.pop_front();
    } else if (lane.deficit == 0) {
      active_lanes_.pop_front();
      active_lanes_.push_back(idx);
    }
    return task;
  }
  return nullptr;
}

NodeTask* PoolExecutor::find_task(Worker& w, bool* contended) {
  *contended = false;
  // 1. Own hot slot: the freshest wake, hottest cache.
  if (w.hot.load(std::memory_order_relaxed) != nullptr)
    if (NodeTask* task = w.hot.exchange(nullptr, std::memory_order_acquire))
      return task;
  // 2. Own deque: LIFO bottom normally; in fifo mode (lifo_slot off) take
  // the FIFO end via self-steal so arrival order is preserved.
  if (options_.lifo_slot) {
    if (auto* task = static_cast<NodeTask*>(w.deque.pop_bottom())) return task;
  } else {
    for (;;) {
      void* out = nullptr;
      const auto r = w.deque.steal(&out);
      if (r == StealDeque::StealResult::Ok)
        return static_cast<NodeTask*>(out);
      if (r == StealDeque::StealResult::Empty) break;
      // Contended self-steal: a thief holds the race; retry, it is our own
      // non-empty deque.
    }
  }
  // 3. Shared injector (external wakes, quantum-yielded tasks).
  if (NodeTask* task = pop_injector()) return task;
  // 4. Randomized steal sweep: probe every peer once, starting at a
  // PRNG-chosen victim so simultaneous thieves fan out instead of piling
  // onto worker 0.
  const std::size_t n = workers_.size();
  if (n <= 1) return nullptr;
  obs::WorkerCounters& shard = current_shard();
  const std::size_t start = static_cast<std::size_t>(w.rng.next_below(n));
  for (std::size_t k = 0; k < n; ++k) {
    Worker& victim = *workers_[(start + k) % n];
    if (&victim == &w) continue;
    maybe_perturb(options_.perturb_yield_in_256, w.rng);
    // Hot slots are stealable too (exchange), so a wake parked there while
    // its owner crunches a long quantum is never stranded. Probe with a
    // load first: the exchange dirties the victim's cache line.
    if (victim.hot.load(std::memory_order_relaxed) != nullptr) {
      if (NodeTask* task =
              victim.hot.exchange(nullptr, std::memory_order_acquire)) {
        obs::bump(shard.steals);
        return task;
      }
    }
    void* out = nullptr;
    switch (victim.deque.steal(&out)) {
      case StealDeque::StealResult::Ok:
        obs::bump(shard.steals);
        return static_cast<NodeTask*>(out);
      case StealDeque::StealResult::Contended:
        // Lost the top CAS: work exists (someone else got it, more may
        // remain). The caller treats this as a work signal and must not
        // park off this sweep.
        *contended = true;
        obs::bump(shard.steal_fails);
        break;
      case StealDeque::StealResult::Empty:
        obs::bump(shard.steal_fails);
        break;
    }
  }
  return nullptr;
}

void PoolExecutor::schedule(NodeTask* task) {
  std::uint32_t s = task->sched.load();
  for (;;) {
    switch (s) {
      case kIdle:
        if (task->sched.compare_exchange_weak(s, kQueued)) {
          // A wake is counted only when it actually transitions a parked
          // task to runnable; notifications folded into a running task are
          // re-runs, not wakes. The external shard (non-worker callers) is
          // multi-writer, so a rare lost increment there is tolerated --
          // these are scheduling diagnostics, not exactness-checked counts.
          obs::bump(current_shard().wakes);
          task->instance->active.fetch_add(1);
          if (tls_pool == this)
            enqueue_local(*static_cast<Worker*>(tls_worker), task);
          else
            enqueue_injector(task);
          return;
        }
        break;
      case kRunning:
        if (task->sched.compare_exchange_weak(s, kRunningNotified)) return;
        break;
      default:  // kQueued, kRunningNotified: already accounted for
        return;
    }
  }
}

void PoolExecutor::run_task(NodeTask* task) {
  NodeState& node = *task->node;
  obs::WorkerCounters& shard = current_shard();
  auto* w = static_cast<Worker*>(tls_worker);
  obs::bump(shard.task_runs);
  if (w != nullptr)
    shard.sample_depth(
        w->deque.approx_size() +
        (w->hot.load(std::memory_order_relaxed) != nullptr ? 1 : 0));
  // An RMW, not a blind store: acquire-reading the enqueuer's kQueued write
  // orders this runner after the previous runner through the sched word
  // itself (park CAS -> wake CAS -> this exchange), independent of which
  // container delivered the task.
  const std::uint32_t pre = task->sched.exchange(kRunning);
  SDAF_ASSERT(pre == kQueued);
  for (;;) {
    std::size_t steps = 0;
    while (node.step()) {
      if (w != nullptr) maybe_perturb(options_.perturb_yield_in_256, w->rng);
      if (++steps >= options_.max_steps_per_quantum) {
        // Yield for fairness; the task stays accounted as active. It goes
        // to the shared FIFO, not our own LIFO end, so co-tenant tasks in
        // this deque get the worker first and idle peers can take it. A
        // notification folded in while running is subsumed by re-queuing.
        task->sched.exchange(kQueued);
        enqueue_injector(task);
        return;
      }
    }
    // Publish why we are about to park while still the owner (reading
    // NodeState private fields is only safe for the owner).
    task->park_summary.store(node.park_summary(), std::memory_order_release);
    std::uint32_t expected = kRunning;
    if (!task->sched.compare_exchange_strong(expected, kIdle)) {
      // kRunningNotified: a wake arrived while stepping; consume and rerun.
      task->sched.store(kRunning);
      continue;
    }
    obs::bump(shard.parks);
    // Parked. Dekker-style recheck against a wake that raced our last
    // unproductive step: probe only the channels named by the summary (no
    // NodeState access -- a new owner may already be stepping it). If the
    // node can progress, try to reclaim it; if the reclaim CAS fails, a
    // concurrent wake has already queued it and responsibility moved on.
    // A newer owner overwriting park_summary is benign for the same
    // reason: its own park runs this protocol again.
    // Quiescence stays exact with the lock-free SPSC channels: the park
    // CAS above is a seq_cst RMW, and every channel peer issues a seq_cst
    // fence between publishing its pushed/popped counter and checking
    // whether to wake us -- so either the peer saw the transition and
    // re-queues this task (keeping `active` nonzero), or this probe sees
    // the peer's counter and reclaims. No third outcome exists, so when
    // `active` hits zero no wake can be in flight. The explicit fence
    // completes the pairing: the park CAS's seq_cst RMW alone does not
    // order the probe's acquire loads under the standard's fence rules.
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (node.probe(task->park_summary.load(std::memory_order_acquire))) {
      expected = kIdle;
      if (task->sched.compare_exchange_strong(expected, kRunning)) continue;
    }
    break;
  }
  // This task is no longer queued or running; if it was the last one, the
  // instance is quiescent and its verdict is exact. The guest count pins
  // the instance across the window (see Instance::verdict_guests).
  Instance& instance = *task->instance;
  instance.verdict_guests.fetch_add(1, std::memory_order_acq_rel);
  if (instance.active.fetch_sub(1) == 1) maybe_finalize(instance);
  instance.verdict_guests.fetch_sub(1, std::memory_order_release);
}

void PoolExecutor::maybe_finalize(Instance& instance) {
  if (!instance.streaming) {
    finalize(instance);
    return;
  }
  // Extended quiescence rule for live ports: the verdict is final only when
  // the instance is quiescent *and* no port can still supply work:
  //   - an open input port means the caller may push or close later;
  //   - a non-empty feed still holds the EOS whose close-wake is in flight;
  //   - a sink parked on its egress slot resumes when the caller drains the
  //     tap (or its pop-wake is already in flight).
  // In each of those cases the instance idles -- quiescence is "awaiting
  // the caller", not a verdict -- and the corresponding port wake
  // re-activates it. Otherwise all nodes either finished (completed) or
  // are wedged on graph channels alone (deadlock), exactly as in the
  // closed-world rule. port_mu freezes the instance for the decision: any
  // concurrent stream hook either scheduled first (then `active` is
  // nonzero below) or waits and observes `dead`.
  std::lock_guard plock(instance.port_mu);
  if (instance.dead.load(std::memory_order_relaxed)) return;
  if (instance.active.load(std::memory_order_acquire) != 0) return;
  bool all_done = true;
  for (const auto& node : instance.nodes) all_done &= node->done();
  if (!all_done) {
    if (instance.open_ports.load(std::memory_order_acquire) > 0) return;
    for (std::size_t i = 0; i < instance.ports->feeds.size(); ++i) {
      // A pending feed item (the closing EOS included) only defers the
      // verdict if its source could actually consume it -- i.e. it parked
      // waiting on input, in which case the close/push wake that follows
      // every feed transition re-activates the instance. A source parked
      // on full *outputs* can never drain its feed: those items are part
      // of the wedge, exactly like a batch source's ungenerated remainder.
      if (instance.ports->feeds[i]->empty()) continue;
      const NodeId n = instance.ports->source_nodes[i];
      if (instance.nodes[n]->done()) continue;
      const std::uint64_t summary = instance.tasks[n].park_summary.load(
          std::memory_order_acquire);
      if ((summary >> exec::kParkTagShift) == exec::kParkInputs) return;
    }
    for (std::size_t i = 0; i < instance.ports->sink_nodes.size(); ++i) {
      if (instance.ports->egress[i] == nullptr) continue;
      const NodeId n = instance.ports->sink_nodes[i];
      if (instance.nodes[n]->done()) continue;
      const std::uint64_t summary = instance.tasks[n].park_summary.load(
          std::memory_order_acquire);
      if ((summary >> exec::kParkTagShift) != exec::kParkOutputs) continue;
      // Taps attach only to out-degree-0 sinks, so the tap is the node's
      // sole out-slot: parked-on-outputs means parked on the tap.
      return;
    }
  }
  instance.dead.store(true, std::memory_order_release);
  finalize(instance);
}

void PoolExecutor::finalize(Instance& instance) {
  const StreamGraph& g = *instance.graph;
  RunResult result;
  result.backend = exec::Backend::Pooled;
  bool all_done = true;
  for (const auto& node : instance.nodes) all_done &= node->done();
  result.completed = all_done;
  result.deadlocked = !all_done;
  result.wall_seconds = instance.clock.elapsed_seconds();
  result.edges.resize(g.edge_count());
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    const auto s = instance.channels[e]->stats();
    result.edges[e] =
        EdgeTraffic{s.data_pushed, s.dummies_pushed, s.max_occupancy};
  }
  result.fires.resize(g.node_count());
  result.sink_data.resize(g.node_count());
  for (NodeId n = 0; n < g.node_count(); ++n) {
    result.fires[n] = instance.nodes[n]->fires();
    result.sink_data[n] = instance.nodes[n]->sink_data();
  }
  if (result.deadlocked) {
    // Quiescence means no task of this instance is queued or running, so
    // node and channel state is stable: dump channel occupancies and each
    // unfinished node's park summary for diagnosis.
    result.state_dump = exec::dump_wedged_state(
        g,
        [&](EdgeId e) {
          const auto s = instance.channels[e]->stats();
          return exec::EdgeDumpInfo{instance.channels[e]->size(),
                                    instance.channels[e]->capacity(),
                                    s.data_pushed, s.dummies_pushed,
                                    instance.channels[e]->try_peek(),
                                    std::nullopt};
        },
        [&](NodeId n) {
          return exec::NodeDumpInfo{
              instance.nodes[n]->describe(),
              instance.tasks[n].park_summary.load(std::memory_order_acquire)};
        },
        instance.tracer);
  }
  if (instance.streaming && result.deadlocked) {
    // Release callers parked on the ports: a pusher blocked on a full feed
    // and a poller blocked on an empty tap both unwind on abort (remaining
    // tap contents stay drainable).
    for (BoundedChannel* feed : instance.ports->feeds) feed->abort();
    for (BoundedChannel* egress : instance.ports->egress)
      if (egress != nullptr) egress->abort();
  }
  {
    std::lock_guard lock(instance.mu);
    instance.result = std::move(result);
    instance.finished = true;
    // Notify while holding the lock: the waiter in wait() may destroy the
    // Instance the moment it observes `finished`, so the condition variable
    // must not be touched after the mutex is released.
    instance.cv.notify_all();
  }
}

void PoolExecutor::worker_loop(std::size_t worker_index) {
  tls_pool = this;
  tls_shard = &worker_shards_[worker_index];
  Worker& w = *workers_[worker_index];
  tls_worker = &w;
  obs::WorkerCounters& shard = *tls_shard;
  for (;;) {
    bool contended = false;
    if (NodeTask* task = find_task(w, &contended)) {
      run_task(task);
      // The amortized wake point: one epoch bump covers every push this
      // drain produced.
      flush_wakes(w);
      continue;
    }
    if (stop_.load(std::memory_order_acquire)) return;
    if (contended) {
      // A steal lost its race: work exists, re-sweep instead of parking
      // (yield first -- on few cores the winner needs the CPU to finish).
      std::this_thread::yield();
      continue;
    }
    // Idle. Futex-park on the work epoch: capture -> register (seq_cst
    // RMW) -> full re-scan -> park on the captured epoch. Any publisher
    // either sees our registration after its fence (and bumps the epoch,
    // so the park falls through or wakes) or published before our re-scan
    // (and the re-scan finds its task). "Never falsely empty for a parked
    // peer" -- see docs/SCHEDULER.md.
    const std::uint32_t epoch = work_event_.capture();
    work_event_.register_waiter();
    std::atomic_thread_fence(std::memory_order_seq_cst);
    NodeTask* task = find_task(w, &contended);
    if (task == nullptr && !contended &&
        !stop_.load(std::memory_order_acquire)) {
      obs::bump(shard.futex_parks);
      // The timeout is insurance only (the flush handshake makes wakes
      // reliable); keep it long enough that idle pools cost ~nothing.
      ParkingLot::park_for(work_event_.version, epoch,
                           std::chrono::milliseconds(50));
    }
    work_event_.unregister_waiter();
    if (task != nullptr) {
      run_task(task);
      flush_wakes(w);
    }
  }
}

obs::WorkerCounters& PoolExecutor::current_shard() {
  if (tls_pool == this) return *tls_shard;
  return worker_shards_.back();
}

std::vector<obs::WorkerMetrics> PoolExecutor::worker_metrics() const {
  std::vector<obs::WorkerMetrics> out;
  out.reserve(worker_shards_.size());
  for (std::size_t i = 0; i < worker_shards_.size(); ++i)
    out.push_back(obs::read_worker(worker_shards_[i], i));
  return out;
}

std::vector<obs::TenantSchedMetrics> PoolExecutor::tenant_metrics() const {
  std::lock_guard lock(injector_mu_);
  std::vector<obs::TenantSchedMetrics> out;
  out.reserve(lanes_.size());
  for (const auto& lane : lanes_) {
    obs::TenantSchedMetrics m;
    m.tenant = lane->tenant;
    m.weight = lane->weight;
    m.enqueued = lane->enqueued;
    m.dequeued = lane->dequeued;
    m.queue_depth = lane->q.size();
    m.queue_depth_max = lane->depth_max;
    out.push_back(std::move(m));
  }
  return out;
}

RunResult PoolExecutor::wait(TicketId ticket) {
  std::shared_ptr<Instance> instance;
  {
    std::lock_guard lock(instances_mu_);
    auto it = instances_.find(ticket);
    SDAF_EXPECTS(it != instances_.end());
    instance = it->second;
  }
  RunResult result;
  {
    std::unique_lock lock(instance->mu);
    instance->cv.wait(lock, [&] { return instance->finished; });
    SDAF_EXPECTS(!instance->collected);
    instance->collected = true;
    result = std::move(instance->result);
  }
  // Do not hand the instance to its destroyer while a stale verdict
  // attempt is still inside the decrement/maybe_finalize window.
  while (instance->verdict_guests.load(std::memory_order_acquire) != 0)
    std::this_thread::yield();
  {
    std::lock_guard lock(instances_mu_);
    instances_.erase(ticket);
  }
  return result;
}

RunResult PoolExecutor::run(const StreamGraph& g,
                            std::vector<std::shared_ptr<Kernel>> kernels,
                            const ExecutorOptions& options) {
  return wait(submit(g, std::move(kernels), options));
}

PoolExecutor::StreamHandle PoolExecutor::stream_handle(TicketId ticket) {
  std::lock_guard lock(instances_mu_);
  auto it = instances_.find(ticket);
  SDAF_EXPECTS(it != instances_.end());
  SDAF_EXPECTS(it->second->streaming);
  return it->second;
}

void PoolExecutor::stream_wake(const StreamHandle& handle, NodeId node) {
  auto* instance = static_cast<Instance*>(handle.get());
  std::lock_guard lock(instance->port_mu);
  if (instance->dead.load(std::memory_order_relaxed)) return;
  instance->executor->schedule(&instance->tasks[node]);
}

void PoolExecutor::stream_port_closed(const StreamHandle& handle) {
  auto* instance = static_cast<Instance*>(handle.get());
  std::lock_guard lock(instance->port_mu);
  instance->open_ports.fetch_sub(1, std::memory_order_acq_rel);
}

ckpt::EdgeCut PoolExecutor::stream_edge_cut(const StreamHandle& handle,
                                            EdgeId e,
                                            bool producer_checkpointed) {
  auto* instance = static_cast<Instance*>(handle.get());
  const auto st = producer_checkpointed
                      ? instance->channels[e]->marker_cut_stats()
                      : instance->channels[e]->stats();
  return ckpt::EdgeCut{st.data_pushed, st.dummies_pushed};
}

}  // namespace sdaf::runtime
