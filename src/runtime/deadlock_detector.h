// Precise deadlock detection for the threaded executor. Every channel
// operation reports blocking and progress to a shared monitor; the watchdog
// declares deadlock only when *every* live node thread is blocked and the
// global progress counter has not moved across several confirmation samples.
// Because a blocked thread can only be woken by another thread completing a
// push or pop (which bumps the counter), this condition is stable: once all
// live threads block with no progress, no future progress is possible.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>

namespace sdaf::runtime {

class RuntimeMonitor {
 public:
  void thread_started() { live_.fetch_add(1, std::memory_order_relaxed); }
  void thread_finished() { live_.fetch_sub(1, std::memory_order_relaxed); }

  void enter_blocked() { blocked_.fetch_add(1, std::memory_order_relaxed); }
  void exit_blocked() { blocked_.fetch_sub(1, std::memory_order_relaxed); }

  void note_progress() { progress_.fetch_add(1, std::memory_order_relaxed); }

  [[nodiscard]] std::uint64_t progress() const {
    return progress_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] int live() const {
    return live_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] int blocked() const {
    return blocked_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> progress_{0};
  std::atomic<int> blocked_{0};
  std::atomic<int> live_{0};
};

struct WatchdogOptions {
  std::chrono::milliseconds tick{2};
  // Consecutive all-blocked/no-progress samples before declaring deadlock.
  int confirm_ticks = 30;
};

// Runs until `stop` becomes true or deadlock is confirmed; on deadlock
// invokes `on_deadlock` (which should abort all channels) and returns true.
bool run_watchdog(RuntimeMonitor& monitor, const std::atomic<bool>& stop,
                  const WatchdogOptions& options,
                  const std::function<void()>& on_deadlock);

// RAII guard for blocked sections.
class BlockedScope {
 public:
  explicit BlockedScope(RuntimeMonitor* m) : m_(m) {
    if (m_ != nullptr) m_->enter_blocked();
  }
  ~BlockedScope() {
    if (m_ != nullptr) m_->exit_blocked();
  }
  BlockedScope(const BlockedScope&) = delete;
  BlockedScope& operator=(const BlockedScope&) = delete;

 private:
  RuntimeMonitor* m_;
};

}  // namespace sdaf::runtime
