#include "src/runtime/kernel.h"

#include "src/support/contracts.h"

namespace sdaf::runtime {

void Emitter::emit(std::size_t slot, Value v) {
  SDAF_EXPECTS(slot < values_.size());
  SDAF_EXPECTS(!values_[slot].has_value());  // one message per seq per edge
  values_[slot] = std::move(v);
}

const std::optional<Value>& Emitter::value(std::size_t slot) const {
  SDAF_EXPECTS(slot < values_.size());
  return values_[slot];
}

Value Emitter::take(std::size_t slot) {
  SDAF_EXPECTS(slot < values_.size());
  SDAF_EXPECTS(values_[slot].has_value());
  Value v = std::move(*values_[slot]);
  values_[slot].reset();
  return v;
}

void Emitter::reset() {
  for (auto& v : values_) v.reset();
}

namespace {

Value first_present_or_seq(std::uint64_t seq,
                           const std::vector<std::optional<Value>>& inputs) {
  for (const auto& in : inputs)
    if (in.has_value()) return *in;
  return Value(static_cast<std::int64_t>(seq));
}

}  // namespace

void RelayKernel::fire(std::uint64_t seq,
                       const std::vector<std::optional<Value>>& inputs,
                       Emitter& out) {
  const Value v = first_present_or_seq(seq, inputs);
  for (std::size_t slot = 0; slot < out.slots(); ++slot)
    if (pass_(seq, slot)) out.emit(slot, v);
}

void WorkKernel::fire(std::uint64_t seq,
                      const std::vector<std::optional<Value>>& inputs,
                      Emitter& out) {
  // Volatile sink defeats the optimizer; the loop models per-item compute.
  volatile std::uint64_t acc = seq;
  for (std::uint64_t i = 0; i < spin_; ++i) acc = acc * 2862933555777941757ULL + 3037000493ULL;
  (void)acc;
  const Value v = first_present_or_seq(seq, inputs);
  for (std::size_t slot = 0; slot < out.slots(); ++slot)
    if (pass_(seq, slot)) out.emit(slot, v);
}

std::shared_ptr<Kernel> pass_through_kernel() {
  return std::make_shared<RelayKernel>(
      [](std::uint64_t, std::size_t) { return true; });
}

}  // namespace sdaf::runtime
