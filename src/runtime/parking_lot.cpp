#include "src/runtime/parking_lot.h"

#if defined(__linux__)
#include <linux/futex.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cerrno>
#include <ctime>
#else
#include <condition_variable>
#include <cstddef>
#include <mutex>
#endif

namespace sdaf::runtime {

#if defined(__linux__)

namespace {

// The futex interface wants a plain uint32_t*. std::atomic<uint32_t> is
// lock-free and layout-compatible on every platform with a futex; the data
// race the kernel sees is benign (it only compares the value, and every
// caller re-checks through the atomic afterwards).
long futex_call(const std::atomic<std::uint32_t>& word, int op,
                std::uint32_t value, const struct timespec* timeout) {
  static_assert(sizeof(std::atomic<std::uint32_t>) == sizeof(std::uint32_t));
  return syscall(SYS_futex,
                 reinterpret_cast<const std::uint32_t*>(&word),  // NOLINT
                 op, value, timeout, nullptr, 0);
}

}  // namespace

void ParkingLot::park(const std::atomic<std::uint32_t>& word,
                      std::uint32_t expected) {
  futex_call(word, FUTEX_WAIT_PRIVATE, expected, nullptr);
}

bool ParkingLot::park_for(const std::atomic<std::uint32_t>& word,
                          std::uint32_t expected,
                          std::chrono::nanoseconds timeout) {
  if (timeout <= std::chrono::nanoseconds::zero())
    return word.load(std::memory_order_acquire) != expected;
  struct timespec ts;
  const auto secs = std::chrono::duration_cast<std::chrono::seconds>(timeout);
  ts.tv_sec = static_cast<time_t>(secs.count());
  ts.tv_nsec = static_cast<long>((timeout - secs).count());
  const long rc = futex_call(word, FUTEX_WAIT_PRIVATE, expected, &ts);
  return !(rc == -1 && errno == ETIMEDOUT);
}

bool ParkingLot::park_until(const std::atomic<std::uint32_t>& word,
                            std::uint32_t expected,
                            std::chrono::steady_clock::time_point deadline) {
  const auto now = std::chrono::steady_clock::now();
  if (deadline <= now) return word.load(std::memory_order_acquire) != expected;
  return park_for(word, expected, deadline - now);
}

void ParkingLot::wake_one(const std::atomic<std::uint32_t>& word) {
  futex_call(word, FUTEX_WAKE_PRIVATE, 1, nullptr);
}

void ParkingLot::wake_all(const std::atomic<std::uint32_t>& word) {
  futex_call(word, FUTEX_WAKE_PRIVATE, 0x7FFFFFFF, nullptr);
}

#else  // portable fallback: hashed mutex+condvar buckets

namespace {

// Fixed-size bucket table keyed by word address. Collisions only cost
// spurious wake-ups, which every caller tolerates by protocol.
struct Bucket {
  std::mutex mu;
  std::condition_variable cv;
};

constexpr std::size_t kBuckets = 64;

Bucket& bucket_for(const void* addr) {
  static Bucket buckets[kBuckets];
  const auto h = reinterpret_cast<std::uintptr_t>(addr);
  return buckets[(h >> 4) % kBuckets];
}

}  // namespace

void ParkingLot::park(const std::atomic<std::uint32_t>& word,
                      std::uint32_t expected) {
  Bucket& b = bucket_for(&word);
  std::unique_lock lock(b.mu);
  if (word.load(std::memory_order_acquire) != expected) return;
  b.cv.wait(lock, [&] {
    return word.load(std::memory_order_acquire) != expected;
  });
}

bool ParkingLot::park_for(const std::atomic<std::uint32_t>& word,
                          std::uint32_t expected,
                          std::chrono::nanoseconds timeout) {
  return park_until(word, expected,
                    std::chrono::steady_clock::now() + timeout);
}

bool ParkingLot::park_until(const std::atomic<std::uint32_t>& word,
                            std::uint32_t expected,
                            std::chrono::steady_clock::time_point deadline) {
  Bucket& b = bucket_for(&word);
  std::unique_lock lock(b.mu);
  if (word.load(std::memory_order_acquire) != expected) return true;
  return b.cv.wait_until(lock, deadline, [&] {
    return word.load(std::memory_order_acquire) != expected;
  });
}

void ParkingLot::wake_one(const std::atomic<std::uint32_t>& word) {
  Bucket& b = bucket_for(&word);
  std::lock_guard lock(b.mu);
  b.cv.notify_all();  // collisions share the cv; notify_all is the safe form
}

void ParkingLot::wake_all(const std::atomic<std::uint32_t>& word) {
  wake_one(word);
}

#endif

}  // namespace sdaf::runtime
