// Bounded execution tracing: a ring buffer of per-message events
// (firings, data/dummy emissions, consumptions) recorded on any backend.
// Traces make protocol behaviour -- who originated a dummy, where it was
// forwarded, what a node consumed at a given sequence number -- directly
// inspectable in tests and while debugging wedged topologies: the unified
// state_dump embeds the last few events per node when a tracer was armed.
//
// The recorder is a preallocated ring written under a short mutex hold (no
// allocation on record), and snapshot() copies out in bounded chunks so a
// reader never stalls hot workers for the whole ring: writers interleave
// between chunks, and any slot they overwrite while the reader is off-lock
// is simply skipped (the copy stays ordered and duplicate-free, bounded by
// the ring capacity as of the first chunk).
//
// Tracing hooks compile away entirely with -DSDAF_TRACING_ENABLED=0; the
// default build keeps them at the cost of one pointer test per event site.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "src/graph/stream_graph.h"

#ifndef SDAF_TRACING_ENABLED
#define SDAF_TRACING_ENABLED 1
#endif

namespace sdaf::runtime {

inline constexpr bool kTracingEnabled = SDAF_TRACING_ENABLED != 0;

enum class TraceKind : std::uint8_t {
  Fire,           // kernel invocation (seq accepted with data)
  DataSent,       // data emitted on an out-slot
  DummySent,      // dummy emitted (originated or forwarded)
  EosSent,        // end-of-stream flooded on an out-slot
  DataConsumed,   // data popped from an in-slot
  DummyConsumed,  // dummy popped from an in-slot
};

struct TraceEvent {
  TraceKind kind = TraceKind::Fire;
  NodeId node = kNoNode;
  std::size_t slot = 0;  // out-slot for *Sent, in-slot for *Consumed
  std::uint64_t seq = 0;
  std::uint64_t tick = 0;   // simulator sweep number (0 on the live backends)
  std::uint64_t ts_ns = 0;  // steady-clock timestamp on the live backends
                            // (0 in the sim, whose clock is `tick`)

  [[nodiscard]] std::string to_string() const;
};

// Thread-safe bounded recorder; oldest events are dropped when full.
class Tracer {
 public:
  explicit Tracer(std::size_t capacity);

  void record(TraceEvent event);

  // Chunk-copied: events present at the first chunk are returned unless a
  // writer overwrites them mid-copy (those are skipped, never torn).
  [[nodiscard]] std::vector<TraceEvent> snapshot() const;
  [[nodiscard]] std::uint64_t dropped() const;
  [[nodiscard]] std::size_t size() const;

  // Events matching a predicate, convenience for tests.
  [[nodiscard]] std::vector<TraceEvent> filter(TraceKind kind) const;
  [[nodiscard]] std::vector<TraceEvent> for_node(NodeId node) const;
  // The most recent `limit` events for one node, oldest first (state dumps).
  [[nodiscard]] std::vector<TraceEvent> tail_for_node(NodeId node,
                                                      std::size_t limit) const;

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::vector<TraceEvent> ring_;  // capacity_ slots, indexed by next_ % cap
  std::uint64_t next_ = 0;        // total events ever recorded
};

[[nodiscard]] const char* to_string(TraceKind kind);

}  // namespace sdaf::runtime
