// Bounded execution tracing: a ring buffer of per-message events
// (firings, data/dummy emissions, consumptions) that the deterministic
// simulator records into on request. Traces make protocol behaviour --
// who originated a dummy, where it was forwarded, what a node consumed at
// a given sequence number -- directly inspectable in tests and while
// debugging wedged topologies.
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "src/graph/stream_graph.h"

namespace sdaf::runtime {

enum class TraceKind : std::uint8_t {
  Fire,           // kernel invocation (seq accepted with data)
  DataSent,       // data emitted on an out-slot
  DummySent,      // dummy emitted (originated or forwarded)
  EosSent,        // end-of-stream flooded on an out-slot
  DataConsumed,   // data popped from an in-slot
  DummyConsumed,  // dummy popped from an in-slot
};

struct TraceEvent {
  TraceKind kind = TraceKind::Fire;
  NodeId node = kNoNode;
  std::size_t slot = 0;  // out-slot for *Sent, in-slot for *Consumed
  std::uint64_t seq = 0;
  std::uint64_t tick = 0;  // simulator sweep number

  [[nodiscard]] std::string to_string() const;
};

// Thread-safe bounded recorder; oldest events are dropped when full.
class Tracer {
 public:
  explicit Tracer(std::size_t capacity);

  void record(TraceEvent event);

  [[nodiscard]] std::vector<TraceEvent> snapshot() const;
  [[nodiscard]] std::uint64_t dropped() const;
  [[nodiscard]] std::size_t size() const;

  // Events matching a predicate, convenience for tests.
  [[nodiscard]] std::vector<TraceEvent> filter(TraceKind kind) const;
  [[nodiscard]] std::vector<TraceEvent> for_node(NodeId node) const;

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::deque<TraceEvent> events_;
  std::uint64_t dropped_ = 0;
};

[[nodiscard]] const char* to_string(TraceKind kind);

}  // namespace sdaf::runtime
