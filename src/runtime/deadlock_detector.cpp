#include "src/runtime/deadlock_detector.h"

#include <thread>

namespace sdaf::runtime {

bool run_watchdog(RuntimeMonitor& monitor, const std::atomic<bool>& stop,
                  const WatchdogOptions& options,
                  const std::function<void()>& on_deadlock) {
  int suspicious_ticks = 0;
  std::uint64_t last_progress = monitor.progress();
  while (!stop.load(std::memory_order_relaxed)) {
    std::this_thread::sleep_for(options.tick);
    const int live = monitor.live();
    const int blocked = monitor.blocked();
    const std::uint64_t progress = monitor.progress();
    if (live > 0 && blocked == live && progress == last_progress) {
      if (++suspicious_ticks >= options.confirm_ticks) {
        on_deadlock();
        return true;
      }
    } else {
      suspicious_ticks = 0;
    }
    last_progress = progress;
  }
  return false;
}

}  // namespace sdaf::runtime
