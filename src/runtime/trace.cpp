#include "src/runtime/trace.h"

#include "src/support/contracts.h"

namespace sdaf::runtime {

const char* to_string(TraceKind kind) {
  switch (kind) {
    case TraceKind::Fire:
      return "fire";
    case TraceKind::DataSent:
      return "data_sent";
    case TraceKind::DummySent:
      return "dummy_sent";
    case TraceKind::EosSent:
      return "eos_sent";
    case TraceKind::DataConsumed:
      return "data_consumed";
    case TraceKind::DummyConsumed:
      return "dummy_consumed";
  }
  return "?";
}

std::string TraceEvent::to_string() const {
  return "t=" + std::to_string(tick) + " node=" + std::to_string(node) +
         " " + runtime::to_string(kind) + " slot=" + std::to_string(slot) +
         " seq=" + std::to_string(seq);
}

Tracer::Tracer(std::size_t capacity) : capacity_(capacity) {
  SDAF_EXPECTS(capacity >= 1);
}

void Tracer::record(TraceEvent event) {
  std::lock_guard lock(mu_);
  if (events_.size() >= capacity_) {
    events_.pop_front();
    ++dropped_;
  }
  events_.push_back(event);
}

std::vector<TraceEvent> Tracer::snapshot() const {
  std::lock_guard lock(mu_);
  return {events_.begin(), events_.end()};
}

std::uint64_t Tracer::dropped() const {
  std::lock_guard lock(mu_);
  return dropped_;
}

std::size_t Tracer::size() const {
  std::lock_guard lock(mu_);
  return events_.size();
}

std::vector<TraceEvent> Tracer::filter(TraceKind kind) const {
  std::lock_guard lock(mu_);
  std::vector<TraceEvent> out;
  for (const auto& e : events_)
    if (e.kind == kind) out.push_back(e);
  return out;
}

std::vector<TraceEvent> Tracer::for_node(NodeId node) const {
  std::lock_guard lock(mu_);
  std::vector<TraceEvent> out;
  for (const auto& e : events_)
    if (e.node == node) out.push_back(e);
  return out;
}

}  // namespace sdaf::runtime
