#include "src/runtime/trace.h"

#include <algorithm>

#include "src/support/contracts.h"

namespace sdaf::runtime {

const char* to_string(TraceKind kind) {
  switch (kind) {
    case TraceKind::Fire:
      return "fire";
    case TraceKind::DataSent:
      return "data_sent";
    case TraceKind::DummySent:
      return "dummy_sent";
    case TraceKind::EosSent:
      return "eos_sent";
    case TraceKind::DataConsumed:
      return "data_consumed";
    case TraceKind::DummyConsumed:
      return "dummy_consumed";
  }
  return "?";
}

std::string TraceEvent::to_string() const {
  std::string out = "t=" + std::to_string(tick) +
                    " node=" + std::to_string(node) + " " +
                    runtime::to_string(kind) +
                    " slot=" + std::to_string(slot) +
                    " seq=" + std::to_string(seq);
  if (ts_ns != 0) out += " ts_ns=" + std::to_string(ts_ns);
  return out;
}

Tracer::Tracer(std::size_t capacity)
    : capacity_(capacity), ring_(capacity) {
  SDAF_EXPECTS(capacity >= 1);
}

void Tracer::record(TraceEvent event) {
  std::lock_guard lock(mu_);
  ring_[next_ % capacity_] = event;
  ++next_;
}

std::vector<TraceEvent> Tracer::snapshot() const {
  // Copy out at most kChunk events per lock hold so hot writers only ever
  // wait a bounded time. The first hold fixes the range [cursor, end): the
  // snapshot's contents are the events present at that instant. Between
  // holds, writers may lap the reader; slots they overwrote are skipped by
  // advancing the cursor to the new oldest-surviving event.
  constexpr std::uint64_t kChunk = 256;
  std::vector<TraceEvent> out;
  std::uint64_t cursor = 0;
  std::uint64_t end = 0;
  bool primed = false;
  for (;;) {
    std::unique_lock lock(mu_);
    if (!primed) {
      end = next_;
      cursor = end > capacity_ ? end - capacity_ : 0;
      out.reserve(static_cast<std::size_t>(end - cursor));
      primed = true;
    }
    const std::uint64_t oldest = next_ > capacity_ ? next_ - capacity_ : 0;
    cursor = std::max(cursor, oldest);
    if (cursor >= end) break;
    const std::uint64_t n = std::min(kChunk, end - cursor);
    for (std::uint64_t i = 0; i < n; ++i)
      out.push_back(ring_[(cursor + i) % capacity_]);
    cursor += n;
  }
  return out;
}

std::uint64_t Tracer::dropped() const {
  std::lock_guard lock(mu_);
  return next_ > capacity_ ? next_ - capacity_ : 0;
}

std::size_t Tracer::size() const {
  std::lock_guard lock(mu_);
  return static_cast<std::size_t>(std::min<std::uint64_t>(next_, capacity_));
}

std::vector<TraceEvent> Tracer::filter(TraceKind kind) const {
  std::vector<TraceEvent> out;
  for (const auto& e : snapshot())
    if (e.kind == kind) out.push_back(e);
  return out;
}

std::vector<TraceEvent> Tracer::for_node(NodeId node) const {
  std::vector<TraceEvent> out;
  for (const auto& e : snapshot())
    if (e.node == node) out.push_back(e);
  return out;
}

std::vector<TraceEvent> Tracer::tail_for_node(NodeId node,
                                              std::size_t limit) const {
  std::vector<TraceEvent> matching = for_node(node);
  if (matching.size() > limit)
    matching.erase(matching.begin(),
                   matching.end() - static_cast<std::ptrdiff_t>(limit));
  return matching;
}

}  // namespace sdaf::runtime
