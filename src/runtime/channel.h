// Bounded FIFO channel: the finite buffer of the paper's model. Exactly one
// producer and one consumer thread per channel (the edge's endpoints).
// Blocking operations report to the RuntimeMonitor so the watchdog can
// certify deadlock; abort() releases all waiters, which then unwind.
//
// Storage is a runtime::MessageRing: fixed-capacity, allocation-free after
// construction, with consecutive dummy runs coalesced into one segment.
// Occupancy, full() and the stats still count logical messages, so the
// paper's buffer-size semantics (and deadlock certification) are untouched;
// the batch operations (try_push_dummies / pop_dummies) let a run of k
// dummies cross the channel with one lock acquisition and one wake-up
// instead of k of each.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <optional>

#include "src/runtime/deadlock_detector.h"
#include "src/runtime/message.h"
#include "src/runtime/message_ring.h"

namespace sdaf::runtime {

struct ChannelStats {
  std::uint64_t data_pushed = 0;
  std::uint64_t dummies_pushed = 0;  // counts k for a coalesced run of k
  std::int64_t max_occupancy = 0;    // logical messages, not segments
};

// Wakeup channel from a node's output channels back to the node: a firing's
// outputs are delivered per-channel asynchronously (whatever fits goes out;
// the rest is retried), so a producer blocked on one full channel must wake
// when *any* of its channels frees space. The version counter closes the
// check-then-wait race.
struct ProducerSignal {
  std::mutex mu;
  std::condition_variable cv;
  std::uint64_t version = 0;
  bool aborted = false;

  void bump(bool abort_flag = false) {
    {
      std::lock_guard lock(mu);
      ++version;
      if (abort_flag) aborted = true;
    }
    cv.notify_all();
  }
};

enum class PushResult : std::uint8_t { Ok, Full, Aborted };

class BoundedChannel {
 public:
  BoundedChannel(std::size_t capacity, RuntimeMonitor* monitor);

  // Blocks while full. Returns false iff the channel was aborted.
  [[nodiscard]] bool push(Message m);

  // Non-blocking push used by the per-channel-asynchronous emission path;
  // consumes `m` only on Ok. When `was_empty` is non-null it is set to
  // whether the push made the channel transition empty -> non-empty (the
  // edge a pooled scheduler must turn into a consumer wake-up).
  [[nodiscard]] PushResult try_push(Message&& m, bool* was_empty = nullptr);

  // Non-blocking batch push of up to `count` dummies first_seq,
  // first_seq+1, ...: one lock, one coalesced segment, one notify. Returns
  // how many were accepted (0 when full or aborted); `aborted` reports the
  // abort case so a caller can distinguish it from a full channel.
  [[nodiscard]] std::size_t try_push_dummies(std::uint64_t first_seq,
                                             std::size_t count,
                                             bool* was_empty = nullptr,
                                             bool* aborted = nullptr);

  // Payload-free head views -- alignment never copies a payload.
  // try_peek_head: empty when the channel holds no messages (never blocks,
  // never reports to the monitor -- the caller parks instead).
  // peek_head_wait: blocks while empty; empty optional iff aborted.
  [[nodiscard]] std::optional<HeadView> try_peek_head() const;
  [[nodiscard]] std::optional<HeadView> peek_head_wait();

  // Full copy of the head, for state dumps and tests. Heads remaining
  // after abort() are still observable (the consumer drains them while
  // unwinding).
  [[nodiscard]] std::optional<Message> try_peek() const;

  // Removes the head and returns it in one critical section (no
  // peek-then-pop double copy). Precondition: a preceding peek by the
  // (single) consumer observed a head. `was_full` reports whether the
  // channel was full before the pop (the edge a pooled scheduler must turn
  // into a producer wake-up).
  [[nodiscard]] Message pop_head(bool* was_full = nullptr);

  // Removes the head, discarding it. Precondition: as for pop_head.
  // Returns whether the channel was full before the pop.
  bool pop();

  // Removes up to `count` dummies from the head run in one critical
  // section with one producer wake-up. Returns {popped, was_full}.
  struct PopRun {
    std::size_t popped = 0;
    bool was_full = false;
  };
  PopRun pop_dummies(std::size_t count);

  // Registers the producing node's wakeup signal; bumped on every pop and
  // on abort.
  void set_producer_signal(ProducerSignal* signal);

  void abort();
  [[nodiscard]] bool aborted() const;

  // Instantaneous occupancy tests (non-blocking; for scheduler probes).
  // All logical-message counts: a coalesced run of k dummies counts k.
  [[nodiscard]] bool empty() const;
  [[nodiscard]] bool full() const;
  [[nodiscard]] std::size_t size() const;

  [[nodiscard]] ChannelStats stats() const;
  [[nodiscard]] std::size_t capacity() const { return ring_.capacity(); }

 private:
  void note_occupancy_locked();
  void record_push_locked(const Message& m);

  RuntimeMonitor* monitor_;
  ProducerSignal* producer_signal_ = nullptr;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  MessageRing ring_;
  bool aborted_ = false;
  ChannelStats stats_;
};

}  // namespace sdaf::runtime
