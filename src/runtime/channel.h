// Bounded FIFO channel: the finite buffer of the paper's model. Exactly one
// producer and one consumer thread per channel (the edge's endpoints), which
// is what makes the data path lock-free: all non-blocking operations ride on
// a runtime::SpscRing (atomic head/tail counters over MessageRing-style
// coalescing segment storage) and never take a mutex.
//
// There is no mutex anywhere: the *blocking* operations (push /
// peek_head_wait, used by the thread-per-node backend and tests) park
// futex-style directly on the channel's atomic event words
// (runtime::ParkingLot). Wake-ups are elided with atomic waiter counts: a
// fast-path push or pop never issues a wake syscall unless the opposite
// side has registered as parked, so the hot path of the pooled backend
// (which never blocks inside a channel) pays nothing. The protocol is
// lost-wakeup-free: a waiter captures the event word, registers its count
// with a seq_cst RMW *before* re-checking the ring, and the opposite
// side's counter publish issues a seq_cst fence *before* reading the
// waiter count, so one of the two always observes the other -- "never
// falsely empty for a parked peer" (see docs/SCHEDULER.md).
//
// Occupancy, full() and the stats still count logical messages (a coalesced
// run of k dummies counts k), so the paper's buffer-size semantics -- and
// exact deadlock certification -- are untouched. Occupancy probes
// (empty/full/size) are coherent snapshots, never torn, so the pooled
// scheduler's park-probe protocol and the deadlock state dumps read sizes
// that actually existed. Blocking operations report to the RuntimeMonitor
// so the watchdog can certify deadlock; abort() releases all waiters, which
// then unwind.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>

#include "src/obs/metrics.h"
#include "src/runtime/deadlock_detector.h"
#include "src/runtime/message.h"
#include "src/runtime/parking_lot.h"
#include "src/runtime/spsc_ring.h"

namespace sdaf::runtime {

struct ChannelStats {
  std::uint64_t data_pushed = 0;
  std::uint64_t dummies_pushed = 0;  // counts k for a coalesced run of k
  std::int64_t max_occupancy = 0;    // logical messages, not segments
};

// Wakeup channel from a node's output channels back to the node: a firing's
// outputs are delivered per-channel asynchronously (whatever fits goes out;
// the rest is retried), so a producer blocked on one full channel must wake
// when *any* of its channels frees space. The event word's version counter
// closes the check-then-wait race; the waiter count elides the wake syscall
// on pops when the producer is not parked (the common case). Waiters park
// futex-style on `event.version` -- no mutex, no condition variable.
struct ProducerSignal {
  EventWord event;
  std::atomic<bool> aborted{false};

  // Wake-elision contract: a waiter must (1) capture `event`, (2) register
  // with a seq_cst RMW, (3) re-check for progress, and only then park on
  // the captured value. bump() publishes the version before reading the
  // waiter count across a seq_cst fence, so either the bump sees the
  // registered waiter (and wakes), or the waiter's re-check runs after the
  // pop that bumped -- never both miss.
  void bump(bool abort_flag = false) {
    if (abort_flag) aborted.store(true, std::memory_order_release);
    event.bump();
  }
};

enum class PushResult : std::uint8_t { Ok, Full, Aborted };

class BoundedChannel {
 public:
  BoundedChannel(std::size_t capacity, RuntimeMonitor* monitor);

  // Blocks while full. Returns false iff the channel was aborted.
  [[nodiscard]] bool push(Message m);

  // Non-blocking push used by the per-channel-asynchronous emission path;
  // consumes `m` only on Ok. When `was_empty` is non-null it is set to
  // whether the push made the channel transition empty -> non-empty (the
  // edge a pooled scheduler must turn into a consumer wake-up; may be
  // spuriously true under concurrency, never falsely false for a parked
  // consumer).
  [[nodiscard]] PushResult try_push(Message&& m, bool* was_empty = nullptr);

  // Non-blocking bulk push of up to `count` data messages: one ring
  // reservation, one counter publish, one (elidable) wake for the whole
  // batch. Returns how many were accepted (a prefix of msgs is consumed);
  // `aborted` distinguishes an aborted channel from a full one.
  [[nodiscard]] std::size_t try_push_batch(Message* msgs, std::size_t count,
                                           bool* was_empty = nullptr,
                                           bool* aborted = nullptr);

  // Non-blocking batch push of up to `count` dummies first_seq,
  // first_seq+1, ...: one coalesced segment, one (elidable) wake. Returns
  // how many were accepted (0 when full or aborted); `aborted` reports the
  // abort case so a caller can distinguish it from a full channel.
  [[nodiscard]] std::size_t try_push_dummies(std::uint64_t first_seq,
                                             std::size_t count,
                                             bool* was_empty = nullptr,
                                             bool* aborted = nullptr);

  // Non-blocking push of a snapshot barrier marker (ckpt). Markers are
  // occupancy-neutral (they never count against the certified capacity and
  // ride the ring's extra physical segment), so with the snapshot plane's
  // at-most-one-marker-per-channel invariant this returns Full only in the
  // transient where the previous marker is still in flight. On success the
  // channel also latches its cumulative push counters as the edge's marker
  // cut (see marker_cut_stats): the producer-side capture point is exactly
  // the consistent-cut boundary, and it is ordered before the consumer can
  // observe the marker.
  [[nodiscard]] PushResult try_push_marker(std::uint64_t seq,
                                           bool* was_empty = nullptr);

  // Payload-free head views -- alignment never copies a payload. Consumer
  // side only.
  // try_peek_head: empty when the channel holds no messages (never blocks,
  // never reports to the monitor -- the caller parks instead).
  // peek_head_wait: blocks while empty; empty optional iff aborted.
  [[nodiscard]] std::optional<HeadView> try_peek_head() const;
  [[nodiscard]] std::optional<HeadView> peek_head_wait();

  // Full copy of the head, for state dumps and tests. Heads remaining
  // after abort() are still observable (the consumer drains them while
  // unwinding).
  [[nodiscard]] std::optional<Message> try_peek() const;

  // Removes the head and returns it (payload moved out, no copy).
  // Precondition: a preceding peek by the (single) consumer observed a
  // head. `was_full` reports whether the channel was full before the pop
  // (the edge a pooled scheduler must turn into a producer wake-up; may be
  // spuriously true, never falsely false for a parked producer).
  [[nodiscard]] Message pop_head(bool* was_full = nullptr);

  // Removes the head, discarding it. Precondition: as for pop_head.
  // Returns whether the channel was full before the pop.
  bool pop();

  // Removes up to `count` dummies from the head run with one producer
  // wake-up. Returns {popped, was_full}.
  struct PopRun {
    std::size_t popped = 0;
    bool was_full = false;
  };
  PopRun pop_dummies(std::size_t count);

  // Registers the producing node's wakeup signal; bumped on every pop and
  // on abort.
  void set_producer_signal(ProducerSignal* signal);

  // Consumer-side drain notification (qos credit return): invoked by the
  // consumer thread after each *data* message leaves the channel via
  // pop_head (feeds are consumed exclusively through pop_head, so this
  // covers every item a port pushed). Dummies, EOS and markers never carry
  // a credit and never fire it. Not owned; must be set before the
  // endpoints start running, like set_metrics.
  struct DrainHook {
    virtual ~DrainHook() = default;
    virtual void on_data_drained(std::size_t n) = 0;
  };
  void set_drain_hook(DrainHook* hook);

  // Attaches the edge's obs counter shard (not owned; null detaches). The
  // channel mirrors pushes/pops/stalls/waits/high-water into it with relaxed
  // single-writer increments -- one predictable branch per op when detached.
  // Must be set before the endpoints start running (no concurrent attach).
  void set_metrics(obs::ChannelCounters* metrics);

  void abort();
  [[nodiscard]] bool aborted() const;

  // Instantaneous occupancy tests (non-blocking, any thread; coherent
  // snapshots -- for scheduler probes and state dumps). All logical-message
  // counts: a coalesced run of k dummies counts k.
  [[nodiscard]] bool empty() const;
  [[nodiscard]] bool full() const;
  [[nodiscard]] std::size_t size() const;

  [[nodiscard]] ChannelStats stats() const;
  [[nodiscard]] std::size_t capacity() const { return ring_.capacity(); }

  // Cumulative {data_pushed, dummies_pushed} latched by the most recent
  // successful try_push_marker -- the edge's traffic totals at the snapshot
  // cut. Safe to read once the marker's downstream node has checkpointed
  // (the capture is sequenced before the marker publish, and the reader
  // synchronizes via the plane's completion protocol).
  [[nodiscard]] ChannelStats marker_cut_stats() const;

  // Restore plumbing (ckpt): preloads the cumulative push counters with a
  // snapshot's edge cut so a restored run's final totals continue the
  // pre-crash ones. Pre-start only (no concurrent endpoint).
  void restore_stats(std::uint64_t data_pushed, std::uint64_t dummies_pushed);

 private:
  void record_push(MessageKind kind, std::size_t count,
                   const SpscRing::PushEffect& effect);
  void notify_not_empty();
  void notify_not_full();

  RuntimeMonitor* monitor_;
  ProducerSignal* producer_signal_ = nullptr;
  obs::ChannelCounters* metrics_ = nullptr;
  DrainHook* drain_hook_ = nullptr;
  // mutable: const peeks are consumer-side operations that may advance the
  // ring's consumer cursor past exhausted segments.
  mutable SpscRing ring_;
  std::atomic<bool> aborted_{false};

  // Stats are producer-written atomics so probes and state dumps read them
  // without tearing. Push counters are exact at quiescence; max_occupancy
  // is a conservative high-water mark (exact when pushes and pops do not
  // race; never misses a genuine peak -- see SpscRing::PushEffect).
  std::atomic<std::uint64_t> data_pushed_{0};
  std::atomic<std::uint64_t> dummies_pushed_{0};
  std::atomic<std::int64_t> max_occupancy_{0};

  // Edge cut latched at the marker crossing (producer-written; see
  // try_push_marker / marker_cut_stats).
  std::atomic<std::uint64_t> cut_data_pushed_{0};
  std::atomic<std::uint64_t> cut_dummies_pushed_{0};

  // Slow path only: futex-parked event words for the blocking ops. The
  // elided bumps are sound because SpscRing's publish/finish_pop each issue
  // a seq_cst fence before the waiter-count read (see EventWord).
  EventWord not_full_;
  EventWord not_empty_;
};

}  // namespace sdaf::runtime
