// Bounded FIFO channel: the finite buffer of the paper's model. Exactly one
// producer and one consumer thread per channel (the edge's endpoints).
// Blocking operations report to the RuntimeMonitor so the watchdog can
// certify deadlock; abort() releases all waiters, which then unwind.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>

#include "src/runtime/deadlock_detector.h"
#include "src/runtime/message.h"

namespace sdaf::runtime {

struct ChannelStats {
  std::uint64_t data_pushed = 0;
  std::uint64_t dummies_pushed = 0;
  std::int64_t max_occupancy = 0;
};

// Wakeup channel from a node's output channels back to the node: a firing's
// outputs are delivered per-channel asynchronously (whatever fits goes out;
// the rest is retried), so a producer blocked on one full channel must wake
// when *any* of its channels frees space. The version counter closes the
// check-then-wait race.
struct ProducerSignal {
  std::mutex mu;
  std::condition_variable cv;
  std::uint64_t version = 0;
  bool aborted = false;

  void bump(bool abort_flag = false) {
    {
      std::lock_guard lock(mu);
      ++version;
      if (abort_flag) aborted = true;
    }
    cv.notify_all();
  }
};

enum class PushResult : std::uint8_t { Ok, Full, Aborted };

class BoundedChannel {
 public:
  BoundedChannel(std::size_t capacity, RuntimeMonitor* monitor);

  // Blocks while full. Returns false iff the channel was aborted.
  [[nodiscard]] bool push(Message m);

  // Non-blocking push used by the per-channel-asynchronous emission path;
  // copies only on success. When `was_empty` is non-null it is set to
  // whether the push made the channel transition empty -> non-empty (the
  // edge a pooled scheduler must turn into a consumer wake-up).
  [[nodiscard]] PushResult try_push(const Message& m,
                                    bool* was_empty = nullptr);

  // Non-blocking consumer path for cooperatively scheduled nodes: a copy of
  // the head, or empty when the channel holds no messages. Like peek_wait,
  // heads remaining after abort() are still observable (the consumer drains
  // them while unwinding). Never reports to the monitor -- the caller parks
  // instead of blocking.
  [[nodiscard]] std::optional<Message> try_peek() const;

  // Registers the producing node's wakeup signal; bumped on every pop and
  // on abort.
  void set_producer_signal(ProducerSignal* signal);

  // Blocks while empty; returns a copy of the head without removing it.
  // Empty optional iff aborted.
  [[nodiscard]] std::optional<Message> peek_wait();

  // Removes the head. Precondition: a preceding peek_wait()/try_peek() by
  // the (single) consumer observed a head, so the queue is non-empty.
  // Returns whether the channel was full before the pop (the edge a pooled
  // scheduler must turn into a producer wake-up).
  bool pop();

  void abort();
  [[nodiscard]] bool aborted() const;

  // Instantaneous occupancy tests (non-blocking; for scheduler probes).
  [[nodiscard]] bool empty() const;
  [[nodiscard]] bool full() const;
  [[nodiscard]] std::size_t size() const;

  [[nodiscard]] ChannelStats stats() const;
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  void record_push(const Message& m);

  const std::size_t capacity_;
  RuntimeMonitor* monitor_;
  ProducerSignal* producer_signal_ = nullptr;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<Message> queue_;
  bool aborted_ = false;
  ChannelStats stats_;
};

}  // namespace sdaf::runtime
