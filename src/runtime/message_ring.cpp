#include "src/runtime/message_ring.h"

#include <algorithm>

#include "src/support/contracts.h"

namespace sdaf::runtime {

MessageRing::MessageRing(std::size_t capacity)
    : capacity_(capacity), segs_(capacity + 1) {
  SDAF_EXPECTS(capacity >= 1);
}

HeadView MessageRing::head() const {
  SDAF_EXPECTS(!empty());
  const Segment& s = segs_[head_];
  return HeadView{s.msg.seq, s.msg.kind, s.run};
}

Message MessageRing::head_message() const {
  SDAF_EXPECTS(!empty());
  const Segment& s = segs_[head_];
  return s.run > 1 ? Message::dummy(s.msg.seq) : s.msg;
}

Message MessageRing::tail_message() const {
  SDAF_EXPECTS(!empty());
  const Segment& s = tail();
  return s.run > 1 ? Message::dummy(s.msg.seq + s.run - 1) : s.msg;
}

void MessageRing::push(Message m) {
  SDAF_EXPECTS(!full());
  if (m.kind == MessageKind::Dummy && nsegs_ > 0) {
    Segment& t = tail();
    if (t.msg.kind == MessageKind::Dummy && t.msg.seq + t.run == m.seq) {
      ++t.run;
      ++size_;
      return;
    }
  }
  Segment& s = segs_[wrap(head_ + nsegs_)];
  s.msg = std::move(m);
  s.run = 1;
  ++nsegs_;
  ++size_;
}

std::size_t MessageRing::push_dummies(std::uint64_t first_seq,
                                      std::size_t count) {
  const std::size_t accepted = std::min(count, free_space());
  if (accepted == 0) return 0;
  if (nsegs_ > 0) {
    Segment& t = tail();
    if (t.msg.kind == MessageKind::Dummy && t.msg.seq + t.run == first_seq) {
      t.run += static_cast<std::uint32_t>(accepted);
      size_ += accepted;
      return accepted;
    }
  }
  Segment& s = segs_[wrap(head_ + nsegs_)];
  s.msg = Message::dummy(first_seq);
  s.run = static_cast<std::uint32_t>(accepted);
  ++nsegs_;
  size_ += accepted;
  return accepted;
}

bool MessageRing::push_marker(std::uint64_t seq) {
  if (nsegs_ >= capacity_ + 1) return false;
  Segment& s = segs_[wrap(head_ + nsegs_)];
  s.msg = Message::marker(seq);
  s.run = 1;
  ++nsegs_;
  ++markers_;
  return true;
}

void MessageRing::drop_head_segment() {
  segs_[head_].msg = Message{};  // release any payload eagerly
  segs_[head_].run = 1;
  head_ = wrap(head_ + 1);
  --nsegs_;
}

Message MessageRing::pop_head() {
  SDAF_EXPECTS(!empty());
  Segment& s = segs_[head_];
  if (s.msg.kind == MessageKind::Marker) {
    --markers_;  // occupancy-neutral: size_ never counted it
  } else {
    --size_;
  }
  if (s.run > 1) {
    Message m = Message::dummy(s.msg.seq);
    ++s.msg.seq;
    --s.run;
    return m;
  }
  Message m = std::move(s.msg);
  drop_head_segment();
  return m;
}

void MessageRing::pop() {
  SDAF_EXPECTS(!empty());
  Segment& s = segs_[head_];
  if (s.msg.kind == MessageKind::Marker) {
    --markers_;
  } else {
    --size_;
  }
  if (s.run > 1) {
    ++s.msg.seq;
    --s.run;
    return;
  }
  drop_head_segment();
}

std::size_t MessageRing::pop_dummies(std::size_t count) {
  if (empty() || count == 0) return 0;
  Segment& s = segs_[head_];
  if (s.msg.kind != MessageKind::Dummy) return 0;
  const std::size_t popped = std::min<std::size_t>(count, s.run);
  size_ -= popped;
  if (popped == s.run) {
    drop_head_segment();
  } else {
    s.msg.seq += popped;
    s.run -= static_cast<std::uint32_t>(popped);
  }
  return popped;
}

}  // namespace sdaf::runtime
