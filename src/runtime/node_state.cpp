#include "src/runtime/node_state.h"

#include "src/support/contracts.h"

namespace sdaf::runtime {

NodeState::NodeState(NodeId node, Kernel& kernel,
                     std::vector<BoundedChannel*> ins,
                     std::vector<BoundedChannel*> outs, BoundedChannel* feed,
                     NodeWrapper wrapper, std::uint64_t num_inputs,
                     std::vector<NodeId> in_producers,
                     std::vector<NodeId> out_consumers, Waker* waker,
                     std::uint32_t batch, Tracer* tracer,
                     obs::NodeCounters* metrics)
    : ins_(std::move(ins)),
      outs_(std::move(outs)),
      feed_(feed),
      in_producers_(std::move(in_producers)),
      out_consumers_(std::move(out_consumers)),
      waker_(waker),
      core_(node, kernel, ins_.size(), outs_.size(), std::move(wrapper),
            num_inputs, *this, batch, tracer, /*tick=*/nullptr,
            /*port_fed=*/feed != nullptr, metrics) {
  SDAF_EXPECTS(in_producers_.size() == ins_.size());
  SDAF_EXPECTS(out_consumers_.size() == outs_.size());
  SDAF_EXPECTS(waker_ != nullptr);
}

std::optional<HeadView> NodeState::peek_head(std::size_t slot,
                                             bool /*may_wait*/) {
  return ins_[slot]->try_peek_head();  // empty = parked until input fills
}

Message NodeState::pop_head(std::size_t slot) {
  bool was_full = false;
  Message m = ins_[slot]->pop_head(&was_full);
  if (was_full) waker_->wake(in_producers_[slot]);
  return m;
}

void NodeState::pop(std::size_t slot) {
  if (ins_[slot]->pop()) waker_->wake(in_producers_[slot]);
}

void NodeState::pop_dummies(std::size_t slot, std::size_t count) {
  const auto run = ins_[slot]->pop_dummies(count);
  SDAF_ASSERT(run.popped == count);
  if (run.was_full) waker_->wake(in_producers_[slot]);
}

exec::PushOutcome NodeState::try_push(std::size_t slot, Message&& m) {
  bool was_empty = false;
  // Markers ride their own channel entry point: occupancy-neutral admission
  // plus the producer-side edge-cut latch (see BoundedChannel).
  const PushResult result =
      m.kind == MessageKind::Marker
          ? outs_[slot]->try_push_marker(m.seq, &was_empty)
          : outs_[slot]->try_push(std::move(m), &was_empty);
  switch (result) {
    case PushResult::Ok:
      // kNoNode = egress tap: the consumer is the external caller, woken
      // through the channel's own condition variable, not the scheduler.
      if (was_empty && out_consumers_[slot] != kNoNode)
        waker_->wake(out_consumers_[slot]);
      return exec::PushOutcome::Delivered;
    case PushResult::Aborted:
      return exec::PushOutcome::Aborted;
    case PushResult::Full:
    default:
      return exec::PushOutcome::Blocked;
  }
}

std::size_t NodeState::try_push_dummies(std::size_t slot,
                                        std::uint64_t first_seq,
                                        std::size_t count,
                                        exec::PushOutcome* outcome) {
  bool was_empty = false;
  bool chan_aborted = false;
  const std::size_t accepted =
      outs_[slot]->try_push_dummies(first_seq, count, &was_empty,
                                    &chan_aborted);
  if (accepted > 0 && was_empty && out_consumers_[slot] != kNoNode)
    waker_->wake(out_consumers_[slot]);
  if (chan_aborted)
    *outcome = exec::PushOutcome::Aborted;
  else
    *outcome = accepted == count ? exec::PushOutcome::Delivered
                                 : exec::PushOutcome::Blocked;
  return accepted;
}

std::optional<HeadView> NodeState::peek_feed(bool /*may_wait*/) {
  return feed_->try_peek_head();  // empty = parked until the caller pushes
}

Message NodeState::pop_feed() {
  // The pop bumps the feed's ProducerSignal inside the channel, which is
  // how a caller blocked in InputPort::push learns space freed up.
  return feed_->pop_head();
}

bool NodeState::probe(std::uint64_t summary) const {
  switch (summary >> exec::kParkTagShift) {
    case exec::kParkDone:
      return false;
    case exec::kParkOutputs: {
      const std::uint64_t mask = summary & exec::kParkSlotMask;
      for (std::size_t slot = 0; slot < outs_.size(); ++slot) {
        const bool relevant =
            slot >= 62 ? mask == exec::kParkSlotMask
                       : (mask & (std::uint64_t{1} << slot)) != 0;
        if (relevant && !outs_[slot]->full()) return true;
      }
      return false;
    }
    default: {  // kParkInputs
      if (feed_ != nullptr && feed_->empty()) return false;
      for (const BoundedChannel* in : ins_)
        if (in->empty()) return false;
      return true;
    }
  }
}

}  // namespace sdaf::runtime
