#include "src/runtime/node_state.h"

#include "src/support/contracts.h"

namespace sdaf::runtime {

NodeState::NodeState(NodeId node, Kernel& kernel,
                     std::vector<BoundedChannel*> ins,
                     std::vector<BoundedChannel*> outs, NodeWrapper wrapper,
                     std::uint64_t num_inputs,
                     std::vector<NodeId> in_producers,
                     std::vector<NodeId> out_consumers, Waker* waker,
                     Tracer* tracer)
    : ins_(std::move(ins)),
      outs_(std::move(outs)),
      in_producers_(std::move(in_producers)),
      out_consumers_(std::move(out_consumers)),
      waker_(waker),
      core_(node, kernel, ins_.size(), outs_.size(), std::move(wrapper),
            num_inputs, *this, tracer) {
  SDAF_EXPECTS(in_producers_.size() == ins_.size());
  SDAF_EXPECTS(out_consumers_.size() == outs_.size());
  SDAF_EXPECTS(waker_ != nullptr);
}

std::optional<Message> NodeState::try_peek(std::size_t slot) {
  return ins_[slot]->try_peek();  // empty = parked until this input fills
}

void NodeState::pop(std::size_t slot) {
  if (ins_[slot]->pop()) waker_->wake(in_producers_[slot]);
}

exec::PushOutcome NodeState::try_push(std::size_t slot, const Message& m) {
  bool was_empty = false;
  switch (outs_[slot]->try_push(m, &was_empty)) {
    case PushResult::Ok:
      if (was_empty) waker_->wake(out_consumers_[slot]);
      return exec::PushOutcome::Delivered;
    case PushResult::Aborted:
      return exec::PushOutcome::Aborted;
    case PushResult::Full:
    default:
      return exec::PushOutcome::Blocked;
  }
}

bool NodeState::probe(std::uint64_t summary) const {
  switch (summary >> exec::kParkTagShift) {
    case exec::kParkDone:
      return false;
    case exec::kParkOutputs: {
      const std::uint64_t mask = summary & exec::kParkSlotMask;
      for (std::size_t slot = 0; slot < outs_.size(); ++slot) {
        const bool relevant =
            slot >= 62 ? mask == exec::kParkSlotMask
                       : (mask & (std::uint64_t{1} << slot)) != 0;
        if (relevant && !outs_[slot]->full()) return true;
      }
      return false;
    }
    default: {  // kParkInputs
      for (const BoundedChannel* in : ins_)
        if (in->empty()) return false;
      return true;
    }
  }
}

}  // namespace sdaf::runtime
