#include "src/runtime/node_state.h"

#include <algorithm>

#include "src/support/contracts.h"

namespace sdaf::runtime {

NodeState::NodeState(NodeId node, Kernel& kernel,
                     std::vector<BoundedChannel*> ins,
                     std::vector<BoundedChannel*> outs, NodeWrapper wrapper,
                     std::uint64_t num_inputs,
                     std::vector<NodeId> in_producers,
                     std::vector<NodeId> out_consumers, Waker* waker)
    : node_(node),
      kernel_(kernel),
      ins_(std::move(ins)),
      outs_(std::move(outs)),
      wrapper_(std::move(wrapper)),
      num_inputs_(num_inputs),
      in_producers_(std::move(in_producers)),
      out_consumers_(std::move(out_consumers)),
      waker_(waker),
      emitter_(outs_.size()),
      inputs_(ins_.size()) {
  SDAF_EXPECTS(in_producers_.size() == ins_.size());
  SDAF_EXPECTS(out_consumers_.size() == outs_.size());
  SDAF_EXPECTS(waker_ != nullptr);
}

void NodeState::queue_outputs(std::uint64_t seq, bool any_input_dummy) {
  for (std::size_t slot = 0; slot < outs_.size(); ++slot) {
    const auto& v = emitter_.value(slot);
    if (v.has_value()) {
      (void)wrapper_.should_send_dummy(slot, seq, /*sent_data=*/true, false);
      pending_.push_back({slot, Message::data(seq, *v)});
    } else if (wrapper_.should_send_dummy(slot, seq, /*sent_data=*/false,
                                          any_input_dummy)) {
      pending_.push_back({slot, Message::dummy(seq)});
    }
  }
}

void NodeState::queue_eos() {
  for (std::size_t slot = 0; slot < outs_.size(); ++slot)
    pending_.push_back({slot, Message::eos()});
  eos_flooded_ = true;
}

bool NodeState::drain_pending() {
  bool progressed = false;
  std::size_t write = 0;
  for (std::size_t i = 0; i < pending_.size(); ++i) {
    PendingMessage& pm = pending_[i];
    bool was_empty = false;
    if (outs_[pm.out_slot]->try_push(pm.message, &was_empty) ==
        PushResult::Ok) {
      progressed = true;
      if (was_empty) waker_->wake(out_consumers_[pm.out_slot]);
    } else {
      pending_[write++] = std::move(pm);
    }
  }
  pending_.resize(write);
  return progressed;
}

bool NodeState::fire_once() {
  if (ins_.empty()) {
    // Source: generates one sequence number per quantum, then EOS.
    if (source_seq_ >= num_inputs_) {
      queue_eos();
      return true;
    }
    emitter_.reset();
    static const std::vector<std::optional<Value>> no_inputs;
    kernel_.fire(source_seq_, no_inputs, emitter_);
    ++fires;
    queue_outputs(source_seq_, /*any_input_dummy=*/false);
    ++source_seq_;
    return true;
  }
  // Interior / sink: alignment needs every input head present.
  std::uint64_t min_seq = kEosSeq;
  heads_.resize(ins_.size());
  for (std::size_t j = 0; j < ins_.size(); ++j) {
    auto head = ins_[j]->try_peek();
    if (!head.has_value()) return false;  // parked until this input fills
    heads_[j] = std::move(*head);
    min_seq = std::min(min_seq, heads_[j].seq);
  }
  if (min_seq == kEosSeq) {
    queue_eos();
    return true;
  }
  bool any_dummy = false;
  bool any_data = false;
  for (std::size_t j = 0; j < ins_.size(); ++j) {
    inputs_[j].reset();
    if (heads_[j].seq != min_seq) continue;  // upstream filtered min_seq
    if (heads_[j].kind == MessageKind::Data) {
      inputs_[j] = std::move(heads_[j].payload);
      any_data = true;
      ++sink_data;
    } else {
      any_dummy = true;
    }
    if (ins_[j]->pop()) waker_->wake(in_producers_[j]);
  }
  emitter_.reset();
  if (any_data) {
    kernel_.fire(min_seq, inputs_, emitter_);
    ++fires;
  }
  queue_outputs(min_seq, any_dummy);
  return true;
}

// Summary encoding: top two bits select the park reason, the low 62 bits
// are a mask of the output slots the node is blocked on (slots >= 62
// degrade to "check every slot"). A node only parks done, output-blocked
// (pending messages for full channels), or input-blocked (some input
// empty); every other situation lets step() progress.
namespace {
constexpr std::uint64_t kParkInputs = 0;
constexpr std::uint64_t kParkDone = 1;
constexpr std::uint64_t kParkOutputs = 2;
constexpr int kSummaryTagShift = 62;
constexpr std::uint64_t kSummaryMask = (std::uint64_t{1} << 62) - 1;
}  // namespace

std::uint64_t NodeState::park_summary() const {
  if (done_) return kParkDone << kSummaryTagShift;
  if (!pending_.empty()) {
    std::uint64_t mask = 0;
    for (const PendingMessage& pm : pending_) {
      if (pm.out_slot >= 62) return (kParkOutputs << kSummaryTagShift) |
                                    kSummaryMask;  // degenerate: check all
      mask |= std::uint64_t{1} << pm.out_slot;
    }
    return (kParkOutputs << kSummaryTagShift) | mask;
  }
  return kParkInputs << kSummaryTagShift;
}

bool NodeState::probe(std::uint64_t summary) const {
  switch (summary >> kSummaryTagShift) {
    case kParkDone:
      return false;
    case kParkOutputs: {
      const std::uint64_t mask = summary & kSummaryMask;
      for (std::size_t slot = 0; slot < outs_.size(); ++slot) {
        const bool relevant =
            slot >= 62 ? mask == kSummaryMask
                       : (mask & (std::uint64_t{1} << slot)) != 0;
        if (relevant && !outs_[slot]->full()) return true;
      }
      return false;
    }
    default: {  // kParkInputs
      for (const BoundedChannel* in : ins_)
        if (in->empty()) return false;
      return true;
    }
  }
}

bool NodeState::step() {
  if (done_) return false;
  // Pending emissions first, per-channel asynchronously: a full channel must
  // not block messages destined for channels with space (same rule as the
  // threaded runner's try_push/retry loop and the simulator).
  if (!pending_.empty()) {
    const bool progressed = drain_pending();
    if (!pending_.empty()) return progressed;
  }
  if (eos_flooded_) {
    done_ = true;
    return true;
  }
  const bool fired = fire_once();
  if (fired && !pending_.empty()) (void)drain_pending();
  return fired;
}

}  // namespace sdaf::runtime
