// Kernel: the user-supplied computation at a node. The wrapper machinery
// (sequence-number alignment, dummy emission and propagation) is entirely
// outside the kernel, exactly as the paper prescribes: "either algorithm
// can be implemented as a wrapper around each computational node ... with
// no participation by the application programmer".
//
// Firing contract: fire(seq, inputs, emitter) is called once per accepted
// sequence number. inputs[j] corresponds to in-edge slot j; an empty
// optional means the producer filtered this sequence number with respect to
// that channel (or a dummy stood in for it). Source nodes are fired with an
// empty input vector for each generated sequence number. Emitting on a
// subset of output slots *is* filtering.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/runtime/message.h"

namespace sdaf::runtime {

class Emitter {
 public:
  explicit Emitter(std::size_t out_slots) : values_(out_slots) {}

  void emit(std::size_t slot, Value v);

  [[nodiscard]] std::size_t slots() const { return values_.size(); }
  [[nodiscard]] const std::optional<Value>& value(std::size_t slot) const;
  // Moves the slot's value out (leaving it empty), so the firing core can
  // build the outgoing message without copying the payload. Precondition:
  // value(slot).has_value().
  [[nodiscard]] Value take(std::size_t slot);
  void reset();

 private:
  std::vector<std::optional<Value>> values_;
};

class Kernel {
 public:
  virtual ~Kernel() = default;
  virtual void fire(std::uint64_t seq,
                    const std::vector<std::optional<Value>>& inputs,
                    Emitter& out) = 0;

  // Checkpoint hooks (ckpt): a stateful kernel serializes its state into an
  // opaque byte blob at a snapshot barrier and rehydrates from it on
  // restore. The default no-ops declare the kernel stateless, which is what
  // every built-in kernel is -- its firings are a pure function of
  // (seq, inputs). save_state is called at a consistent cut (never
  // concurrently with fire); load_state before the first post-restore fire.
  virtual void save_state(std::string& out) const { (void)out; }
  virtual void load_state(const std::string& in) { (void)in; }
};

// Kernel from a lambda.
class LambdaKernel final : public Kernel {
 public:
  using Fn = std::function<void(std::uint64_t,
                                const std::vector<std::optional<Value>>&,
                                Emitter&)>;
  explicit LambdaKernel(Fn fn) : fn_(std::move(fn)) {}
  void fire(std::uint64_t seq,
            const std::vector<std::optional<Value>>& inputs,
            Emitter& out) override {
    fn_(seq, inputs, out);
  }

 private:
  Fn fn_;
};

// Forwards the first present input (or, for sources, a fresh value carrying
// the sequence number) to every output slot the predicate admits. The
// predicate *is* the filtering behaviour: pass(seq, slot) == false filters
// the item with respect to that channel.
class RelayKernel final : public Kernel {
 public:
  using FilterFn = std::function<bool(std::uint64_t seq, std::size_t slot)>;
  explicit RelayKernel(FilterFn pass) : pass_(std::move(pass)) {}
  void fire(std::uint64_t seq,
            const std::vector<std::optional<Value>>& inputs,
            Emitter& out) override;

 private:
  FilterFn pass_;
};

// A relay that additionally burns `spin_iterations` of arithmetic per
// firing; used by the throughput benchmarks to model real per-item work.
class WorkKernel final : public Kernel {
 public:
  WorkKernel(std::uint64_t spin_iterations, RelayKernel::FilterFn pass)
      : spin_(spin_iterations), pass_(std::move(pass)) {}
  void fire(std::uint64_t seq,
            const std::vector<std::optional<Value>>& inputs,
            Emitter& out) override;

 private:
  std::uint64_t spin_;
  RelayKernel::FilterFn pass_;
};

[[nodiscard]] std::shared_ptr<Kernel> pass_through_kernel();

}  // namespace sdaf::runtime
