#include "src/runtime/channel.h"

#include <algorithm>

#include "src/support/contracts.h"

namespace sdaf::runtime {

BoundedChannel::BoundedChannel(std::size_t capacity, RuntimeMonitor* monitor)
    : monitor_(monitor), ring_(capacity) {
  SDAF_EXPECTS(capacity >= 1);
}

void BoundedChannel::set_producer_signal(ProducerSignal* signal) {
  producer_signal_ = signal;
}

void BoundedChannel::note_occupancy_locked() {
  stats_.max_occupancy = std::max(stats_.max_occupancy,
                                  static_cast<std::int64_t>(ring_.size()));
}

void BoundedChannel::record_push_locked(const Message& m) {
  if (m.kind == MessageKind::Data) ++stats_.data_pushed;
  if (m.kind == MessageKind::Dummy) ++stats_.dummies_pushed;
}

bool BoundedChannel::push(Message m) {
  std::unique_lock lock(mu_);
  if (ring_.full() && !aborted_) {
    BlockedScope blocked(monitor_);
    not_full_.wait(lock, [&] { return !ring_.full() || aborted_; });
  }
  if (aborted_) return false;
  record_push_locked(m);
  ring_.push(std::move(m));
  note_occupancy_locked();
  if (monitor_ != nullptr) monitor_->note_progress();
  not_empty_.notify_one();
  return true;
}

PushResult BoundedChannel::try_push(Message&& m, bool* was_empty) {
  std::unique_lock lock(mu_);
  if (aborted_) return PushResult::Aborted;
  if (ring_.full()) return PushResult::Full;
  if (was_empty != nullptr) *was_empty = ring_.empty();
  record_push_locked(m);
  ring_.push(std::move(m));
  note_occupancy_locked();
  if (monitor_ != nullptr) monitor_->note_progress();
  not_empty_.notify_one();
  return PushResult::Ok;
}

std::size_t BoundedChannel::try_push_dummies(std::uint64_t first_seq,
                                             std::size_t count,
                                             bool* was_empty, bool* aborted) {
  std::unique_lock lock(mu_);
  if (aborted != nullptr) *aborted = aborted_;
  if (aborted_) return 0;
  if (was_empty != nullptr) *was_empty = ring_.empty();
  const std::size_t accepted = ring_.push_dummies(first_seq, count);
  if (accepted == 0) return 0;
  stats_.dummies_pushed += accepted;
  note_occupancy_locked();
  if (monitor_ != nullptr) monitor_->note_progress();
  not_empty_.notify_one();
  return accepted;
}

std::optional<HeadView> BoundedChannel::try_peek_head() const {
  std::unique_lock lock(mu_);
  if (ring_.empty()) return std::nullopt;
  return ring_.head();
}

std::optional<HeadView> BoundedChannel::peek_head_wait() {
  std::unique_lock lock(mu_);
  if (ring_.empty() && !aborted_) {
    BlockedScope blocked(monitor_);
    not_empty_.wait(lock, [&] { return !ring_.empty() || aborted_; });
  }
  if (ring_.empty()) return std::nullopt;  // only possible when aborted
  return ring_.head();
}

std::optional<Message> BoundedChannel::try_peek() const {
  std::unique_lock lock(mu_);
  if (ring_.empty()) return std::nullopt;
  return ring_.head_message();
}

Message BoundedChannel::pop_head(bool* was_full) {
  Message m;
  bool full_before;
  {
    std::unique_lock lock(mu_);
    SDAF_EXPECTS(!ring_.empty());
    full_before = ring_.full();
    m = ring_.pop_head();
    if (monitor_ != nullptr) monitor_->note_progress();
    not_full_.notify_one();
  }
  if (producer_signal_ != nullptr) producer_signal_->bump();
  if (was_full != nullptr) *was_full = full_before;
  return m;
}

bool BoundedChannel::pop() {
  bool was_full;
  {
    std::unique_lock lock(mu_);
    SDAF_EXPECTS(!ring_.empty());
    was_full = ring_.full();
    ring_.pop();
    if (monitor_ != nullptr) monitor_->note_progress();
    not_full_.notify_one();
  }
  if (producer_signal_ != nullptr) producer_signal_->bump();
  return was_full;
}

BoundedChannel::PopRun BoundedChannel::pop_dummies(std::size_t count) {
  PopRun result;
  {
    std::unique_lock lock(mu_);
    result.was_full = ring_.full();
    result.popped = ring_.pop_dummies(count);
    if (result.popped == 0) return result;
    if (monitor_ != nullptr) monitor_->note_progress();
    not_full_.notify_one();
  }
  if (producer_signal_ != nullptr) producer_signal_->bump();
  return result;
}

void BoundedChannel::abort() {
  {
    std::unique_lock lock(mu_);
    aborted_ = true;
    not_full_.notify_all();
    not_empty_.notify_all();
  }
  if (producer_signal_ != nullptr) producer_signal_->bump(/*abort_flag=*/true);
}

bool BoundedChannel::aborted() const {
  std::unique_lock lock(mu_);
  return aborted_;
}

bool BoundedChannel::empty() const {
  std::unique_lock lock(mu_);
  return ring_.empty();
}

bool BoundedChannel::full() const {
  std::unique_lock lock(mu_);
  return ring_.full();
}

std::size_t BoundedChannel::size() const {
  std::unique_lock lock(mu_);
  return ring_.size();
}

ChannelStats BoundedChannel::stats() const {
  std::unique_lock lock(mu_);
  return stats_;
}

}  // namespace sdaf::runtime
