#include "src/runtime/channel.h"

#include "src/support/contracts.h"

namespace sdaf::runtime {

BoundedChannel::BoundedChannel(std::size_t capacity, RuntimeMonitor* monitor)
    : capacity_(capacity), monitor_(monitor) {
  SDAF_EXPECTS(capacity >= 1);
}

void BoundedChannel::set_producer_signal(ProducerSignal* signal) {
  producer_signal_ = signal;
}

void BoundedChannel::record_push(const Message& m) {
  if (m.kind == MessageKind::Data) ++stats_.data_pushed;
  if (m.kind == MessageKind::Dummy) ++stats_.dummies_pushed;
}

bool BoundedChannel::push(Message m) {
  std::unique_lock lock(mu_);
  if (queue_.size() >= capacity_ && !aborted_) {
    BlockedScope blocked(monitor_);
    not_full_.wait(lock,
                   [&] { return queue_.size() < capacity_ || aborted_; });
  }
  if (aborted_) return false;
  record_push(m);
  queue_.push_back(std::move(m));
  stats_.max_occupancy =
      std::max(stats_.max_occupancy, static_cast<std::int64_t>(queue_.size()));
  if (monitor_ != nullptr) monitor_->note_progress();
  not_empty_.notify_one();
  return true;
}

PushResult BoundedChannel::try_push(const Message& m, bool* was_empty) {
  std::unique_lock lock(mu_);
  if (aborted_) return PushResult::Aborted;
  if (queue_.size() >= capacity_) return PushResult::Full;
  if (was_empty != nullptr) *was_empty = queue_.empty();
  record_push(m);
  queue_.push_back(m);
  stats_.max_occupancy =
      std::max(stats_.max_occupancy, static_cast<std::int64_t>(queue_.size()));
  if (monitor_ != nullptr) monitor_->note_progress();
  not_empty_.notify_one();
  return PushResult::Ok;
}

std::optional<Message> BoundedChannel::peek_wait() {
  std::unique_lock lock(mu_);
  if (queue_.empty() && !aborted_) {
    BlockedScope blocked(monitor_);
    not_empty_.wait(lock, [&] { return !queue_.empty() || aborted_; });
  }
  if (queue_.empty()) return std::nullopt;  // only possible when aborted
  return queue_.front();
}

std::optional<Message> BoundedChannel::try_peek() const {
  std::unique_lock lock(mu_);
  if (queue_.empty()) return std::nullopt;
  return queue_.front();
}

bool BoundedChannel::pop() {
  bool was_full;
  {
    std::unique_lock lock(mu_);
    SDAF_EXPECTS(!queue_.empty());
    was_full = queue_.size() >= capacity_;
    queue_.pop_front();
    if (monitor_ != nullptr) monitor_->note_progress();
    not_full_.notify_one();
  }
  if (producer_signal_ != nullptr) producer_signal_->bump();
  return was_full;
}

void BoundedChannel::abort() {
  {
    std::unique_lock lock(mu_);
    aborted_ = true;
    not_full_.notify_all();
    not_empty_.notify_all();
  }
  if (producer_signal_ != nullptr) producer_signal_->bump(/*abort_flag=*/true);
}

bool BoundedChannel::aborted() const {
  std::unique_lock lock(mu_);
  return aborted_;
}

bool BoundedChannel::empty() const {
  std::unique_lock lock(mu_);
  return queue_.empty();
}

bool BoundedChannel::full() const {
  std::unique_lock lock(mu_);
  return queue_.size() >= capacity_;
}

std::size_t BoundedChannel::size() const {
  std::unique_lock lock(mu_);
  return queue_.size();
}

ChannelStats BoundedChannel::stats() const {
  std::unique_lock lock(mu_);
  return stats_;
}

}  // namespace sdaf::runtime
