#include "src/runtime/channel.h"

#include <algorithm>

#include "src/support/contracts.h"

namespace sdaf::runtime {

BoundedChannel::BoundedChannel(std::size_t capacity, RuntimeMonitor* monitor)
    : monitor_(monitor), ring_(capacity) {
  SDAF_EXPECTS(capacity >= 1);
}

void BoundedChannel::set_producer_signal(ProducerSignal* signal) {
  producer_signal_ = signal;
}

void BoundedChannel::set_metrics(obs::ChannelCounters* metrics) {
  metrics_ = metrics;
}

void BoundedChannel::set_drain_hook(DrainHook* hook) { drain_hook_ = hook; }

void BoundedChannel::record_push(MessageKind kind, std::size_t count,
                                 const SpscRing::PushEffect& effect) {
  // Producer-only writers: plain load+store beats an RMW on the hot path.
  if (kind == MessageKind::Data)
    data_pushed_.store(data_pushed_.load(std::memory_order_relaxed) + count,
                       std::memory_order_relaxed);
  if (kind == MessageKind::Dummy)
    dummies_pushed_.store(
        dummies_pushed_.load(std::memory_order_relaxed) + count,
        std::memory_order_relaxed);
  const auto occ = static_cast<std::int64_t>(effect.occupancy);
  if (occ > max_occupancy_.load(std::memory_order_relaxed))
    max_occupancy_.store(occ, std::memory_order_relaxed);
  if (metrics_ != nullptr) {
    if (kind == MessageKind::Data) obs::bump(metrics_->data_pushed, count);
    if (kind == MessageKind::Dummy)
      obs::bump(metrics_->dummies_pushed, count);
    metrics_->note_high_water(occ);
  }
  if (monitor_ != nullptr) monitor_->note_progress();
}

void BoundedChannel::notify_not_empty() {
  // The ring publish already issued a seq_cst fence, so the elided bump's
  // relaxed waiter read pairs with a waiter's seq_cst registration: one
  // side always sees the other (lost-wakeup-free), and with no waiter
  // neither the version word nor the kernel is ever touched.
  not_empty_.bump_if_waiters();
}

void BoundedChannel::notify_not_full() { not_full_.bump_if_waiters(); }

bool BoundedChannel::push(Message m) {
  for (;;) {
    if (aborted_.load(std::memory_order_acquire)) return false;
    const MessageKind kind = m.kind;
    SpscRing::PushEffect effect;
    if (ring_.try_push(std::move(m), &effect)) {
      record_push(kind, 1, effect);
      notify_not_empty();
      return true;
    }
    // Full: park futex-style until a pop frees space or the run aborts.
    // Capture precedes registration precedes the re-check, and the fence
    // pairs with finish_pop's fence (a seq_cst RMW alone does not order
    // the acquire re-check under the standard's fence rules). If a pop
    // lands after the re-check it bumps the version off `captured`, so the
    // park falls through; the outer loop re-probes either way.
    if (metrics_ != nullptr) obs::bump(metrics_->full_stalls);
    const std::uint32_t captured = not_full_.capture();
    not_full_.register_waiter();
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (ring_.full() && !aborted_.load(std::memory_order_acquire)) {
      BlockedScope blocked(monitor_);
      ParkingLot::park(not_full_.version, captured);
    }
    not_full_.unregister_waiter();
  }
}

PushResult BoundedChannel::try_push(Message&& m, bool* was_empty) {
  if (aborted_.load(std::memory_order_acquire)) return PushResult::Aborted;
  const MessageKind kind = m.kind;
  SpscRing::PushEffect effect;
  if (!ring_.try_push(std::move(m), &effect)) {
    if (metrics_ != nullptr) obs::bump(metrics_->full_stalls);
    return PushResult::Full;
  }
  if (was_empty != nullptr) *was_empty = effect.was_empty;
  record_push(kind, 1, effect);
  notify_not_empty();
  return PushResult::Ok;
}

std::size_t BoundedChannel::try_push_batch(Message* msgs, std::size_t count,
                                           bool* was_empty, bool* aborted) {
  const bool is_aborted = aborted_.load(std::memory_order_acquire);
  if (aborted != nullptr) *aborted = is_aborted;
  if (is_aborted || count == 0) return 0;
  SpscRing::PushEffect effect;
  const std::size_t accepted = ring_.try_push_batch(msgs, count, &effect);
  if (accepted == 0) {
    if (metrics_ != nullptr) obs::bump(metrics_->full_stalls);
    return 0;
  }
  if (was_empty != nullptr) *was_empty = effect.was_empty;
  record_push(MessageKind::Data, accepted, effect);
  notify_not_empty();
  return accepted;
}

std::size_t BoundedChannel::try_push_dummies(std::uint64_t first_seq,
                                             std::size_t count,
                                             bool* was_empty, bool* aborted) {
  const bool is_aborted = aborted_.load(std::memory_order_acquire);
  if (aborted != nullptr) *aborted = is_aborted;
  if (is_aborted) return 0;
  SpscRing::PushEffect effect;
  const std::size_t accepted =
      ring_.try_push_dummies(first_seq, count, &effect);
  if (accepted == 0) {
    if (metrics_ != nullptr) obs::bump(metrics_->full_stalls);
    return 0;
  }
  if (was_empty != nullptr) *was_empty = effect.was_empty;
  record_push(MessageKind::Dummy, accepted, effect);
  notify_not_empty();
  return accepted;
}

PushResult BoundedChannel::try_push_marker(std::uint64_t seq,
                                           bool* was_empty) {
  if (aborted_.load(std::memory_order_acquire)) return PushResult::Aborted;
  // Latch the edge's cut BEFORE the marker becomes visible: every push the
  // downstream node can observe before the marker is already counted, and
  // the producer pushes nothing else between the latch and the publish.
  // The reader (snapshot assembly) only runs after the downstream node has
  // checkpointed this marker, which synchronizes via the channel's ring
  // release/acquire and the snapshot plane's mutex.
  cut_data_pushed_.store(data_pushed_.load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
  cut_dummies_pushed_.store(dummies_pushed_.load(std::memory_order_relaxed),
                            std::memory_order_relaxed);
  SpscRing::PushEffect effect;
  if (!ring_.try_push_marker(seq, &effect)) return PushResult::Full;
  if (was_empty != nullptr) *was_empty = effect.was_empty;
  // Markers are not traffic: no data/dummy counters, no high-water (they
  // are occupancy-neutral), but they ARE progress for the watchdog and
  // pending work for a parked consumer.
  if (monitor_ != nullptr) monitor_->note_progress();
  notify_not_empty();
  return PushResult::Ok;
}

void BoundedChannel::restore_stats(std::uint64_t data_pushed,
                                   std::uint64_t dummies_pushed) {
  data_pushed_.store(data_pushed, std::memory_order_relaxed);
  dummies_pushed_.store(dummies_pushed, std::memory_order_relaxed);
  cut_data_pushed_.store(data_pushed, std::memory_order_relaxed);
  cut_dummies_pushed_.store(dummies_pushed, std::memory_order_relaxed);
}

ChannelStats BoundedChannel::marker_cut_stats() const {
  ChannelStats s;
  s.data_pushed = cut_data_pushed_.load(std::memory_order_acquire);
  s.dummies_pushed = cut_dummies_pushed_.load(std::memory_order_acquire);
  s.max_occupancy = max_occupancy_.load(std::memory_order_acquire);
  return s;
}

std::optional<HeadView> BoundedChannel::try_peek_head() const {
  auto head = ring_.peek_head();
  if (!head.has_value() && metrics_ != nullptr)
    obs::bump(metrics_->empty_waits);
  return head;
}

std::optional<HeadView> BoundedChannel::peek_head_wait() {
  for (;;) {
    if (auto head = ring_.peek_head(); head.has_value()) return head;
    if (aborted_.load(std::memory_order_acquire)) return std::nullopt;
    if (metrics_ != nullptr) obs::bump(metrics_->empty_waits);
    const std::uint32_t captured = not_empty_.capture();
    not_empty_.register_waiter();
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (ring_.empty() && !aborted_.load(std::memory_order_acquire)) {
      BlockedScope blocked(monitor_);
      ParkingLot::park(not_empty_.version, captured);
    }
    not_empty_.unregister_waiter();
  }
}

std::optional<Message> BoundedChannel::try_peek() const {
  return ring_.peek_message();
}

Message BoundedChannel::pop_head(bool* was_full) {
  SpscRing::PopEffect effect;
  Message m = ring_.pop_head(&effect);
  if (metrics_ != nullptr) obs::bump(metrics_->pops);
  if (monitor_ != nullptr) monitor_->note_progress();
  notify_not_full();
  if (producer_signal_ != nullptr) producer_signal_->bump();
  if (drain_hook_ != nullptr && m.kind == MessageKind::Data)
    drain_hook_->on_data_drained(1);
  if (was_full != nullptr) *was_full = effect.was_full;
  return m;
}

bool BoundedChannel::pop() {
  SpscRing::PopEffect effect;
  ring_.pop(&effect);
  if (metrics_ != nullptr) obs::bump(metrics_->pops);
  if (monitor_ != nullptr) monitor_->note_progress();
  notify_not_full();
  if (producer_signal_ != nullptr) producer_signal_->bump();
  return effect.was_full;
}

BoundedChannel::PopRun BoundedChannel::pop_dummies(std::size_t count) {
  SpscRing::PopEffect effect;
  PopRun result;
  result.popped = ring_.pop_dummies(count, &effect);
  if (result.popped == 0) return result;
  result.was_full = effect.was_full;
  if (metrics_ != nullptr) obs::bump(metrics_->pops, result.popped);
  if (monitor_ != nullptr) monitor_->note_progress();
  notify_not_full();
  if (producer_signal_ != nullptr) producer_signal_->bump();
  return result;
}

void BoundedChannel::abort() {
  aborted_.store(true, std::memory_order_seq_cst);
  // Unconditional bumps: the version moves off every captured value before
  // the wake, so a waiter between its re-check and its park falls through
  // instead of sleeping past the abort.
  not_full_.bump();
  not_empty_.bump();
  if (producer_signal_ != nullptr) producer_signal_->bump(/*abort_flag=*/true);
}

bool BoundedChannel::aborted() const {
  return aborted_.load(std::memory_order_acquire);
}

bool BoundedChannel::empty() const { return ring_.empty(); }

bool BoundedChannel::full() const { return ring_.full(); }

std::size_t BoundedChannel::size() const { return ring_.size(); }

ChannelStats BoundedChannel::stats() const {
  ChannelStats s;
  s.data_pushed = data_pushed_.load(std::memory_order_acquire);
  s.dummies_pushed = dummies_pushed_.load(std::memory_order_acquire);
  s.max_occupancy = max_occupancy_.load(std::memory_order_acquire);
  return s;
}

}  // namespace sdaf::runtime
