// Fixed-capacity message buffer with dummy run-length coalescing: the one
// queue representation behind every backend's channels (BoundedChannel for
// the concurrent backends, SimChannel for the deterministic sweep), so the
// coalescing semantics cannot drift between them.
//
// A run of k dummies with consecutive sequence numbers is stored as a
// single {first_seq, count} segment: pushing the (i+1)-th dummy of a run is
// O(1) and allocation-free, and the whole run occupies one physical slot.
// *Logical* occupancy still counts k items -- capacity, full() and
// max-occupancy accounting see exactly the message sequence the paper's
// buffer-size semantics require, so deadlock certification is unchanged;
// only the physical footprint and the op count shrink.
//
// Storage is a ring of `capacity` segments allocated once at construction
// (logical occupancy >= segment count, so it can never overflow); no
// allocation ever happens on push/pop.
#pragma once

#include <cstdint>
#include <vector>

#include "src/runtime/message.h"

namespace sdaf::runtime {

class MessageRing {
 public:
  explicit MessageRing(std::size_t capacity);

  // Logical occupancy: coalesced runs count their full length; snapshot
  // markers are excluded (they are occupancy-neutral for the certified
  // capacity and ride one extra physical segment).
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  // Physical emptiness: a ring holding only a marker is NOT empty --
  // schedulers must treat an in-flight marker as pending work.
  [[nodiscard]] bool empty() const { return size_ == 0 && markers_ == 0; }
  [[nodiscard]] bool full() const { return size_ >= capacity_; }
  [[nodiscard]] std::size_t free_space() const { return capacity_ - size_; }

  // Payload-free head view. Precondition: !empty().
  [[nodiscard]] HeadView head() const;

  // Full head/tail copies, for state dumps only. Precondition: !empty().
  [[nodiscard]] Message head_message() const;
  [[nodiscard]] Message tail_message() const;

  // Appends one message; a dummy whose sequence number continues the tail
  // run is folded into it. Precondition: !full().
  void push(Message m);

  // Appends up to `count` dummies first_seq, first_seq+1, ...; returns how
  // many fit (min(count, free_space())). One segment, O(1).
  std::size_t push_dummies(std::uint64_t first_seq, std::size_t count);

  // Appends a snapshot barrier marker (ckpt). Occupancy-neutral: does not
  // count against the logical capacity and never coalesces (it terminates
  // any dummy tail run). Always admissible at or below the certified bound
  // with at most one marker in flight; returns false only if even the
  // physical headroom (capacity + 1 segments) is exhausted.
  bool push_marker(std::uint64_t seq);

  // Removes the head and returns it, materializing one dummy of a run.
  // Precondition: !empty().
  Message pop_head();

  // Removes the head, discarding the payload. Precondition: !empty().
  void pop();

  // Removes up to `count` dummies from the head run; returns how many were
  // removed (0 when the head is not a dummy). Never crosses into a
  // following segment -- callers commit to one consecutive run at a time.
  std::size_t pop_dummies(std::size_t count);

 private:
  struct Segment {
    Message msg;
    std::uint32_t run = 1;  // > 1 only for coalesced dummy runs
  };

  [[nodiscard]] Segment& tail() { return segs_[wrap(head_ + nsegs_ - 1)]; }
  [[nodiscard]] const Segment& tail() const {
    return segs_[wrap(head_ + nsegs_ - 1)];
  }
  // Physical slots number capacity + 1: the extra segment is the marker's
  // headroom (logical occupancy >= data/dummy segment count, so data alone
  // can never need more than capacity segments).
  [[nodiscard]] std::size_t wrap(std::size_t i) const {
    const std::size_t nslots = capacity_ + 1;
    return i < nslots ? i : i - nslots;
  }
  void drop_head_segment();

  std::size_t capacity_;
  std::vector<Segment> segs_;
  std::size_t head_ = 0;     // index of the head segment
  std::size_t nsegs_ = 0;    // occupied segments
  std::size_t size_ = 0;     // logical messages (markers excluded)
  std::size_t markers_ = 0;  // in-flight snapshot markers (0 or 1)
};

}  // namespace sdaf::runtime
