#include "src/net/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace sdaf::net {

void Fd::reset() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

Fd listen_tcp(const std::string& host, std::uint16_t port, int backlog) {
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return {};
  const int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) return {};
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0)
    return {};
  if (::listen(fd.get(), backlog) != 0) return {};
  return fd;
}

Fd listen_unix(const std::string& path, int backlog) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) return {};
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  ::unlink(path.c_str());  // stale socket from a previous daemon
  Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) return {};
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0)
    return {};
  if (::listen(fd.get(), backlog) != 0) return {};
  return fd;
}

std::uint16_t bound_port(const Fd& listener) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(listener.get(), reinterpret_cast<sockaddr*>(&addr),
                    &len) != 0)
    return 0;
  return ntohs(addr.sin_port);
}

namespace {

// A signal during a blocking connect leaves the attempt in flight; the
// portable recovery is to abandon the socket and retry on a fresh one.
// `err` (optional) reports the final errno, captured before the Fd
// destructor's close() can clobber it.
Fd connect_addr(int family, const sockaddr* addr, socklen_t len, int* err) {
  for (;;) {
    Fd fd(::socket(family, SOCK_STREAM, 0));
    if (!fd.valid()) {
      if (err != nullptr) *err = errno;
      return {};
    }
    if (::connect(fd.get(), addr, len) == 0) return fd;
    if (errno == EINTR) continue;
    if (err != nullptr) *err = errno;
    return {};
  }
}

}  // namespace

Fd connect_tcp(const std::string& host, std::uint16_t port, int* err) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    if (err != nullptr) *err = EINVAL;
    return {};
  }
  Fd fd = connect_addr(AF_INET, reinterpret_cast<sockaddr*>(&addr),
                       sizeof(addr), err);
  if (fd.valid()) set_nodelay(fd);
  return fd;
}

Fd connect_unix(const std::string& path, int* err) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    if (err != nullptr) *err = ENAMETOOLONG;
    return {};
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return connect_addr(AF_UNIX, reinterpret_cast<sockaddr*>(&addr),
                      sizeof(addr), err);
}

Fd accept_conn(const Fd& listener) {
  for (;;) {
    const int fd = ::accept(listener.get(), nullptr, nullptr);
    if (fd >= 0) return Fd(fd);
    if (errno == EINTR) continue;
    return {};
  }
}

bool set_nonblocking(const Fd& fd, bool nonblocking) {
  const int flags = ::fcntl(fd.get(), F_GETFL, 0);
  if (flags < 0) return false;
  const int next = nonblocking ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  return ::fcntl(fd.get(), F_SETFL, next) == 0;
}

void set_nodelay(const Fd& fd) {
  const int one = 1;
  ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

bool send_all(const Fd& fd, const std::uint8_t* data, std::size_t n) {
  std::size_t sent = 0;
  while (sent < n) {
    const ssize_t rc =
        ::send(fd.get(), data + sent, n - sent, MSG_NOSIGNAL);
    if (rc > 0) {
      sent += static_cast<std::size_t>(rc);
      continue;
    }
    if (rc < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

bool recv_exact(const Fd& fd, std::uint8_t* data, std::size_t n) {
  std::size_t got = 0;
  while (got < n) {
    const ssize_t rc = ::recv(fd.get(), data + got, n - got, 0);
    if (rc > 0) {
      got += static_cast<std::size_t>(rc);
      continue;
    }
    if (rc < 0 && errno == EINTR) continue;
    return false;  // rc == 0: orderly peer close mid-frame
  }
  return true;
}

}  // namespace sdaf::net
