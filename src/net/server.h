// The socket front door: one poll()-driven event loop multiplexing many
// framed client connections onto pooled exec::Streams. Design constraints,
// in order:
//
//   1. The loop never hard-blocks on the data plane. Every server-issued
//      ingress push is deadline-bounded (InputPort::push_batch_for with
//      ServerOptions::push_wait), so a client that wedges its own stream
//      (avoidance off) cannot wedge the daemon: the push times out, the
//      client gets a short PushAck, and every other connection keeps being
//      served. Egress is poll-driven and never blocks by construction.
//   2. Adversarial bytes never crash or leak. A malformed frame (bad
//      header, bad payload, protocol-state violation) earns an Error frame
//      and connection teardown; tearing down a connection destroys its
//      streams, and an unfinished exec::Stream finishes itself on
//      destruction -- ports closed, verdict discarded, pool slots freed.
//   3. Topology reuse is cheap: Open compiles through the shared
//      core::CompileCache (Session::process_cache() by default), so many
//      clients opening the same topology skip CS4 decomposition and
//      interval computation; OpenOk reports the hit so clients can see it.
//
// All streams run on one shared runtime::PoolExecutor (Pooled backend) or
// on per-stream resources (Sim/Threaded, as the client requests).
// Lifecycle: start() binds, run() serves until request_stop(), and
// request_drain() begins a graceful shutdown -- listeners close, live
// connections get drain_grace to Finish, then the loop exits and teardown
// aborts whatever remains. Both request_* calls are async-signal-safe
// (plain atomic stores), so sdafd points its SIGTERM/SIGINT handlers
// straight at them.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/net/frame.h"
#include "src/net/socket.h"
#include "src/qos/admission.h"

namespace sdaf::core {
class CompileCache;
}  // namespace sdaf::core

namespace sdaf::net {

struct ServerOptions {
  // Listeners: any subset; start() fails if none is configured or a bind
  // fails. tcp_port 0 = ephemeral (tcp_port() reports the real one).
  std::string unix_path;
  bool tcp = false;
  std::string host = "127.0.0.1";
  std::uint16_t tcp_port = 0;

  // Workers for the shared pool all Pooled-backend streams run on
  // (0 = hardware concurrency).
  std::size_t pool_workers = 0;
  // Upper bound on any single server-issued ingress push; constraint #1.
  std::chrono::milliseconds push_wait{50};
  // How long live connections get to finish after request_drain().
  std::chrono::milliseconds drain_grace{2000};
  // Per-Poll delivery cap (a Poll asking for more is clamped).
  std::uint32_t max_poll_items = 4096;
  // Compile cache consulted by Open; null = Session::process_cache().
  core::CompileCache* cache = nullptr;

  // --- multi-tenant QoS (sdaf::qos, see docs/QOS.md) --------------------
  // Admission budgets every Open (and Restore) must fit under; all-zero =
  // admit everything. A refused open earns a soft AdmissionRejected Error
  // carrying the predicted cost -- the connection survives.
  qos::Budgets budgets;
  // Per-tenant in-flight credit window: how many data items one tenant may
  // have pushed-but-unconsumed across all its streams before its pushes
  // park. 0 = unlimited (no per-tenant backpressure).
  std::uint64_t tenant_credits = 0;
};

// Monotonic service counters, exported as sdafd_* Prometheus families on
// the Stats page next to the per-stream sdaf_* families.
struct ServiceStats {
  std::uint64_t connections_total = 0;
  std::uint64_t connections_open = 0;
  std::uint64_t streams_total = 0;
  std::uint64_t streams_open = 0;
  std::uint64_t frames_total = 0;
  std::uint64_t errors_total = 0;
  std::uint64_t items_in_total = 0;
  std::uint64_t items_out_total = 0;
  std::uint64_t push_timeouts_total = 0;  // short PushAcks (constraint #1)
  std::uint64_t compile_cache_hits_total = 0;
  std::uint64_t snapshots_total = 0;  // completed barrier snapshots served
  std::uint64_t restores_total = 0;   // streams rehydrated via Restore
  // Streams torn down because their connection dropped mid-stream (peer
  // vanished without Finish): input ports aborted, session reaped.
  std::uint64_t sessions_aborted_total = 0;
};

class Server {
 public:
  explicit Server(ServerOptions options);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Binds the configured listeners. false = nothing could be bound (the
  // reason is on stderr).
  [[nodiscard]] bool start();
  // Serves until request_stop(), or request_drain() + (all connections
  // gone or drain_grace elapsed). Call after start().
  void run();

  // Async-signal-safe shutdown triggers (atomic stores only).
  void request_drain() { drain_.store(true, std::memory_order_release); }
  void request_stop() { stop_.store(true, std::memory_order_release); }

  [[nodiscard]] std::uint16_t tcp_port() const;
  [[nodiscard]] const std::string& unix_path() const;
  [[nodiscard]] ServiceStats stats() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  std::atomic<bool> drain_{false};
  std::atomic<bool> stop_{false};
};

}  // namespace sdaf::net
