#include "src/net/workload.h"

#include <map>
#include <sstream>
#include <vector>

#include "src/workloads/filters.h"

namespace sdaf::net {

std::vector<std::shared_ptr<runtime::Kernel>> make_kernels(
    const StreamGraph& g, const OpenFrame& spec) {
  switch (spec.kernel) {
    case KernelKind::Relay:
      return workloads::relay_kernels(g, spec.pass_rate, spec.seed);
    case KernelKind::Wedge: {
      auto kernels = workloads::passthrough_kernels(g);
      kernels[0] = std::make_shared<runtime::RelayKernel>(
          workloads::adversarial_prefix_filter(1, spec.wedge_prefix));
      return kernels;
    }
    case KernelKind::Passthrough:
      break;
  }
  return workloads::passthrough_kernels(g);
}

std::optional<StreamGraph> parse_topology(const std::string& text) {
  constexpr std::size_t kMaxNodes = 4096;
  constexpr std::size_t kMaxEdges = 65536;
  constexpr std::int64_t kMaxBuffer = 1 << 20;

  struct EdgeDecl {
    NodeId from;
    NodeId to;
    std::int64_t buffer;
  };
  std::map<std::string, NodeId> by_name;
  std::vector<EdgeDecl> edges;

  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    std::istringstream ls(line);
    std::string kw;
    if (!(ls >> kw) || kw[0] == '#') continue;
    if (kw == "node") {
      std::string name;
      if (!(ls >> name)) return std::nullopt;
      if (by_name.contains(name) || by_name.size() >= kMaxNodes)
        return std::nullopt;
      const auto id = static_cast<NodeId>(by_name.size());
      by_name.emplace(name, id);
    } else if (kw == "edge") {
      std::string from;
      std::string to;
      std::int64_t buffer = 0;
      if (!(ls >> from >> to >> buffer)) return std::nullopt;
      const auto f = by_name.find(from);
      const auto t = by_name.find(to);
      if (f == by_name.end() || t == by_name.end()) return std::nullopt;
      if (f->second == t->second) return std::nullopt;  // self-loop
      if (buffer < 1 || buffer > kMaxBuffer) return std::nullopt;
      if (edges.size() >= kMaxEdges) return std::nullopt;
      edges.push_back({f->second, t->second, buffer});
    } else {
      return std::nullopt;
    }
  }
  if (by_name.empty()) return std::nullopt;

  // Acyclicity (Kahn): the compile and run layers require a DAG and treat
  // cycles as contract violations, so a cyclic wire topology must be
  // rejected here, before it reaches them.
  std::vector<std::size_t> indegree(by_name.size(), 0);
  for (const auto& e : edges) ++indegree[e.to];
  std::vector<NodeId> ready;
  for (NodeId n = 0; n < indegree.size(); ++n)
    if (indegree[n] == 0) ready.push_back(n);
  std::size_t visited = 0;
  while (!ready.empty()) {
    const NodeId n = ready.back();
    ready.pop_back();
    ++visited;
    for (const auto& e : edges)
      if (e.from == n && --indegree[e.to] == 0) ready.push_back(e.to);
  }
  if (visited != by_name.size()) return std::nullopt;

  StreamGraph g;
  std::vector<std::string> names(by_name.size());
  for (const auto& [name, id] : by_name) names[id] = name;
  for (auto& name : names) g.add_node(std::move(name));
  for (const auto& e : edges) g.add_edge(e.from, e.to, e.buffer);
  return g;
}

}  // namespace sdaf::net
