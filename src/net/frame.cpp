#include "src/net/frame.h"

#include <cstring>

namespace sdaf::net {

namespace {

// Embedded collections get their own sanity bounds so a hostile length
// prefix cannot make the decoder reserve gigabytes before the sticky
// Reader notices the payload is short.
constexpr std::uint32_t kMaxBatchItems = 1u << 20;
constexpr std::uint32_t kMaxVectorLen = 1u << 20;

void put_u16(std::uint8_t* out, std::uint16_t v) {
  out[0] = static_cast<std::uint8_t>(v);
  out[1] = static_cast<std::uint8_t>(v >> 8);
}

void put_u32(std::uint8_t* out, std::uint32_t v) {
  out[0] = static_cast<std::uint8_t>(v);
  out[1] = static_cast<std::uint8_t>(v >> 8);
  out[2] = static_cast<std::uint8_t>(v >> 16);
  out[3] = static_cast<std::uint8_t>(v >> 24);
}

std::uint16_t get_u16(const std::uint8_t* in) {
  return static_cast<std::uint16_t>(in[0] | (in[1] << 8));
}

std::uint32_t get_u32(const std::uint8_t* in) {
  return static_cast<std::uint32_t>(in[0]) |
         (static_cast<std::uint32_t>(in[1]) << 8) |
         (static_cast<std::uint32_t>(in[2]) << 16) |
         (static_cast<std::uint32_t>(in[3]) << 24);
}

// Wire tags for runtime::Value payloads. The wire supports exactly the
// types the workload kernels traffic in; anything else is a protocol
// error at encode time (encoded as None so the frame stays well-formed --
// the serving data plane never produces such values).
enum : std::uint8_t {
  kValNone = 0,
  kValI64 = 1,
  kValF64 = 2,
  kValStr = 3,
};

}  // namespace

const char* to_string(FrameType t) {
  switch (t) {
    case FrameType::Hello: return "Hello";
    case FrameType::HelloOk: return "HelloOk";
    case FrameType::Open: return "Open";
    case FrameType::OpenOk: return "OpenOk";
    case FrameType::PushBatch: return "PushBatch";
    case FrameType::PushAck: return "PushAck";
    case FrameType::Poll: return "Poll";
    case FrameType::Deliver: return "Deliver";
    case FrameType::Close: return "Close";
    case FrameType::CloseOk: return "CloseOk";
    case FrameType::Finish: return "Finish";
    case FrameType::Verdict: return "Verdict";
    case FrameType::Stats: return "Stats";
    case FrameType::StatsOk: return "StatsOk";
    case FrameType::Error: return "Error";
    case FrameType::Snapshot: return "Snapshot";
    case FrameType::SnapshotOk: return "SnapshotOk";
    case FrameType::Restore: return "Restore";
    case FrameType::RestoreOk: return "RestoreOk";
  }
  return "?";
}

const char* to_string(ErrorCode c) {
  switch (c) {
    case ErrorCode::BadMagic: return "bad-magic";
    case ErrorCode::Version: return "version-mismatch";
    case ErrorCode::BadFrame: return "bad-frame";
    case ErrorCode::UnknownType: return "unknown-type";
    case ErrorCode::BadStream: return "bad-stream";
    case ErrorCode::BadPort: return "bad-port";
    case ErrorCode::TooLarge: return "too-large";
    case ErrorCode::Draining: return "draining";
    case ErrorCode::BadTopology: return "bad-topology";
    case ErrorCode::BadState: return "bad-state";
    case ErrorCode::Internal: return "internal";
    case ErrorCode::AdmissionRejected: return "admission-rejected";
  }
  return "?";
}

void encode_header(const FrameHeader& h, std::uint8_t* out) {
  put_u32(out, h.length);
  out[4] = static_cast<std::uint8_t>(h.type);
  out[5] = h.flags;
  put_u16(out + 6, h.stream);
}

std::optional<FrameHeader> decode_header(const std::uint8_t* in) {
  FrameHeader h;
  h.length = get_u32(in);
  const std::uint8_t type = in[4];
  h.flags = in[5];
  h.stream = get_u16(in + 6);
  if (h.length > kMaxPayload) return std::nullopt;
  if (type < static_cast<std::uint8_t>(FrameType::Hello) ||
      type > static_cast<std::uint8_t>(FrameType::RestoreOk))
    return std::nullopt;
  h.type = static_cast<FrameType>(type);
  return h;
}

void Writer::u16(std::uint16_t v) {
  buf_.resize(buf_.size() + 2);
  put_u16(buf_.data() + buf_.size() - 2, v);
}

void Writer::u32(std::uint32_t v) {
  buf_.resize(buf_.size() + 4);
  put_u32(buf_.data() + buf_.size() - 4, v);
}

void Writer::u64(std::uint64_t v) {
  u32(static_cast<std::uint32_t>(v));
  u32(static_cast<std::uint32_t>(v >> 32));
}

void Writer::f64(double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  u64(bits);
}

void Writer::str(const std::string& s) {
  u32(static_cast<std::uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void Writer::value(const runtime::Value& v) {
  if (!v.has_value()) {
    u8(kValNone);
    return;
  }
  // Typed probes, cheapest first. A Value of any other type degrades to
  // None: the wire carries workload payloads, not arbitrary C++ objects.
  try {
    const std::int64_t i = v.as<std::int64_t>();
    u8(kValI64);
    i64(i);
    return;
  } catch (const std::bad_cast&) {
  }
  try {
    const double d = v.as<double>();
    u8(kValF64);
    f64(d);
    return;
  } catch (const std::bad_cast&) {
  }
  try {
    const std::string& s = v.as<std::string>();
    u8(kValStr);
    str(s);
    return;
  } catch (const std::bad_cast&) {
  }
  u8(kValNone);
}

bool Reader::take(std::size_t n) {
  if (!ok_ || size_ - pos_ < n) {
    ok_ = false;
    return false;
  }
  return true;
}

std::uint8_t Reader::u8() {
  if (!take(1)) return 0;
  return data_[pos_++];
}

std::uint16_t Reader::u16() {
  if (!take(2)) return 0;
  const std::uint16_t v = get_u16(data_ + pos_);
  pos_ += 2;
  return v;
}

std::uint32_t Reader::u32() {
  if (!take(4)) return 0;
  const std::uint32_t v = get_u32(data_ + pos_);
  pos_ += 4;
  return v;
}

std::uint64_t Reader::u64() {
  const std::uint64_t lo = u32();
  const std::uint64_t hi = u32();
  return lo | (hi << 32);
}

double Reader::f64() {
  const std::uint64_t bits = u64();
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string Reader::str() {
  const std::uint32_t len = u32();
  // The length prefix can claim at most what the payload still holds; a
  // lying prefix fails here instead of allocating.
  if (!ok_ || len > size_ - pos_) {
    ok_ = false;
    return {};
  }
  std::string s(reinterpret_cast<const char*>(data_ + pos_), len);
  pos_ += len;
  return s;
}

runtime::Value Reader::value() {
  switch (u8()) {
    case kValNone:
      return {};
    case kValI64:
      return runtime::Value(i64());
    case kValF64:
      return runtime::Value(f64());
    case kValStr:
      return runtime::Value(str());
    default:
      ok_ = false;
      return {};
  }
}

// --- typed frame codecs -------------------------------------------------

void encode(const HelloFrame& f, Writer& w) {
  w.u32(f.magic);
  w.u16(f.version_min);
  w.u16(f.version_max);
}

std::optional<HelloFrame> decode_hello(const std::uint8_t* p, std::size_t n) {
  Reader r(p, n);
  HelloFrame f;
  f.magic = r.u32();
  f.version_min = r.u16();
  f.version_max = r.u16();
  if (!r.done()) return std::nullopt;
  return f;
}

void encode(const HelloOkFrame& f, Writer& w) { w.u16(f.version); }

std::optional<HelloOkFrame> decode_hello_ok(const std::uint8_t* p,
                                            std::size_t n) {
  Reader r(p, n);
  HelloOkFrame f;
  f.version = r.u16();
  if (!r.done()) return std::nullopt;
  return f;
}

void encode(const OpenFrame& f, Writer& w) {
  w.u8(f.backend);
  w.u8(f.mode);
  w.u8(static_cast<std::uint8_t>(f.kernel));
  w.u8(0);  // reserved
  w.f64(f.pass_rate);
  w.u64(f.seed);
  w.u64(f.wedge_prefix);
  w.u32(f.feed_capacity);
  w.u32(f.egress_capacity);
  w.u32(f.batch);
  w.f64(f.weight);
  w.str(f.tenant);
  w.str(f.topology);
}

std::optional<OpenFrame> decode_open(const std::uint8_t* p, std::size_t n) {
  Reader r(p, n);
  OpenFrame f;
  f.backend = r.u8();
  f.mode = r.u8();
  const std::uint8_t kernel = r.u8();
  (void)r.u8();
  f.pass_rate = r.f64();
  f.seed = r.u64();
  f.wedge_prefix = r.u64();
  f.feed_capacity = r.u32();
  f.egress_capacity = r.u32();
  f.batch = r.u32();
  f.weight = r.f64();
  f.tenant = r.str();
  f.topology = r.str();
  if (!r.done()) return std::nullopt;
  if (f.backend > 2 || f.mode > 2 ||
      kernel > static_cast<std::uint8_t>(KernelKind::Wedge))
    return std::nullopt;
  // Resource bounds: port-channel capacities and the firing quantum are
  // allocation knobs a client must not be able to blow up.
  if (f.feed_capacity == 0 || f.feed_capacity > (1u << 20) ||
      f.egress_capacity == 0 || f.egress_capacity > (1u << 20) ||
      f.batch == 0 || f.batch > 4096)
    return std::nullopt;
  if (!(f.pass_rate >= 0.0 && f.pass_rate <= 1.0)) return std::nullopt;
  // NaN fails this check too; the cap keeps llround in range.
  if (!(f.weight >= 0.0 && f.weight <= 1e6)) return std::nullopt;
  f.kernel = static_cast<KernelKind>(kernel);
  return f;
}

void encode(const OpenOkFrame& f, Writer& w) {
  w.u16(f.inputs);
  w.u16(f.outputs);
  w.u8(f.cache_hit);
}

std::optional<OpenOkFrame> decode_open_ok(const std::uint8_t* p,
                                          std::size_t n) {
  Reader r(p, n);
  OpenOkFrame f;
  f.inputs = r.u16();
  f.outputs = r.u16();
  f.cache_hit = r.u8();
  if (!r.done()) return std::nullopt;
  return f;
}

void encode(const PushBatchFrame& f, Writer& w) {
  w.u16(f.port);
  w.u16(0);  // reserved
  w.u32(static_cast<std::uint32_t>(f.values.size()));
  for (const auto& v : f.values) w.value(v);
}

std::optional<PushBatchFrame> decode_push_batch(const std::uint8_t* p,
                                                std::size_t n) {
  Reader r(p, n);
  PushBatchFrame f;
  f.port = r.u16();
  (void)r.u16();
  const std::uint32_t count = r.u32();
  if (!r.ok() || count > kMaxBatchItems || count > r.remaining())
    return std::nullopt;  // each value is at least 1 byte
  f.values.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) f.values.push_back(r.value());
  if (!r.done()) return std::nullopt;
  return f;
}

void encode(const PushAckFrame& f, Writer& w) {
  w.u32(f.accepted);
  w.u8(f.ended);
}

std::optional<PushAckFrame> decode_push_ack(const std::uint8_t* p,
                                            std::size_t n) {
  Reader r(p, n);
  PushAckFrame f;
  f.accepted = r.u32();
  f.ended = r.u8();
  if (!r.done()) return std::nullopt;
  return f;
}

void encode(const PollFrame& f, Writer& w) {
  w.u16(f.port);
  w.u16(0);  // reserved
  w.u32(f.max_items);
}

std::optional<PollFrame> decode_poll(const std::uint8_t* p, std::size_t n) {
  Reader r(p, n);
  PollFrame f;
  f.port = r.u16();
  (void)r.u16();
  f.max_items = r.u32();
  if (!r.done()) return std::nullopt;
  return f;
}

void encode(const DeliverFrame& f, Writer& w) {
  w.u16(f.port);
  w.u8(f.ended);
  w.u8(0);  // reserved
  w.u32(static_cast<std::uint32_t>(f.items.size()));
  for (const auto& item : f.items) {
    w.u64(item.seq);
    w.value(item.value);
  }
}

std::optional<DeliverFrame> decode_deliver(const std::uint8_t* p,
                                           std::size_t n) {
  Reader r(p, n);
  DeliverFrame f;
  f.port = r.u16();
  f.ended = r.u8();
  (void)r.u8();
  const std::uint32_t count = r.u32();
  if (!r.ok() || count > kMaxBatchItems || count > r.remaining() / 8)
    return std::nullopt;  // each item is at least 9 bytes
  f.items.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    DeliverFrame::Item item;
    item.seq = r.u64();
    item.value = r.value();
    f.items.push_back(std::move(item));
  }
  if (!r.done()) return std::nullopt;
  return f;
}

void encode(const CloseFrame& f, Writer& w) { w.u16(f.port); }

std::optional<CloseFrame> decode_close(const std::uint8_t* p, std::size_t n) {
  Reader r(p, n);
  CloseFrame f;
  f.port = r.u16();
  if (!r.done()) return std::nullopt;
  return f;
}

void encode(const VerdictFrame& f, Writer& w) {
  const exec::RunReport& rep = f.report;
  w.u8(static_cast<std::uint8_t>(rep.backend));
  w.u8(rep.completed ? 1 : 0);
  w.u8(rep.deadlocked ? 1 : 0);
  w.u8(0);  // reserved
  w.u64(rep.sweeps);
  w.f64(rep.wall_seconds);
  w.u32(static_cast<std::uint32_t>(rep.edges.size()));
  for (const auto& e : rep.edges) {
    w.u64(e.data);
    w.u64(e.dummies);
    w.i64(e.max_occupancy);
  }
  w.u32(static_cast<std::uint32_t>(rep.fires.size()));
  for (const auto v : rep.fires) w.u64(v);
  w.u32(static_cast<std::uint32_t>(rep.sink_data.size()));
  for (const auto v : rep.sink_data) w.u64(v);
  w.str(rep.state_dump);
}

std::optional<VerdictFrame> decode_verdict(const std::uint8_t* p,
                                           std::size_t n) {
  Reader r(p, n);
  VerdictFrame f;
  exec::RunReport& rep = f.report;
  const std::uint8_t backend = r.u8();
  rep.completed = r.u8() != 0;
  rep.deadlocked = r.u8() != 0;
  (void)r.u8();
  rep.sweeps = r.u64();
  rep.wall_seconds = r.f64();
  const std::uint32_t edges = r.u32();
  if (!r.ok() || backend > 2 || edges > kMaxVectorLen ||
      edges > r.remaining() / 24)
    return std::nullopt;
  rep.backend = static_cast<exec::Backend>(backend);
  rep.edges.reserve(edges);
  for (std::uint32_t i = 0; i < edges; ++i) {
    exec::EdgeTraffic e;
    e.data = r.u64();
    e.dummies = r.u64();
    e.max_occupancy = r.i64();
    rep.edges.push_back(e);
  }
  const std::uint32_t fires = r.u32();
  if (!r.ok() || fires > kMaxVectorLen || fires > r.remaining() / 8)
    return std::nullopt;
  rep.fires.reserve(fires);
  for (std::uint32_t i = 0; i < fires; ++i) rep.fires.push_back(r.u64());
  const std::uint32_t sinks = r.u32();
  if (!r.ok() || sinks > kMaxVectorLen || sinks > r.remaining() / 8)
    return std::nullopt;
  rep.sink_data.reserve(sinks);
  for (std::uint32_t i = 0; i < sinks; ++i) rep.sink_data.push_back(r.u64());
  rep.state_dump = r.str();
  if (!r.done()) return std::nullopt;
  return f;
}

void encode(const StatsOkFrame& f, Writer& w) { w.str(f.prometheus); }

std::optional<StatsOkFrame> decode_stats_ok(const std::uint8_t* p,
                                            std::size_t n) {
  Reader r(p, n);
  StatsOkFrame f;
  f.prometheus = r.str();
  if (!r.done()) return std::nullopt;
  return f;
}

void encode(const ErrorFrame& f, Writer& w) {
  w.u32(static_cast<std::uint32_t>(f.code));
  w.str(f.message);
  w.u8(f.has_cost);
  w.u64(f.predicted_slots);
  w.u64(f.predicted_bytes);
  w.u64(f.predicted_nodes);
  w.f64(f.predicted_dummy_ratio);
}

std::optional<ErrorFrame> decode_error(const std::uint8_t* p, std::size_t n) {
  Reader r(p, n);
  ErrorFrame f;
  const std::uint32_t code = r.u32();
  f.message = r.str();
  f.has_cost = r.u8();
  f.predicted_slots = r.u64();
  f.predicted_bytes = r.u64();
  f.predicted_nodes = r.u64();
  f.predicted_dummy_ratio = r.f64();
  if (!r.done()) return std::nullopt;
  if (code < static_cast<std::uint32_t>(ErrorCode::BadMagic) ||
      code > static_cast<std::uint32_t>(ErrorCode::AdmissionRejected))
    return std::nullopt;
  f.code = static_cast<ErrorCode>(code);
  return f;
}

void encode(const SnapshotOkFrame& f, Writer& w) {
  w.u8(f.complete);
  w.str(f.snapshot);
}

std::optional<SnapshotOkFrame> decode_snapshot_ok(const std::uint8_t* p,
                                                  std::size_t n) {
  Reader r(p, n);
  SnapshotOkFrame f;
  f.complete = r.u8();
  f.snapshot = r.str();
  if (!r.done()) return std::nullopt;
  if (f.complete == 0 && !f.snapshot.empty()) return std::nullopt;
  if (f.complete != 0 && f.snapshot.empty()) return std::nullopt;
  return f;
}

void encode(const RestoreFrame& f, Writer& w) {
  encode(f.open, w);
  w.str(f.snapshot);
}

std::optional<RestoreFrame> decode_restore(const std::uint8_t* p,
                                           std::size_t n) {
  // The Open prefix is length-variable (two embedded strings), so parse it
  // inline with the same field order and bounds as decode_open.
  Reader r(p, n);
  RestoreFrame f;
  f.open.backend = r.u8();
  f.open.mode = r.u8();
  const std::uint8_t kernel = r.u8();
  (void)r.u8();
  f.open.pass_rate = r.f64();
  f.open.seed = r.u64();
  f.open.wedge_prefix = r.u64();
  f.open.feed_capacity = r.u32();
  f.open.egress_capacity = r.u32();
  f.open.batch = r.u32();
  f.open.weight = r.f64();
  f.open.tenant = r.str();
  f.open.topology = r.str();
  f.snapshot = r.str();
  if (!r.done()) return std::nullopt;
  if (f.open.backend > 2 || f.open.mode > 2 ||
      kernel > static_cast<std::uint8_t>(KernelKind::Wedge))
    return std::nullopt;
  if (f.open.feed_capacity == 0 || f.open.feed_capacity > (1u << 20) ||
      f.open.egress_capacity == 0 || f.open.egress_capacity > (1u << 20) ||
      f.open.batch == 0 || f.open.batch > 4096)
    return std::nullopt;
  if (!(f.open.pass_rate >= 0.0 && f.open.pass_rate <= 1.0))
    return std::nullopt;
  if (!(f.open.weight >= 0.0 && f.open.weight <= 1e6)) return std::nullopt;
  if (f.snapshot.empty()) return std::nullopt;
  f.open.kernel = static_cast<KernelKind>(kernel);
  return f;
}

void encode(const RestoreOkFrame& f, Writer& w) {
  w.u16(f.inputs);
  w.u16(f.outputs);
  w.u8(f.cache_hit);
  w.u64(f.epoch);
}

std::optional<RestoreOkFrame> decode_restore_ok(const std::uint8_t* p,
                                                std::size_t n) {
  Reader r(p, n);
  RestoreOkFrame f;
  f.inputs = r.u16();
  f.outputs = r.u16();
  f.cache_hit = r.u8();
  f.epoch = r.u64();
  if (!r.done()) return std::nullopt;
  return f;
}

std::vector<std::uint8_t> make_frame(FrameType type, std::uint16_t stream,
                                     Writer payload) {
  std::vector<std::uint8_t> body = payload.take();
  FrameHeader h;
  h.length = static_cast<std::uint32_t>(body.size());
  h.type = type;
  h.stream = stream;
  std::vector<std::uint8_t> out(kHeaderSize + body.size());
  encode_header(h, out.data());
  if (!body.empty())
    std::memcpy(out.data() + kHeaderSize, body.data(), body.size());
  return out;
}

}  // namespace sdaf::net
