// Kernels never travel over the wire as code: an OpenFrame names one of
// three deterministic workload families, and both sides of the connection
// (the server when serving, a test when building the in-process reference)
// materialize the exact same kernel vector from the spec. Determinism is
// inherited from src/workloads/filters.h -- the relay filter is a stateless
// hash of (seed, seq, slot), so a wire run and an in-process run of the
// same OpenFrame are bit-comparable, which is what the loopback
// differential tests assert.
#pragma once

#include <memory>
#include <vector>

#include "src/graph/stream_graph.h"
#include "src/net/frame.h"
#include "src/runtime/kernel.h"

namespace sdaf::net {

// The kernel vector an OpenFrame describes for graph `g`:
//   Passthrough  pass-everything relays on every node
//   Relay        workloads::relay_kernels(g, pass_rate, seed)
//   Wedge        node 0 filters out-slot 1 for the first wedge_prefix
//                sequence numbers (the Fig. 2 adversary), pass-through
//                elsewhere -- needs node 0 to have >= 2 out-edges to bite
[[nodiscard]] std::vector<std::shared_ptr<runtime::Kernel>> make_kernels(
    const StreamGraph& g, const OpenFrame& spec);

// Defensive counterpart of graph::from_text for untrusted wire input:
// graph::from_text treats malformed text as a programming error (contract
// abort), which a network server cannot afford. This parser accepts the
// same line format but returns nullopt on anything malformed -- unknown
// keywords, duplicate or undeclared node names, self-loops, non-positive
// buffers -- and additionally enforces serving resource bounds: at most
// 4096 nodes, 65536 edges, per-edge buffers of at most 1 << 20 slots, and
// the graph must be acyclic and non-empty (the run machinery requires a
// DAG with at least one node).
[[nodiscard]] std::optional<StreamGraph> parse_topology(
    const std::string& text);

}  // namespace sdaf::net
