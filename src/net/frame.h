// The sdaf wire protocol v1: a small length-prefixed binary framing layer
// that carries live streams between net::Client and the sdafd daemon
// (tools/sdafd.cpp). One frame = an 8-byte little-endian header plus a
// payload of at most kMaxPayload bytes:
//
//   u32 length   payload bytes (excludes the header)
//   u8  type     FrameType
//   u8  flags    reserved, must be 0 in v1
//   u16 stream   stream id (0 = connection scope: Hello/Stats/Error)
//
// The conversation is strict request/response: every client frame is
// answered by exactly one server frame (PushBatch -> PushAck, Poll ->
// Deliver, Finish -> Verdict, ...), which keeps both the blocking client
// and the single-threaded server loop trivial to reason about. Version
// negotiation happens once per connection (Hello carries the magic and an
// acceptable version range; HelloOk pins the version). Any malformed,
// oversized, or out-of-protocol frame is answered with Error and the
// connection is closed -- the codec here is deliberately paranoid so the
// server can parse adversarial bytes without crashing (the Reader is
// sticky-failing and never reads past the payload).
//
// Kernels do not travel as code: Open names a workload (passthrough /
// relay / wedge, plus pass_rate, seed and the wedge prefix), so a client
// and an in-process run can construct bit-identical kernels from the same
// spec -- the foundation of the loopback differential tests. See
// docs/PROTOCOL.md for the field-by-field layout.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/exec/run_types.h"
#include "src/runtime/message.h"

namespace sdaf::net {

inline constexpr std::uint32_t kMagic = 0x46414453;  // "SDAF" little-endian
inline constexpr std::uint16_t kProtocolVersion = 1;
inline constexpr std::size_t kHeaderSize = 8;
inline constexpr std::uint32_t kMaxPayload = 4u << 20;  // 4 MiB

enum class FrameType : std::uint8_t {
  Hello = 1,      // c->s: magic, version range
  HelloOk = 2,    // s->c: pinned version
  Open = 3,       // c->s: topology + workload + run options (new stream id)
  OpenOk = 4,     // s->c: port counts, compile-cache disposition
  PushBatch = 5,  // c->s: values for one input port
  PushAck = 6,    // s->c: how many were accepted within the server's bound
  Poll = 7,       // c->s: request up to max_items from one output port
  Deliver = 8,    // s->c: items + end-of-stream flag
  Close = 9,      // c->s: dynamic EOS for one input port
  CloseOk = 10,   // s->c
  Finish = 11,    // c->s: collect the final verdict (all ports closed)
  Verdict = 12,   // s->c: the full exec::RunReport, incl. deadlock dump
  Stats = 13,     // c->s: request the service metrics page
  StatsOk = 14,   // s->c: Prometheus text exposition
  Error = 15,     // s->c: code + message; the connection is then closed
  Snapshot = 16,  // c->s: begin/poll an asynchronous barrier snapshot
  SnapshotOk = 17,  // s->c: pending, or the serialized ckpt::StreamSnapshot
  Restore = 18,   // c->s: Open + snapshot bytes (new stream id, rehydrated)
  RestoreOk = 19,  // s->c: port counts + the restored stream's epoch
};

[[nodiscard]] const char* to_string(FrameType t);

enum class ErrorCode : std::uint32_t {
  BadMagic = 1,     // Hello did not start with "SDAF"
  Version = 2,      // no overlap with the server's protocol version
  BadFrame = 3,     // header or payload failed to parse
  UnknownType = 4,  // frame type the server does not recognise
  BadStream = 5,    // unknown stream id, or Open on an id already in use
  BadPort = 6,      // port index out of range for the stream
  TooLarge = 7,     // declared payload exceeds kMaxPayload
  Draining = 8,     // server is shutting down; no new streams
  BadTopology = 9,  // topology text failed to parse or compile
  BadState = 10,    // frame invalid in the current state (e.g. before Hello)
  Internal = 11,
  // The admission controller refused the Open: a qos budget (channel
  // bytes/slots, nodes, tenant fan-out, dummy ratio) would be exceeded.
  // Like Draining this is a SOFT error -- the connection stays open, the
  // stream id stays free, and the client may retry later or open a
  // cheaper stream. The Error frame carries the predicted TenantCost.
  AdmissionRejected = 12,
};

[[nodiscard]] const char* to_string(ErrorCode c);

struct FrameHeader {
  std::uint32_t length = 0;  // payload bytes
  FrameType type = FrameType::Error;
  std::uint8_t flags = 0;
  std::uint16_t stream = 0;
};

// Serializes the header into exactly kHeaderSize bytes at out[0..8).
void encode_header(const FrameHeader& h, std::uint8_t* out);
// Parses a header; nullopt when the declared length exceeds kMaxPayload or
// the type byte is outside the known range (the caller then errors the
// connection -- a desynchronized peer must not make the server allocate).
[[nodiscard]] std::optional<FrameHeader> decode_header(const std::uint8_t* in);

// Little-endian payload writer.
class Writer {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v);
  // u32 length prefix + raw bytes.
  void str(const std::string& s);
  void value(const runtime::Value& v);

  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const { return buf_; }
  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

// Sticky-failure payload reader: the first short or malformed read flips
// ok() to false and every subsequent accessor returns a zero value, so
// frame decoders can parse straight-line and check ok() once at the end.
// Never reads past [data, data+size).
class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  [[nodiscard]] std::uint8_t u8();
  [[nodiscard]] std::uint16_t u16();
  [[nodiscard]] std::uint32_t u32();
  [[nodiscard]] std::uint64_t u64();
  [[nodiscard]] std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  [[nodiscard]] double f64();
  [[nodiscard]] std::string str();
  [[nodiscard]] runtime::Value value();

  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] std::size_t remaining() const { return size_ - pos_; }
  // A well-formed frame consumes its payload exactly.
  [[nodiscard]] bool done() const { return ok_ && pos_ == size_; }

 private:
  [[nodiscard]] bool take(std::size_t n);

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

// --- typed frames -------------------------------------------------------

struct HelloFrame {
  std::uint32_t magic = kMagic;
  std::uint16_t version_min = kProtocolVersion;
  std::uint16_t version_max = kProtocolVersion;
};

struct HelloOkFrame {
  std::uint16_t version = kProtocolVersion;
};

// The workload half of Open: enough to reconstruct the exact kernel vector
// on either side of the wire (see net::make_kernels).
enum class KernelKind : std::uint8_t {
  Passthrough = 0,  // pass_all everywhere
  Relay = 1,        // workloads::relay_kernels(pass_rate, seed)
  Wedge = 2,        // node 0 adversarial_prefix_filter(1, wedge_prefix),
                    // pass-through elsewhere: the Fig. 2 deadlock driver
};

struct OpenFrame {
  std::uint8_t backend = 0;  // exec::Backend
  std::uint8_t mode = 0;     // runtime::DummyMode; None = avoidance off
  KernelKind kernel = KernelKind::Passthrough;
  double pass_rate = 1.0;
  std::uint64_t seed = 0;
  std::uint64_t wedge_prefix = 0;
  std::uint32_t feed_capacity = 256;
  std::uint32_t egress_capacity = 1024;
  std::uint32_t batch = 1;
  // DRR scheduling weight for this tenant on the server's shared pool
  // (rounded to an integer grant, clamped >= 1; the tenant's latest open
  // wins). 1.0 = equal share.
  double weight = 1.0;
  std::string tenant = "default";
  std::string topology;  // graph::to_text format
};

struct OpenOkFrame {
  std::uint16_t inputs = 0;   // one per source node
  std::uint16_t outputs = 0;  // one per sink node
  std::uint8_t cache_hit = 0;  // topology signature hit the CompileCache
};

struct PushBatchFrame {
  std::uint16_t port = 0;
  std::vector<runtime::Value> values;
};

struct PushAckFrame {
  std::uint32_t accepted = 0;
  std::uint8_t ended = 0;  // port closed or stream ended; retrying is futile
};

struct PollFrame {
  std::uint16_t port = 0;
  std::uint32_t max_items = 0;
};

struct DeliverFrame {
  struct Item {
    std::uint64_t seq = 0;
    runtime::Value value;
  };
  std::uint16_t port = 0;
  std::uint8_t ended = 0;  // EOS consumed: no further items will arrive
  std::vector<Item> items;
};

struct CloseFrame {
  std::uint16_t port = 0;
};

// Finish and Stats carry no payload.

// The exec::RunReport, bit for bit (wall_seconds rides along but is
// explicitly excluded from differential comparisons -- it is wall clock).
struct VerdictFrame {
  exec::RunReport report;
};

struct StatsOkFrame {
  std::string prometheus;  // merged text exposition page
};

struct ErrorFrame {
  ErrorCode code = ErrorCode::Internal;
  std::string message;
  // AdmissionRejected detail: the cost model's prediction for the refused
  // open, so a client can size a retry without guessing. has_cost = 0 on
  // every other code (the fields still ride the wire, zeroed -- fixed
  // layout keeps the decoder straight-line).
  std::uint8_t has_cost = 0;
  std::uint64_t predicted_slots = 0;
  std::uint64_t predicted_bytes = 0;
  std::uint64_t predicted_nodes = 0;
  double predicted_dummy_ratio = 0.0;
};

// Snapshot is one non-blocking begin-or-poll step (the server never parks
// its event loop on a barrier): the first Snapshot on a stream begins the
// barrier, every Snapshot answers with the current state, and the client
// re-sends until complete -- mirroring Stream::snapshot_begin/snapshot_poll.
// Carries no payload fields beyond the header's stream id.
struct SnapshotFrame {};

struct SnapshotOkFrame {
  std::uint8_t complete = 0;  // 0 = barrier still pending, re-send Snapshot
  // complete != 0: ckpt::serialize(StreamSnapshot) -- the versioned blob,
  // restorable here (Restore) or by any later daemon over the same
  // topology. Must fit kMaxPayload; size the stream's traffic accordingly.
  std::string snapshot;
};

// Open's fields plus the snapshot blob: starts a NEW stream id rehydrated
// at the cut (Session::restore semantics -- the client then replays pushes
// and closes from each PortCut::next_seq and dedupes re-delivered egress
// by seq). The topology, workload and mode must match the snapshot's
// signature or the server answers BadState.
struct RestoreFrame {
  OpenFrame open;
  std::string snapshot;
};

struct RestoreOkFrame {
  std::uint16_t inputs = 0;
  std::uint16_t outputs = 0;
  std::uint8_t cache_hit = 0;
  std::uint64_t epoch = 0;  // snapshot.epoch + 1
};

// --- encode/decode ------------------------------------------------------
// encode_* appends the payload to a Writer; decode_* parses a payload and
// returns nullopt on any malformation (short, trailing bytes, bad enum,
// oversized embedded string/batch).

void encode(const HelloFrame& f, Writer& w);
void encode(const HelloOkFrame& f, Writer& w);
void encode(const OpenFrame& f, Writer& w);
void encode(const OpenOkFrame& f, Writer& w);
void encode(const PushBatchFrame& f, Writer& w);
void encode(const PushAckFrame& f, Writer& w);
void encode(const PollFrame& f, Writer& w);
void encode(const DeliverFrame& f, Writer& w);
void encode(const CloseFrame& f, Writer& w);
void encode(const VerdictFrame& f, Writer& w);
void encode(const StatsOkFrame& f, Writer& w);
void encode(const ErrorFrame& f, Writer& w);
void encode(const SnapshotOkFrame& f, Writer& w);
void encode(const RestoreFrame& f, Writer& w);
void encode(const RestoreOkFrame& f, Writer& w);

[[nodiscard]] std::optional<HelloFrame> decode_hello(const std::uint8_t* p,
                                                     std::size_t n);
[[nodiscard]] std::optional<HelloOkFrame> decode_hello_ok(const std::uint8_t* p,
                                                          std::size_t n);
[[nodiscard]] std::optional<OpenFrame> decode_open(const std::uint8_t* p,
                                                   std::size_t n);
[[nodiscard]] std::optional<OpenOkFrame> decode_open_ok(const std::uint8_t* p,
                                                        std::size_t n);
[[nodiscard]] std::optional<PushBatchFrame> decode_push_batch(
    const std::uint8_t* p, std::size_t n);
[[nodiscard]] std::optional<PushAckFrame> decode_push_ack(const std::uint8_t* p,
                                                          std::size_t n);
[[nodiscard]] std::optional<PollFrame> decode_poll(const std::uint8_t* p,
                                                   std::size_t n);
[[nodiscard]] std::optional<DeliverFrame> decode_deliver(const std::uint8_t* p,
                                                         std::size_t n);
[[nodiscard]] std::optional<CloseFrame> decode_close(const std::uint8_t* p,
                                                     std::size_t n);
[[nodiscard]] std::optional<VerdictFrame> decode_verdict(const std::uint8_t* p,
                                                         std::size_t n);
[[nodiscard]] std::optional<StatsOkFrame> decode_stats_ok(const std::uint8_t* p,
                                                          std::size_t n);
[[nodiscard]] std::optional<ErrorFrame> decode_error(const std::uint8_t* p,
                                                     std::size_t n);
[[nodiscard]] std::optional<SnapshotOkFrame> decode_snapshot_ok(
    const std::uint8_t* p, std::size_t n);
[[nodiscard]] std::optional<RestoreFrame> decode_restore(const std::uint8_t* p,
                                                         std::size_t n);
[[nodiscard]] std::optional<RestoreOkFrame> decode_restore_ok(
    const std::uint8_t* p, std::size_t n);

// Convenience: header + payload in one buffer, ready to write to a socket.
[[nodiscard]] std::vector<std::uint8_t> make_frame(FrameType type,
                                                   std::uint16_t stream,
                                                   Writer payload);

}  // namespace sdaf::net
