#include "src/net/client.h"

#include <utility>

namespace sdaf::net {

std::optional<Client> Client::connect_unix(const std::string& path) {
  Fd fd = net::connect_unix(path);
  if (!fd.valid()) return std::nullopt;
  Client c(std::move(fd));
  c.hello();
  return c;
}

std::optional<Client> Client::connect_tcp(const std::string& host,
                                          std::uint16_t port) {
  Fd fd = net::connect_tcp(host, port);
  if (!fd.valid()) return std::nullopt;
  Client c(std::move(fd));
  c.hello();
  return c;
}

void Client::hello() {
  HelloFrame f;
  Writer w;
  encode(f, w);
  const Reply reply =
      round_trip(FrameType::Hello, 0, std::move(w), FrameType::HelloOk);
  const auto ok = decode_hello_ok(reply.payload.data(), reply.payload.size());
  if (!ok.has_value() || ok->version != kProtocolVersion)
    throw ProtocolError(ErrorCode::Version, "unusable HelloOk");
}

Client::Reply Client::round_trip(FrameType type, std::uint16_t stream,
                                 Writer payload, FrameType expect) {
  const std::vector<std::uint8_t> frame =
      make_frame(type, stream, std::move(payload));
  if (!send_all(fd_, frame.data(), frame.size()))
    throw ProtocolError(ErrorCode::Internal, "send failed (peer gone?)");

  std::uint8_t header_bytes[kHeaderSize];
  if (!recv_exact(fd_, header_bytes, kHeaderSize))
    throw ProtocolError(ErrorCode::Internal, "connection closed mid-reply");
  const auto h = decode_header(header_bytes);
  if (!h.has_value())
    throw ProtocolError(ErrorCode::BadFrame, "malformed reply header");
  Reply reply;
  reply.header = *h;
  reply.payload.resize(h->length);
  if (h->length > 0 &&
      !recv_exact(fd_, reply.payload.data(), reply.payload.size()))
    throw ProtocolError(ErrorCode::Internal, "connection closed mid-payload");

  if (reply.header.type == FrameType::Error) {
    const auto e = decode_error(reply.payload.data(), reply.payload.size());
    if (!e.has_value())
      throw ProtocolError(ErrorCode::BadFrame, "malformed Error frame");
    throw ProtocolError(e->code, e->message);
  }
  if (reply.header.type != expect || reply.header.stream != stream)
    throw ProtocolError(ErrorCode::BadFrame, "unexpected reply frame");
  return reply;
}

ClientStream Client::open(std::uint16_t id, const OpenFrame& spec) {
  Writer w;
  encode(spec, w);
  const Reply reply =
      round_trip(FrameType::Open, id, std::move(w), FrameType::OpenOk);
  const auto ok = decode_open_ok(reply.payload.data(), reply.payload.size());
  if (!ok.has_value())
    throw ProtocolError(ErrorCode::BadFrame, "malformed OpenOk");
  return ClientStream(this, id, *ok);
}

std::string Client::stats() {
  const Reply reply =
      round_trip(FrameType::Stats, 0, Writer{}, FrameType::StatsOk);
  const auto ok = decode_stats_ok(reply.payload.data(), reply.payload.size());
  if (!ok.has_value())
    throw ProtocolError(ErrorCode::BadFrame, "malformed StatsOk");
  return ok->prometheus;
}

PushAckFrame ClientStream::push_some(
    std::uint16_t port, const std::vector<runtime::Value>& values) {
  PushBatchFrame f;
  f.port = port;
  f.values = values;
  Writer w;
  encode(f, w);
  const Client::Reply reply = client_->round_trip(
      FrameType::PushBatch, id_, std::move(w), FrameType::PushAck);
  const auto ack =
      decode_push_ack(reply.payload.data(), reply.payload.size());
  if (!ack.has_value())
    throw ProtocolError(ErrorCode::BadFrame, "malformed PushAck");
  return *ack;
}

std::size_t ClientStream::push(std::uint16_t port,
                               std::vector<runtime::Value> values) {
  std::size_t accepted = 0;
  while (accepted < values.size()) {
    const std::vector<runtime::Value> rest(values.begin() + accepted,
                                           values.end());
    const PushAckFrame ack = push_some(port, rest);
    accepted += ack.accepted;
    if (ack.ended != 0) break;  // retrying cannot make progress anymore
  }
  return accepted;
}

DeliverFrame ClientStream::poll(std::uint16_t port, std::uint32_t max_items) {
  PollFrame f;
  f.port = port;
  f.max_items = max_items;
  Writer w;
  encode(f, w);
  const Client::Reply reply = client_->round_trip(
      FrameType::Poll, id_, std::move(w), FrameType::Deliver);
  auto d = decode_deliver(reply.payload.data(), reply.payload.size());
  if (!d.has_value())
    throw ProtocolError(ErrorCode::BadFrame, "malformed Deliver");
  return std::move(*d);
}

void ClientStream::close(std::uint16_t port) {
  CloseFrame f;
  f.port = port;
  Writer w;
  encode(f, w);
  const Client::Reply reply = client_->round_trip(
      FrameType::Close, id_, std::move(w), FrameType::CloseOk);
  const auto ok = decode_close(reply.payload.data(), reply.payload.size());
  if (!ok.has_value())
    throw ProtocolError(ErrorCode::BadFrame, "malformed CloseOk");
}

exec::RunReport ClientStream::finish() {
  // No client-side drain: the server's Stream::finish() closes any open
  // input ports and drains (discarding) whatever remains on the egress
  // taps itself, so the EOS flood always completes and a wedged stream
  // still certifies. Callers that want the output tail poll until
  // Deliver.ended before calling finish().
  const Client::Reply reply =
      client_->round_trip(FrameType::Finish, id_, Writer{}, FrameType::Verdict);
  const auto v = decode_verdict(reply.payload.data(), reply.payload.size());
  if (!v.has_value())
    throw ProtocolError(ErrorCode::BadFrame, "malformed Verdict");
  return v->report;
}

}  // namespace sdaf::net
