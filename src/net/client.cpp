#include "src/net/client.h"

#include <cerrno>
#include <chrono>
#include <thread>
#include <utility>

namespace sdaf::net {

namespace {

bool retryable_connect_errno(int err, bool unix_socket) {
  if (err == ECONNREFUSED || err == EAGAIN || err == ECONNRESET) return true;
  // A restarting daemon has not re-bound its socket file yet.
  return unix_socket && err == ENOENT;
}

// Exponential backoff jittered +-50%, so a fleet of clients reconnecting
// to a reborn daemon decorrelates instead of stampeding. The jitter seed
// is the clock itself -- no shared state, no determinism required.
void backoff_sleep(const ConnectOptions& retry, int attempt) {
  auto gap = retry.backoff * (1 << attempt);
  const std::uint64_t now = static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
  // splitmix64 finisher on the clock: cheap, uniform enough for jitter.
  std::uint64_t z = now + 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  z ^= z >> 31;
  // Scale into [50%, 150%] of the nominal gap.
  const auto jittered = gap / 2 + (gap * (z % 1024)) / 1024;
  std::this_thread::sleep_for(jittered);
}

template <typename ConnectFn>
std::optional<Fd> connect_with_retry(const ConnectOptions& retry,
                                     bool unix_socket, ConnectFn connect_fn) {
  const int attempts = retry.attempts > 0 ? retry.attempts : 1;
  for (int attempt = 0;; ++attempt) {
    int err = 0;
    Fd fd = connect_fn(&err);
    if (fd.valid()) return fd;
    if (attempt + 1 >= attempts || !retryable_connect_errno(err, unix_socket))
      return std::nullopt;
    backoff_sleep(retry, attempt);
  }
}

}  // namespace

std::optional<Client> Client::connect_unix(const std::string& path,
                                           const ConnectOptions& retry) {
  auto fd = connect_with_retry(retry, /*unix_socket=*/true, [&](int* err) {
    return net::connect_unix(path, err);
  });
  if (!fd.has_value()) return std::nullopt;
  Client c(std::move(*fd));
  c.hello();
  return c;
}

std::optional<Client> Client::connect_tcp(const std::string& host,
                                          std::uint16_t port,
                                          const ConnectOptions& retry) {
  auto fd = connect_with_retry(retry, /*unix_socket=*/false, [&](int* err) {
    return net::connect_tcp(host, port, err);
  });
  if (!fd.has_value()) return std::nullopt;
  Client c(std::move(*fd));
  c.hello();
  return c;
}

void Client::hello() {
  HelloFrame f;
  Writer w;
  encode(f, w);
  const Reply reply =
      round_trip(FrameType::Hello, 0, std::move(w), FrameType::HelloOk);
  const auto ok = decode_hello_ok(reply.payload.data(), reply.payload.size());
  if (!ok.has_value() || ok->version != kProtocolVersion)
    throw ProtocolError(ErrorCode::Version, "unusable HelloOk");
}

Client::Reply Client::round_trip(FrameType type, std::uint16_t stream,
                                 Writer payload, FrameType expect) {
  const std::vector<std::uint8_t> frame =
      make_frame(type, stream, std::move(payload));
  if (!send_all(fd_, frame.data(), frame.size()))
    throw ProtocolError(ErrorCode::Internal, "send failed (peer gone?)");

  std::uint8_t header_bytes[kHeaderSize];
  if (!recv_exact(fd_, header_bytes, kHeaderSize))
    throw ProtocolError(ErrorCode::Internal, "connection closed mid-reply");
  const auto h = decode_header(header_bytes);
  if (!h.has_value())
    throw ProtocolError(ErrorCode::BadFrame, "malformed reply header");
  Reply reply;
  reply.header = *h;
  reply.payload.resize(h->length);
  if (h->length > 0 &&
      !recv_exact(fd_, reply.payload.data(), reply.payload.size()))
    throw ProtocolError(ErrorCode::Internal, "connection closed mid-payload");

  if (reply.header.type == FrameType::Error) {
    const auto e = decode_error(reply.payload.data(), reply.payload.size());
    if (!e.has_value())
      throw ProtocolError(ErrorCode::BadFrame, "malformed Error frame");
    if (e->code == ErrorCode::AdmissionRejected) {
      OpenRejectedError::PredictedCost cost;
      if (e->has_cost != 0) {
        cost.channel_slots = e->predicted_slots;
        cost.channel_bytes = e->predicted_bytes;
        cost.nodes = e->predicted_nodes;
        cost.dummy_overhead_ratio = e->predicted_dummy_ratio;
      }
      throw OpenRejectedError(e->message, cost);
    }
    throw ProtocolError(e->code, e->message);
  }
  if (reply.header.type != expect || reply.header.stream != stream)
    throw ProtocolError(ErrorCode::BadFrame, "unexpected reply frame");
  return reply;
}

ClientStream Client::open(std::uint16_t id, const OpenFrame& spec) {
  Writer w;
  encode(spec, w);
  const Reply reply =
      round_trip(FrameType::Open, id, std::move(w), FrameType::OpenOk);
  const auto ok = decode_open_ok(reply.payload.data(), reply.payload.size());
  if (!ok.has_value())
    throw ProtocolError(ErrorCode::BadFrame, "malformed OpenOk");
  return ClientStream(this, id, *ok);
}

ClientStream Client::restore(std::uint16_t id, const OpenFrame& spec,
                             const std::vector<std::uint8_t>& snapshot) {
  RestoreFrame f;
  f.open = spec;
  f.snapshot.assign(snapshot.begin(), snapshot.end());
  Writer w;
  encode(f, w);
  const Reply reply =
      round_trip(FrameType::Restore, id, std::move(w), FrameType::RestoreOk);
  const auto ok =
      decode_restore_ok(reply.payload.data(), reply.payload.size());
  if (!ok.has_value())
    throw ProtocolError(ErrorCode::BadFrame, "malformed RestoreOk");
  return ClientStream(this, id, *ok);
}

std::string Client::stats() {
  const Reply reply =
      round_trip(FrameType::Stats, 0, Writer{}, FrameType::StatsOk);
  const auto ok = decode_stats_ok(reply.payload.data(), reply.payload.size());
  if (!ok.has_value())
    throw ProtocolError(ErrorCode::BadFrame, "malformed StatsOk");
  return ok->prometheus;
}

PushAckFrame ClientStream::push_some(
    std::uint16_t port, const std::vector<runtime::Value>& values) {
  PushBatchFrame f;
  f.port = port;
  f.values = values;
  Writer w;
  encode(f, w);
  const Client::Reply reply = client_->round_trip(
      FrameType::PushBatch, id_, std::move(w), FrameType::PushAck);
  const auto ack =
      decode_push_ack(reply.payload.data(), reply.payload.size());
  if (!ack.has_value())
    throw ProtocolError(ErrorCode::BadFrame, "malformed PushAck");
  return *ack;
}

std::size_t ClientStream::push(std::uint16_t port,
                               std::vector<runtime::Value> values) {
  std::size_t accepted = 0;
  while (accepted < values.size()) {
    const std::vector<runtime::Value> rest(values.begin() + accepted,
                                           values.end());
    const PushAckFrame ack = push_some(port, rest);
    accepted += ack.accepted;
    if (ack.ended != 0) break;  // retrying cannot make progress anymore
  }
  return accepted;
}

DeliverFrame ClientStream::poll(std::uint16_t port, std::uint32_t max_items) {
  PollFrame f;
  f.port = port;
  f.max_items = max_items;
  Writer w;
  encode(f, w);
  const Client::Reply reply = client_->round_trip(
      FrameType::Poll, id_, std::move(w), FrameType::Deliver);
  auto d = decode_deliver(reply.payload.data(), reply.payload.size());
  if (!d.has_value())
    throw ProtocolError(ErrorCode::BadFrame, "malformed Deliver");
  return std::move(*d);
}

std::optional<std::vector<std::uint8_t>> ClientStream::snapshot_poll() {
  const Client::Reply reply = client_->round_trip(
      FrameType::Snapshot, id_, Writer{}, FrameType::SnapshotOk);
  const auto ok =
      decode_snapshot_ok(reply.payload.data(), reply.payload.size());
  if (!ok.has_value())
    throw ProtocolError(ErrorCode::BadFrame, "malformed SnapshotOk");
  if (ok->complete == 0) return std::nullopt;
  return std::vector<std::uint8_t>(ok->snapshot.begin(), ok->snapshot.end());
}

std::optional<std::vector<std::uint8_t>> ClientStream::snapshot(
    std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  for (;;) {
    auto bytes = snapshot_poll();
    if (bytes.has_value()) return bytes;
    if (std::chrono::steady_clock::now() >= deadline) return std::nullopt;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

void ClientStream::close(std::uint16_t port) {
  CloseFrame f;
  f.port = port;
  Writer w;
  encode(f, w);
  const Client::Reply reply = client_->round_trip(
      FrameType::Close, id_, std::move(w), FrameType::CloseOk);
  const auto ok = decode_close(reply.payload.data(), reply.payload.size());
  if (!ok.has_value())
    throw ProtocolError(ErrorCode::BadFrame, "malformed CloseOk");
}

exec::RunReport ClientStream::finish() {
  // No client-side drain: the server's Stream::finish() closes any open
  // input ports and drains (discarding) whatever remains on the egress
  // taps itself, so the EOS flood always completes and a wedged stream
  // still certifies. Callers that want the output tail poll until
  // Deliver.ended before calling finish().
  const Client::Reply reply =
      client_->round_trip(FrameType::Finish, id_, Writer{}, FrameType::Verdict);
  const auto v = decode_verdict(reply.payload.data(), reply.payload.size());
  if (!v.has_value())
    throw ProtocolError(ErrorCode::BadFrame, "malformed Verdict");
  return v->report;
}

}  // namespace sdaf::net
