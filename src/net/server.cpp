#include "src/net/server.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <optional>
#include <utility>

#include "src/ckpt/snapshot.h"
#include "src/core/compile_cache.h"
#include "src/exec/session.h"
#include "src/graph/io.h"
#include "src/net/workload.h"
#include "src/obs/export.h"
#include "src/qos/cost.h"
#include "src/qos/credit.h"
#include "src/runtime/pool_executor.h"

namespace sdaf::net {

namespace {

// Read-buffer hard cap: one maximal frame plus the next header. A peer
// that streams bytes without ever completing a frame is bounded by this.
constexpr std::size_t kMaxReadBuffer = kMaxPayload + kHeaderSize;

// One server-side stream: the graph is owned here (exec::Session keeps a
// reference), so the whole bundle lives and dies with the connection
// entry. Heap-allocated and never moved -- Session's graph reference and
// Stream's Core pointers stay stable.
struct ServerStream {
  StreamGraph graph;
  OpenFrame spec;
  std::shared_ptr<const core::CompileResult> compiled;
  std::unique_ptr<exec::Session> session;
  std::unique_ptr<exec::Stream> stream;
  std::uint64_t id = 0;  // server-global, for metrics disambiguation
};

struct Conn {
  Fd fd;
  std::uint64_t id = 0;
  bool saw_hello = false;
  // Error sent: flush the write buffer, then close. No further frames are
  // processed (whatever else the peer pipelined is discarded).
  bool closing = false;
  std::vector<std::uint8_t> rbuf;
  std::vector<std::uint8_t> wbuf;
  std::size_t wpos = 0;  // flushed prefix of wbuf
  std::map<std::uint16_t, std::unique_ptr<ServerStream>> streams;
};

// ServiceStats mirror with relaxed atomic fields: every counter is mutated
// only on the server thread, but Server::stats() reads from arbitrary
// threads (test wait-loops poll it), so the fields must be atomic. Field
// names match ServiceStats so the ++/+= sites read naturally; relaxed is
// enough -- these are diagnostics, not synchronization.
struct AtomicServiceStats {
  std::atomic<std::uint64_t> connections_total{0};
  std::atomic<std::uint64_t> connections_open{0};
  std::atomic<std::uint64_t> streams_total{0};
  std::atomic<std::uint64_t> streams_open{0};
  std::atomic<std::uint64_t> frames_total{0};
  std::atomic<std::uint64_t> errors_total{0};
  std::atomic<std::uint64_t> items_in_total{0};
  std::atomic<std::uint64_t> items_out_total{0};
  std::atomic<std::uint64_t> push_timeouts_total{0};
  std::atomic<std::uint64_t> compile_cache_hits_total{0};
  std::atomic<std::uint64_t> snapshots_total{0};
  std::atomic<std::uint64_t> restores_total{0};
  std::atomic<std::uint64_t> sessions_aborted_total{0};

  [[nodiscard]] ServiceStats snapshot() const {
    ServiceStats s;
    s.connections_total = connections_total.load(std::memory_order_relaxed);
    s.connections_open = connections_open.load(std::memory_order_relaxed);
    s.streams_total = streams_total.load(std::memory_order_relaxed);
    s.streams_open = streams_open.load(std::memory_order_relaxed);
    s.frames_total = frames_total.load(std::memory_order_relaxed);
    s.errors_total = errors_total.load(std::memory_order_relaxed);
    s.items_in_total = items_in_total.load(std::memory_order_relaxed);
    s.items_out_total = items_out_total.load(std::memory_order_relaxed);
    s.push_timeouts_total =
        push_timeouts_total.load(std::memory_order_relaxed);
    s.compile_cache_hits_total =
        compile_cache_hits_total.load(std::memory_order_relaxed);
    s.snapshots_total = snapshots_total.load(std::memory_order_relaxed);
    s.restores_total = restores_total.load(std::memory_order_relaxed);
    s.sessions_aborted_total =
        sessions_aborted_total.load(std::memory_order_relaxed);
    return s;
  }
};

}  // namespace

struct Server::Impl {
  ServerOptions options;
  Server* self = nullptr;
  Fd tcp_listener;
  Fd unix_listener;
  std::uint16_t tcp_port = 0;
  std::unique_ptr<runtime::PoolExecutor> pool;
  core::CompileCache* cache = nullptr;
  std::vector<std::unique_ptr<Conn>> conns;
  AtomicServiceStats stats;
  std::uint64_t next_conn_id = 1;
  std::uint64_t next_stream_id = 1;
  // QoS plane: admission ledger over ServerOptions::budgets, plus one
  // credit gauge per tenant (shared across all that tenant's streams, so
  // the in-flight window is per tenant, not per stream). Both outlive
  // every stream -- declared before `conns` would also work, but teardown
  // order is already safe: run() clears conns before Impl destructs.
  qos::Admission admission;
  qos::TenantTable tenants;

  explicit Impl(ServerOptions opts)
      : options(std::move(opts)),
        admission(options.budgets),
        tenants(options.tenant_credits) {}

  [[nodiscard]] bool draining() const {
    return self->drain_.load(std::memory_order_acquire);
  }
  [[nodiscard]] bool stopping() const {
    return self->stop_.load(std::memory_order_acquire);
  }

  bool start() {
    if (options.unix_path.empty() && !options.tcp) {
      std::fprintf(stderr, "sdafd: no listener configured\n");
      return false;
    }
    if (!options.unix_path.empty()) {
      unix_listener = listen_unix(options.unix_path);
      if (!unix_listener.valid()) {
        std::fprintf(stderr, "sdafd: cannot listen on unix socket %s: %s\n",
                     options.unix_path.c_str(), std::strerror(errno));
        return false;
      }
      (void)set_nonblocking(unix_listener, true);
    }
    if (options.tcp) {
      tcp_listener = listen_tcp(options.host, options.tcp_port);
      if (!tcp_listener.valid()) {
        std::fprintf(stderr, "sdafd: cannot listen on %s:%u: %s\n",
                     options.host.c_str(), options.tcp_port,
                     std::strerror(errno));
        return false;
      }
      (void)set_nonblocking(tcp_listener, true);
      tcp_port = bound_port(tcp_listener);
    }
    runtime::PoolExecutor::Options popts;
    popts.workers = options.pool_workers;
    pool = std::make_unique<runtime::PoolExecutor>(popts);
    cache = options.cache != nullptr ? options.cache
                                     : &exec::Session::process_cache();
    return true;
  }

  // --- outbound ---------------------------------------------------------

  void queue_frame(Conn& c, FrameType type, std::uint16_t stream,
                   Writer payload) {
    const std::vector<std::uint8_t> frame =
        make_frame(type, stream, std::move(payload));
    c.wbuf.insert(c.wbuf.end(), frame.begin(), frame.end());
  }

  void queue_error(Conn& c, std::uint16_t stream, ErrorCode code,
                   std::string message) {
    ++stats.errors_total;
    ErrorFrame e;
    e.code = code;
    e.message = std::move(message);
    Writer w;
    encode(e, w);
    queue_frame(c, FrameType::Error, stream, std::move(w));
    // Draining and AdmissionRejected are soft refusals: the Open is
    // rejected but the connection stays up -- in-flight streams can still
    // Finish (the point of a graceful drain), and an over-budget tenant
    // may retry a cheaper open. Every other error means the peer is broken
    // or hostile, and the connection goes down with it.
    if (code != ErrorCode::Draining && code != ErrorCode::AdmissionRejected)
      c.closing = true;
  }

  void queue_admission_rejected(Conn& c, std::uint16_t stream,
                                const qos::Rejection& rej) {
    ++stats.errors_total;
    ErrorFrame e;
    e.code = ErrorCode::AdmissionRejected;
    e.message = rej.reason;
    e.has_cost = 1;
    e.predicted_slots = rej.predicted.channel_slots;
    e.predicted_bytes = rej.predicted.channel_bytes;
    e.predicted_nodes = rej.predicted.nodes;
    e.predicted_dummy_ratio = rej.predicted.dummy_overhead_ratio;
    Writer w;
    encode(e, w);
    queue_frame(c, FrameType::Error, stream, std::move(w));
    // Soft, like Draining: connection survives, the stream id stays free.
  }

  // Flushes as much of the write buffer as the socket takes right now.
  // false = hard error, drop the connection.
  bool flush(Conn& c) {
    while (c.wpos < c.wbuf.size()) {
      const ssize_t rc = ::send(c.fd.get(), c.wbuf.data() + c.wpos,
                                c.wbuf.size() - c.wpos, MSG_NOSIGNAL);
      if (rc > 0) {
        c.wpos += static_cast<std::size_t>(rc);
        continue;
      }
      if (rc < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
      if (rc < 0 && errno == EINTR) continue;
      return false;
    }
    c.wbuf.clear();
    c.wpos = 0;
    return true;
  }

  // --- frame handlers ---------------------------------------------------

  void handle_hello(Conn& c, std::uint16_t stream, const std::uint8_t* p,
                    std::size_t n) {
    const auto f = decode_hello(p, n);
    if (!f.has_value() || stream != 0) {
      queue_error(c, 0, ErrorCode::BadFrame, "malformed Hello");
      return;
    }
    if (f->magic != kMagic) {
      queue_error(c, 0, ErrorCode::BadMagic, "not an sdaf client");
      return;
    }
    if (f->version_min > kProtocolVersion ||
        f->version_max < kProtocolVersion) {
      queue_error(c, 0, ErrorCode::Version,
                  "server speaks protocol version 1");
      return;
    }
    c.saw_hello = true;
    HelloOkFrame ok;
    ok.version = kProtocolVersion;
    Writer w;
    encode(ok, w);
    queue_frame(c, FrameType::HelloOk, 0, std::move(w));
  }

  // Shared by Open and Restore: parse + compile the topology, build the
  // session, open (snap == nullptr) or rehydrate the stream, register it
  // and reply OpenOk/RestoreOk. On failure the error is already queued.
  void open_stream(Conn& c, std::uint16_t stream, OpenFrame f,
                   const ckpt::StreamSnapshot* snap) {
    if (stream == 0 || c.streams.contains(stream)) {
      queue_error(c, stream, ErrorCode::BadStream,
                  "stream id 0 or already open");
      return;
    }
    if (draining()) {
      queue_error(c, stream, ErrorCode::Draining, "server is draining");
      return;
    }
    auto graph = parse_topology(f.topology);
    if (!graph.has_value()) {
      queue_error(c, stream, ErrorCode::BadTopology,
                  "topology rejected (parse, bounds, or cycle)");
      return;
    }

    auto s = std::make_unique<ServerStream>();
    s->graph = std::move(*graph);
    s->spec = std::move(f);
    s->id = next_stream_id++;

    exec::StreamSpec ss;
    ss.run.backend = static_cast<exec::Backend>(s->spec.backend);
    ss.run.mode = static_cast<runtime::DummyMode>(s->spec.mode);
    ss.run.tenant = s->spec.tenant;
    ss.run.batch = s->spec.batch;
    ss.run.pool = pool.get();
    ss.feed_capacity = s->spec.feed_capacity;
    ss.egress_capacity = s->spec.egress_capacity;

    bool cache_hit = false;
    if (ss.run.mode != runtime::DummyMode::None) {
      core::CompileOptions copts;
      copts.algorithm = ss.run.mode == runtime::DummyMode::NonPropagation
                            ? core::Algorithm::NonPropagation
                            : core::Algorithm::Propagation;
      const std::uint64_t hits_before = cache->stats().hits;
      s->compiled = cache->get_or_compile(s->graph, copts);
      cache_hit = cache->stats().hits > hits_before;
      if (cache_hit) ++stats.compile_cache_hits_total;
      if (s->compiled == nullptr || !s->compiled->ok) {
        const std::string why = s->compiled != nullptr
                                    ? s->compiled->diagnostics
                                    : std::string("compile failed");
        queue_error(c, stream, ErrorCode::BadTopology, why);
        return;
      }
      ss.run.apply(*s->compiled);
    }

    // Admission: predict the stream's footprint from its compiled
    // intervals and buffer bounds, and reserve it before ANY channel
    // memory is allocated or task scheduled. The lease's deleter returns
    // the reservation when the Stream is destroyed (Finish, connection
    // drop, or teardown) -- no hand-paired release.
    const qos::TenantCost cost = qos::estimate(s->graph, ss.run.intervals);
    if (auto rejected = admission.admit(ss.run.tenant, cost)) {
      queue_admission_rejected(c, stream, *rejected);
      return;
    }
    ss.lease = std::shared_ptr<void>(
        nullptr, [this, tenant = ss.run.tenant, cost](void*) {
          admission.release(tenant, cost);
        });
    // DRR weight + the tenant's shared credit gauge (unlimited gauges are
    // normalized away inside the stream core).
    ss.run.tenant_weight = s->spec.weight;
    ss.run.credits = tenants.gauge(ss.run.tenant);

    s->session = std::make_unique<exec::Session>(
        s->graph, make_kernels(s->graph, s->spec));
    if (snap == nullptr) {
      s->stream = std::make_unique<exec::Stream>(s->session->open(ss));
    } else {
      auto restored = s->session->restore(ss, *snap);
      if (!restored.has_value()) {
        // Wrong topology/workload/mode for the blob, wrong version, or an
        // internally inconsistent cut: refused before anything runs.
        queue_error(c, stream, ErrorCode::BadState,
                    "snapshot does not match this topology/mode");
        return;
      }
      s->stream = std::make_unique<exec::Stream>(std::move(*restored));
      ++stats.restores_total;
    }

    exec::Stream& live = *s->stream;
    c.streams.emplace(stream, std::move(s));
    ++stats.streams_total;
    ++stats.streams_open;

    Writer w;
    if (snap == nullptr) {
      OpenOkFrame ok;
      ok.inputs = static_cast<std::uint16_t>(live.input_count());
      ok.outputs = static_cast<std::uint16_t>(live.output_count());
      ok.cache_hit = cache_hit ? 1 : 0;
      encode(ok, w);
      queue_frame(c, FrameType::OpenOk, stream, std::move(w));
    } else {
      RestoreOkFrame ok;
      ok.inputs = static_cast<std::uint16_t>(live.input_count());
      ok.outputs = static_cast<std::uint16_t>(live.output_count());
      ok.cache_hit = cache_hit ? 1 : 0;
      ok.epoch = live.epoch();
      encode(ok, w);
      queue_frame(c, FrameType::RestoreOk, stream, std::move(w));
    }
  }

  void handle_open(Conn& c, std::uint16_t stream, const std::uint8_t* p,
                   std::size_t n) {
    auto f = decode_open(p, n);
    if (!f.has_value()) {
      queue_error(c, stream, ErrorCode::BadFrame, "malformed Open");
      return;
    }
    open_stream(c, stream, std::move(*f), nullptr);
  }

  void handle_restore(Conn& c, std::uint16_t stream, const std::uint8_t* p,
                      std::size_t n) {
    auto f = decode_restore(p, n);
    if (!f.has_value()) {
      queue_error(c, stream, ErrorCode::BadFrame, "malformed Restore");
      return;
    }
    const auto snap = ckpt::deserialize(
        reinterpret_cast<const std::uint8_t*>(f->snapshot.data()),
        f->snapshot.size());
    if (!snap.has_value()) {
      queue_error(c, stream, ErrorCode::BadFrame,
                  "snapshot bytes rejected (version or malformation)");
      return;
    }
    open_stream(c, stream, std::move(f->open), &*snap);
  }

  void handle_snapshot(Conn& c, std::uint16_t stream, std::size_t n) {
    if (n != 0) {
      queue_error(c, stream, ErrorCode::BadFrame,
                  "Snapshot carries no payload");
      return;
    }
    ServerStream* s = find_stream(c, stream);
    if (s == nullptr) return;
    // One non-blocking begin-or-poll step (constraint #1: the loop never
    // parks on a barrier). The first Snapshot begins the barrier; a false
    // begin means one is already pending, which is exactly the poll case.
    (void)s->stream->snapshot_begin();
    SnapshotOkFrame ok;
    if (auto snap = s->stream->snapshot_poll()) {
      const std::vector<std::uint8_t> bytes = ckpt::serialize(*snap);
      if (bytes.size() + kHeaderSize > kMaxPayload) {
        queue_error(c, stream, ErrorCode::TooLarge,
                    "serialized snapshot exceeds the frame payload cap");
        return;
      }
      ok.complete = 1;
      ok.snapshot.assign(reinterpret_cast<const char*>(bytes.data()),
                         bytes.size());
      ++stats.snapshots_total;
    }
    Writer w;
    encode(ok, w);
    queue_frame(c, FrameType::SnapshotOk, stream, std::move(w));
  }

  [[nodiscard]] ServerStream* find_stream(Conn& c, std::uint16_t stream) {
    const auto it = c.streams.find(stream);
    if (it == c.streams.end()) {
      queue_error(c, stream, ErrorCode::BadStream, "unknown stream id");
      return nullptr;
    }
    return it->second.get();
  }

  void handle_push_batch(Conn& c, std::uint16_t stream, const std::uint8_t* p,
                         std::size_t n) {
    auto f = decode_push_batch(p, n);
    if (!f.has_value()) {
      queue_error(c, stream, ErrorCode::BadFrame, "malformed PushBatch");
      return;
    }
    ServerStream* s = find_stream(c, stream);
    if (s == nullptr) return;
    if (f->port >= s->stream->input_count()) {
      queue_error(c, stream, ErrorCode::BadPort, "input port out of range");
      return;
    }
    exec::InputPort& port = s->stream->input(f->port);
    PushAckFrame ack;
    if (port.closed()) {
      ack.ended = 1;
    } else {
      // Constraint #1: bounded occupation of the event loop, never a
      // hard block. A short acceptance is the flow-control signal; the
      // client retries the remainder.
      const std::size_t count = f->values.size();
      ack.accepted = static_cast<std::uint32_t>(
          port.push_batch_for(std::move(f->values), options.push_wait));
      stats.items_in_total += ack.accepted;
      if (ack.accepted < count) {
        ++stats.push_timeouts_total;
        if (port.closed()) ack.ended = 1;
      }
    }
    Writer w;
    encode(ack, w);
    queue_frame(c, FrameType::PushAck, stream, std::move(w));
  }

  void handle_poll(Conn& c, std::uint16_t stream, const std::uint8_t* p,
                   std::size_t n) {
    const auto f = decode_poll(p, n);
    if (!f.has_value()) {
      queue_error(c, stream, ErrorCode::BadFrame, "malformed Poll");
      return;
    }
    ServerStream* s = find_stream(c, stream);
    if (s == nullptr) return;
    if (f->port >= s->stream->output_count()) {
      queue_error(c, stream, ErrorCode::BadPort, "output port out of range");
      return;
    }
    exec::OutputPort& port = s->stream->output(f->port);
    DeliverFrame d;
    d.port = f->port;
    std::vector<exec::OutputPort::Item> items;
    const std::size_t max =
        std::min<std::uint32_t>(f->max_items, options.max_poll_items);
    (void)port.poll_batch(&items, max);
    d.items.reserve(items.size());
    for (auto& item : items) {
      DeliverFrame::Item out;
      out.seq = item.seq;
      out.value = std::move(item.value);
      d.items.push_back(std::move(out));
    }
    d.ended = port.ended() ? 1 : 0;
    stats.items_out_total += d.items.size();
    Writer w;
    encode(d, w);
    queue_frame(c, FrameType::Deliver, stream, std::move(w));
  }

  void handle_close(Conn& c, std::uint16_t stream, const std::uint8_t* p,
                    std::size_t n) {
    const auto f = decode_close(p, n);
    if (!f.has_value()) {
      queue_error(c, stream, ErrorCode::BadFrame, "malformed Close");
      return;
    }
    ServerStream* s = find_stream(c, stream);
    if (s == nullptr) return;
    if (f->port >= s->stream->input_count()) {
      queue_error(c, stream, ErrorCode::BadPort, "input port out of range");
      return;
    }
    s->stream->input(f->port).close();
    CloseFrame ok;
    ok.port = f->port;
    Writer w;
    encode(ok, w);
    queue_frame(c, FrameType::CloseOk, stream, std::move(w));
  }

  void handle_finish(Conn& c, std::uint16_t stream, std::size_t n) {
    if (n != 0) {
      queue_error(c, stream, ErrorCode::BadFrame, "Finish carries no payload");
      return;
    }
    ServerStream* s = find_stream(c, stream);
    if (s == nullptr) return;
    // finish() closes any open ports, drains the taps, and waits for the
    // exact verdict. With avoidance armed this returns promptly; on an
    // unprotected wedge it returns once deadlock is certified (watchdog /
    // quiescence), which is the one deliberately-blocking call the
    // protocol exposes -- clients that closed every port and drained their
    // outputs (the Client::finish contract) see it return fast.
    VerdictFrame v;
    v.report = s->stream->finish();
    c.streams.erase(stream);
    --stats.streams_open;
    Writer w;
    encode(v, w);
    queue_frame(c, FrameType::Verdict, stream, std::move(w));
  }

  void handle_stats(Conn& c, std::uint16_t stream, std::size_t n) {
    if (n != 0 || stream != 0) {
      queue_error(c, stream, ErrorCode::BadFrame, "Stats carries no payload");
      return;
    }
    StatsOkFrame f;
    f.prometheus = stats_page();
    Writer w;
    encode(f, w);
    queue_frame(c, FrameType::StatsOk, 0, std::move(w));
  }

  [[nodiscard]] std::string stats_page() const {
    // Per-stream snapshots, merged into one exposition page (one TYPE per
    // family). Tenants are disambiguated per stream so two streams of the
    // same tenant never collide into duplicate series.
    std::vector<obs::MetricsSnapshot> snaps;
    for (const auto& c : conns) {
      for (const auto& [sid, s] : c->streams) {
        obs::MetricsSnapshot snap = s->stream->metrics();
        snap.tenant.tenant += "/" + std::to_string(s->id);
        snaps.push_back(std::move(snap));
      }
    }
    std::string page = obs::to_prometheus(snaps);

    // QoS families: per-tenant DRR lane accounting from the shared pool,
    // the admission counters, and each tenant's credit window. All family
    // names are disjoint from the per-stream ones, so appending keeps the
    // one-TYPE-per-family rule intact.
    page += obs::tenant_sched_to_prometheus(pool->tenant_metrics());
    page += obs::admission_to_prometheus(admission.admitted_total(),
                                         admission.rejected_total());
    {
      const auto escape = [](const std::string& s) {
        std::string out;
        for (const char ch : s) {
          if (ch == '\\' || ch == '"') out += '\\';
          if (ch == '\n') {
            out += "\\n";
            continue;
          }
          out += ch;
        }
        return out;
      };
      const auto entries = tenants.entries();
      page +=
          "# HELP sdaf_tenant_credit_limit Per-tenant in-flight credit "
          "window (0 = unlimited).\n# TYPE sdaf_tenant_credit_limit gauge\n";
      for (const auto& e : entries)
        page += "sdaf_tenant_credit_limit{tenant=\"" + escape(e.tenant) +
                "\"} " + std::to_string(e.limit) + "\n";
      page +=
          "# HELP sdaf_tenant_credits_in_flight Data items a tenant has "
          "pushed but its sources have not yet consumed.\n"
          "# TYPE sdaf_tenant_credits_in_flight gauge\n";
      for (const auto& e : entries)
        page += "sdaf_tenant_credits_in_flight{tenant=\"" + escape(e.tenant) +
                "\"} " + std::to_string(e.in_flight) + "\n";
    }

    // Service-level families, appended after the per-stream ones (family
    // names are disjoint, so the one-TYPE-per-family rule holds).
    const auto counter = [&page](const char* name, const char* help,
                                 std::uint64_t v) {
      page += "# HELP " + std::string(name) + " " + help + "\n";
      page += "# TYPE " + std::string(name) + " counter\n";
      page += std::string(name) + " " + std::to_string(v) + "\n";
    };
    const auto gauge = [&page](const char* name, const char* help,
                               std::uint64_t v) {
      page += "# HELP " + std::string(name) + " " + help + "\n";
      page += "# TYPE " + std::string(name) + " gauge\n";
      page += std::string(name) + " " + std::to_string(v) + "\n";
    };
    counter("sdafd_connections_total", "Connections accepted.",
            stats.connections_total);
    gauge("sdafd_connections_open", "Connections currently open.",
          stats.connections_open);
    counter("sdafd_streams_total", "Streams opened.", stats.streams_total);
    gauge("sdafd_streams_open", "Streams currently open.",
          stats.streams_open);
    counter("sdafd_frames_total", "Frames processed.", stats.frames_total);
    counter("sdafd_errors_total", "Error frames issued.",
            stats.errors_total);
    counter("sdafd_items_in_total", "Items ingested via PushBatch.",
            stats.items_in_total);
    counter("sdafd_items_out_total", "Items delivered via Deliver.",
            stats.items_out_total);
    counter("sdafd_push_timeouts_total",
            "PushBatch calls that hit the server's push deadline.",
            stats.push_timeouts_total);
    counter("sdafd_compile_cache_hits_total",
            "Opens whose topology hit the compile cache.",
            stats.compile_cache_hits_total);
    counter("sdafd_snapshots_total", "Completed barrier snapshots served.",
            stats.snapshots_total);
    counter("sdafd_restores_total", "Streams rehydrated via Restore.",
            stats.restores_total);
    counter("sdafd_sessions_aborted_total",
            "Streams aborted because their connection dropped mid-stream.",
            stats.sessions_aborted_total);
    return page;
  }

  void handle_frame(Conn& c, const FrameHeader& h, const std::uint8_t* p) {
    ++stats.frames_total;
    if (h.flags != 0) {
      queue_error(c, h.stream, ErrorCode::BadFrame, "nonzero flags");
      return;
    }
    if (!c.saw_hello && h.type != FrameType::Hello) {
      queue_error(c, h.stream, ErrorCode::BadState, "Hello first");
      return;
    }
    switch (h.type) {
      case FrameType::Hello:
        if (c.saw_hello) {
          queue_error(c, 0, ErrorCode::BadState, "duplicate Hello");
          return;
        }
        handle_hello(c, h.stream, p, h.length);
        return;
      case FrameType::Open:
        handle_open(c, h.stream, p, h.length);
        return;
      case FrameType::PushBatch:
        handle_push_batch(c, h.stream, p, h.length);
        return;
      case FrameType::Poll:
        handle_poll(c, h.stream, p, h.length);
        return;
      case FrameType::Close:
        handle_close(c, h.stream, p, h.length);
        return;
      case FrameType::Finish:
        handle_finish(c, h.stream, h.length);
        return;
      case FrameType::Stats:
        handle_stats(c, h.stream, h.length);
        return;
      case FrameType::Snapshot:
        handle_snapshot(c, h.stream, h.length);
        return;
      case FrameType::Restore:
        handle_restore(c, h.stream, p, h.length);
        return;
      default:
        // Server-to-client types arriving at the server, or anything else.
        queue_error(c, h.stream, ErrorCode::UnknownType,
                    "frame type not valid client-to-server");
        return;
    }
  }

  // Drains the socket into rbuf and handles every complete frame.
  // false = connection is done (peer closed, hard error, or protocol
  // violation with the error already queued and `closing` set).
  bool read_and_dispatch(Conn& c) {
    std::uint8_t chunk[64 * 1024];
    for (;;) {
      const ssize_t rc = ::recv(c.fd.get(), chunk, sizeof(chunk), 0);
      if (rc > 0) {
        if (c.rbuf.size() + static_cast<std::size_t>(rc) > kMaxReadBuffer) {
          queue_error(c, 0, ErrorCode::TooLarge, "read buffer overflow");
          return true;  // flush the error, then close
        }
        c.rbuf.insert(c.rbuf.end(), chunk, chunk + rc);
        continue;
      }
      if (rc == 0) return false;  // orderly close
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      return false;
    }
    std::size_t pos = 0;
    while (!c.closing && c.rbuf.size() - pos >= kHeaderSize) {
      const auto h = decode_header(c.rbuf.data() + pos);
      if (!h.has_value()) {
        queue_error(c, 0, ErrorCode::BadFrame, "malformed frame header");
        break;
      }
      if (c.rbuf.size() - pos - kHeaderSize < h->length) break;  // partial
      handle_frame(c, *h, c.rbuf.data() + pos + kHeaderSize);
      pos += kHeaderSize + h->length;
    }
    if (pos > 0) c.rbuf.erase(c.rbuf.begin(), c.rbuf.begin() + pos);
    return true;
  }

  void accept_from(const Fd& listener) {
    for (;;) {
      Fd fd = accept_conn(listener);
      if (!fd.valid()) return;  // EAGAIN or error: either way, done
      if (!set_nonblocking(fd, true)) continue;
      set_nodelay(fd);
      auto conn = std::make_unique<Conn>();
      conn->fd = std::move(fd);
      conn->id = next_conn_id++;
      conns.push_back(std::move(conn));
      ++stats.connections_total;
      ++stats.connections_open;
    }
  }

  void drop_conn(std::size_t i) {
    // A connection that vanishes mid-stream (peer died, protocol
    // violation) aborts its streams: every input port is closed here --
    // the dynamic EOS that lets the flood complete and a wedge certify
    // promptly -- and destroying the entry then finishes each Stream
    // (taps drained, verdict discarded) and reaps its Session. No orphan
    // ever holds pool slots or channel memory.
    for (auto& [sid, s] : conns[i]->streams) {
      ++stats.sessions_aborted_total;
      for (std::size_t p = 0; p < s->stream->input_count(); ++p)
        s->stream->input(p).close();
    }
    stats.streams_open -= conns[i]->streams.size();
    conns.erase(conns.begin() + static_cast<std::ptrdiff_t>(i));
    --stats.connections_open;
  }

  void run() {
    using Clock = std::chrono::steady_clock;
    std::optional<Clock::time_point> drain_deadline;
    bool listeners_open = true;
    while (!stopping()) {
      if (draining()) {
        if (listeners_open) {
          tcp_listener.reset();
          unix_listener.reset();
          listeners_open = false;
          drain_deadline = Clock::now() + options.drain_grace;
        }
        if (conns.empty() || Clock::now() >= *drain_deadline) break;
      }

      std::vector<pollfd> fds;
      fds.reserve(conns.size() + 2);
      if (listeners_open && tcp_listener.valid())
        fds.push_back({tcp_listener.get(), POLLIN, 0});
      if (listeners_open && unix_listener.valid())
        fds.push_back({unix_listener.get(), POLLIN, 0});
      const std::size_t conn_base = fds.size();
      // accept_from below grows `conns`; only these first n_polled entries
      // have a pollfd this iteration (newcomers are picked up on the next
      // one), so the revents walk must be bounded by n_polled, not by the
      // live conns.size().
      const std::size_t n_polled = conns.size();
      for (const auto& c : conns) {
        short events = POLLIN;
        if (c->wpos < c->wbuf.size()) events |= POLLOUT;
        fds.push_back({c->fd.get(), events, 0});
      }

      const int rc = ::poll(fds.data(), fds.size(), /*timeout_ms=*/100);
      if (rc < 0 && errno != EINTR) break;
      if (rc <= 0) continue;

      std::size_t idx = 0;
      if (listeners_open && tcp_listener.valid()) {
        if ((fds[idx].revents & POLLIN) != 0) accept_from(tcp_listener);
        ++idx;
      }
      if (listeners_open && unix_listener.valid()) {
        if ((fds[idx].revents & POLLIN) != 0) accept_from(unix_listener);
        ++idx;
      }
      (void)conn_base;

      // Walk backwards so drop_conn's erase cannot skip an entry.
      for (std::size_t k = n_polled; k-- > 0;) {
        Conn& c = *conns[k];
        const short revents = fds[idx + k].revents;
        bool alive = true;
        if ((revents & (POLLERR | POLLHUP | POLLNVAL)) != 0 &&
            (revents & POLLIN) == 0) {
          alive = false;
        }
        if (alive && (revents & POLLIN) != 0) alive = read_and_dispatch(c);
        if (alive && c.wpos < c.wbuf.size()) alive = flush(c);
        if (alive && c.closing && c.wpos >= c.wbuf.size()) alive = false;
        if (!alive) drop_conn(k);
      }
    }
    // Teardown: every remaining connection (and its streams) unwinds here.
    conns.clear();
    tcp_listener.reset();
    unix_listener.reset();
    if (!options.unix_path.empty()) ::unlink(options.unix_path.c_str());
  }
};

Server::Server(ServerOptions options)
    : impl_(std::make_unique<Impl>(std::move(options))) {
  impl_->self = this;
}

Server::~Server() = default;

bool Server::start() { return impl_->start(); }

void Server::run() { impl_->run(); }

std::uint16_t Server::tcp_port() const { return impl_->tcp_port; }

const std::string& Server::unix_path() const {
  return impl_->options.unix_path;
}

ServiceStats Server::stats() const { return impl_->stats.snapshot(); }

}  // namespace sdaf::net
