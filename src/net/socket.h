// Thin POSIX socket layer under the framing protocol: an RAII fd, TCP and
// Unix-domain listeners/connectors, and the blocking send_all/recv_exact
// helpers the synchronous client uses. Everything here is errno-faithful
// (failures return an empty Fd or false; call sites decide whether that is
// fatal) and SIGPIPE-proof: sends use MSG_NOSIGNAL, so a peer that went
// away surfaces as EPIPE instead of killing the process.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>

namespace sdaf::net {

// Owns a file descriptor; -1 = empty. Move-only.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { reset(); }
  Fd(Fd&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = std::exchange(other.fd_, -1);
    }
    return *this;
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  [[nodiscard]] int get() const { return fd_; }
  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  [[nodiscard]] int release() { return std::exchange(fd_, -1); }
  void reset();

 private:
  int fd_ = -1;
};

// Listeners (SO_REUSEADDR for TCP; the Unix path is unlinked first so a
// stale socket file from a crashed daemon does not block the bind).
// port 0 asks the kernel for an ephemeral port; bound_port() reports it.
[[nodiscard]] Fd listen_tcp(const std::string& host, std::uint16_t port,
                            int backlog = 128);
[[nodiscard]] Fd listen_unix(const std::string& path, int backlog = 128);
[[nodiscard]] std::uint16_t bound_port(const Fd& listener);

// Blocking connectors, EINTR-safe (a signal mid-connect retries on a fresh
// socket -- the portable recovery for interrupted blocking connects). On
// failure `err` (if non-null) receives the errno, captured before the
// in-flight fd's close can clobber it, so callers can tell a retryable
// refusal (ECONNREFUSED: daemon not up yet) from a hard error.
[[nodiscard]] Fd connect_tcp(const std::string& host, std::uint16_t port,
                             int* err = nullptr);
[[nodiscard]] Fd connect_unix(const std::string& path, int* err = nullptr);

// Accepts one pending connection; empty Fd when none / on error.
[[nodiscard]] Fd accept_conn(const Fd& listener);

[[nodiscard]] bool set_nonblocking(const Fd& fd, bool nonblocking);
void set_nodelay(const Fd& fd);  // TCP_NODELAY; no-op on Unix sockets

// Blocking loops for the synchronous client: retry through EINTR until all
// `n` bytes moved. false = peer closed or hard error.
[[nodiscard]] bool send_all(const Fd& fd, const std::uint8_t* data,
                            std::size_t n);
[[nodiscard]] bool recv_exact(const Fd& fd, std::uint8_t* data, std::size_t n);

}  // namespace sdaf::net
