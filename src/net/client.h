// Synchronous client for the sdaf wire protocol: the same push / poll /
// close / finish surface as in-process exec::Stream ports, carried over a
// socket to sdafd. One Client is one connection (Hello/HelloOk run in
// connect_*); open() starts a stream on it, and a connection can carry
// several concurrent streams under distinct ids. Strictly one thread per
// Client at a time -- every call is a blocking request/response round trip.
//
//   auto client = net::Client::connect_unix("/tmp/sdafd.sock");
//   net::OpenFrame spec;
//   spec.topology = graph::to_text(g);   // or any topology text
//   spec.kernel = net::KernelKind::Relay;
//   net::ClientStream s = client->open(1, spec);
//   s.push(0, values);                    // retries short PushAcks
//   for (;;) { auto d = s.poll(0, 512); ...; if (d.ended) break; }
//   s.close(0);
//   exec::RunReport report = s.finish();  // Finish -> Verdict
//
// Protocol violations (an Error frame, a short read, an unexpected reply
// type) surface as net::ProtocolError; the connection is then dead.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/exec/run_types.h"
#include "src/net/frame.h"
#include "src/net/socket.h"

namespace sdaf::net {

class ProtocolError : public std::runtime_error {
 public:
  ProtocolError(ErrorCode code, const std::string& message)
      : std::runtime_error(std::string(to_string(code)) + ": " + message),
        code_(code) {}
  [[nodiscard]] ErrorCode code() const { return code_; }

 private:
  ErrorCode code_;
};

// An Open the server's admission controller refused (ErrorCode::
// AdmissionRejected). Soft: the connection survives, the stream id stays
// free, and the predicted cost that tripped the budget rides along so the
// caller can size a retry. Thrown by Client::open / Client::restore.
class OpenRejectedError : public ProtocolError {
 public:
  struct PredictedCost {
    std::uint64_t channel_slots = 0;
    std::uint64_t channel_bytes = 0;
    std::uint64_t nodes = 0;
    double dummy_overhead_ratio = 0.0;
  };
  OpenRejectedError(const std::string& message, const PredictedCost& cost)
      : ProtocolError(ErrorCode::AdmissionRejected, message), cost_(cost) {}
  [[nodiscard]] const PredictedCost& predicted() const { return cost_; }

 private:
  PredictedCost cost_;
};

class Client;

// Handle to one open stream on a Client connection. Borrowed from the
// Client -- the Client must outlive it.
class ClientStream {
 public:
  [[nodiscard]] std::uint16_t id() const { return id_; }
  [[nodiscard]] std::size_t input_count() const { return inputs_; }
  [[nodiscard]] std::size_t output_count() const { return outputs_; }
  [[nodiscard]] bool cache_hit() const { return cache_hit_; }

  // Logical stream generation: 0 for open(), snapshot.epoch + 1 for a
  // restore()'d stream (from RestoreOk).
  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }

  // One PushBatch round trip; returns the server's acceptance. accepted <
  // values.size() is backpressure (the server's bounded push timed out);
  // ended means the port is closed server-side and retrying is futile.
  PushAckFrame push_some(std::uint16_t port,
                         const std::vector<runtime::Value>& values);
  // Blocking push mirroring InputPort::push_batch over the wire: retries
  // short acceptances until everything is accepted or the stream ends.
  // Returns how many items were accepted.
  std::size_t push(std::uint16_t port, std::vector<runtime::Value> values);
  // Poll mirroring OutputPort::poll_batch: one round trip, up to max items.
  DeliverFrame poll(std::uint16_t port, std::uint32_t max_items);
  // One Snapshot round trip, mirroring Stream::snapshot_begin +
  // snapshot_poll: the first call begins an asynchronous barrier (the
  // stream keeps flowing), every call polls it. nullopt = still pending,
  // call again; bytes = the serialized ckpt::StreamSnapshot, restorable
  // via Client::restore on this daemon or any later one. On a wedged
  // stream the barrier never completes -- bound your own polling.
  [[nodiscard]] std::optional<std::vector<std::uint8_t>> snapshot_poll();
  // snapshot_poll until it completes or `timeout` elapses (the barrier
  // then stays pending server-side, exactly like Stream::snapshot).
  [[nodiscard]] std::optional<std::vector<std::uint8_t>> snapshot(
      std::chrono::milliseconds timeout);
  // Dynamic EOS for one input port (idempotent server-side).
  void close(std::uint16_t port);
  // Finish -> Verdict: the final exec::RunReport, including the exact
  // deadlock certification and state dump. The server closes any ports
  // still open and discards undelivered egress items, so this returns a
  // verdict even for a wedged stream; callers that want the output tail
  // poll until Deliver.ended first.
  [[nodiscard]] exec::RunReport finish();

 private:
  friend class Client;
  ClientStream(Client* client, std::uint16_t id, const OpenOkFrame& ok)
      : client_(client),
        id_(id),
        inputs_(ok.inputs),
        outputs_(ok.outputs),
        cache_hit_(ok.cache_hit != 0) {}
  ClientStream(Client* client, std::uint16_t id, const RestoreOkFrame& ok)
      : client_(client),
        id_(id),
        inputs_(ok.inputs),
        outputs_(ok.outputs),
        cache_hit_(ok.cache_hit != 0),
        epoch_(ok.epoch) {}

  Client* client_;
  std::uint16_t id_;
  std::size_t inputs_;
  std::size_t outputs_;
  bool cache_hit_;
  std::uint64_t epoch_ = 0;
};

// Bounded connect retry: a daemon that is restarting (crash recovery, the
// whole point of Restore) refuses connections for a moment, so connect_*
// retries ECONNREFUSED / EAGAIN / ECONNRESET -- and, for Unix sockets,
// ENOENT, the socket file not re-bound yet -- up to `attempts` times with
// exponential backoff jittered +-50% (decorrelated clients do not
// stampede the reborn daemon). Any other errno fails immediately.
struct ConnectOptions {
  int attempts = 5;
  std::chrono::milliseconds backoff{20};  // first gap; doubles per retry
};

class Client {
 public:
  // Connect + version handshake; nullopt when the socket cannot be
  // established within the retry budget (a protocol failure during Hello
  // throws instead).
  [[nodiscard]] static std::optional<Client> connect_unix(
      const std::string& path, const ConnectOptions& retry = {});
  [[nodiscard]] static std::optional<Client> connect_tcp(
      const std::string& host, std::uint16_t port,
      const ConnectOptions& retry = {});

  Client(Client&&) = default;
  Client& operator=(Client&&) = default;

  // Opens stream `id` (client-chosen, nonzero, unique per connection).
  [[nodiscard]] ClientStream open(std::uint16_t id, const OpenFrame& spec);
  // Opens stream `id` rehydrated from a ClientStream::snapshot blob
  // (Restore -> RestoreOk). The spec must describe the same topology,
  // workload and mode the snapshot was cut from; the caller then replays
  // pushes and closes from each PortCut::next_seq and dedupes re-delivered
  // output by seq. Throws ProtocolError (BadState) on a mismatch.
  [[nodiscard]] ClientStream restore(std::uint16_t id, const OpenFrame& spec,
                                     const std::vector<std::uint8_t>& snapshot);
  // The server's merged Prometheus page (all live streams + sdafd_*).
  [[nodiscard]] std::string stats();

 private:
  friend class ClientStream;
  explicit Client(Fd fd) : fd_(std::move(fd)) {}
  void hello();

  // Sends one frame and returns the one reply, after unwrapping Error
  // frames into ProtocolError.
  struct Reply {
    FrameHeader header;
    std::vector<std::uint8_t> payload;
  };
  Reply round_trip(FrameType type, std::uint16_t stream, Writer payload,
                   FrameType expect);

  Fd fd_;
};

}  // namespace sdaf::net
