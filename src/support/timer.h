// Monotonic wall-clock stopwatch for benchmark harnesses and the runtime's
// deadlock watchdog.
#pragma once

#include <chrono>

namespace sdaf {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  [[nodiscard]] double elapsed_seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  [[nodiscard]] std::int64_t elapsed_ns() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace sdaf
