#include "src/support/timer.h"

// Header-only today; the translation unit anchors the target and keeps the
// build layout uniform (every module has a .cpp).
