// Lightweight contract checking in the spirit of the C++ Core Guidelines'
// Expects/Ensures. Violations are programming errors, not recoverable
// conditions, so they abort with a location message in all build types.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace sdaf {

[[noreturn]] inline void contract_failure(const char* kind, const char* expr,
                                          const char* file, int line) {
  std::fprintf(stderr, "sdaf: %s violated: (%s) at %s:%d\n", kind, expr, file,
               line);
  std::abort();
}

}  // namespace sdaf

#define SDAF_EXPECTS(cond)                                              \
  do {                                                                  \
    if (!(cond))                                                        \
      ::sdaf::contract_failure("precondition", #cond, __FILE__, __LINE__); \
  } while (0)

#define SDAF_ENSURES(cond)                                               \
  do {                                                                   \
    if (!(cond))                                                         \
      ::sdaf::contract_failure("postcondition", #cond, __FILE__, __LINE__); \
  } while (0)

#define SDAF_ASSERT(cond)                                             \
  do {                                                                \
    if (!(cond))                                                      \
      ::sdaf::contract_failure("invariant", #cond, __FILE__, __LINE__); \
  } while (0)
