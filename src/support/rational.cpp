#include "src/support/rational.h"

#include <numeric>
#include <ostream>

#include "src/support/contracts.h"

namespace sdaf {

namespace {

// Checked multiply; interval computations multiply buffer sums by hop counts,
// both bounded by graph size, so overflow indicates a caller bug.
std::int64_t checked_mul(std::int64_t a, std::int64_t b) {
  std::int64_t out = 0;
  SDAF_EXPECTS(!__builtin_mul_overflow(a, b, &out));
  return out;
}

std::int64_t checked_add(std::int64_t a, std::int64_t b) {
  std::int64_t out = 0;
  SDAF_EXPECTS(!__builtin_add_overflow(a, b, &out));
  return out;
}

}  // namespace

Rational::Rational(std::int64_t n, std::int64_t d) : num_(n), den_(d) {
  SDAF_EXPECTS(n >= 0);
  SDAF_EXPECTS(d > 0);
  const std::int64_t g = std::gcd(n, d);
  if (g > 1) {
    num_ /= g;
    den_ /= g;
  }
}

std::int64_t Rational::floor() const {
  SDAF_EXPECTS(is_finite());
  return num_ / den_;  // non-negative operands: truncation == floor
}

std::int64_t Rational::ceil() const {
  SDAF_EXPECTS(is_finite());
  return (num_ + den_ - 1) / den_;
}

bool Rational::is_integer() const { return is_finite() && den_ == 1; }

std::string Rational::to_string() const {
  if (is_infinite()) return "inf";
  if (den_ == 1) return std::to_string(num_);
  return std::to_string(num_) + "/" + std::to_string(den_);
}

Rational operator+(const Rational& a, const Rational& b) {
  if (a.is_infinite() || b.is_infinite()) return Rational::infinity();
  return {checked_add(checked_mul(a.num_, b.den_), checked_mul(b.num_, a.den_)),
          checked_mul(a.den_, b.den_)};
}

Rational operator/(const Rational& a, const Rational& b) {
  SDAF_EXPECTS(b.is_finite() && b.num_ != 0);
  if (a.is_infinite()) return Rational::infinity();
  return {checked_mul(a.num_, b.den_), checked_mul(a.den_, b.num_)};
}

bool operator==(const Rational& a, const Rational& b) {
  if (a.is_infinite() || b.is_infinite())
    return a.is_infinite() == b.is_infinite();
  // Both stored in lowest terms.
  return a.num_ == b.num_ && a.den_ == b.den_;
}

bool operator<(const Rational& a, const Rational& b) {
  if (a.is_infinite()) return false;
  if (b.is_infinite()) return true;
  return checked_mul(a.num_, b.den_) < checked_mul(b.num_, a.den_);
}

Rational min(const Rational& a, const Rational& b) { return a < b ? a : b; }

std::ostream& operator<<(std::ostream& os, const Rational& r) {
  return os << r.to_string();
}

}  // namespace sdaf
