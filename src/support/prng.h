// Deterministic pseudo-random number generation for workload generators,
// filter models, and property tests. Reproducibility across the threaded
// runtime and the simulator requires a PRNG we own; std::mt19937 output is
// standardized but distribution implementations are not, so distributions
// here are implemented explicitly.
#pragma once

#include <cstdint>
#include <vector>

namespace sdaf {

// SplitMix64: used for seeding and as a cheap stateless mixer.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state);

// xoshiro256**: the library's workhorse generator.
class Prng {
 public:
  explicit Prng(std::uint64_t seed);

  std::uint64_t next_u64();

  // Uniform in [0, bound), bias-free (rejection).
  std::uint64_t next_below(std::uint64_t bound);

  // Uniform in [lo, hi] inclusive.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi);

  // Uniform in [0, 1).
  double next_double();

  // True with probability p.
  bool next_bool(double p);

  // Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  // Derives an independent generator (for per-node streams).
  [[nodiscard]] Prng split();

 private:
  std::uint64_t s_[4];
};

}  // namespace sdaf
