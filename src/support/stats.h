// Small descriptive-statistics helpers for benchmark harnesses.
#pragma once

#include <cstddef>
#include <vector>

namespace sdaf {

// Online mean/variance/min/max accumulator (Welford).
class RunningStats {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double variance() const;  // sample variance
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Quantile of a sample by linear interpolation; q in [0, 1].
[[nodiscard]] double quantile(std::vector<double> sample, double q);

// Least-squares slope of log(y) against log(x): the empirical scaling
// exponent used to check the paper's O(|G|^k) claims.
[[nodiscard]] double loglog_slope(const std::vector<double>& x,
                                  const std::vector<double>& y);

}  // namespace sdaf
