#include "src/support/stats.h"

#include <algorithm>
#include <cmath>

#include "src/support/contracts.h"

namespace sdaf {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::mean() const {
  SDAF_EXPECTS(n_ > 0);
  return mean_;
}

double RunningStats::variance() const {
  SDAF_EXPECTS(n_ > 0);
  if (n_ == 1) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const {
  SDAF_EXPECTS(n_ > 0);
  return min_;
}

double RunningStats::max() const {
  SDAF_EXPECTS(n_ > 0);
  return max_;
}

double quantile(std::vector<double> sample, double q) {
  SDAF_EXPECTS(!sample.empty());
  SDAF_EXPECTS(q >= 0.0 && q <= 1.0);
  std::sort(sample.begin(), sample.end());
  const double pos = q * static_cast<double>(sample.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sample.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sample[lo] * (1.0 - frac) + sample[hi] * frac;
}

double loglog_slope(const std::vector<double>& x, const std::vector<double>& y) {
  SDAF_EXPECTS(x.size() == y.size());
  SDAF_EXPECTS(x.size() >= 2);
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  const auto n = static_cast<double>(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    SDAF_EXPECTS(x[i] > 0 && y[i] > 0);
    const double lx = std::log(x[i]);
    const double ly = std::log(y[i]);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
  }
  const double denom = n * sxx - sx * sx;
  SDAF_EXPECTS(denom != 0.0);
  return (n * sxy - sx * sy) / denom;
}

}  // namespace sdaf
