// Exact non-negative rational arithmetic with a distinguished +infinity,
// used to represent dummy intervals. Intervals are minima of path-length
// ratios, so the operations needed are: construction from integers,
// min, comparison, addition of finite values, division, floor/ceil, and
// printing. Overflow is checked; interval arithmetic in this library stays
// far below 2^63 for any graph that fits in memory.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

namespace sdaf {

class Rational {
 public:
  // Constructs +infinity.
  constexpr Rational() : num_(1), den_(0) {}
  // Constructs the integer value n (n >= 0).
  constexpr Rational(std::int64_t n) : num_(n), den_(1) {}  // NOLINT(google-explicit-constructor)
  // Constructs n/d in lowest terms (n >= 0, d > 0).
  Rational(std::int64_t n, std::int64_t d);

  static constexpr Rational infinity() { return Rational(); }

  [[nodiscard]] constexpr bool is_infinite() const { return den_ == 0; }
  [[nodiscard]] constexpr bool is_finite() const { return den_ != 0; }
  [[nodiscard]] constexpr std::int64_t num() const { return num_; }
  [[nodiscard]] constexpr std::int64_t den() const { return den_; }

  // Largest integer <= value. Precondition: finite.
  [[nodiscard]] std::int64_t floor() const;
  // Smallest integer >= value. Precondition: finite. This is the rounding
  // the paper applies to Non-Propagation ratios (Fig. 3: "8/3 = 3, roundup").
  [[nodiscard]] std::int64_t ceil() const;
  [[nodiscard]] bool is_integer() const;

  [[nodiscard]] std::string to_string() const;

  friend Rational operator+(const Rational& a, const Rational& b);
  friend Rational operator/(const Rational& a, const Rational& b);
  friend bool operator==(const Rational& a, const Rational& b);
  friend bool operator<(const Rational& a, const Rational& b);

 private:
  std::int64_t num_;  // numerator; 1 when infinite
  std::int64_t den_;  // denominator; 0 encodes infinity
};

inline bool operator!=(const Rational& a, const Rational& b) { return !(a == b); }
inline bool operator>(const Rational& a, const Rational& b) { return b < a; }
inline bool operator<=(const Rational& a, const Rational& b) { return !(b < a); }
inline bool operator>=(const Rational& a, const Rational& b) { return !(a < b); }

[[nodiscard]] Rational min(const Rational& a, const Rational& b);

std::ostream& operator<<(std::ostream& os, const Rational& r);

}  // namespace sdaf
