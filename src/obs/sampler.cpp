#include "src/obs/sampler.h"

#include <algorithm>
#include <utility>

#include "src/support/contracts.h"

namespace sdaf::obs {

MetricsSampler::MetricsSampler(std::function<MetricsSnapshot()> source,
                               Options options)
    : source_(std::move(source)), options_(options) {
  SDAF_EXPECTS(source_ != nullptr);
  SDAF_EXPECTS(options_.interval.count() > 0);
  SDAF_EXPECTS(options_.keep >= 1);
  // Take one sample synchronously so latest() is valid immediately.
  fold(source_());
  thread_ = std::thread([this] { run(); });
}

MetricsSampler::~MetricsSampler() { stop(); }

void MetricsSampler::stop() {
  {
    std::lock_guard lock(mu_);
    if (stopping_) {
      // Already stopped; just make sure the thread is gone.
    }
    stopping_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void MetricsSampler::run() {
  std::unique_lock lock(mu_);
  for (;;) {
    if (cv_.wait_for(lock, options_.interval, [&] { return stopping_; }))
      return;
    lock.unlock();
    MetricsSnapshot s = source_();  // never sample under the lock
    lock.lock();
    fold(s);
  }
}

void MetricsSampler::fold(const MetricsSnapshot& s) {
  // Called with mu_ held (or from the constructor, pre-thread).
  ++samples_;
  if (peak_occupancy_.size() < s.channels.size())
    peak_occupancy_.resize(s.channels.size(), 0);
  for (const auto& c : s.channels)
    if (c.edge < peak_occupancy_.size())
      peak_occupancy_[c.edge] = std::max(peak_occupancy_[c.edge],
                                         c.occupancy);
  for (const auto& w : s.workers)
    peak_queue_depth_ = std::max(peak_queue_depth_, w.depth_max);
  window_.push_back(s);
  while (window_.size() > options_.keep) window_.pop_front();
}

std::uint64_t MetricsSampler::sample_count() const {
  std::lock_guard lock(mu_);
  return samples_;
}

MetricsSnapshot MetricsSampler::latest() const {
  std::lock_guard lock(mu_);
  SDAF_EXPECTS(!window_.empty());
  return window_.back();
}

std::int64_t MetricsSampler::peak_occupancy(EdgeId e) const {
  std::lock_guard lock(mu_);
  return e < peak_occupancy_.size() ? peak_occupancy_[e] : 0;
}

std::uint64_t MetricsSampler::peak_queue_depth() const {
  std::lock_guard lock(mu_);
  return peak_queue_depth_;
}

}  // namespace sdaf::obs
