// sdaf::obs -- the measurement substrate for all three backends.
//
// MetricsRegistry holds cache-line-padded counter shards -- one NodeCounters
// per node, one ChannelCounters per edge (per-worker WorkerCounters shards
// live in the PoolExecutor, which owns the worker identity) -- written with
// relaxed atomics by exactly one thread each, so the hot path pays a plain
// load+store per increment and never contends: aggregation happens on read
// (snapshot()), not on write. The registry is attached to a run through
// exec::RunSpec::metrics and to a live stream through exec::StreamSpec;
// null pointer = every metrics branch is a single predictable-false test.
//
// Counter semantics are backend-invariant by construction: node counters
// are incremented at the same FiringCore sites on every backend (emission
// is counted where outputs are queued, consumption where heads are popped),
// so the sim's deterministic counts are a bit-exact reference for the
// threaded and pooled backends -- the differential tests assert exactly
// that. Channel counters count logical messages (a coalesced run of k
// dummies counts k), matching the paper's buffer-size semantics.
//
// The snapshot structs are plain values: safe to copy out of a live run,
// serialize (obs/export.h), or sample periodically (obs/sampler.h).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "src/graph/stream_graph.h"

namespace sdaf::obs {

// Single-writer relaxed increment: the owning thread is the only writer, so
// a plain load+store beats an RMW on the hot path (readers may see a value
// a few increments stale, never torn; exact at quiescence).
inline void bump(std::atomic<std::uint64_t>& counter, std::uint64_t n = 1) {
  counter.store(counter.load(std::memory_order_relaxed) + n,
                std::memory_order_relaxed);
}

// Per-node firing-rule counters, incremented by the node's owning thread
// (sim sweep, dedicated thread, or whichever pool worker holds the node --
// the scheduler guarantees one at a time).
struct alignas(64) NodeCounters {
  std::atomic<std::uint64_t> fires{0};      // kernel invocations
  std::atomic<std::uint64_t> data_out{0};   // data items queued on out-slots
  std::atomic<std::uint64_t> dummy_out{0};  // dummies queued (k for a run of k)
  std::atomic<std::uint64_t> eos_out{0};    // EOS floods per out-slot
  std::atomic<std::uint64_t> data_in{0};    // data items consumed
  std::atomic<std::uint64_t> dummy_in{0};   // dummies consumed

  void reset();
};

// Per-channel traffic and contention counters. Producer side writes
// data_pushed/dummies_pushed/high_water/full_stalls; consumer side writes
// pops/empty_waits -- still one writer per field.
struct alignas(64) ChannelCounters {
  std::atomic<std::uint64_t> data_pushed{0};
  std::atomic<std::uint64_t> dummies_pushed{0};
  std::atomic<std::uint64_t> pops{0};         // logical messages popped
  std::atomic<std::uint64_t> full_stalls{0};  // pushes refused/parked on Full
  std::atomic<std::uint64_t> empty_waits{0};  // peeks that found it empty
  std::atomic<std::int64_t> high_water{0};    // max logical occupancy seen

  void note_high_water(std::int64_t occupancy) {
    if (occupancy > high_water.load(std::memory_order_relaxed))
      high_water.store(occupancy, std::memory_order_relaxed);
  }

  void reset();
};

// Per-worker scheduler counters (pooled backend); one shard per worker plus
// one for external threads (stream wakes arriving from the caller side).
struct alignas(64) WorkerCounters {
  std::atomic<std::uint64_t> task_runs{0};      // node quanta executed
  std::atomic<std::uint64_t> parks{0};          // tasks parked (kIdle CAS won)
  std::atomic<std::uint64_t> wakes{0};          // tasks (re)scheduled
  std::atomic<std::uint64_t> steals{0};         // tasks taken from a peer
  std::atomic<std::uint64_t> steal_fails{0};    // empty/contended steal probes
  std::atomic<std::uint64_t> futex_parks{0};    // idle worker futex sleeps
  std::atomic<std::uint64_t> depth_samples{0};  // local deque depth samples
  std::atomic<std::uint64_t> depth_sum{0};
  std::atomic<std::uint64_t> depth_max{0};

  void sample_depth(std::uint64_t depth) {
    bump(depth_samples);
    bump(depth_sum, depth);
    if (depth > depth_max.load(std::memory_order_relaxed))
      depth_max.store(depth, std::memory_order_relaxed);
  }

  void reset();
};

// The shard container: sized for one graph, attached to one run or stream.
// Writers hold stable references into the vectors (never resized after
// construction).
class MetricsRegistry {
 public:
  MetricsRegistry(std::size_t node_count, std::size_t edge_count);

  [[nodiscard]] NodeCounters& node(NodeId n) { return nodes_[n]; }
  [[nodiscard]] const NodeCounters& node(NodeId n) const { return nodes_[n]; }
  [[nodiscard]] ChannelCounters& channel(EdgeId e) { return channels_[e]; }
  [[nodiscard]] const ChannelCounters& channel(EdgeId e) const {
    return channels_[e];
  }
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] std::size_t edge_count() const { return channels_.size(); }

  void reset();

 private:
  std::vector<NodeCounters> nodes_;
  std::vector<ChannelCounters> channels_;
};

// ---- aggregate-on-read snapshot values ----

struct NodeMetrics {
  NodeId node = kNoNode;
  std::string name;
  std::uint64_t fires = 0;
  std::uint64_t data_out = 0;
  std::uint64_t dummy_out = 0;
  std::uint64_t eos_out = 0;
  std::uint64_t data_in = 0;
  std::uint64_t dummy_in = 0;
};

struct ChannelMetrics {
  EdgeId edge = kNoEdge;
  NodeId from = kNoNode;
  NodeId to = kNoNode;
  std::string from_name;
  std::string to_name;
  std::uint64_t capacity = 0;  // buffer bound from the graph (paper's length)
  std::uint64_t data_pushed = 0;
  std::uint64_t dummies_pushed = 0;
  std::uint64_t pops = 0;
  std::uint64_t full_stalls = 0;
  std::uint64_t empty_waits = 0;
  std::int64_t high_water = 0;
  std::int64_t occupancy = 0;  // pushes - pops (exact at quiescence)
};

struct WorkerMetrics {
  std::size_t worker = 0;  // worker index; last entry = external threads
  std::uint64_t task_runs = 0;
  std::uint64_t parks = 0;
  std::uint64_t wakes = 0;
  std::uint64_t steals = 0;
  std::uint64_t steal_fails = 0;
  std::uint64_t futex_parks = 0;
  std::uint64_t depth_samples = 0;
  std::uint64_t depth_max = 0;
  double depth_avg = 0.0;
};

struct PortMetrics {
  NodeId node = kNoNode;
  std::string name;
  bool input = false;  // true = ingress feed, false = egress tap
  std::uint64_t pushed = 0;
  std::uint64_t occupancy = 0;
  std::uint64_t capacity = 0;
};

// Per-tenant roll-up: what one tenant's workload cost. dummy_overhead_ratio
// is dummies / (data + dummies) over everything pushed into channels -- the
// runtime-measured price of the paper's deadlock-avoidance protocol.
// channel_slots/channel_bytes are the compile-time buffer footprint the
// avoidance analysis certified (the memory the tenant reserves whether or
// not traffic fills it).
struct TenantMetrics {
  std::string tenant;
  std::uint64_t runs = 0;
  std::uint64_t items_fired = 0;  // kernel invocations, all nodes
  std::uint64_t data_items = 0;
  std::uint64_t dummy_items = 0;
  double dummy_overhead_ratio = 0.0;
  std::uint64_t channel_slots = 0;
  std::uint64_t channel_bytes = 0;
  double wall_seconds = 0.0;
};

// Per-tenant scheduler accounting from the pooled backend's deficit-round-
// robin injector lanes: how much injector bandwidth each tenant consumed
// (enqueued/dequeued tasks) and how deep its lane ran (queue residency).
// Snapshotted under the injector lock, so enqueued - dequeued ==
// queue_depth exactly.
struct TenantSchedMetrics {
  std::string tenant;
  std::uint64_t weight = 1;
  std::uint64_t enqueued = 0;     // tasks pushed into this tenant's lane
  std::uint64_t dequeued = 0;     // tasks drained from it by workers
  std::uint64_t queue_depth = 0;  // current lane occupancy
  std::uint64_t queue_depth_max = 0;
};

// Checkpoint/restore instrumentation (live streams only): the stream's
// logical epoch (0 = fresh open, snapshot.epoch + 1 after a restore), how
// many barrier snapshots have completed on it, whether one is in flight,
// and the wall duration of the last completed barrier (begin -> assembly).
struct CheckpointMetrics {
  std::uint64_t epoch = 0;
  std::uint64_t snapshots_taken = 0;
  bool snapshot_pending = false;
  double last_snapshot_seconds = 0.0;
};

struct MetricsSnapshot {
  std::string schema = "sdaf.metrics.v1";
  std::string backend;
  TenantMetrics tenant;
  CheckpointMetrics ckpt;  // live streams only
  std::vector<NodeMetrics> nodes;
  std::vector<ChannelMetrics> channels;
  std::vector<WorkerMetrics> workers;  // pooled backend only
  std::vector<PortMetrics> ports;      // live streams only
};

struct SnapshotOptions {
  std::string backend;
  std::string tenant = "default";
  double wall_seconds = 0.0;
  std::uint64_t runs = 1;
  std::size_t bytes_per_slot = 0;  // sizeof the runtime message; 0 = unknown
};

// Aggregates the registry into plain values. Safe on a live run: every read
// is a relaxed atomic load (values may lag writers by a few increments;
// exact once the run has quiesced).
[[nodiscard]] MetricsSnapshot snapshot(const StreamGraph& g,
                                       const MetricsRegistry& registry,
                                       const SnapshotOptions& options);

// Folds one worker shard into a WorkerMetrics value (used by PoolExecutor).
[[nodiscard]] WorkerMetrics read_worker(const WorkerCounters& counters,
                                        std::size_t index);

}  // namespace sdaf::obs
