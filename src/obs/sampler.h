// Background gauge sampler for live streams. Counters are cumulative and
// cheap to read at any time, but gauges (queue depths, channel occupancy)
// are instantaneous -- a single end-of-run snapshot only shows the final,
// usually-empty state. MetricsSampler polls a snapshot source on its own
// thread at a fixed interval and folds the gauges into per-channel peaks
// plus a bounded recent-sample window, so "where did backpressure live
// while this stream was hot?" has an answer after the fact.
//
// The source callback must be safe to invoke from the sampler thread
// concurrently with the run (Stream::metrics() is: every registry read is a
// relaxed atomic load). stop() joins the thread; the destructor stops too.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "src/obs/metrics.h"

namespace sdaf::obs {

class MetricsSampler {
 public:
  struct Options {
    std::chrono::milliseconds interval{10};
    std::size_t keep = 64;  // bounded window of retained snapshots
  };

  explicit MetricsSampler(std::function<MetricsSnapshot()> source)
      : MetricsSampler(std::move(source), Options{}) {}
  MetricsSampler(std::function<MetricsSnapshot()> source, Options options);
  ~MetricsSampler();

  MetricsSampler(const MetricsSampler&) = delete;
  MetricsSampler& operator=(const MetricsSampler&) = delete;

  void stop();

  [[nodiscard]] std::uint64_t sample_count() const;
  [[nodiscard]] MetricsSnapshot latest() const;
  // Peak instantaneous occupancy observed for an edge across all samples
  // taken so far (not just the retained window).
  [[nodiscard]] std::int64_t peak_occupancy(EdgeId e) const;
  // Peak ready-queue depth observed across workers and samples.
  [[nodiscard]] std::uint64_t peak_queue_depth() const;

 private:
  void run();
  void fold(const MetricsSnapshot& s);

  const std::function<MetricsSnapshot()> source_;
  const Options options_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
  std::uint64_t samples_ = 0;
  std::deque<MetricsSnapshot> window_;
  std::vector<std::int64_t> peak_occupancy_;
  std::uint64_t peak_queue_depth_ = 0;

  std::thread thread_;
};

}  // namespace sdaf::obs
