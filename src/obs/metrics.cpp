#include "src/obs/metrics.h"

#include <algorithm>

#include "src/support/contracts.h"

namespace sdaf::obs {

namespace {

std::uint64_t load(const std::atomic<std::uint64_t>& c) {
  return c.load(std::memory_order_relaxed);
}

}  // namespace

void NodeCounters::reset() {
  fires.store(0, std::memory_order_relaxed);
  data_out.store(0, std::memory_order_relaxed);
  dummy_out.store(0, std::memory_order_relaxed);
  eos_out.store(0, std::memory_order_relaxed);
  data_in.store(0, std::memory_order_relaxed);
  dummy_in.store(0, std::memory_order_relaxed);
}

void ChannelCounters::reset() {
  data_pushed.store(0, std::memory_order_relaxed);
  dummies_pushed.store(0, std::memory_order_relaxed);
  pops.store(0, std::memory_order_relaxed);
  full_stalls.store(0, std::memory_order_relaxed);
  empty_waits.store(0, std::memory_order_relaxed);
  high_water.store(0, std::memory_order_relaxed);
}

void WorkerCounters::reset() {
  task_runs.store(0, std::memory_order_relaxed);
  parks.store(0, std::memory_order_relaxed);
  wakes.store(0, std::memory_order_relaxed);
  steals.store(0, std::memory_order_relaxed);
  steal_fails.store(0, std::memory_order_relaxed);
  futex_parks.store(0, std::memory_order_relaxed);
  depth_samples.store(0, std::memory_order_relaxed);
  depth_sum.store(0, std::memory_order_relaxed);
  depth_max.store(0, std::memory_order_relaxed);
}

MetricsRegistry::MetricsRegistry(std::size_t node_count,
                                 std::size_t edge_count)
    : nodes_(node_count), channels_(edge_count) {}

void MetricsRegistry::reset() {
  for (auto& n : nodes_) n.reset();
  for (auto& c : channels_) c.reset();
}

MetricsSnapshot snapshot(const StreamGraph& g,
                         const MetricsRegistry& registry,
                         const SnapshotOptions& options) {
  SDAF_EXPECTS(registry.node_count() == g.node_count());
  SDAF_EXPECTS(registry.edge_count() == g.edge_count());
  MetricsSnapshot out;
  out.backend = options.backend;
  out.tenant.tenant = options.tenant;
  out.tenant.runs = options.runs;
  out.tenant.wall_seconds = options.wall_seconds;

  out.nodes.reserve(g.node_count());
  for (NodeId n = 0; n < g.node_count(); ++n) {
    const NodeCounters& c = registry.node(n);
    NodeMetrics m;
    m.node = n;
    m.name = g.node_name(n);
    m.fires = load(c.fires);
    m.data_out = load(c.data_out);
    m.dummy_out = load(c.dummy_out);
    m.eos_out = load(c.eos_out);
    m.data_in = load(c.data_in);
    m.dummy_in = load(c.dummy_in);
    out.tenant.items_fired += m.fires;
    out.nodes.push_back(std::move(m));
  }

  out.channels.reserve(g.edge_count());
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    const ChannelCounters& c = registry.channel(e);
    const Edge& edge = g.edge(e);
    ChannelMetrics m;
    m.edge = e;
    m.from = edge.from;
    m.to = edge.to;
    m.from_name = g.node_name(edge.from);
    m.to_name = g.node_name(edge.to);
    m.capacity = static_cast<std::uint64_t>(edge.buffer);
    m.data_pushed = load(c.data_pushed);
    m.dummies_pushed = load(c.dummies_pushed);
    m.pops = load(c.pops);
    m.full_stalls = load(c.full_stalls);
    m.empty_waits = load(c.empty_waits);
    m.high_water = c.high_water.load(std::memory_order_relaxed);
    // Racy reads may momentarily see a pop before its push; clamp at zero.
    const auto pushed =
        static_cast<std::int64_t>(m.data_pushed + m.dummies_pushed);
    m.occupancy = std::max<std::int64_t>(
        0, pushed - static_cast<std::int64_t>(m.pops));
    out.tenant.data_items += m.data_pushed;
    out.tenant.dummy_items += m.dummies_pushed;
    out.tenant.channel_slots += m.capacity;
    out.channels.push_back(std::move(m));
  }
  out.tenant.channel_bytes = out.tenant.channel_slots * options.bytes_per_slot;
  const std::uint64_t total = out.tenant.data_items + out.tenant.dummy_items;
  out.tenant.dummy_overhead_ratio =
      total == 0 ? 0.0
                 : static_cast<double>(out.tenant.dummy_items) /
                       static_cast<double>(total);
  return out;
}

WorkerMetrics read_worker(const WorkerCounters& counters, std::size_t index) {
  WorkerMetrics m;
  m.worker = index;
  m.task_runs = load(counters.task_runs);
  m.parks = load(counters.parks);
  m.wakes = load(counters.wakes);
  m.steals = load(counters.steals);
  m.steal_fails = load(counters.steal_fails);
  m.futex_parks = load(counters.futex_parks);
  m.depth_samples = load(counters.depth_samples);
  m.depth_max = load(counters.depth_max);
  m.depth_avg = m.depth_samples == 0
                    ? 0.0
                    : static_cast<double>(load(counters.depth_sum)) /
                          static_cast<double>(m.depth_samples);
  return m;
}

}  // namespace sdaf::obs
