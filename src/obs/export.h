// Schema-stable serializers for obs::MetricsSnapshot.
//
// to_json: one JSON object, schema tagged "sdaf.metrics.v1". Key order and
// key names are part of the contract -- dashboards and tests parse this;
// additions must append new keys, never rename or reorder existing ones.
//
// to_prometheus: the Prometheus text exposition format (version 0.0.4):
// `# HELP` / `# TYPE` headers per metric family, one sample line per series
// with tenant/node/edge labels. Counter families end in `_total`; gauges
// (occupancy, high water, ratios) do not. tools/check_prom.sh validates the
// line grammar in CI so this exporter cannot silently rot.
#pragma once

#include <string>

#include "src/obs/metrics.h"

namespace sdaf::obs {

[[nodiscard]] std::string to_json(const MetricsSnapshot& snapshot);
[[nodiscard]] std::string to_prometheus(const MetricsSnapshot& snapshot);

}  // namespace sdaf::obs
