// Schema-stable serializers for obs::MetricsSnapshot.
//
// to_json: one JSON object, schema tagged "sdaf.metrics.v1". Key order and
// key names are part of the contract -- dashboards and tests parse this;
// additions must append new keys, never rename or reorder existing ones.
//
// to_prometheus: the Prometheus text exposition format (version 0.0.4):
// `# HELP` / `# TYPE` headers per metric family, one sample line per series
// with tenant/node/edge labels. Counter families end in `_total`; gauges
// (occupancy, high water, ratios) do not. tools/check_prom.sh validates the
// line grammar in CI so this exporter cannot silently rot.
#pragma once

#include <string>
#include <vector>

#include "src/obs/metrics.h"

namespace sdaf::obs {

[[nodiscard]] std::string to_json(const MetricsSnapshot& snapshot);
[[nodiscard]] std::string to_prometheus(const MetricsSnapshot& snapshot);

// Merged page for a process exposing many snapshots at once (one per live
// stream in sdafd): each metric family appears exactly once -- one HELP,
// one TYPE -- with the samples of every snapshot under it, distinguished
// by their tenant label. Concatenating single-snapshot pages instead would
// duplicate the TYPE headers, which the exposition format (and
// tools/check_prom.sh) forbids. An empty vector yields headers only.
[[nodiscard]] std::string to_prometheus(
    const std::vector<MetricsSnapshot>& snapshots);

// Per-tenant DRR injector-lane accounting (PoolExecutor::tenant_metrics)
// as its own family group (sdaf_tenant_sched_*, sdaf_tenant_queue_*,
// sdaf_tenant_weight). Family names are disjoint from to_prometheus's, so
// the result can be appended to a page without violating the
// one-TYPE-per-family rule.
[[nodiscard]] std::string tenant_sched_to_prometheus(
    const std::vector<TenantSchedMetrics>& tenants);

// Admission-controller counters (qos::Admission) as Prometheus families:
// sdaf_admission_admitted_total / sdaf_admission_rejected_total. Plain
// integers so obs stays independent of qos.
[[nodiscard]] std::string admission_to_prometheus(std::uint64_t admitted,
                                                  std::uint64_t rejected);

}  // namespace sdaf::obs
