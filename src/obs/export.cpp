#include "src/obs/export.h"

#include <cstdio>
#include <sstream>
#include <string>

namespace sdaf::obs {

namespace {

// JSON string escaping (control characters, quote, backslash).
std::string jesc(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char ch : s) {
    switch (ch) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(ch));
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

std::string jnum(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

// Prometheus label-value escaping: backslash, double-quote, newline.
std::string pesc(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char ch : s) {
    if (ch == '\\')
      out += "\\\\";
    else if (ch == '"')
      out += "\\\"";
    else if (ch == '\n')
      out += "\\n";
    else
      out += ch;
  }
  return out;
}

// Emits one family at a time; samples carry the owning snapshot's tenant
// label, so one writer serves the merged multi-snapshot page as well as
// the classic single-snapshot one.
class PromWriter {
 public:
  void family(const std::string& name, const char* type, const char* help) {
    out_ << "# HELP " << name << " " << help << "\n";
    out_ << "# TYPE " << name << " " << type << "\n";
    family_ = name;
  }

  template <typename V>
  void sample(const std::string& tenant, const std::string& labels, V value) {
    out_ << family_ << "{tenant=\"" << pesc(tenant) << "\"" << labels << "} "
         << value << "\n";
  }

  void sample_f(const std::string& tenant, const std::string& labels,
                double value) {
    out_ << family_ << "{tenant=\"" << pesc(tenant) << "\"" << labels << "} "
         << jnum(value) << "\n";
  }

  [[nodiscard]] std::string str() const { return out_.str(); }

 private:
  std::string family_;
  std::ostringstream out_;
};

std::string node_label(const NodeMetrics& n) {
  return ",node=\"" + pesc(n.name) + "\"";
}

std::string edge_label(const ChannelMetrics& c) {
  return ",edge=\"" + std::to_string(c.edge) + "\",from=\"" +
         pesc(c.from_name) + "\",to=\"" + pesc(c.to_name) + "\"";
}

}  // namespace

std::string to_json(const MetricsSnapshot& s) {
  std::ostringstream o;
  o << "{\"schema\":\"" << jesc(s.schema) << "\"";
  o << ",\"backend\":\"" << jesc(s.backend) << "\"";
  const TenantMetrics& t = s.tenant;
  o << ",\"tenant\":{\"name\":\"" << jesc(t.tenant) << "\""
    << ",\"runs\":" << t.runs << ",\"items_fired\":" << t.items_fired
    << ",\"data_items\":" << t.data_items
    << ",\"dummy_items\":" << t.dummy_items
    << ",\"dummy_overhead_ratio\":" << jnum(t.dummy_overhead_ratio)
    << ",\"channel_slots\":" << t.channel_slots
    << ",\"channel_bytes\":" << t.channel_bytes
    << ",\"wall_seconds\":" << jnum(t.wall_seconds) << "}";
  o << ",\"ckpt\":{\"epoch\":" << s.ckpt.epoch
    << ",\"snapshots_taken\":" << s.ckpt.snapshots_taken
    << ",\"snapshot_pending\":" << (s.ckpt.snapshot_pending ? "true" : "false")
    << ",\"last_snapshot_seconds\":" << jnum(s.ckpt.last_snapshot_seconds)
    << "}";
  o << ",\"nodes\":[";
  for (std::size_t i = 0; i < s.nodes.size(); ++i) {
    const NodeMetrics& n = s.nodes[i];
    if (i != 0) o << ",";
    o << "{\"node\":" << n.node << ",\"name\":\"" << jesc(n.name) << "\""
      << ",\"fires\":" << n.fires << ",\"data_out\":" << n.data_out
      << ",\"dummy_out\":" << n.dummy_out << ",\"eos_out\":" << n.eos_out
      << ",\"data_in\":" << n.data_in << ",\"dummy_in\":" << n.dummy_in
      << "}";
  }
  o << "],\"channels\":[";
  for (std::size_t i = 0; i < s.channels.size(); ++i) {
    const ChannelMetrics& c = s.channels[i];
    if (i != 0) o << ",";
    o << "{\"edge\":" << c.edge << ",\"from\":\"" << jesc(c.from_name)
      << "\",\"to\":\"" << jesc(c.to_name) << "\""
      << ",\"capacity\":" << c.capacity
      << ",\"data_pushed\":" << c.data_pushed
      << ",\"dummies_pushed\":" << c.dummies_pushed << ",\"pops\":" << c.pops
      << ",\"full_stalls\":" << c.full_stalls
      << ",\"empty_waits\":" << c.empty_waits
      << ",\"high_water\":" << c.high_water
      << ",\"occupancy\":" << c.occupancy << "}";
  }
  o << "],\"workers\":[";
  for (std::size_t i = 0; i < s.workers.size(); ++i) {
    const WorkerMetrics& w = s.workers[i];
    if (i != 0) o << ",";
    o << "{\"worker\":" << w.worker << ",\"task_runs\":" << w.task_runs
      << ",\"parks\":" << w.parks << ",\"wakes\":" << w.wakes
      << ",\"steals\":" << w.steals << ",\"steal_fails\":" << w.steal_fails
      << ",\"futex_parks\":" << w.futex_parks
      << ",\"depth_samples\":" << w.depth_samples
      << ",\"depth_max\":" << w.depth_max
      << ",\"depth_avg\":" << jnum(w.depth_avg) << "}";
  }
  o << "],\"ports\":[";
  for (std::size_t i = 0; i < s.ports.size(); ++i) {
    const PortMetrics& p = s.ports[i];
    if (i != 0) o << ",";
    o << "{\"node\":\"" << jesc(p.name) << "\",\"dir\":\""
      << (p.input ? "in" : "out") << "\",\"pushed\":" << p.pushed
      << ",\"occupancy\":" << p.occupancy << ",\"capacity\":" << p.capacity
      << "}";
  }
  o << "]}";
  return o.str();
}

std::string to_prometheus(const MetricsSnapshot& snapshot) {
  return to_prometheus(std::vector<MetricsSnapshot>{snapshot});
}

std::string to_prometheus(const std::vector<MetricsSnapshot>& snaps) {
  PromWriter w;

  w.family("sdaf_node_fires_total", "counter",
           "Kernel invocations per node.");
  for (const auto& s : snaps)
    for (const auto& n : s.nodes)
      w.sample(s.tenant.tenant, node_label(n), n.fires);
  w.family("sdaf_node_data_out_total", "counter",
           "Data items emitted per node.");
  for (const auto& s : snaps)
    for (const auto& n : s.nodes)
      w.sample(s.tenant.tenant, node_label(n), n.data_out);
  w.family("sdaf_node_dummy_out_total", "counter",
           "Dummy items emitted per node (deadlock-avoidance overhead).");
  for (const auto& s : snaps)
    for (const auto& n : s.nodes)
      w.sample(s.tenant.tenant, node_label(n), n.dummy_out);
  w.family("sdaf_node_eos_out_total", "counter",
           "End-of-stream floods per node out-slot.");
  for (const auto& s : snaps)
    for (const auto& n : s.nodes)
      w.sample(s.tenant.tenant, node_label(n), n.eos_out);
  w.family("sdaf_node_data_in_total", "counter",
           "Data items consumed per node.");
  for (const auto& s : snaps)
    for (const auto& n : s.nodes)
      w.sample(s.tenant.tenant, node_label(n), n.data_in);
  w.family("sdaf_node_dummy_in_total", "counter",
           "Dummy items consumed per node.");
  for (const auto& s : snaps)
    for (const auto& n : s.nodes)
      w.sample(s.tenant.tenant, node_label(n), n.dummy_in);

  w.family("sdaf_channel_data_pushed_total", "counter",
           "Data messages pushed per channel.");
  for (const auto& s : snaps)
    for (const auto& c : s.channels)
      w.sample(s.tenant.tenant, edge_label(c), c.data_pushed);
  w.family("sdaf_channel_dummies_pushed_total", "counter",
           "Dummy messages pushed per channel.");
  for (const auto& s : snaps)
    for (const auto& c : s.channels)
      w.sample(s.tenant.tenant, edge_label(c), c.dummies_pushed);
  w.family("sdaf_channel_pops_total", "counter",
           "Messages popped per channel.");
  for (const auto& s : snaps)
    for (const auto& c : s.channels)
      w.sample(s.tenant.tenant, edge_label(c), c.pops);
  w.family("sdaf_channel_full_stalls_total", "counter",
           "Pushes refused or parked because the channel was full.");
  for (const auto& s : snaps)
    for (const auto& c : s.channels)
      w.sample(s.tenant.tenant, edge_label(c), c.full_stalls);
  w.family("sdaf_channel_empty_waits_total", "counter",
           "Consumer peeks that found the channel empty.");
  for (const auto& s : snaps)
    for (const auto& c : s.channels)
      w.sample(s.tenant.tenant, edge_label(c), c.empty_waits);
  w.family("sdaf_channel_capacity", "gauge",
           "Channel buffer bound in messages (the paper's length).");
  for (const auto& s : snaps)
    for (const auto& c : s.channels)
      w.sample(s.tenant.tenant, edge_label(c), c.capacity);
  w.family("sdaf_channel_high_water", "gauge",
           "Maximum logical occupancy observed.");
  for (const auto& s : snaps)
    for (const auto& c : s.channels)
      w.sample(s.tenant.tenant, edge_label(c), c.high_water);
  w.family("sdaf_channel_occupancy", "gauge",
           "Current logical occupancy (pushes minus pops).");
  for (const auto& s : snaps)
    for (const auto& c : s.channels)
      w.sample(s.tenant.tenant, edge_label(c), c.occupancy);

  w.family("sdaf_worker_task_runs_total", "counter",
           "Node quanta executed per pool worker.");
  for (const auto& s : snaps)
    for (const auto& x : s.workers)
      w.sample(s.tenant.tenant,
               ",worker=\"" + std::to_string(x.worker) + "\"", x.task_runs);
  w.family("sdaf_worker_parks_total", "counter",
           "Tasks parked per pool worker.");
  for (const auto& s : snaps)
    for (const auto& x : s.workers)
      w.sample(s.tenant.tenant,
               ",worker=\"" + std::to_string(x.worker) + "\"", x.parks);
  w.family("sdaf_worker_wakes_total", "counter",
           "Tasks scheduled per pool worker.");
  for (const auto& s : snaps)
    for (const auto& x : s.workers)
      w.sample(s.tenant.tenant,
               ",worker=\"" + std::to_string(x.worker) + "\"", x.wakes);
  w.family("sdaf_worker_steals_total", "counter",
           "Tasks stolen from a peer worker's deque or hot slot.");
  for (const auto& s : snaps)
    for (const auto& x : s.workers)
      w.sample(s.tenant.tenant,
               ",worker=\"" + std::to_string(x.worker) + "\"", x.steals);
  w.family("sdaf_worker_steal_fails_total", "counter",
           "Steal probes that found a victim empty or lost the race.");
  for (const auto& s : snaps)
    for (const auto& x : s.workers)
      w.sample(s.tenant.tenant,
               ",worker=\"" + std::to_string(x.worker) + "\"", x.steal_fails);
  w.family("sdaf_worker_futex_parks_total", "counter",
           "Idle futex sleeps per pool worker.");
  for (const auto& s : snaps)
    for (const auto& x : s.workers)
      w.sample(s.tenant.tenant,
               ",worker=\"" + std::to_string(x.worker) + "\"", x.futex_parks);
  w.family("sdaf_worker_queue_depth_max", "gauge",
           "Maximum ready-queue depth sampled per worker.");
  for (const auto& s : snaps)
    for (const auto& x : s.workers)
      w.sample(s.tenant.tenant,
               ",worker=\"" + std::to_string(x.worker) + "\"", x.depth_max);
  w.family("sdaf_worker_queue_depth_avg", "gauge",
           "Mean ready-queue depth sampled per worker.");
  for (const auto& s : snaps)
    for (const auto& x : s.workers)
      w.sample_f(s.tenant.tenant,
                 ",worker=\"" + std::to_string(x.worker) + "\"", x.depth_avg);

  w.family("sdaf_port_pushed_total", "counter",
           "Items through a stream port.");
  for (const auto& s : snaps)
    for (const auto& p : s.ports)
      w.sample(s.tenant.tenant,
               ",node=\"" + pesc(p.name) + "\",dir=\"" +
                   (p.input ? std::string("in") : std::string("out")) + "\"",
               p.pushed);
  w.family("sdaf_port_occupancy", "gauge",
           "Current port channel occupancy.");
  for (const auto& s : snaps)
    for (const auto& p : s.ports)
      w.sample(s.tenant.tenant,
               ",node=\"" + pesc(p.name) + "\",dir=\"" +
                   (p.input ? std::string("in") : std::string("out")) + "\"",
               p.occupancy);

  w.family("sdaf_tenant_items_fired_total", "counter",
           "Kernel invocations for the tenant.");
  for (const auto& s : snaps) w.sample(s.tenant.tenant, "", s.tenant.items_fired);
  w.family("sdaf_tenant_data_items_total", "counter",
           "Data items pushed for the tenant.");
  for (const auto& s : snaps) w.sample(s.tenant.tenant, "", s.tenant.data_items);
  w.family("sdaf_tenant_dummy_items_total", "counter",
           "Dummy items pushed for the tenant.");
  for (const auto& s : snaps)
    w.sample(s.tenant.tenant, "", s.tenant.dummy_items);
  w.family("sdaf_tenant_dummy_overhead_ratio", "gauge",
           "dummies / (data + dummies): the measured avoidance cost.");
  for (const auto& s : snaps)
    w.sample_f(s.tenant.tenant, "", s.tenant.dummy_overhead_ratio);
  w.family("sdaf_tenant_channel_slots", "gauge",
           "Compiled channel buffer footprint in messages.");
  for (const auto& s : snaps)
    w.sample(s.tenant.tenant, "", s.tenant.channel_slots);
  w.family("sdaf_tenant_channel_bytes", "gauge",
           "Compiled channel buffer footprint in bytes.");
  for (const auto& s : snaps)
    w.sample(s.tenant.tenant, "", s.tenant.channel_bytes);
  w.family("sdaf_tenant_wall_seconds", "gauge",
           "Wall-clock seconds spent in runs.");
  for (const auto& s : snaps)
    w.sample_f(s.tenant.tenant, "", s.tenant.wall_seconds);

  w.family("sdaf_stream_epoch", "gauge",
           "Logical stream generation (0 fresh, +1 per restore).");
  for (const auto& s : snaps) w.sample(s.tenant.tenant, "", s.ckpt.epoch);
  w.family("sdaf_snapshots_total", "counter",
           "Barrier snapshots completed on the stream.");
  for (const auto& s : snaps)
    w.sample(s.tenant.tenant, "", s.ckpt.snapshots_taken);
  w.family("sdaf_snapshot_pending", "gauge",
           "1 while a barrier snapshot is in flight.");
  for (const auto& s : snaps)
    w.sample(s.tenant.tenant, "", s.ckpt.snapshot_pending ? 1 : 0);
  w.family("sdaf_snapshot_duration_seconds", "gauge",
           "Wall duration of the last completed barrier (begin to cut).");
  for (const auto& s : snaps)
    w.sample_f(s.tenant.tenant, "", s.ckpt.last_snapshot_seconds);

  return w.str();
}

std::string tenant_sched_to_prometheus(
    const std::vector<TenantSchedMetrics>& tenants) {
  PromWriter w;
  w.family("sdaf_tenant_weight", "gauge",
           "DRR weight of the tenant's injector lane.");
  for (const auto& t : tenants) w.sample(t.tenant, "", t.weight);
  w.family("sdaf_tenant_sched_enqueued_total", "counter",
           "Tasks enqueued into the tenant's injector lane.");
  for (const auto& t : tenants) w.sample(t.tenant, "", t.enqueued);
  w.family("sdaf_tenant_sched_dequeued_total", "counter",
           "Tasks drained from the tenant's injector lane by workers.");
  for (const auto& t : tenants) w.sample(t.tenant, "", t.dequeued);
  w.family("sdaf_tenant_queue_depth", "gauge",
           "Current occupancy of the tenant's injector lane.");
  for (const auto& t : tenants) w.sample(t.tenant, "", t.queue_depth);
  w.family("sdaf_tenant_queue_depth_max", "gauge",
           "Maximum occupancy the tenant's injector lane reached.");
  for (const auto& t : tenants) w.sample(t.tenant, "", t.queue_depth_max);
  return w.str();
}

std::string admission_to_prometheus(std::uint64_t admitted,
                                    std::uint64_t rejected) {
  std::string page;
  page +=
      "# HELP sdaf_admission_admitted_total Streams admitted by the qos "
      "admission controller.\n# TYPE sdaf_admission_admitted_total counter\n";
  page += "sdaf_admission_admitted_total " + std::to_string(admitted) + "\n";
  page +=
      "# HELP sdaf_admission_rejected_total Opens refused over budget by "
      "the qos admission controller.\n"
      "# TYPE sdaf_admission_rejected_total counter\n";
  page += "sdaf_admission_rejected_total " + std::to_string(rejected) + "\n";
  return page;
}

}  // namespace sdaf::obs
