#include "src/graph/undirected.h"

#include <algorithm>

#include "src/support/contracts.h"

namespace sdaf {

UndirectedView::UndirectedView(const StreamGraph& g)
    : incident_(g.node_count()) {
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    const auto& ed = g.edge(e);
    incident_[ed.from].push_back(HalfEdge{e, ed.to, true});
    incident_[ed.to].push_back(HalfEdge{e, ed.from, false});
  }
}

const std::vector<HalfEdge>& UndirectedView::incident(NodeId n) const {
  SDAF_EXPECTS(n < incident_.size());
  return incident_[n];
}

std::size_t UndirectedView::degree(NodeId n) const {
  return incident(n).size();
}

namespace {

// Iterative Hopcroft–Tarjan DFS computing both articulation points and
// biconnected components. Iterative to keep stack use flat on the large
// random graphs the benchmarks generate.
struct BiconnResult {
  std::vector<NodeId> articulation;
  std::vector<std::vector<EdgeId>> components;
};

BiconnResult biconnectivity(const StreamGraph& g) {
  const UndirectedView u(g);
  const std::size_t n = g.node_count();

  std::vector<std::uint32_t> disc(n, 0);
  std::vector<std::uint32_t> low(n, 0);
  std::vector<bool> is_art(n, false);
  std::uint32_t timer = 0;

  struct Frame {
    NodeId v;
    EdgeId parent_edge;
    std::size_t next_half;
    std::size_t children;  // DFS children (root articulation rule)
  };

  std::vector<Frame> stack;
  std::vector<EdgeId> edge_stack;
  BiconnResult result;

  for (NodeId root = 0; root < n; ++root) {
    if (disc[root] != 0) continue;
    stack.push_back(Frame{root, kNoEdge, 0, 0});
    disc[root] = low[root] = ++timer;

    while (!stack.empty()) {
      Frame& f = stack.back();
      if (f.next_half < u.incident(f.v).size()) {
        const HalfEdge& half = u.incident(f.v)[f.next_half++];
        if (half.edge == f.parent_edge) continue;  // the tree edge we came by
        if (disc[half.other] == 0) {
          // Tree edge.
          edge_stack.push_back(half.edge);
          disc[half.other] = low[half.other] = ++timer;
          ++f.children;
          stack.push_back(Frame{half.other, half.edge, 0, 0});
        } else if (disc[half.other] < disc[f.v]) {
          // Back edge to an ancestor (parallel edges to the parent land here).
          edge_stack.push_back(half.edge);
          low[f.v] = std::min(low[f.v], disc[half.other]);
        }
        // disc[other] > disc[v]: the mirror of an edge already handled from
        // the descendant side; skip.
      } else {
        // Finished v; fold into parent.
        const Frame done = f;
        stack.pop_back();
        if (stack.empty()) {
          if (done.children >= 2 && done.v == root) is_art[done.v] = true;
          SDAF_ASSERT(edge_stack.empty());
          continue;
        }
        Frame& parent = stack.back();
        low[parent.v] = std::min(low[parent.v], low[done.v]);
        if (low[done.v] >= disc[parent.v]) {
          // parent.v separates this subtree: emit one biconnected component.
          std::vector<EdgeId> comp;
          for (;;) {
            SDAF_ASSERT(!edge_stack.empty());
            const EdgeId e = edge_stack.back();
            edge_stack.pop_back();
            comp.push_back(e);
            if (e == done.parent_edge) break;
          }
          result.components.push_back(std::move(comp));
          const bool parent_is_root = parent.parent_edge == kNoEdge;
          if (!parent_is_root) is_art[parent.v] = true;
          // Root handled by the children>=2 rule when it finishes.
        }
      }
    }
  }

  for (NodeId v = 0; v < n; ++v)
    if (is_art[v]) result.articulation.push_back(v);
  return result;
}

}  // namespace

std::vector<NodeId> articulation_points(const StreamGraph& g) {
  return biconnectivity(g).articulation;
}

std::vector<std::vector<EdgeId>> biconnected_components(const StreamGraph& g) {
  return biconnectivity(g).components;
}

}  // namespace sdaf
