// The streaming-application topology: a directed acyclic *multigraph* whose
// nodes are compute kernels and whose edges are unidirectional FIFO channels
// with finite buffer capacities (the paper's "edge lengths").
//
// Multi-edges (parallel channels between the same node pair) are first-class:
// they are the base case of the series-parallel construction in the paper
// (Section III) and induce 2-edge undirected cycles.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace sdaf {

using NodeId = std::uint32_t;
using EdgeId = std::uint32_t;

inline constexpr NodeId kNoNode = static_cast<NodeId>(-1);
inline constexpr EdgeId kNoEdge = static_cast<EdgeId>(-1);

struct Edge {
  NodeId from = kNoNode;
  NodeId to = kNoNode;
  // Channel buffer capacity in messages; the "length" used by the paper's
  // shortest-path interval computations. Always >= 1.
  std::int64_t buffer = 1;
};

class StreamGraph {
 public:
  StreamGraph() = default;

  NodeId add_node(std::string name = {});
  EdgeId add_edge(NodeId from, NodeId to, std::int64_t buffer);

  [[nodiscard]] std::size_t node_count() const { return node_names_.size(); }
  [[nodiscard]] std::size_t edge_count() const { return edges_.size(); }

  [[nodiscard]] const Edge& edge(EdgeId e) const;
  [[nodiscard]] const std::string& node_name(NodeId n) const;
  void set_node_name(NodeId n, std::string name);
  void set_buffer(EdgeId e, std::int64_t buffer);

  [[nodiscard]] std::span<const EdgeId> out_edges(NodeId n) const;
  [[nodiscard]] std::span<const EdgeId> in_edges(NodeId n) const;
  [[nodiscard]] std::size_t out_degree(NodeId n) const;
  [[nodiscard]] std::size_t in_degree(NodeId n) const;

  // Nodes with no incoming / no outgoing edges.
  [[nodiscard]] std::vector<NodeId> sources() const;
  [[nodiscard]] std::vector<NodeId> sinks() const;

  // Convenience for the (common) single-source / single-sink case; contract
  // violation if not unique.
  [[nodiscard]] NodeId unique_source() const;
  [[nodiscard]] NodeId unique_sink() const;

  // Total size measure |G| = nodes + edges, as in the paper's bounds.
  [[nodiscard]] std::size_t size() const { return node_count() + edge_count(); }

 private:
  std::vector<std::string> node_names_;
  std::vector<Edge> edges_;
  std::vector<std::vector<EdgeId>> out_;
  std::vector<std::vector<EdgeId>> in_;
};

}  // namespace sdaf
