// Undirected view of the streaming multigraph, plus biconnectivity
// machinery. Deadlock analysis is driven by *undirected* simple cycles
// (Section II), and the CS4 decomposition splits the graph into serial
// components at articulation points (Lemma V.6).
#pragma once

#include <vector>

#include "src/graph/stream_graph.h"

namespace sdaf {

// One undirected incidence of an edge on a node.
struct HalfEdge {
  EdgeId edge = kNoEdge;
  NodeId other = kNoNode;  // the endpoint across this edge
  bool forward = true;     // true iff this node is the edge's tail (from)
};

class UndirectedView {
 public:
  explicit UndirectedView(const StreamGraph& g);

  [[nodiscard]] const std::vector<HalfEdge>& incident(NodeId n) const;
  [[nodiscard]] std::size_t degree(NodeId n) const;

 private:
  std::vector<std::vector<HalfEdge>> incident_;
};

// Articulation points of the underlying undirected multigraph.
[[nodiscard]] std::vector<NodeId> articulation_points(const StreamGraph& g);

// Biconnected components, each given as a set of edge ids. Bridges appear as
// single-edge components. Parallel edges between the same node pair always
// share a component.
[[nodiscard]] std::vector<std::vector<EdgeId>> biconnected_components(
    const StreamGraph& g);

}  // namespace sdaf
