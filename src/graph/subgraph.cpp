#include "src/graph/subgraph.h"

#include "src/support/contracts.h"

namespace sdaf {

Subgraph extract_subgraph(const StreamGraph& g,
                          const std::vector<EdgeId>& edges) {
  Subgraph out;
  out.to_sub.assign(g.node_count(), kNoNode);
  for (const EdgeId e : edges) {
    const auto& ed = g.edge(e);
    for (const NodeId n : {ed.from, ed.to}) {
      if (out.to_sub[n] == kNoNode) {
        out.to_sub[n] = out.graph.add_node(g.node_name(n));
        out.orig_node.push_back(n);
      }
    }
    out.graph.add_edge(out.to_sub[ed.from], out.to_sub[ed.to], ed.buffer);
    out.orig_edge.push_back(e);
  }
  SDAF_ENSURES(out.graph.edge_count() == edges.size());
  return out;
}

}  // namespace sdaf
