#include "src/graph/cycles.h"

#include <algorithm>

#include "src/graph/undirected.h"
#include "src/support/contracts.h"

namespace sdaf {

namespace {

// Backtracking enumeration. Each simple cycle has a unique minimum node s;
// we root the search at s and only allow interior nodes > s, so every cycle
// is discovered exactly at its minimum node. Each cycle would be walked in
// both directions; keeping only walks whose first edge id is smaller than
// the closing edge id leaves exactly one representative.
class Enumerator {
 public:
  Enumerator(const StreamGraph& g, std::size_t limit)
      : g_(g), view_(g), limit_(limit), on_path_(g.node_count(), false),
        edge_used_(g.edge_count(), false) {}

  CycleEnumeration run() {
    for (NodeId s = 0; s < g_.node_count() && !out_.truncated; ++s) {
      start_ = s;
      on_path_[s] = true;
      dfs(s);
      on_path_[s] = false;
    }
    return std::move(out_);
  }

 private:
  void dfs(NodeId v) {
    if (out_.truncated) return;
    for (const HalfEdge& half : view_.incident(v)) {
      if (edge_used_[half.edge]) continue;
      if (half.other == start_) {
        if (!path_.empty() && path_.front().edge < half.edge) {
          UCycle cycle = path_;
          cycle.push_back(CycleStep{half.edge, half.forward});
          if (out_.cycles.size() >= limit_) {
            out_.truncated = true;
            return;
          }
          out_.cycles.push_back(std::move(cycle));
        }
        continue;
      }
      if (half.other < start_ || on_path_[half.other]) continue;
      on_path_[half.other] = true;
      edge_used_[half.edge] = true;
      path_.push_back(CycleStep{half.edge, half.forward});
      dfs(half.other);
      path_.pop_back();
      edge_used_[half.edge] = false;
      on_path_[half.other] = false;
      if (out_.truncated) return;
    }
  }

  const StreamGraph& g_;
  UndirectedView view_;
  std::size_t limit_;
  NodeId start_ = kNoNode;
  std::vector<bool> on_path_;
  std::vector<bool> edge_used_;
  UCycle path_;
  CycleEnumeration out_;
};

NodeId step_from(const StreamGraph& g, const CycleStep& s) {
  const auto& e = g.edge(s.edge);
  return s.forward ? e.from : e.to;
}

NodeId step_to(const StreamGraph& g, const CycleStep& s) {
  const auto& e = g.edge(s.edge);
  return s.forward ? e.to : e.from;
}

}  // namespace

CycleEnumeration enumerate_undirected_cycles(const StreamGraph& g,
                                             std::size_t limit) {
  return Enumerator(g, limit).run();
}

std::vector<NodeId> cycle_nodes(const StreamGraph& g, const UCycle& cycle) {
  SDAF_EXPECTS(cycle.size() >= 2);
  std::vector<NodeId> nodes;
  nodes.reserve(cycle.size());
  for (const auto& s : cycle) nodes.push_back(step_from(g, s));
  SDAF_ENSURES(step_to(g, cycle.back()) == nodes.front());
  return nodes;
}

std::vector<DirectedRun> directed_runs(const StreamGraph& g,
                                       const UCycle& cycle) {
  const std::size_t k = cycle.size();
  SDAF_EXPECTS(k >= 2);
  // A DAG cycle cannot be uniformly oriented, so a flip exists; rotate so the
  // walk starts at a run boundary (orientation change between last and first
  // step).
  std::size_t first = k;  // index starting a new run
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t prev = (i + k - 1) % k;
    if (cycle[i].forward != cycle[prev].forward) {
      first = i;
      break;
    }
  }
  SDAF_EXPECTS(first < k);  // otherwise the "cycle" is a directed cycle

  std::vector<DirectedRun> runs;
  std::size_t i = 0;
  while (i < k) {
    const std::size_t begin = (first + i) % k;
    const bool fwd = cycle[begin].forward;
    // Collect the maximal block with equal orientation.
    std::vector<EdgeId> block;
    std::int64_t buffers = 0;
    while (i < k) {
      const CycleStep& s = cycle[(first + i) % k];
      if (s.forward != fwd) break;
      block.push_back(s.edge);
      buffers += g.edge(s.edge).buffer;
      ++i;
    }
    DirectedRun run;
    const std::size_t end = (first + i) % k;  // step index after the block
    if (fwd) {
      run.source = step_from(g, cycle[begin]);
      run.sink = step_from(g, cycle[end % k]);
      run.edges = std::move(block);
    } else {
      // Walk went against the edges: the directed path runs from the walk's
      // end back to its beginning.
      run.source = step_from(g, cycle[end % k]);
      run.sink = step_from(g, cycle[begin]);
      run.edges.assign(block.rbegin(), block.rend());
    }
    run.buffer_length = buffers;
    runs.push_back(std::move(run));
  }
  SDAF_ENSURES(runs.size() >= 2 && runs.size() % 2 == 0);
  return runs;
}

std::vector<NodeId> cycle_sources(const StreamGraph& g, const UCycle& cycle) {
  std::vector<NodeId> out;
  for (const auto& run : directed_runs(g, cycle)) out.push_back(run.source);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<NodeId> cycle_sinks(const StreamGraph& g, const UCycle& cycle) {
  std::vector<NodeId> out;
  for (const auto& run : directed_runs(g, cycle)) out.push_back(run.sink);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

bool is_cs4_by_enumeration(const StreamGraph& g, std::size_t limit) {
  const auto enumeration = enumerate_undirected_cycles(g, limit);
  SDAF_EXPECTS(!enumeration.truncated);
  for (const auto& cycle : enumeration.cycles) {
    if (cycle_sources(g, cycle).size() != 1) return false;
    if (cycle_sinks(g, cycle).size() != 1) return false;
  }
  return true;
}

}  // namespace sdaf
