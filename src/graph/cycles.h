// Enumeration of *undirected simple cycles* of the streaming multigraph, and
// their decomposition into maximal directed runs. This is the machinery
// behind the paper's exact (exponential-time) interval definitions in
// Section II.B, which the efficient SP / CS4 algorithms are validated
// against.
#pragma once

#include <cstdint>
#include <vector>

#include "src/graph/stream_graph.h"

namespace sdaf {

// One traversal step of a cycle walk. `forward` is true when the walk
// traverses the edge tail-to-head.
struct CycleStep {
  EdgeId edge = kNoEdge;
  bool forward = true;
};

// A closed simple walk: steps[i] leads from node(i) to node(i+1) and
// node(0) == node(k). At least two steps; all edges and interior nodes
// distinct.
using UCycle = std::vector<CycleStep>;

struct CycleEnumeration {
  std::vector<UCycle> cycles;
  // True when enumeration stopped at `limit` before exhausting the graph.
  bool truncated = false;
};

// Enumerates every undirected simple cycle, each exactly once (up to
// direction and rotation). Worst-case exponential in |G|; `limit` bounds the
// number of cycles collected.
[[nodiscard]] CycleEnumeration enumerate_undirected_cycles(
    const StreamGraph& g, std::size_t limit = static_cast<std::size_t>(-1));

// Node sequence visited by a cycle: v0, v1, ..., vk-1 with the closing step
// returning to v0.
[[nodiscard]] std::vector<NodeId> cycle_nodes(const StreamGraph& g,
                                              const UCycle& cycle);

// A maximal directed path along a cycle ("run"). Every undirected simple
// cycle in a DAG decomposes into >= 2 runs; run boundaries are exactly the
// cycle's sources (both incident cycle edges outgoing) and sinks (both
// incoming).
struct DirectedRun {
  NodeId source = kNoNode;          // where the directed path starts
  NodeId sink = kNoNode;            // where it ends
  std::vector<EdgeId> edges;        // in path order (source to sink)
  std::int64_t buffer_length = 0;   // sum of edge buffers (paper's L)
  [[nodiscard]] std::int64_t hops() const {
    return static_cast<std::int64_t>(edges.size());
  }
};

// Decomposes a cycle into its maximal directed runs, in cycle order.
[[nodiscard]] std::vector<DirectedRun> directed_runs(const StreamGraph& g,
                                                     const UCycle& cycle);

// Sources of the cycle (one per pair of adjacent runs leaving the node).
[[nodiscard]] std::vector<NodeId> cycle_sources(const StreamGraph& g,
                                                const UCycle& cycle);
[[nodiscard]] std::vector<NodeId> cycle_sinks(const StreamGraph& g,
                                              const UCycle& cycle);

// Direct check of the CS4 property (Section V): every undirected simple
// cycle has exactly one source and one sink. Exponential; used as the
// ground-truth oracle in tests. `limit` guards runaway enumeration; if the
// enumeration truncates, the check aborts via contract violation.
[[nodiscard]] bool is_cs4_by_enumeration(
    const StreamGraph& g, std::size_t limit = 1u << 22);

}  // namespace sdaf
