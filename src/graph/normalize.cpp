#include "src/graph/normalize.h"

#include "src/support/contracts.h"

namespace sdaf {

Normalization normalize_two_terminal(const StreamGraph& g,
                                     std::int64_t virtual_buffer) {
  SDAF_EXPECTS(virtual_buffer >= 1);
  Normalization out;
  // Copy nodes and edges verbatim (ids preserved).
  for (NodeId n = 0; n < g.node_count(); ++n)
    (void)out.graph.add_node(g.node_name(n));
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    const auto& ed = g.edge(e);
    (void)out.graph.add_edge(ed.from, ed.to, ed.buffer);
    out.orig_edge.push_back(e);
  }

  const auto sources = g.sources();
  const auto sinks = g.sinks();
  if (sources.size() > 1) {
    out.virtual_source = out.graph.add_node("<src>");
    for (const NodeId s : sources) {
      (void)out.graph.add_edge(out.virtual_source, s, virtual_buffer);
      out.orig_edge.push_back(kNoEdge);
    }
    out.changed = true;
  }
  if (sinks.size() > 1) {
    out.virtual_sink = out.graph.add_node("<snk>");
    for (const NodeId t : sinks) {
      (void)out.graph.add_edge(t, out.virtual_sink, virtual_buffer);
      out.orig_edge.push_back(kNoEdge);
    }
    out.changed = true;
  }
  return out;
}

}  // namespace sdaf
