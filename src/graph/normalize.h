// Terminal normalization: the SP / CS4 analyses require a unique source
// and sink, but real applications often have several independent input
// feeds and output drains. Wrapping them with a virtual super-source /
// super-sink makes the analysis applicable and -- importantly -- also
// *sound*: cycles through the virtual source encode the real coordination
// constraint between sibling sources (a join downstream of two sources
// starves when one of them filters), and the continuation-forwarding rule
// derived from those cycles makes each source propagate sequence-number
// knowledge even while filtering.
//
// The virtual channels carry a configurable capacity. Free-running sources
// can drift arbitrarily far apart, so by default it is effectively
// unbounded (intervals derived through virtual cycles become astronomically
// lazy and knowledge transport is carried by the forwarding rule alone);
// applications whose sources are externally synchronized within B items
// can pass B to obtain tighter schedules.
#pragma once

#include <cstdint>
#include <vector>

#include "src/graph/stream_graph.h"

namespace sdaf {

inline constexpr std::int64_t kUnboundedVirtualBuffer = 1ll << 40;

struct Normalization {
  StreamGraph graph;  // the wrapped graph
  bool changed = false;
  NodeId virtual_source = kNoNode;  // kNoNode when not added
  NodeId virtual_sink = kNoNode;
  // wrapped edge id -> original edge id; kNoEdge for virtual edges.
  std::vector<EdgeId> orig_edge;
};

[[nodiscard]] Normalization normalize_two_terminal(
    const StreamGraph& g,
    std::int64_t virtual_buffer = kUnboundedVirtualBuffer);

}  // namespace sdaf
