#include "src/graph/validate.h"

#include "src/graph/topo.h"
#include "src/graph/undirected.h"

namespace sdaf {

bool is_acyclic(const StreamGraph& g) { return topo_order(g).has_value(); }

bool is_weakly_connected(const StreamGraph& g) {
  if (g.node_count() == 0) return false;
  const UndirectedView u(g);
  std::vector<bool> seen(g.node_count(), false);
  std::vector<NodeId> stack{0};
  seen[0] = true;
  std::size_t visited = 1;
  while (!stack.empty()) {
    const NodeId v = stack.back();
    stack.pop_back();
    for (const auto& half : u.incident(v)) {
      if (!seen[half.other]) {
        seen[half.other] = true;
        ++visited;
        stack.push_back(half.other);
      }
    }
  }
  return visited == g.node_count();
}

ValidationReport validate(const StreamGraph& g) {
  ValidationReport r;
  if (g.node_count() == 0) {
    r.problems.emplace_back("graph has no nodes");
    return r;
  }
  r.acyclic = is_acyclic(g);
  if (!r.acyclic) r.problems.emplace_back("graph contains a directed cycle");
  r.weakly_connected = is_weakly_connected(g);
  if (!r.weakly_connected)
    r.problems.emplace_back("graph is not weakly connected");

  const auto sources = g.sources();
  const auto sinks = g.sinks();
  r.single_source = sources.size() == 1;
  r.single_sink = sinks.size() == 1;
  if (!r.single_source)
    r.problems.push_back("graph has " + std::to_string(sources.size()) +
                         " sources (analysis requires exactly 1)");
  if (!r.single_sink)
    r.problems.push_back("graph has " + std::to_string(sinks.size()) +
                         " sinks (analysis requires exactly 1)");
  return r;
}

}  // namespace sdaf
