// Edge-induced subgraph extraction with id mappings back to the parent
// graph, used to analyze biconnected blocks in isolation.
#pragma once

#include <vector>

#include "src/graph/stream_graph.h"

namespace sdaf {

struct Subgraph {
  StreamGraph graph;
  std::vector<EdgeId> orig_edge;  // subgraph edge id -> parent edge id
  std::vector<NodeId> orig_node;  // subgraph node id -> parent node id
  std::vector<NodeId> to_sub;     // parent node id -> subgraph node id (kNoNode if absent)
};

[[nodiscard]] Subgraph extract_subgraph(const StreamGraph& g,
                                        const std::vector<EdgeId>& edges);

}  // namespace sdaf
