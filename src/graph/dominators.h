// Dominator and postdominator trees on the streaming DAG. The paper's
// structural lemmas (III.1, III.2) argue through immediate postdominators of
// split nodes; we expose them both for tests of those lemmas and for
// diagnostics in the CS4 rejection path.
#pragma once

#include <vector>

#include "src/graph/stream_graph.h"

namespace sdaf {

// idom[v] = immediate dominator of v w.r.t. paths from `root`; idom[root] ==
// root; unreachable nodes get kNoNode.
[[nodiscard]] std::vector<NodeId> immediate_dominators(const StreamGraph& g,
                                                       NodeId root);

// Immediate postdominators w.r.t. paths to `exit` (dominators of the edge-
// reversed graph).
[[nodiscard]] std::vector<NodeId> immediate_postdominators(
    const StreamGraph& g, NodeId exit);

// True iff a dominates b (a on every root-to-b path), given an idom array
// from immediate_dominators(root).
[[nodiscard]] bool dominates(const std::vector<NodeId>& idom, NodeId root,
                             NodeId a, NodeId b);

}  // namespace sdaf
