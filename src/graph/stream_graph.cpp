#include "src/graph/stream_graph.h"

#include "src/support/contracts.h"

namespace sdaf {

NodeId StreamGraph::add_node(std::string name) {
  const auto id = static_cast<NodeId>(node_names_.size());
  if (name.empty()) name = "n" + std::to_string(id);
  node_names_.push_back(std::move(name));
  out_.emplace_back();
  in_.emplace_back();
  return id;
}

EdgeId StreamGraph::add_edge(NodeId from, NodeId to, std::int64_t buffer) {
  SDAF_EXPECTS(from < node_count());
  SDAF_EXPECTS(to < node_count());
  SDAF_EXPECTS(from != to);  // self-loops are directed cycles; not a DAG
  SDAF_EXPECTS(buffer >= 1);
  const auto id = static_cast<EdgeId>(edges_.size());
  edges_.push_back(Edge{from, to, buffer});
  out_[from].push_back(id);
  in_[to].push_back(id);
  return id;
}

const Edge& StreamGraph::edge(EdgeId e) const {
  SDAF_EXPECTS(e < edge_count());
  return edges_[e];
}

const std::string& StreamGraph::node_name(NodeId n) const {
  SDAF_EXPECTS(n < node_count());
  return node_names_[n];
}

void StreamGraph::set_node_name(NodeId n, std::string name) {
  SDAF_EXPECTS(n < node_count());
  node_names_[n] = std::move(name);
}

void StreamGraph::set_buffer(EdgeId e, std::int64_t buffer) {
  SDAF_EXPECTS(e < edge_count());
  SDAF_EXPECTS(buffer >= 1);
  edges_[e].buffer = buffer;
}

std::span<const EdgeId> StreamGraph::out_edges(NodeId n) const {
  SDAF_EXPECTS(n < node_count());
  return out_[n];
}

std::span<const EdgeId> StreamGraph::in_edges(NodeId n) const {
  SDAF_EXPECTS(n < node_count());
  return in_[n];
}

std::size_t StreamGraph::out_degree(NodeId n) const {
  return out_edges(n).size();
}

std::size_t StreamGraph::in_degree(NodeId n) const { return in_edges(n).size(); }

std::vector<NodeId> StreamGraph::sources() const {
  std::vector<NodeId> result;
  for (NodeId n = 0; n < node_count(); ++n)
    if (in_[n].empty()) result.push_back(n);
  return result;
}

std::vector<NodeId> StreamGraph::sinks() const {
  std::vector<NodeId> result;
  for (NodeId n = 0; n < node_count(); ++n)
    if (out_[n].empty()) result.push_back(n);
  return result;
}

NodeId StreamGraph::unique_source() const {
  const auto s = sources();
  SDAF_EXPECTS(s.size() == 1);
  return s[0];
}

NodeId StreamGraph::unique_sink() const {
  const auto s = sinks();
  SDAF_EXPECTS(s.size() == 1);
  return s[0];
}

}  // namespace sdaf
