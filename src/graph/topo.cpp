#include "src/graph/topo.h"

#include <algorithm>

#include "src/support/contracts.h"

namespace sdaf {

std::optional<std::vector<NodeId>> topo_order(const StreamGraph& g) {
  const std::size_t n = g.node_count();
  std::vector<std::size_t> indeg(n);
  for (NodeId v = 0; v < n; ++v) indeg[v] = g.in_degree(v);

  std::vector<NodeId> order;
  order.reserve(n);
  std::vector<NodeId> frontier;
  for (NodeId v = 0; v < n; ++v)
    if (indeg[v] == 0) frontier.push_back(v);

  while (!frontier.empty()) {
    const NodeId v = frontier.back();
    frontier.pop_back();
    order.push_back(v);
    for (const EdgeId e : g.out_edges(v)) {
      const NodeId w = g.edge(e).to;
      if (--indeg[w] == 0) frontier.push_back(w);
    }
  }
  if (order.size() != n) return std::nullopt;  // directed cycle
  return order;
}

std::vector<std::int64_t> shortest_buffer_dist(const StreamGraph& g,
                                               NodeId from) {
  const auto order = topo_order(g);
  SDAF_EXPECTS(order.has_value());
  std::vector<std::int64_t> dist(g.node_count(), -1);
  dist[from] = 0;
  for (const NodeId v : *order) {
    if (dist[v] < 0) continue;
    for (const EdgeId e : g.out_edges(v)) {
      const auto& ed = g.edge(e);
      const std::int64_t cand = dist[v] + ed.buffer;
      if (dist[ed.to] < 0 || cand < dist[ed.to]) dist[ed.to] = cand;
    }
  }
  return dist;
}

std::vector<std::int64_t> longest_hop_dist(const StreamGraph& g, NodeId from) {
  const auto order = topo_order(g);
  SDAF_EXPECTS(order.has_value());
  std::vector<std::int64_t> dist(g.node_count(), -1);
  dist[from] = 0;
  for (const NodeId v : *order) {
    if (dist[v] < 0) continue;
    for (const EdgeId e : g.out_edges(v)) {
      const auto& ed = g.edge(e);
      dist[ed.to] = std::max(dist[ed.to], dist[v] + 1);
    }
  }
  return dist;
}

std::vector<bool> reachable_from(const StreamGraph& g, NodeId from) {
  std::vector<bool> seen(g.node_count(), false);
  std::vector<NodeId> stack{from};
  seen[from] = true;
  while (!stack.empty()) {
    const NodeId v = stack.back();
    stack.pop_back();
    for (const EdgeId e : g.out_edges(v)) {
      const NodeId w = g.edge(e).to;
      if (!seen[w]) {
        seen[w] = true;
        stack.push_back(w);
      }
    }
  }
  return seen;
}

}  // namespace sdaf
