#include "src/graph/dominators.h"

#include <algorithm>

#include "src/graph/topo.h"
#include "src/support/contracts.h"

namespace sdaf {

namespace {

// Cooper–Harvey–Kennedy. On a DAG a single pass in topological order
// converges (every predecessor is finalized before its successors).
std::vector<NodeId> dominators_impl(const StreamGraph& g, NodeId root,
                                    bool reversed) {
  const auto order_opt = topo_order(g);
  SDAF_EXPECTS(order_opt.has_value());
  std::vector<NodeId> order = *order_opt;
  if (reversed) std::reverse(order.begin(), order.end());

  std::vector<std::uint32_t> pos(g.node_count(), 0);
  for (std::uint32_t i = 0; i < order.size(); ++i) pos[order[i]] = i;

  std::vector<NodeId> idom(g.node_count(), kNoNode);
  idom[root] = root;

  auto intersect = [&](NodeId a, NodeId b) {
    while (a != b) {
      while (pos[a] > pos[b]) a = idom[a];
      while (pos[b] > pos[a]) b = idom[b];
    }
    return a;
  };

  for (const NodeId v : order) {
    if (v == root) continue;
    NodeId new_idom = kNoNode;
    const auto preds = reversed ? g.out_edges(v) : g.in_edges(v);
    for (const EdgeId e : preds) {
      const NodeId p = reversed ? g.edge(e).to : g.edge(e).from;
      if (idom[p] == kNoNode) continue;  // unreachable predecessor
      new_idom = (new_idom == kNoNode) ? p : intersect(new_idom, p);
    }
    idom[v] = new_idom;
  }
  return idom;
}

}  // namespace

std::vector<NodeId> immediate_dominators(const StreamGraph& g, NodeId root) {
  SDAF_EXPECTS(root < g.node_count());
  return dominators_impl(g, root, /*reversed=*/false);
}

std::vector<NodeId> immediate_postdominators(const StreamGraph& g,
                                             NodeId exit) {
  SDAF_EXPECTS(exit < g.node_count());
  return dominators_impl(g, exit, /*reversed=*/true);
}

bool dominates(const std::vector<NodeId>& idom, NodeId root, NodeId a,
               NodeId b) {
  SDAF_EXPECTS(b < idom.size());
  if (idom[b] == kNoNode) return false;  // b unreachable
  NodeId cur = b;
  for (;;) {
    if (cur == a) return true;
    if (cur == root) return false;
    cur = idom[cur];
    SDAF_ASSERT(cur != kNoNode);
  }
}

}  // namespace sdaf
