// Structural validation of streaming topologies: the model requires a
// weakly-connected DAG; the SP / CS4 analyses additionally require a unique
// source and a unique sink.
#pragma once

#include <string>
#include <vector>

#include "src/graph/stream_graph.h"

namespace sdaf {

struct ValidationReport {
  bool acyclic = false;
  bool weakly_connected = false;
  bool single_source = false;
  bool single_sink = false;
  std::vector<std::string> problems;

  [[nodiscard]] bool valid_dag() const { return acyclic && weakly_connected; }
  [[nodiscard]] bool two_terminal() const {
    return valid_dag() && single_source && single_sink;
  }
};

[[nodiscard]] ValidationReport validate(const StreamGraph& g);

[[nodiscard]] bool is_acyclic(const StreamGraph& g);
[[nodiscard]] bool is_weakly_connected(const StreamGraph& g);

}  // namespace sdaf
