// Text serialization of topologies (a tiny line-oriented format used by the
// test corpus and the CLI examples) and Graphviz DOT export for inspecting
// graphs and computed dummy intervals.
#pragma once

#include <iosfwd>
#include <string>

#include "src/graph/stream_graph.h"

namespace sdaf {

class IntervalMap;  // defined in src/intervals/interval_map.h

// Format:
//   # comment
//   node <name>
//   edge <from-name> <to-name> <buffer>
// Node order = declaration order; edge order = declaration order.
[[nodiscard]] std::string to_text(const StreamGraph& g);
[[nodiscard]] StreamGraph from_text(const std::string& text);

// DOT export; when `intervals` is non-null each edge is annotated
// "buffer / interval".
[[nodiscard]] std::string to_dot(const StreamGraph& g,
                                 const IntervalMap* intervals = nullptr);

}  // namespace sdaf
