// Topological ordering and DAG path DP (shortest/longest source-to-node
// distances), used throughout the interval algorithms and validation.
#pragma once

#include <optional>
#include <vector>

#include "src/graph/stream_graph.h"

namespace sdaf {

// Kahn topological sort. Empty optional iff the graph has a directed cycle.
[[nodiscard]] std::optional<std::vector<NodeId>> topo_order(
    const StreamGraph& g);

// Shortest directed-path distance from `from` to every node, with edge
// weights = buffer sizes. Unreachable nodes get -1. Requires acyclic graph.
[[nodiscard]] std::vector<std::int64_t> shortest_buffer_dist(
    const StreamGraph& g, NodeId from);

// Longest directed path from `from` to every node counted in hops
// (edge count). Unreachable nodes get -1. Requires acyclic graph.
[[nodiscard]] std::vector<std::int64_t> longest_hop_dist(const StreamGraph& g,
                                                         NodeId from);

// Nodes reachable from `from` by directed paths (including `from`).
[[nodiscard]] std::vector<bool> reachable_from(const StreamGraph& g,
                                               NodeId from);

}  // namespace sdaf
