#include "src/graph/io.h"

#include <map>
#include <sstream>

#include "src/intervals/interval_map.h"
#include "src/support/contracts.h"

namespace sdaf {

std::string to_text(const StreamGraph& g) {
  std::ostringstream os;
  for (NodeId n = 0; n < g.node_count(); ++n)
    os << "node " << g.node_name(n) << "\n";
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    const auto& ed = g.edge(e);
    os << "edge " << g.node_name(ed.from) << " " << g.node_name(ed.to) << " "
       << ed.buffer << "\n";
  }
  return os.str();
}

StreamGraph from_text(const std::string& text) {
  StreamGraph g;
  std::map<std::string, NodeId> by_name;
  std::istringstream is(text);
  std::string line;
  int lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    std::istringstream ls(line);
    std::string kw;
    if (!(ls >> kw) || kw[0] == '#') continue;
    if (kw == "node") {
      std::string name;
      SDAF_EXPECTS(static_cast<bool>(ls >> name));
      SDAF_EXPECTS(!by_name.contains(name));
      by_name[name] = g.add_node(name);
    } else if (kw == "edge") {
      std::string from, to;
      std::int64_t buffer = 0;
      SDAF_EXPECTS(static_cast<bool>(ls >> from >> to >> buffer));
      SDAF_EXPECTS(by_name.contains(from));
      SDAF_EXPECTS(by_name.contains(to));
      g.add_edge(by_name[from], by_name[to], buffer);
    } else {
      SDAF_EXPECTS(false && "unknown keyword in graph text");
    }
  }
  return g;
}

std::string to_dot(const StreamGraph& g, const IntervalMap* intervals) {
  std::ostringstream os;
  os << "digraph sdaf {\n  rankdir=TB;\n";
  for (NodeId n = 0; n < g.node_count(); ++n)
    os << "  n" << n << " [label=\"" << g.node_name(n) << "\"];\n";
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    const auto& ed = g.edge(e);
    os << "  n" << ed.from << " -> n" << ed.to << " [label=\"" << ed.buffer;
    if (intervals != nullptr) os << " / " << (*intervals)[e].to_string();
    os << "\"];\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace sdaf
