#include "src/spdag/sp_builder.h"

#include "src/support/contracts.h"

namespace sdaf {

SpSpec SpSpec::edge(std::int64_t buffer) {
  SDAF_EXPECTS(buffer >= 1);
  SpSpec s;
  s.kind_ = Kind::Edge;
  s.buffer_ = buffer;
  return s;
}

SpSpec SpSpec::series(std::vector<SpSpec> children) {
  SDAF_EXPECTS(!children.empty());
  if (children.size() == 1) return std::move(children.front());
  SpSpec s;
  s.kind_ = Kind::Series;
  s.children_ = std::move(children);
  return s;
}

SpSpec SpSpec::parallel(std::vector<SpSpec> children) {
  SDAF_EXPECTS(!children.empty());
  if (children.size() == 1) return std::move(children.front());
  SpSpec s;
  s.kind_ = Kind::Parallel;
  s.children_ = std::move(children);
  return s;
}

std::size_t SpSpec::edge_count() const {
  if (kind_ == Kind::Edge) return 1;
  std::size_t total = 0;
  for (const auto& c : children_) total += c.edge_count();
  return total;
}

SpTree::Index build_sp_between(const SpSpec& spec, StreamGraph& g,
                               SpTree& tree, NodeId source, NodeId sink) {
  switch (spec.kind()) {
    case SpSpec::Kind::Edge: {
      const EdgeId e = g.add_edge(source, sink, spec.buffer());
      return tree.add_leaf(e, source, sink);
    }
    case SpSpec::Kind::Series: {
      const auto& kids = spec.children();
      // Interior junction nodes between consecutive children.
      std::vector<NodeId> cuts{source};
      for (std::size_t i = 0; i + 1 < kids.size(); ++i)
        cuts.push_back(g.add_node());
      cuts.push_back(sink);
      SpTree::Index acc =
          build_sp_between(kids[0], g, tree, cuts[0], cuts[1]);
      for (std::size_t i = 1; i < kids.size(); ++i) {
        const SpTree::Index next =
            build_sp_between(kids[i], g, tree, cuts[i], cuts[i + 1]);
        acc = tree.add_series(acc, next);
      }
      return acc;
    }
    case SpSpec::Kind::Parallel: {
      const auto& kids = spec.children();
      SpTree::Index acc = build_sp_between(kids[0], g, tree, source, sink);
      for (std::size_t i = 1; i < kids.size(); ++i) {
        const SpTree::Index next =
            build_sp_between(kids[i], g, tree, source, sink);
        acc = tree.add_parallel(acc, next);
      }
      return acc;
    }
  }
  SDAF_ASSERT(false);
  return -1;
}

BuiltSp build_sp(const SpSpec& spec) {
  BuiltSp out;
  const NodeId source = out.graph.add_node("src");
  const NodeId sink = out.graph.add_node("snk");
  const SpTree::Index root =
      build_sp_between(spec, out.graph, out.tree, source, sink);
  out.tree.set_root(root);
  out.tree.check_consistency(out.graph);
  return out;
}

}  // namespace sdaf
