#include "src/spdag/recognizer.h"

#include <unordered_map>

#include "src/graph/validate.h"
#include "src/support/contracts.h"

namespace sdaf {

namespace {

// Dynamic multigraph of super-edges with lazy deletion; each live super-edge
// carries its SP decomposition tree.
class Reducer {
 public:
  Reducer(const StreamGraph& g, NodeId source, NodeId sink)
      : g_(g),
        source_(source),
        sink_(sink),
        in_list_(g.node_count()),
        out_list_(g.node_count()),
        live_in_(g.node_count(), 0),
        live_out_(g.node_count(), 0) {}

  SpReduction run() {
    for (EdgeId e = 0; e < g_.edge_count(); ++e) {
      const auto& ed = g_.edge(e);
      insert(ed.from, ed.to, out_.tree.add_leaf(e, ed.from, ed.to));
    }
    for (NodeId v = 0; v < g_.node_count(); ++v) worklist_.push_back(v);

    while (!worklist_.empty()) {
      const NodeId v = worklist_.back();
      worklist_.pop_back();
      try_series(v);
    }

    for (const auto& se : edges_)
      if (se.alive)
        out_.remainder.push_back(SuperEdge{se.from, se.to, se.tree});
    return std::move(out_);
  }

 private:
  struct SE {
    NodeId from;
    NodeId to;
    SpTree::Index tree;
    bool alive;
  };

  static std::uint64_t pair_key(NodeId a, NodeId b) {
    return (static_cast<std::uint64_t>(a) << 32) | b;
  }

  void insert(NodeId from, NodeId to, SpTree::Index tree) {
    const auto key = pair_key(from, to);
    if (const auto it = by_pair_.find(key); it != by_pair_.end()) {
      SE& existing = edges_[it->second];
      SDAF_ASSERT(existing.alive);
      existing.tree = out_.tree.add_parallel(existing.tree, tree);
      // Degrees unchanged; a parallel merge can still enable series
      // reductions at the endpoints (their live degree dropped when the
      // series reduction that produced `tree` retired its edges).
    } else {
      const auto idx = static_cast<std::uint32_t>(edges_.size());
      edges_.push_back(SE{from, to, tree, true});
      by_pair_.emplace(key, idx);
      out_list_[from].push_back(idx);
      in_list_[to].push_back(idx);
      ++live_out_[from];
      ++live_in_[to];
    }
    worklist_.push_back(from);
    worklist_.push_back(to);
  }

  void retire(std::uint32_t idx) {
    SE& se = edges_[idx];
    SDAF_ASSERT(se.alive);
    se.alive = false;
    --live_out_[se.from];
    --live_in_[se.to];
    const auto it = by_pair_.find(pair_key(se.from, se.to));
    if (it != by_pair_.end() && it->second == idx) by_pair_.erase(it);
  }

  // Returns the unique live edge in `list`, pruning dead entries.
  std::uint32_t sole_live(std::vector<std::uint32_t>& list) {
    std::uint32_t found = static_cast<std::uint32_t>(-1);
    std::size_t w = 0;
    for (const std::uint32_t idx : list) {
      if (!edges_[idx].alive) continue;
      list[w++] = idx;
      found = idx;
    }
    list.resize(w);
    SDAF_ASSERT(w == 1);
    return found;
  }

  void try_series(NodeId v) {
    if (v == source_ || v == sink_) return;
    if (live_in_[v] != 1 || live_out_[v] != 1) return;
    const std::uint32_t a = sole_live(in_list_[v]);
    const std::uint32_t b = sole_live(out_list_[v]);
    const NodeId u = edges_[a].from;
    const NodeId w = edges_[b].to;
    SDAF_ASSERT(u != w);  // u -> v -> u would be a directed cycle
    const SpTree::Index merged =
        out_.tree.add_series(edges_[a].tree, edges_[b].tree);
    retire(a);
    retire(b);
    insert(u, w, merged);
  }

  const StreamGraph& g_;
  NodeId source_;
  NodeId sink_;
  std::vector<SE> edges_;
  std::unordered_map<std::uint64_t, std::uint32_t> by_pair_;
  std::vector<std::vector<std::uint32_t>> in_list_;
  std::vector<std::vector<std::uint32_t>> out_list_;
  std::vector<std::size_t> live_in_;
  std::vector<std::size_t> live_out_;
  std::vector<NodeId> worklist_;
  SpReduction out_;
};

}  // namespace

SpReduction reduce_sp(const StreamGraph& g, NodeId source, NodeId sink) {
  SDAF_EXPECTS(source < g.node_count());
  SDAF_EXPECTS(sink < g.node_count());
  SDAF_EXPECTS(source != sink);
  SDAF_EXPECTS(g.edge_count() > 0);
  return Reducer(g, source, sink).run();
}

SpRecognition recognize_sp(const StreamGraph& g) {
  SpRecognition out;
  const auto report = validate(g);
  if (!report.two_terminal()) {
    out.reason = "not a two-terminal DAG:";
    for (const auto& p : report.problems) out.reason += " " + p + ";";
    return out;
  }
  SpReduction red = reduce_sp(g, g.unique_source(), g.unique_sink());
  if (red.remainder.size() == 1) {
    const auto& se = red.remainder.front();
    SDAF_ASSERT(se.from == g.unique_source() && se.to == g.unique_sink());
    out.is_sp = true;
    out.tree = std::move(red.tree);
    out.tree.set_root(se.tree);
    out.tree.check_consistency(g);
  } else {
    out.reason = "irreducible remainder with " +
                 std::to_string(red.remainder.size()) +
                 " super-edges (graph is not series-parallel)";
  }
  return out;
}

}  // namespace sdaf
