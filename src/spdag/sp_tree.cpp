#include "src/spdag/sp_tree.h"

#include <algorithm>

#include "src/support/contracts.h"

namespace sdaf {

SpTree::Index SpTree::add_leaf(EdgeId edge, NodeId from, NodeId to) {
  nodes_.push_back(SpNode{SpKind::Leaf, edge, -1, -1, from, to});
  return static_cast<Index>(nodes_.size() - 1);
}

SpTree::Index SpTree::add_series(Index left, Index right) {
  const SpNode& l = node(left);
  const SpNode& r = node(right);
  SDAF_EXPECTS(l.sink == r.source);
  SDAF_EXPECTS(l.source != r.sink);  // would form a directed cycle
  nodes_.push_back(
      SpNode{SpKind::Series, kNoEdge, left, right, l.source, r.sink});
  return static_cast<Index>(nodes_.size() - 1);
}

SpTree::Index SpTree::add_parallel(Index left, Index right) {
  const SpNode& l = node(left);
  const SpNode& r = node(right);
  SDAF_EXPECTS(l.source == r.source && l.sink == r.sink);
  nodes_.push_back(
      SpNode{SpKind::Parallel, kNoEdge, left, right, l.source, l.sink});
  return static_cast<Index>(nodes_.size() - 1);
}

void SpTree::set_root(Index r) {
  SDAF_EXPECTS(r >= 0 && static_cast<std::size_t>(r) < nodes_.size());
  root_ = r;
}

SpTree::Index SpTree::root() const {
  SDAF_EXPECTS(root_ >= 0);
  return root_;
}

const SpNode& SpTree::node(Index i) const {
  SDAF_EXPECTS(i >= 0 && static_cast<std::size_t>(i) < nodes_.size());
  return nodes_[i];
}

std::vector<SpTree::Index> SpTree::parents() const {
  std::vector<Index> parent(nodes_.size(), -1);
  for (Index i = 0; i < static_cast<Index>(nodes_.size()); ++i) {
    const SpNode& n = nodes_[i];
    if (n.kind == SpKind::Leaf) continue;
    SDAF_ASSERT(n.left < i && n.right < i);  // children-first construction
    parent[n.left] = i;
    parent[n.right] = i;
  }
  return parent;
}

std::vector<SpTree::Index> SpTree::leaves_under(Index subtree) const {
  std::vector<Index> result;
  std::vector<Index> stack{subtree};
  while (!stack.empty()) {
    const Index i = stack.back();
    stack.pop_back();
    const SpNode& n = node(i);
    if (n.kind == SpKind::Leaf) {
      result.push_back(i);
    } else {
      stack.push_back(n.right);
      stack.push_back(n.left);
    }
  }
  return result;
}

void SpTree::check_consistency(const StreamGraph& g) const {
  SDAF_EXPECTS(has_root());
  std::vector<bool> edge_seen(g.edge_count(), false);
  for (const Index li : leaves_under(root())) {
    const SpNode& n = node(li);
    SDAF_ASSERT(n.edge < g.edge_count());
    SDAF_ASSERT(!edge_seen[n.edge]);
    edge_seen[n.edge] = true;
    SDAF_ASSERT(g.edge(n.edge).from == n.source);
    SDAF_ASSERT(g.edge(n.edge).to == n.sink);
  }
  SDAF_ASSERT(std::all_of(edge_seen.begin(), edge_seen.end(),
                          [](bool b) { return b; }));
  // Terminal composition rules re-checked bottom-up.
  for (Index i = 0; i < static_cast<Index>(nodes_.size()); ++i) {
    const SpNode& n = nodes_[i];
    if (n.kind == SpKind::Series) {
      SDAF_ASSERT(node(n.left).sink == node(n.right).source);
      SDAF_ASSERT(node(n.left).source == n.source);
      SDAF_ASSERT(node(n.right).sink == n.sink);
    } else if (n.kind == SpKind::Parallel) {
      SDAF_ASSERT(node(n.left).source == n.source &&
                  node(n.right).source == n.source);
      SDAF_ASSERT(node(n.left).sink == n.sink && node(n.right).sink == n.sink);
    }
  }
}

}  // namespace sdaf
