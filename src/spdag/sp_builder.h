// Programmatic construction of SP-DAGs from recursive specifications,
// producing the graph and its (known-correct) decomposition tree together.
// Used by the workload generators and by tests that need a trusted tree to
// compare the recognizer against.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "src/graph/stream_graph.h"
#include "src/spdag/sp_tree.h"

namespace sdaf {

// A value-semantic recipe for an SP-DAG: a single edge, a series chain, or a
// parallel bundle (each with >= 1 children; chains/bundles of one child
// collapse to the child).
class SpSpec {
 public:
  static SpSpec edge(std::int64_t buffer);
  static SpSpec series(std::vector<SpSpec> children);
  static SpSpec parallel(std::vector<SpSpec> children);

  enum class Kind : std::uint8_t { Edge, Series, Parallel };
  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] std::int64_t buffer() const { return buffer_; }
  [[nodiscard]] const std::vector<SpSpec>& children() const { return children_; }

  // Number of graph edges this spec will materialize.
  [[nodiscard]] std::size_t edge_count() const;

 private:
  SpSpec() = default;
  Kind kind_ = Kind::Edge;
  std::int64_t buffer_ = 1;
  std::vector<SpSpec> children_;
};

struct BuiltSp {
  StreamGraph graph;
  SpTree tree;
};

// Materializes the spec into a fresh two-terminal graph + tree.
[[nodiscard]] BuiltSp build_sp(const SpSpec& spec);

// Materializes the spec *into* an existing graph between the given terminals
// (used to embed SP chord graphs into ladders). Returns the subtree index of
// the spec's root within `tree`.
SpTree::Index build_sp_between(const SpSpec& spec, StreamGraph& g,
                               SpTree& tree, NodeId source, NodeId sink);

}  // namespace sdaf
