#include "src/spdag/metrics.h"

#include <algorithm>

#include "src/support/contracts.h"

namespace sdaf {

SpMetrics compute_sp_metrics(const SpTree& tree, const StreamGraph& g) {
  SpMetrics m;
  m.shortest_buffer.resize(tree.size());
  m.longest_hops.resize(tree.size());
  // Ascending index order is a post-order (children-first construction).
  for (SpTree::Index i = 0; i < static_cast<SpTree::Index>(tree.size()); ++i) {
    const SpNode& n = tree.node(i);
    switch (n.kind) {
      case SpKind::Leaf:
        m.shortest_buffer[i] = g.edge(n.edge).buffer;
        m.longest_hops[i] = 1;
        break;
      case SpKind::Series:
        m.shortest_buffer[i] =
            m.shortest_buffer[n.left] + m.shortest_buffer[n.right];
        m.longest_hops[i] = m.longest_hops[n.left] + m.longest_hops[n.right];
        break;
      case SpKind::Parallel:
        m.shortest_buffer[i] =
            std::min(m.shortest_buffer[n.left], m.shortest_buffer[n.right]);
        m.longest_hops[i] =
            std::max(m.longest_hops[n.left], m.longest_hops[n.right]);
        break;
    }
  }
  return m;
}

std::int64_t longest_hops_through(const SpTree& tree, const SpMetrics& metrics,
                                  const std::vector<SpTree::Index>& parents,
                                  SpTree::Index leaf, SpTree::Index subtree) {
  SDAF_EXPECTS(tree.node(leaf).kind == SpKind::Leaf);
  std::int64_t hops = 1;
  SpTree::Index cur = leaf;
  while (cur != subtree) {
    const SpTree::Index p = parents[cur];
    SDAF_EXPECTS(p >= 0);  // `leaf` must lie under `subtree`
    const SpNode& pn = tree.node(p);
    if (pn.kind == SpKind::Series) {
      const SpTree::Index sibling = (pn.left == cur) ? pn.right : pn.left;
      // Any path through the leaf must cross the sibling component too;
      // extend with the sibling's own longest path.
      hops += metrics.longest_hops[sibling];
    }
    // Parallel parents leave the path through the leaf untouched.
    cur = p;
  }
  return hops;
}

}  // namespace sdaf
