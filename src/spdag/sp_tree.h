// Binary series-parallel decomposition trees (Section III). Leaves are
// single graph edges; internal nodes are the paper's composition operators
// Sc (series: sink of left merged with source of right) and Pc (parallel:
// terminals merged). The paper's "multi-edge" base case appears here as a
// Pc chain of single-edge leaves, which yields identical intervals.
//
// Tree nodes are created children-first, so ascending index order is a valid
// post-order; the interval algorithms rely on this.
#pragma once

#include <cstdint>
#include <vector>

#include "src/graph/stream_graph.h"

namespace sdaf {

enum class SpKind : std::uint8_t { Leaf, Series, Parallel };

struct SpNode {
  SpKind kind = SpKind::Leaf;
  EdgeId edge = kNoEdge;   // Leaf only
  std::int32_t left = -1;   // internal only
  std::int32_t right = -1;  // internal only
  NodeId source = kNoNode;  // component terminals in the underlying graph
  NodeId sink = kNoNode;
};

class SpTree {
 public:
  using Index = std::int32_t;

  [[nodiscard]] Index add_leaf(EdgeId edge, NodeId from, NodeId to);
  // Requires node(left).sink == node(right).source.
  [[nodiscard]] Index add_series(Index left, Index right);
  // Requires identical terminals on both children.
  [[nodiscard]] Index add_parallel(Index left, Index right);

  void set_root(Index r);
  [[nodiscard]] Index root() const;
  [[nodiscard]] bool has_root() const { return root_ >= 0; }
  [[nodiscard]] std::size_t size() const { return nodes_.size(); }
  [[nodiscard]] const SpNode& node(Index i) const;

  // parent[i] = index of i's parent, -1 for the root (and for nodes outside
  // the root's subtree).
  [[nodiscard]] std::vector<Index> parents() const;

  // Leaf indices (not edge ids) under `subtree`, in traversal order.
  [[nodiscard]] std::vector<Index> leaves_under(Index subtree) const;

  // Checks structural invariants against the graph: every edge is exactly
  // one leaf, terminals compose correctly. Contract-violates on failure.
  void check_consistency(const StreamGraph& g) const;

 private:
  std::vector<SpNode> nodes_;
  Index root_ = -1;
};

}  // namespace sdaf
