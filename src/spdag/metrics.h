// Per-component metrics over SP decomposition trees (Section IV):
//   L(H): length of a shortest source-to-sink directed path, with buffer
//         sizes as edge weights -- the quantity dummy intervals minimize;
//   h(H): hop count of a longest source-to-sink directed path -- the
//         divisor in Non-Propagation intervals.
// Both follow the paper's recurrences: L(Sc)=L1+L2, L(Pc)=min(L1,L2);
// h(Sc)=h1+h2, h(Pc)=max(h1,h2).
#pragma once

#include <cstdint>
#include <vector>

#include "src/graph/stream_graph.h"
#include "src/spdag/sp_tree.h"

namespace sdaf {

struct SpMetrics {
  // Indexed by SpTree node index; valid for every node in the tree (the
  // tree may hold a forest, e.g. the component trees of a ladder skeleton).
  std::vector<std::int64_t> shortest_buffer;  // L
  std::vector<std::int64_t> longest_hops;     // h
};

[[nodiscard]] SpMetrics compute_sp_metrics(const SpTree& tree,
                                           const StreamGraph& g);

// h(H, e): hop count of a longest source-to-sink path of component `subtree`
// passing through leaf `leaf` (paper step 4 of the Non-Propagation
// procedure). O(depth) via a leaf-to-root walk.
[[nodiscard]] std::int64_t longest_hops_through(
    const SpTree& tree, const SpMetrics& metrics,
    const std::vector<SpTree::Index>& parents, SpTree::Index leaf,
    SpTree::Index subtree);

}  // namespace sdaf
