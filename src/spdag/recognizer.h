// Reduction-based recognition of two-terminal series-parallel DAGs, after
// Valdes, Tarjan and Lawler [16]: repeatedly (a) series-contract interior
// nodes with in-degree 1 and out-degree 1 and (b) merge parallel edges. A
// two-terminal multidigraph is SP iff this confluent rewriting terminates at
// a single edge.
//
// The engine is exposed in full (not just the yes/no answer) because the
// irreducible remainder is exactly the *skeleton* that the CS4/SP-ladder
// analysis of Sections V-VI operates on: every remainder super-edge carries
// the decomposition tree of the maximal SP component it contracted.
#pragma once

#include <string>
#include <vector>

#include "src/graph/stream_graph.h"
#include "src/spdag/sp_tree.h"

namespace sdaf {

struct SuperEdge {
  NodeId from = kNoNode;
  NodeId to = kNoNode;
  SpTree::Index tree = -1;  // decomposition tree of the contracted component
};

struct SpReduction {
  SpTree tree;  // owns all component trees built during reduction
  std::vector<SuperEdge> remainder;  // irreducible super-edges, if > 1
};

// Runs the rewriting to fixpoint. `source`/`sink` are the protected
// terminals (never series-contracted).
[[nodiscard]] SpReduction reduce_sp(const StreamGraph& g, NodeId source,
                                    NodeId sink);

struct SpRecognition {
  bool is_sp = false;
  SpTree tree;          // root set iff is_sp
  std::string reason;   // human-readable rejection note
};

// Recognizes a two-terminal SP-DAG (terminals = unique source/sink of g).
// Precondition: g is a weakly-connected DAG with one source and one sink.
[[nodiscard]] SpRecognition recognize_sp(const StreamGraph& g);

}  // namespace sdaf
