// sdaf::ckpt -- asynchronous barrier snapshots for long-lived streams.
//
// The mechanism is Chandy-Lamport specialized to the sequence-numbered
// dataflow of the paper's model (after Carbone et al., "Lightweight
// Asynchronous Snapshots for Distributed Dataflows"): the stream picks a
// global barrier sequence number S, injects a Marker(S) message into every
// open input port (and into lagging ports exactly when their next push
// would reach S), and lets the markers ride the ordinary channels through
// exec::FiringCore like EOS does. The invariant that makes alignment
// automatic is
//
//   on every channel, a Marker(S) precedes every message with seq >= S
//   and follows every message with seq < S,
//
// which holds at the injection points by choice of S (S = max over ALL
// ports -- open and closed -- of items already pushed: a closed port
// forwards no marker, so everything it ever contributed must sit below the
// cut for downstream alignment to hold) and is preserved hop over hop because a
// node checkpoints -- and forwards its own markers -- exactly between
// processing seq S-1 and seq S. Consequently, when a marker is at the
// minimum of a node's input heads, *every* input head is Marker(S) or EOS
// (an EOS head means that upstream finished before the barrier began and
// its final counters are already latched in the finished set). The node
// pops the markers, reports its NodeCut, and queues Marker(S) on every
// output after its pre-S emissions: a consistent cut with provably empty
// interior channels (everything below S has been consumed, everything at
// or above S is behind the marker) -- no stop-the-world, no channel
// segment replay.
//
// Markers are occupancy-neutral in every ring (they never count against
// the certified logical capacity and ride one extra physical segment), so
// the paper's buffer-size semantics -- and the deadlock-avoidance
// certification built on them -- are unaffected by an in-progress
// snapshot; schedulers still see markers as pending work (physical
// emptiness), so quiescence is never declared across an un-consumed
// marker.
//
// The serialized format (versioned, see serialize/deserialize) reuses the
// net frame codec: little-endian fixed-width fields and the frame Value
// encoding for tap residue payloads, so a snapshot travels the wire as-is
// in a Snapshot/Restore frame pair.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "src/runtime/message.h"

namespace sdaf::ckpt {

inline constexpr std::uint32_t kSnapshotVersion = 1;

// Per-node state at the cut. `done` nodes had flooded EOS before the
// barrier began; their counters are final and a restore re-creates them
// terminal (their outgoing channels are preloaded with EOS).
struct NodeCut {
  std::uint8_t done = 0;
  std::uint64_t fires = 0;
  std::uint64_t sink_data = 0;
  std::uint64_t source_seq = 0;           // next self-generated/accepted seq
  std::vector<std::int64_t> last_sent;    // wrapper dummy schedule per slot
  std::string kernel_state;               // opaque Kernel::save_state blob
};

// Per-edge cumulative traffic at the cut, latched producer-side at the
// marker crossing (BoundedChannel::try_push_marker / SimChannel): the
// totals a restored run resumes from so final RunReports match an
// uninterrupted run's.
struct EdgeCut {
  std::uint64_t data_pushed = 0;
  std::uint64_t dummies_pushed = 0;
};

// One undelivered egress item parked at the cut (popped from the tap ring
// before the tap's marker but not yet handed to the client). Restore
// preloads these; a client replays its own pushes from S and dedupes
// delivered items by seq, which together give exactly-once output.
struct TapItem {
  std::uint64_t seq = 0;
  runtime::Value value;
};

struct TapCut {
  std::uint8_t ended = 0;  // tap consumed EOS before the cut
  std::vector<TapItem> residue;
};

struct PortCut {
  std::uint8_t closed = 0;
  // The port's replay point: the caller re-pushes from here on. == S for a
  // port that reached the barrier; its final accepted count for one that
  // was closed at (or cut short of) the barrier.
  std::uint64_t next_seq = 0;
};

// A complete, self-describing checkpoint of one open stream. `signature`
// pins the compiled topology + avoidance mode (core::CompileCache
// signature plus a mode tag): restore refuses a snapshot whose signature
// does not match the spec it is asked to rehydrate into. `epoch` counts
// logical streams over one compiled topology -- a restored stream runs at
// epoch + 1.
struct StreamSnapshot {
  std::uint32_t version = kSnapshotVersion;
  std::string signature;
  std::uint64_t epoch = 0;
  std::uint64_t barrier_seq = 0;
  std::uint64_t sweeps = 0;  // Sim backend: cumulative sweeps at the cut
  std::vector<NodeCut> nodes;  // by NodeId
  std::vector<EdgeCut> edges;  // by EdgeId
  std::vector<PortCut> ports;  // by input port index
  std::vector<TapCut> taps;    // by output port index
};

// Versioned wire/file form (reuses the net frame primitives; values are
// encoded with the frame Value codec). deserialize returns nullopt on any
// malformation or unknown version -- never throws, never over-reads.
[[nodiscard]] std::vector<std::uint8_t> serialize(const StreamSnapshot& s);
[[nodiscard]] std::optional<StreamSnapshot> deserialize(
    const std::uint8_t* data, std::size_t size);
[[nodiscard]] std::optional<StreamSnapshot> deserialize(
    const std::vector<std::uint8_t>& bytes);

// Engine-side coordination state for barriers: tracks which nodes have
// checkpointed the pending barrier and which nodes have finished (flooded
// EOS) -- the finished set is maintained continuously, barrier or not, so
// a snapshot begun after part of the graph drained still completes.
//
// Threading: node_checkpoint/node_finished are called from whatever thread
// owns the node's FiringCore (sim sweep, node thread, pool worker); the
// initiator polls from the stream's caller thread. One mutex serializes
// everything -- these are per-barrier events, not data-plane traffic.
class SnapshotPlane {
 public:
  // Engine build time, before any node steps.
  void attach(std::size_t num_nodes);

  // Starts a barrier at S. Returns false if one is already pending
  // (back-to-back snapshots serialize: a new barrier may only begin after
  // the previous one's markers have fully drained).
  [[nodiscard]] bool begin(std::uint64_t barrier_seq);

  [[nodiscard]] bool pending() const;
  [[nodiscard]] std::uint64_t barrier_seq() const;

  // FiringCore hooks.
  void node_checkpoint(std::size_t node, NodeCut cut);
  void node_finished(std::size_t node, NodeCut cut);

  // True when every node has either checkpointed the pending barrier or
  // finished. (Tap markers are tracked by the stream core -- it is the
  // sole tap consumer.)
  [[nodiscard]] bool nodes_complete() const;

  [[nodiscard]] bool is_finished(std::size_t node) const;

  // After nodes_complete(): the per-node cuts (finished nodes reported
  // with done = 1 and their final counters) and clears the pending
  // barrier. Precondition: nodes_complete().
  [[nodiscard]] std::vector<NodeCut> take_cuts();

  // Abandons a pending barrier without collecting (stream teardown only:
  // in-flight markers die with the channels).
  void abort_barrier();

 private:
  mutable std::mutex mu_;
  std::size_t num_nodes_ = 0;
  bool pending_ = false;
  std::uint64_t barrier_ = 0;
  std::vector<std::uint8_t> have_;
  std::size_t have_count_ = 0;
  std::vector<NodeCut> cuts_;
  std::vector<std::uint8_t> finished_;
  std::vector<NodeCut> final_cuts_;
};

}  // namespace sdaf::ckpt
