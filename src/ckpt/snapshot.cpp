#include "src/ckpt/snapshot.h"

#include <algorithm>

#include "src/net/frame.h"
#include "src/support/contracts.h"

namespace sdaf::ckpt {

namespace {
// Everything length-prefixed in the snapshot is bounded, so a corrupt or
// adversarial blob cannot make deserialize allocate unboundedly. Streams
// are compiled graphs (node/edge counts are small) and tap residue is
// bounded by the egress ring capacity.
constexpr std::size_t kMaxVec = 1u << 20;
}  // namespace

std::vector<std::uint8_t> serialize(const StreamSnapshot& s) {
  net::Writer w;
  w.u32(s.version);
  w.str(s.signature);
  w.u64(s.epoch);
  w.u64(s.barrier_seq);
  w.u64(s.sweeps);
  w.u32(static_cast<std::uint32_t>(s.nodes.size()));
  for (const NodeCut& n : s.nodes) {
    w.u8(n.done);
    w.u64(n.fires);
    w.u64(n.sink_data);
    w.u64(n.source_seq);
    w.u32(static_cast<std::uint32_t>(n.last_sent.size()));
    for (const std::int64_t v : n.last_sent) w.i64(v);
    w.str(n.kernel_state);
  }
  w.u32(static_cast<std::uint32_t>(s.edges.size()));
  for (const EdgeCut& e : s.edges) {
    w.u64(e.data_pushed);
    w.u64(e.dummies_pushed);
  }
  w.u32(static_cast<std::uint32_t>(s.ports.size()));
  for (const PortCut& p : s.ports) {
    w.u8(p.closed);
    w.u64(p.next_seq);
  }
  w.u32(static_cast<std::uint32_t>(s.taps.size()));
  for (const TapCut& t : s.taps) {
    w.u8(t.ended);
    w.u32(static_cast<std::uint32_t>(t.residue.size()));
    for (const TapItem& item : t.residue) {
      w.u64(item.seq);
      w.value(item.value);
    }
  }
  return w.take();
}

std::optional<StreamSnapshot> deserialize(const std::uint8_t* data,
                                          std::size_t size) {
  net::Reader r(data, size);
  StreamSnapshot s;
  s.version = r.u32();
  if (!r.ok() || s.version != kSnapshotVersion) return std::nullopt;
  s.signature = r.str();
  s.epoch = r.u64();
  s.barrier_seq = r.u64();
  s.sweeps = r.u64();
  const std::uint32_t nnodes = r.u32();
  if (!r.ok() || nnodes > kMaxVec) return std::nullopt;
  s.nodes.resize(nnodes);
  for (NodeCut& n : s.nodes) {
    n.done = r.u8();
    n.fires = r.u64();
    n.sink_data = r.u64();
    n.source_seq = r.u64();
    const std::uint32_t nslots = r.u32();
    if (!r.ok() || nslots > kMaxVec) return std::nullopt;
    n.last_sent.resize(nslots);
    for (std::int64_t& v : n.last_sent) v = r.i64();
    n.kernel_state = r.str();
  }
  const std::uint32_t nedges = r.u32();
  if (!r.ok() || nedges > kMaxVec) return std::nullopt;
  s.edges.resize(nedges);
  for (EdgeCut& e : s.edges) {
    e.data_pushed = r.u64();
    e.dummies_pushed = r.u64();
  }
  const std::uint32_t nports = r.u32();
  if (!r.ok() || nports > kMaxVec) return std::nullopt;
  s.ports.resize(nports);
  for (PortCut& p : s.ports) {
    p.closed = r.u8();
    p.next_seq = r.u64();
  }
  const std::uint32_t ntaps = r.u32();
  if (!r.ok() || ntaps > kMaxVec) return std::nullopt;
  s.taps.resize(ntaps);
  for (TapCut& t : s.taps) {
    t.ended = r.u8();
    const std::uint32_t nitems = r.u32();
    if (!r.ok() || nitems > kMaxVec) return std::nullopt;
    t.residue.resize(nitems);
    for (TapItem& item : t.residue) {
      item.seq = r.u64();
      item.value = r.value();
    }
  }
  if (!r.done()) return std::nullopt;
  return s;
}

std::optional<StreamSnapshot> deserialize(
    const std::vector<std::uint8_t>& bytes) {
  return deserialize(bytes.data(), bytes.size());
}

void SnapshotPlane::attach(std::size_t num_nodes) {
  std::lock_guard lock(mu_);
  num_nodes_ = num_nodes;
  pending_ = false;
  have_.assign(num_nodes, 0);
  have_count_ = 0;
  cuts_.assign(num_nodes, NodeCut{});
  finished_.assign(num_nodes, 0);
  final_cuts_.assign(num_nodes, NodeCut{});
}

bool SnapshotPlane::begin(std::uint64_t barrier_seq) {
  std::lock_guard lock(mu_);
  if (pending_) return false;
  pending_ = true;
  barrier_ = barrier_seq;
  std::fill(have_.begin(), have_.end(), 0);
  have_count_ = 0;
  return true;
}

bool SnapshotPlane::pending() const {
  std::lock_guard lock(mu_);
  return pending_;
}

std::uint64_t SnapshotPlane::barrier_seq() const {
  std::lock_guard lock(mu_);
  return barrier_;
}

void SnapshotPlane::node_checkpoint(std::size_t node, NodeCut cut) {
  std::lock_guard lock(mu_);
  SDAF_ASSERT(node < num_nodes_);
  // A checkpoint arriving after abort_barrier() is a stale marker still
  // draining through the graph (stream teardown): drop it.
  if (!pending_ || have_[node] != 0) return;
  have_[node] = 1;
  ++have_count_;
  cuts_[node] = std::move(cut);
}

void SnapshotPlane::node_finished(std::size_t node, NodeCut cut) {
  std::lock_guard lock(mu_);
  SDAF_ASSERT(node < num_nodes_);
  if (finished_[node] != 0) return;
  finished_[node] = 1;
  cut.done = 1;
  final_cuts_[node] = std::move(cut);
}

bool SnapshotPlane::nodes_complete() const {
  std::lock_guard lock(mu_);
  if (!pending_) return false;
  for (std::size_t n = 0; n < num_nodes_; ++n)
    if (have_[n] == 0 && finished_[n] == 0) return false;
  return true;
}

bool SnapshotPlane::is_finished(std::size_t node) const {
  std::lock_guard lock(mu_);
  return node < num_nodes_ && finished_[node] != 0;
}

std::vector<NodeCut> SnapshotPlane::take_cuts() {
  std::lock_guard lock(mu_);
  SDAF_ASSERT(pending_);
  std::vector<NodeCut> out(num_nodes_);
  for (std::size_t n = 0; n < num_nodes_; ++n) {
    // A node that checkpointed *and* finished during the same barrier
    // (it consumed its markers, then hit EOS) contributes its barrier
    // cut -- the finished counters equal it anyway, the cut is at S.
    if (have_[n] != 0)
      out[n] = cuts_[n];
    else
      out[n] = final_cuts_[n];
  }
  pending_ = false;
  return out;
}

void SnapshotPlane::abort_barrier() {
  std::lock_guard lock(mu_);
  pending_ = false;
}

}  // namespace sdaf::ckpt
