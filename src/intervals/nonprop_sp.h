// Dummy-interval computation for the *Non-Propagation Algorithm* on SP-DAGs
// (Section IV.B). Every node emits dummies on its own schedule and received
// dummies are never forwarded, so the interval divides a cycle's slack
// among the hops of the path carrying it:
//   [e] = min over cycles C containing e of L(C, e) / h(C, e),
// where h(C, e) is the hop count of the longest directed path on C through
// e. On an SP-DAG the minimum is realized at parallel compositions by
// pairing the longest through-path on e's side with the sibling's shortest
// buffer path, giving [e] = min over Pc ancestors P of
//   L(sibling(P)) / h(child-of-P containing e, e).
#pragma once

#include <vector>

#include "src/graph/stream_graph.h"
#include "src/intervals/interval_map.h"
#include "src/spdag/metrics.h"
#include "src/spdag/sp_tree.h"

namespace sdaf {

// Paper Section IV.B; O(|G|^2) worst case (leaf-to-root walk per edge),
// O(|G| log |G|) on balanced decompositions.
[[nodiscard]] IntervalMap nonprop_intervals_sp(const StreamGraph& g,
                                               const SpTree& tree);

// Folds the Non-Propagation constraints of cycles *internal* to the
// component rooted at `root` into `out`. Used per contracted skeleton
// component by the CS4 driver; external (ladder-level) cycles are handled
// by cs4/nonprop_ladder.
void nonprop_internal(const SpTree& tree, const SpMetrics& metrics,
                      const std::vector<SpTree::Index>& parents,
                      SpTree::Index root, IntervalMap& out);

}  // namespace sdaf
