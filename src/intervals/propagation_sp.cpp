#include "src/intervals/propagation_sp.h"

#include <vector>

#include "src/support/contracts.h"

namespace sdaf {

void propagation_setivals(const SpTree& tree, const SpMetrics& metrics,
                          SpTree::Index root, const Rational& v,
                          IntervalMap& out) {
  // Iterative SETIVALS. V is the tightest interval any cycle *external* to
  // the component imposes on edges leaving the component's source
  // (Claim IV.1).
  struct Item {
    SpTree::Index node;
    Rational v;
  };
  std::vector<Item> stack{{root, v}};
  while (!stack.empty()) {
    const Item item = stack.back();
    stack.pop_back();
    const SpNode& n = tree.node(item.node);
    switch (n.kind) {
      case SpKind::Leaf:
        // Base case: with binary trees a multi-edge is a Pc chain, so the
        // sibling-buffer minimum of the paper's base case has already been
        // folded into V by the Parallel branch below.
        out.set(n.edge, item.v);
        break;
      case SpKind::Parallel:
        // New cycles pair an X->Y path in one child with one in the other;
        // the tightest such constraint on a child's source-out edges is the
        // sibling's shortest buffer-weighted path.
        stack.push_back({n.left, min(item.v, Rational(metrics.shortest_buffer
                                                          [n.right]))});
        stack.push_back({n.right, min(item.v, Rational(metrics.shortest_buffer
                                                           [n.left]))});
        break;
      case SpKind::Series:
        // The junction is an articulation point: no cycle crosses it, so the
        // left child keeps V (shares the parent's source) and the right
        // child starts unconstrained.
        stack.push_back({n.left, item.v});
        stack.push_back({n.right, Rational::infinity()});
        break;
    }
  }
}

IntervalMap propagation_intervals_sp(const StreamGraph& g,
                                     const SpTree& tree) {
  const SpMetrics m = compute_sp_metrics(tree, g);
  IntervalMap ivals(g.edge_count());
  propagation_setivals(tree, m, tree.root(), Rational::infinity(), ivals);
  return ivals;
}

IntervalMap propagation_intervals_sp_naive(const StreamGraph& g,
                                           const SpTree& tree) {
  const SpMetrics m = compute_sp_metrics(tree, g);
  IntervalMap ivals(g.edge_count());

  // Post-order = ascending index order. Case 1 (multi-edge) and Case 2
  // (series: no new cycles) need no work with single-edge leaves; Case 3
  // re-scans each parallel component's edges out of its source.
  for (SpTree::Index i = 0; i < static_cast<SpTree::Index>(tree.size());
       ++i) {
    const SpNode& n = tree.node(i);
    if (n.kind != SpKind::Parallel) continue;
    const NodeId x = n.source;
    const auto update_side = [&](SpTree::Index side, std::int64_t sibling_l) {
      for (const SpTree::Index li : tree.leaves_under(side)) {
        const SpNode& leaf = tree.node(li);
        if (g.edge(leaf.edge).from == x)
          ivals.update_min(leaf.edge, Rational(sibling_l));
      }
    };
    update_side(n.left, m.shortest_buffer[n.right]);
    update_side(n.right, m.shortest_buffer[n.left]);
  }
  return ivals;
}

}  // namespace sdaf
