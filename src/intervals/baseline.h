// Exact dummy-interval computation by direct evaluation of the cycle
// minimizations of Section II.B, enumerating every undirected simple cycle.
// Worst-case exponential in |G| -- this is precisely the cost the paper's
// SP / CS4 algorithms avoid -- but it works on arbitrary DAGs and serves as
// (a) the ground truth the efficient algorithms are property-tested against
// and (b) the baseline in the scaling benchmarks.
//
// For cycles with a single source and sink (all cycles of CS4 graphs) the
// definitions are unambiguous. For multi-source cycles, which only arise
// outside CS4, we use the natural generalization: each edge's constraint
// comes from its maximal directed run R on the cycle, paired with the run
// leaving R's source on the opposite side.
#pragma once

#include <cstddef>

#include "src/graph/stream_graph.h"
#include "src/intervals/interval_map.h"

namespace sdaf {

inline constexpr std::size_t kDefaultCycleLimit = 1u << 22;

// Propagation Algorithm: [e] = min over cycles pairing e with a second
// out-edge of e's tail of the opposite run's buffer length.
[[nodiscard]] IntervalMap propagation_intervals_exact(
    const StreamGraph& g, std::size_t cycle_limit = kDefaultCycleLimit);

// Non-Propagation Algorithm: [e] = min over cycles through e of
// L(opposite run) / h(run containing e).
[[nodiscard]] IntervalMap nonprop_intervals_exact(
    const StreamGraph& g, std::size_t cycle_limit = kDefaultCycleLimit);

}  // namespace sdaf
