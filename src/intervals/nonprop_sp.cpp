#include "src/intervals/nonprop_sp.h"

#include "src/support/contracts.h"

namespace sdaf {

void nonprop_internal(const SpTree& tree, const SpMetrics& metrics,
                      const std::vector<SpTree::Index>& parents,
                      SpTree::Index root, IntervalMap& out) {
  for (const SpTree::Index leaf : tree.leaves_under(root)) {
    const EdgeId e = tree.node(leaf).edge;
    // Walk leaf -> root maintaining h(C, e) for the component C just left
    // behind: series siblings extend the through-path, parallel ancestors
    // contribute one cycle constraint each (paper Case 3).
    std::int64_t hops_through = 1;
    SpTree::Index cur = leaf;
    while (cur != root) {
      const SpTree::Index p = parents[cur];
      SDAF_ASSERT(p >= 0);
      const SpNode& pn = tree.node(p);
      const SpTree::Index sibling = (pn.left == cur) ? pn.right : pn.left;
      if (pn.kind == SpKind::Series) {
        hops_through += metrics.longest_hops[sibling];
      } else {
        SDAF_ASSERT(pn.kind == SpKind::Parallel);
        out.update_min(e, Rational(metrics.shortest_buffer[sibling]) /
                              Rational(hops_through));
      }
      cur = p;
    }
  }
}

IntervalMap nonprop_intervals_sp(const StreamGraph& g, const SpTree& tree) {
  const SpMetrics m = compute_sp_metrics(tree, g);
  const auto parents = tree.parents();
  IntervalMap ivals(g.edge_count());
  nonprop_internal(tree, m, parents, tree.root(), ivals);
  return ivals;
}

}  // namespace sdaf
