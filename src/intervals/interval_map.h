// Per-edge dummy intervals. The interval [e] of edge e is the largest number
// of consecutive sequence numbers its producer may filter on e before a
// dummy message must be sent (Section II.B). Infinity means e lies on no
// undirected cycle constraint and never needs dummies.
#pragma once

#include <string>
#include <vector>

#include "src/graph/stream_graph.h"
#include "src/support/rational.h"

namespace sdaf {

class IntervalMap {
 public:
  IntervalMap() = default;
  explicit IntervalMap(std::size_t edge_count)
      : intervals_(edge_count, Rational::infinity()) {}

  [[nodiscard]] std::size_t size() const { return intervals_.size(); }

  [[nodiscard]] const Rational& operator[](EdgeId e) const;

  void set(EdgeId e, Rational value);
  // [e] <- min([e], value): the only mutation the algorithms need.
  void update_min(EdgeId e, const Rational& value);

  [[nodiscard]] bool all_infinite() const;
  [[nodiscard]] std::size_t finite_count() const;

  // Human-readable edge-by-edge dump, for reports and test diagnostics.
  [[nodiscard]] std::string to_string(const StreamGraph& g) const;

  friend bool operator==(const IntervalMap& a, const IntervalMap& b) {
    return a.intervals_ == b.intervals_;
  }

 private:
  std::vector<Rational> intervals_;
};

}  // namespace sdaf
