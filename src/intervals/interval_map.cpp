#include "src/intervals/interval_map.h"

#include <sstream>

#include "src/support/contracts.h"

namespace sdaf {

const Rational& IntervalMap::operator[](EdgeId e) const {
  SDAF_EXPECTS(e < intervals_.size());
  return intervals_[e];
}

void IntervalMap::set(EdgeId e, Rational value) {
  SDAF_EXPECTS(e < intervals_.size());
  intervals_[e] = value;
}

void IntervalMap::update_min(EdgeId e, const Rational& value) {
  SDAF_EXPECTS(e < intervals_.size());
  intervals_[e] = min(intervals_[e], value);
}

bool IntervalMap::all_infinite() const { return finite_count() == 0; }

std::size_t IntervalMap::finite_count() const {
  std::size_t n = 0;
  for (const auto& r : intervals_)
    if (r.is_finite()) ++n;
  return n;
}

std::string IntervalMap::to_string(const StreamGraph& g) const {
  SDAF_EXPECTS(g.edge_count() == intervals_.size());
  std::ostringstream os;
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    const auto& ed = g.edge(e);
    os << g.node_name(ed.from) << " -> " << g.node_name(ed.to)
       << "  buffer=" << ed.buffer << "  interval=" << intervals_[e] << "\n";
  }
  return os.str();
}

}  // namespace sdaf
