#include "src/intervals/baseline.h"

#include "src/graph/cycles.h"
#include "src/support/contracts.h"

namespace sdaf {

namespace {

// Runs of one cycle, with run i paired against the run adjacent at its
// source. Runs alternate orientation around the cycle, so the run sharing
// run i's source is its cyclic neighbour on the source side.
struct PairedRuns {
  std::vector<DirectedRun> runs;
  std::vector<std::size_t> opposite;  // index of the run sourced at runs[i].source
};

PairedRuns paired_runs(const StreamGraph& g, const UCycle& cycle) {
  PairedRuns out;
  out.runs = directed_runs(g, cycle);
  const std::size_t k = out.runs.size();
  out.opposite.resize(k);
  for (std::size_t i = 0; i < k; ++i) {
    // directed_runs emits blocks in cycle order; adjacent blocks share
    // either both runs' sources or both runs' sinks. Find the neighbour
    // sharing the source.
    const std::size_t prev = (i + k - 1) % k;
    const std::size_t next = (i + 1) % k;
    if (out.runs[prev].source == out.runs[i].source) {
      out.opposite[i] = prev;
    } else {
      SDAF_ASSERT(out.runs[next].source == out.runs[i].source);
      out.opposite[i] = next;
    }
  }
  return out;
}

}  // namespace

IntervalMap propagation_intervals_exact(const StreamGraph& g,
                                        std::size_t cycle_limit) {
  const auto enumeration = enumerate_undirected_cycles(g, cycle_limit);
  SDAF_EXPECTS(!enumeration.truncated);
  IntervalMap ivals(g.edge_count());
  for (const auto& cycle : enumeration.cycles) {
    const PairedRuns pr = paired_runs(g, cycle);
    for (std::size_t i = 0; i < pr.runs.size(); ++i) {
      // Only the first edge of a run leaves the cycle's branch point
      // alongside a second out-edge, so only it is constrained.
      const EdgeId first = pr.runs[i].edges.front();
      ivals.update_min(first,
                       Rational(pr.runs[pr.opposite[i]].buffer_length));
    }
  }
  return ivals;
}

IntervalMap nonprop_intervals_exact(const StreamGraph& g,
                                    std::size_t cycle_limit) {
  const auto enumeration = enumerate_undirected_cycles(g, cycle_limit);
  SDAF_EXPECTS(!enumeration.truncated);
  IntervalMap ivals(g.edge_count());
  for (const auto& cycle : enumeration.cycles) {
    const PairedRuns pr = paired_runs(g, cycle);
    for (std::size_t i = 0; i < pr.runs.size(); ++i) {
      const Rational constraint =
          Rational(pr.runs[pr.opposite[i]].buffer_length) /
          Rational(pr.runs[i].hops());
      for (const EdgeId e : pr.runs[i].edges) ivals.update_min(e, constraint);
    }
  }
  return ivals;
}

}  // namespace sdaf
