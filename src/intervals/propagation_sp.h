// Dummy-interval computation for the *Propagation Algorithm* on SP-DAGs
// (Section IV.A). Under this algorithm only nodes with two outgoing edges on
// some undirected cycle emit dummies, and dummies are forwarded by every
// node that receives them. The interval of edge e out of node u is
//   [e] = min over cycles C through e and a second out-edge of u
//         of L(C, e),
// the shortest buffer-weighted directed path on C leaving u on the other
// side. In an SP-DAG the relevant cycles pair source-to-sink paths of
// parallel compositions, giving the two algorithms below.
#pragma once

#include "src/graph/stream_graph.h"
#include "src/intervals/interval_map.h"
#include "src/spdag/metrics.h"
#include "src/spdag/sp_tree.h"
#include "src/support/rational.h"

namespace sdaf {

// Core of Algorithm 1: runs SETIVALS(root, v) over one component subtree,
// folding `v` -- the tightest bound imposed by cycles *external* to the
// component on edges leaving its source -- into every interval it sets.
// Exposed separately because the CS4 driver calls it once per contracted
// skeleton component with the ladder-level bound as `v`.
void propagation_setivals(const SpTree& tree, const SpMetrics& metrics,
                          SpTree::Index root, const Rational& v,
                          IntervalMap& out);

// Algorithm 1 of the paper (SETIVALS): single top-down pass threading the
// external-cycle bound V through the decomposition tree. O(|G|).
[[nodiscard]] IntervalMap propagation_intervals_sp(const StreamGraph& g,
                                                   const SpTree& tree);

// The paper's "naive" post-order variant (Cases 1-3 of Section IV.A): at
// every parallel composition, re-scan the component's source-out edges and
// fold in the sibling's shortest path. O(|G|^2) worst case; kept as the
// ablation comparator for bench_sp_scaling.
[[nodiscard]] IntervalMap propagation_intervals_sp_naive(const StreamGraph& g,
                                                         const SpTree& tree);

}  // namespace sdaf
