// Deterministic single-threaded simulator of the identical streaming
// semantics as runtime::Executor: the same exec::FiringCore drives every
// node (same alignment rule, same wrappers, same blocking structure --
// nodes stall mid-emission on a full channel, holding already-consumed
// inputs). Deadlock is detected exactly -- a full round-robin sweep with no
// progress while work remains -- with no timers, making the traffic and
// deadlock benchmarks reproducible on any machine.
//
// Prefer the exec::Session facade (src/exec/session.h) for new code; this
// header stays as the backend implementation and its options/result types.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "src/graph/stream_graph.h"
#include "src/runtime/executor.h"
#include "src/runtime/kernel.h"
#include "src/runtime/trace.h"
#include "src/runtime/wrapper.h"

namespace sdaf::sim {

struct SimOptions {
  runtime::DummyMode mode = runtime::DummyMode::Propagation;
  std::vector<std::int64_t> intervals;  // per edge; empty = all infinite
  std::vector<std::uint8_t> forward_on_filter;  // per edge; empty = none
  std::uint64_t num_inputs = 0;
  // Safety valve against harness bugs; a legitimate run finishes far below.
  std::uint64_t max_sweeps = 1u << 30;
  // Optional event recorder (not owned); see runtime/trace.h.
  runtime::Tracer* tracer = nullptr;
};

struct SimResult {
  bool completed = false;
  bool deadlocked = false;
  std::uint64_t sweeps = 0;
  std::vector<runtime::EdgeTraffic> edges;
  std::vector<std::uint64_t> fires;
  std::vector<std::uint64_t> sink_data;
  // On deadlock: human-readable channel/node state for diagnosis.
  std::string state_dump;

  [[nodiscard]] std::uint64_t total_dummies() const;
  [[nodiscard]] std::uint64_t total_data() const;
};

class Simulation {
 public:
  Simulation(const StreamGraph& g,
             std::vector<std::shared_ptr<runtime::Kernel>> kernels);

  [[nodiscard]] SimResult run(const SimOptions& options);

 private:
  const StreamGraph& graph_;
  std::vector<std::shared_ptr<runtime::Kernel>> kernels_;
};

}  // namespace sdaf::sim
