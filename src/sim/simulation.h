// Deterministic single-threaded simulator of the identical streaming
// semantics as runtime::Executor: the same exec::FiringCore drives every
// node (same alignment rule, same wrappers, same blocking structure --
// nodes stall mid-emission on a full channel, holding already-consumed
// inputs). Deadlock is detected exactly -- a full round-robin sweep with no
// progress while work remains -- with no timers, making the traffic and
// deadlock benchmarks reproducible on any machine. Channels are the same
// coalescing runtime::MessageRing as the concurrent backends', so the
// batched data plane is differential-tested against the sweep semantics.
//
// Prefer the exec::Session facade (src/exec/session.h) for new code; this
// header stays as the backend implementation. Options and results are the
// exec types (exec::RunSpec / exec::RunReport); the old per-backend names
// remain as aliases for tests that pin this backend on purpose.
#pragma once

#include <memory>
#include <vector>

#include "src/exec/run_types.h"
#include "src/graph/stream_graph.h"
#include "src/runtime/kernel.h"

namespace sdaf::sim {

// Deprecated aliases from before the exec:: fold; the exec names are the
// one definition.
using SimOptions = exec::RunSpec;
using SimResult = exec::RunReport;

class Simulation {
 public:
  Simulation(const StreamGraph& g,
             std::vector<std::shared_ptr<runtime::Kernel>> kernels);

  // Consumes spec.mode/intervals/forward_on_filter/num_inputs/tracer/batch
  // and max_sweeps; backend-selection, watchdog and pool fields are
  // ignored.
  [[nodiscard]] exec::RunReport run(const exec::RunSpec& options);

 private:
  const StreamGraph& graph_;
  std::vector<std::shared_ptr<runtime::Kernel>> kernels_;
};

}  // namespace sdaf::sim
