// Deterministic single-threaded simulator of the identical streaming
// semantics as runtime::Executor: the same exec::FiringCore drives every
// node (same alignment rule, same wrappers, same blocking structure --
// nodes stall mid-emission on a full channel, holding already-consumed
// inputs). Deadlock is detected exactly -- a full round-robin sweep with no
// progress while work remains -- with no timers, making the traffic and
// deadlock benchmarks reproducible on any machine. Channels are the same
// coalescing runtime::MessageRing as the concurrent backends', so the
// batched data plane is differential-tested against the sweep semantics.
//
// Prefer the exec::Session facade (src/exec/session.h) for new code; this
// header stays as the backend implementation. Options and results are the
// exec types (exec::RunSpec / exec::RunReport); the old per-backend names
// remain as aliases for tests that pin this backend on purpose.
#pragma once

#include <memory>
#include <vector>

#include "src/ckpt/snapshot.h"
#include "src/exec/run_types.h"
#include "src/graph/stream_graph.h"
#include "src/runtime/kernel.h"

namespace sdaf::sim {

// Deprecated aliases from before the exec:: fold; the exec names are the
// one definition.
using SimOptions = exec::RunSpec;
using SimResult = exec::RunReport;

class Simulation {
 public:
  Simulation(const StreamGraph& g,
             std::vector<std::shared_ptr<runtime::Kernel>> kernels);

  // Consumes spec.mode/intervals/forward_on_filter/num_inputs/tracer/batch,
  // max_sweeps and ports; backend-selection, watchdog and pool fields are
  // ignored.
  [[nodiscard]] exec::RunReport run(const exec::RunSpec& options);

 private:
  const StreamGraph& graph_;
  std::vector<std::shared_ptr<runtime::Kernel>> kernels_;
};

// The incremental sweep engine behind both Simulation::run and the Sim
// backend of exec::Stream: the same channels, nodes, and round-robin sweep
// rule, but the *caller* owns the sweep loop, so injected feed channels
// (exec::RunSpec::ports) can be refilled between pumps -- "the sim drains
// whatever is pushed between deterministic sweeps". A pump that stops
// without finishing is not a verdict by itself: only the caller knows
// whether more input may still arrive (Simulation::run knows it cannot, so
// there a no-progress pump *is* the exact deadlock verdict of the paper's
// sweep rule).
class SweepEngine {
 public:
  SweepEngine(const StreamGraph& g,
              const std::vector<std::shared_ptr<runtime::Kernel>>& kernels,
              const exec::RunSpec& options);
  ~SweepEngine();

  SweepEngine(const SweepEngine&) = delete;
  SweepEngine& operator=(const SweepEngine&) = delete;

  // Round-robin sweeps until every node is done, a sweep makes no progress,
  // or sweeps() reaches the spec's max_sweeps. Returns true iff any sweep
  // made progress. Sweep accounting is bit-compatible with the historical
  // Simulation::run loop: terminal sweeps (the all-done one and a
  // no-progress one) are not counted.
  bool pump();

  [[nodiscard]] bool all_done() const;
  [[nodiscard]] std::uint64_t sweeps() const;

  // Final report (traffic, fires, sink deliveries; state dump iff
  // `deadlocked`). The verdict flags are the caller's call, see above.
  [[nodiscard]] exec::RunReport report(bool deadlocked) const;

  // Snapshot assembly (ckpt): edge e's cumulative traffic at the barrier
  // cut -- the marker latch when the producer forwarded Marker(S), the
  // frozen totals when it finished before the barrier. Only valid once the
  // barrier's downstream consumers have checkpointed.
  [[nodiscard]] ckpt::EdgeCut edge_cut(EdgeId e,
                                       bool producer_checkpointed) const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace sdaf::sim
