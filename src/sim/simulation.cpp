#include "src/sim/simulation.h"

#include <algorithm>
#include <optional>

#include "src/exec/firing_core.h"
#include "src/runtime/message_ring.h"
#include "src/support/contracts.h"

namespace sdaf::sim {

using runtime::HeadView;
using runtime::kInfiniteInterval;
using runtime::Message;
using runtime::MessageKind;
using runtime::MessageRing;
using runtime::NodeWrapper;

namespace {

// One edge's buffer: the shared coalescing ring plus traffic accounting.
// Logical occupancy (a run of k dummies counts k) drives full()/capacity,
// so buffer-size semantics match the concurrent backends exactly.
struct SimChannel {
  explicit SimChannel(std::size_t capacity) : ring(capacity) {}

  MessageRing ring;
  exec::EdgeTraffic traffic;

  void note_push(std::size_t data, std::size_t dummies) {
    traffic.data += data;
    traffic.dummies += dummies;
    traffic.max_occupancy = std::max(
        traffic.max_occupancy, static_cast<std::int64_t>(ring.size()));
  }
};

// Sweep-step sink: an exec::FiringCore over plain rings. Nothing ever
// blocks or wakes; the round-robin sweep in Simulation::run supplies the
// scheduling and the core's step() return value is the progress signal the
// exact deadlock verdict rests on.
class SimNode final : private exec::DeliverySink {
 public:
  SimNode(NodeId node, runtime::Kernel& kernel, std::vector<SimChannel*> ins,
          std::vector<SimChannel*> outs, NodeWrapper wrapper,
          std::uint64_t num_inputs, std::uint32_t batch,
          runtime::Tracer* tracer, const std::uint64_t* sweep)
      : ins_(std::move(ins)),
        outs_(std::move(outs)),
        core_(node, kernel, ins_.size(), outs_.size(), std::move(wrapper),
              num_inputs, *this, batch, tracer, sweep) {}

  // One scheduling quantum; returns true if any progress was made.
  bool step() { return core_.step(); }

  [[nodiscard]] bool done() const { return core_.done(); }
  [[nodiscard]] std::uint64_t fires() const { return core_.fires; }
  [[nodiscard]] std::uint64_t sink_data() const { return core_.sink_data; }
  [[nodiscard]] std::string describe() const { return core_.describe(); }

 private:
  std::optional<HeadView> peek_head(std::size_t slot,
                                    bool /*may_wait*/) override {
    if (ins_[slot]->ring.empty()) return std::nullopt;
    return ins_[slot]->ring.head();
  }

  Message pop_head(std::size_t slot) override {
    return ins_[slot]->ring.pop_head();
  }

  void pop(std::size_t slot) override { ins_[slot]->ring.pop(); }

  void pop_dummies(std::size_t slot, std::size_t count) override {
    const std::size_t popped = ins_[slot]->ring.pop_dummies(count);
    SDAF_ASSERT(popped == count);
  }

  exec::PushOutcome try_push(std::size_t slot, Message&& m) override {
    SimChannel& ch = *outs_[slot];
    if (ch.ring.full()) return exec::PushOutcome::Blocked;
    const bool is_data = m.kind == MessageKind::Data;
    const bool is_dummy = m.kind == MessageKind::Dummy;
    ch.ring.push(std::move(m));
    ch.note_push(is_data ? 1 : 0, is_dummy ? 1 : 0);
    return exec::PushOutcome::Delivered;
  }

  std::size_t try_push_dummies(std::size_t slot, std::uint64_t first_seq,
                               std::size_t count,
                               exec::PushOutcome* outcome) override {
    SimChannel& ch = *outs_[slot];
    const std::size_t accepted = ch.ring.push_dummies(first_seq, count);
    if (accepted > 0) ch.note_push(0, accepted);
    *outcome = accepted == count ? exec::PushOutcome::Delivered
                                 : exec::PushOutcome::Blocked;
    return accepted;
  }

  std::vector<SimChannel*> ins_;
  std::vector<SimChannel*> outs_;
  exec::FiringCore core_;  // last: its sink is *this
};

}  // namespace

Simulation::Simulation(const StreamGraph& g,
                       std::vector<std::shared_ptr<runtime::Kernel>> kernels)
    : graph_(g), kernels_(std::move(kernels)) {
  SDAF_EXPECTS(kernels_.size() == g.node_count());
  for (const auto& k : kernels_) SDAF_EXPECTS(k != nullptr);
}

exec::RunReport Simulation::run(const exec::RunSpec& options) {
  const std::size_t edges = graph_.edge_count();
  std::vector<std::int64_t> intervals = options.intervals;
  if (intervals.empty()) intervals.assign(edges, kInfiniteInterval);
  SDAF_EXPECTS(intervals.size() == edges);

  std::vector<std::uint8_t> forward = options.forward_on_filter;
  if (forward.empty()) forward.assign(edges, 0);
  SDAF_EXPECTS(forward.size() == edges);

  std::vector<SimChannel> channels;
  channels.reserve(edges);
  for (EdgeId e = 0; e < edges; ++e)
    channels.emplace_back(static_cast<std::size_t>(graph_.edge(e).buffer));

  exec::RunReport result;
  result.backend = exec::Backend::Sim;
  std::vector<std::unique_ptr<SimNode>> nodes;
  nodes.reserve(graph_.node_count());
  for (NodeId n = 0; n < graph_.node_count(); ++n) {
    std::vector<SimChannel*> ins;
    for (const EdgeId e : graph_.in_edges(n)) ins.push_back(&channels[e]);
    std::vector<SimChannel*> outs;
    std::vector<std::int64_t> out_intervals;
    std::vector<std::uint8_t> out_forward;
    for (const EdgeId e : graph_.out_edges(n)) {
      outs.push_back(&channels[e]);
      out_intervals.push_back(intervals[e]);
      out_forward.push_back(forward[e]);
    }
    nodes.push_back(std::make_unique<SimNode>(
        n, *kernels_[n], std::move(ins), std::move(outs),
        NodeWrapper(options.mode, std::move(out_intervals),
                    std::move(out_forward)),
        options.num_inputs, options.batch, options.tracer, &result.sweeps));
  }
  for (result.sweeps = 0; result.sweeps < options.max_sweeps;
       ++result.sweeps) {
    bool progress = false;
    bool all_done = true;
    for (auto& node : nodes) {
      progress |= node->step();
      all_done &= node->done();
    }
    if (all_done) {
      result.completed = true;
      break;
    }
    if (!progress) {
      result.deadlocked = true;
      result.state_dump = exec::dump_wedged_state(
          graph_,
          [&](EdgeId e) {
            const auto& ch = channels[e];
            exec::EdgeDumpInfo info{ch.ring.size(), ch.ring.capacity(),
                                    ch.traffic.data, ch.traffic.dummies,
                                    std::nullopt, std::nullopt};
            if (!ch.ring.empty()) {
              info.head = ch.ring.head_message();
              info.tail = ch.ring.tail_message();
            }
            return info;
          },
          [&](NodeId n) { return nodes[n]->describe(); });
      break;
    }
  }

  result.edges.resize(edges);
  for (EdgeId e = 0; e < edges; ++e) result.edges[e] = channels[e].traffic;
  result.fires.resize(graph_.node_count());
  result.sink_data.resize(graph_.node_count());
  for (NodeId n = 0; n < graph_.node_count(); ++n) {
    result.fires[n] = nodes[n]->fires();
    result.sink_data[n] = nodes[n]->sink_data();
  }
  return result;
}

}  // namespace sdaf::sim
