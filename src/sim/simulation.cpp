#include "src/sim/simulation.h"

#include <algorithm>
#include <optional>

#include "src/exec/firing_core.h"
#include "src/runtime/channel.h"
#include "src/runtime/message_ring.h"
#include "src/support/contracts.h"

namespace sdaf::sim {

using runtime::BoundedChannel;
using runtime::HeadView;
using runtime::kInfiniteInterval;
using runtime::Message;
using runtime::MessageKind;
using runtime::MessageRing;
using runtime::NodeWrapper;
using runtime::PushResult;

namespace {

// One edge's buffer: the shared coalescing ring plus traffic accounting.
// Logical occupancy (a run of k dummies counts k) drives full()/capacity,
// so buffer-size semantics match the concurrent backends exactly.
struct SimChannel {
  explicit SimChannel(std::size_t capacity) : ring(capacity) {}

  MessageRing ring;
  exec::EdgeTraffic traffic;
  obs::ChannelCounters* metrics = nullptr;
  // Edge cut latched at the marker crossing (ckpt): cumulative traffic the
  // moment Marker(S) entered this channel. Single-threaded, so a plain
  // producer-side store is the exact analogue of BoundedChannel's latch.
  std::uint64_t cut_data = 0;
  std::uint64_t cut_dummies = 0;

  void note_push(std::size_t data, std::size_t dummies) {
    traffic.data += data;
    traffic.dummies += dummies;
    traffic.max_occupancy = std::max(
        traffic.max_occupancy, static_cast<std::int64_t>(ring.size()));
    if (metrics != nullptr) {
      if (data > 0) obs::bump(metrics->data_pushed, data);
      if (dummies > 0) obs::bump(metrics->dummies_pushed, dummies);
      metrics->note_high_water(static_cast<std::int64_t>(ring.size()));
    }
  }

  void note_pop(std::size_t count) {
    if (metrics != nullptr) obs::bump(metrics->pops, count);
  }
};

// Sweep-step sink: an exec::FiringCore over plain rings. Nothing ever
// blocks or wakes; the round-robin sweep in SweepEngine supplies the
// scheduling and the core's step() return value is the progress signal the
// exact deadlock verdict rests on. A port-fed source reads the injected
// `feed` BoundedChannel; a tapped sink owns one extra out-slot backed by
// the `egress` BoundedChannel (both drained/refilled by the caller between
// pumps -- single-threaded, so the channel atomics are uncontended).
class SimNode final : private exec::DeliverySink {
 public:
  SimNode(NodeId node, runtime::Kernel& kernel, std::vector<SimChannel*> ins,
          std::vector<SimChannel*> outs, BoundedChannel* feed,
          BoundedChannel* egress, NodeWrapper wrapper,
          std::uint64_t num_inputs, std::uint32_t batch,
          runtime::Tracer* tracer, const std::uint64_t* sweep,
          obs::NodeCounters* metrics)
      : ins_(std::move(ins)),
        outs_(std::move(outs)),
        feed_(feed),
        egress_(egress),
        core_(node, kernel, ins_.size(),
              outs_.size() + (egress != nullptr ? 1 : 0), std::move(wrapper),
              num_inputs, *this, batch, tracer, sweep,
              /*port_fed=*/feed != nullptr, metrics) {}

  // One scheduling quantum; returns true if any progress was made.
  bool step() { return core_.step(); }

  [[nodiscard]] bool done() const { return core_.done(); }
  [[nodiscard]] std::uint64_t fires() const { return core_.fires; }
  [[nodiscard]] std::uint64_t sink_data() const { return core_.sink_data; }
  [[nodiscard]] std::string describe() const { return core_.describe(); }
  [[nodiscard]] std::uint64_t park_summary() const {
    return core_.park_summary();
  }

  // Snapshot/restore plumbing (ckpt): see exec::FiringCore.
  void set_snapshot_plane(ckpt::SnapshotPlane* plane) {
    core_.set_snapshot_plane(plane);
  }
  void restore_cut(const ckpt::NodeCut& cut) { core_.restore_cut(cut); }
  void mark_done() { core_.mark_done(); }

 private:
  std::optional<HeadView> peek_head(std::size_t slot,
                                    bool /*may_wait*/) override {
    SimChannel& ch = *ins_[slot];
    if (ch.ring.empty()) {
      if (ch.metrics != nullptr) obs::bump(ch.metrics->empty_waits);
      return std::nullopt;
    }
    return ch.ring.head();
  }

  Message pop_head(std::size_t slot) override {
    ins_[slot]->note_pop(1);
    return ins_[slot]->ring.pop_head();
  }

  void pop(std::size_t slot) override {
    ins_[slot]->note_pop(1);
    ins_[slot]->ring.pop();
  }

  void pop_dummies(std::size_t slot, std::size_t count) override {
    const std::size_t popped = ins_[slot]->ring.pop_dummies(count);
    SDAF_ASSERT(popped == count);
    ins_[slot]->note_pop(popped);
  }

  exec::PushOutcome try_push(std::size_t slot, Message&& m) override {
    if (slot == outs_.size()) {
      const PushResult result =
          m.kind == MessageKind::Marker
              ? egress_->try_push_marker(m.seq)
              : egress_->try_push(std::move(m));
      switch (result) {
        case PushResult::Ok:
          return exec::PushOutcome::Delivered;
        case PushResult::Aborted:
          return exec::PushOutcome::Aborted;
        case PushResult::Full:
        default:
          return exec::PushOutcome::Blocked;
      }
    }
    SimChannel& ch = *outs_[slot];
    if (m.kind == MessageKind::Marker) {
      // Latch the edge cut, then publish: markers are occupancy-neutral
      // and never count as traffic (see BoundedChannel::try_push_marker).
      ch.cut_data = ch.traffic.data;
      ch.cut_dummies = ch.traffic.dummies;
      return ch.ring.push_marker(m.seq) ? exec::PushOutcome::Delivered
                                        : exec::PushOutcome::Blocked;
    }
    if (ch.ring.full()) {
      if (ch.metrics != nullptr) obs::bump(ch.metrics->full_stalls);
      return exec::PushOutcome::Blocked;
    }
    const bool is_data = m.kind == MessageKind::Data;
    const bool is_dummy = m.kind == MessageKind::Dummy;
    ch.ring.push(std::move(m));
    ch.note_push(is_data ? 1 : 0, is_dummy ? 1 : 0);
    return exec::PushOutcome::Delivered;
  }

  std::size_t try_push_dummies(std::size_t slot, std::uint64_t first_seq,
                               std::size_t count,
                               exec::PushOutcome* outcome) override {
    if (slot == outs_.size()) {
      bool chan_aborted = false;
      const std::size_t accepted = egress_->try_push_dummies(
          first_seq, count, /*was_empty=*/nullptr, &chan_aborted);
      *outcome = chan_aborted ? exec::PushOutcome::Aborted
                 : accepted == count ? exec::PushOutcome::Delivered
                                     : exec::PushOutcome::Blocked;
      return accepted;
    }
    SimChannel& ch = *outs_[slot];
    const std::size_t accepted = ch.ring.push_dummies(first_seq, count);
    if (accepted > 0) ch.note_push(0, accepted);
    if (accepted < count && ch.metrics != nullptr)
      obs::bump(ch.metrics->full_stalls);
    *outcome = accepted == count ? exec::PushOutcome::Delivered
                                 : exec::PushOutcome::Blocked;
    return accepted;
  }

  std::optional<HeadView> peek_feed(bool /*may_wait*/) override {
    return feed_->try_peek_head();
  }

  Message pop_feed() override { return feed_->pop_head(); }

  std::vector<SimChannel*> ins_;
  std::vector<SimChannel*> outs_;
  BoundedChannel* feed_;
  BoundedChannel* egress_;
  exec::FiringCore core_;  // last: its sink is *this
};

}  // namespace

struct SweepEngine::Impl {
  const StreamGraph& graph;
  std::uint64_t max_sweeps;
  std::uint64_t sweeps = 0;
  bool all_done = false;
  runtime::Tracer* tracer = nullptr;  // for the wedged-state dump tail
  std::vector<SimChannel> channels;
  std::vector<std::unique_ptr<SimNode>> nodes;

  explicit Impl(const StreamGraph& g) : graph(g), max_sweeps(0) {}
};

SweepEngine::SweepEngine(
    const StreamGraph& g,
    const std::vector<std::shared_ptr<runtime::Kernel>>& kernels,
    const exec::RunSpec& options)
    : impl_(std::make_unique<Impl>(g)) {
  SDAF_EXPECTS(kernels.size() == g.node_count());
  for (const auto& k : kernels) SDAF_EXPECTS(k != nullptr);
  impl_->max_sweeps = options.max_sweeps;
  impl_->tracer = options.tracer;

  const std::size_t edges = g.edge_count();
  std::vector<std::int64_t> intervals = options.intervals;
  if (intervals.empty()) intervals.assign(edges, kInfiniteInterval);
  SDAF_EXPECTS(intervals.size() == edges);

  std::vector<std::uint8_t> forward = options.forward_on_filter;
  if (forward.empty()) forward.assign(edges, 0);
  SDAF_EXPECTS(forward.size() == edges);

  impl_->channels.reserve(edges);
  for (EdgeId e = 0; e < edges; ++e) {
    impl_->channels.emplace_back(
        static_cast<std::size_t>(g.edge(e).buffer));
    if (options.metrics != nullptr)
      impl_->channels.back().metrics = &options.metrics->channel(e);
  }

  impl_->nodes.reserve(g.node_count());
  for (NodeId n = 0; n < g.node_count(); ++n) {
    std::vector<SimChannel*> ins;
    for (const EdgeId e : g.in_edges(n)) ins.push_back(&impl_->channels[e]);
    std::vector<SimChannel*> outs;
    std::vector<std::int64_t> out_intervals;
    std::vector<std::uint8_t> out_forward;
    for (const EdgeId e : g.out_edges(n)) {
      outs.push_back(&impl_->channels[e]);
      out_intervals.push_back(intervals[e]);
      out_forward.push_back(forward[e]);
    }
    BoundedChannel* feed = nullptr;
    BoundedChannel* egress = nullptr;
    if (options.ports != nullptr) {
      feed = options.ports->feed_for(n);
      egress = options.ports->egress_for(n);
      if (egress != nullptr) {
        // The egress tap is one extra out-slot: infinite dummy interval,
        // never continuation-forwarding.
        out_intervals.push_back(kInfiniteInterval);
        out_forward.push_back(0);
      }
    }
    impl_->nodes.push_back(std::make_unique<SimNode>(
        n, *kernels[n], std::move(ins), std::move(outs), feed, egress,
        NodeWrapper(options.mode, std::move(out_intervals),
                    std::move(out_forward)),
        options.num_inputs, options.batch, options.tracer, &impl_->sweeps,
        options.metrics != nullptr ? &options.metrics->node(n) : nullptr));
  }

  if (options.ckpt_plane != nullptr)
    for (auto& node : impl_->nodes)
      node->set_snapshot_plane(options.ckpt_plane);
  if (options.restore != nullptr) {
    const ckpt::StreamSnapshot& snap = *options.restore;
    SDAF_EXPECTS(snap.nodes.size() == g.node_count() &&
                 snap.edges.size() == edges);
    impl_->sweeps = snap.sweeps;  // resume the cumulative sweep count
    for (NodeId n = 0; n < g.node_count(); ++n) {
      impl_->nodes[n]->restore_cut(snap.nodes[n]);
      if (snap.nodes[n].done != 0) impl_->nodes[n]->mark_done();
    }
    for (EdgeId e = 0; e < edges; ++e) {
      SimChannel& ch = impl_->channels[e];
      ch.traffic.data = snap.edges[e].data_pushed;
      ch.traffic.dummies = snap.edges[e].dummies_pushed;
      ch.cut_data = snap.edges[e].data_pushed;
      ch.cut_dummies = snap.edges[e].dummies_pushed;
      // The cut's interior channels are logically empty except for the EOS
      // a pre-barrier-finished producer had flooded; re-create that head so
      // a live consumer still terminates.
      if (snap.nodes[g.edge(e).from].done != 0 &&
          snap.nodes[g.edge(e).to].done == 0)
        ch.ring.push(Message::eos());
    }
  }
}

SweepEngine::~SweepEngine() = default;

bool SweepEngine::pump() {
  Impl& s = *impl_;
  bool pumped = false;
  while (!s.all_done && s.sweeps < s.max_sweeps) {
    bool progress = false;
    bool done = true;
    for (auto& node : s.nodes) {
      progress |= node->step();
      done &= node->done();
    }
    pumped |= progress;
    if (done) {
      s.all_done = true;
      break;  // terminal sweep: not counted, matching the historical loop
    }
    if (!progress) break;  // starved or wedged: also not counted
    ++s.sweeps;
  }
  return pumped;
}

bool SweepEngine::all_done() const { return impl_->all_done; }

std::uint64_t SweepEngine::sweeps() const { return impl_->sweeps; }

ckpt::EdgeCut SweepEngine::edge_cut(EdgeId e,
                                    bool producer_checkpointed) const {
  const SimChannel& ch = impl_->channels[e];
  if (producer_checkpointed) return ckpt::EdgeCut{ch.cut_data, ch.cut_dummies};
  return ckpt::EdgeCut{ch.traffic.data, ch.traffic.dummies};
}

exec::RunReport SweepEngine::report(bool deadlocked) const {
  const Impl& s = *impl_;
  exec::RunReport result;
  result.backend = exec::Backend::Sim;
  result.sweeps = s.sweeps;
  result.completed = s.all_done;
  result.deadlocked = deadlocked;
  if (deadlocked) {
    result.state_dump = exec::dump_wedged_state(
        s.graph,
        [&](EdgeId e) {
          const auto& ch = s.channels[e];
          exec::EdgeDumpInfo info{ch.ring.size(), ch.ring.capacity(),
                                  ch.traffic.data, ch.traffic.dummies,
                                  std::nullopt, std::nullopt};
          if (!ch.ring.empty()) {
            info.head = ch.ring.head_message();
            info.tail = ch.ring.tail_message();
          }
          return info;
        },
        [&](NodeId n) {
          return exec::NodeDumpInfo{s.nodes[n]->describe(),
                                    s.nodes[n]->park_summary()};
        },
        s.tracer);
  }
  result.edges.resize(s.channels.size());
  for (std::size_t e = 0; e < s.channels.size(); ++e)
    result.edges[e] = s.channels[e].traffic;
  result.fires.resize(s.nodes.size());
  result.sink_data.resize(s.nodes.size());
  for (std::size_t n = 0; n < s.nodes.size(); ++n) {
    result.fires[n] = s.nodes[n]->fires();
    result.sink_data[n] = s.nodes[n]->sink_data();
  }
  return result;
}

Simulation::Simulation(const StreamGraph& g,
                       std::vector<std::shared_ptr<runtime::Kernel>> kernels)
    : graph_(g), kernels_(std::move(kernels)) {
  SDAF_EXPECTS(kernels_.size() == g.node_count());
  for (const auto& k : kernels_) SDAF_EXPECTS(k != nullptr);
}

exec::RunReport Simulation::run(const exec::RunSpec& options) {
  // Live ports would make a no-progress sweep ambiguous (more input may
  // arrive); this blocking entry point only accepts pre-closed feeds.
  SDAF_EXPECTS(options.ports == nullptr || !options.ports->live);
  SweepEngine engine(graph_, kernels_, options);
  (void)engine.pump();
  // With every feed pre-closed, pump() stopping short of completion inside
  // the sweep budget is exactly the historical verdict: a full round-robin
  // sweep with no progress while work remains.
  const bool deadlocked =
      !engine.all_done() && engine.sweeps() < options.max_sweeps;
  return engine.report(deadlocked);
}

}  // namespace sdaf::sim
