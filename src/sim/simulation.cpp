#include "src/sim/simulation.h"

#include <algorithm>
#include <optional>

#include "src/exec/firing_core.h"
#include "src/support/contracts.h"

namespace sdaf::sim {

using runtime::kInfiniteInterval;
using runtime::Message;
using runtime::MessageKind;
using runtime::NodeWrapper;

std::uint64_t SimResult::total_dummies() const {
  std::uint64_t total = 0;
  for (const auto& e : edges) total += e.dummies;
  return total;
}

std::uint64_t SimResult::total_data() const {
  std::uint64_t total = 0;
  for (const auto& e : edges) total += e.data;
  return total;
}

namespace {

struct SimChannel {
  std::deque<Message> queue;
  std::size_t capacity = 1;
  runtime::EdgeTraffic traffic;

  [[nodiscard]] bool full() const { return queue.size() >= capacity; }
  void push(Message m) {
    SDAF_ASSERT(!full());
    if (m.kind == MessageKind::Data) ++traffic.data;
    if (m.kind == MessageKind::Dummy) ++traffic.dummies;
    queue.push_back(std::move(m));
    traffic.max_occupancy = std::max(traffic.max_occupancy,
                                     static_cast<std::int64_t>(queue.size()));
  }
};

// Sweep-step sink: an exec::FiringCore over plain deques. Nothing ever
// blocks or wakes; the round-robin sweep in Simulation::run supplies the
// scheduling and the core's step() return value is the progress signal the
// exact deadlock verdict rests on.
class SimNode final : private exec::DeliverySink {
 public:
  SimNode(NodeId node, runtime::Kernel& kernel, std::vector<SimChannel*> ins,
          std::vector<SimChannel*> outs, NodeWrapper wrapper,
          std::uint64_t num_inputs, runtime::Tracer* tracer,
          const std::uint64_t* sweep)
      : ins_(std::move(ins)),
        outs_(std::move(outs)),
        core_(node, kernel, ins_.size(), outs_.size(), std::move(wrapper),
              num_inputs, *this, tracer, sweep) {}

  // One scheduling quantum; returns true if any progress was made.
  bool step() { return core_.step(); }

  [[nodiscard]] bool done() const { return core_.done(); }
  [[nodiscard]] std::uint64_t fires() const { return core_.fires; }
  [[nodiscard]] std::uint64_t sink_data() const { return core_.sink_data; }
  [[nodiscard]] std::string describe() const { return core_.describe(); }

 private:
  std::optional<Message> try_peek(std::size_t slot) override {
    if (ins_[slot]->queue.empty()) return std::nullopt;
    return ins_[slot]->queue.front();
  }

  void pop(std::size_t slot) override { ins_[slot]->queue.pop_front(); }

  exec::PushOutcome try_push(std::size_t slot, const Message& m) override {
    if (outs_[slot]->full()) return exec::PushOutcome::Blocked;
    outs_[slot]->push(m);
    return exec::PushOutcome::Delivered;
  }

  std::vector<SimChannel*> ins_;
  std::vector<SimChannel*> outs_;
  exec::FiringCore core_;  // last: its sink is *this
};

}  // namespace

Simulation::Simulation(const StreamGraph& g,
                       std::vector<std::shared_ptr<runtime::Kernel>> kernels)
    : graph_(g), kernels_(std::move(kernels)) {
  SDAF_EXPECTS(kernels_.size() == g.node_count());
  for (const auto& k : kernels_) SDAF_EXPECTS(k != nullptr);
}

SimResult Simulation::run(const SimOptions& options) {
  const std::size_t edges = graph_.edge_count();
  std::vector<std::int64_t> intervals = options.intervals;
  if (intervals.empty()) intervals.assign(edges, kInfiniteInterval);
  SDAF_EXPECTS(intervals.size() == edges);

  std::vector<std::uint8_t> forward = options.forward_on_filter;
  if (forward.empty()) forward.assign(edges, 0);
  SDAF_EXPECTS(forward.size() == edges);

  std::vector<SimChannel> channels(edges);
  for (EdgeId e = 0; e < edges; ++e)
    channels[e].capacity = static_cast<std::size_t>(graph_.edge(e).buffer);

  SimResult result;
  std::vector<std::unique_ptr<SimNode>> nodes;
  nodes.reserve(graph_.node_count());
  for (NodeId n = 0; n < graph_.node_count(); ++n) {
    std::vector<SimChannel*> ins;
    for (const EdgeId e : graph_.in_edges(n)) ins.push_back(&channels[e]);
    std::vector<SimChannel*> outs;
    std::vector<std::int64_t> out_intervals;
    std::vector<std::uint8_t> out_forward;
    for (const EdgeId e : graph_.out_edges(n)) {
      outs.push_back(&channels[e]);
      out_intervals.push_back(intervals[e]);
      out_forward.push_back(forward[e]);
    }
    nodes.push_back(std::make_unique<SimNode>(
        n, *kernels_[n], std::move(ins), std::move(outs),
        NodeWrapper(options.mode, std::move(out_intervals),
                    std::move(out_forward)),
        options.num_inputs, options.tracer, &result.sweeps));
  }
  for (result.sweeps = 0; result.sweeps < options.max_sweeps;
       ++result.sweeps) {
    bool progress = false;
    bool all_done = true;
    for (auto& node : nodes) {
      progress |= node->step();
      all_done &= node->done();
    }
    if (all_done) {
      result.completed = true;
      break;
    }
    if (!progress) {
      result.deadlocked = true;
      result.state_dump = exec::dump_wedged_state(
          graph_,
          [&](EdgeId e) {
            const auto& ch = channels[e];
            exec::EdgeDumpInfo info{ch.queue.size(), ch.capacity,
                                    ch.traffic.data, ch.traffic.dummies,
                                    std::nullopt, std::nullopt};
            if (!ch.queue.empty()) {
              info.head = ch.queue.front();
              info.tail = ch.queue.back();
            }
            return info;
          },
          [&](NodeId n) { return nodes[n]->describe(); });
      break;
    }
  }

  result.edges.resize(edges);
  for (EdgeId e = 0; e < edges; ++e) result.edges[e] = channels[e].traffic;
  result.fires.resize(graph_.node_count());
  result.sink_data.resize(graph_.node_count());
  for (NodeId n = 0; n < graph_.node_count(); ++n) {
    result.fires[n] = nodes[n]->fires();
    result.sink_data[n] = nodes[n]->sink_data();
  }
  return result;
}

}  // namespace sdaf::sim
