#include "src/sim/simulation.h"

#include <algorithm>
#include <optional>
#include <sstream>

#include "src/support/contracts.h"

namespace sdaf::sim {

using runtime::DummyMode;
using runtime::Emitter;
using runtime::kEosSeq;
using runtime::kInfiniteInterval;
using runtime::Message;
using runtime::MessageKind;
using runtime::NodeWrapper;
using runtime::Value;

std::uint64_t SimResult::total_dummies() const {
  std::uint64_t total = 0;
  for (const auto& e : edges) total += e.dummies;
  return total;
}

std::uint64_t SimResult::total_data() const {
  std::uint64_t total = 0;
  for (const auto& e : edges) total += e.data;
  return total;
}

namespace {

struct SimChannel {
  std::deque<Message> queue;
  std::size_t capacity = 1;
  runtime::EdgeTraffic traffic;

  [[nodiscard]] bool full() const { return queue.size() >= capacity; }
  void push(Message m) {
    SDAF_ASSERT(!full());
    if (m.kind == MessageKind::Data) ++traffic.data;
    if (m.kind == MessageKind::Dummy) ++traffic.dummies;
    queue.push_back(std::move(m));
    traffic.max_occupancy = std::max(traffic.max_occupancy,
                                     static_cast<std::int64_t>(queue.size()));
  }
};

struct PendingMessage {
  std::size_t out_slot;
  Message message;
};

// Mirror of runtime's NodeRunner as an explicit state machine.
class SimNode {
 public:
  SimNode(const StreamGraph& g, NodeId node, runtime::Kernel& kernel,
          std::vector<SimChannel*> ins, std::vector<SimChannel*> outs,
          NodeWrapper wrapper, std::uint64_t num_inputs,
          runtime::Tracer* tracer, const std::uint64_t* sweep)
      : node_(node),
        kernel_(kernel),
        ins_(std::move(ins)),
        outs_(std::move(outs)),
        wrapper_(std::move(wrapper)),
        num_inputs_(num_inputs),
        tracer_(tracer),
        sweep_(sweep),
        emitter_(outs_.size()),
        inputs_(ins_.size()) {
    (void)g;
  }

  std::uint64_t fires = 0;
  std::uint64_t sink_data = 0;
  [[nodiscard]] bool done() const { return done_; }

  [[nodiscard]] std::string describe() const {
    std::string s = done_ ? "done" : "running";
    s += " src_seq=" + std::to_string(source_seq_);
    s += " pending=" + std::to_string(pending_.size());
    for (const auto& pm : pending_)
      s += " [slot=" + std::to_string(pm.out_slot) + " " +
           runtime::to_string(pm.message) + "]";
    return s;
  }

  // One scheduling quantum; returns true if any progress was made.
  bool step() {
    if (done_) return false;
    bool progressed = false;
    // Drain pending emissions, per-channel asynchronously: a full channel
    // must not block messages destined for channels with space (mirrors the
    // executor's try_push/retry loop).
    if (!pending_.empty()) {
      std::size_t write = 0;
      for (std::size_t i = 0; i < pending_.size(); ++i) {
        PendingMessage& pm = pending_[i];
        if (outs_[pm.out_slot]->full()) {
          pending_[write++] = std::move(pm);
        } else {
          outs_[pm.out_slot]->push(std::move(pm.message));
          progressed = true;
        }
      }
      pending_.resize(write);
      if (!pending_.empty()) return progressed;
    }
    if (eos_flooded_) {
      done_ = true;
      return true;
    }
    return fire_once() || progressed;
  }

 private:
  void trace(runtime::TraceKind kind, std::size_t slot, std::uint64_t seq) {
    if (tracer_ != nullptr)
      tracer_->record(
          runtime::TraceEvent{kind, node_, slot, seq, *sweep_});
  }

  void queue_outputs(std::uint64_t seq, bool any_input_dummy) {
    for (std::size_t slot = 0; slot < outs_.size(); ++slot) {
      const auto& v = emitter_.value(slot);
      if (v.has_value()) {
        (void)wrapper_.should_send_dummy(slot, seq, /*sent_data=*/true, false);
        pending_.push_back({slot, Message::data(seq, *v)});
        trace(runtime::TraceKind::DataSent, slot, seq);
      } else if (wrapper_.should_send_dummy(slot, seq, /*sent_data=*/false,
                                            any_input_dummy)) {
        pending_.push_back({slot, Message::dummy(seq)});
        trace(runtime::TraceKind::DummySent, slot, seq);
      }
    }
  }

  void queue_eos() {
    for (std::size_t slot = 0; slot < outs_.size(); ++slot) {
      pending_.push_back({slot, Message::eos()});
      trace(runtime::TraceKind::EosSent, slot, runtime::kEosSeq);
    }
    eos_flooded_ = true;
  }

  // Attempts one firing (alignment + kernel + wrapper). Returns true if the
  // node consumed or produced anything.
  bool fire_once() {
    if (ins_.empty()) {
      // Source.
      if (source_seq_ >= num_inputs_) {
        queue_eos();
        return true;
      }
      emitter_.reset();
      static const std::vector<std::optional<Value>> no_inputs;
      kernel_.fire(source_seq_, no_inputs, emitter_);
      ++fires;
      trace(runtime::TraceKind::Fire, 0, source_seq_);
      queue_outputs(source_seq_, false);
      ++source_seq_;
      return true;
    }
    // Interior / sink: need every head present.
    std::uint64_t min_seq = kEosSeq;
    for (const SimChannel* in : ins_) {
      if (in->queue.empty()) return false;
      min_seq = std::min(min_seq, in->queue.front().seq);
    }
    if (min_seq == kEosSeq) {
      queue_eos();
      return true;
    }
    bool any_dummy = false;
    bool any_data = false;
    for (std::size_t j = 0; j < ins_.size(); ++j) {
      inputs_[j].reset();
      Message& head = ins_[j]->queue.front();
      if (head.seq != min_seq) continue;
      if (head.kind == MessageKind::Data) {
        inputs_[j] = head.payload;
        any_data = true;
        ++sink_data;
        trace(runtime::TraceKind::DataConsumed, j, min_seq);
      } else {
        any_dummy = true;
        trace(runtime::TraceKind::DummyConsumed, j, min_seq);
      }
      ins_[j]->queue.pop_front();
    }
    emitter_.reset();
    if (any_data) {
      kernel_.fire(min_seq, inputs_, emitter_);
      ++fires;
      trace(runtime::TraceKind::Fire, 0, min_seq);
    }
    queue_outputs(min_seq, any_dummy);
    return true;
  }

  NodeId node_;
  runtime::Kernel& kernel_;
  std::vector<SimChannel*> ins_;
  std::vector<SimChannel*> outs_;
  NodeWrapper wrapper_;
  std::uint64_t num_inputs_;
  runtime::Tracer* tracer_;
  const std::uint64_t* sweep_;
  Emitter emitter_;
  std::vector<std::optional<Value>> inputs_;
  std::vector<PendingMessage> pending_;
  std::uint64_t source_seq_ = 0;
  bool eos_flooded_ = false;
  bool done_ = false;
};

}  // namespace

Simulation::Simulation(const StreamGraph& g,
                       std::vector<std::shared_ptr<runtime::Kernel>> kernels)
    : graph_(g), kernels_(std::move(kernels)) {
  SDAF_EXPECTS(kernels_.size() == g.node_count());
  for (const auto& k : kernels_) SDAF_EXPECTS(k != nullptr);
}

SimResult Simulation::run(const SimOptions& options) {
  const std::size_t edges = graph_.edge_count();
  std::vector<std::int64_t> intervals = options.intervals;
  if (intervals.empty()) intervals.assign(edges, kInfiniteInterval);
  SDAF_EXPECTS(intervals.size() == edges);

  std::vector<std::uint8_t> forward = options.forward_on_filter;
  if (forward.empty()) forward.assign(edges, 0);
  SDAF_EXPECTS(forward.size() == edges);

  std::vector<SimChannel> channels(edges);
  for (EdgeId e = 0; e < edges; ++e)
    channels[e].capacity = static_cast<std::size_t>(graph_.edge(e).buffer);

  SimResult result;
  std::vector<std::unique_ptr<SimNode>> nodes;
  nodes.reserve(graph_.node_count());
  for (NodeId n = 0; n < graph_.node_count(); ++n) {
    std::vector<SimChannel*> ins;
    for (const EdgeId e : graph_.in_edges(n)) ins.push_back(&channels[e]);
    std::vector<SimChannel*> outs;
    std::vector<std::int64_t> out_intervals;
    std::vector<std::uint8_t> out_forward;
    for (const EdgeId e : graph_.out_edges(n)) {
      outs.push_back(&channels[e]);
      out_intervals.push_back(intervals[e]);
      out_forward.push_back(forward[e]);
    }
    nodes.push_back(std::make_unique<SimNode>(
        graph_, n, *kernels_[n], std::move(ins), std::move(outs),
        NodeWrapper(options.mode, std::move(out_intervals),
                    std::move(out_forward)),
        options.num_inputs, options.tracer, &result.sweeps));
  }
  for (result.sweeps = 0; result.sweeps < options.max_sweeps;
       ++result.sweeps) {
    bool progress = false;
    bool all_done = true;
    for (auto& node : nodes) {
      progress |= node->step();
      all_done &= node->done();
    }
    if (all_done) {
      result.completed = true;
      break;
    }
    if (!progress) {
      result.deadlocked = true;
      std::ostringstream dump;
      for (EdgeId e = 0; e < edges; ++e) {
        const auto& ch = channels[e];
        dump << "edge " << e << " " << graph_.node_name(graph_.edge(e).from)
             << "->" << graph_.node_name(graph_.edge(e).to) << " "
             << ch.queue.size() << "/" << ch.capacity << " pushed="
             << ch.traffic.data << "+" << ch.traffic.dummies << "d";
        if (!ch.queue.empty())
          dump << " head=" << runtime::to_string(ch.queue.front())
               << " tail=" << runtime::to_string(ch.queue.back());
        dump << "\n";
      }
      for (NodeId n = 0; n < graph_.node_count(); ++n)
        dump << "node " << graph_.node_name(n) << " "
             << nodes[n]->describe() << "\n";
      result.state_dump = dump.str();
      break;
    }
  }

  result.edges.resize(edges);
  for (EdgeId e = 0; e < edges; ++e) result.edges[e] = channels[e].traffic;
  result.fires.resize(graph_.node_count());
  result.sink_data.resize(graph_.node_count());
  for (NodeId n = 0; n < graph_.node_count(); ++n) {
    result.fires[n] = nodes[n]->fires;
    result.sink_data[n] = nodes[n]->sink_data;
  }
  return result;
}

}  // namespace sdaf::sim
