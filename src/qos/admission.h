// sdaf::qos -- admission control over the shared pool. An Admission holds
// configurable budgets (channel memory, node count, tenant fan-out) and a
// running reservation ledger; admit() either reserves a stream's predicted
// TenantCost or returns a typed Rejection naming the exceeded budget and
// the prediction, so Session::open and the sdafd Open path refuse
// over-budget work *before* any channel memory is allocated or any task is
// scheduled -- the cost model makes the decision from compile-time facts.
//
// Thread safety: admit/release/usage are mutex-serialized (admission is a
// per-open operation, never on the data path); the admitted/rejected
// counters are additionally readable lock-free for metrics export.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "src/qos/cost.h"

namespace sdaf::qos {

// Budget knobs; 0 = unlimited for every field.
struct Budgets {
  std::uint64_t max_channel_bytes = 0;  // across all admitted streams
  std::uint64_t max_channel_slots = 0;
  std::uint64_t max_nodes = 0;          // total nodes on the pool
  std::uint64_t max_tenants = 0;        // distinct tenants with live streams
  std::uint64_t max_streams_per_tenant = 0;
  double max_dummy_ratio = 0.0;  // per-stream predicted overhead cap
};

// Why an open was refused, plus what the cost model predicted for it --
// surfaced verbatim through Session::open and the wire Error frame.
struct Rejection {
  std::string reason;
  TenantCost predicted;
};

class Admission {
 public:
  Admission() = default;
  explicit Admission(Budgets budgets) : budgets_(budgets) {}

  // Reserves `cost` for `tenant` and returns nullopt, or returns the
  // rejection without reserving anything. A successful admit must be paired
  // with release(tenant, cost) when the stream retires.
  [[nodiscard]] std::optional<Rejection> admit(const std::string& tenant,
                                               const TenantCost& cost);
  void release(const std::string& tenant, const TenantCost& cost);

  // Current reservations (exact under the lock).
  struct Usage {
    std::uint64_t channel_slots = 0;
    std::uint64_t channel_bytes = 0;
    std::uint64_t nodes = 0;
    std::uint64_t tenants = 0;
    std::uint64_t streams = 0;
  };
  [[nodiscard]] Usage usage() const;
  [[nodiscard]] const Budgets& budgets() const { return budgets_; }

  // Lifetime counters for metrics export (sdaf_admission_*_total).
  [[nodiscard]] std::uint64_t admitted_total() const {
    return admitted_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t rejected_total() const {
    return rejected_.load(std::memory_order_relaxed);
  }

 private:
  Budgets budgets_;
  mutable std::mutex mu_;
  Usage usage_;
  // Live stream count per tenant; an entry vanishes at zero so max_tenants
  // counts tenants with at least one admitted stream.
  std::unordered_map<std::string, std::uint64_t> per_tenant_;
  std::atomic<std::uint64_t> admitted_{0};
  std::atomic<std::uint64_t> rejected_{0};
};

}  // namespace sdaf::qos
