#include "src/qos/admission.h"

#include <cstdio>

namespace sdaf::qos {

namespace {

std::string over(const char* what, std::uint64_t want, std::uint64_t used,
                 std::uint64_t budget) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "%s budget exceeded: need %llu with %llu reserved of %llu",
                what, static_cast<unsigned long long>(want),
                static_cast<unsigned long long>(used),
                static_cast<unsigned long long>(budget));
  return buf;
}

}  // namespace

std::optional<Rejection> Admission::admit(const std::string& tenant,
                                          const TenantCost& cost) {
  std::lock_guard lock(mu_);
  std::string reason;
  const auto it = per_tenant_.find(tenant);
  const std::uint64_t tenant_streams = it != per_tenant_.end() ? it->second : 0;
  if (budgets_.max_channel_bytes != 0 &&
      usage_.channel_bytes + cost.channel_bytes > budgets_.max_channel_bytes) {
    reason = over("channel_bytes", cost.channel_bytes, usage_.channel_bytes,
                  budgets_.max_channel_bytes);
  } else if (budgets_.max_channel_slots != 0 &&
             usage_.channel_slots + cost.channel_slots >
                 budgets_.max_channel_slots) {
    reason = over("channel_slots", cost.channel_slots, usage_.channel_slots,
                  budgets_.max_channel_slots);
  } else if (budgets_.max_nodes != 0 &&
             usage_.nodes + cost.nodes > budgets_.max_nodes) {
    reason = over("nodes", cost.nodes, usage_.nodes, budgets_.max_nodes);
  } else if (budgets_.max_tenants != 0 && tenant_streams == 0 &&
             usage_.tenants + 1 > budgets_.max_tenants) {
    reason = over("tenants", 1, usage_.tenants, budgets_.max_tenants);
  } else if (budgets_.max_streams_per_tenant != 0 &&
             tenant_streams + 1 > budgets_.max_streams_per_tenant) {
    reason = over("streams_per_tenant", 1, tenant_streams,
                  budgets_.max_streams_per_tenant);
  } else if (budgets_.max_dummy_ratio > 0.0 &&
             cost.dummy_overhead_ratio > budgets_.max_dummy_ratio) {
    char buf[120];
    std::snprintf(buf, sizeof(buf),
                  "dummy_ratio budget exceeded: predicted %.4f > cap %.4f",
                  cost.dummy_overhead_ratio, budgets_.max_dummy_ratio);
    reason = buf;
  }
  if (!reason.empty()) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return Rejection{std::move(reason), cost};
  }
  usage_.channel_slots += cost.channel_slots;
  usage_.channel_bytes += cost.channel_bytes;
  usage_.nodes += cost.nodes;
  usage_.streams += 1;
  if (tenant_streams == 0) usage_.tenants += 1;
  per_tenant_[tenant] = tenant_streams + 1;
  admitted_.fetch_add(1, std::memory_order_relaxed);
  return std::nullopt;
}

void Admission::release(const std::string& tenant, const TenantCost& cost) {
  std::lock_guard lock(mu_);
  usage_.channel_slots -= cost.channel_slots;
  usage_.channel_bytes -= cost.channel_bytes;
  usage_.nodes -= cost.nodes;
  usage_.streams -= 1;
  const auto it = per_tenant_.find(tenant);
  if (it != per_tenant_.end() && --it->second == 0) {
    per_tenant_.erase(it);
    usage_.tenants -= 1;
  }
}

Admission::Usage Admission::usage() const {
  std::lock_guard lock(mu_);
  return usage_;
}

}  // namespace sdaf::qos
