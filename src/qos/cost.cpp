#include "src/qos/cost.h"

#include <cstdio>

#include "src/runtime/message.h"
#include "src/runtime/wrapper.h"

namespace sdaf::qos {

TenantCost estimate(const StreamGraph& g,
                    const std::vector<std::int64_t>& intervals) {
  TenantCost cost;
  cost.nodes = g.node_count();
  double inv_sum = 0.0;
  std::size_t finite = 0;
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    const std::int64_t slots = g.edge(e).buffer;
    cost.channel_slots += slots > 0 ? static_cast<std::uint64_t>(slots) : 0;
    if (e < intervals.size()) {
      const std::int64_t t = intervals[e];
      if (t > 0 && t != runtime::kInfiniteInterval &&
          t != core::kNoDummyInterval) {
        inv_sum += 1.0 / static_cast<double>(t);
        ++finite;
      }
    }
  }
  cost.channel_bytes = cost.channel_slots * sizeof(runtime::Message);
  if (finite > 0)
    cost.dummy_overhead_ratio = inv_sum / static_cast<double>(finite);
  return cost;
}

TenantCost estimate(const StreamGraph& g, const core::CompileResult& compiled) {
  return estimate(g, compiled.integer_intervals(core::Rounding::Floor));
}

std::string to_string(const TenantCost& cost) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "slots=%llu bytes=%llu nodes=%llu dummy_ratio=%.4f",
                static_cast<unsigned long long>(cost.channel_slots),
                static_cast<unsigned long long>(cost.channel_bytes),
                static_cast<unsigned long long>(cost.nodes),
                cost.dummy_overhead_ratio);
  return buf;
}

}  // namespace sdaf::qos
