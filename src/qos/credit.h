// sdaf::qos -- per-tenant in-flight credit gauges: the backpressure half of
// multi-tenant isolation. A CreditGauge bounds how many data items one
// tenant may have in flight (pushed into a feed and not yet consumed by its
// source node), so `InputPort::push` / `try_push_for` park on tenant
// credits *before* channel space -- a saturating tenant exhausts its own
// credit window and stops generating worker wakes, instead of filling every
// channel it can reach while an interactive co-tenant queues behind it.
//
// The acquire side is a lock-free CAS against the in-flight counter; the
// release side (the feed channel's consumer, via BoundedChannel's drain
// hook) is a fetch_sub followed by the runtime's standard wake-elision
// publish: seq_cst fence, then EventWord::bump_if_waiters. Waiters follow
// the protocol used everywhere else (capture -> register, seq_cst RMW ->
// re-check -> park on the captured version), so a release is never missed
// by a parked pusher -- "never falsely empty for a parked peer".
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/runtime/parking_lot.h"

namespace sdaf::qos {

class CreditGauge {
 public:
  // limit 0 = unlimited (every acquire succeeds, releases are no-ops).
  explicit CreditGauge(std::uint64_t limit) : limit_(limit) {}

  CreditGauge(const CreditGauge&) = delete;
  CreditGauge& operator=(const CreditGauge&) = delete;

  [[nodiscard]] bool unlimited() const { return limit_ == 0; }
  [[nodiscard]] std::uint64_t limit() const { return limit_; }
  [[nodiscard]] std::uint64_t in_flight() const {
    return in_flight_.load(std::memory_order_acquire);
  }

  // Acquires n credits iff all fit under the limit (all-or-nothing).
  [[nodiscard]] bool try_acquire(std::uint64_t n) {
    if (unlimited() || n == 0) return true;
    std::uint64_t cur = in_flight_.load(std::memory_order_relaxed);
    for (;;) {
      if (cur + n > limit_) return false;
      if (in_flight_.compare_exchange_weak(cur, cur + n,
                                           std::memory_order_acq_rel,
                                           std::memory_order_relaxed))
        return true;
    }
  }

  // Acquires as many of n as fit (possibly 0) and returns the count.
  [[nodiscard]] std::uint64_t try_acquire_upto(std::uint64_t n) {
    if (unlimited()) return n;
    std::uint64_t cur = in_flight_.load(std::memory_order_relaxed);
    for (;;) {
      const std::uint64_t room = cur < limit_ ? limit_ - cur : 0;
      const std::uint64_t take = n < room ? n : room;
      if (take == 0) return 0;
      if (in_flight_.compare_exchange_weak(cur, cur + take,
                                           std::memory_order_acq_rel,
                                           std::memory_order_relaxed))
        return take;
    }
  }

  // Returns n credits and wakes parked acquirers. The fence-then-elided-
  // bump pairs with the waiter's seq_cst registration (see EventWord).
  void release(std::uint64_t n) {
    if (unlimited() || n == 0) return;
    in_flight_.fetch_sub(n, std::memory_order_release);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    event_.bump_if_waiters();
  }

  // The parkable word for blocked acquirers (wake-elision protocol).
  [[nodiscard]] runtime::EventWord& event() { return event_; }

 private:
  const std::uint64_t limit_;
  std::atomic<std::uint64_t> in_flight_{0};
  runtime::EventWord event_;
};

// Interns one CreditGauge per tenant name with stable addresses, so a
// server hands every stream of a tenant the same gauge and their in-flight
// items share one window. Gauges live as long as the table.
class TenantTable {
 public:
  // Default credit limit applied to newly seen tenants; 0 = unlimited.
  explicit TenantTable(std::uint64_t default_limit = 0)
      : default_limit_(default_limit) {}

  [[nodiscard]] CreditGauge* gauge(const std::string& tenant) {
    std::lock_guard lock(mu_);
    auto& slot = gauges_[tenant];
    if (slot == nullptr) slot = std::make_unique<CreditGauge>(default_limit_);
    return slot.get();
  }

  struct Entry {
    std::string tenant;
    std::uint64_t limit = 0;
    std::uint64_t in_flight = 0;
  };
  [[nodiscard]] std::vector<Entry> entries() const {
    std::lock_guard lock(mu_);
    std::vector<Entry> out;
    out.reserve(gauges_.size());
    for (const auto& [name, g] : gauges_)
      out.push_back({name, g->limit(), g->in_flight()});
    return out;
  }

 private:
  const std::uint64_t default_limit_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, std::unique_ptr<CreditGauge>> gauges_;
};

}  // namespace sdaf::qos
