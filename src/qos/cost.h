// sdaf::qos -- the interval-aware tenant cost model. The paper's compile
// pass already certifies each graph's per-edge buffer bounds and dummy
// intervals, which means the runtime can *predict* what a tenant costs
// before accepting it: the channel memory its buffers reserve (whether or
// not traffic ever fills them) and the avoidance overhead its intervals
// imply (an edge with dummy interval T injects roughly one dummy per T
// sequence numbers when its producer filters). TenantCost packages those
// predictions for qos::Admission -- the admission decision is made from
// compile-time facts alone, no profiling run required.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/compile.h"
#include "src/graph/stream_graph.h"

namespace sdaf::qos {

// Predicted resource footprint of one stream/run of a graph.
struct TenantCost {
  // Sum of per-edge buffer bounds -- the logical message slots the
  // avoidance analysis certified (the paper's channel lengths).
  std::uint64_t channel_slots = 0;
  // channel_slots * sizeof(runtime::Message): the bytes those slots pin.
  std::uint64_t channel_bytes = 0;
  // Node count: each node is one parked task on the shared pool.
  std::uint64_t nodes = 0;
  // Predicted dummy overhead: mean over finite-interval edges of 1/T --
  // the worst-case fraction of traffic the avoidance protocol adds when
  // every filter hits its interval deadline. 0 when no edge carries a
  // finite interval (avoidance off or no cycles).
  double dummy_overhead_ratio = 0.0;
};

// Estimate from a graph plus per-edge integer intervals
// (runtime::kInfiniteInterval / core::kNoDummyInterval = none; an empty
// vector means all infinite).
[[nodiscard]] TenantCost estimate(const StreamGraph& g,
                                  const std::vector<std::int64_t>& intervals);

// Estimate straight from a compile result (Rounding::Floor thresholds).
[[nodiscard]] TenantCost estimate(const StreamGraph& g,
                                  const core::CompileResult& compiled);

// One-line human rendering for rejection messages and logs.
[[nodiscard]] std::string to_string(const TenantCost& cost);

}  // namespace sdaf::qos
