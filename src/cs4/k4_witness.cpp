#include "src/cs4/k4_witness.h"

#include <set>

#include "src/support/contracts.h"

namespace sdaf {

std::optional<K4Witness> find_k4_subdivision(const StreamGraph& g) {
  // Undirected adjacency as multisets: cheap parallel-edge detection and
  // removal. Graphs here are skeletons or test graphs, so simplicity beats
  // asymptotics.
  std::vector<std::multiset<NodeId>> adj(g.node_count());
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    const auto& ed = g.edge(e);
    adj[ed.from].insert(ed.to);
    adj[ed.to].insert(ed.from);
  }

  const auto erase_one = [&](NodeId a, NodeId b) {
    const auto it = adj[a].find(b);
    SDAF_ASSERT(it != adj[a].end());
    adj[a].erase(it);
  };

  std::vector<NodeId> worklist;
  for (NodeId v = 0; v < g.node_count(); ++v) worklist.push_back(v);
  std::vector<bool> removed(g.node_count(), false);

  while (!worklist.empty()) {
    const NodeId v = worklist.back();
    worklist.pop_back();
    if (removed[v]) continue;

    // Parallel merge: duplicate neighbours collapse to one edge.
    for (auto it = adj[v].begin(); it != adj[v].end();) {
      auto next = std::next(it);
      if (next != adj[v].end() && *next == *it) {
        const NodeId w = *it;
        adj[v].erase(it);
        erase_one(w, v);
        worklist.push_back(v);
        worklist.push_back(w);
        it = adj[v].find(w);  // re-scan from the surviving copy
      } else {
        it = next;
      }
    }

    const std::size_t deg = adj[v].size();
    if (deg >= 3) continue;
    if (deg <= 1) {
      // Isolated or pendant vertices lie on no cycle: delete.
      if (deg == 1) {
        const NodeId w = *adj[v].begin();
        erase_one(w, v);
        worklist.push_back(w);
      }
      adj[v].clear();
      removed[v] = true;
      continue;
    }
    // Degree 2: suppress the vertex.
    const NodeId a = *adj[v].begin();
    const NodeId b = *std::next(adj[v].begin());
    erase_one(a, v);
    erase_one(b, v);
    adj[v].clear();
    removed[v] = true;
    if (a != b) {
      adj[a].insert(b);
      adj[b].insert(a);
    }
    // a == b: the two-cycle through v vanishes.
    worklist.push_back(a);
    worklist.push_back(b);
  }

  K4Witness witness;
  for (NodeId v = 0; v < g.node_count(); ++v)
    if (!removed[v] && !adj[v].empty()) witness.remainder_nodes.push_back(v);
  if (witness.remainder_nodes.empty()) return std::nullopt;
  // Stuck remainder: every surviving vertex has degree >= 3 and no parallel
  // edges, which guarantees a K4 subdivision.
  return witness;
}

}  // namespace sdaf
