#include "src/cs4/decompose.h"

#include <algorithm>

#include "src/cs4/nonprop_ladder.h"
#include "src/cs4/propagation_ladder.h"
#include "src/graph/undirected.h"
#include "src/graph/validate.h"
#include "src/intervals/nonprop_sp.h"
#include "src/intervals/propagation_sp.h"
#include "src/support/contracts.h"

namespace sdaf {

Cs4Analysis analyze_cs4(const StreamGraph& g) {
  Cs4Analysis out;
  const auto report = validate(g);
  out.two_terminal = report.two_terminal();
  if (!out.two_terminal) {
    out.reason = "not a two-terminal DAG:";
    for (const auto& p : report.problems) out.reason += " " + p + ";";
    return out;
  }

  out.skeleton = extract_skeleton(g, g.unique_source(), g.unique_sink());
  if (out.skeleton.is_single_sp()) {
    out.pure_sp = true;
    out.is_cs4 = true;
    out.bridge_edges.push_back(0);
    return out;
  }

  // Biconnected blocks of the skeleton are the serial-chain components:
  // single-edge blocks are contracted SP components (bridges), multi-edge
  // blocks must be SP-ladder skeletons.
  const auto blocks = biconnected_components(out.skeleton.graph);
  for (const auto& block : blocks) {
    if (block.size() == 1) {
      out.bridge_edges.push_back(block.front());
      continue;
    }
    // Terminals: the unique vertices with no in-edge / out-edge inside the
    // block.
    std::vector<std::size_t> indices(block.begin(), block.end());
    std::vector<NodeId> entries;
    std::vector<NodeId> exits;
    {
      std::vector<int> delta_in, delta_out;
      std::vector<NodeId> nodes;
      auto local = [&](NodeId n) {
        const auto it = std::find(nodes.begin(), nodes.end(), n);
        if (it != nodes.end())
          return static_cast<std::size_t>(it - nodes.begin());
        nodes.push_back(n);
        delta_in.push_back(0);
        delta_out.push_back(0);
        return nodes.size() - 1;
      };
      for (const EdgeId e : block) {
        const auto& ed = out.skeleton.graph.edge(e);
        ++delta_out[local(ed.from)];
        ++delta_in[local(ed.to)];
      }
      for (std::size_t i = 0; i < nodes.size(); ++i) {
        if (delta_in[i] == 0) entries.push_back(nodes[i]);
        if (delta_out[i] == 0) exits.push_back(nodes[i]);
      }
    }
    if (entries.size() != 1 || exits.size() != 1) {
      out.reason = "skeleton block lacks unique entry/exit terminals; graph "
                   "is not a serial composition of two-terminal components";
      return out;
    }
    auto rec = recognize_ladder(out.skeleton, indices, entries.front(),
                                exits.front());
    if (!rec.ladder.has_value()) {
      out.reason = std::move(rec.reason);
      return out;
    }
    out.ladders.push_back(std::move(*rec.ladder));
  }
  out.is_cs4 = true;
  return out;
}

IntervalMap cs4_propagation_intervals(const StreamGraph& g,
                                      const Cs4Analysis& analysis,
                                      LadderMethod method) {
  SDAF_EXPECTS(analysis.is_cs4);
  const Skeleton& skel = analysis.skeleton;

  // External (ladder-level) bound per skeleton component.
  std::vector<Rational> bounds(skel.edges.size(), Rational::infinity());
  for (const Ladder& ladder : analysis.ladders) {
    const auto lb = method == LadderMethod::Enumeration
                        ? ladder_component_bounds_enum(skel, ladder)
                        : ladder_component_bounds_recurrence(skel, ladder,
                                                             {});
    for (std::size_t i = 0; i < bounds.size(); ++i)
      bounds[i] = min(bounds[i], lb[i]);
  }

  IntervalMap out(g.edge_count());
  for (std::size_t i = 0; i < skel.edges.size(); ++i)
    propagation_setivals(skel.tree, skel.metrics, skel.edges[i].tree,
                         bounds[i], out);
  return out;
}

IntervalMap cs4_nonprop_intervals(const StreamGraph& g,
                                  const Cs4Analysis& analysis) {
  SDAF_EXPECTS(analysis.is_cs4);
  const Skeleton& skel = analysis.skeleton;
  const auto parents = skel.tree.parents();

  IntervalMap out(g.edge_count());
  // Cycles internal to each contracted component (Section IV.B per
  // component)...
  for (const auto& se : skel.edges)
    nonprop_internal(skel.tree, skel.metrics, parents, se.tree, out);
  // ...plus the ladder-level external cycles (Section VI.B).
  for (const Ladder& ladder : analysis.ladders)
    ladder_nonprop_external(skel, ladder, parents, out);
  return out;
}

}  // namespace sdaf
