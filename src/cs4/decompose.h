// CS4 analysis driver (Theorem V.7): a single-source, single-sink DAG is
// CS4 iff it is a serial composition of SP-DAGs and SP-ladders. The driver
// contracts the graph to its skeleton, splits the skeleton into biconnected
// blocks (= the serial chain), recognizes each multi-edge block as an
// SP-ladder, and exposes everything the interval engines need.
#pragma once

#include <string>
#include <vector>

#include "src/cs4/ladder.h"
#include "src/cs4/skeleton.h"
#include "src/graph/stream_graph.h"
#include "src/intervals/interval_map.h"

namespace sdaf {

struct Cs4Analysis {
  bool two_terminal = false;
  bool is_cs4 = false;
  bool pure_sp = false;  // the whole graph reduced to one super-edge
  std::string reason;    // why not CS4, when applicable

  Skeleton skeleton;
  std::vector<Ladder> ladders;            // one per multi-edge skeleton block
  std::vector<std::size_t> bridge_edges;  // skeleton edges outside any ladder
};

[[nodiscard]] Cs4Analysis analyze_cs4(const StreamGraph& g);

enum class LadderMethod {
  // Exact minimization over the ladder's skeleton cycles (reference).
  Enumeration,
  // The paper's O(|G|) Ls/Lk/Ld recurrences of Section VI.A, plus a fixup
  // for rungs sharing a source vertex (see DESIGN.md section 6).
  PaperRecurrence,
};

// Propagation-Algorithm intervals for a CS4 graph. Precondition:
// analysis.is_cs4.
[[nodiscard]] IntervalMap cs4_propagation_intervals(
    const StreamGraph& g, const Cs4Analysis& analysis,
    LadderMethod method = LadderMethod::Enumeration);

// Non-Propagation-Algorithm intervals (Section VI.B, O(|G|^3)).
[[nodiscard]] IntervalMap cs4_nonprop_intervals(const StreamGraph& g,
                                                const Cs4Analysis& analysis);

}  // namespace sdaf
