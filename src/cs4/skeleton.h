// Skeleton extraction: the bridge between Section IV (SP-DAGs) and
// Sections V-VI (CS4 / SP-ladders). Running the SP rewriting of
// spdag/recognizer to fixpoint contracts every maximal SP component into a
// single super-edge; what remains -- the *skeleton* -- is a small
// irreducible multigraph. For a CS4 graph the skeleton is a serial chain of
// SP-ladder skeletons (Theorem V.7): side segments, rungs and bridges, each
// carrying the decomposition tree of the SP component it contracted.
//
// The skeleton is materialized as a StreamGraph whose edge "buffers" are the
// contracted components' shortest buffer-weighted path lengths L(H), so
// buffer-weighted path arithmetic on the skeleton equals the paper's L
// arithmetic on the full graph.
#pragma once

#include <vector>

#include "src/graph/stream_graph.h"
#include "src/spdag/metrics.h"
#include "src/spdag/recognizer.h"
#include "src/spdag/sp_tree.h"

namespace sdaf {

struct Skeleton {
  // Arena of all component trees created during reduction; the trees of the
  // surviving super-edges are the roots referenced by `edges[i].tree`.
  SpTree tree;
  SpMetrics metrics;  // L/h per tree node (indexed like `tree`)
  std::vector<SuperEdge> edges;  // endpoints in *original* node ids

  // The skeleton as a graph in its own right. Edge i of `graph`
  // corresponds to `edges[i]`; its buffer is L(component).
  StreamGraph graph;
  std::vector<NodeId> orig_node;  // skeleton node -> original node
  std::vector<NodeId> to_skel;    // original node -> skeleton node (kNoNode)

  [[nodiscard]] bool is_single_sp() const { return edges.size() == 1; }
};

// Reduce g (two-terminal, acyclic) and package the remainder. Also valid
// when g is SP: the skeleton is then a single super-edge.
[[nodiscard]] Skeleton extract_skeleton(const StreamGraph& g, NodeId source,
                                        NodeId sink);

}  // namespace sdaf
