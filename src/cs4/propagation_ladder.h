// Propagation-Algorithm interval bounds contributed by the *external*
// cycles of one SP-ladder (Section VI.A). Both engines return, per skeleton
// component, the tightest bound V any ladder cycle imposes on edges leaving
// that component's source; the CS4 driver then threads V through each
// component with SETIVALS.
#pragma once

#include <vector>

#include "src/cs4/ladder.h"
#include "src/cs4/skeleton.h"
#include "src/support/rational.h"

namespace sdaf {

// Exact: minimizes over the ladder's (polynomially many) skeleton cycles,
// retained from recognition. O(k^2) for k rungs.
[[nodiscard]] std::vector<Rational> ladder_component_bounds_enum(
    const Skeleton& skel, const Ladder& ladder);

struct RecurrenceOptions {
  // The paper's recurrences miss cycles pairing two cross-links that share
  // a source vertex (Fig. 6 allows shared endpoints but Section VI.A's
  // update rules consult only one cross-link per virtual position). The
  // fixup adds those pairwise constraints; disable for a paper-literal run.
  bool shared_endpoint_fixup = true;
};

// The paper's O(|G|) bottom-up Ls/Lk/Ld recurrences over virtual per-rung
// positions. Exact on ladders without shared rung endpoints; with the
// fixup enabled it is safe (never looser than exact) everywhere and may be
// tighter than exact only in degenerate shared-endpoint stop cases.
[[nodiscard]] std::vector<Rational> ladder_component_bounds_recurrence(
    const Skeleton& skel, const Ladder& ladder, RecurrenceOptions options);

}  // namespace sdaf
