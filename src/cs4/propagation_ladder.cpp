#include "src/cs4/propagation_ladder.h"

#include <algorithm>

#include "src/graph/cycles.h"
#include "src/support/contracts.h"

namespace sdaf {

std::vector<Rational> ladder_component_bounds_enum(const Skeleton& skel,
                                                   const Ladder& ladder) {
  std::vector<Rational> bounds(skel.edges.size(), Rational::infinity());
  for (const UCycle& cycle : ladder.cycles) {
    const auto runs = directed_runs(skel.graph, cycle);
    SDAF_ASSERT(runs.size() == 2);  // guaranteed CS4 by recognition
    for (std::size_t i = 0; i < 2; ++i) {
      // Only the run's first component leaves the cycle's source; the
      // other run's total length (skeleton buffers are component L values)
      // is the paper's L(C, e) for its source-out edges.
      const EdgeId first = runs[i].edges.front();
      bounds[first] =
          min(bounds[first], Rational(runs[1 - i].buffer_length));
    }
  }
  return bounds;
}

namespace {

// The paper's virtual indexing: rungs sorted by (left_pos, right_pos),
// which non-crossing makes simultaneously sorted on both sides; a vertex
// shared by m rungs occupies m consecutive virtual slots separated by
// zero-length segments (Fig. 6).
struct LadderArrays {
  std::size_t k = 0;                  // number of rungs
  std::vector<std::size_t> u, v;      // side positions per rung
  std::vector<bool> l2r;              // direction per rung
  std::vector<std::int64_t> rung_len; // L of the rung component
  std::vector<std::int64_t> lpre, rpre;  // prefix buffer sums along sides
  std::size_t pl = 0, pr = 0;         // exit positions (left/right size - 1)

  std::int64_t left_between(std::size_t a, std::size_t b) const {
    return lpre[b] - lpre[a];
  }
  std::int64_t right_between(std::size_t a, std::size_t b) const {
    return rpre[b] - rpre[a];
  }
  // Walk cost from rung i's slot to slot i+1 (or to the exit) on each side.
  std::int64_t walk_left(std::size_t i) const {
    return left_between(u[i], i + 1 < k ? u[i + 1] : pl);
  }
  std::int64_t walk_right(std::size_t i) const {
    return right_between(v[i], i + 1 < k ? v[i + 1] : pr);
  }
};

LadderArrays make_arrays(const Skeleton& skel, const Ladder& ladder) {
  LadderArrays a;
  a.k = ladder.rungs.size();
  a.pl = ladder.left.size() - 1;
  a.pr = ladder.right.size() - 1;
  for (const LadderRung& r : ladder.rungs) {
    a.u.push_back(r.left_pos);
    a.v.push_back(r.right_pos);
    a.l2r.push_back(r.left_to_right);
    a.rung_len.push_back(skel.graph.edge(static_cast<EdgeId>(r.skel_edge))
                             .buffer);
  }
  a.lpre.resize(ladder.left.size());
  a.lpre[0] = 0;
  for (std::size_t i = 0; i < ladder.left_seg.size(); ++i)
    a.lpre[i + 1] =
        a.lpre[i] +
        skel.graph.edge(static_cast<EdgeId>(ladder.left_seg[i])).buffer;
  a.rpre.resize(ladder.right.size());
  a.rpre[0] = 0;
  for (std::size_t i = 0; i < ladder.right_seg.size(); ++i)
    a.rpre[i + 1] =
        a.rpre[i] +
        skel.graph.edge(static_cast<EdgeId>(ladder.right_seg[i])).buffer;
  return a;
}

}  // namespace

std::vector<Rational> ladder_component_bounds_recurrence(
    const Skeleton& skel, const Ladder& ladder, RecurrenceOptions options) {
  std::vector<Rational> bounds(skel.edges.size(), Rational::infinity());
  const LadderArrays a = make_arrays(skel, ladder);
  const std::size_t k = a.k;
  SDAF_EXPECTS(k >= 1);

  // desc_l[j] = cheapest completion of a path descending the LEFT side,
  // positioned at rung j's left vertex with rungs < j already passed:
  // stop where an opposite-direction rung arrives (the partner path can
  // close the cycle there), cross a same-direction rung and stop, or walk
  // on. desc_l[k] = 0: the exit Y is always a sink. Mirrors the paper's
  // Ls/Ld tails.
  std::vector<std::int64_t> desc_l(k + 1), desc_r(k + 1);
  desc_l[k] = 0;
  desc_r[k] = 0;
  for (std::size_t jj = k; jj-- > 0;) {
    const std::int64_t rung_opt_l = a.l2r[jj] ? a.rung_len[jj] : 0;
    const std::int64_t rung_opt_r = a.l2r[jj] ? 0 : a.rung_len[jj];
    desc_l[jj] = std::min(rung_opt_l, a.walk_left(jj) + desc_l[jj + 1]);
    desc_r[jj] = std::min(rung_opt_r, a.walk_right(jj) + desc_r[jj + 1]);
  }

  const auto update = [&](std::size_t skel_edge, std::int64_t value) {
    bounds[skel_edge] = min(bounds[skel_edge], Rational(value));
  };

  // Entry terminal: cycles sourced at X pair the two side descents
  // ("[e] = min([e], L(v0)) if e lies in S0, and symmetrically").
  update(ladder.left_seg.front(),
         a.right_between(0, a.v[0]) + desc_r[0]);
  update(ladder.right_seg.front(),
         a.left_between(0, a.u[0]) + desc_l[0]);

  // Internal sources: rung i's own edges are bounded by the same-side
  // descent that skips it (Ls(u_i)); the segment leaving its source vertex
  // is bounded by crossing the rung and descending the far side (Lk(u_i)).
  for (std::size_t i = 0; i < k; ++i) {
    if (a.l2r[i]) {
      update(ladder.rungs[i].skel_edge, a.walk_left(i) + desc_l[i + 1]);
      const std::int64_t via_rung =
          a.rung_len[i] + a.walk_right(i) + desc_r[i + 1];
      if (options.shared_endpoint_fixup) {
        // Every segment leaving u_i benefits; without the fixup only the
        // paper's "last virtual slot at the vertex" does, which is the
        // unique slot whose S_i is the real segment.
        update(ladder.left_seg[a.u[i]], via_rung);
      } else if (i + 1 == k || a.u[i + 1] != a.u[i]) {
        update(ladder.left_seg[a.u[i]], via_rung);
      }
    } else {
      update(ladder.rungs[i].skel_edge, a.walk_right(i) + desc_r[i + 1]);
      const std::int64_t via_rung =
          a.rung_len[i] + a.walk_left(i) + desc_l[i + 1];
      if (options.shared_endpoint_fixup) {
        update(ladder.right_seg[a.v[i]], via_rung);
      } else if (i + 1 == k || a.v[i + 1] != a.v[i]) {
        update(ladder.right_seg[a.v[i]], via_rung);
      }
    }
  }

  if (options.shared_endpoint_fixup) {
    // Cycles pairing two same-direction rungs that share a source vertex:
    // the later rung (larger far-side position) is bounded by the earlier
    // rung plus the far-side walk between their landings. The opposite
    // direction (earlier bounded by later) is already inside desc_* via the
    // zero-length virtual segment.
    for (std::size_t i = 0; i < k; ++i) {
      for (std::size_t j = i + 1; j < k; ++j) {
        if (a.l2r[i] && a.l2r[j] && a.u[i] == a.u[j]) {
          update(ladder.rungs[j].skel_edge,
                 a.rung_len[i] + a.right_between(a.v[i], a.v[j]));
        } else if (!a.l2r[i] && !a.l2r[j] && a.v[i] == a.v[j]) {
          update(ladder.rungs[j].skel_edge,
                 a.rung_len[i] + a.left_between(a.u[i], a.u[j]));
        }
      }
    }
  }
  return bounds;
}

}  // namespace sdaf
