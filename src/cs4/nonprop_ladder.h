// Non-Propagation intervals contributed by the external cycles of one
// SP-ladder (Section VI.B). For each ladder cycle C and each edge e on it,
//   [e] <= L(opposite side of C) / (h(side of e) - h(H) + h(H, e)),
// where H is e's contracted component, h(side) sums the component-level
// longest-hop metrics along e's side, and h(H, e) is the longest through-
// path inside H. Enumerating cycles realizes the paper's minimization over
// source / potential-sink pairs; with O(k^2) cycles and O(|G|) edge work
// per cycle this is the paper's O(|G|^3) bound.
#pragma once

#include <vector>

#include "src/cs4/ladder.h"
#include "src/cs4/skeleton.h"
#include "src/intervals/interval_map.h"

namespace sdaf {

void ladder_nonprop_external(const Skeleton& skel, const Ladder& ladder,
                             const std::vector<SpTree::Index>& parents,
                             IntervalMap& out);

}  // namespace sdaf
