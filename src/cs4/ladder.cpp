#include "src/cs4/ladder.h"

#include <algorithm>
#include <tuple>

#include "src/graph/subgraph.h"
#include "src/support/contracts.h"

namespace sdaf {

namespace {

// Two vertex-disjoint directed paths from entry to exit via unit-capacity
// vertex-splitting flow with BFS augmentation. Returns the two paths as
// edge sequences, or empty when max-flow < 2.
struct DisjointPaths {
  bool found = false;
  std::vector<EdgeId> first;   // path edges in order
  std::vector<EdgeId> second;
};

DisjointPaths two_disjoint_paths(const StreamGraph& g, NodeId entry,
                                 NodeId exit) {
  // Arc list with residuals. Node v splits into in(2v) -> out(2v+1).
  struct Arc {
    std::uint32_t to;
    std::int32_t cap;
    std::uint32_t rev;       // index of the reverse arc in adj[to]
    EdgeId edge = kNoEdge;   // original edge for forward graph arcs
  };
  const auto in_node = [](NodeId v) { return 2 * v; };
  const auto out_node = [](NodeId v) { return 2 * v + 1; };
  std::vector<std::vector<Arc>> adj(2 * g.node_count());
  const auto add_arc = [&](std::uint32_t from, std::uint32_t to,
                           std::int32_t cap, EdgeId edge) {
    adj[from].push_back(Arc{to, cap, static_cast<std::uint32_t>(
                                         adj[to].size()),
                            edge});
    adj[to].push_back(Arc{from, 0, static_cast<std::uint32_t>(
                                       adj[from].size() - 1),
                          kNoEdge});
  };
  for (NodeId v = 0; v < g.node_count(); ++v)
    add_arc(in_node(v), out_node(v), (v == entry || v == exit) ? 2 : 1,
            kNoEdge);
  for (EdgeId e = 0; e < g.edge_count(); ++e)
    add_arc(out_node(g.edge(e).from), in_node(g.edge(e).to), 1, e);

  const std::uint32_t source = in_node(entry);
  const std::uint32_t target = out_node(exit);
  int flow = 0;
  for (int round = 0; round < 2; ++round) {
    // BFS for an augmenting path.
    std::vector<std::pair<std::uint32_t, std::uint32_t>> parent(
        adj.size(), {UINT32_MAX, UINT32_MAX});  // (node, arc index)
    std::vector<std::uint32_t> queue{source};
    parent[source] = {source, UINT32_MAX};
    for (std::size_t qi = 0; qi < queue.size(); ++qi) {
      const std::uint32_t v = queue[qi];
      for (std::uint32_t ai = 0; ai < adj[v].size(); ++ai) {
        const Arc& a = adj[v][ai];
        if (a.cap <= 0 || parent[a.to].first != UINT32_MAX) continue;
        parent[a.to] = {v, ai};
        queue.push_back(a.to);
      }
    }
    if (parent[target].first == UINT32_MAX) break;
    for (std::uint32_t v = target; v != source;) {
      const auto [pv, ai] = parent[v];
      Arc& a = adj[pv][ai];
      a.cap -= 1;
      adj[a.to][a.rev].cap += 1;
      v = pv;
    }
    ++flow;
  }

  DisjointPaths out;
  if (flow < 2) return out;
  // Trace the two paths along saturated graph arcs.
  for (std::vector<EdgeId>* path : {&out.first, &out.second}) {
    NodeId cur = entry;
    while (cur != exit) {
      EdgeId taken = kNoEdge;
      for (Arc& a : adj[out_node(cur)]) {
        if (a.edge == kNoEdge || a.cap != 0) continue;  // unsaturated
        taken = a.edge;
        a.cap = 1;  // consume so the second trace takes the other path
        break;
      }
      SDAF_ASSERT(taken != kNoEdge);
      path->push_back(taken);
      cur = g.edge(taken).to;
    }
  }
  out.found = true;
  return out;
}

// Builds the undirected cycle formed by two directed paths sharing only
// their endpoints: path1 traversed forward, path2 walked back against its
// direction.
UCycle join_paths(const std::vector<EdgeId>& path1,
                  const std::vector<EdgeId>& path2) {
  UCycle cycle;
  cycle.reserve(path1.size() + path2.size());
  for (const EdgeId e : path1) cycle.push_back(CycleStep{e, true});
  for (auto it = path2.rbegin(); it != path2.rend(); ++it)
    cycle.push_back(CycleStep{*it, false});
  return cycle;
}

// Direct construction of all undirected simple cycles of a valid ladder:
// the outer cycle, two closures per rung (around the entry, around the
// exit), and one cycle per usable rung pair. A cycle of a non-crossing
// ladder cannot involve three or more rungs.
std::vector<UCycle> construct_cycles(const Ladder& ladder) {
  const auto& rungs = ladder.rungs;
  const auto lsegs = [&](std::size_t from, std::size_t to) {
    return std::vector<EdgeId>(ladder.left_seg.begin() +
                                   static_cast<std::ptrdiff_t>(from),
                               ladder.left_seg.begin() +
                                   static_cast<std::ptrdiff_t>(to));
  };
  const auto rsegs = [&](std::size_t from, std::size_t to) {
    return std::vector<EdgeId>(ladder.right_seg.begin() +
                                   static_cast<std::ptrdiff_t>(from),
                               ladder.right_seg.begin() +
                                   static_cast<std::ptrdiff_t>(to));
  };
  const auto cat = [](std::vector<EdgeId> a, EdgeId e,
                      std::vector<EdgeId> b = {}) {
    a.push_back(e);
    a.insert(a.end(), b.begin(), b.end());
    return a;
  };

  std::vector<UCycle> cycles;
  // Outer cycle.
  cycles.push_back(join_paths(lsegs(0, ladder.left_seg.size()),
                              rsegs(0, ladder.right_seg.size())));

  for (const LadderRung& r : rungs) {
    const EdgeId k = static_cast<EdgeId>(r.skel_edge);
    if (r.left_to_right) {
      // Entry closure: X..L[la] + K  vs  X..R[ra]; sink R[ra].
      cycles.push_back(
          join_paths(cat(lsegs(0, r.left_pos), k), rsegs(0, r.right_pos)));
      // Exit closure: K + R[ra]..Y  vs  L[la]..Y; source L[la].
      cycles.push_back(join_paths(
          cat({}, k, rsegs(r.right_pos, ladder.right_seg.size())),
          lsegs(r.left_pos, ladder.left_seg.size())));
    } else {
      cycles.push_back(
          join_paths(cat(rsegs(0, r.right_pos), k), lsegs(0, r.left_pos)));
      cycles.push_back(join_paths(
          cat({}, k, lsegs(r.left_pos, ladder.left_seg.size())),
          rsegs(r.right_pos, ladder.right_seg.size())));
    }
  }

  // Rung pairs (sorted, so la1 <= la2 and ra1 <= ra2).
  for (std::size_t i = 0; i < rungs.size(); ++i) {
    for (std::size_t j = i + 1; j < rungs.size(); ++j) {
      const LadderRung& a = rungs[i];
      const LadderRung& b = rungs[j];
      const EdgeId ka = static_cast<EdgeId>(a.skel_edge);
      const EdgeId kb = static_cast<EdgeId>(b.skel_edge);
      SDAF_ASSERT(a.left_pos <= b.left_pos && a.right_pos <= b.right_pos);
      if (a.left_to_right && b.left_to_right) {
        SDAF_ASSERT(a.left_pos < b.left_pos || a.right_pos < b.right_pos);
        // L[la1] -K1-> R .. R[ra2]  vs  L[la1] .. L[la2] -K2-> R[ra2].
        cycles.push_back(
            join_paths(cat({}, ka, rsegs(a.right_pos, b.right_pos)),
                       cat(lsegs(a.left_pos, b.left_pos), kb)));
      } else if (!a.left_to_right && !b.left_to_right) {
        // R[ra1] -K1-> L .. L[la2]  vs  R[ra1] .. R[ra2] -K2-> L[la2].
        cycles.push_back(
            join_paths(cat({}, ka, lsegs(a.left_pos, b.left_pos)),
                       cat(rsegs(a.right_pos, b.right_pos), kb)));
      } else if (a.left_to_right && !b.left_to_right) {
        // Source L[la1], sink L[la2]: through K1, right side, K2 back.
        SDAF_ASSERT(a.left_pos < b.left_pos);  // equality = directed cycle
        cycles.push_back(join_paths(
            cat(cat({}, ka, rsegs(a.right_pos, b.right_pos)), kb),
            lsegs(a.left_pos, b.left_pos)));
      } else {
        // r2l then l2r: source R[ra1], sink R[ra2] via the left side.
        SDAF_ASSERT(a.right_pos < b.right_pos);  // equality = directed cycle
        cycles.push_back(join_paths(
            cat(cat({}, ka, lsegs(a.left_pos, b.left_pos)), kb),
            rsegs(a.right_pos, b.right_pos)));
      }
    }
  }
  return cycles;
}

// Node path visited by a directed edge sequence starting at `from`.
std::vector<NodeId> path_nodes(const StreamGraph& g, NodeId from,
                               const std::vector<EdgeId>& edges) {
  std::vector<NodeId> nodes{from};
  for (const EdgeId e : edges) {
    SDAF_ASSERT(g.edge(e).from == nodes.back());
    nodes.push_back(g.edge(e).to);
  }
  return nodes;
}

}  // namespace

LadderRecognition recognize_ladder(const Skeleton& skel,
                                   const std::vector<std::size_t>& block_edges,
                                   NodeId entry, NodeId exit) {
  LadderRecognition out;
  SDAF_EXPECTS(block_edges.size() >= 2);

  std::vector<EdgeId> sub_edges;
  sub_edges.reserve(block_edges.size());
  for (const std::size_t i : block_edges)
    sub_edges.push_back(static_cast<EdgeId>(i));
  const Subgraph block = extract_subgraph(skel.graph, sub_edges);
  SDAF_EXPECTS(block.to_sub[entry] != kNoNode);
  SDAF_EXPECTS(block.to_sub[exit] != kNoNode);
  const NodeId sub_entry = block.to_sub[entry];
  const NodeId sub_exit = block.to_sub[exit];

  const DisjointPaths paths =
      two_disjoint_paths(block.graph, sub_entry, sub_exit);
  if (!paths.found) {
    out.reason = "skeleton block has no pair of disjoint terminal-to-"
                 "terminal paths (no outer cycle); not an SP-ladder";
    return out;
  }

  Ladder ladder;
  ladder.entry = entry;
  ladder.exit = exit;

  constexpr std::uint8_t kNoSide = 2;
  std::vector<std::uint8_t> side(block.graph.node_count(), kNoSide);
  std::vector<std::size_t> pos(block.graph.node_count(), 0);
  std::vector<bool> on_outer(block.graph.edge_count(), false);

  const auto trace_side = [&](const std::vector<EdgeId>& path,
                              std::uint8_t which,
                              std::vector<NodeId>& side_nodes,
                              std::vector<std::size_t>& segs) {
    const auto nodes = path_nodes(block.graph, sub_entry, path);
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      side_nodes.push_back(block.orig_node[nodes[i]]);  // skeleton node id
      side[nodes[i]] = which;
      pos[nodes[i]] = i;
    }
    for (const EdgeId e : path) {
      segs.push_back(block.orig_edge[e]);  // skeleton edge index
      on_outer[e] = true;
    }
  };
  trace_side(paths.first, 0, ladder.left, ladder.left_seg);
  trace_side(paths.second, 1, ladder.right, ladder.right_seg);
  // Terminals belong to both sides; exclude them from rung side checks.
  side[sub_entry] = kNoSide;
  side[sub_exit] = kNoSide;

  if (ladder.left.size() + ladder.right.size() - 2 !=
      block.graph.node_count()) {
    out.reason = "skeleton block has a vertex off the outer cycle; not an "
                 "SP-ladder";
    return out;
  }

  // Remaining super-edges are rungs.
  for (EdgeId e = 0; e < block.graph.edge_count(); ++e) {
    if (on_outer[e]) continue;
    const auto& ed = block.graph.edge(e);
    if (ed.from == sub_entry || ed.to == sub_entry || ed.from == sub_exit ||
        ed.to == sub_exit) {
      out.reason = "chord touching a terminal survived SP reduction; block "
                   "is not an SP-ladder";
      return out;
    }
    if (side[ed.from] == kNoSide || side[ed.to] == kNoSide ||
        side[ed.from] == side[ed.to]) {
      out.reason = "chord connecting vertices of one side survived SP "
                   "reduction; block is not an SP-ladder";
      return out;
    }
    LadderRung rung;
    rung.skel_edge = block.orig_edge[e];
    rung.left_to_right = side[ed.from] == 0;
    rung.left_pos = pos[rung.left_to_right ? ed.from : ed.to];
    rung.right_pos = pos[rung.left_to_right ? ed.to : ed.from];
    ladder.rungs.push_back(rung);
  }
  if (ladder.rungs.empty()) {
    out.reason = "skeleton block with no cross-link should have been "
                 "SP-reduced; internal error";
    return out;
  }

  // Non-crossing check: lexicographic sort; crossing iff right positions
  // ever strictly decrease (equal positions are shared endpoints, allowed).
  std::sort(ladder.rungs.begin(), ladder.rungs.end(),
            [](const LadderRung& a, const LadderRung& b) {
              return std::tie(a.left_pos, a.right_pos) <
                     std::tie(b.left_pos, b.right_pos);
            });
  for (std::size_t i = 1; i < ladder.rungs.size(); ++i) {
    if (ladder.rungs[i].right_pos < ladder.rungs[i - 1].right_pos) {
      out.reason = "cross-links cross; graph is not CS4 (contains a K4 "
                   "subdivision, Lemma V.6)";
      return out;
    }
  }

  // Cycles for the enumeration-based interval engines, in skeleton edge
  // indices. Segment arrays already hold skeleton edge indices, so the
  // construction needs no remapping.
  ladder.cycles = construct_cycles(ladder);

  out.ladder = std::move(ladder);
  return out;
}

}  // namespace sdaf
