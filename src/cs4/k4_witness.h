// K4-subdivision detection (Lemma V.1: a CS4 graph contains no subgraph
// homeomorphic to K4). The underlying undirected multigraph is K4-
// subdivision-free iff every biconnected component rewrites to a single
// edge under undirected series-parallel reductions (suppress degree-2
// vertices, merge parallel edges) -- the classical Duffin characterization.
// When the rewriting sticks, the stuck remainder has minimum degree >= 3
// and certifies a K4 subdivision; its vertices are returned as a witness
// for diagnostics.
#pragma once

#include <optional>
#include <vector>

#include "src/graph/stream_graph.h"

namespace sdaf {

struct K4Witness {
  // Original node ids of the stuck remainder; a K4 subdivision uses a
  // subset of these as its four corner vertices.
  std::vector<NodeId> remainder_nodes;
};

// Empty optional iff the graph is K4-subdivision-free (undirected sense).
[[nodiscard]] std::optional<K4Witness> find_k4_subdivision(
    const StreamGraph& g);

}  // namespace sdaf
