#include "src/cs4/skeleton.h"

#include "src/support/contracts.h"

namespace sdaf {

Skeleton extract_skeleton(const StreamGraph& g, NodeId source, NodeId sink) {
  SpReduction red = reduce_sp(g, source, sink);
  Skeleton skel;
  skel.tree = std::move(red.tree);
  skel.metrics = compute_sp_metrics(skel.tree, g);
  skel.edges = std::move(red.remainder);

  skel.to_skel.assign(g.node_count(), kNoNode);
  auto map_node = [&](NodeId orig) {
    if (skel.to_skel[orig] == kNoNode) {
      skel.to_skel[orig] = skel.graph.add_node(g.node_name(orig));
      skel.orig_node.push_back(orig);
    }
    return skel.to_skel[orig];
  };
  for (const auto& se : skel.edges) {
    const NodeId f = map_node(se.from);
    const NodeId t = map_node(se.to);
    skel.graph.add_edge(f, t, skel.metrics.shortest_buffer[se.tree]);
  }
  SDAF_ENSURES(skel.graph.edge_count() == skel.edges.size());
  return skel;
}

}  // namespace sdaf
