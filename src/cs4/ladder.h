// SP-ladder recognition (Section V). A skeleton block is an SP-ladder iff
//   * its terminals are joined by two vertex-disjoint directed paths (the
//     outer cycle) that together cover every block vertex,
//   * every remaining super-edge is a rung connecting interior vertices of
//     opposite sides, and no two rungs cross (Definition of SP-ladder).
//
// Recognition is purely structural (two-disjoint-paths via a 2-unit
// vertex-capacity flow, then rung layout checks): for a valid ladder the
// disjoint path pair is unique -- any pair routed through a rung would
// force two rungs to cross -- so the flow recovers exactly the sides.
// Generic cycle enumeration is deliberately avoided: ladder skeletons have
// only O(k^2) simple cycles but exponentially many simple *paths*, which a
// backtracking enumerator would visit.
//
// The cycles themselves (each uses 0, 1 or 2 rungs -- three or more would
// force crossing rungs) are then *constructed* from the ladder layout for
// the interval engines.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "src/cs4/skeleton.h"
#include "src/graph/cycles.h"
#include "src/graph/stream_graph.h"

namespace sdaf {

struct LadderRung {
  std::size_t skel_edge = 0;  // index into Skeleton::edges
  std::size_t left_pos = 0;   // index into Ladder::left
  std::size_t right_pos = 0;  // index into Ladder::right
  bool left_to_right = true;  // direction of the rung component
};

struct Ladder {
  NodeId entry = kNoNode;  // skeleton node ids
  NodeId exit = kNoNode;

  // Side vertex sequences including entry (front) and exit (back), in
  // directed order; left/right naming is arbitrary but fixed.
  std::vector<NodeId> left;
  std::vector<NodeId> right;
  // left_seg[i] = skeleton edge index of the segment left[i] -> left[i+1].
  std::vector<std::size_t> left_seg;
  std::vector<std::size_t> right_seg;

  // Sorted by (left_pos, right_pos); non-crossing.
  std::vector<LadderRung> rungs;

  // Undirected simple cycles of this block, in *skeleton* edge indices.
  // Retained from recognition for the enumeration-based interval engines.
  std::vector<UCycle> cycles;
};

struct LadderRecognition {
  std::optional<Ladder> ladder;
  std::string reason;  // set when recognition fails
};

// `block_edges` are Skeleton::edges indices forming one biconnected block of
// the skeleton with >= 2 super-edges; `entry`/`exit` are the block terminals
// (skeleton node ids).
[[nodiscard]] LadderRecognition recognize_ladder(
    const Skeleton& skel, const std::vector<std::size_t>& block_edges,
    NodeId entry, NodeId exit);

}  // namespace sdaf
