#include "src/cs4/nonprop_ladder.h"

#include <unordered_map>

#include "src/graph/cycles.h"
#include "src/support/contracts.h"

namespace sdaf {

namespace {

struct ComponentLeaves {
  std::vector<EdgeId> edges;             // original graph edges
  std::vector<std::int64_t> hops_through;  // h(H, e) per edge
};

}  // namespace

void ladder_nonprop_external(const Skeleton& skel, const Ladder& ladder,
                             const std::vector<SpTree::Index>& parents,
                             IntervalMap& out) {
  // h(H, e) per leaf, computed once per component on demand.
  std::unordered_map<std::size_t, ComponentLeaves> leaf_cache;
  const auto component_leaves = [&](std::size_t skel_edge)
      -> const ComponentLeaves& {
    auto it = leaf_cache.find(skel_edge);
    if (it == leaf_cache.end()) {
      ComponentLeaves cl;
      const SpTree::Index root = skel.edges[skel_edge].tree;
      for (const SpTree::Index leaf : skel.tree.leaves_under(root)) {
        cl.edges.push_back(skel.tree.node(leaf).edge);
        cl.hops_through.push_back(longest_hops_through(
            skel.tree, skel.metrics, parents, leaf, root));
      }
      it = leaf_cache.emplace(skel_edge, std::move(cl)).first;
    }
    return it->second;
  };

  const auto component_hops = [&](EdgeId skel_edge) {
    return skel.metrics.longest_hops[skel.edges[skel_edge].tree];
  };

  for (const UCycle& cycle : ladder.cycles) {
    const auto runs = directed_runs(skel.graph, cycle);
    SDAF_ASSERT(runs.size() == 2);
    for (std::size_t side = 0; side < 2; ++side) {
      const DirectedRun& mine = runs[side];
      const DirectedRun& other = runs[1 - side];
      std::int64_t side_hops = 0;
      for (const EdgeId se : mine.edges) side_hops += component_hops(se);
      for (const EdgeId se : mine.edges) {
        const ComponentLeaves& cl = component_leaves(se);
        const std::int64_t rest = side_hops - component_hops(se);
        for (std::size_t j = 0; j < cl.edges.size(); ++j) {
          out.update_min(cl.edges[j],
                         Rational(other.buffer_length) /
                             Rational(rest + cl.hops_through[j]));
        }
      }
    }
  }
}

}  // namespace sdaf
