// Random SP-ladder and CS4-chain generation (Section V shapes): an outer
// 2-path cycle whose segments and non-crossing rungs are random SP
// components, optionally serially chained with random SP-DAGs.
#pragma once

#include <cstdint>

#include "src/graph/stream_graph.h"
#include "src/support/prng.h"
#include "src/workloads/random_sp.h"

namespace sdaf::workloads {

struct RandomLadderOptions {
  std::size_t rungs = 3;               // >= 1
  std::size_t left_interior = 3;       // interior vertices per side;
  std::size_t right_interior = 3;      //   clamped up to cover all rungs
  std::size_t component_edges = 1;     // SP size of each segment/rung (1 =
                                       //   plain channels)
  std::int64_t max_buffer = 8;
  bool allow_shared_endpoints = true;  // rungs may share side vertices
};

// The returned graph is always a valid SP-ladder (plus the source/sink).
[[nodiscard]] StreamGraph random_ladder(Prng& rng,
                                        const RandomLadderOptions& options);

struct RandomCs4Options {
  std::size_t components = 3;        // serial-chain length
  double ladder_probability = 0.5;   // else an SP-DAG component
  RandomSpOptions sp;
  RandomLadderOptions ladder;
};

// Serial composition of random SP-DAGs and SP-ladders: a random CS4 graph
// by Theorem V.7.
[[nodiscard]] StreamGraph random_cs4_chain(Prng& rng,
                                           const RandomCs4Options& options);

// Random two-terminal DAG with no structural guarantee (often not CS4):
// the negative-space generator for recognition tests.
struct RandomDagOptions {
  std::size_t interior_nodes = 6;
  double edge_density = 0.4;  // probability per forward node pair
  std::int64_t max_buffer = 8;
};
[[nodiscard]] StreamGraph random_two_terminal_dag(
    Prng& rng, const RandomDagOptions& options);

}  // namespace sdaf::workloads
