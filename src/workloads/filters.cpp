#include "src/workloads/filters.h"

#include "src/support/prng.h"

namespace sdaf::workloads {

namespace {

double hash_to_unit(std::uint64_t seed, std::uint64_t seq, std::uint64_t slot) {
  std::uint64_t state = seed ^ (seq * 0x9e3779b97f4a7c15ULL) ^
                        (slot * 0xc2b2ae3d27d4eb4fULL);
  const std::uint64_t h = splitmix64(state);
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

FilterFn bernoulli_filter(double p, std::uint64_t seed) {
  return [p, seed](std::uint64_t seq, std::size_t slot) {
    return hash_to_unit(seed, seq, slot) < p;
  };
}

FilterFn periodic_filter(std::uint64_t period, std::uint64_t phase) {
  return [period, phase](std::uint64_t seq, std::size_t) {
    return seq % period == phase;
  };
}

FilterFn pass_all() {
  return [](std::uint64_t, std::size_t) { return true; };
}

FilterFn adversarial_prefix_filter(std::size_t blocked_slot,
                                   std::uint64_t filtered_prefix) {
  return [blocked_slot, filtered_prefix](std::uint64_t seq, std::size_t slot) {
    return slot != blocked_slot || seq >= filtered_prefix;
  };
}

std::vector<std::shared_ptr<runtime::Kernel>> relay_kernels(
    const StreamGraph& g, double pass_probability, std::uint64_t seed) {
  std::vector<std::shared_ptr<runtime::Kernel>> kernels;
  kernels.reserve(g.node_count());
  for (NodeId n = 0; n < g.node_count(); ++n) {
    // Per-node decorrelation; the per-(seq, slot) hash keeps runs
    // reproducible across the executor and the simulator.
    const std::uint64_t node_seed = seed ^ (0xabcdef12345ULL * (n + 1));
    kernels.push_back(std::make_shared<runtime::RelayKernel>(
        bernoulli_filter(pass_probability, node_seed)));
  }
  return kernels;
}

std::vector<std::shared_ptr<runtime::Kernel>> passthrough_kernels(
    const StreamGraph& g) {
  std::vector<std::shared_ptr<runtime::Kernel>> kernels;
  kernels.reserve(g.node_count());
  for (NodeId n = 0; n < g.node_count(); ++n)
    kernels.push_back(runtime::pass_through_kernel());
  return kernels;
}

}  // namespace sdaf::workloads
