// Filtering-behaviour models: deterministic functions from (sequence
// number, output slot) to pass/filter decisions. Determinism (counter-based
// hashing rather than stream draws) makes the threaded runtime and the
// simulator produce identical message sequences for the same seed.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "src/graph/stream_graph.h"
#include "src/runtime/kernel.h"

namespace sdaf::workloads {

using FilterFn = std::function<bool(std::uint64_t seq, std::size_t slot)>;

// Passes with probability `p`, independently per (seq, slot), derived from
// a stateless hash of (seed, seq, slot).
[[nodiscard]] FilterFn bernoulli_filter(double p, std::uint64_t seed);

// Passes exactly when seq % period == phase (heavy regular filtering).
[[nodiscard]] FilterFn periodic_filter(std::uint64_t period,
                                       std::uint64_t phase = 0);

// Never filters.
[[nodiscard]] FilterFn pass_all();

// Filters everything on `blocked_slot` for the first `filtered_prefix`
// sequence numbers, then passes: the adversarial pattern that drives
// Fig. 2's triangle into deadlock when buffers fill.
[[nodiscard]] FilterFn adversarial_prefix_filter(std::size_t blocked_slot,
                                                 std::uint64_t filtered_prefix);

// One relay kernel per node, all using `filter` with per-node decorrelation
// via the seed.
[[nodiscard]] std::vector<std::shared_ptr<runtime::Kernel>> relay_kernels(
    const StreamGraph& g, double pass_probability, std::uint64_t seed);

// All-pass kernels (no filtering anywhere).
[[nodiscard]] std::vector<std::shared_ptr<runtime::Kernel>> passthrough_kernels(
    const StreamGraph& g);

}  // namespace sdaf::workloads
