#include "src/workloads/random_sp.h"

#include "src/support/contracts.h"

namespace sdaf::workloads {

namespace {

SpSpec random_spec_rec(Prng& rng, std::size_t budget,
                       const RandomSpOptions& options) {
  if (budget <= 1)
    return SpSpec::edge(rng.next_in(1, options.max_buffer));
  const std::size_t fanout = static_cast<std::size_t>(
      rng.next_in(2, static_cast<std::int64_t>(
                         std::min(options.max_fanout, budget))));
  // Split the edge budget into `fanout` non-empty parts.
  std::vector<std::size_t> parts(fanout, 1);
  for (std::size_t extra = budget - fanout; extra > 0; --extra)
    ++parts[rng.next_below(fanout)];
  std::vector<SpSpec> children;
  children.reserve(fanout);
  for (const std::size_t part : parts)
    children.push_back(random_spec_rec(rng, part, options));
  return rng.next_bool(options.parallel_bias)
             ? SpSpec::parallel(std::move(children))
             : SpSpec::series(std::move(children));
}

}  // namespace

SpSpec random_sp_spec(Prng& rng, const RandomSpOptions& options) {
  SDAF_EXPECTS(options.target_edges >= 1);
  SDAF_EXPECTS(options.max_buffer >= 1);
  SDAF_EXPECTS(options.max_fanout >= 2);
  return random_spec_rec(rng, options.target_edges, options);
}

BuiltSp random_sp(Prng& rng, const RandomSpOptions& options) {
  return build_sp(random_sp_spec(rng, options));
}

}  // namespace sdaf::workloads
