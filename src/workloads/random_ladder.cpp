#include "src/workloads/random_ladder.h"

#include <algorithm>
#include <set>

#include "src/graph/topo.h"
#include "src/support/contracts.h"

namespace sdaf::workloads {

namespace {

// Materialize a random SP component between two existing nodes, discarding
// the (trusted) tree: generators hand plain graphs to the recognizers.
void add_component(Prng& rng, StreamGraph& g, NodeId from, NodeId to,
                   std::size_t edges, std::int64_t max_buffer) {
  RandomSpOptions opt;
  opt.target_edges = edges;
  opt.max_buffer = max_buffer;
  const SpSpec spec = random_sp_spec(rng, opt);
  SpTree scratch;
  (void)build_sp_between(spec, g, scratch, from, to);
}

struct RungDraft {
  std::size_t left_pos;
  std::size_t right_pos;
  bool left_to_right;
};

// Directed cycles can only arise from rungs of opposite direction sharing a
// vertex in the wrong order; rather than encode the ordering rule, draw,
// test, and fall back to uniform direction (always acyclic).
bool directions_acyclic(const std::vector<RungDraft>& rungs,
                        std::size_t left_n, std::size_t right_n) {
  StreamGraph probe;
  std::vector<NodeId> left(left_n + 2), right(right_n + 2);
  const NodeId x = probe.add_node();
  const NodeId y_placeholder = probe.add_node();
  left.front() = right.front() = x;
  for (std::size_t i = 1; i <= left_n; ++i) left[i] = probe.add_node();
  for (std::size_t i = 1; i <= right_n; ++i) right[i] = probe.add_node();
  left.back() = right.back() = y_placeholder;
  for (std::size_t i = 0; i + 1 < left.size(); ++i)
    probe.add_edge(left[i], left[i + 1], 1);
  for (std::size_t i = 0; i + 1 < right.size(); ++i)
    probe.add_edge(right[i], right[i + 1], 1);
  for (const auto& r : rungs) {
    if (r.left_to_right)
      probe.add_edge(left[r.left_pos], right[r.right_pos], 1);
    else
      probe.add_edge(right[r.right_pos], left[r.left_pos], 1);
  }
  return topo_order(probe).has_value();
}

}  // namespace

StreamGraph random_ladder(Prng& rng, const RandomLadderOptions& options) {
  SDAF_EXPECTS(options.rungs >= 1);
  std::size_t left_n = options.left_interior;
  std::size_t right_n = options.right_interior;
  if (!options.allow_shared_endpoints) {
    left_n = std::max(left_n, options.rungs);
    right_n = std::max(right_n, options.rungs);
  }
  left_n = std::max<std::size_t>(left_n, 1);
  right_n = std::max<std::size_t>(right_n, 1);

  // Draw sorted side positions; pairing i-th with i-th keeps rungs
  // non-crossing. Distinct (left, right) pairs avoid parallel rungs with
  // conflicting directions.
  std::vector<RungDraft> rungs;
  std::set<std::pair<std::size_t, std::size_t>> used;
  std::vector<std::size_t> lpos, rpos;
  for (std::size_t tries = 0;
       rungs.size() < options.rungs && tries < options.rungs * 8; ++tries) {
    lpos.clear();
    rpos.clear();
    const std::size_t want = options.rungs;
    if (options.allow_shared_endpoints) {
      for (std::size_t i = 0; i < want; ++i) {
        lpos.push_back(1 + rng.next_below(left_n));
        rpos.push_back(1 + rng.next_below(right_n));
      }
    } else {
      std::vector<std::size_t> all_l(left_n), all_r(right_n);
      for (std::size_t i = 0; i < left_n; ++i) all_l[i] = i + 1;
      for (std::size_t i = 0; i < right_n; ++i) all_r[i] = i + 1;
      rng.shuffle(all_l);
      rng.shuffle(all_r);
      lpos.assign(all_l.begin(), all_l.begin() + static_cast<long>(want));
      rpos.assign(all_r.begin(), all_r.begin() + static_cast<long>(want));
    }
    std::sort(lpos.begin(), lpos.end());
    std::sort(rpos.begin(), rpos.end());
    rungs.clear();
    used.clear();
    for (std::size_t i = 0; i < want; ++i) {
      if (!used.insert({lpos[i], rpos[i]}).second) continue;  // dedupe
      rungs.push_back(RungDraft{lpos[i], rpos[i], rng.next_bool(0.5)});
    }
    if (rungs.empty()) continue;
    if (!directions_acyclic(rungs, left_n, right_n)) {
      // Retry once with fresh directions, then force uniform (acyclic).
      for (auto& r : rungs) r.left_to_right = rng.next_bool(0.5);
      if (!directions_acyclic(rungs, left_n, right_n))
        for (auto& r : rungs) r.left_to_right = true;
    }
    break;
  }
  SDAF_ASSERT(!rungs.empty());

  StreamGraph g;
  const NodeId x = g.add_node("X");
  std::vector<NodeId> left{x}, right{x};
  for (std::size_t i = 1; i <= left_n; ++i)
    left.push_back(g.add_node("u" + std::to_string(i)));
  for (std::size_t i = 1; i <= right_n; ++i)
    right.push_back(g.add_node("v" + std::to_string(i)));
  const NodeId y = g.add_node("Y");
  left.push_back(y);
  right.push_back(y);

  for (std::size_t i = 0; i + 1 < left.size(); ++i)
    add_component(rng, g, left[i], left[i + 1], options.component_edges,
                  options.max_buffer);
  for (std::size_t i = 0; i + 1 < right.size(); ++i)
    add_component(rng, g, right[i], right[i + 1], options.component_edges,
                  options.max_buffer);
  for (const auto& r : rungs) {
    const NodeId from = r.left_to_right ? left[r.left_pos]
                                        : right[r.right_pos];
    const NodeId to = r.left_to_right ? right[r.right_pos]
                                      : left[r.left_pos];
    add_component(rng, g, from, to, options.component_edges,
                  options.max_buffer);
  }
  SDAF_ENSURES(topo_order(g).has_value());
  return g;
}

StreamGraph random_cs4_chain(Prng& rng, const RandomCs4Options& options) {
  SDAF_EXPECTS(options.components >= 1);
  StreamGraph g;
  NodeId tail = g.add_node("src");
  for (std::size_t c = 0; c < options.components; ++c) {
    if (rng.next_bool(options.ladder_probability)) {
      // Embed a random ladder between tail and a fresh node.
      StreamGraph ladder = random_ladder(rng, options.ladder);
      std::vector<NodeId> remap(ladder.node_count());
      const NodeId lsrc = ladder.unique_source();
      const NodeId lsnk = ladder.unique_sink();
      for (NodeId n = 0; n < ladder.node_count(); ++n) {
        if (n == lsrc)
          remap[n] = tail;
        else
          remap[n] = g.add_node();
      }
      for (EdgeId e = 0; e < ladder.edge_count(); ++e) {
        const auto& ed = ladder.edge(e);
        g.add_edge(remap[ed.from], remap[ed.to], ed.buffer);
      }
      tail = remap[lsnk];
    } else {
      const NodeId next = g.add_node();
      SpTree scratch;
      (void)build_sp_between(random_sp_spec(rng, options.sp), g, scratch,
                             tail, next);
      tail = next;
    }
  }
  g.set_node_name(tail, "snk");
  SDAF_ENSURES(topo_order(g).has_value());
  return g;
}

StreamGraph random_two_terminal_dag(Prng& rng,
                                    const RandomDagOptions& options) {
  StreamGraph g;
  const NodeId x = g.add_node("X");
  std::vector<NodeId> mid;
  for (std::size_t i = 0; i < options.interior_nodes; ++i)
    mid.push_back(g.add_node());
  const NodeId y = g.add_node("Y");

  // Forward edges only (indices are a topological order).
  std::vector<NodeId> order{x};
  order.insert(order.end(), mid.begin(), mid.end());
  order.push_back(y);
  for (std::size_t i = 0; i < order.size(); ++i)
    for (std::size_t j = i + 1; j < order.size(); ++j)
      if (rng.next_bool(options.edge_density))
        g.add_edge(order[i], order[j], rng.next_in(1, options.max_buffer));

  // Patch terminals so the graph is two-terminal.
  for (const NodeId v : mid) {
    if (g.in_degree(v) == 0)
      g.add_edge(x, v, rng.next_in(1, options.max_buffer));
    if (g.out_degree(v) == 0)
      g.add_edge(v, y, rng.next_in(1, options.max_buffer));
  }
  if (g.out_degree(x) == 0 || g.in_degree(y) == 0)
    g.add_edge(x, y, rng.next_in(1, options.max_buffer));
  return g;
}

}  // namespace sdaf::workloads
