#include "src/workloads/topologies.h"

#include "src/support/contracts.h"

namespace sdaf::workloads {

StreamGraph fig1_splitjoin(std::int64_t buffer) {
  StreamGraph g;
  const NodeId a = g.add_node("A");
  const NodeId b = g.add_node("B");
  const NodeId c = g.add_node("C");
  const NodeId d = g.add_node("D");
  g.add_edge(a, b, buffer);
  g.add_edge(a, c, buffer);
  g.add_edge(b, d, buffer);
  g.add_edge(c, d, buffer);
  return g;
}

StreamGraph fig2_triangle(std::int64_t ab, std::int64_t bc, std::int64_t ac) {
  StreamGraph g;
  const NodeId a = g.add_node("A");
  const NodeId b = g.add_node("B");
  const NodeId c = g.add_node("C");
  g.add_edge(a, b, ab);
  g.add_edge(b, c, bc);
  g.add_edge(a, c, ac);
  return g;
}

StreamGraph fig3_cycle() {
  StreamGraph g;
  const NodeId a = g.add_node("a");
  const NodeId b = g.add_node("b");
  const NodeId c = g.add_node("c");
  const NodeId d = g.add_node("d");
  const NodeId e = g.add_node("e");
  const NodeId f = g.add_node("f");
  g.add_edge(a, b, 2);  // [ab]
  g.add_edge(a, c, 3);  // [ac]
  g.add_edge(b, e, 5);  // [be]
  g.add_edge(c, d, 1);  // [cd]
  g.add_edge(e, f, 1);  // [ef]
  g.add_edge(d, f, 2);  // [df]
  return g;
}

StreamGraph fig4_left(std::int64_t buffer) {
  StreamGraph g;
  const NodeId x = g.add_node("X");
  const NodeId a = g.add_node("a");
  const NodeId b = g.add_node("b");
  const NodeId y = g.add_node("Y");
  g.add_edge(x, a, buffer);
  g.add_edge(x, b, buffer);
  g.add_edge(a, b, buffer);  // the cross-channel that breaks SP-ness
  g.add_edge(a, y, buffer);
  g.add_edge(b, y, buffer);
  return g;
}

StreamGraph fig4_butterfly(std::int64_t buffer) {
  StreamGraph g;
  const NodeId x = g.add_node("X");
  const NodeId a = g.add_node("a");
  const NodeId b = g.add_node("b");
  const NodeId aa = g.add_node("A");
  const NodeId bb = g.add_node("B");
  const NodeId y = g.add_node("Y");
  g.add_edge(x, a, buffer);
  g.add_edge(x, b, buffer);
  g.add_edge(a, aa, buffer);
  g.add_edge(a, bb, buffer);
  g.add_edge(b, aa, buffer);
  g.add_edge(b, bb, buffer);
  g.add_edge(aa, y, buffer);
  g.add_edge(bb, y, buffer);
  return g;
}

StreamGraph butterfly_rewrite(std::int64_t buffer) {
  // Section VII: "the butterfly can be replaced by an SP-ladder with
  // cross-links a-d and d-c, provided that data to be sent from b to c is
  // routed via an extra hop through d". Corners: a, b feed c, d.
  StreamGraph g;
  const NodeId x = g.add_node("X");
  const NodeId a = g.add_node("a");
  const NodeId b = g.add_node("b");
  const NodeId c = g.add_node("c");
  const NodeId d = g.add_node("d");
  const NodeId y = g.add_node("Y");
  g.add_edge(x, a, buffer);
  g.add_edge(x, b, buffer);
  g.add_edge(a, c, buffer);  // a -> c direct (left side)
  g.add_edge(b, d, buffer);  // b -> d direct (right side)
  g.add_edge(a, d, buffer);  // cross-link a -> d
  g.add_edge(d, c, buffer);  // cross-link d -> c (carries the b->c traffic)
  g.add_edge(c, y, buffer);
  g.add_edge(d, y, buffer);
  return g;
}

StreamGraph pipeline(std::size_t stages, std::int64_t buffer) {
  SDAF_EXPECTS(stages >= 2);
  StreamGraph g;
  std::vector<NodeId> nodes;
  for (std::size_t i = 0; i < stages; ++i)
    nodes.push_back(g.add_node("s" + std::to_string(i)));
  for (std::size_t i = 0; i + 1 < stages; ++i)
    g.add_edge(nodes[i], nodes[i + 1], buffer);
  return g;
}

StreamGraph splitjoin(std::size_t width, std::size_t depth,
                      std::int64_t buffer) {
  SDAF_EXPECTS(width >= 1);
  SDAF_EXPECTS(depth >= 1);
  StreamGraph g;
  const NodeId split = g.add_node("split");
  const NodeId join = g.add_node("join");
  for (std::size_t w = 0; w < width; ++w) {
    NodeId prev = split;
    for (std::size_t d = 0; d < depth; ++d) {
      const NodeId stage =
          g.add_node("b" + std::to_string(w) + "_" + std::to_string(d));
      g.add_edge(prev, stage, buffer);
      prev = stage;
    }
    g.add_edge(prev, join, buffer);
  }
  return g;
}

StreamGraph fig5_ladder(std::int64_t buffer) {
  // Fig. 5's simplified ladder: sides a->b->f->m and a->j->m with
  // cross-link b->j; each drawn edge stands for an SP component, here a
  // single channel.
  StreamGraph g;
  const NodeId a = g.add_node("a");
  const NodeId b = g.add_node("b");
  const NodeId f = g.add_node("f");
  const NodeId j = g.add_node("j");
  const NodeId k = g.add_node("k");
  const NodeId m = g.add_node("m");
  g.add_edge(a, b, buffer);
  g.add_edge(b, f, buffer);
  g.add_edge(f, m, buffer);
  g.add_edge(a, j, buffer);
  g.add_edge(j, k, buffer);
  g.add_edge(k, m, buffer);
  g.add_edge(b, j, buffer);  // cross-link
  g.add_edge(f, k, buffer);  // second cross-link
  return g;
}

StreamGraph continuation_ladder(std::size_t relays, std::int64_t fat,
                                std::int64_t tight) {
  StreamGraph g;
  const NodeId u = g.add_node("u");
  const NodeId a = g.add_node("a");
  g.add_edge(u, a, fat);
  NodeId prev = a;
  for (std::size_t i = 0; i < relays; ++i) {
    const NodeId r = g.add_node("r" + std::to_string(i));
    g.add_edge(prev, r, fat);
    prev = r;
  }
  const NodeId b = g.add_node("b");
  g.add_edge(prev, b, fat);
  g.add_edge(u, b, tight);
  return g;
}

}  // namespace sdaf::workloads
