// The paper's named topologies (Figures 1-6) plus standard shapes used by
// examples, tests and benchmarks. Node naming follows the figures.
#pragma once

#include <cstdint>
#include <vector>

#include "src/graph/stream_graph.h"

namespace sdaf::workloads {

// Fig. 1: split/join A -> {B, C} -> D. All four channels share `buffer`.
[[nodiscard]] StreamGraph fig1_splitjoin(std::int64_t buffer = 4);

// Fig. 2: the deadlock triangle. A -> B -> C plus the direct edge A -> C.
// Defaults follow the figure's narrative: small buffers everywhere.
[[nodiscard]] StreamGraph fig2_triangle(std::int64_t ab = 2, std::int64_t bc = 2,
                                        std::int64_t ac = 2);

// Fig. 3: the worked dummy-interval example. Six nodes a..f; buffers
// ab=2, be=5, ef=1, ac=3, cd=1, df=2. Expected intervals (paper):
//   Propagation:      [ab]=6, [ac]=8, others infinite.
//   Non-Propagation:  [ab]=[be]=[ef]=2, [ac]=[cd]=[df]=8/3.
[[nodiscard]] StreamGraph fig3_cycle();

// Fig. 4 left: the simplest non-SP DAG -- a split/join X -> {a, b} -> Y
// augmented with cross-channel a -> b. CS4 (an SP-ladder).
[[nodiscard]] StreamGraph fig4_left(std::int64_t buffer = 2);

// Fig. 4 right: the butterfly X -> {a, b}, {a, b} -> {A, B} -> Y pattern
// containing cycle a-A-b-B with two sources and two sinks. Not CS4.
[[nodiscard]] StreamGraph fig4_butterfly(std::int64_t buffer = 2);

// Section VII's restructuring of the butterfly into an SP-ladder: the
// b -> c traffic is routed through d via an extra hop.
[[nodiscard]] StreamGraph butterfly_rewrite(std::int64_t buffer = 2);

// Simple pipeline of `stages` nodes (stages-1 edges).
[[nodiscard]] StreamGraph pipeline(std::size_t stages, std::int64_t buffer = 4);

// Split/join with `width` parallel branches of `depth` stages each.
[[nodiscard]] StreamGraph splitjoin(std::size_t width, std::size_t depth,
                                    std::int64_t buffer = 4);

// The ladder of Fig. 5 (left): outer cycle a-b-f-m-j-a with cross-link
// b -> j (after SP contraction of the decorated components).
[[nodiscard]] StreamGraph fig5_ladder(std::int64_t buffer = 2);

// The continuation-edge counterexample stretched into a pipeline: source u
// feeds a filter stage `a` and, through a tight companion edge, the sink
// directly; a relay chain of `relays` nodes sits between `a` and the sink.
// The buffer asymmetry (fat long path, tight direct edge) forces interval 1
// on u -> a and marks the whole relay chain forward-on-filter, so every
// item the filter drops becomes a dummy on the wire -- at low pass rates
// the channels carry dense runs of consecutive-sequence dummies, which is
// the data plane's worst case (and the coalescing fast path's best).
//   u -> a -> r0 -> ... -> r{relays-1} -> b   (buffer `fat` each)
//   u -> b                                    (buffer `tight`)
[[nodiscard]] StreamGraph continuation_ladder(std::size_t relays = 4,
                                              std::int64_t fat = 64,
                                              std::int64_t tight = 1);

}  // namespace sdaf::workloads
