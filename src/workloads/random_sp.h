// Random SP-DAG generation for property tests and scaling benchmarks:
// draws a random composition recipe (SpSpec), so the generated graph comes
// with a trusted ground-truth decomposition tree.
#pragma once

#include <cstdint>

#include "src/spdag/sp_builder.h"
#include "src/support/prng.h"

namespace sdaf::workloads {

struct RandomSpOptions {
  std::size_t target_edges = 16;  // >= 1
  std::int64_t max_buffer = 8;    // buffers drawn uniformly from [1, max]
  double parallel_bias = 0.5;     // probability an internal split is Pc
  std::size_t max_fanout = 4;     // children per composition node
};

[[nodiscard]] SpSpec random_sp_spec(Prng& rng, const RandomSpOptions& options);

// Convenience: spec + materialization in one call.
[[nodiscard]] BuiltSp random_sp(Prng& rng, const RandomSpOptions& options);

}  // namespace sdaf::workloads
