// The one true firing rule. Every execution backend -- the deterministic
// simulator, the thread-per-node executor, and the pooled scheduler -- runs
// each node through this state machine: sequence-number alignment at the
// minimum input head, kernel invocation only when data arrived, wrapper-
// driven dummy origination/forwarding, per-channel-asynchronous output
// delivery, and the EOS flood. Backends differ only in *delivery* -- how a
// message moves through a channel and what happens when it cannot -- which
// is exactly the DeliverySink contract below.
//
// The data plane is allocation-free, batched, and (on the concurrent
// backends) lock-free: alignment peeks payload-free HeadViews (never
// copying a payload), data is moved out of a channel by its single
// consumer without a mutex (the channels ride runtime::SpscRing), and
// consecutive-sequence dummy runs travel as single coalesced segments in
// both directions (pop_dummies / try_push_dummies). A `batch` quantum lets
// step() run several firings before handing outputs to the sink, so one
// channel op and one (usually elided) wake-up amortize over the whole
// batch. All of this is below the firing semantics: per-edge traffic,
// firing counts and verdicts are bit-identical at every batch setting,
// which the differential tests enforce.
//
// A FiringCore is single-owner: exactly one thread may call step() at a
// time (the simulator sweep, the node's own OS thread, or the pool worker
// that currently owns the task). The sink callbacks are invoked from inside
// step() on that same thread.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "src/ckpt/snapshot.h"
#include "src/graph/stream_graph.h"
#include "src/obs/metrics.h"
#include "src/runtime/kernel.h"
#include "src/runtime/message.h"
#include "src/runtime/trace.h"
#include "src/runtime/wrapper.h"

namespace sdaf::exec {

// Outcome of a non-blocking delivery attempt.
enum class PushOutcome : std::uint8_t {
  Delivered,  // message accepted by the channel
  Blocked,    // channel full; retry after a transition
  Aborted,    // run is tearing down; stop delivering
};

// Backend delivery contract. Peeks/pops act on in-slots, pushes on
// out-slots (slot indices follow StreamGraph::in_edges/out_edges order).
//
//   simulator      peek_head = ring head view, try_push = capacity check
//   thread-per-node peek_head *blocks* until a head or abort; pushes are
//                  non-blocking and the runner waits on its ProducerSignal
//   pooled         peeks/pushes are non-blocking and additionally wake the
//                  peer node on empty->non-empty / full->non-full edges
class DeliverySink {
 public:
  virtual ~DeliverySink() = default;

  // Payload-free view of the head of in-slot `slot` (seq, kind, and the
  // length of the consecutive dummy run starting there), or empty when no
  // message is available (backend-specific: empty channel, or aborted run).
  // `may_wait` is the blocking-backend contract: the core sets it only when
  // it holds no undelivered outputs, so a sink that blocks inside peek
  // (thread-per-node) can never wedge the graph by sitting on pending
  // messages; with may_wait == false every sink must return immediately.
  [[nodiscard]] virtual std::optional<runtime::HeadView> peek_head(
      std::size_t slot, bool may_wait) = 0;

  // Removes the head of in-slot `slot` and returns it (payload moved out,
  // one critical section). Precondition: the immediately preceding
  // peek_head(slot) observed a head.
  [[nodiscard]] virtual runtime::Message pop_head(std::size_t slot) = 0;

  // Removes the head of in-slot `slot`, discarding it (dummy/EOS paths
  // never need the payload). Precondition: as for pop_head.
  virtual void pop(std::size_t slot) = 0;

  // Removes `count` dummies from the head run of in-slot `slot` with one
  // channel operation and one producer wake-up. Precondition: the
  // preceding peek_head(slot) observed a dummy head with run >= count.
  virtual void pop_dummies(std::size_t slot, std::size_t count) = 0;

  // Attempts to deliver `m` on out-slot `slot` without blocking. Consumes
  // `m` only when returning Delivered.
  [[nodiscard]] virtual PushOutcome try_push(std::size_t slot,
                                             runtime::Message&& m) = 0;

  // Attempts to deliver up to `count` dummies first_seq, first_seq+1, ...
  // on out-slot `slot` as one coalesced run. Returns how many were
  // accepted; `*outcome` is Delivered when all fit, Blocked/Aborted
  // otherwise.
  [[nodiscard]] virtual std::size_t try_push_dummies(std::size_t slot,
                                                     std::uint64_t first_seq,
                                                     std::size_t count,
                                                     PushOutcome* outcome) = 0;

  // Port-fed sources only (FiringCore constructed with port_fed = true):
  // head view / removal of the injected ingress feed, with the same
  // blocking contract as peek_head. The defaults assert -- a backend that
  // runs port-fed sources must override both.
  [[nodiscard]] virtual std::optional<runtime::HeadView> peek_feed(
      bool may_wait);
  [[nodiscard]] virtual runtime::Message pop_feed();
};

// Park summary encoding, shared by the pooled scheduler's park/probe
// protocol and the deadlock state dumps: the top two bits select the park
// reason, the low 62 bits are a mask of the output slots the node is
// blocked on (slots >= 62 degrade to "check every slot"). A node only
// parks done, output-blocked (pending messages for full channels), or
// input-blocked (some input empty); every other situation lets step()
// progress.
inline constexpr std::uint64_t kParkInputs = 0;
inline constexpr std::uint64_t kParkDone = 1;
inline constexpr std::uint64_t kParkOutputs = 2;
inline constexpr int kParkTagShift = 62;
inline constexpr std::uint64_t kParkSlotMask = (std::uint64_t{1} << 62) - 1;

[[nodiscard]] std::string describe_park_summary(std::uint64_t summary);

// One formatter for the deadlock state dumps every backend emits -- the
// unified shape is
//
//   edge <i> <from>-><to> <occ>/<cap> pushed=<D>+<K>d [head=...] [tail=...]
//   node <name> <describe> park=<park-summary text>
//     trace <event>            (last few tracer events, when armed)
//
// Backends supply accessors for their channel and node representations;
// `tail` is empty when a backend cannot observe it cheaply, and the trace
// lines appear only when the run carried a Tracer.
struct EdgeDumpInfo {
  std::size_t occupancy = 0;
  std::size_t capacity = 0;
  std::uint64_t data_pushed = 0;
  std::uint64_t dummies_pushed = 0;
  std::optional<runtime::Message> head;
  std::optional<runtime::Message> tail;
};

struct NodeDumpInfo {
  std::string describe;            // FiringCore::describe() or equivalent
  std::uint64_t park_summary = 0;  // encoding below
};

[[nodiscard]] std::string dump_wedged_state(
    const StreamGraph& g,
    const std::function<EdgeDumpInfo(EdgeId)>& edge_info,
    const std::function<NodeDumpInfo(NodeId)>& node_info,
    const runtime::Tracer* tracer = nullptr, std::size_t trace_tail = 4);

class FiringCore {
 public:
  // `in_slots`/`out_slots` are the node's degree; the channels themselves
  // live behind `sink`. `batch` is the firing quantum (see RunSpec::batch;
  // clamped to >= 1). `tracer` (optional, not owned) records per-message
  // events; `tick` (optional, not owned) supplies the tracer timestamp --
  // the simulator points it at its sweep counter, concurrent backends leave
  // it null (tick 0; event *order* across threads is not meaningful there).
  // `port_fed` (sources only, in_slots == 0): consume the sink's injected
  // feed instead of self-generating num_inputs sequence numbers -- a
  // payload-free data message is a pure firing token (the kernel sees the
  // same empty input vector as a self-generating source, so a token-fed run
  // is bit-identical to the classic one), a payload rides to the kernel as
  // a single-slot input, and EOS triggers the ordinary flood.
  // `metrics` (optional, not owned): the node's obs counter shard;
  // increments happen at the same sites on every backend, so the counters
  // are differentially exact against the sim reference.
  FiringCore(NodeId node, runtime::Kernel& kernel, std::size_t in_slots,
             std::size_t out_slots, runtime::NodeWrapper wrapper,
             std::uint64_t num_inputs, DeliverySink& sink,
             std::uint32_t batch = 1, runtime::Tracer* tracer = nullptr,
             const std::uint64_t* tick = nullptr, bool port_fed = false,
             obs::NodeCounters* metrics = nullptr);

  // One scheduling quantum; returns true iff any progress was made (a
  // message delivered, consumed, or produced). After false the node cannot
  // progress until a channel changes (or the run aborted; see aborted()).
  bool step();

  [[nodiscard]] bool done() const { return done_; }
  // True once the sink reported PushOutcome::Aborted; the core stops
  // delivering and step() returns false forever.
  [[nodiscard]] bool aborted() const { return aborted_; }
  [[nodiscard]] bool has_pending() const { return !pending_.empty(); }
  [[nodiscard]] NodeId node() const { return node_; }

  // Why an unproductive node is stuck, in the encoding above. Owner-only.
  [[nodiscard]] std::uint64_t park_summary() const;

  // Human-readable state for deadlock dumps. Owner-only (or quiescent).
  [[nodiscard]] std::string describe() const;

  // Snapshot plumbing (ckpt). set_snapshot_plane attaches the stream's
  // barrier coordinator (null = snapshots off, the default: every marker
  // branch below is then dead and the fast path is unchanged). When a
  // Marker(S) aligns at this node's inputs, step() pops the markers,
  // reports a NodeCut to the plane, and queues Marker(S) on every output
  // after the pre-S emissions -- no kernel firing, no counter movement.
  // queue_eos additionally reports the node's final cut to the plane so a
  // barrier begun after this node drained still completes.
  void set_snapshot_plane(ckpt::SnapshotPlane* plane) { plane_ = plane; }

  // Restore plumbing: rehydrate this core from a NodeCut taken at a
  // barrier. Live node: restore_cut alone. Done node: restore_cut (its
  // final counters) *then* mark_done, which makes the core terminal and
  // seeds the plane's finished set; its outgoing channels are preloaded
  // with EOS by the engine. Must run before the first step().
  void restore_cut(const ckpt::NodeCut& cut);
  void mark_done();

  std::uint64_t fires = 0;      // kernel invocations
  std::uint64_t sink_data = 0;  // data messages consumed

 private:
  // One queued output: a single message, or (run > 1) a coalesced run of
  // `run` dummies starting at message.seq.
  struct PendingRun {
    std::size_t out_slot;
    runtime::Message message;
    std::uint32_t run = 1;
  };

  void trace(runtime::TraceKind kind, std::size_t slot, std::uint64_t seq);
  // The node's state at a consistent cut (ckpt).
  [[nodiscard]] ckpt::NodeCut make_cut(bool done) const;
  // Barrier alignment reached: report the cut and forward Marker(S).
  void checkpoint(std::uint64_t barrier_seq);
  // Queues this firing's outputs: kernel data plus wrapper-mandated
  // dummies. The wrapper is consulted exactly once per slot per seq;
  // consecutive dummies for a slot coalesce into one pending run.
  void queue_outputs(std::uint64_t seq, bool any_input_dummy);
  void queue_dummy(std::size_t slot, std::uint64_t seq);
  void queue_eos();
  // Pushes whatever fits from pending_, per-channel asynchronously: a full
  // channel must not block messages destined for channels with space (but
  // messages for the *same* channel stay FIFO). Returns true iff anything
  // was delivered.
  bool drain_pending();
  // One alignment + firing attempt; returns how many firing quanta it
  // consumed (0 = no progress possible). When every aligned head is a
  // dummy, consumes the whole aligned run -- bounded by the other heads
  // and by `budget`, so a quantum never fires more than RunSpec::batch
  // sequence numbers -- with one channel op per slot.
  std::uint64_t fire_once(std::uint64_t budget);

  NodeId node_;
  runtime::Kernel& kernel_;
  std::size_t in_slots_;
  std::size_t out_slots_;
  runtime::NodeWrapper wrapper_;
  std::uint64_t num_inputs_;
  DeliverySink& sink_;
  std::uint32_t batch_;
  runtime::Tracer* tracer_;
  const std::uint64_t* tick_;
  bool port_fed_;
  obs::NodeCounters* metrics_;
  runtime::Emitter emitter_;
  std::vector<std::optional<runtime::Value>> inputs_;
  // Scratch single-slot input vector for payload-carrying feed messages.
  std::vector<std::optional<runtime::Value>> feed_input_;
  std::vector<runtime::HeadView> heads_;
  std::vector<PendingRun> pending_;
  // Index into pending_ of the slot's trailing dummy run (coalescing
  // target), or npos. Only valid between drains; drain_pending resets it.
  std::vector<std::size_t> pending_tail_;
  std::vector<std::uint8_t> slot_blocked_;  // drain_pending scratch
  std::uint64_t source_seq_ = 0;
  bool eos_flooded_ = false;
  bool done_ = false;
  bool aborted_ = false;
  ckpt::SnapshotPlane* plane_ = nullptr;
};

}  // namespace sdaf::exec
