#include "src/exec/firing_core.h"

#include <algorithm>
#include <sstream>

#include "src/support/contracts.h"

namespace sdaf::exec {

using runtime::kEosSeq;
using runtime::Message;
using runtime::MessageKind;
using runtime::TraceKind;

std::string describe_park_summary(std::uint64_t summary) {
  switch (summary >> kParkTagShift) {
    case kParkDone:
      return "done";
    case kParkOutputs: {
      std::string s = "blocked-on-outputs mask=";
      const std::uint64_t mask = summary & kParkSlotMask;
      if (mask == kParkSlotMask) return s + "all";
      for (std::size_t slot = 0; slot < 62; ++slot)
        if ((mask >> slot) & 1u) s += std::to_string(slot) + ",";
      if (s.back() == ',') s.pop_back();
      return s;
    }
    default:
      return "waiting-on-inputs";
  }
}

std::string dump_wedged_state(
    const StreamGraph& g,
    const std::function<EdgeDumpInfo(EdgeId)>& edge_info,
    const std::function<std::string(NodeId)>& node_info) {
  std::ostringstream dump;
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    const EdgeDumpInfo info = edge_info(e);
    dump << "edge " << e << " " << g.node_name(g.edge(e).from) << "->"
         << g.node_name(g.edge(e).to) << " " << info.occupancy << "/"
         << info.capacity << " pushed=" << info.data_pushed << "+"
         << info.dummies_pushed << "d";
    if (info.head.has_value())
      dump << " head=" << runtime::to_string(*info.head);
    if (info.tail.has_value())
      dump << " tail=" << runtime::to_string(*info.tail);
    dump << "\n";
  }
  for (NodeId n = 0; n < g.node_count(); ++n)
    dump << "node " << g.node_name(n) << " " << node_info(n) << "\n";
  return dump.str();
}

FiringCore::FiringCore(NodeId node, runtime::Kernel& kernel,
                       std::size_t in_slots, std::size_t out_slots,
                       runtime::NodeWrapper wrapper, std::uint64_t num_inputs,
                       DeliverySink& sink, runtime::Tracer* tracer,
                       const std::uint64_t* tick)
    : node_(node),
      kernel_(kernel),
      in_slots_(in_slots),
      out_slots_(out_slots),
      wrapper_(std::move(wrapper)),
      num_inputs_(num_inputs),
      sink_(sink),
      tracer_(tracer),
      tick_(tick),
      emitter_(out_slots),
      inputs_(in_slots) {}

void FiringCore::trace(TraceKind kind, std::size_t slot, std::uint64_t seq) {
  if (tracer_ != nullptr)
    tracer_->record(runtime::TraceEvent{kind, node_, slot, seq,
                                        tick_ != nullptr ? *tick_ : 0});
}

void FiringCore::queue_outputs(std::uint64_t seq, bool any_input_dummy) {
  for (std::size_t slot = 0; slot < out_slots_; ++slot) {
    const auto& v = emitter_.value(slot);
    if (v.has_value()) {
      (void)wrapper_.should_send_dummy(slot, seq, /*sent_data=*/true, false);
      pending_.push_back({slot, Message::data(seq, *v)});
      trace(TraceKind::DataSent, slot, seq);
    } else if (wrapper_.should_send_dummy(slot, seq, /*sent_data=*/false,
                                          any_input_dummy)) {
      pending_.push_back({slot, Message::dummy(seq)});
      trace(TraceKind::DummySent, slot, seq);
    }
  }
}

void FiringCore::queue_eos() {
  for (std::size_t slot = 0; slot < out_slots_; ++slot) {
    pending_.push_back({slot, Message::eos()});
    trace(TraceKind::EosSent, slot, kEosSeq);
  }
  eos_flooded_ = true;
}

bool FiringCore::drain_pending() {
  bool progressed = false;
  std::size_t write = 0;
  for (std::size_t i = 0; i < pending_.size(); ++i) {
    PendingMessage& pm = pending_[i];
    if (aborted_) {
      pending_[write++] = std::move(pm);
      continue;
    }
    switch (sink_.try_push(pm.out_slot, pm.message)) {
      case PushOutcome::Delivered:
        progressed = true;
        break;
      case PushOutcome::Blocked:
        pending_[write++] = std::move(pm);
        break;
      case PushOutcome::Aborted:
        aborted_ = true;
        pending_[write++] = std::move(pm);
        break;
    }
  }
  pending_.resize(write);
  return progressed;
}

bool FiringCore::fire_once() {
  if (in_slots_ == 0) {
    // Source: generates one sequence number per quantum, then EOS.
    if (source_seq_ >= num_inputs_) {
      queue_eos();
      return true;
    }
    emitter_.reset();
    static const std::vector<std::optional<runtime::Value>> no_inputs;
    kernel_.fire(source_seq_, no_inputs, emitter_);
    ++fires;
    trace(TraceKind::Fire, 0, source_seq_);
    queue_outputs(source_seq_, /*any_input_dummy=*/false);
    ++source_seq_;
    return true;
  }
  // Interior / sink: alignment needs every input head present; the next
  // accepted sequence number is the minimum head.
  std::uint64_t min_seq = kEosSeq;
  heads_.resize(in_slots_);
  for (std::size_t j = 0; j < in_slots_; ++j) {
    auto head = sink_.try_peek(j);
    if (!head.has_value()) return false;  // input unavailable (or aborted)
    heads_[j] = std::move(*head);
    min_seq = std::min(min_seq, heads_[j].seq);
  }
  if (min_seq == kEosSeq) {
    queue_eos();
    return true;
  }
  bool any_dummy = false;
  bool any_data = false;
  for (std::size_t j = 0; j < in_slots_; ++j) {
    inputs_[j].reset();
    if (heads_[j].seq != min_seq) continue;  // upstream filtered min_seq
    if (heads_[j].kind == MessageKind::Data) {
      inputs_[j] = std::move(heads_[j].payload);
      any_data = true;
      ++sink_data;
      trace(TraceKind::DataConsumed, j, min_seq);
    } else {
      any_dummy = true;
      trace(TraceKind::DummyConsumed, j, min_seq);
    }
    sink_.pop(j);
  }
  emitter_.reset();
  if (any_data) {
    kernel_.fire(min_seq, inputs_, emitter_);
    ++fires;
    trace(TraceKind::Fire, 0, min_seq);
  }
  queue_outputs(min_seq, any_dummy);
  return true;
}

bool FiringCore::step() {
  if (done_ || aborted_) return false;
  bool progressed = false;
  // Drain pending emissions first: a firing's outputs must all leave before
  // the next alignment, but a full channel must not block messages destined
  // for channels with space.
  if (!pending_.empty()) {
    progressed = drain_pending();
    if (aborted_) return false;
    if (!pending_.empty()) return progressed;
  }
  if (eos_flooded_) {
    done_ = true;
    return true;
  }
  return fire_once() || progressed;
}

std::uint64_t FiringCore::park_summary() const {
  if (done_) return kParkDone << kParkTagShift;
  if (!pending_.empty()) {
    std::uint64_t mask = 0;
    for (const PendingMessage& pm : pending_) {
      if (pm.out_slot >= 62)
        return (kParkOutputs << kParkTagShift) | kParkSlotMask;
      mask |= std::uint64_t{1} << pm.out_slot;
    }
    return (kParkOutputs << kParkTagShift) | mask;
  }
  return kParkInputs << kParkTagShift;
}

std::string FiringCore::describe() const {
  std::string s = done_ ? "done" : "running";
  s += " src_seq=" + std::to_string(source_seq_);
  s += " pending=" + std::to_string(pending_.size());
  for (const auto& pm : pending_)
    s += " [slot=" + std::to_string(pm.out_slot) + " " +
         runtime::to_string(pm.message) + "]";
  return s;
}

}  // namespace sdaf::exec
