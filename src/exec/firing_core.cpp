#include "src/exec/firing_core.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <sstream>

#include "src/support/contracts.h"

namespace sdaf::exec {

using runtime::kEosSeq;
using runtime::Message;
using runtime::MessageKind;
using runtime::TraceKind;

namespace {
constexpr std::size_t kNoTail = std::numeric_limits<std::size_t>::max();
}  // namespace

std::optional<runtime::HeadView> DeliverySink::peek_feed(bool /*may_wait*/) {
  SDAF_ASSERT(false && "sink does not support port-fed sources");
  return std::nullopt;
}

runtime::Message DeliverySink::pop_feed() {
  SDAF_ASSERT(false && "sink does not support port-fed sources");
  return {};
}

std::string describe_park_summary(std::uint64_t summary) {
  switch (summary >> kParkTagShift) {
    case kParkDone:
      return "done";
    case kParkOutputs: {
      std::string s = "blocked-on-outputs mask=";
      const std::uint64_t mask = summary & kParkSlotMask;
      if (mask == kParkSlotMask) return s + "all";
      for (std::size_t slot = 0; slot < 62; ++slot)
        if ((mask >> slot) & 1u) s += std::to_string(slot) + ",";
      if (s.back() == ',') s.pop_back();
      return s;
    }
    default:
      return "waiting-on-inputs";
  }
}

std::string dump_wedged_state(
    const StreamGraph& g,
    const std::function<EdgeDumpInfo(EdgeId)>& edge_info,
    const std::function<NodeDumpInfo(NodeId)>& node_info,
    const runtime::Tracer* tracer, std::size_t trace_tail) {
  std::ostringstream dump;
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    const EdgeDumpInfo info = edge_info(e);
    dump << "edge " << e << " " << g.node_name(g.edge(e).from) << "->"
         << g.node_name(g.edge(e).to) << " " << info.occupancy << "/"
         << info.capacity << " pushed=" << info.data_pushed << "+"
         << info.dummies_pushed << "d";
    if (info.head.has_value())
      dump << " head=" << runtime::to_string(*info.head);
    if (info.tail.has_value())
      dump << " tail=" << runtime::to_string(*info.tail);
    dump << "\n";
  }
  for (NodeId n = 0; n < g.node_count(); ++n) {
    const NodeDumpInfo info = node_info(n);
    dump << "node " << g.node_name(n) << " " << info.describe
         << " park=" << describe_park_summary(info.park_summary) << "\n";
    if (tracer != nullptr)
      for (const auto& e : tracer->tail_for_node(n, trace_tail))
        dump << "  trace " << e.to_string() << "\n";
  }
  return dump.str();
}

FiringCore::FiringCore(NodeId node, runtime::Kernel& kernel,
                       std::size_t in_slots, std::size_t out_slots,
                       runtime::NodeWrapper wrapper, std::uint64_t num_inputs,
                       DeliverySink& sink, std::uint32_t batch,
                       runtime::Tracer* tracer, const std::uint64_t* tick,
                       bool port_fed, obs::NodeCounters* metrics)
    : node_(node),
      kernel_(kernel),
      in_slots_(in_slots),
      out_slots_(out_slots),
      wrapper_(std::move(wrapper)),
      num_inputs_(num_inputs),
      sink_(sink),
      batch_(std::max<std::uint32_t>(1, batch)),
      tracer_(tracer),
      tick_(tick),
      port_fed_(port_fed),
      metrics_(metrics),
      emitter_(out_slots),
      inputs_(in_slots),
      feed_input_(port_fed ? 1 : 0),
      heads_(in_slots),
      pending_tail_(out_slots, kNoTail),
      slot_blocked_(out_slots, 0) {
  SDAF_EXPECTS(!port_fed_ || in_slots_ == 0);
}

void FiringCore::trace(TraceKind kind, std::size_t slot, std::uint64_t seq) {
  if constexpr (runtime::kTracingEnabled) {
    if (tracer_ != nullptr) {
      // The sim stamps its sweep counter; the live backends stamp a
      // steady-clock timestamp instead (cross-thread order by time, not
      // by a global tick).
      runtime::TraceEvent e{kind, node_, slot, seq,
                            tick_ != nullptr ? *tick_ : 0};
      if (tick_ == nullptr)
        e.ts_ns = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now().time_since_epoch())
                .count());
      tracer_->record(e);
    }
  }
}

void FiringCore::queue_dummy(std::size_t slot, std::uint64_t seq) {
  const std::size_t idx = pending_tail_[slot];
  if (idx != kNoTail) {
    // The slot's most recent pending entry is a dummy run; extend it when
    // the sequence number continues it (per-slot FIFO order is preserved
    // because data/EOS emissions invalidate the tail index).
    PendingRun& pr = pending_[idx];
    if (pr.message.seq + pr.run == seq) {
      ++pr.run;
      return;
    }
  }
  pending_tail_[slot] = pending_.size();
  pending_.push_back({slot, Message::dummy(seq), 1});
}

void FiringCore::queue_outputs(std::uint64_t seq, bool any_input_dummy) {
  for (std::size_t slot = 0; slot < out_slots_; ++slot) {
    if (emitter_.value(slot).has_value()) {
      (void)wrapper_.should_send_dummy(slot, seq, /*sent_data=*/true, false);
      pending_.push_back({slot, Message::data(seq, emitter_.take(slot)), 1});
      pending_tail_[slot] = kNoTail;
      if (metrics_ != nullptr) obs::bump(metrics_->data_out);
      trace(TraceKind::DataSent, slot, seq);
    } else if (wrapper_.should_send_dummy(slot, seq, /*sent_data=*/false,
                                          any_input_dummy)) {
      queue_dummy(slot, seq);
      if (metrics_ != nullptr) obs::bump(metrics_->dummy_out);
      trace(TraceKind::DummySent, slot, seq);
    }
  }
}

void FiringCore::queue_eos() {
  for (std::size_t slot = 0; slot < out_slots_; ++slot) {
    pending_.push_back({slot, Message::eos(), 1});
    pending_tail_[slot] = kNoTail;
    if (metrics_ != nullptr) obs::bump(metrics_->eos_out);
    trace(TraceKind::EosSent, slot, kEosSeq);
  }
  eos_flooded_ = true;
  // Latch the final counters in the plane's finished set: a barrier begun
  // after this node drains treats the EOS flood as marker-equivalent
  // downstream, and the snapshot carries these counters as the node's cut.
  if (plane_ != nullptr) plane_->node_finished(node_, make_cut(/*done=*/true));
}

ckpt::NodeCut FiringCore::make_cut(bool done) const {
  ckpt::NodeCut cut;
  cut.done = done ? 1 : 0;
  cut.fires = fires;
  cut.sink_data = sink_data;
  cut.source_seq = source_seq_;
  cut.last_sent = wrapper_.last_sent();
  kernel_.save_state(cut.kernel_state);
  return cut;
}

void FiringCore::checkpoint(std::uint64_t barrier_seq) {
  if (plane_ != nullptr)
    plane_->node_checkpoint(node_, make_cut(/*done=*/false));
  // Forward Marker(S) on every output, behind any pre-S pending emissions
  // (per-slot FIFO through drain_pending keeps the barrier invariant: all
  // pre-cut messages precede the marker on each channel). Markers are not
  // traffic: no fires, no data/dummy counters.
  for (std::size_t slot = 0; slot < out_slots_; ++slot) {
    pending_.push_back({slot, Message::marker(barrier_seq), 1});
    pending_tail_[slot] = kNoTail;
  }
}

void FiringCore::restore_cut(const ckpt::NodeCut& cut) {
  fires = cut.fires;
  sink_data = cut.sink_data;
  source_seq_ = cut.source_seq;
  wrapper_.restore_last_sent(cut.last_sent);
  kernel_.load_state(cut.kernel_state);
}

void FiringCore::mark_done() {
  eos_flooded_ = true;
  done_ = true;
  // Seed the plane's finished set so a barrier begun after the restore
  // still completes (the node will never step again, so this is its only
  // chance to report). Call restore_cut first: the final cut must carry
  // the restored counters, not zeros.
  if (plane_ != nullptr) plane_->node_finished(node_, make_cut(/*done=*/true));
}

bool FiringCore::drain_pending() {
  bool progressed = false;
  std::size_t write = 0;
  std::fill(slot_blocked_.begin(), slot_blocked_.end(), 0);
  for (std::size_t i = 0; i < pending_.size(); ++i) {
    PendingRun& pr = pending_[i];
    // A blocked message parks every later message for the same slot too
    // (per-slot FIFO); other slots keep draining -- per-channel asynchrony.
    if (aborted_ || slot_blocked_[pr.out_slot] != 0) {
      if (write != i) pending_[write] = std::move(pr);
      ++write;
      continue;
    }
    bool keep = false;
    if (pr.run == 1) {
      switch (sink_.try_push(pr.out_slot, std::move(pr.message))) {
        case PushOutcome::Delivered:
          progressed = true;
          break;
        case PushOutcome::Blocked:
          slot_blocked_[pr.out_slot] = 1;
          keep = true;
          break;
        case PushOutcome::Aborted:
          aborted_ = true;
          keep = true;
          break;
      }
    } else {
      PushOutcome outcome = PushOutcome::Delivered;
      const std::size_t accepted =
          sink_.try_push_dummies(pr.out_slot, pr.message.seq, pr.run,
                                 &outcome);
      if (accepted > 0) progressed = true;
      pr.message.seq += accepted;
      pr.run -= static_cast<std::uint32_t>(accepted);
      if (pr.run > 0) {
        if (outcome == PushOutcome::Aborted)
          aborted_ = true;
        else
          slot_blocked_[pr.out_slot] = 1;
        keep = true;
      }
    }
    if (keep) {
      if (write != i) pending_[write] = std::move(pr);
      ++write;
    }
  }
  pending_.resize(write);
  // Surviving entries changed position; stop coalescing into them.
  std::fill(pending_tail_.begin(), pending_tail_.end(), kNoTail);
  return progressed;
}

std::uint64_t FiringCore::fire_once(std::uint64_t budget) {
  static const std::vector<std::optional<runtime::Value>> no_inputs;
  if (in_slots_ == 0 && port_fed_) {
    // Port-fed source: one feed message per firing. The blocking contract
    // mirrors interior alignment -- the sink may only wait inside peek_feed
    // when no outputs are pending.
    auto head = sink_.peek_feed(/*may_wait=*/pending_.empty());
    if (!head.has_value()) return 0;  // feed empty (or aborted)
    if (head->kind == MessageKind::Marker) {
      // Barrier reaches a port-fed source directly from its InputPort:
      // checkpoint between seq S-1 and seq S and forward the marker.
      const std::uint64_t barrier = head->seq;
      (void)sink_.pop_feed();
      checkpoint(barrier);
      return 1;
    }
    if (head->kind == MessageKind::Eos) {
      // Unlike interior nodes (which leave EOS in graph channels for
      // teardown), the feed EOS is consumed: an empty feed afterwards is
      // what lets the pooled backend's extended quiescence rule read
      // "no port has pending items" exactly.
      (void)sink_.pop_feed();
      queue_eos();
      return 1;
    }
    Message m = sink_.pop_feed();
    emitter_.reset();
    if (m.payload.has_value()) {
      feed_input_[0] = std::move(m.payload);
      kernel_.fire(m.seq, feed_input_, emitter_);
      feed_input_[0].reset();
    } else {
      // Firing token: exactly the call shape of a self-generating source.
      kernel_.fire(m.seq, no_inputs, emitter_);
    }
    ++fires;
    if (metrics_ != nullptr) obs::bump(metrics_->fires);
    trace(TraceKind::Fire, 0, m.seq);
    queue_outputs(m.seq, /*any_input_dummy=*/false);
    source_seq_ = m.seq + 1;
    return 1;
  }
  if (in_slots_ == 0) {
    // Source: generates one sequence number per firing, then EOS.
    if (source_seq_ >= num_inputs_) {
      queue_eos();
      return 1;
    }
    emitter_.reset();
    kernel_.fire(source_seq_, no_inputs, emitter_);
    ++fires;
    if (metrics_ != nullptr) obs::bump(metrics_->fires);
    trace(TraceKind::Fire, 0, source_seq_);
    queue_outputs(source_seq_, /*any_input_dummy=*/false);
    ++source_seq_;
    return 1;
  }
  // Interior / sink: alignment needs every input head present; the next
  // accepted sequence number is the minimum head. Peeks are payload-free,
  // and a blocking sink may only wait when no outputs are pending --
  // otherwise an input wait could deadlock against our own undelivered
  // messages.
  const bool may_wait = pending_.empty();
  std::uint64_t min_seq = kEosSeq;
  bool any_data_at_min = false;
  bool marker_at_min = false;
  for (std::size_t j = 0; j < in_slots_; ++j) {
    auto head = sink_.peek_head(j, may_wait);
    if (!head.has_value()) return 0;  // input unavailable (or aborted)
    heads_[j] = *head;
    if (head->seq < min_seq) {
      min_seq = head->seq;
      any_data_at_min = head->kind == MessageKind::Data;
      marker_at_min = head->kind == MessageKind::Marker;
    } else if (head->seq == min_seq) {
      if (head->kind == MessageKind::Data) any_data_at_min = true;
      if (head->kind == MessageKind::Marker) marker_at_min = true;
    }
  }
  if (marker_at_min) {
    // A Marker(S) at the minimum head means every input has drained below
    // S: by the barrier invariant (markers precede all seq >= S traffic on
    // their channel) every head is now Marker(S) or EOS -- an EOS head is
    // an upstream that finished before the barrier, whose final cut the
    // plane already holds. Pop the markers (EOS stays for teardown),
    // checkpoint, and forward. No firing: the barrier is between S-1 and S.
    for (std::size_t j = 0; j < in_slots_; ++j) {
      if (heads_[j].kind == MessageKind::Marker) {
        SDAF_ASSERT(heads_[j].seq == min_seq);
        sink_.pop(j);
      } else {
        SDAF_ASSERT(heads_[j].kind == MessageKind::Eos);
      }
    }
    checkpoint(min_seq);
    return 1;
  }
  if (min_seq == kEosSeq) {
    queue_eos();
    return 1;
  }

  if (!any_data_at_min) {
    // Every aligned head is a dummy: the aligned set stays fixed for as
    // long as each aligned run continues *and* stays below every other
    // head, so the whole stretch collapses into one firing loop with a
    // single batched pop per slot. Semantically identical to r
    // message-at-a-time pure-dummy firings (the wrapper is consulted once
    // per slot per seq, exactly as before); `budget` caps r so batch=1
    // keeps the exact message-at-a-time pacing of the paper's model.
    std::uint64_t r = budget;
    for (std::size_t j = 0; j < in_slots_; ++j) {
      if (heads_[j].seq == min_seq)
        r = std::min<std::uint64_t>(r, heads_[j].run);
      else
        r = std::min<std::uint64_t>(r, heads_[j].seq - min_seq);
    }
    SDAF_ASSERT(r >= 1);
    emitter_.reset();
    for (std::uint64_t s = 0; s < r; ++s) {
      const std::uint64_t seq = min_seq + s;
      for (std::size_t j = 0; j < in_slots_; ++j)
        if (heads_[j].seq == min_seq) trace(TraceKind::DummyConsumed, j, seq);
      queue_outputs(seq, /*any_input_dummy=*/true);
    }
    for (std::size_t j = 0; j < in_slots_; ++j)
      if (heads_[j].seq == min_seq) {
        sink_.pop_dummies(j, static_cast<std::size_t>(r));
        if (metrics_ != nullptr) obs::bump(metrics_->dummy_in, r);
      }
    return r;
  }

  bool any_dummy = false;
  bool any_data = false;
  for (std::size_t j = 0; j < in_slots_; ++j) {
    inputs_[j].reset();
    if (heads_[j].seq != min_seq) continue;  // upstream filtered min_seq
    if (heads_[j].kind == MessageKind::Data) {
      // One critical section: the head (payload included) moves out.
      Message m = sink_.pop_head(j);
      inputs_[j] = std::move(m.payload);
      any_data = true;
      ++sink_data;
      if (metrics_ != nullptr) obs::bump(metrics_->data_in);
      trace(TraceKind::DataConsumed, j, min_seq);
    } else {
      any_dummy = true;
      if (metrics_ != nullptr) obs::bump(metrics_->dummy_in);
      trace(TraceKind::DummyConsumed, j, min_seq);
      sink_.pop(j);
    }
  }
  emitter_.reset();
  if (any_data) {
    kernel_.fire(min_seq, inputs_, emitter_);
    ++fires;
    if (metrics_ != nullptr) obs::bump(metrics_->fires);
    trace(TraceKind::Fire, 0, min_seq);
  }
  queue_outputs(min_seq, any_dummy);
  return 1;
}

bool FiringCore::step() {
  if (done_ || aborted_) return false;
  bool progressed = false;
  // Drain pending emissions first: a firing's outputs must all leave before
  // the next alignment, but a full channel must not block messages destined
  // for channels with space.
  if (!pending_.empty()) {
    progressed = drain_pending();
    if (aborted_) return false;
    if (!pending_.empty()) return progressed;
  }
  if (eos_flooded_) {
    done_ = true;
    return true;
  }
  // The batch quantum: fire up to batch_ sequence numbers back to back,
  // accumulating outputs (dummy runs coalesce in pending_), so the next
  // drain delivers them with one channel op per slot per run instead of
  // one per message. A consumed dummy run spends its length of budget, so
  // batch=1 is exactly message-at-a-time.
  std::uint64_t budget = batch_;
  while (budget > 0) {
    const std::uint64_t used = fire_once(budget);
    if (used == 0) break;
    progressed = true;
    budget -= std::min(used, budget);
    if (eos_flooded_) break;
  }
  return progressed;
}

std::uint64_t FiringCore::park_summary() const {
  if (done_) return kParkDone << kParkTagShift;
  if (!pending_.empty()) {
    std::uint64_t mask = 0;
    for (const PendingRun& pr : pending_) {
      if (pr.out_slot >= 62)
        return (kParkOutputs << kParkTagShift) | kParkSlotMask;
      mask |= std::uint64_t{1} << pr.out_slot;
    }
    return (kParkOutputs << kParkTagShift) | mask;
  }
  return kParkInputs << kParkTagShift;
}

std::string FiringCore::describe() const {
  std::string s = done_ ? "done" : "running";
  s += " src_seq=" + std::to_string(source_seq_);
  s += " pending=" + std::to_string(pending_.size());
  for (const auto& pr : pending_) {
    s += " [slot=" + std::to_string(pr.out_slot) + " " +
         runtime::to_string(pr.message);
    if (pr.run > 1) s += "x" + std::to_string(pr.run);
    s += "]";
  }
  return s;
}

}  // namespace sdaf::exec
