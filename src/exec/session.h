// One execution API. exec::Session is the single entry point for running a
// compiled stream graph, in either of two shapes:
//
//   - Streaming: session.open(StreamSpec) returns an exec::Stream whose
//     InputPorts/OutputPorts carry live, backpressured traffic with
//     dynamic per-port EOS (src/exec/stream.h) -- the serving shape.
//   - Batch: session.run(RunSpec) / compile_and_run() execute num_inputs
//     items to completion or deadlock. This is a thin adapter over the
//     same ports (open, feed N firing tokens, close, drain), bit-identical
//     to the historical self-generating run.
//
// The backends -- the deterministic simulator, the thread-per-node
// executor, and the pooled scheduler -- share one firing rule
// (src/exec/firing_core.cpp) and are differential-tested bit-identical
// (tests/test_session.cpp, tests/test_stream.cpp), so switching backends
// changes cost, not semantics:
//
//   exec::Session session(graph, kernels);
//   exec::RunSpec spec;
//   spec.backend = exec::Backend::Pooled;
//   spec.num_inputs = 10'000;
//   const auto [compiled, report] = session.compile_and_run(spec);
//
// compile_and_run() chains the process-wide core::CompileCache (or one you
// inject) in front of backend dispatch, so resubmitting a known topology
// skips CS4 decomposition and interval computation entirely.
//
// RunSpec/RunReport (and the Backend enum) live in src/exec/run_types.h,
// which the backends consume directly -- there are no per-backend option or
// result types anymore.
#pragma once

#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "src/core/compile.h"
#include "src/core/compile_cache.h"
#include "src/exec/run_types.h"
#include "src/exec/stream.h"
#include "src/graph/stream_graph.h"
#include "src/obs/metrics.h"
#include "src/qos/admission.h"
#include "src/runtime/kernel.h"

namespace sdaf::runtime {
class PoolExecutor;
}  // namespace sdaf::runtime

namespace sdaf::exec {

class Session {
 public:
  // kernels[n] drives node n. Kernels must be stateless across runs (the
  // wrapper/alignment state is per-run); on concurrent backends a kernel
  // instance is invoked from one thread at a time per run.
  Session(const StreamGraph& g,
          std::vector<std::shared_ptr<runtime::Kernel>> kernels);

  // One execution to completion or deadlock on the chosen backend. This is
  // the thin batch adapter over the port machinery: unless the caller bound
  // ports already, the sources are fed from pre-closed ingress channels
  // holding num_inputs firing tokens plus EOS -- open, feed N, close, drain
  // -- which is bit-identical to the historical self-generating run (same
  // traffic, fires, verdicts, and Sim sweep counts; the differential
  // harness enforces it).
  [[nodiscard]] RunReport run(const RunSpec& spec);

  // Long-lived streaming execution with external ports: push live traffic
  // through InputPorts (dynamic EOS per port) and consume OutputPorts,
  // instead of preconfiguring an item count. See src/exec/stream.h.
  [[nodiscard]] Stream open(StreamSpec spec);

  // Admission-controlled open: predicts the stream's resource footprint
  // from its compiled intervals (qos::estimate over spec.run.intervals),
  // asks `admission` to reserve it, and either opens the stream with the
  // reservation pinned to its lifetime (StreamSpec::lease releases it when
  // the Stream is destroyed) or refuses with the typed rejection -- nothing
  // is allocated or scheduled for a refused open. The same decision the
  // sdafd Open path makes, available in-process.
  struct OpenDecision {
    std::optional<Stream> stream;            // engaged iff admitted
    std::optional<qos::Rejection> rejected;  // engaged iff refused
    qos::TenantCost predicted;               // the cost model's estimate
  };
  [[nodiscard]] OpenDecision open(StreamSpec spec, qos::Admission& admission);

  // Rehydrates an open stream from a Stream::snapshot() cut: node counters,
  // kernel state, edge traffic baselines and undelivered tap residue resume
  // exactly at the barrier; open input ports resume at their cut sequence
  // numbers (the caller replays pushes -- and closes -- from
  // PortCut::next_seq on; clients dedupe re-delivered output by seq, which
  // together give exactly-once egress). The restored stream runs at
  // snapshot.epoch + 1 on spec.run.backend -- snapshots are
  // backend-portable. nullopt = the snapshot does not match this session's
  // compiled topology/avoidance configuration (signature, version, or
  // shape), or is internally inconsistent. See docs/SNAPSHOTS.md.
  [[nodiscard]] std::optional<Stream> restore(
      StreamSpec spec, const ckpt::StreamSnapshot& snapshot);

  // CompileCache -> RunSpec::apply -> backend dispatch. The compile
  // algorithm follows spec.mode (Propagation/NonPropagation); with
  // DummyMode::None the graph is compiled for the report only and the run
  // proceeds without avoidance. When the compile rejects (non-CS4 under
  // GeneralPolicy::Reject), `report` comes back not-completed and
  // `compiled->diagnostics` says why.
  struct CompiledRun {
    std::shared_ptr<const core::CompileResult> compiled;
    RunReport report;
  };
  [[nodiscard]] CompiledRun compile_and_run(
      RunSpec spec, core::CompileOptions options = {},
      core::Rounding rounding = core::Rounding::Floor);

  // Asynchronous submission: submit() never runs the workload inline. The
  // Pooled backend with a shared spec.pool rides the pool's own ticket
  // machinery (the graph must then outlive get(), as it must outlive
  // PoolExecutor::wait); every other configuration is offloaded to a
  // dedicated thread that owns a *copy* of the graph, so neither the
  // Session nor the caller's graph needs to survive until get(). A
  // Pending that is destroyed without get() waits for the offloaded run
  // to finish (std::future semantics) and discards the report.
  class Pending {
   public:
    [[nodiscard]] RunReport get();

   private:
    friend class Session;
    std::optional<RunReport> ready_;
    std::future<RunReport> future_;
    runtime::PoolExecutor* pool_ = nullptr;
    std::uint64_t ticket_ = 0;
  };
  [[nodiscard]] Pending submit(const RunSpec& spec);

  // The cache compile_and_run consults; defaults to process_cache().
  void set_compile_cache(core::CompileCache* cache);
  [[nodiscard]] static core::CompileCache& process_cache();

  // Per-tenant roll-up of every run() this Session completed, keyed by
  // RunSpec::tenant and sorted by tenant name: runs, total fires, data vs.
  // dummy traffic (the measured avoidance overhead), the graph's certified
  // channel footprint, and accumulated wall time. Folded from RunReports at
  // run() exit -- zero hot-path cost, available even with RunSpec::metrics
  // unset. Only synchronous run()/compile_and_run() executions fold here;
  // submit()'s asynchronous runs are not tracked (the offloaded path runs
  // inside a throwaway worker Session).
  [[nodiscard]] std::vector<obs::TenantMetrics> metrics() const;

  [[nodiscard]] const StreamGraph& graph() const { return graph_; }

 private:
  void fold_metrics(const RunSpec& spec, const RunReport& report);

  const StreamGraph& graph_;
  std::vector<std::shared_ptr<runtime::Kernel>> kernels_;
  core::CompileCache* cache_;
  mutable std::mutex ledger_mu_;
  std::map<std::string, obs::TenantMetrics> ledger_;
};

}  // namespace sdaf::exec
