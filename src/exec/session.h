// One execution API. exec::Session is the single entry point for running a
// compiled stream graph: pick a backend in exec::RunSpec, get a uniform
// exec::RunReport back. The backends -- the deterministic simulator, the
// thread-per-node executor, and the pooled scheduler -- share one firing
// rule (src/exec/firing_core.cpp) and are differential-tested bit-identical
// (tests/test_session.cpp), so switching backends changes cost, not
// semantics:
//
//   exec::Session session(graph, kernels);
//   exec::RunSpec spec;
//   spec.backend = exec::Backend::Pooled;
//   spec.num_inputs = 10'000;
//   const auto [compiled, report] = session.compile_and_run(spec);
//
// compile_and_run() chains the process-wide core::CompileCache (or one you
// inject) in front of backend dispatch, so resubmitting a known topology
// skips CS4 decomposition and interval computation entirely.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/core/compile.h"
#include "src/core/compile_cache.h"
#include "src/graph/stream_graph.h"
#include "src/runtime/executor.h"
#include "src/runtime/kernel.h"
#include "src/runtime/trace.h"

namespace sdaf::runtime {
class PoolExecutor;
}  // namespace sdaf::runtime

namespace sdaf::exec {

enum class Backend : std::uint8_t {
  Sim,       // deterministic single-threaded reference; exact sweep verdicts
  Threaded,  // thread-per-node + watchdog; the paper's model made literal
  Pooled,    // fixed worker pool; exact quiescence-based deadlock detection
};

[[nodiscard]] const char* to_string(Backend b);
[[nodiscard]] std::optional<Backend> backend_from_string(std::string_view s);

// Everything one run needs, regardless of backend. The per-edge fields
// (intervals, forward_on_filter) come straight from a core::CompileResult
// via apply(); the tail is per-backend tuning with sensible defaults.
struct RunSpec {
  Backend backend = Backend::Sim;
  runtime::DummyMode mode = runtime::DummyMode::Propagation;
  // Per-edge dummy thresholds (runtime::kInfiniteInterval = none). Empty =
  // all infinite.
  std::vector<std::int64_t> intervals;
  // Propagation mode: per-edge continuation-forwarding flags
  // (core::CompileResult::forward_on_filter). Empty = none.
  std::vector<std::uint8_t> forward_on_filter;
  // Number of sequence numbers each source generates (0 .. num_inputs-1).
  std::uint64_t num_inputs = 0;
  // Optional event recorder (not owned); works on every backend.
  runtime::Tracer* tracer = nullptr;

  // --- Sim tuning ---
  std::uint64_t max_sweeps = std::uint64_t{1} << 30;

  // --- Threaded tuning ---
  std::chrono::milliseconds watchdog_tick{2};
  int deadlock_confirm_ticks = 30;

  // --- Pooled tuning ---
  // Shared pool to run on (not owned); lets many sessions/tenants
  // interleave on one fixed worker set. Null = a private pool per run.
  runtime::PoolExecutor* pool = nullptr;
  // Workers for a private pool (0 = hardware concurrency); ignored when
  // `pool` is set.
  std::size_t pool_workers = 0;

  // Adopt a compile result's per-edge configuration: integer thresholds
  // under `rounding`, plus the continuation-forwarding set when `mode` is
  // Propagation.
  void apply(const core::CompileResult& compiled,
             core::Rounding rounding = core::Rounding::Floor);
};

// Uniform result: the union of the old runtime::RunResult and
// sim::SimResult surfaces.
struct RunReport {
  Backend backend = Backend::Sim;
  bool completed = false;
  bool deadlocked = false;
  double wall_seconds = 0.0;
  std::uint64_t sweeps = 0;  // Sim only; 0 elsewhere
  std::vector<runtime::EdgeTraffic> edges;  // per edge id
  std::vector<std::uint64_t> fires;         // kernel invocations per node
  std::vector<std::uint64_t> sink_data;     // data msgs consumed per node
  // Non-empty iff deadlocked: channel occupancies and per-node stuck state.
  std::string state_dump;

  [[nodiscard]] std::uint64_t total_dummies() const;
  [[nodiscard]] std::uint64_t total_data() const;
};

class Session {
 public:
  // kernels[n] drives node n. Kernels must be stateless across runs (the
  // wrapper/alignment state is per-run); on concurrent backends a kernel
  // instance is invoked from one thread at a time per run.
  Session(const StreamGraph& g,
          std::vector<std::shared_ptr<runtime::Kernel>> kernels);

  // One execution to completion or deadlock on the chosen backend.
  [[nodiscard]] RunReport run(const RunSpec& spec);

  // CompileCache -> RunSpec::apply -> backend dispatch. The compile
  // algorithm follows spec.mode (Propagation/NonPropagation); with
  // DummyMode::None the graph is compiled for the report only and the run
  // proceeds without avoidance. When the compile rejects (non-CS4 under
  // GeneralPolicy::Reject), `report` comes back not-completed and
  // `compiled->diagnostics` says why.
  struct CompiledRun {
    std::shared_ptr<const core::CompileResult> compiled;
    RunReport report;
  };
  [[nodiscard]] CompiledRun compile_and_run(
      RunSpec spec, core::CompileOptions options = {},
      core::Rounding rounding = core::Rounding::Floor);

  // Asynchronous submission. Only the Pooled backend with a shared
  // spec.pool actually runs concurrently with the caller; the other
  // backends execute inline at submit() and get() just returns the report.
  class Pending {
   public:
    [[nodiscard]] RunReport get();

   private:
    friend class Session;
    std::optional<RunReport> ready_;
    runtime::PoolExecutor* pool_ = nullptr;
    std::uint64_t ticket_ = 0;
  };
  [[nodiscard]] Pending submit(const RunSpec& spec);

  // The cache compile_and_run consults; defaults to process_cache().
  void set_compile_cache(core::CompileCache* cache);
  [[nodiscard]] static core::CompileCache& process_cache();

  [[nodiscard]] const StreamGraph& graph() const { return graph_; }

 private:
  const StreamGraph& graph_;
  std::vector<std::shared_ptr<runtime::Kernel>> kernels_;
  core::CompileCache* cache_;
};

}  // namespace sdaf::exec
