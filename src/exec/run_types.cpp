#include "src/exec/run_types.h"

namespace sdaf::exec {

const char* to_string(Backend b) {
  switch (b) {
    case Backend::Sim:
      return "sim";
    case Backend::Threaded:
      return "threaded";
    case Backend::Pooled:
      return "pooled";
  }
  return "?";
}

std::optional<Backend> backend_from_string(std::string_view s) {
  if (s == "sim") return Backend::Sim;
  if (s == "threaded") return Backend::Threaded;
  if (s == "pooled") return Backend::Pooled;
  return std::nullopt;
}

runtime::BoundedChannel* PortBinding::feed_for(NodeId n) const {
  for (std::size_t i = 0; i < source_nodes.size(); ++i)
    if (source_nodes[i] == n) return feeds[i];
  return nullptr;
}

runtime::BoundedChannel* PortBinding::egress_for(NodeId n) const {
  for (std::size_t i = 0; i < sink_nodes.size(); ++i)
    if (sink_nodes[i] == n) return egress[i];
  return nullptr;
}

void RunSpec::apply(const core::CompileResult& compiled,
                    core::Rounding rounding) {
  intervals = compiled.integer_intervals(rounding);
  forward_on_filter = mode == runtime::DummyMode::Propagation
                          ? compiled.forward_on_filter()
                          : std::vector<std::uint8_t>{};
}

std::uint64_t RunReport::total_dummies() const {
  std::uint64_t total = 0;
  for (const auto& e : edges) total += e.dummies;
  return total;
}

std::uint64_t RunReport::total_data() const {
  std::uint64_t total = 0;
  for (const auto& e : edges) total += e.data;
  return total;
}

}  // namespace sdaf::exec
