#include "src/exec/session.h"

#include "src/runtime/channel.h"
#include "src/runtime/executor.h"
#include "src/runtime/pool_executor.h"
#include "src/sim/simulation.h"
#include "src/support/contracts.h"
#include "src/support/timer.h"

namespace sdaf::exec {

Session::Session(const StreamGraph& g,
                 std::vector<std::shared_ptr<runtime::Kernel>> kernels)
    : graph_(g), kernels_(std::move(kernels)), cache_(&process_cache()) {
  SDAF_EXPECTS(kernels_.size() == g.node_count());
  for (const auto& k : kernels_) SDAF_EXPECTS(k != nullptr);
}

core::CompileCache& Session::process_cache() {
  static core::CompileCache cache(256);
  return cache;
}

void Session::set_compile_cache(core::CompileCache* cache) {
  SDAF_EXPECTS(cache != nullptr);
  cache_ = cache;
}

namespace {

// The batch adapter's half of the port contract: one pre-closed ingress
// feed per source, preloaded with num_inputs payload-free firing tokens and
// EOS. A token-fed source is bit-identical to a self-generating one (the
// kernel sees the same empty input vector, the feed never runs dry, and the
// EOS lands exactly after item N), so this is "open, feed N, close, drain"
// with the historical semantics preserved to the sweep. The full preload is
// what buys that exactness (a source may never observe a starved feed
// mid-run), at the price of O(num_inputs) feed memory per source -- fine
// for every workload in this repo (<= ~1M items); truly huge batch runs
// should stream through Session::open instead (ROADMAP tracks a chunked
// adapter).
struct BatchFeeds {
  std::vector<std::unique_ptr<runtime::BoundedChannel>> channels;
  PortBinding binding;

  BatchFeeds(const StreamGraph& g, std::uint64_t num_inputs) {
    binding.live = false;
    for (const NodeId n : g.sources()) {
      auto feed = std::make_unique<runtime::BoundedChannel>(
          static_cast<std::size_t>(num_inputs) + 1, /*monitor=*/nullptr);
      for (std::uint64_t seq = 0; seq < num_inputs; ++seq) {
        const auto r = feed->try_push(runtime::Message::data(seq, {}));
        SDAF_ASSERT(r == runtime::PushResult::Ok);
      }
      const auto r = feed->try_push(runtime::Message::eos());
      SDAF_ASSERT(r == runtime::PushResult::Ok);
      binding.source_nodes.push_back(n);
      binding.feeds.push_back(feed.get());
      channels.push_back(std::move(feed));
    }
    for (const NodeId n : g.sinks()) {
      binding.sink_nodes.push_back(n);
      binding.egress.push_back(nullptr);  // batch runs keep sinks untapped
    }
  }
};

}  // namespace

RunReport Session::run(const RunSpec& spec) {
  if (spec.ports == nullptr && !graph_.sources().empty()) {
    BatchFeeds feeds(graph_, spec.num_inputs);
    RunSpec bound = spec;
    bound.ports = &feeds.binding;
    return run(bound);
  }
  // The backends consume RunSpec directly (ignoring the fields that do not
  // apply to them), so dispatch is just construction + run.
  RunReport report;
  switch (spec.backend) {
    case Backend::Sim: {
      Stopwatch clock;
      sim::Simulation simulation(graph_, kernels_);
      report = simulation.run(spec);
      report.wall_seconds = clock.elapsed_seconds();
      break;
    }
    case Backend::Threaded: {
      runtime::Executor executor(graph_, kernels_);
      report = executor.run(spec);
      break;
    }
    case Backend::Pooled: {
      if (spec.pool != nullptr) {
        report = spec.pool->run(graph_, kernels_, spec);
      } else {
        runtime::PoolExecutor::Options popt;
        popt.workers = spec.pool_workers;
        runtime::PoolExecutor pool(popt);
        report = pool.run(graph_, kernels_, spec);
      }
      break;
    }
  }
  fold_metrics(spec, report);
  return report;
}

void Session::fold_metrics(const RunSpec& spec, const RunReport& report) {
  std::lock_guard lock(ledger_mu_);
  obs::TenantMetrics& t = ledger_[spec.tenant];
  t.tenant = spec.tenant;
  t.runs += 1;
  for (const std::uint64_t f : report.fires) t.items_fired += f;
  for (const EdgeTraffic& e : report.edges) {
    t.data_items += e.data;
    t.dummy_items += e.dummies;
  }
  const std::uint64_t total = t.data_items + t.dummy_items;
  t.dummy_overhead_ratio =
      total == 0 ? 0.0
                 : static_cast<double>(t.dummy_items) /
                       static_cast<double>(total);
  // The certified buffer footprint of this Session's graph: what the
  // avoidance analysis reserves for the tenant, independent of traffic.
  std::uint64_t slots = 0;
  for (EdgeId e = 0; e < graph_.edge_count(); ++e)
    slots += static_cast<std::uint64_t>(graph_.edge(e).buffer);
  t.channel_slots = slots;
  t.channel_bytes = slots * sizeof(runtime::Message);
  t.wall_seconds += report.wall_seconds;
}

std::vector<obs::TenantMetrics> Session::metrics() const {
  std::lock_guard lock(ledger_mu_);
  std::vector<obs::TenantMetrics> out;
  out.reserve(ledger_.size());
  for (const auto& [name, t] : ledger_) out.push_back(t);
  return out;
}

Session::CompiledRun Session::compile_and_run(RunSpec spec,
                                              core::CompileOptions options,
                                              core::Rounding rounding) {
  // Keep the compile algorithm consistent with the requested dummy mode so
  // the intervals handed to the wrappers match the protocol they run.
  if (spec.mode == runtime::DummyMode::Propagation)
    options.algorithm = core::Algorithm::Propagation;
  else if (spec.mode == runtime::DummyMode::NonPropagation)
    options.algorithm = core::Algorithm::NonPropagation;

  CompiledRun out;
  out.compiled = cache_->get_or_compile(graph_, options);
  out.report.backend = spec.backend;
  if (!out.compiled->ok) return out;  // rejected: report stays not-run
  if (spec.mode != runtime::DummyMode::None) spec.apply(*out.compiled, rounding);
  out.report = run(spec);
  return out;
}

RunReport Session::Pending::get() {
  // Each Pending may be get() exactly once, on every backend path.
  if (ready_.has_value()) {
    RunReport report = *std::move(ready_);
    ready_.reset();
    return report;
  }
  if (future_.valid()) return future_.get();
  SDAF_ASSERT(pool_ != nullptr);
  runtime::PoolExecutor* pool = pool_;
  pool_ = nullptr;
  return pool->wait(ticket_);
}

Session::Pending Session::submit(const RunSpec& spec) {
  Pending pending;
  if (spec.backend == Backend::Pooled && spec.pool != nullptr) {
    pending.pool_ = spec.pool;
    pending.ticket_ = spec.pool->submit(graph_, kernels_, spec);
  } else {
    // Thread-offload so Pending::get() never runs the workload inline on
    // any backend. The worker owns a copy of the graph and re-fronts it
    // with a throwaway Session, so neither this Session nor the caller's
    // graph needs to outlive get() (unlike the shared-pool path, whose
    // ticket machinery keeps the historical graph-outlives-wait contract).
    pending.future_ = std::async(
        std::launch::async,
        [graph = graph_, kernels = kernels_, spec]() mutable {
          Session worker(graph, std::move(kernels));
          return worker.run(spec);
        });
  }
  return pending;
}

}  // namespace sdaf::exec
