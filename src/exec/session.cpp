#include "src/exec/session.h"

#include "src/runtime/pool_executor.h"
#include "src/sim/simulation.h"
#include "src/support/contracts.h"
#include "src/support/timer.h"

namespace sdaf::exec {

const char* to_string(Backend b) {
  switch (b) {
    case Backend::Sim:
      return "sim";
    case Backend::Threaded:
      return "threaded";
    case Backend::Pooled:
      return "pooled";
  }
  return "?";
}

std::optional<Backend> backend_from_string(std::string_view s) {
  if (s == "sim") return Backend::Sim;
  if (s == "threaded") return Backend::Threaded;
  if (s == "pooled") return Backend::Pooled;
  return std::nullopt;
}

void RunSpec::apply(const core::CompileResult& compiled,
                    core::Rounding rounding) {
  intervals = compiled.integer_intervals(rounding);
  forward_on_filter = mode == runtime::DummyMode::Propagation
                          ? compiled.forward_on_filter()
                          : std::vector<std::uint8_t>{};
}

std::uint64_t RunReport::total_dummies() const {
  std::uint64_t total = 0;
  for (const auto& e : edges) total += e.dummies;
  return total;
}

std::uint64_t RunReport::total_data() const {
  std::uint64_t total = 0;
  for (const auto& e : edges) total += e.data;
  return total;
}

namespace {

RunReport from_sim(sim::SimResult&& r, double wall_seconds) {
  RunReport report;
  report.backend = Backend::Sim;
  report.completed = r.completed;
  report.deadlocked = r.deadlocked;
  report.wall_seconds = wall_seconds;
  report.sweeps = r.sweeps;
  report.edges = std::move(r.edges);
  report.fires = std::move(r.fires);
  report.sink_data = std::move(r.sink_data);
  report.state_dump = std::move(r.state_dump);
  return report;
}

RunReport from_runtime(runtime::RunResult&& r, Backend backend) {
  RunReport report;
  report.backend = backend;
  report.completed = r.completed;
  report.deadlocked = r.deadlocked;
  report.wall_seconds = r.wall_seconds;
  report.edges = std::move(r.edges);
  report.fires = std::move(r.fires);
  report.sink_data = std::move(r.sink_data);
  report.state_dump = std::move(r.state_dump);
  return report;
}

sim::SimOptions sim_options(const RunSpec& spec) {
  sim::SimOptions opt;
  opt.mode = spec.mode;
  opt.intervals = spec.intervals;
  opt.forward_on_filter = spec.forward_on_filter;
  opt.num_inputs = spec.num_inputs;
  opt.max_sweeps = spec.max_sweeps;
  opt.tracer = spec.tracer;
  return opt;
}

runtime::ExecutorOptions executor_options(const RunSpec& spec) {
  runtime::ExecutorOptions opt;
  opt.mode = spec.mode;
  opt.intervals = spec.intervals;
  opt.forward_on_filter = spec.forward_on_filter;
  opt.num_inputs = spec.num_inputs;
  opt.tracer = spec.tracer;
  opt.watchdog_tick = spec.watchdog_tick;
  opt.deadlock_confirm_ticks = spec.deadlock_confirm_ticks;
  return opt;
}

}  // namespace

Session::Session(const StreamGraph& g,
                 std::vector<std::shared_ptr<runtime::Kernel>> kernels)
    : graph_(g), kernels_(std::move(kernels)), cache_(&process_cache()) {
  SDAF_EXPECTS(kernels_.size() == g.node_count());
  for (const auto& k : kernels_) SDAF_EXPECTS(k != nullptr);
}

core::CompileCache& Session::process_cache() {
  static core::CompileCache cache(256);
  return cache;
}

void Session::set_compile_cache(core::CompileCache* cache) {
  SDAF_EXPECTS(cache != nullptr);
  cache_ = cache;
}

RunReport Session::run(const RunSpec& spec) {
  switch (spec.backend) {
    case Backend::Sim: {
      Stopwatch clock;
      sim::Simulation simulation(graph_, kernels_);
      auto result = simulation.run(sim_options(spec));
      return from_sim(std::move(result), clock.elapsed_seconds());
    }
    case Backend::Threaded: {
      runtime::Executor executor(graph_, kernels_);
      return from_runtime(executor.run(executor_options(spec)),
                          Backend::Threaded);
    }
    case Backend::Pooled: {
      if (spec.pool != nullptr)
        return from_runtime(
            spec.pool->run(graph_, kernels_, executor_options(spec)),
            Backend::Pooled);
      runtime::PoolExecutor::Options popt;
      popt.workers = spec.pool_workers;
      runtime::PoolExecutor pool(popt);
      return from_runtime(pool.run(graph_, kernels_, executor_options(spec)),
                          Backend::Pooled);
    }
  }
  SDAF_ASSERT(false);
  return {};
}

Session::CompiledRun Session::compile_and_run(RunSpec spec,
                                              core::CompileOptions options,
                                              core::Rounding rounding) {
  // Keep the compile algorithm consistent with the requested dummy mode so
  // the intervals handed to the wrappers match the protocol they run.
  if (spec.mode == runtime::DummyMode::Propagation)
    options.algorithm = core::Algorithm::Propagation;
  else if (spec.mode == runtime::DummyMode::NonPropagation)
    options.algorithm = core::Algorithm::NonPropagation;

  CompiledRun out;
  out.compiled = cache_->get_or_compile(graph_, options);
  out.report.backend = spec.backend;
  if (!out.compiled->ok) return out;  // rejected: report stays not-run
  if (spec.mode != runtime::DummyMode::None) spec.apply(*out.compiled, rounding);
  out.report = run(spec);
  return out;
}

RunReport Session::Pending::get() {
  // Each Pending may be get() exactly once, on every backend path.
  if (ready_.has_value()) {
    RunReport report = *std::move(ready_);
    ready_.reset();
    return report;
  }
  SDAF_ASSERT(pool_ != nullptr);
  runtime::PoolExecutor* pool = pool_;
  pool_ = nullptr;
  return from_runtime(pool->wait(ticket_), Backend::Pooled);
}

Session::Pending Session::submit(const RunSpec& spec) {
  Pending pending;
  if (spec.backend == Backend::Pooled && spec.pool != nullptr) {
    pending.pool_ = spec.pool;
    pending.ticket_ = spec.pool->submit(graph_, kernels_,
                                        executor_options(spec));
  } else {
    pending.ready_ = run(spec);
  }
  return pending;
}

}  // namespace sdaf::exec
