#include "src/exec/session.h"

#include "src/runtime/executor.h"
#include "src/runtime/pool_executor.h"
#include "src/sim/simulation.h"
#include "src/support/contracts.h"
#include "src/support/timer.h"

namespace sdaf::exec {

Session::Session(const StreamGraph& g,
                 std::vector<std::shared_ptr<runtime::Kernel>> kernels)
    : graph_(g), kernels_(std::move(kernels)), cache_(&process_cache()) {
  SDAF_EXPECTS(kernels_.size() == g.node_count());
  for (const auto& k : kernels_) SDAF_EXPECTS(k != nullptr);
}

core::CompileCache& Session::process_cache() {
  static core::CompileCache cache(256);
  return cache;
}

void Session::set_compile_cache(core::CompileCache* cache) {
  SDAF_EXPECTS(cache != nullptr);
  cache_ = cache;
}

RunReport Session::run(const RunSpec& spec) {
  // The backends consume RunSpec directly (ignoring the fields that do not
  // apply to them), so dispatch is just construction + run.
  switch (spec.backend) {
    case Backend::Sim: {
      Stopwatch clock;
      sim::Simulation simulation(graph_, kernels_);
      RunReport report = simulation.run(spec);
      report.wall_seconds = clock.elapsed_seconds();
      return report;
    }
    case Backend::Threaded: {
      runtime::Executor executor(graph_, kernels_);
      return executor.run(spec);
    }
    case Backend::Pooled: {
      if (spec.pool != nullptr) return spec.pool->run(graph_, kernels_, spec);
      runtime::PoolExecutor::Options popt;
      popt.workers = spec.pool_workers;
      runtime::PoolExecutor pool(popt);
      return pool.run(graph_, kernels_, spec);
    }
  }
  SDAF_ASSERT(false);
  return {};
}

Session::CompiledRun Session::compile_and_run(RunSpec spec,
                                              core::CompileOptions options,
                                              core::Rounding rounding) {
  // Keep the compile algorithm consistent with the requested dummy mode so
  // the intervals handed to the wrappers match the protocol they run.
  if (spec.mode == runtime::DummyMode::Propagation)
    options.algorithm = core::Algorithm::Propagation;
  else if (spec.mode == runtime::DummyMode::NonPropagation)
    options.algorithm = core::Algorithm::NonPropagation;

  CompiledRun out;
  out.compiled = cache_->get_or_compile(graph_, options);
  out.report.backend = spec.backend;
  if (!out.compiled->ok) return out;  // rejected: report stays not-run
  if (spec.mode != runtime::DummyMode::None) spec.apply(*out.compiled, rounding);
  out.report = run(spec);
  return out;
}

RunReport Session::Pending::get() {
  // Each Pending may be get() exactly once, on every backend path.
  if (ready_.has_value()) {
    RunReport report = *std::move(ready_);
    ready_.reset();
    return report;
  }
  SDAF_ASSERT(pool_ != nullptr);
  runtime::PoolExecutor* pool = pool_;
  pool_ = nullptr;
  return pool->wait(ticket_);
}

Session::Pending Session::submit(const RunSpec& spec) {
  Pending pending;
  if (spec.backend == Backend::Pooled && spec.pool != nullptr) {
    pending.pool_ = spec.pool;
    pending.ticket_ = spec.pool->submit(graph_, kernels_, spec);
  } else {
    pending.ready_ = run(spec);
  }
  return pending;
}

}  // namespace sdaf::exec
