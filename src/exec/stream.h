// Long-lived streaming sessions with external ports: the live-traffic face
// of the execution API. Session::open(StreamSpec) returns an exec::Stream
// whose typed ports replace the closed-world RunSpec::num_inputs contract:
//
//   exec::Session session(graph, kernels);
//   exec::StreamSpec spec;
//   spec.run.backend = exec::Backend::Pooled;
//   spec.run.apply(*compiled);
//   exec::Stream stream = session.open(spec);
//   stream.input(0).push(runtime::Value(std::int64_t{42}));  // backpressured
//   while (auto item = stream.output(0).poll()) consume(*item);
//   stream.input(0).close();            // dynamic EOS -> the ordinary flood
//   exec::RunReport report = stream.finish();
//
// One InputPort per source node (push / try_push / push_batch with
// backpressure; close() is the dynamic end-of-stream that triggers the
// existing EOS flood) and one OutputPort per sink node (poll / poll_batch /
// blocking next), on all three backends: the simulator drains whatever was
// pushed between deterministic sweeps on the caller's thread, the threaded
// backend blocks port calls in the channels themselves, and the pooled
// backend turns port transitions into task wake-ups with quiescence
// extended to "quiescent *and* no port has pending items", so deadlock
// certification stays exact while ports are open (see
// runtime::PoolExecutor::submit).
//
// The paper's dummy-interval avoidance runs unchanged underneath: ports
// inject and extract *sequence-numbered* traffic at the graph boundary,
// and every interior wrapper, interval, and verdict is byte-for-byte the
// batch machinery. A port-fed run that pushes N items and closes is
// bit-identical to the classic num_inputs = N run -- the differential
// harness enforces it (tests/harness, feed=port).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "src/ckpt/snapshot.h"
#include "src/exec/run_types.h"
#include "src/obs/metrics.h"
#include "src/runtime/message.h"

namespace sdaf::exec {

namespace stream_detail {
struct Core;  // backend-polymorphic stream engine (src/exec/stream.cpp)
}  // namespace stream_detail

// Everything a live stream needs. `run` carries the shared backend
// configuration (backend, dummy mode, intervals, forward_on_filter, batch,
// tracer, pool fields, watchdog tuning); num_inputs and ports are ignored
// -- the ports make the item count dynamic.
struct StreamSpec {
  RunSpec run;
  // Data items each ingress feed buffers before push() backpressures the
  // caller (an extra slot for EOS is always reserved on top).
  std::size_t feed_capacity = 256;
  // Items each egress tap buffers before the sink node parks; a parked sink
  // resumes when the caller polls. Taps never affect deadlock verdicts: a
  // sink parked on its tap counts as "waiting for the caller", not wedged.
  std::size_t egress_capacity = 1024;
  // false = sinks keep no egress tap (fire-and-forget ingestion; sink
  // deliveries still count in RunReport::sink_data).
  bool capture_outputs = true;
  // Attach per-node/per-channel counters so Stream::metrics() reports live
  // values. The hot-path cost is one relaxed load+store per counted event
  // (single-writer, no RMW); set false for benchmarking a zero-overhead
  // baseline -- metrics() then reports zero counters but live port gauges.
  // Ignored when run.metrics already points at a caller-owned registry.
  bool metrics = true;
  // Opaque resource reservation pinned for the stream's lifetime. The
  // admission-aware Session::open stores its qos::Admission ticket here (a
  // shared_ptr whose deleter releases the reservation), so the budget is
  // returned exactly when the stream is destroyed -- callers never pair
  // admit/release by hand.
  std::shared_ptr<void> lease;
};

// Outcome of a deadline-bounded push. TimedOut is the backpressure status:
// the stream would not absorb the item within the deadline (the graph may
// be busy, starved of polls -- or wedged; only close()+finish() can tell).
// Ended means the port is closed or the stream finished/aborted.
enum class PortPushOutcome : std::uint8_t { Ok, TimedOut, Ended };

// Ingress into one source node. Single caller thread per port at a time;
// distinct ports may be driven from distinct threads.
class InputPort {
 public:
  InputPort(const InputPort&) = delete;
  InputPort& operator=(const InputPort&) = delete;

  // Pushes the next item (sequence numbers are assigned in push order). An
  // empty Value is a pure firing token: the source kernel fires exactly as
  // a self-generating source (empty input vector); a non-empty Value rides
  // to the kernel as its single input. push() blocks on backpressure (on
  // the Sim backend it pumps sweeps instead of blocking) and returns false
  // iff the port is closed or the stream ended (deadlock certified /
  // aborted) -- or, Sim only, when the graph cannot absorb the item even
  // after pumping (a wedge the caller can confirm with finish()).
  //
  // Caveat for wedge-capable workloads (avoidance off, or unvalidated
  // intervals) on the concurrent backends: deadlock is only certified once
  // every port closes, so if the graph wedges while this port is open, a
  // blocked push() has no one to unblock it -- the caller parked here is
  // the one who would have closed the port. Such callers should drive
  // ingestion with try_push (see tools/sdafc.cpp's --stdin loop) and fall
  // back to close() + finish() when the stream stops absorbing input.
  // Avoidance-armed streams never wedge, so their push() always returns.
  bool push(runtime::Value v = {});
  // Never blocks or pumps; false = no buffer space right now (or closed /
  // ended, which closed() distinguishes).
  bool try_push(runtime::Value v = {});
  // Deadline-bounded push: parks on the feed at most `timeout` (timed cv
  // wait on the concurrent backends; the Sim backend pumps instead and
  // reports TimedOut as soon as a pump cannot absorb the item). A caller
  // that must never hard-block on a wedge-capable stream -- a network
  // server ingesting on behalf of remote clients -- uses this instead of
  // push(). timeout <= 0 is exactly try_push with a three-way status.
  PortPushOutcome try_push_for(runtime::Value v, std::chrono::nanoseconds timeout);
  // Bulk ingest: pushes every value in order as ONE coalesced channel
  // operation per round -- a single ring reservation + a single counter
  // publish + a single wake for as many values as the feed has room for
  // (O(1) publishes for a batch that fits, instead of one per item) --
  // blocking like push() until all are accepted or the stream ends.
  // Returns how many were accepted; sequence numbers and all downstream
  // traffic are bit-identical to item-at-a-time push() (the differential
  // sweeps enforce it).
  std::size_t push_batch(std::vector<runtime::Value> values);
  // push_batch with a deadline across the whole batch: accepts what fits
  // within `timeout` and returns the accepted count (may be short).
  std::size_t push_batch_for(std::vector<runtime::Value> values,
                             std::chrono::nanoseconds timeout);

  // Dynamic end-of-stream: enqueues EOS (a reserved buffer slot guarantees
  // space), after which the source floods EOS exactly like a completed
  // batch source. Idempotent. All ports closed = the stream can reach a
  // final verdict.
  void close();

  [[nodiscard]] bool closed() const { return closed_; }
  [[nodiscard]] NodeId node() const { return node_; }
  // Items accepted so far == the next sequence number. Safe from any
  // thread (metrics snapshots read it while the port's caller pushes);
  // the single-writer relaxed atomic is the same discipline as the obs
  // counters, so this costs the pusher nothing.
  [[nodiscard]] std::uint64_t pushed() const {
    return next_seq_.load(std::memory_order_relaxed);
  }

 private:
  friend struct stream_detail::Core;
  InputPort() = default;

  stream_detail::Core* core_ = nullptr;
  std::size_t index_ = 0;
  NodeId node_ = kNoNode;
  std::atomic<std::uint64_t> next_seq_{0};
  bool closed_ = false;
};

// Egress from one sink node: the items the sink kernel emits on its tap
// slot, in sequence order. Single caller thread per port at a time.
class OutputPort {
 public:
  struct Item {
    std::uint64_t seq = 0;
    runtime::Value value;
  };

  OutputPort(const OutputPort&) = delete;
  OutputPort& operator=(const OutputPort&) = delete;

  // Next available item, or nullopt when none is buffered (Sim: pumps
  // sweeps first). Skips interior dummies; consuming the tap's EOS flips
  // ended().
  std::optional<Item> poll();
  // Appends up to `max` items to *out; returns how many were appended.
  std::size_t poll_batch(std::vector<Item>* out, std::size_t max);
  // Blocks until an item arrives or the stream ends for this port (EOS
  // consumed, stream aborted, or -- Sim only -- no progress possible
  // without more input); nullopt = no further item will arrive *now*
  // (check ended() to tell end-of-stream from Sim starvation).
  std::optional<Item> next();

  [[nodiscard]] bool ended() const { return ended_; }
  [[nodiscard]] NodeId node() const { return node_; }

 private:
  friend struct stream_detail::Core;
  OutputPort() = default;

  stream_detail::Core* core_ = nullptr;
  std::size_t index_ = 0;
  NodeId node_ = kNoNode;
  bool ended_ = false;
};

// A long-lived execution with external ports. Obtain via Session::open.
// The graph, kernels and (for a shared pool) the PoolExecutor must outlive
// the Stream; destroying an unfinished Stream finishes it (closing every
// port and discarding the report).
class Stream {
 public:
  ~Stream();
  Stream(Stream&& other) noexcept;
  Stream& operator=(Stream&&) = delete;
  Stream(const Stream&) = delete;
  Stream& operator=(const Stream&) = delete;

  [[nodiscard]] std::size_t input_count() const;
  [[nodiscard]] InputPort& input(std::size_t i);
  [[nodiscard]] InputPort& input_for(NodeId source);
  [[nodiscard]] std::size_t output_count() const;  // 0 unless capture_outputs
  [[nodiscard]] OutputPort& output(std::size_t i);
  [[nodiscard]] OutputPort& output_for(NodeId sink);

  // Sim backend: run sweeps on the caller's thread until nothing more can
  // progress without new input (ports call this on demand too, so explicit
  // pumping is optional). No-op on the concurrent backends.
  void pump();

  // Live metrics snapshot: per-node and per-channel counters from the
  // attached registry (zeros when StreamSpec::metrics is false), the
  // ingress/egress port gauges, and -- on the Pooled backend -- the pool's
  // per-worker scheduler counters. Safe to call from any thread at any time
  // while the Stream is alive (every counter read is a relaxed atomic
  // load), which is exactly what obs::MetricsSampler needs as its source.
  [[nodiscard]] obs::MetricsSnapshot metrics() const;

  // --- Checkpointing (sdaf::ckpt, see docs/SNAPSHOTS.md) ----------------
  // Starts an asynchronous barrier snapshot without stopping the stream:
  // picks the barrier S = max over ports of items accepted so far, injects
  // Marker(S) into every open feed (lagging ports get theirs exactly when
  // they reach S), and returns immediately while the markers ride the
  // ordinary channels. false = a snapshot is already pending (barriers
  // serialize) or the stream already finished. Safe from any thread; port
  // callers keep pushing/polling concurrently.
  [[nodiscard]] bool snapshot_begin();
  // Non-blocking completion check: advances collection (Sim: runs sweeps on
  // the caller's thread; all backends: reaps tap markers idle output ports
  // have not consumed) and returns the assembled snapshot once every node
  // has checkpointed and every tap saw its marker. nullopt = still pending,
  // or no snapshot was begun.
  [[nodiscard]] std::optional<ckpt::StreamSnapshot> snapshot_poll();
  // snapshot_begin (unless a barrier is already pending) + poll until
  // `timeout` elapses. A timed-out barrier stays pending -- on a wedged
  // stream it never completes; on a merely slow one a later call can still
  // collect it.
  [[nodiscard]] std::optional<ckpt::StreamSnapshot> snapshot(
      std::chrono::milliseconds timeout);
  // Logical stream generation over this compiled topology: 0 for
  // Session::open, snapshot.epoch + 1 for a Session::restore'd stream.
  [[nodiscard]] std::uint64_t epoch() const;

  // Closes any open input ports, drains (and discards) whatever remains on
  // the egress taps so the EOS flood can always complete, waits for the
  // final exact verdict, and collects the report -- completed, or
  // deadlocked with the usual state dump (plus port occupancy lines). At
  // most once. A pending snapshot barrier is abandoned.
  [[nodiscard]] RunReport finish();

 private:
  friend class Session;
  explicit Stream(std::unique_ptr<stream_detail::Core> core);
  std::unique_ptr<stream_detail::Core> core_;
};

}  // namespace sdaf::exec
