// The one option/result surface for every execution backend. exec::RunSpec
// is what a run needs regardless of backend (the old runtime::
// ExecutorOptions and sim::SimOptions were per-backend copies of it, kept
// as deprecated aliases for the differential tests that pin a backend on
// purpose); exec::RunReport is the uniform result (ex runtime::RunResult /
// sim::SimResult). The backends consume RunSpec directly and ignore the
// fields that do not apply to them.
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/core/compile.h"
#include "src/runtime/trace.h"
#include "src/runtime/wrapper.h"

namespace sdaf::ckpt {
class SnapshotPlane;
struct StreamSnapshot;
}  // namespace sdaf::ckpt

namespace sdaf::obs {
class MetricsRegistry;
}  // namespace sdaf::obs

namespace sdaf::qos {
class CreditGauge;
}  // namespace sdaf::qos

namespace sdaf::runtime {
class BoundedChannel;
class PoolExecutor;
}  // namespace sdaf::runtime

namespace sdaf::exec {

enum class Backend : std::uint8_t {
  Sim,       // deterministic single-threaded reference; exact sweep verdicts
  Threaded,  // thread-per-node + watchdog; the paper's model made literal
  Pooled,    // fixed worker pool; exact quiescence-based deadlock detection
};

[[nodiscard]] const char* to_string(Backend b);
[[nodiscard]] std::optional<Backend> backend_from_string(std::string_view s);

// External ports injected into a run: one ingress feed per source node and
// (optionally) one egress tap per sink node. A port-fed source consumes the
// feed channel -- data messages fire the kernel (a payload-free message is a
// pure firing token, so the kernel sees exactly the empty input vector a
// self-generating source sees), EOS triggers the ordinary EOS flood --
// instead of self-generating RunSpec::num_inputs sequence numbers. An
// egress tap is an appended out-slot on the sink node (infinite dummy
// interval, never continuation-forwarding): whatever the sink kernel emits
// on it streams to the caller, and a full tap backpressures the sink
// through the ordinary blocked-output machinery.
//
// The channels are borrowed, not owned, and must outlive the run. Callers
// do not build this by hand: exec::Stream (live ports) and the
// Session::run batch adapter (pre-closed ports) are the two producers.
struct PortBinding {
  std::vector<NodeId> source_nodes;                // in-degree-0, graph order
  std::vector<runtime::BoundedChannel*> feeds;     // feeds[i] -> source_nodes[i]
  std::vector<NodeId> sink_nodes;                  // out-degree-0, graph order
  std::vector<runtime::BoundedChannel*> egress;    // egress[j] -> sink_nodes[j];
                                                   // null = sink not tapped
  // True while a caller may still push/close (exec::Stream): backends must
  // treat quiescence-with-open-ports as idle, not as a verdict. False =
  // every feed already ends in EOS (the batch adapter), so the classic
  // completion/deadlock verdicts stay exact and unchanged.
  bool live = false;

  [[nodiscard]] runtime::BoundedChannel* feed_for(NodeId n) const;
  [[nodiscard]] runtime::BoundedChannel* egress_for(NodeId n) const;
};

// Everything one run needs, regardless of backend. The per-edge fields
// (intervals, forward_on_filter) come straight from a core::CompileResult
// via apply(); the tail is per-backend tuning with sensible defaults.
struct RunSpec {
  Backend backend = Backend::Sim;
  runtime::DummyMode mode = runtime::DummyMode::Propagation;
  // Per-edge dummy thresholds (runtime::kInfiniteInterval = none). Empty =
  // all infinite.
  std::vector<std::int64_t> intervals;
  // Propagation mode: per-edge continuation-forwarding flags
  // (core::CompileResult::forward_on_filter). Empty = none.
  std::vector<std::uint8_t> forward_on_filter;
  // Number of sequence numbers each source generates (0 .. num_inputs-1).
  std::uint64_t num_inputs = 0;
  // Optional event recorder (not owned); works on every backend.
  runtime::Tracer* tracer = nullptr;
  // Optional obs counter registry (not owned; sized for the graph's nodes
  // and edges). When set, every backend increments per-node firing-rule
  // counters and per-channel traffic/stall counters into it -- relaxed
  // single-writer atomics, so the hot-path cost is one predictable branch
  // plus a load+store per event. Null = metrics off (the bench baseline).
  obs::MetricsRegistry* metrics = nullptr;
  // Tenant label for roll-ups (Session ledgers, exporter labels).
  std::string tenant = "default";
  // Relative share of the shared pool's injector bandwidth under the
  // deficit-round-robin scheduler (qos): a tenant's lane drains
  // proportionally to its weight. Rounded to an integer grant, clamped to
  // >= 1; the latest submission of a tenant wins when weights disagree.
  double tenant_weight = 1.0;
  // Per-tenant in-flight credit gauge (qos): when set, InputPort pushes
  // acquire one credit per data item *before* channel space and the credit
  // returns when the source node consumes the item from its feed. Borrowed
  // (a server-side qos::TenantTable typically owns it); must outlive the
  // stream. Null = no tenant backpressure.
  qos::CreditGauge* credits = nullptr;
  // Firing batch quantum: how many sequence numbers a node may fire per
  // scheduling quantum before its outputs are flushed, letting the data
  // plane amortize one channel lock and one wake-up over a whole batch
  // (coalesced dummy runs ride out in a single push). 1 (the default) is
  // exactly the message-at-a-time pacing of the paper's model. At batch >
  // 1 a node holds up to a quantum's outputs before delivering, which acts
  // like extra per-node output buffering: completed runs keep bit-identical
  // per-edge traffic, firing counts and verdicts at every setting (the
  // differential tests sweep batch), and avoidance-armed runs stay
  // deadlock-free with certification still exact -- but an *unprotected*
  // workload whose deadlock hazard needs the tighter pacing to manifest
  // may complete at a higher batch, exactly as it might with larger
  // buffers. Verdict-sensitive experiments should keep batch = 1;
  // throughput-oriented callers want 16-64.
  std::uint32_t batch = 1;

  // --- Sim tuning ---
  std::uint64_t max_sweeps = std::uint64_t{1} << 30;

  // --- Threaded tuning ---
  std::chrono::milliseconds watchdog_tick{2};
  int deadlock_confirm_ticks = 30;

  // --- Pooled tuning ---
  // Shared pool to run on (not owned); lets many sessions/tenants
  // interleave on one fixed worker set. Null = a private pool per run.
  runtime::PoolExecutor* pool = nullptr;
  // Workers for a private pool (0 = hardware concurrency); ignored when
  // `pool` is set.
  std::size_t pool_workers = 0;

  // --- Port plumbing (internal) ---
  // Set by exec::Stream / the Session::run batch adapter; null = classic
  // self-generating sources. Borrowed; must outlive the run. When a source
  // node has a feed here, num_inputs is ignored for it.
  const PortBinding* ports = nullptr;

  // --- Snapshot plumbing (internal, ckpt) ---
  // Barrier coordinator the engine attaches to every FiringCore (not
  // owned; set by exec::Stream when snapshots are enabled). Null = markers
  // never appear and the data path is byte-for-byte the snapshots-off one.
  ckpt::SnapshotPlane* ckpt_plane = nullptr;
  // Restore source: the engine rebuilds node/edge state at this cut before
  // the run starts (node counters, kernel state, EOS preloads on edges out
  // of finished nodes, cumulative traffic baselines). Borrowed; must
  // outlive engine construction. Set by Session::restore only.
  const ckpt::StreamSnapshot* restore = nullptr;

  // Adopt a compile result's per-edge configuration: integer thresholds
  // under `rounding`, plus the continuation-forwarding set when `mode` is
  // Propagation.
  void apply(const core::CompileResult& compiled,
             core::Rounding rounding = core::Rounding::Floor);
};

struct EdgeTraffic {
  std::uint64_t data = 0;
  std::uint64_t dummies = 0;  // counts every dummy of a coalesced run
  std::int64_t max_occupancy = 0;
};

// Uniform result across backends.
struct RunReport {
  Backend backend = Backend::Sim;
  bool completed = false;
  bool deadlocked = false;
  double wall_seconds = 0.0;
  std::uint64_t sweeps = 0;  // Sim only; 0 elsewhere
  std::vector<EdgeTraffic> edges;    // per edge id
  std::vector<std::uint64_t> fires;  // kernel invocations per node
  std::vector<std::uint64_t> sink_data;  // data msgs consumed per node
  // Non-empty iff deadlocked: channel occupancies and per-node stuck state.
  std::string state_dump;

  [[nodiscard]] std::uint64_t total_dummies() const;
  [[nodiscard]] std::uint64_t total_data() const;
};

}  // namespace sdaf::exec
