#include "src/exec/stream.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <deque>
#include <mutex>
#include <sstream>
#include <thread>

#include "src/core/compile_cache.h"
#include "src/exec/session.h"
#include "src/qos/admission.h"
#include "src/qos/credit.h"
#include "src/runtime/channel.h"
#include "src/runtime/executor.h"
#include "src/runtime/pool_executor.h"
#include "src/sim/simulation.h"
#include "src/support/contracts.h"
#include "src/support/timer.h"

namespace sdaf::exec {
namespace stream_detail {

using runtime::BoundedChannel;
using runtime::Message;
using runtime::MessageKind;
using runtime::ProducerSignal;
using runtime::PushResult;
using runtime::Value;

// What a snapshot pins: the compiled topology (CompileCache's canonical
// signature) plus every traffic-affecting run setting. Restore refuses a
// snapshot whose signature does not match the spec it is rehydrated into;
// backend and capacities are deliberately excluded (snapshots are
// backend-portable, and port buffer sizes only pace the caller).
std::string snapshot_signature(const StreamGraph& g, const RunSpec& run) {
  std::ostringstream sig;
  sig << core::CompileCache::signature(g, core::CompileOptions{});
  sig << "|mode=" << static_cast<int>(run.mode)
      << "|fwd=" << (run.forward_on_filter.empty() ? "-" : "");
  for (const std::uint8_t f : run.forward_on_filter) sig << int{f};
  sig << "|iv=";
  for (const std::int64_t v : run.intervals) sig << v << ",";
  return std::move(sig).str();
}

// The backend-polymorphic stream engine. The base class owns everything a
// stream is made of -- the port channels (feeds with one reserved EOS slot,
// egress taps), the PortBinding the backend consumes, and the port handles
// -- plus the backend-agnostic port logic. Subclasses supply how execution
// is driven (sweeps on the caller's thread vs. threads vs. pool tasks) and
// what a port transition must additionally do (nothing, or a task wake-up).
struct Core {
  const StreamGraph& graph;
  std::vector<std::shared_ptr<runtime::Kernel>> kernels;
  StreamSpec spec;
  PortBinding binding;
  std::vector<std::unique_ptr<BoundedChannel>> feed_channels;
  std::vector<std::unique_ptr<ProducerSignal>> feed_signals;
  std::vector<std::unique_ptr<BoundedChannel>> egress_channels;
  std::vector<std::unique_ptr<InputPort>> inputs;
  std::vector<std::unique_ptr<OutputPort>> outputs;
  // --- per-tenant credit backpressure (sdaf::qos) -----------------------
  // Borrowed gauge bounding this tenant's in-flight items (null or
  // unlimited = no credit gating; normalized to null below so every check
  // is one pointer test). A push acquires one credit BEFORE probing channel
  // space; the credit returns when the source node consumes the item (the
  // feed's drain hook fires on the consumer thread) or, for items still
  // buffered when the stream dies, in finish() after collect(). The charge
  // is recorded in `credit_releaser.held` before the channel publish, so
  // drain decrements can never outrun their increments; `held` is signed
  // only to tolerate the transient where a concurrent drain's decrement
  // lands between a batch push and its (post-publish) charge -- at
  // quiescence it is exact and non-negative.
  qos::CreditGauge* credits = nullptr;
  struct CreditReleaser final : BoundedChannel::DrainHook {
    qos::CreditGauge* gauge = nullptr;
    std::atomic<std::int64_t> held{0};
    void on_data_drained(std::size_t n) override {
      held.fetch_sub(static_cast<std::int64_t>(n), std::memory_order_relaxed);
      gauge->release(n);
    }
    void charge(std::uint64_t n) {
      held.fetch_add(static_cast<std::int64_t>(n), std::memory_order_relaxed);
    }
    void uncharge(std::uint64_t n) {
      held.fetch_sub(static_cast<std::int64_t>(n), std::memory_order_relaxed);
      gauge->release(n);
    }
    // finish() only (quiesced): returns whatever the stream still holds --
    // items pushed but never consumed (deadlock, abort, undrained feeds).
    void release_rest() {
      const std::int64_t rest = held.exchange(0, std::memory_order_relaxed);
      if (rest > 0) gauge->release(static_cast<std::uint64_t>(rest));
    }
  };
  CreditReleaser credit_releaser;
  // Counter registry the backend writes through (see StreamSpec::metrics).
  // Owned here unless the caller supplied one via spec.run.metrics, so
  // snapshots stay valid for the Stream's whole lifetime regardless of
  // backend teardown order.
  std::unique_ptr<obs::MetricsRegistry> owned_registry;
  obs::MetricsRegistry* registry = nullptr;
  Stopwatch clock;
  bool collected = false;

  // --- checkpoint state (sdaf::ckpt) ------------------------------------
  // Locking: snap_mu serializes begin/poll/assembly and may nest a
  // port_mus[i] or an egress_mus[j] try_lock inside it; the port paths take
  // only their own port's mutex and never snap_mu, so there is no lock
  // inversion. port_mus[i] serializes every producer-side op on feed i (the
  // caller's pushes and the barrier's marker injection -- the ring is SPSC,
  // two concurrent producers would be a race); egress_mus[j] serializes
  // every consumer-side op on tap j (the caller's polls and the barrier's
  // marker reaping).
  static constexpr std::uint64_t kNoBarrier = ~std::uint64_t{0};
  ckpt::SnapshotPlane plane;
  std::uint64_t epoch = 0;
  const ckpt::StreamSnapshot* restore_src = nullptr;  // ctor-time borrow
  mutable std::mutex snap_mu;  // mutable: metrics reads it from const
  bool snap_active = false;        // guarded by snap_mu
  std::uint64_t snap_barrier = 0;  // guarded by snap_mu
  double snap_begin_seconds = 0;   // guarded by snap_mu
  std::uint64_t snapshots_taken = 0;    // guarded by snap_mu
  double last_snapshot_seconds = 0;     // guarded by snap_mu
  // Barrier generation: bumped by begin() before any marker is injected, so
  // a marker racing to a tap always acks under the generation that sent it.
  std::atomic<std::uint64_t> snap_gen{0};
  // Per input port, guarded by port_mus[i]:
  std::vector<std::unique_ptr<std::mutex>> port_mus;
  std::vector<std::uint64_t> armed_marker;  // kNoBarrier = none armed
  std::vector<std::uint64_t> port_cut_seq;
  std::vector<std::uint8_t> port_cut_closed;
  // Per output port, guarded by egress_mus[j] (tap_residue additionally
  // only ever written under snap_mu, so assembly reads it without the tap
  // lock -- a caller parked in next() holds egress_mus[j] indefinitely):
  std::vector<std::unique_ptr<std::mutex>> egress_mus;
  std::vector<std::uint64_t> tap_gen;
  std::vector<std::uint8_t> tap_acked;
  std::vector<std::uint8_t> tap_ended_cut;
  std::vector<std::vector<ckpt::TapItem>> tap_residue;
  std::vector<std::deque<OutputPort::Item>> parked;
  std::vector<std::uint8_t> parked_ended;
  std::atomic<std::size_t> tap_acked_count{0};

  Core(const StreamGraph& g,
       std::vector<std::shared_ptr<runtime::Kernel>> session_kernels,
       StreamSpec stream_spec, const ckpt::StreamSnapshot* restore)
      : graph(g),
        kernels(std::move(session_kernels)),
        spec(std::move(stream_spec)),
        restore_src(restore) {
    SDAF_EXPECTS(graph.node_count() > 0);
    SDAF_EXPECTS(spec.feed_capacity >= 1);
    SDAF_EXPECTS(spec.egress_capacity >= 1);
    if (spec.run.metrics != nullptr) {
      registry = spec.run.metrics;
    } else if (spec.metrics) {
      owned_registry = std::make_unique<obs::MetricsRegistry>(
          graph.node_count(), graph.edge_count());
      registry = owned_registry.get();
      spec.run.metrics = registry;
    }
    // An unlimited gauge gates nothing; normalize it away so the push path
    // pays a single null test.
    if (spec.run.credits != nullptr && !spec.run.credits->unlimited()) {
      credits = spec.run.credits;
      credit_releaser.gauge = credits;
    }
    binding.live = true;
    for (const NodeId n : graph.sources()) {
      binding.source_nodes.push_back(n);
      // capacity + 1: the extra slot is reserved for EOS, so close() can
      // never fail for lack of space (data occupancy is capped at
      // feed_capacity by the port push path).
      feed_channels.push_back(std::make_unique<BoundedChannel>(
          spec.feed_capacity + 1, /*monitor=*/nullptr));
      feed_signals.push_back(std::make_unique<ProducerSignal>());
      feed_channels.back()->set_producer_signal(feed_signals.back().get());
      if (credits != nullptr)
        feed_channels.back()->set_drain_hook(&credit_releaser);
      binding.feeds.push_back(feed_channels.back().get());
      auto port = std::unique_ptr<InputPort>(new InputPort());
      port->core_ = this;
      port->index_ = inputs.size();
      port->node_ = n;
      inputs.push_back(std::move(port));
    }
    for (const NodeId n : graph.sinks()) {
      binding.sink_nodes.push_back(n);
      if (spec.capture_outputs) {
        egress_channels.push_back(std::make_unique<BoundedChannel>(
            spec.egress_capacity, /*monitor=*/nullptr));
        binding.egress.push_back(egress_channels.back().get());
        auto port = std::unique_ptr<OutputPort>(new OutputPort());
        port->core_ = this;
        port->index_ = outputs.size();
        port->node_ = n;
        outputs.push_back(std::move(port));
      } else {
        binding.egress.push_back(nullptr);
      }
    }
    plane.attach(graph.node_count());
    port_mus.reserve(inputs.size());
    for (std::size_t i = 0; i < inputs.size(); ++i)
      port_mus.push_back(std::make_unique<std::mutex>());
    armed_marker.assign(inputs.size(), kNoBarrier);
    port_cut_seq.assign(inputs.size(), 0);
    port_cut_closed.assign(inputs.size(), 0);
    egress_mus.reserve(outputs.size());
    for (std::size_t j = 0; j < outputs.size(); ++j)
      egress_mus.push_back(std::make_unique<std::mutex>());
    tap_gen.assign(outputs.size(), 0);
    tap_acked.assign(outputs.size(), 0);
    tap_ended_cut.assign(outputs.size(), 0);
    tap_residue.resize(outputs.size());
    parked.resize(outputs.size());
    parked_ended.assign(outputs.size(), 0);
    if (restore_src != nullptr) apply_restore();
  }

  // The port-facing half of a restore; the engine half (node counters,
  // kernel state, edge baselines, EOS preloads) runs inside the backend
  // engine's construction off RunSpec::restore. Open ports resume at their
  // cut sequence numbers; tap residue is parked for re-delivery ahead of
  // anything the restored sinks emit.
  void apply_restore() {
    const ckpt::StreamSnapshot& snap = *restore_src;
    epoch = snap.epoch + 1;
    SDAF_EXPECTS(snap.ports.size() == inputs.size());
    SDAF_EXPECTS(snap.taps.size() == outputs.size());
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      inputs[i]->next_seq_.store(snap.ports[i].next_seq,
                                 std::memory_order_relaxed);
      // A port closed at the cut stays closed; its source was restored done
      // (Session::restore validates that), so no EOS needs re-pushing.
      inputs[i]->closed_ = snap.ports[i].closed != 0;
    }
    for (std::size_t j = 0; j < outputs.size(); ++j) {
      for (const ckpt::TapItem& item : snap.taps[j].residue)
        parked[j].push_back(OutputPort::Item{item.seq, item.value});
      parked_ended[j] = snap.taps[j].ended;
    }
  }

  virtual ~Core() = default;

  [[nodiscard]] RunSpec bound_spec() {
    RunSpec bound = spec.run;
    bound.ports = &binding;
    bound.ckpt_plane = &plane;
    bound.restore = restore_src;
    return bound;
  }

  // --- backend hooks ---------------------------------------------------
  // Sim only: run sweeps now. Concurrent backends: no-op.
  virtual bool pump_now() { return false; }
  // ckpt: edge e's cumulative traffic at the barrier cut -- the producer's
  // marker latch when it forwarded Marker(S), its frozen totals when it
  // finished before the barrier. Only read after the barrier completes.
  [[nodiscard]] virtual ckpt::EdgeCut edge_cut_at(
      EdgeId e, bool producer_checkpointed) const = 0;
  // Sim only: cumulative sweeps, so a restored engine resumes the count.
  [[nodiscard]] virtual std::uint64_t sweeps_now() const { return 0; }
  // Pooled only: the pool's per-worker scheduler counters.
  [[nodiscard]] virtual std::vector<obs::WorkerMetrics> worker_metrics()
      const {
    return {};
  }
  // Port transitions. Pushes/pops report the channel's wake-relevant edge.
  virtual void feed_pushed(std::size_t /*i*/, bool /*was_empty*/) {}
  virtual void feed_closed(std::size_t /*i*/) {}
  virtual void egress_popped(std::size_t /*i*/, bool /*was_full*/) {}
  // Blocking helpers: return true = state may have changed, retry; false =
  // give up (aborted, deadline passed, or -- Sim -- no progress possible).
  // A null deadline waits forever (the classic push() path).
  using Deadline = std::optional<std::chrono::steady_clock::time_point>;
  virtual bool wait_feed_space(std::size_t i, const Deadline& deadline);
  virtual bool wait_egress_item(std::size_t i);
  // Blocks until the tenant gauge may have credit again (same wake-elision
  // protocol as wait_feed_space, parked on the gauge's event word). The
  // park is insurance-bounded: credits held by a stream that aborts come
  // back through finish(), which never bumps this gauge's event, so a
  // bounded park plus the caller's re-probe (which observes the abort)
  // keeps a parked pusher from sleeping forever. Sim pumps instead.
  virtual bool wait_credit(const Deadline& deadline);
  // After every port is closed and the taps are drained: the final report.
  virtual RunReport collect() = 0;

  // --- shared port logic -----------------------------------------------
  // NoCredit is distinct from NoSpace so the blocking paths park on the
  // right event: the tenant gauge for the former, the feed's producer
  // signal for the latter.
  enum class PushStatus { Ok, NoSpace, NoCredit, Ended };

  // Pre: port_mus[i] held, a marker is due now (the barrier armed this port
  // and it just reached S, begin() found it already at S, or close() cuts
  // it short of S). The feed always has physical room: data occupancy is
  // capped at feed_capacity segments, EOS adds one, and a marker rides the
  // ring's extra physical slot -- so Full can only mean a previous barrier's
  // marker is still in flight, which barrier serialization excludes.
  void inject_marker_locked(std::size_t i, std::uint64_t seq) {
    bool was_empty = false;
    const PushResult r = feed_channels[i]->try_push_marker(seq, &was_empty);
    SDAF_ASSERT(r != PushResult::Full);
    armed_marker[i] = kNoBarrier;
    // This port's cut: everything it accepted before its marker (== S for a
    // port that reached the barrier, its final count for one closed short).
    port_cut_seq[i] = inputs[i]->pushed();
    if (r == PushResult::Ok) feed_pushed(i, was_empty);
  }

  PushStatus push_message(InputPort& port, Message& m) {
    const std::size_t i = port.index_;
    BoundedChannel& feed = *feed_channels[i];
    // Tenant credit gates BEFORE channel space: a tenant at its window
    // parks on its own gauge without ever probing (or filling) the feed.
    // The abort check first keeps a credit-starved pusher from spinning
    // forever on a stream whose credits died with another feed.
    if (credits != nullptr) {
      if (feed.aborted()) return PushStatus::Ended;
      if (!credits->try_acquire(1)) return PushStatus::NoCredit;
      // Charge before the publish: the consumer-side drain decrement can
      // then never precede its increment (see CreditReleaser).
      credit_releaser.charge(1);
    }
    const auto undo = [&](PushStatus s) {
      if (credits != nullptr) credit_releaser.uncharge(1);
      return s;
    };
    std::lock_guard plock(*port_mus[i]);
    if (feed.size() >= spec.feed_capacity)
      return undo(PushStatus::NoSpace);  // data exhausted; EOS slot reserved
    bool was_empty = false;
    switch (feed.try_push(std::move(m), &was_empty)) {
      case PushResult::Ok:
        // Single writer (the port's caller): plain load+store, no RMW.
        port.next_seq_.store(port.pushed() + 1, std::memory_order_relaxed);
        // An armed barrier injects its marker exactly between seq S-1 and
        // seq S, preserving the barrier invariant at the injection point.
        if (armed_marker[i] != kNoBarrier && port.pushed() == armed_marker[i])
          inject_marker_locked(i, armed_marker[i]);
        feed_pushed(i, was_empty);
        return PushStatus::Ok;
      case PushResult::Aborted:
        return undo(PushStatus::Ended);
      case PushResult::Full:
      default:
        return undo(PushStatus::NoSpace);
    }
  }

  bool port_try_push(InputPort& port, Value&& v) {
    if (port.closed_) return false;
    Message m = Message::data(port.pushed(), std::move(v));
    return push_message(port, m) == PushStatus::Ok;
  }

  bool port_push(InputPort& port, Value&& v) {
    return port_push_deadline(port, std::move(v), std::nullopt) ==
           PortPushOutcome::Ok;
  }

  PortPushOutcome port_push_deadline(InputPort& port, Value&& v,
                                 const Deadline& deadline) {
    if (port.closed_) return PortPushOutcome::Ended;
    Message m = Message::data(port.pushed(), std::move(v));
    for (;;) {
      switch (push_message(port, m)) {
        case PushStatus::Ok:
          return PortPushOutcome::Ok;
        case PushStatus::Ended:
          return PortPushOutcome::Ended;
        case PushStatus::NoSpace:
          if (!wait_feed_space(port.index_, deadline))
            return feed_channels[port.index_]->aborted() ? PortPushOutcome::Ended
                                                         : PortPushOutcome::TimedOut;
          break;
        case PushStatus::NoCredit:
          if (!wait_credit(deadline))
            return feed_channels[port.index_]->aborted() ? PortPushOutcome::Ended
                                                         : PortPushOutcome::TimedOut;
          break;
      }
    }
  }

  // The bulk-ingest fast path: all sequence numbers are assigned up front,
  // then each round stages as many messages as the feed has data room for
  // and lands them with one BoundedChannel::try_push_batch (one ring
  // reservation + one publish + one wake). Traffic is bit-identical to
  // item-at-a-time push() -- same seqs, same channel contents, one
  // empty->non-empty wake edge instead of many redundant ones.
  std::size_t port_push_batch(InputPort& port, std::vector<Value> values,
                              const Deadline& deadline) {
    if (port.closed_ || values.empty()) return 0;
    std::vector<Message> msgs;
    msgs.reserve(values.size());
    std::uint64_t seq = port.pushed();
    for (auto& v : values) msgs.push_back(Message::data(seq++, std::move(v)));
    std::size_t done = 0;
    const std::size_t i = port.index_;
    BoundedChannel& feed = *feed_channels[i];
    for (;;) {
      bool aborted = false;
      std::size_t n = 0;
      // Credit gates the round like the single-item path: grab as many as
      // the gauge allows (charged up front so drains never outrun their
      // charges), push what also fits the feed, hand back the rest.
      std::uint64_t credit = 0;
      if (credits != nullptr) {
        if (feed.aborted()) break;
        credit = credits->try_acquire_upto(msgs.size() - done);
        if (credit == 0) {
          if (!wait_credit(deadline)) break;
          continue;
        }
        credit_releaser.charge(credit);
      }
      {
        std::lock_guard plock(*port_mus[i]);
        // Data occupancy is capped at feed_capacity (the ring's extra slot
        // is reserved for EOS); size() only shrinks under the caller's
        // feet, so `room` is a safe underestimate.
        const std::size_t occ = feed.size();
        const std::size_t room =
            occ >= spec.feed_capacity ? 0 : spec.feed_capacity - occ;
        std::size_t want = msgs.size() - done;
        if (credits != nullptr)
          want = std::min<std::size_t>(want, static_cast<std::size_t>(credit));
        // An armed barrier splits the batch at S: stage up to the marker's
        // slot, inject it, then the next round continues past it.
        if (armed_marker[i] != kNoBarrier)
          want = std::min<std::size_t>(
              want, static_cast<std::size_t>(armed_marker[i] - port.pushed()));
        if (room > 0 && want > 0) {
          bool was_empty = false;
          n = feed.try_push_batch(msgs.data() + done, std::min(room, want),
                                  &was_empty, &aborted);
          if (n > 0) {
            done += n;
            port.next_seq_.store(port.pushed() + n, std::memory_order_relaxed);
            if (armed_marker[i] != kNoBarrier &&
                port.pushed() == armed_marker[i])
              inject_marker_locked(i, armed_marker[i]);
            feed_pushed(i, was_empty);
          }
        }
      }
      if (credits != nullptr && credit > n)
        credit_releaser.uncharge(credit - n);
      if (aborted || done == msgs.size()) break;
      if (n > 0) continue;
      if (!wait_feed_space(i, deadline)) break;
    }
    return done;
  }

  void port_close(InputPort& port) {
    if (port.closed_) return;
    const std::size_t i = port.index_;
    std::lock_guard plock(*port_mus[i]);
    // A port closed short of an armed barrier cuts at its final count: its
    // marker precedes the EOS, so everything it ever accepted is below the
    // cut and the barrier invariant holds with next_seq < S.
    if (armed_marker[i] != kNoBarrier)
      inject_marker_locked(i, armed_marker[i]);
    port.closed_ = true;
    BoundedChannel& feed = *feed_channels[i];
    // The reserved slot makes this infallible unless the stream already
    // aborted (then the EOS is moot anyway).
    const PushResult r = feed.try_push(Message::eos());
    SDAF_ASSERT(r != PushResult::Full);
    feed_closed(i);
  }

  // Lazily aligns tap j's cut state with the current barrier generation
  // (begin() bumps the generation; the taps reset on first touch instead of
  // begin() taking every tap lock -- a caller parked in next() holds its
  // tap's lock indefinitely). Pre: egress_mus[j] held.
  void tap_sync_locked(std::size_t j) {
    const std::uint64_t gen = snap_gen.load(std::memory_order_acquire);
    if (tap_gen[j] == gen) return;
    tap_gen[j] = gen;
    tap_acked[j] = 0;
    tap_ended_cut[j] = 0;
    tap_residue[j].clear();
    // A tap whose EOS was consumed before the barrier began is already at
    // its final cut: no marker will arrive (the sink finished), ack now.
    if (outputs[j]->ended_) ack_tap_locked(j, /*ended=*/true);
  }

  // Pre: egress_mus[j] held and tap_sync_locked(j) ran this touch. The
  // release increment pairs with assembly's acquire read, publishing the
  // frozen tap cut (ended flag + residue).
  void ack_tap_locked(std::size_t j, bool ended) {
    if (tap_acked[j] != 0) return;
    tap_acked[j] = 1;
    tap_ended_cut[j] = ended ? 1 : 0;
    tap_acked_count.fetch_add(1, std::memory_order_release);
  }

  std::optional<OutputPort::Item> port_poll_once(OutputPort& port) {
    std::lock_guard elock(*egress_mus[port.index_]);
    return port_poll_once_locked(port);
  }

  std::optional<OutputPort::Item> port_poll_once_locked(OutputPort& port) {
    const std::size_t j = port.index_;
    // Restored tap residue (and items the snapshot reaper parked to surface
    // a marker) delivers ahead of anything in the live ring -- it is older.
    if (!parked[j].empty()) {
      OutputPort::Item item = std::move(parked[j].front());
      parked[j].pop_front();
      return item;
    }
    if (parked_ended[j] != 0) {
      // The cut saw this tap's EOS; the restored sink is done and will not
      // flood another one into the new ring.
      port.ended_ = true;
      return std::nullopt;
    }
    if (port.ended_) return std::nullopt;
    BoundedChannel& egress = *egress_channels[j];
    for (;;) {
      const auto head = egress.try_peek_head();
      if (!head.has_value()) {
        if (egress.aborted()) port.ended_ = true;
        return std::nullopt;
      }
      if (head->kind == MessageKind::Dummy) {
        // Interior dummies reaching the tap (propagation-mode forwarding)
        // carry no caller-visible payload; drop the whole run in one op.
        const auto run = egress.pop_dummies(head->run);
        egress_popped(j, run.was_full);
        continue;
      }
      if (head->kind == MessageKind::Marker) {
        // The tap's barrier marker: invisible to the caller. Everything the
        // caller popped before it was delivered (needs no residue);
        // acknowledge the tap's cut and keep polling.
        const bool was_full = egress.pop();
        egress_popped(j, was_full);
        tap_sync_locked(j);
        ack_tap_locked(j, /*ended=*/false);
        continue;
      }
      if (head->kind == MessageKind::Eos) {
        // EOS racing a pending barrier: the sink finished before (or while)
        // consuming its markers -- either way no marker follows, so this IS
        // the tap's cut.
        tap_sync_locked(j);
        ack_tap_locked(j, /*ended=*/true);
        const bool was_full = egress.pop();
        egress_popped(j, was_full);
        port.ended_ = true;
        return std::nullopt;
      }
      bool was_full = false;
      Message m = egress.pop_head(&was_full);
      egress_popped(j, was_full);
      return OutputPort::Item{m.seq, std::move(m.payload)};
    }
  }

  std::optional<OutputPort::Item> port_poll(OutputPort& port) {
    auto item = port_poll_once(port);
    if (!item.has_value() && !port.ended_ && pump_now())
      item = port_poll_once(port);
    return item;
  }

  std::optional<OutputPort::Item> port_next(OutputPort& port) {
    // Holds the tap lock across the park: the wait peeks the ring, which is
    // a consumer-side op that must not race the snapshot reaper (whose
    // try_lock simply skips a tap its caller owns).
    std::lock_guard elock(*egress_mus[port.index_]);
    for (;;) {
      if (auto item = port_poll_once_locked(port); item.has_value())
        return item;
      if (port.ended_) return std::nullopt;
      if (!wait_egress_item(port.index_)) return std::nullopt;
    }
  }

  // Discard whatever is still on the taps until every tap saw EOS (or the
  // run aborted): with the taps kept drained the EOS flood can always
  // complete, and on deadlock the backend aborts the taps, which ends the
  // loop too.
  virtual void drain_taps() {
    using namespace std::chrono_literals;
    for (;;) {
      bool all_ended = true;
      bool any = false;
      for (auto& port : outputs) {
        while (port_poll_once(*port).has_value()) any = true;
        all_ended &= port->ended_;
      }
      if (all_ended) return;
      if (!any) std::this_thread::sleep_for(200us);
    }
  }

  // --- barrier lifecycle (Stream::snapshot_*) ---------------------------

  bool snapshot_begin() {
    std::lock_guard slock(snap_mu);
    if (collected) return false;
    if (snap_active || plane.pending()) return false;
    // Generation first: a marker that races through a shallow graph to a
    // tap before begin() returns must ack under the new generation.
    snap_gen.fetch_add(1, std::memory_order_release);
    tap_acked_count.store(0, std::memory_order_relaxed);
    // Hold every feed's producer side while choosing S and injecting, so no
    // port can slip an item with seq >= S underneath an injected marker.
    std::vector<std::unique_lock<std::mutex>> plocks;
    plocks.reserve(port_mus.size());
    for (auto& m : port_mus) plocks.emplace_back(*m);
    // S = max over ALL ports (open and closed) of items accepted: closed
    // ports forward no marker, so every message they ever contributed must
    // sit below the cut for downstream alignment to hold.
    std::uint64_t barrier = 0;
    for (const auto& port : inputs) barrier = std::max(barrier, port->pushed());
    const bool begun = plane.begin(barrier);
    SDAF_ASSERT(begun);
    snap_barrier = barrier;
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      InputPort& port = *inputs[i];
      if (port.closed_) {
        // No marker: the source drains to EOS and reports through the
        // plane's finished set (its feed holds only seqs < S by choice of
        // S, plus the EOS).
        port_cut_closed[i] = 1;
        port_cut_seq[i] = port.pushed();
        continue;
      }
      port_cut_closed[i] = 0;
      if (port.pushed() == barrier)
        inject_marker_locked(i, barrier);
      else
        armed_marker[i] = barrier;  // inject exactly when it reaches S
    }
    snap_active = true;
    snap_begin_seconds = clock.elapsed_seconds();
    return true;
  }

  // Reap tap markers that idle output ports have not consumed: for each
  // unacked tap we can lock (try_lock -- a caller inside a port call owns
  // the tap and will process its marker itself), pop ahead of the marker,
  // parking Data items for later delivery and recording them as the cut's
  // residue (popped-but-undelivered at the cut). Pre: snap_mu held.
  void reap_tap_markers() {
    for (std::size_t j = 0; j < outputs.size(); ++j) {
      std::unique_lock elock(*egress_mus[j], std::try_to_lock);
      if (!elock.owns_lock()) continue;
      tap_sync_locked(j);
      if (tap_acked[j] != 0 || parked_ended[j] != 0 || outputs[j]->ended_)
        continue;
      BoundedChannel& egress = *egress_channels[j];
      for (;;) {
        const auto head = egress.try_peek_head();
        if (!head.has_value()) break;
        if (head->kind == MessageKind::Marker) {
          const bool was_full = egress.pop();
          egress_popped(j, was_full);
          ack_tap_locked(j, /*ended=*/false);
          break;
        }
        if (head->kind == MessageKind::Eos) {
          // Leave the EOS for the caller's poll (ended() flips there); the
          // cut records the tap as ended either way.
          ack_tap_locked(j, /*ended=*/true);
          break;
        }
        if (head->kind == MessageKind::Dummy) {
          const auto run = egress.pop_dummies(head->run);
          egress_popped(j, run.was_full);
          continue;
        }
        bool was_full = false;
        Message m = egress.pop_head(&was_full);
        egress_popped(j, was_full);
        tap_residue[j].push_back(ckpt::TapItem{m.seq, m.payload});
        parked[j].push_back(OutputPort::Item{m.seq, std::move(m.payload)});
      }
    }
  }

  std::optional<ckpt::StreamSnapshot> snapshot_poll() {
    std::lock_guard slock(snap_mu);
    if (!snap_active) return std::nullopt;
    (void)pump_now();  // Sim: markers only advance on the caller's thread
    reap_tap_markers();
    if (!plane.nodes_complete()) return std::nullopt;
    if (tap_acked_count.load(std::memory_order_acquire) != outputs.size())
      return std::nullopt;
    return assemble_snapshot();
  }

  // Pre: snap_mu held, every node checkpointed/finished, every tap acked.
  ckpt::StreamSnapshot assemble_snapshot() {
    ckpt::StreamSnapshot snap;
    snap.signature = snapshot_signature(graph, spec.run);
    snap.epoch = epoch;
    snap.barrier_seq = snap_barrier;
    snap.sweeps = sweeps_now();
    snap.nodes = plane.take_cuts();
    snap.edges.reserve(graph.edge_count());
    for (EdgeId e = 0; e < static_cast<EdgeId>(graph.edge_count()); ++e)
      snap.edges.push_back(
          edge_cut_at(e, /*producer_checkpointed=*/
                      snap.nodes[graph.edge(e).from].done == 0));
    snap.ports.reserve(inputs.size());
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      // Brief lock: port mutex holders never block (pushes park outside).
      std::lock_guard plock(*port_mus[i]);
      snap.ports.push_back(ckpt::PortCut{port_cut_closed[i], port_cut_seq[i]});
    }
    snap.taps.reserve(outputs.size());
    for (std::size_t j = 0; j < outputs.size(); ++j) {
      // No tap lock (a parked next() caller holds one indefinitely): the
      // residue is written only under snap_mu, and the ended flag was
      // published by the ack's release increment.
      snap.taps.push_back(
          ckpt::TapCut{tap_ended_cut[j], std::move(tap_residue[j])});
      tap_residue[j].clear();
    }
    snap_active = false;
    ++snapshots_taken;
    last_snapshot_seconds = clock.elapsed_seconds() - snap_begin_seconds;
    return snap;
  }

  std::optional<ckpt::StreamSnapshot> snapshot_wait(
      std::chrono::milliseconds timeout) {
    (void)snapshot_begin();  // false = already pending; poll that barrier
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    for (;;) {
      if (auto snap = snapshot_poll(); snap.has_value()) return snap;
      {
        std::lock_guard slock(snap_mu);
        if (!snap_active) return std::nullopt;  // never begun (finished)
      }
      if (std::chrono::steady_clock::now() >= deadline) return std::nullopt;
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }

  [[nodiscard]] obs::MetricsSnapshot take_snapshot() const {
    obs::MetricsSnapshot s;
    if (registry != nullptr) {
      obs::SnapshotOptions opts;
      opts.backend = to_string(spec.run.backend);
      opts.tenant = spec.run.tenant;
      opts.wall_seconds = clock.elapsed_seconds();
      opts.bytes_per_slot = sizeof(Message);
      s = obs::snapshot(graph, *registry, opts);
    } else {
      s.backend = to_string(spec.run.backend);
      s.tenant.tenant = spec.run.tenant;
      s.tenant.wall_seconds = clock.elapsed_seconds();
    }
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      obs::PortMetrics p;
      p.node = inputs[i]->node();
      p.name = graph.node_name(p.node);
      p.input = true;
      p.pushed = inputs[i]->pushed();
      p.occupancy = feed_channels[i]->size();
      p.capacity = spec.feed_capacity;
      s.ports.push_back(std::move(p));
    }
    for (std::size_t i = 0; i < outputs.size(); ++i) {
      obs::PortMetrics p;
      p.node = outputs[i]->node();
      p.name = graph.node_name(p.node);
      p.input = false;
      p.pushed = egress_channels[i]->stats().data_pushed;
      p.occupancy = egress_channels[i]->size();
      p.capacity = spec.egress_capacity;
      s.ports.push_back(std::move(p));
    }
    s.workers = worker_metrics();
    {
      std::lock_guard slock(snap_mu);
      s.ckpt.epoch = epoch;
      s.ckpt.snapshots_taken = snapshots_taken;
      s.ckpt.snapshot_pending = snap_active;
      s.ckpt.last_snapshot_seconds = last_snapshot_seconds;
    }
    return s;
  }

  RunReport finish() {
    SDAF_EXPECTS(!collected);
    {
      // A pending barrier dies with the stream: in-flight markers drain as
      // stale (the plane drops their checkpoints after abort_barrier).
      std::lock_guard slock(snap_mu);
      collected = true;
      snap_active = false;
      plane.abort_barrier();
    }
    for (auto& port : inputs) port_close(*port);
    drain_taps();
    RunReport report = collect();
    // The engine is quiesced: every drain hook that will ever fire has
    // fired. Whatever this stream still holds (items left in feeds by a
    // deadlock or abort) goes back to the tenant's window now, so one
    // wedged stream cannot leak its co-streams' credits forever.
    if (credits != nullptr) credit_releaser.release_rest();
    if (report.deadlocked) append_port_dump(&report);
    return report;
  }

  void append_port_dump(RunReport* report) const {
    std::ostringstream out;
    for (std::size_t i = 0; i < inputs.size(); ++i)
      out << "port feed " << graph.node_name(binding.source_nodes[i]) << " "
          << feed_channels[i]->size() << "/" << spec.feed_capacity
          << (inputs[i]->closed_ ? " closed" : " open") << "\n";
    for (std::size_t i = 0; i < outputs.size(); ++i)
      out << "port egress " << graph.node_name(outputs[i]->node_) << " "
          << egress_channels[i]->size() << "/" << spec.egress_capacity
          << (outputs[i]->ended_ ? " ended" : "") << "\n";
    report->state_dump += out.str();
  }
};

bool Core::wait_feed_space(std::size_t i, const Deadline& deadline) {
  // Wake-elision protocol, mirrored from the node runners: register as a
  // waiter on the feed's ProducerSignal (every consumer pop bumps it),
  // re-check, then park futex-style on the captured version -- bounded by
  // the absolute deadline when the caller asked for timed parking. The
  // caller loops, so a spurious wake-up (version moved but no space yet)
  // just re-probes. See runtime::ProducerSignal::bump.
  BoundedChannel& feed = *feed_channels[i];
  ProducerSignal& sig = *feed_signals[i];
  const std::uint32_t version = sig.event.capture();
  sig.event.register_waiter();
  std::atomic_thread_fence(std::memory_order_seq_cst);
  const bool space = feed.size() < spec.feed_capacity;
  bool timed_out = false;
  if (!space && !feed.aborted() &&
      !sig.aborted.load(std::memory_order_acquire)) {
    if (deadline.has_value())
      timed_out = !runtime::ParkingLot::park_until(sig.event.version, version,
                                                   *deadline);
    else
      runtime::ParkingLot::park(sig.event.version, version);
  }
  sig.event.unregister_waiter();
  return !feed.aborted() && !timed_out;
}

bool Core::wait_egress_item(std::size_t i) {
  // Blocks in the channel itself (every producer push notifies); empty
  // optional iff the tap was aborted.
  return egress_channels[i]->peek_head_wait().has_value();
}

bool Core::wait_credit(const Deadline& deadline) {
  // Wake-elision protocol against the tenant gauge: capture -> register
  // (seq_cst RMW) -> fence -> re-check -> park on the captured version.
  // Every release() fences then bumps-if-waiters, so a parked pusher never
  // misses a returned credit. The park carries 50ms insurance on top of
  // any caller deadline: a co-stream that aborts returns its credits via
  // finish() without bumping this event, and the re-probe upstream is what
  // observes the abort.
  using namespace std::chrono_literals;
  runtime::EventWord& ev = credits->event();
  const std::uint32_t version = ev.capture();
  ev.register_waiter();
  std::atomic_thread_fence(std::memory_order_seq_cst);
  bool timed_out = false;
  if (credits->in_flight() >= credits->limit()) {
    auto until = std::chrono::steady_clock::now() + 50ms;
    if (deadline.has_value() && *deadline < until) until = *deadline;
    (void)runtime::ParkingLot::park_until(ev.version, version, until);
    timed_out =
        deadline.has_value() && std::chrono::steady_clock::now() >= *deadline;
  }
  ev.unregister_waiter();
  return !timed_out;
}

// ---------------------------------------------------------------- Sim ---
// Single-threaded: the caller's own thread runs the deterministic sweeps.
// Ports never block -- "waiting" means pumping, and a pump with no progress
// tells the caller nothing more can happen without new input.
struct SimCore final : Core {
  std::unique_ptr<sim::SweepEngine> engine;

  SimCore(const StreamGraph& g,
          std::vector<std::shared_ptr<runtime::Kernel>> k, StreamSpec s,
          const ckpt::StreamSnapshot* restore)
      : Core(g, std::move(k), std::move(s), restore) {
    engine = std::make_unique<sim::SweepEngine>(graph, kernels, bound_spec());
    restore_src = nullptr;  // borrow ends with engine construction
  }

  bool pump_now() override { return engine->pump(); }
  [[nodiscard]] ckpt::EdgeCut edge_cut_at(
      EdgeId e, bool producer_checkpointed) const override {
    return engine->edge_cut(e, producer_checkpointed);
  }
  [[nodiscard]] std::uint64_t sweeps_now() const override {
    return engine->sweeps();
  }
  bool wait_feed_space(std::size_t i, const Deadline& /*deadline*/) override {
    // "Waiting" on the Sim backend means pumping on the caller's thread; a
    // pump with no progress already answers a deadline caller (the graph
    // cannot absorb the item no matter how long it waits), so the deadline
    // itself is moot.
    return engine->pump() && !feed_channels[i]->aborted();
  }
  bool wait_egress_item(std::size_t /*i*/) override { return engine->pump(); }
  bool wait_credit(const Deadline& /*deadline*/) override {
    // The feed consumers run on this thread: pumping is what returns
    // credits. A pump with no progress means no credit will ever free
    // without new polls, so give up (same contract as wait_feed_space).
    return engine->pump();
  }

  void drain_taps() override {
    for (;;) {
      bool any = false;
      for (auto& port : outputs)
        while (port_poll_once(*port).has_value()) any = true;
      const bool pumped = engine->pump();
      if (engine->all_done()) {
        // One last drain so collect() leaves no tap contents behind.
        for (auto& port : outputs)
          while (port_poll_once(*port).has_value()) {
          }
        return;
      }
      if (!pumped && !any) return;  // wedged (or sweep budget exhausted)
    }
  }

  RunReport collect() override {
    const bool deadlocked =
        !engine->all_done() && engine->sweeps() < spec.run.max_sweeps;
    RunReport report = engine->report(deadlocked);
    report.wall_seconds = clock.elapsed_seconds();
    return report;
  }
};

// ----------------------------------------------------------- Threaded ---
// One thread per node; port calls block inside the channels. The watchdog
// spawns unarmed (an input-starved source is idle, not wedged) and arms
// when the last port closes -- from then on "every node thread blocked with
// no progress" is again the exact certification, and certifying aborts the
// port channels too, releasing any parked caller.
struct ThreadedCore final : Core {
  std::unique_ptr<runtime::ThreadEngine> engine;
  std::atomic<std::size_t> closed_ports{0};

  ThreadedCore(const StreamGraph& g,
               std::vector<std::shared_ptr<runtime::Kernel>> k, StreamSpec s,
               const ckpt::StreamSnapshot* restore)
      : Core(g, std::move(k), std::move(s), restore) {
    engine = std::make_unique<runtime::ThreadEngine>(graph, kernels,
                                                     bound_spec());
    restore_src = nullptr;  // borrow ends with engine construction
    // Ports restored closed never call feed_closed; seed the count so the
    // watchdog still arms when the *remaining* open ports close (or right
    // away if the cut had closed them all).
    std::size_t pre_closed = 0;
    for (const auto& port : inputs)
      if (port->closed()) ++pre_closed;
    closed_ports.store(pre_closed);
    engine->start(/*arm_watchdog=*/pre_closed == inputs.size());
  }

  void feed_closed(std::size_t /*i*/) override {
    if (closed_ports.fetch_add(1) + 1 == inputs.size())
      engine->arm_watchdog();
  }

  [[nodiscard]] ckpt::EdgeCut edge_cut_at(
      EdgeId e, bool producer_checkpointed) const override {
    return engine->edge_cut(e, producer_checkpointed);
  }

  RunReport collect() override { return engine->join(); }
};

// ------------------------------------------------------------- Pooled ---
// Node tasks on a worker pool; port transitions become task wake-ups
// through the PoolExecutor stream hooks, and the extended quiescence rule
// ("quiescent and no port has pending items") keeps the deadlock verdict
// exact while ports are open.
struct PooledCore final : Core {
  std::unique_ptr<runtime::PoolExecutor> owned_pool;
  runtime::PoolExecutor* pool = nullptr;
  runtime::PoolExecutor::TicketId ticket = 0;
  runtime::PoolExecutor::StreamHandle handle;

  PooledCore(const StreamGraph& g,
             std::vector<std::shared_ptr<runtime::Kernel>> k, StreamSpec s,
             const ckpt::StreamSnapshot* restore)
      : Core(g, std::move(k), std::move(s), restore) {
    if (spec.run.pool != nullptr) {
      pool = spec.run.pool;
    } else {
      runtime::PoolExecutor::Options popt;
      popt.workers = spec.run.pool_workers;
      owned_pool = std::make_unique<runtime::PoolExecutor>(popt);
      pool = owned_pool.get();
    }
    ticket = pool->submit(graph, kernels, bound_spec());
    handle = pool->stream_handle(ticket);
    restore_src = nullptr;  // borrow ends with submit
    // Ports restored closed (their sources restored done) never call
    // feed_closed; report them so the extended quiescence rule sees the
    // right open-port count.
    for (std::size_t i = 0; i < inputs.size(); ++i)
      if (inputs[i]->closed()) {
        runtime::PoolExecutor::stream_port_closed(handle);
        runtime::PoolExecutor::stream_wake(handle, binding.source_nodes[i]);
      }
  }

  void feed_pushed(std::size_t i, bool was_empty) override {
    if (was_empty)
      runtime::PoolExecutor::stream_wake(handle, binding.source_nodes[i]);
  }

  void feed_closed(std::size_t i) override {
    // Close protocol (see PoolExecutor::Instance): EOS already pushed by
    // port_close, then the decrement, then the wake -- so a quiescent
    // observer that reads the decrement also sees the EOS.
    runtime::PoolExecutor::stream_port_closed(handle);
    runtime::PoolExecutor::stream_wake(handle, binding.source_nodes[i]);
  }

  void egress_popped(std::size_t i, bool was_full) override {
    if (was_full)
      runtime::PoolExecutor::stream_wake(handle, outputs[i]->node());
  }

  [[nodiscard]] std::vector<obs::WorkerMetrics> worker_metrics()
      const override {
    return pool->worker_metrics();
  }

  [[nodiscard]] ckpt::EdgeCut edge_cut_at(
      EdgeId e, bool producer_checkpointed) const override {
    return runtime::PoolExecutor::stream_edge_cut(handle, e,
                                                  producer_checkpointed);
  }

  RunReport collect() override {
    RunReport report = pool->wait(ticket);
    handle.reset();
    return report;
  }
};

std::unique_ptr<Core> make_core(const StreamGraph& graph,
                                std::vector<std::shared_ptr<runtime::Kernel>>
                                    kernels,
                                StreamSpec spec,
                                const ckpt::StreamSnapshot* restore) {
  switch (spec.run.backend) {
    case Backend::Sim:
      return std::make_unique<SimCore>(graph, std::move(kernels),
                                       std::move(spec), restore);
    case Backend::Threaded:
      return std::make_unique<ThreadedCore>(graph, std::move(kernels),
                                            std::move(spec), restore);
    case Backend::Pooled:
      return std::make_unique<PooledCore>(graph, std::move(kernels),
                                          std::move(spec), restore);
  }
  SDAF_ASSERT(false && "unknown backend");
  return nullptr;
}

}  // namespace stream_detail

using stream_detail::Core;

bool InputPort::push(runtime::Value v) {
  return core_->port_push(*this, std::move(v));
}

bool InputPort::try_push(runtime::Value v) {
  return core_->port_try_push(*this, std::move(v));
}

PortPushOutcome InputPort::try_push_for(runtime::Value v,
                                    std::chrono::nanoseconds timeout) {
  // timeout <= 0: a deadline already in the past -- one push attempt, no
  // park (try_push semantics with the three-way status).
  const auto deadline = std::chrono::steady_clock::now() +
                        std::max(timeout, std::chrono::nanoseconds::zero());
  return core_->port_push_deadline(*this, std::move(v), deadline);
}

std::size_t InputPort::push_batch(std::vector<runtime::Value> values) {
  return core_->port_push_batch(*this, std::move(values), std::nullopt);
}

std::size_t InputPort::push_batch_for(std::vector<runtime::Value> values,
                                      std::chrono::nanoseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::max(timeout, std::chrono::nanoseconds::zero());
  return core_->port_push_batch(*this, std::move(values), deadline);
}

void InputPort::close() { core_->port_close(*this); }

std::optional<OutputPort::Item> OutputPort::poll() {
  return core_->port_poll(*this);
}

std::size_t OutputPort::poll_batch(std::vector<Item>* out, std::size_t max) {
  SDAF_EXPECTS(out != nullptr);
  std::size_t appended = 0;
  while (appended < max) {
    auto item = core_->port_poll(*this);
    if (!item.has_value()) break;
    out->push_back(std::move(*item));
    ++appended;
  }
  return appended;
}

std::optional<OutputPort::Item> OutputPort::next() {
  return core_->port_next(*this);
}

Stream::Stream(std::unique_ptr<stream_detail::Core> core)
    : core_(std::move(core)) {}

Stream::Stream(Stream&& other) noexcept = default;

Stream::~Stream() {
  if (core_ != nullptr && !core_->collected) (void)core_->finish();
}

std::size_t Stream::input_count() const { return core_->inputs.size(); }

InputPort& Stream::input(std::size_t i) {
  SDAF_EXPECTS(i < core_->inputs.size());
  return *core_->inputs[i];
}

InputPort& Stream::input_for(NodeId source) {
  for (auto& port : core_->inputs)
    if (port->node() == source) return *port;
  SDAF_EXPECTS(false && "no input port for node");
  return *core_->inputs.front();
}

std::size_t Stream::output_count() const { return core_->outputs.size(); }

OutputPort& Stream::output(std::size_t i) {
  SDAF_EXPECTS(i < core_->outputs.size());
  return *core_->outputs[i];
}

OutputPort& Stream::output_for(NodeId sink) {
  for (auto& port : core_->outputs)
    if (port->node() == sink) return *port;
  SDAF_EXPECTS(false && "no output port for node");
  return *core_->outputs.front();
}

void Stream::pump() { (void)core_->pump_now(); }

obs::MetricsSnapshot Stream::metrics() const { return core_->take_snapshot(); }

bool Stream::snapshot_begin() { return core_->snapshot_begin(); }

std::optional<ckpt::StreamSnapshot> Stream::snapshot_poll() {
  return core_->snapshot_poll();
}

std::optional<ckpt::StreamSnapshot> Stream::snapshot(
    std::chrono::milliseconds timeout) {
  return core_->snapshot_wait(timeout);
}

std::uint64_t Stream::epoch() const { return core_->epoch; }

RunReport Stream::finish() { return core_->finish(); }

// Defined here (not session.cpp) so the concrete cores stay file-local.
Stream Session::open(StreamSpec spec) {
  return Stream(stream_detail::make_core(graph_, kernels_, std::move(spec),
                                         /*restore=*/nullptr));
}

namespace {
// The reservation a successful admit pinned; releasing is the deleter's
// job so the budget comes back exactly once, when the Stream (which owns
// the lease through its spec) is destroyed.
struct AdmissionTicket {
  qos::Admission& admission;
  std::string tenant;
  qos::TenantCost cost;
  AdmissionTicket(qos::Admission& a, std::string t, const qos::TenantCost& c)
      : admission(a), tenant(std::move(t)), cost(c) {}
  ~AdmissionTicket() { admission.release(tenant, cost); }
};
}  // namespace

Session::OpenDecision Session::open(StreamSpec spec,
                                    qos::Admission& admission) {
  OpenDecision decision;
  // The spec's intervals ARE the compile result (RunSpec::apply), so the
  // cost model needs no separate CompileResult here; an empty vector
  // (avoidance off) predicts zero dummy overhead over the raw buffers.
  decision.predicted = qos::estimate(graph_, spec.run.intervals);
  if (auto rejected = admission.admit(spec.run.tenant, decision.predicted)) {
    decision.rejected = std::move(rejected);
    return decision;
  }
  spec.lease = std::make_shared<AdmissionTicket>(admission, spec.run.tenant,
                                                 decision.predicted);
  decision.stream.emplace(Stream(stream_detail::make_core(
      graph_, kernels_, std::move(spec), /*restore=*/nullptr)));
  return decision;
}

std::optional<Stream> Session::restore(StreamSpec spec,
                                       const ckpt::StreamSnapshot& snapshot) {
  if (snapshot.version != ckpt::kSnapshotVersion) return std::nullopt;
  if (snapshot.signature != stream_detail::snapshot_signature(graph_, spec.run))
    return std::nullopt;
  if (snapshot.nodes.size() != graph_.node_count()) return std::nullopt;
  if (snapshot.edges.size() != graph_.edge_count()) return std::nullopt;
  const auto& sources = graph_.sources();
  if (snapshot.ports.size() != sources.size()) return std::nullopt;
  const std::size_t want_taps =
      spec.capture_outputs ? graph_.sinks().size() : 0;
  if (snapshot.taps.size() != want_taps) return std::nullopt;
  // Internal consistency: a port closed at the cut implies its source was
  // cut done (a closed feed carries no marker, so the barrier can only have
  // completed through the source finishing). Reject blobs that violate it
  // -- apply_restore leans on the EOS having fully flooded.
  for (std::size_t i = 0; i < snapshot.ports.size(); ++i)
    if (snapshot.ports[i].closed != 0 && snapshot.nodes[sources[i]].done == 0)
      return std::nullopt;
  return Stream(
      stream_detail::make_core(graph_, kernels_, std::move(spec), &snapshot));
}

}  // namespace sdaf::exec
