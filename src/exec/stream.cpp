#include "src/exec/stream.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <sstream>
#include <thread>

#include "src/exec/session.h"
#include "src/runtime/channel.h"
#include "src/runtime/executor.h"
#include "src/runtime/pool_executor.h"
#include "src/sim/simulation.h"
#include "src/support/contracts.h"
#include "src/support/timer.h"

namespace sdaf::exec {
namespace stream_detail {

using runtime::BoundedChannel;
using runtime::Message;
using runtime::MessageKind;
using runtime::ProducerSignal;
using runtime::PushResult;
using runtime::Value;

// The backend-polymorphic stream engine. The base class owns everything a
// stream is made of -- the port channels (feeds with one reserved EOS slot,
// egress taps), the PortBinding the backend consumes, and the port handles
// -- plus the backend-agnostic port logic. Subclasses supply how execution
// is driven (sweeps on the caller's thread vs. threads vs. pool tasks) and
// what a port transition must additionally do (nothing, or a task wake-up).
struct Core {
  const StreamGraph& graph;
  std::vector<std::shared_ptr<runtime::Kernel>> kernels;
  StreamSpec spec;
  PortBinding binding;
  std::vector<std::unique_ptr<BoundedChannel>> feed_channels;
  std::vector<std::unique_ptr<ProducerSignal>> feed_signals;
  std::vector<std::unique_ptr<BoundedChannel>> egress_channels;
  std::vector<std::unique_ptr<InputPort>> inputs;
  std::vector<std::unique_ptr<OutputPort>> outputs;
  // Counter registry the backend writes through (see StreamSpec::metrics).
  // Owned here unless the caller supplied one via spec.run.metrics, so
  // snapshots stay valid for the Stream's whole lifetime regardless of
  // backend teardown order.
  std::unique_ptr<obs::MetricsRegistry> owned_registry;
  obs::MetricsRegistry* registry = nullptr;
  Stopwatch clock;
  bool collected = false;

  Core(const StreamGraph& g,
       std::vector<std::shared_ptr<runtime::Kernel>> session_kernels,
       StreamSpec stream_spec)
      : graph(g), kernels(std::move(session_kernels)), spec(std::move(stream_spec)) {
    SDAF_EXPECTS(graph.node_count() > 0);
    SDAF_EXPECTS(spec.feed_capacity >= 1);
    SDAF_EXPECTS(spec.egress_capacity >= 1);
    if (spec.run.metrics != nullptr) {
      registry = spec.run.metrics;
    } else if (spec.metrics) {
      owned_registry = std::make_unique<obs::MetricsRegistry>(
          graph.node_count(), graph.edge_count());
      registry = owned_registry.get();
      spec.run.metrics = registry;
    }
    binding.live = true;
    for (const NodeId n : graph.sources()) {
      binding.source_nodes.push_back(n);
      // capacity + 1: the extra slot is reserved for EOS, so close() can
      // never fail for lack of space (data occupancy is capped at
      // feed_capacity by the port push path).
      feed_channels.push_back(std::make_unique<BoundedChannel>(
          spec.feed_capacity + 1, /*monitor=*/nullptr));
      feed_signals.push_back(std::make_unique<ProducerSignal>());
      feed_channels.back()->set_producer_signal(feed_signals.back().get());
      binding.feeds.push_back(feed_channels.back().get());
      auto port = std::unique_ptr<InputPort>(new InputPort());
      port->core_ = this;
      port->index_ = inputs.size();
      port->node_ = n;
      inputs.push_back(std::move(port));
    }
    for (const NodeId n : graph.sinks()) {
      binding.sink_nodes.push_back(n);
      if (spec.capture_outputs) {
        egress_channels.push_back(std::make_unique<BoundedChannel>(
            spec.egress_capacity, /*monitor=*/nullptr));
        binding.egress.push_back(egress_channels.back().get());
        auto port = std::unique_ptr<OutputPort>(new OutputPort());
        port->core_ = this;
        port->index_ = outputs.size();
        port->node_ = n;
        outputs.push_back(std::move(port));
      } else {
        binding.egress.push_back(nullptr);
      }
    }
  }

  virtual ~Core() = default;

  [[nodiscard]] RunSpec bound_spec() const {
    RunSpec bound = spec.run;
    bound.ports = &binding;
    return bound;
  }

  // --- backend hooks ---------------------------------------------------
  // Sim only: run sweeps now. Concurrent backends: no-op.
  virtual bool pump_now() { return false; }
  // Pooled only: the pool's per-worker scheduler counters.
  [[nodiscard]] virtual std::vector<obs::WorkerMetrics> worker_metrics()
      const {
    return {};
  }
  // Port transitions. Pushes/pops report the channel's wake-relevant edge.
  virtual void feed_pushed(std::size_t /*i*/, bool /*was_empty*/) {}
  virtual void feed_closed(std::size_t /*i*/) {}
  virtual void egress_popped(std::size_t /*i*/, bool /*was_full*/) {}
  // Blocking helpers: return true = state may have changed, retry; false =
  // give up (aborted, deadline passed, or -- Sim -- no progress possible).
  // A null deadline waits forever (the classic push() path).
  using Deadline = std::optional<std::chrono::steady_clock::time_point>;
  virtual bool wait_feed_space(std::size_t i, const Deadline& deadline);
  virtual bool wait_egress_item(std::size_t i);
  // After every port is closed and the taps are drained: the final report.
  virtual RunReport collect() = 0;

  // --- shared port logic -----------------------------------------------
  enum class PushStatus { Ok, NoSpace, Ended };

  PushStatus push_message(InputPort& port, Message& m) {
    BoundedChannel& feed = *feed_channels[port.index_];
    if (feed.size() >= spec.feed_capacity)
      return PushStatus::NoSpace;  // data slots exhausted; EOS slot reserved
    bool was_empty = false;
    switch (feed.try_push(std::move(m), &was_empty)) {
      case PushResult::Ok:
        // Single writer (the port's caller): plain load+store, no RMW.
        port.next_seq_.store(port.pushed() + 1, std::memory_order_relaxed);
        feed_pushed(port.index_, was_empty);
        return PushStatus::Ok;
      case PushResult::Aborted:
        return PushStatus::Ended;
      case PushResult::Full:
      default:
        return PushStatus::NoSpace;
    }
  }

  bool port_try_push(InputPort& port, Value&& v) {
    if (port.closed_) return false;
    Message m = Message::data(port.pushed(), std::move(v));
    return push_message(port, m) == PushStatus::Ok;
  }

  bool port_push(InputPort& port, Value&& v) {
    return port_push_deadline(port, std::move(v), std::nullopt) ==
           PortPushOutcome::Ok;
  }

  PortPushOutcome port_push_deadline(InputPort& port, Value&& v,
                                 const Deadline& deadline) {
    if (port.closed_) return PortPushOutcome::Ended;
    Message m = Message::data(port.pushed(), std::move(v));
    for (;;) {
      switch (push_message(port, m)) {
        case PushStatus::Ok:
          return PortPushOutcome::Ok;
        case PushStatus::Ended:
          return PortPushOutcome::Ended;
        case PushStatus::NoSpace:
          if (!wait_feed_space(port.index_, deadline))
            return feed_channels[port.index_]->aborted() ? PortPushOutcome::Ended
                                                         : PortPushOutcome::TimedOut;
          break;
      }
    }
  }

  // The bulk-ingest fast path: all sequence numbers are assigned up front,
  // then each round stages as many messages as the feed has data room for
  // and lands them with one BoundedChannel::try_push_batch (one ring
  // reservation + one publish + one wake). Traffic is bit-identical to
  // item-at-a-time push() -- same seqs, same channel contents, one
  // empty->non-empty wake edge instead of many redundant ones.
  std::size_t port_push_batch(InputPort& port, std::vector<Value> values,
                              const Deadline& deadline) {
    if (port.closed_ || values.empty()) return 0;
    std::vector<Message> msgs;
    msgs.reserve(values.size());
    std::uint64_t seq = port.pushed();
    for (auto& v : values) msgs.push_back(Message::data(seq++, std::move(v)));
    std::size_t done = 0;
    BoundedChannel& feed = *feed_channels[port.index_];
    for (;;) {
      // Data occupancy is capped at feed_capacity (the ring's extra slot is
      // reserved for EOS); size() only shrinks under the caller's feet, so
      // `room` is a safe underestimate.
      const std::size_t occ = feed.size();
      const std::size_t room =
          occ >= spec.feed_capacity ? 0 : spec.feed_capacity - occ;
      if (room > 0) {
        bool was_empty = false;
        bool aborted = false;
        const std::size_t n = feed.try_push_batch(
            msgs.data() + done, std::min(room, msgs.size() - done),
            &was_empty, &aborted);
        if (aborted) break;
        if (n > 0) {
          done += n;
          port.next_seq_.store(port.pushed() + n, std::memory_order_relaxed);
          feed_pushed(port.index_, was_empty);
          if (done == msgs.size()) break;
          continue;
        }
      }
      if (!wait_feed_space(port.index_, deadline)) break;
    }
    return done;
  }

  void port_close(InputPort& port) {
    if (port.closed_) return;
    port.closed_ = true;
    BoundedChannel& feed = *feed_channels[port.index_];
    // The reserved slot makes this infallible unless the stream already
    // aborted (then the EOS is moot anyway).
    const PushResult r = feed.try_push(Message::eos());
    SDAF_ASSERT(r != PushResult::Full);
    feed_closed(port.index_);
  }

  std::optional<OutputPort::Item> port_poll_once(OutputPort& port) {
    if (port.ended_) return std::nullopt;
    BoundedChannel& egress = *egress_channels[port.index_];
    for (;;) {
      const auto head = egress.try_peek_head();
      if (!head.has_value()) {
        if (egress.aborted()) port.ended_ = true;
        return std::nullopt;
      }
      if (head->kind == MessageKind::Dummy) {
        // Interior dummies reaching the tap (propagation-mode forwarding)
        // carry no caller-visible payload; drop the whole run in one op.
        const auto run = egress.pop_dummies(head->run);
        egress_popped(port.index_, run.was_full);
        continue;
      }
      if (head->kind == MessageKind::Eos) {
        const bool was_full = egress.pop();
        egress_popped(port.index_, was_full);
        port.ended_ = true;
        return std::nullopt;
      }
      bool was_full = false;
      Message m = egress.pop_head(&was_full);
      egress_popped(port.index_, was_full);
      return OutputPort::Item{m.seq, std::move(m.payload)};
    }
  }

  std::optional<OutputPort::Item> port_poll(OutputPort& port) {
    auto item = port_poll_once(port);
    if (!item.has_value() && !port.ended_ && pump_now())
      item = port_poll_once(port);
    return item;
  }

  std::optional<OutputPort::Item> port_next(OutputPort& port) {
    for (;;) {
      if (auto item = port_poll_once(port); item.has_value()) return item;
      if (port.ended_) return std::nullopt;
      if (!wait_egress_item(port.index_)) return std::nullopt;
    }
  }

  // Discard whatever is still on the taps until every tap saw EOS (or the
  // run aborted): with the taps kept drained the EOS flood can always
  // complete, and on deadlock the backend aborts the taps, which ends the
  // loop too.
  virtual void drain_taps() {
    using namespace std::chrono_literals;
    for (;;) {
      bool all_ended = true;
      bool any = false;
      for (auto& port : outputs) {
        while (port_poll_once(*port).has_value()) any = true;
        all_ended &= port->ended_;
      }
      if (all_ended) return;
      if (!any) std::this_thread::sleep_for(200us);
    }
  }

  [[nodiscard]] obs::MetricsSnapshot take_snapshot() const {
    obs::MetricsSnapshot s;
    if (registry != nullptr) {
      obs::SnapshotOptions opts;
      opts.backend = to_string(spec.run.backend);
      opts.tenant = spec.run.tenant;
      opts.wall_seconds = clock.elapsed_seconds();
      opts.bytes_per_slot = sizeof(Message);
      s = obs::snapshot(graph, *registry, opts);
    } else {
      s.backend = to_string(spec.run.backend);
      s.tenant.tenant = spec.run.tenant;
      s.tenant.wall_seconds = clock.elapsed_seconds();
    }
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      obs::PortMetrics p;
      p.node = inputs[i]->node();
      p.name = graph.node_name(p.node);
      p.input = true;
      p.pushed = inputs[i]->pushed();
      p.occupancy = feed_channels[i]->size();
      p.capacity = spec.feed_capacity;
      s.ports.push_back(std::move(p));
    }
    for (std::size_t i = 0; i < outputs.size(); ++i) {
      obs::PortMetrics p;
      p.node = outputs[i]->node();
      p.name = graph.node_name(p.node);
      p.input = false;
      p.pushed = egress_channels[i]->stats().data_pushed;
      p.occupancy = egress_channels[i]->size();
      p.capacity = spec.egress_capacity;
      s.ports.push_back(std::move(p));
    }
    s.workers = worker_metrics();
    return s;
  }

  RunReport finish() {
    SDAF_EXPECTS(!collected);
    collected = true;
    for (auto& port : inputs) port_close(*port);
    drain_taps();
    RunReport report = collect();
    if (report.deadlocked) append_port_dump(&report);
    return report;
  }

  void append_port_dump(RunReport* report) const {
    std::ostringstream out;
    for (std::size_t i = 0; i < inputs.size(); ++i)
      out << "port feed " << graph.node_name(binding.source_nodes[i]) << " "
          << feed_channels[i]->size() << "/" << spec.feed_capacity
          << (inputs[i]->closed_ ? " closed" : " open") << "\n";
    for (std::size_t i = 0; i < outputs.size(); ++i)
      out << "port egress " << graph.node_name(outputs[i]->node_) << " "
          << egress_channels[i]->size() << "/" << spec.egress_capacity
          << (outputs[i]->ended_ ? " ended" : "") << "\n";
    report->state_dump += out.str();
  }
};

bool Core::wait_feed_space(std::size_t i, const Deadline& deadline) {
  // Wake-elision protocol, mirrored from the node runners: register as a
  // waiter on the feed's ProducerSignal (every consumer pop bumps it),
  // re-check, then park -- with an absolute deadline when the caller asked
  // for timed parking. See runtime::ProducerSignal::bump.
  BoundedChannel& feed = *feed_channels[i];
  ProducerSignal& sig = *feed_signals[i];
  const std::uint64_t version = sig.version.load(std::memory_order_acquire);
  sig.waiters.fetch_add(1, std::memory_order_seq_cst);
  std::atomic_thread_fence(std::memory_order_seq_cst);
  const bool space = feed.size() < spec.feed_capacity;
  bool timed_out = false;
  if (!space && !feed.aborted() &&
      !sig.aborted.load(std::memory_order_acquire)) {
    const auto moved = [&] {
      return sig.version.load(std::memory_order_acquire) != version ||
             sig.aborted.load(std::memory_order_acquire);
    };
    std::unique_lock lock(sig.mu);
    if (deadline.has_value())
      timed_out = !sig.cv.wait_until(lock, *deadline, moved);
    else
      sig.cv.wait(lock, moved);
  }
  sig.waiters.fetch_sub(1, std::memory_order_relaxed);
  return !feed.aborted() && !timed_out;
}

bool Core::wait_egress_item(std::size_t i) {
  // Blocks in the channel itself (every producer push notifies); empty
  // optional iff the tap was aborted.
  return egress_channels[i]->peek_head_wait().has_value();
}

// ---------------------------------------------------------------- Sim ---
// Single-threaded: the caller's own thread runs the deterministic sweeps.
// Ports never block -- "waiting" means pumping, and a pump with no progress
// tells the caller nothing more can happen without new input.
struct SimCore final : Core {
  std::unique_ptr<sim::SweepEngine> engine;

  SimCore(const StreamGraph& g,
          std::vector<std::shared_ptr<runtime::Kernel>> k, StreamSpec s)
      : Core(g, std::move(k), std::move(s)) {
    engine = std::make_unique<sim::SweepEngine>(graph, kernels, bound_spec());
  }

  bool pump_now() override { return engine->pump(); }
  bool wait_feed_space(std::size_t i, const Deadline& /*deadline*/) override {
    // "Waiting" on the Sim backend means pumping on the caller's thread; a
    // pump with no progress already answers a deadline caller (the graph
    // cannot absorb the item no matter how long it waits), so the deadline
    // itself is moot.
    return engine->pump() && !feed_channels[i]->aborted();
  }
  bool wait_egress_item(std::size_t /*i*/) override { return engine->pump(); }

  void drain_taps() override {
    for (;;) {
      bool any = false;
      for (auto& port : outputs)
        while (port_poll_once(*port).has_value()) any = true;
      const bool pumped = engine->pump();
      if (engine->all_done()) {
        // One last drain so collect() leaves no tap contents behind.
        for (auto& port : outputs)
          while (port_poll_once(*port).has_value()) {
          }
        return;
      }
      if (!pumped && !any) return;  // wedged (or sweep budget exhausted)
    }
  }

  RunReport collect() override {
    const bool deadlocked =
        !engine->all_done() && engine->sweeps() < spec.run.max_sweeps;
    RunReport report = engine->report(deadlocked);
    report.wall_seconds = clock.elapsed_seconds();
    return report;
  }
};

// ----------------------------------------------------------- Threaded ---
// One thread per node; port calls block inside the channels. The watchdog
// spawns unarmed (an input-starved source is idle, not wedged) and arms
// when the last port closes -- from then on "every node thread blocked with
// no progress" is again the exact certification, and certifying aborts the
// port channels too, releasing any parked caller.
struct ThreadedCore final : Core {
  std::unique_ptr<runtime::ThreadEngine> engine;
  std::atomic<std::size_t> closed_ports{0};

  ThreadedCore(const StreamGraph& g,
               std::vector<std::shared_ptr<runtime::Kernel>> k, StreamSpec s)
      : Core(g, std::move(k), std::move(s)) {
    engine = std::make_unique<runtime::ThreadEngine>(graph, kernels,
                                                     bound_spec());
    engine->start(/*arm_watchdog=*/inputs.empty());
  }

  void feed_closed(std::size_t /*i*/) override {
    if (closed_ports.fetch_add(1) + 1 == inputs.size())
      engine->arm_watchdog();
  }

  RunReport collect() override { return engine->join(); }
};

// ------------------------------------------------------------- Pooled ---
// Node tasks on a worker pool; port transitions become task wake-ups
// through the PoolExecutor stream hooks, and the extended quiescence rule
// ("quiescent and no port has pending items") keeps the deadlock verdict
// exact while ports are open.
struct PooledCore final : Core {
  std::unique_ptr<runtime::PoolExecutor> owned_pool;
  runtime::PoolExecutor* pool = nullptr;
  runtime::PoolExecutor::TicketId ticket = 0;
  runtime::PoolExecutor::StreamHandle handle;

  PooledCore(const StreamGraph& g,
             std::vector<std::shared_ptr<runtime::Kernel>> k, StreamSpec s)
      : Core(g, std::move(k), std::move(s)) {
    if (spec.run.pool != nullptr) {
      pool = spec.run.pool;
    } else {
      runtime::PoolExecutor::Options popt;
      popt.workers = spec.run.pool_workers;
      owned_pool = std::make_unique<runtime::PoolExecutor>(popt);
      pool = owned_pool.get();
    }
    ticket = pool->submit(graph, kernels, bound_spec());
    handle = pool->stream_handle(ticket);
  }

  void feed_pushed(std::size_t i, bool was_empty) override {
    if (was_empty)
      runtime::PoolExecutor::stream_wake(handle, binding.source_nodes[i]);
  }

  void feed_closed(std::size_t i) override {
    // Close protocol (see PoolExecutor::Instance): EOS already pushed by
    // port_close, then the decrement, then the wake -- so a quiescent
    // observer that reads the decrement also sees the EOS.
    runtime::PoolExecutor::stream_port_closed(handle);
    runtime::PoolExecutor::stream_wake(handle, binding.source_nodes[i]);
  }

  void egress_popped(std::size_t i, bool was_full) override {
    if (was_full)
      runtime::PoolExecutor::stream_wake(handle, outputs[i]->node());
  }

  [[nodiscard]] std::vector<obs::WorkerMetrics> worker_metrics()
      const override {
    return pool->worker_metrics();
  }

  RunReport collect() override {
    RunReport report = pool->wait(ticket);
    handle.reset();
    return report;
  }
};

}  // namespace stream_detail

using stream_detail::Core;

bool InputPort::push(runtime::Value v) {
  return core_->port_push(*this, std::move(v));
}

bool InputPort::try_push(runtime::Value v) {
  return core_->port_try_push(*this, std::move(v));
}

PortPushOutcome InputPort::try_push_for(runtime::Value v,
                                    std::chrono::nanoseconds timeout) {
  // timeout <= 0: a deadline already in the past -- one push attempt, no
  // park (try_push semantics with the three-way status).
  const auto deadline = std::chrono::steady_clock::now() +
                        std::max(timeout, std::chrono::nanoseconds::zero());
  return core_->port_push_deadline(*this, std::move(v), deadline);
}

std::size_t InputPort::push_batch(std::vector<runtime::Value> values) {
  return core_->port_push_batch(*this, std::move(values), std::nullopt);
}

std::size_t InputPort::push_batch_for(std::vector<runtime::Value> values,
                                      std::chrono::nanoseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::max(timeout, std::chrono::nanoseconds::zero());
  return core_->port_push_batch(*this, std::move(values), deadline);
}

void InputPort::close() { core_->port_close(*this); }

std::optional<OutputPort::Item> OutputPort::poll() {
  return core_->port_poll(*this);
}

std::size_t OutputPort::poll_batch(std::vector<Item>* out, std::size_t max) {
  SDAF_EXPECTS(out != nullptr);
  std::size_t appended = 0;
  while (appended < max) {
    auto item = core_->port_poll(*this);
    if (!item.has_value()) break;
    out->push_back(std::move(*item));
    ++appended;
  }
  return appended;
}

std::optional<OutputPort::Item> OutputPort::next() {
  return core_->port_next(*this);
}

Stream::Stream(std::unique_ptr<stream_detail::Core> core)
    : core_(std::move(core)) {}

Stream::Stream(Stream&& other) noexcept = default;

Stream::~Stream() {
  if (core_ != nullptr && !core_->collected) (void)core_->finish();
}

std::size_t Stream::input_count() const { return core_->inputs.size(); }

InputPort& Stream::input(std::size_t i) {
  SDAF_EXPECTS(i < core_->inputs.size());
  return *core_->inputs[i];
}

InputPort& Stream::input_for(NodeId source) {
  for (auto& port : core_->inputs)
    if (port->node() == source) return *port;
  SDAF_EXPECTS(false && "no input port for node");
  return *core_->inputs.front();
}

std::size_t Stream::output_count() const { return core_->outputs.size(); }

OutputPort& Stream::output(std::size_t i) {
  SDAF_EXPECTS(i < core_->outputs.size());
  return *core_->outputs[i];
}

OutputPort& Stream::output_for(NodeId sink) {
  for (auto& port : core_->outputs)
    if (port->node() == sink) return *port;
  SDAF_EXPECTS(false && "no output port for node");
  return *core_->outputs.front();
}

void Stream::pump() { (void)core_->pump_now(); }

obs::MetricsSnapshot Stream::metrics() const { return core_->take_snapshot(); }

RunReport Stream::finish() { return core_->finish(); }

// Defined here (not session.cpp) so the concrete cores stay file-local.
Stream Session::open(StreamSpec spec) {
  std::unique_ptr<stream_detail::Core> core;
  switch (spec.run.backend) {
    case Backend::Sim:
      core = std::make_unique<stream_detail::SimCore>(graph_, kernels_,
                                                      std::move(spec));
      break;
    case Backend::Threaded:
      core = std::make_unique<stream_detail::ThreadedCore>(graph_, kernels_,
                                                           std::move(spec));
      break;
    case Backend::Pooled:
      core = std::make_unique<stream_detail::PooledCore>(graph_, kernels_,
                                                         std::move(spec));
      break;
  }
  SDAF_ASSERT(core != nullptr);
  return Stream(std::move(core));
}

}  // namespace sdaf::exec
