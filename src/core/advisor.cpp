#include "src/core/advisor.h"

#include "src/support/contracts.h"

namespace sdaf::core {

BufferAdvice recommend_buffer_scale(const StreamGraph& g, Algorithm algorithm,
                                    const Rational& min_interval,
                                    const CompileOptions& base_options) {
  SDAF_EXPECTS(min_interval.is_finite());
  BufferAdvice advice;
  CompileOptions options = base_options;
  options.algorithm = algorithm;
  const CompileResult unit = compile(g, options);
  if (!unit.ok) {
    advice.diagnostics = unit.diagnostics;
    return advice;
  }

  Rational tightest = Rational::infinity();
  for (EdgeId e = 0; e < g.edge_count(); ++e)
    tightest = min(tightest, unit.intervals[e]);

  advice.ok = true;
  if (tightest.is_infinite()) {
    advice.scale = 1;
    advice.resulting_min_interval = Rational::infinity();
    advice.diagnostics = "no edge needs dummy messages; buffers unchanged";
  } else {
    // Intervals scale linearly with a uniform buffer multiplier k:
    // need k * tightest >= min_interval.
    advice.scale = std::max<std::int64_t>(
        1, (min_interval / tightest).ceil());
    advice.resulting_min_interval = tightest + Rational(0);  // copy
    advice.resulting_min_interval =
        Rational(tightest.num() * advice.scale, tightest.den());
    advice.diagnostics = "scaled every buffer by " +
                         std::to_string(advice.scale);
  }
  advice.buffers.reserve(g.edge_count());
  for (EdgeId e = 0; e < g.edge_count(); ++e)
    advice.buffers.push_back(g.edge(e).buffer * advice.scale);
  return advice;
}

}  // namespace sdaf::core
