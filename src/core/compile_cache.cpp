#include "src/core/compile_cache.h"

#include "src/support/contracts.h"

namespace sdaf::core {

CompileCache::CompileCache(std::size_t capacity) : capacity_(capacity) {
  SDAF_EXPECTS(capacity >= 1);
}

std::string CompileCache::signature(const StreamGraph& g,
                                    const CompileOptions& options) {
  std::string key;
  key.reserve(16 + g.edge_count() * 12);
  key += 'n';
  key += std::to_string(g.node_count());
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    const Edge& edge = g.edge(e);
    key += ';';
    key += std::to_string(edge.from);
    key += ',';
    key += std::to_string(edge.to);
    key += ',';
    key += std::to_string(edge.buffer);
  }
  key += '|';
  key += std::to_string(static_cast<int>(options.algorithm));
  key += ',';
  key += std::to_string(static_cast<int>(options.general_policy));
  key += ',';
  key += std::to_string(static_cast<int>(options.ladder_method));
  key += ',';
  key += std::to_string(options.cycle_limit);
  return key;
}

std::shared_ptr<const CompileResult> CompileCache::get_or_compile(
    const StreamGraph& g, const CompileOptions& options) {
  std::string key = signature(g, options);
  {
    std::lock_guard lock(mu_);
    auto it = index_.find(key);
    if (it != index_.end()) {
      ++stats_.hits;
      lru_.splice(lru_.begin(), lru_, it->second);
      return it->second->second;
    }
    ++stats_.misses;
  }
  auto result = std::make_shared<const CompileResult>(compile(g, options));
  std::lock_guard lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    // A racing miss inserted first; adopt its result for consistency.
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->second;
  }
  lru_.emplace_front(std::move(key), result);
  index_.emplace(lru_.front().first, lru_.begin());
  if (lru_.size() > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++stats_.evictions;
  }
  return result;
}

CompileCacheStats CompileCache::stats() const {
  std::lock_guard lock(mu_);
  return stats_;
}

std::size_t CompileCache::size() const {
  std::lock_guard lock(mu_);
  return lru_.size();
}

void CompileCache::clear() {
  std::lock_guard lock(mu_);
  lru_.clear();
  index_.clear();
}

}  // namespace sdaf::core
