// Human-readable compile reports: what a compiler would print under a
// -fdump-deadlock-avoidance flag.
#pragma once

#include <string>

#include "src/core/compile.h"
#include "src/graph/stream_graph.h"

namespace sdaf::core {

// Multi-line report: classification, per-edge intervals, dummy-sender set.
[[nodiscard]] std::string describe(const StreamGraph& g,
                                   const CompileResult& result);

}  // namespace sdaf::core
