// Buffer-sizing advisor: the inverse of interval computation. Dummy
// intervals scale linearly with buffer capacities under both algorithms
// (Propagation: [e] = min over cycles of a buffer-length sum; Non-
// Propagation: the same sum divided by a scale-invariant hop count), so
// "make the busiest dummy channel at least this lazy" has a closed-form
// answer: one compile at unit scale, then a single multiplier.
//
// This addresses the traffic-reduction direction the paper's Section VII
// raises: with channel memory to spare, dummy overhead can be driven
// arbitrarily low at compile time.
#pragma once

#include <cstdint>
#include <vector>

#include "src/core/compile.h"
#include "src/graph/stream_graph.h"
#include "src/support/rational.h"

namespace sdaf::core {

struct BufferAdvice {
  bool ok = false;
  std::string diagnostics;
  std::int64_t scale = 1;  // uniform multiplier applied to every buffer
  std::vector<std::int64_t> buffers;  // recommended per-edge capacities
  Rational resulting_min_interval;    // tightest finite interval after scaling
};

// Smallest uniform buffer multiplier making every finite dummy interval
// >= min_interval under `algorithm`. Graphs whose intervals are all
// infinite need no scaling (scale = 1).
[[nodiscard]] BufferAdvice recommend_buffer_scale(
    const StreamGraph& g, Algorithm algorithm, const Rational& min_interval,
    const CompileOptions& base_options = {});

}  // namespace sdaf::core
