#include "src/core/report.h"

#include <set>
#include <sstream>

namespace sdaf::core {

std::string describe(const StreamGraph& g, const CompileResult& result) {
  std::ostringstream os;
  os << "deadlock-avoidance compile report\n"
     << "  algorithm:      " << to_string(result.algorithm) << "\n"
     << "  classification: " << to_string(result.classification) << "\n"
     << "  status:         " << (result.ok ? "ok" : "rejected") << "\n"
     << "  notes:          " << result.diagnostics << "\n";
  if (!result.ok) return os.str();

  std::set<NodeId> senders;
  os << "  per-edge dummy intervals:\n";
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    const auto& ed = g.edge(e);
    os << "    " << g.node_name(ed.from) << " -> " << g.node_name(ed.to)
       << "  buffer=" << ed.buffer << "  [e]=" << result.intervals[e] << "\n";
    if (result.intervals[e].is_finite()) senders.insert(ed.from);
  }
  os << "  dummy-sending nodes (" << senders.size() << "):";
  for (const NodeId n : senders) os << " " << g.node_name(n);
  os << "\n";
  return os.str();
}

}  // namespace sdaf::core
