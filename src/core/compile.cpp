#include "src/core/compile.h"

#include <algorithm>

#include "src/graph/cycles.h"
#include "src/graph/undirected.h"
#include "src/intervals/baseline.h"
#include "src/support/contracts.h"

namespace sdaf::core {

namespace {

// Marks the continuation edges of one contracted SP component: an edge is
// schedule-capable w.r.t. the component's internal cycles iff every Pc
// ancestor's cycles start at the edge's own tail.
void mark_component_internal(const Skeleton& skel,
                             const std::vector<SpTree::Index>& parents,
                             SpTree::Index root,
                             std::vector<std::uint8_t>& forward) {
  for (const SpTree::Index leaf : skel.tree.leaves_under(root)) {
    const SpNode& ln = skel.tree.node(leaf);
    for (SpTree::Index cur = leaf; cur != root; cur = parents[cur]) {
      const SpNode& pn = skel.tree.node(parents[cur]);
      if (pn.kind == SpKind::Parallel && pn.source != ln.source) {
        forward[ln.edge] = 1;
        break;
      }
    }
  }
}

// Marks every edge of a contracted component as continuation.
void mark_whole_component(const Skeleton& skel, SpTree::Index root,
                          std::vector<std::uint8_t>& forward) {
  for (const SpTree::Index leaf : skel.tree.leaves_under(root))
    forward[skel.tree.node(leaf).edge] = 1;
}

// Marks the non-source-out edges of a component that is the first hop of a
// ladder-cycle run.
void mark_component_as_first(const Skeleton& skel, SpTree::Index root,
                             std::vector<std::uint8_t>& forward) {
  const NodeId source = skel.tree.node(root).source;
  for (const SpTree::Index leaf : skel.tree.leaves_under(root)) {
    const SpNode& ln = skel.tree.node(leaf);
    if (ln.source != source) forward[ln.edge] = 1;
  }
}

std::vector<std::uint8_t> forward_edges_cs4(const StreamGraph& g,
                                            const Cs4Analysis& analysis) {
  std::vector<std::uint8_t> forward(g.edge_count(), 0);
  const Skeleton& skel = analysis.skeleton;
  const auto parents = skel.tree.parents();
  for (const auto& se : skel.edges)
    mark_component_internal(skel, parents, se.tree, forward);
  for (const Ladder& ladder : analysis.ladders) {
    for (const UCycle& cycle : ladder.cycles) {
      for (const auto& run : directed_runs(skel.graph, cycle)) {
        mark_component_as_first(skel, skel.edges[run.edges.front()].tree,
                                forward);
        for (std::size_t k = 1; k < run.edges.size(); ++k)
          mark_whole_component(skel, skel.edges[run.edges[k]].tree, forward);
      }
    }
  }
  return forward;
}

std::vector<std::uint8_t> forward_edges_general(const StreamGraph& g,
                                                std::size_t cycle_limit) {
  std::vector<std::uint8_t> forward(g.edge_count(), 0);
  const auto enumeration = enumerate_undirected_cycles(g, cycle_limit);
  SDAF_EXPECTS(!enumeration.truncated);
  for (const auto& cycle : enumeration.cycles)
    for (const auto& run : directed_runs(g, cycle))
      for (std::size_t k = 1; k < run.edges.size(); ++k)
        forward[run.edges[k]] = 1;
  return forward;
}

}  // namespace

std::vector<std::int64_t> CompileResult::integer_intervals(
    Rounding rounding) const {
  std::vector<std::int64_t> out(intervals.size(), kNoDummyInterval);
  for (EdgeId e = 0; e < intervals.size(); ++e) {
    const Rational& r = intervals[e];
    if (r.is_infinite()) continue;
    const std::int64_t v = rounding == Rounding::PaperCeil ? r.ceil()
                                                           : r.floor();
    out[e] = std::max<std::int64_t>(1, v);
  }
  return out;
}

CompileResult compile(const StreamGraph& g, const CompileOptions& options) {
  CompileResult result;
  result.algorithm = options.algorithm;
  result.on_cycle.assign(g.edge_count(), 0);
  for (const auto& block : biconnected_components(g))
    if (block.size() >= 2)
      for (const EdgeId e : block) result.on_cycle[e] = 1;

  Cs4Analysis analysis = analyze_cs4(g);
  if (!analysis.two_terminal) {
    result.diagnostics = analysis.reason;
    return result;
  }

  if (analysis.is_cs4) {
    result.classification = analysis.pure_sp ? Classification::SpDag
                                             : Classification::Cs4Chain;
    result.intervals =
        options.algorithm == Algorithm::Propagation
            ? cs4_propagation_intervals(g, analysis, options.ladder_method)
            : cs4_nonprop_intervals(g, analysis);
    result.forward_edges = forward_edges_cs4(g, analysis);
    result.ok = true;
    result.diagnostics = std::string("classified as ") +
                         to_string(result.classification) + "; " +
                         std::to_string(result.intervals.finite_count()) +
                         " of " + std::to_string(g.edge_count()) +
                         " edges need dummy messages";
    return result;
  }

  result.classification = Classification::GeneralDag;
  if (options.general_policy == GeneralPolicy::Reject) {
    result.diagnostics =
        "topology is not CS4 (" + analysis.reason +
        "); rejected per policy -- restructure the graph (Section VII) or "
        "allow the exponential fallback";
    return result;
  }
  result.intervals =
      options.algorithm == Algorithm::Propagation
          ? propagation_intervals_exact(g, options.cycle_limit)
          : nonprop_intervals_exact(g, options.cycle_limit);
  result.forward_edges = forward_edges_general(g, options.cycle_limit);
  result.ok = true;
  result.diagnostics =
      "topology is not CS4 (" + analysis.reason +
      "); intervals computed by exponential cycle enumeration";
  return result;
}

const char* to_string(Classification c) {
  switch (c) {
    case Classification::SpDag:
      return "SP-DAG";
    case Classification::Cs4Chain:
      return "CS4 chain";
    case Classification::GeneralDag:
      return "general DAG";
  }
  return "?";
}

const char* to_string(Algorithm a) {
  switch (a) {
    case Algorithm::Propagation:
      return "Propagation";
    case Algorithm::NonPropagation:
      return "Non-Propagation";
  }
  return "?";
}

}  // namespace sdaf::core
