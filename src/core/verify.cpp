#include "src/core/verify.h"

#include "src/intervals/baseline.h"
#include "src/support/contracts.h"

namespace sdaf::core {

VerifyResult verify_intervals(const StreamGraph& g,
                              const IntervalMap& intervals,
                              Algorithm algorithm, std::size_t cycle_limit) {
  SDAF_EXPECTS(intervals.size() == g.edge_count());
  const IntervalMap required =
      algorithm == Algorithm::Propagation
          ? propagation_intervals_exact(g, cycle_limit)
          : nonprop_intervals_exact(g, cycle_limit);
  VerifyResult out;
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    if (intervals[e] > required[e])
      out.violations.push_back(IntervalViolation{e, required[e],
                                                 intervals[e]});
  }
  out.ok = out.violations.empty();
  return out;
}

}  // namespace sdaf::core
