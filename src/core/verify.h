// Interval auditing: independently re-derives the per-edge requirements
// from the cycle definitions (Section II.B) and checks a provided interval
// assignment against them. Lets users validate hand-tuned or externally
// produced configurations, and gives the test-suite a single notion of
// "safe by construction".
#pragma once

#include <cstddef>
#include <vector>

#include "src/core/compile.h"
#include "src/graph/stream_graph.h"
#include "src/intervals/interval_map.h"

namespace sdaf::core {

struct IntervalViolation {
  EdgeId edge = kNoEdge;
  Rational required;  // tightest bound any cycle imposes
  Rational provided;  // the audited value (> required = unsafe)
};

struct VerifyResult {
  bool ok = false;
  std::vector<IntervalViolation> violations;
};

// Audits `intervals` for `algorithm` by exact cycle enumeration
// (exponential; intended for test rigs and small production topologies).
// An interval is admissible iff it is <= the exact requirement on every
// edge; smaller-than-required values are safe (just chattier).
[[nodiscard]] VerifyResult verify_intervals(
    const StreamGraph& g, const IntervalMap& intervals, Algorithm algorithm,
    std::size_t cycle_limit = 1u << 22);

}  // namespace sdaf::core
