// Memoization of compile() results for multi-tenant runtimes: repeated
// submissions of the same topology (the common case when many concurrent
// users run the same application graph) skip CS4 decomposition and interval
// computation entirely. Keyed by a canonical graph signature -- the exact
// edge list with buffers plus the compile options; node names are excluded
// because they never affect classification or intervals.
//
// Thread-safe; LRU eviction bounds memory. Results are immutable and
// shared, so a hit is a pointer copy.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

#include "src/core/compile.h"

namespace sdaf::core {

struct CompileCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
};

class CompileCache {
 public:
  explicit CompileCache(std::size_t capacity = 128);

  // Returns the cached result for (g, options), compiling on a miss. The
  // compile itself runs outside the cache lock, so concurrent misses on
  // different graphs do not serialize (racing misses on the *same* graph
  // may compile twice; the first insert wins).
  [[nodiscard]] std::shared_ptr<const CompileResult> get_or_compile(
      const StreamGraph& g, const CompileOptions& options = {});

  [[nodiscard]] CompileCacheStats stats() const;
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  void clear();

  // The canonical key: topology + buffers + options, node names excluded.
  [[nodiscard]] static std::string signature(const StreamGraph& g,
                                             const CompileOptions& options);

 private:
  using LruList =
      std::list<std::pair<std::string, std::shared_ptr<const CompileResult>>>;

  const std::size_t capacity_;
  mutable std::mutex mu_;
  LruList lru_;  // front = most recent
  std::unordered_map<std::string, LruList::iterator> index_;
  CompileCacheStats stats_;
};

}  // namespace sdaf::core
